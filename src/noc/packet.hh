/**
 * @file
 * The CG-to-FG communication protocol of section 7.3.
 *
 * Hand-shaking between CG and FG cores uses control and data
 * packets, like a network protocol. The control packet carries a
 * unique task id, a per-task data-set id, the data size, the
 * iteration count, and the kernel id; each data packet's header
 * carries the task and data-set ids. The on-chip network moves
 * 64-bit flits with an 8-bit header, leaving 56 payload bits per
 * flit.
 */

#ifndef PARALLAX_NOC_PACKET_HH
#define PARALLAX_NOC_PACKET_HH

#include <cstdint>

namespace parallax
{

/** Flit geometry of the 2D mesh (section 5.1). */
constexpr int flitBits = 64;
constexpr int flitHeaderBits = 8;
constexpr int flitPayloadBits = flitBits - flitHeaderBits;

/** Control packet: sets up the flow of data packets to FG cores. */
struct ControlPacket
{
    std::uint32_t taskId = 0;    // Unique per CG submission.
    std::uint32_t dataSetId = 0; // Unique per FG core within a task.
    std::uint32_t dataBytes = 0;
    std::uint32_t iterationCount = 0;
    std::uint8_t kernelId = 0;

    /** Payload size when serialized (bytes). */
    static constexpr std::uint32_t
    serializedBytes()
    {
        return 4 + 4 + 4 + 4 + 1;
    }
};

/** Data packet header fields. */
struct DataPacketHeader
{
    std::uint32_t taskId = 0;
    std::uint32_t dataSetId = 0;

    static constexpr std::uint32_t
    serializedBytes()
    {
        return 8;
    }
};

/** Number of flits needed to carry a payload of `bytes`. */
constexpr std::uint64_t
flitsForBytes(std::uint64_t bytes)
{
    const std::uint64_t bits = bytes * 8;
    return (bits + flitPayloadBits - 1) / flitPayloadBits;
}

} // namespace parallax

#endif // PARALLAX_NOC_PACKET_HH
