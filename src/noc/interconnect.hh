/**
 * @file
 * Interconnect latency/bandwidth models: the on-chip 2D mesh and
 * the HTX / PCIe off-chip links of section 5.1.
 *
 * Mesh: 90 nm parameters from Polaris (Soteriou et al.): 1-cycle
 * per-hop wire delay, 5-cycle router pipeline, 64-bit flits, four
 * virtual channels, at the common 2 GHz clock. Off-chip: PCI
 * Express at 4 GB/s half-duplex (used by GPUs and PhysX) and
 * HyperTransport at 20.8 GB/s (used by AMD co-processors); data
 * distribution on the far side still crosses the FG chip's mesh.
 */

#ifndef PARALLAX_NOC_INTERCONNECT_HH
#define PARALLAX_NOC_INTERCONNECT_HH

#include <cstdint>

#include "packet.hh"
#include "sim/ticks.hh"

namespace parallax
{

/** Which CG-to-FG interconnect a configuration uses. */
enum class InterconnectKind
{
    OnChipMesh,
    Htx,
    Pcie,
};

const char *interconnectName(InterconnectKind kind);

/** 2D mesh of `nodes` endpoints with XY routing. */
class MeshModel
{
  public:
    /** @param nodes Endpoints (FG cores + ports), rounded up to a
     *         square grid. */
    explicit MeshModel(int nodes);

    int width() const { return width_; }

    /** Hop count between two node indices under XY routing. */
    int hops(int src, int dst) const;

    /** Average hop count from a corner port to all nodes. */
    double averageHopsFromPort() const;

    /**
     * One-way latency in cycles for a packet of `payload_bytes`
     * crossing `hop_count` hops: per-hop wire + router pipeline for
     * the head flit, plus serialization of the remaining flits.
     */
    Tick packetLatency(int hop_count,
                       std::uint64_t payload_bytes) const;

    /**
     * Minimum latency of any packet of `payload_bytes` between two
     * *distinct* mesh endpoints: one hop (wire + router pipeline)
     * plus flit serialization. This is the upper bound on the sync
     * quantum of a LaneSet whose lanes communicate over this mesh —
     * stepping lanes independently for up to this many cycles can
     * never miss an in-flight cross-lane packet (parti-gem5's
     * quantum rule; see docs/SIMULATOR.md).
     */
    Tick minCrossLaneLatency(std::uint64_t payload_bytes) const
    { return packetLatency(1, payload_bytes); }

    static constexpr Tick perHopCycles = 1;
    static constexpr Tick routerPipelineCycles = 5;
    static constexpr int virtualChannels = 4;

  private:
    int width_;
};

/** An off-chip point-to-point link. */
struct OffChipLink
{
    double latencySeconds;     // One-way base latency.
    double bandwidthBytesPerSec;

    /** One-way transfer time for a payload, in cycles at 2 GHz. */
    Tick transferCycles(std::uint64_t payload_bytes) const;

    /** PCI Express: 4 GB/s half duplex, microsecond-class latency. */
    static OffChipLink pcie();

    /** HyperTransport: 20.8 GB/s half duplex, lower latency. */
    static OffChipLink htx();
};

/**
 * End-to-end CG->FG dispatch latency for a task of `payload_bytes`
 * on the chosen interconnect, including the far-side mesh
 * distribution for off-chip configurations.
 *
 * @param mesh The FG-side mesh (data distribution network).
 * @param mean_hops Average hops to reach an FG core.
 */
Tick dispatchLatency(InterconnectKind kind, const MeshModel &mesh,
                     double mean_hops, std::uint64_t payload_bytes);

} // namespace parallax

#endif // PARALLAX_NOC_INTERCONNECT_HH
