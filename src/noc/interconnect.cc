#include "interconnect.hh"

#include <cmath>

#include "sim/logging.hh"

namespace parallax
{

const char *
interconnectName(InterconnectKind kind)
{
    switch (kind) {
      case InterconnectKind::OnChipMesh: return "on-chip";
      case InterconnectKind::Htx: return "HTX";
      case InterconnectKind::Pcie: return "PCIe";
    }
    return "?";
}

MeshModel::MeshModel(int nodes)
{
    if (nodes < 1)
        fatal("mesh needs at least one node");
    width_ = static_cast<int>(std::ceil(std::sqrt(nodes)));
}

int
MeshModel::hops(int src, int dst) const
{
    const int sx = src % width_, sy = src / width_;
    const int dx = dst % width_, dy = dst / width_;
    return std::abs(sx - dx) + std::abs(sy - dy);
}

double
MeshModel::averageHopsFromPort() const
{
    // Port at node 0 (corner): mean Manhattan distance to a node of
    // a w x w grid is (w - 1) (mean (w-1)/2 per dimension, twice).
    return static_cast<double>(width_ - 1);
}

Tick
MeshModel::packetLatency(int hop_count,
                         std::uint64_t payload_bytes) const
{
    const std::uint64_t flits = std::max<std::uint64_t>(
        1, flitsForBytes(payload_bytes));
    const Tick head = static_cast<Tick>(hop_count) *
        (perHopCycles + routerPipelineCycles);
    // Remaining flits stream behind the head, one per cycle.
    return head + (flits - 1);
}

Tick
OffChipLink::transferCycles(std::uint64_t payload_bytes) const
{
    const double seconds = latencySeconds +
        static_cast<double>(payload_bytes) / bandwidthBytesPerSec;
    return static_cast<Tick>(seconds * clockFrequencyHz);
}

OffChipLink
OffChipLink::pcie()
{
    // 4 GB/s half-duplex system interconnect; ~1 us one-way latency
    // through the root complex (the GPU/PhysX path).
    return OffChipLink{1.0e-6, 4.0e9};
}

OffChipLink
OffChipLink::htx()
{
    // 20.8 GB/s half-duplex coprocessor link; ~150 ns one-way.
    return OffChipLink{150e-9, 20.8e9};
}

Tick
dispatchLatency(InterconnectKind kind, const MeshModel &mesh,
                double mean_hops, std::uint64_t payload_bytes)
{
    const std::uint64_t packet_bytes =
        payload_bytes + DataPacketHeader::serializedBytes();
    const Tick mesh_cycles = mesh.packetLatency(
        static_cast<int>(std::lround(mean_hops)), packet_bytes);
    switch (kind) {
      case InterconnectKind::OnChipMesh:
        return mesh_cycles;
      case InterconnectKind::Htx:
        return OffChipLink::htx().transferCycles(packet_bytes) +
               mesh_cycles;
      case InterconnectKind::Pcie:
        return OffChipLink::pcie().transferCycles(packet_bytes) +
               mesh_cycles;
    }
    return mesh_cycles;
}

} // namespace parallax
