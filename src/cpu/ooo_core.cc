#include "ooo_core.hh"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "sim/logging.hh"

namespace parallax
{

CoreConfig
CoreConfig::desktop()
{
    return CoreConfig{"desktop", 4, 32, 96, 14, 17, 4, 2, 2};
}

CoreConfig
CoreConfig::console()
{
    return CoreConfig{"console", 2, 8, 32, 12, 17, 2, 1, 1};
}

CoreConfig
CoreConfig::shader()
{
    return CoreConfig{"shader", 1, 1, 32, 8, 1, 1, 1, 1};
}

CoreConfig
CoreConfig::limit()
{
    return CoreConfig{"limit", 128, 128, 512, 14, 64, 128, 128, 128};
}

namespace
{

/** Functional-unit class of an opcode. */
enum class FuClass
{
    Int,
    Fp,
    Mem,
};

FuClass
fuClassOf(Opcode op)
{
    if (isMemory(op))
        return FuClass::Mem;
    switch (op) {
      case Opcode::Fadd:
      case Opcode::Fsub:
      case Opcode::Fmul:
      case Opcode::Fdiv:
      case Opcode::Fsqrt:
      case Opcode::Fneg:
      case Opcode::Fabs:
      case Opcode::Fmov:
      case Opcode::Fmin:
      case Opcode::Fmax:
      case Opcode::Fclt:
      case Opcode::Fcle:
      case Opcode::Fceq:
      case Opcode::Lfi:
        return FuClass::Fp;
      default:
        return FuClass::Int;
    }
}

/** True when the FU is busy for the whole latency (unpipelined). */
bool
unpipelined(Opcode op)
{
    return op == Opcode::Fdiv || op == Opcode::Fsqrt;
}

/** Ring of recent event times for window/ROB constraints. */
class TimeRing
{
  public:
    explicit TimeRing(std::size_t size) : times_(size, 0) {}

    Tick
    at(std::uint64_t index) const
    {
        return times_[index % times_.size()];
    }

    void
    set(std::uint64_t index, Tick t)
    {
        times_[index % times_.size()] = t;
    }

  private:
    std::vector<Tick> times_;
};

/** Source registers of an instruction (int and fp read sets). */
void
sourceRegs(const Instruction &inst, int int_srcs[2], int &n_int,
           int fp_srcs[2], int &n_fp)
{
    n_int = 0;
    n_fp = 0;
    switch (inst.op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Sll:
      case Opcode::Srl:
        int_srcs[n_int++] = inst.ra;
        int_srcs[n_int++] = inst.rb;
        break;
      case Opcode::Addi:
      case Opcode::Slti:
        int_srcs[n_int++] = inst.ra;
        break;
      case Opcode::Fadd:
      case Opcode::Fsub:
      case Opcode::Fmul:
      case Opcode::Fdiv:
      case Opcode::Fmin:
      case Opcode::Fmax:
      case Opcode::Fclt:
      case Opcode::Fcle:
      case Opcode::Fceq:
        fp_srcs[n_fp++] = inst.ra;
        fp_srcs[n_fp++] = inst.rb;
        break;
      case Opcode::Fsqrt:
      case Opcode::Fneg:
      case Opcode::Fabs:
      case Opcode::Fmov:
        fp_srcs[n_fp++] = inst.ra;
        break;
      case Opcode::Lw:
      case Opcode::Lf:
        int_srcs[n_int++] = inst.ra;
        break;
      case Opcode::Sw:
        int_srcs[n_int++] = inst.ra;
        int_srcs[n_int++] = inst.rd; // Value source.
        break;
      case Opcode::Sf:
        int_srcs[n_int++] = inst.ra;
        fp_srcs[n_fp++] = inst.rd; // Value source.
        break;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        int_srcs[n_int++] = inst.ra;
        int_srcs[n_int++] = inst.rb;
        break;
      default:
        break;
    }
}

} // namespace

OooCore::OooCore(CoreConfig config) : config_(std::move(config))
{
    if (config_.width < 1 || config_.windowEntries < 1 ||
        config_.robEntries < 1) {
        fatal("core config must have positive width/window/ROB");
    }
}

CoreRunResult
OooCore::run(const Program &program, Machine &machine,
             std::uint64_t max_instructions)
{
    CoreRunResult result;
    Yags predictor(YagsConfig{config_.predictorKb, 12, 8});
    ReturnAddressStack ras(64);

    // Per-register ready times.
    std::vector<Tick> int_ready(numIntRegs, 0);
    std::vector<Tick> fp_ready(numFpRegs, 0);
    // Store-to-load forwarding through actual local-memory cells.
    std::unordered_map<std::int64_t, Tick> store_ready;

    // FU next-free times.
    std::vector<Tick> int_fu(config_.intUnits, 0);
    std::vector<Tick> fp_fu(config_.fpUnits, 0);
    std::vector<Tick> mem_fu(config_.memUnits, 0);

    // Event history for window / ROB / width constraints.
    TimeRing issue_ring(config_.windowEntries);
    TimeRing commit_ring(config_.robEntries);

    Tick fetch_cycle = 0;  // Cycle of the current fetch group.
    int fetch_in_cycle = 0;
    Tick last_commit = 0;
    int commit_in_cycle = 0;
    Tick prev_commit_cycle = 0;
    Tick prev_done = 0; // For the blocking 1-entry-window case.

    std::int64_t pc = 0;
    std::uint64_t seq = 0;

    while (seq < max_instructions) {
        if (pc < 0 ||
            pc >= static_cast<std::int64_t>(program.size())) {
            panic("pc %lld out of bounds",
                  static_cast<long long>(pc));
        }
        const Instruction &inst = program.at(pc);

        // --- Functional execution (architectural truth). ---
        const Machine::ExecResult exec = machine.execute(inst, pc);
        ++seq;
        ++result.instructions;
        if (inst.op != Opcode::Nop)
            result.dynamicMix[opcodeClass(inst.op)] += 1.0;

        // --- Fetch: `width` per cycle, honoring redirects. ---
        if (fetch_in_cycle >= config_.width) {
            ++fetch_cycle;
            fetch_in_cycle = 0;
        }
        const Tick fetch_time = fetch_cycle;
        ++fetch_in_cycle;

        // --- Dispatch constraints: ROB and window occupancy. ---
        Tick dispatch = fetch_time;
        if (seq > static_cast<std::uint64_t>(config_.robEntries))
            dispatch = std::max(dispatch, commit_ring.at(seq));
        if (config_.windowEntries == 1) {
            // A 1-entry window is a blocking in-order core (the
            // shader class): one instruction in flight at a time.
            dispatch = std::max(dispatch, prev_done);
        } else if (seq >
                   static_cast<std::uint64_t>(
                       config_.windowEntries)) {
            dispatch = std::max(dispatch, issue_ring.at(seq));
        }

        // --- Source operands. ---
        int int_srcs[2], fp_srcs[2];
        int n_int = 0, n_fp = 0;
        sourceRegs(inst, int_srcs, n_int, fp_srcs, n_fp);
        Tick ready = dispatch;
        for (int k = 0; k < n_int; ++k) {
            if (int_srcs[k] != 0)
                ready = std::max(ready, int_ready[int_srcs[k]]);
        }
        for (int k = 0; k < n_fp; ++k)
            ready = std::max(ready, fp_ready[fp_srcs[k]]);

        // Loads wait on the youngest store to the same cell.
        if (isLoad(inst.op)) {
            const std::int64_t addr =
                machine.intReg(inst.ra) + inst.imm;
            auto it = store_ready.find(addr);
            if (it != store_ready.end())
                ready = std::max(ready, it->second);
        }

        // --- Functional unit arbitration. ---
        std::vector<Tick> *units = nullptr;
        switch (fuClassOf(inst.op)) {
          case FuClass::Int: units = &int_fu; break;
          case FuClass::Fp: units = &fp_fu; break;
          case FuClass::Mem: units = &mem_fu; break;
        }
        auto unit = std::min_element(units->begin(), units->end());
        const Tick issue = std::max(ready, *unit);
        const int latency = opLatency(inst.op);
        const Tick done = issue + latency;
        *unit = issue + (unpipelined(inst.op) ? latency : 1);

        issue_ring.set(seq, issue);
        prev_done = done;

        // --- Writeback: destination ready times. ---
        if (inst.op == Opcode::Sw || inst.op == Opcode::Sf) {
            const std::int64_t addr =
                machine.intReg(inst.ra) + inst.imm;
            store_ready[addr] = done;
        } else if (writesFp(inst.op)) {
            fp_ready[inst.rd] = done;
        } else if (inst.rd != 0 && !isBranch(inst.op) &&
                   inst.op != Opcode::Nop &&
                   inst.op != Opcode::Halt) {
            // Integer-writing ops, including loads and FP compares.
            int_ready[inst.rd] = done;
        }

        // --- Commit: in order, `width` per cycle. ---
        Tick commit = std::max(done, last_commit);
        if (commit == prev_commit_cycle) {
            if (commit_in_cycle >= config_.width) {
                ++commit;
                commit_in_cycle = 0;
            }
        } else {
            commit_in_cycle = 0;
        }
        prev_commit_cycle = commit;
        ++commit_in_cycle;
        last_commit = commit;
        commit_ring.set(seq, commit);
        result.cycles = std::max<std::uint64_t>(result.cycles,
                                                commit + 1);

        // --- Control flow and prediction. ---
        if (isConditionalBranch(inst.op)) {
            ++result.branches;
            const bool correct = predictor.predictAndUpdate(
                static_cast<std::uint64_t>(pc), exec.taken);
            if (!correct) {
                ++result.mispredicts;
                // Redirect: fetch resumes after resolution plus the
                // front-end refill.
                fetch_cycle = done + config_.pipelineDepth;
                fetch_in_cycle = 0;
            }
        } else if (inst.op == Opcode::Call) {
            ++result.branches;
            ras.push(static_cast<std::uint64_t>(pc + 1));
        } else if (inst.op == Opcode::Ret) {
            ++result.branches;
            const std::uint64_t predicted = ras.pop();
            if (predicted !=
                static_cast<std::uint64_t>(exec.nextPc)) {
                ++result.mispredicts;
                fetch_cycle = done + config_.pipelineDepth;
                fetch_in_cycle = 0;
            }
        }
        // Unconditional jumps are BTB hits: no penalty.

        if (exec.halted) {
            result.halted = true;
            break;
        }
        pc = exec.nextPc;
    }
    return result;
}

} // namespace parallax
