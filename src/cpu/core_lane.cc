#include "core_lane.hh"

#include "sim/logging.hh"

namespace parallax
{

CoreLane::CoreLane(EventLane &lane, CoreLaneConfig config,
                   IssueFn issue)
    : lane_(lane), config_(config), issue_(std::move(issue)),
      l1_(config.l1)
{
    parallax_assert(issue_ != nullptr);
}

void
CoreLane::setStream(std::vector<MemRef> refs)
{
    refs_ = std::move(refs);
    cursor_ = 0;
}

void
CoreLane::start()
{
    lane_.queue().schedule(config_.startTick, [this] { burst(); });
}

void
CoreLane::burst()
{
    // Account stall time for the miss this burst resumes from.
    if (issueTick_ != 0) {
        stats_.missCycles += lane_.now() - issueTick_;
        issueTick_ = 0;
    }

    // Drain L1 hits without scheduling per-reference events: each
    // hit advances local time by l1Latency, and since the lane's
    // queue can't receive new work mid-quantum the whole hit run is
    // equivalent to one event per reference but vastly cheaper.
    Tick elapsed = 0;
    while (cursor_ < refs_.size()) {
        const MemRef &ref = refs_[cursor_];
        ++stats_.refs;
        ++cursor_;
        elapsed += config_.l1Latency;
        if (l1_.access(ref.addr, ref.write)) {
            ++stats_.l1Hits;
            continue;
        }
        ++stats_.l1Misses;
        // Miss: issue at the simulated time the access reached the
        // L1 (after the hit run), then stall until the reply event
        // re-enters burst().
        const std::uint64_t addr = ref.addr;
        const bool write = ref.write;
        lane_.queue().scheduleAfter(elapsed, [this, addr, write] {
            issueTick_ = lane_.now();
            issue_(*this, addr, write, [this] { burst(); });
        });
        return;
    }

    // Stream drained: retire at the tick of the last reference.
    lane_.queue().scheduleAfter(elapsed, [this] {
        stats_.finishTick = lane_.now();
        stats_.finished = true;
    });
}

} // namespace parallax
