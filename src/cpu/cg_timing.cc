#include "cg_timing.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace parallax
{

CgTimingModel::CgTimingModel(CgTimingParams params) : params_(params)
{
}

double
CgTimingModel::computeCycles(const OpVector &ops) const
{
    double cycles = 0;
    for (int c = 0; c < numOpClasses; ++c)
        cycles += ops.ops[c] * params_.cyclesPerOp[c];
    return cycles;
}

double
CgTimingModel::stallCycles(Phase phase,
                           const PhaseMemStats &mem) const
{
    const double exposure = phaseIsSerial(phase)
        ? params_.serialStallExposure
        : params_.parallelStallExposure;
    const double raw =
        static_cast<double>(mem.l2Hits) * 15.0 +
        static_cast<double>(mem.l2Misses) * 340.0;
    return raw * exposure;
}

PhaseTime
CgTimingModel::phaseTime(Phase phase, const OpVector &ops,
                         const PhaseMemStats &mem) const
{
    PhaseTime t;
    t.computeSeconds = computeCycles(ops) / clockFrequencyHz;
    t.stallSeconds = stallCycles(phase, mem) / clockFrequencyHz;
    return t;
}

double
CgTimingModel::makespan(const std::vector<double> &weights,
                        unsigned threads)
{
    if (weights.empty() || threads == 0)
        return 0.0;
    double total = 0;
    for (double w : weights)
        total += w;
    if (total <= 0)
        return 0.0;

    // Longest-processing-time-first greedy schedule.
    std::vector<double> sorted = weights;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    std::vector<double> load(threads, 0.0);
    for (double w : sorted) {
        auto it = std::min_element(load.begin(), load.end());
        *it += w;
    }
    return *std::max_element(load.begin(), load.end()) / total;
}

PhaseTime
CgTimingModel::parallelPhaseTime(
    Phase phase, const OpVector &ops, const PhaseMemStats &mem,
    unsigned threads, const std::vector<double> &task_weights,
    std::int64_t overhead_tasks) const
{
    if (threads == 0)
        fatal("parallelPhaseTime needs at least one thread");

    PhaseTime t;
    const double compute = computeCycles(ops);
    const double stalls = stallCycles(phase, mem);

    if (phaseIsSerial(phase) || threads == 1 ||
        task_weights.empty()) {
        t.computeSeconds = compute / clockFrequencyHz;
        t.stallSeconds = stalls / clockFrequencyHz;
        return t;
    }

    // CG parallel execution: the phase's work splits across tasks
    // proportionally to their weights; LPT makespan bounds the
    // speedup by the largest task (the paper's limit on island- and
    // cloth-level parallelism). Work-queue dispatch adds a per-task
    // overhead paid on the critical path by the thread that runs
    // each task.
    const double frac = makespan(task_weights, threads);
    const double dispatches = overhead_tasks >= 0
        ? static_cast<double>(overhead_tasks)
        : static_cast<double>(task_weights.size());
    const double overhead =
        params_.taskOverheadCycles * (dispatches / threads);
    t.computeSeconds = (compute * frac + overhead) /
        clockFrequencyHz;
    // Stalls scale with the same makespan fraction; concurrent
    // threads additionally contend for L2 banks and the memory
    // controller (the replay already captures the capacity effects
    // in the miss counts, this adds the queueing latency).
    const double contention =
        1.0 + params_.memContentionPerThread * (threads - 1);
    t.stallSeconds =
        stalls * frac * contention / clockFrequencyHz;
    return t;
}

} // namespace parallax
