/**
 * @file
 * Coarse-grain core timing model.
 *
 * Converts a phase's operation vector plus its memory-system
 * behaviour into execution time on the Table 5 core (4-wide, 14
 * stages, 96-entry ROB / 32-entry scheduler, 2 GHz). Computation
 * time comes from per-class issue costs; memory stall time comes
 * from the cache replay, scaled by an exposure factor that models
 * how much latency the out-of-order window can hide (pointer-chasing
 * serial phases expose almost everything; the data-parallel phases
 * overlap more).
 *
 * Multi-core projections schedule coarse-grain tasks (islands,
 * cloths, pair chunks) across cores with LPT, charging a work-queue
 * overhead per task — reproducing the paper's CG scaling limits
 * (Figures 5b, 6a, 7a): the plateau at four cores and the bound set
 * by the largest island or cloth.
 */

#ifndef PARALLAX_CPU_CG_TIMING_HH
#define PARALLAX_CPU_CG_TIMING_HH

#include <vector>

#include "mem/hierarchy.hh"
#include "sim/ticks.hh"
#include "workload/instrumentation.hh"
#include "workload/phase.hh"

namespace parallax
{

/** Tunables of the CG timing model. */
struct CgTimingParams
{
    /** Issue cost (cycles) per operation class on the 4-wide core. */
    std::array<double, numOpClasses> cyclesPerOp{
        0.45, // IntAlu: 4 int ALUs.
        0.95, // Branch: predictor + occasional flush.
        0.75, // FloatAdd: 2 FP units.
        0.85, // FloatMult.
        0.65, // RdPort: 2 load/store ports.
        0.65, // WrPort.
        1.60, // Other (div, sqrt, sync).
    };

    /** Fraction of memory stall cycles the OoO window cannot hide. */
    double serialStallExposure = 1.0;
    double parallelStallExposure = 0.6;

    /** Work-queue dispatch + completion cost per CG task (cycles). */
    double taskOverheadCycles = 3500.0;

    /**
     * Additional memory stall per extra concurrent thread (shared
     * L2 bank and memory-controller queueing), as a fraction of the
     * uncontended stall time.
     */
    double memContentionPerThread = 0.3;
};

/** Time split of one phase. */
struct PhaseTime
{
    double computeSeconds = 0.0;
    double stallSeconds = 0.0;

    double total() const { return computeSeconds + stallSeconds; }
};

/** CG timing calculations. */
class CgTimingModel
{
  public:
    explicit CgTimingModel(CgTimingParams params = CgTimingParams());

    /** Pure compute cycles for an operation vector. */
    double computeCycles(const OpVector &ops) const;

    /** Single-threaded phase time from ops + replay stats. */
    PhaseTime phaseTime(Phase phase, const OpVector &ops,
                        const PhaseMemStats &mem) const;

    /**
     * Phase time with `threads` cores exploiting coarse-grain
     * parallelism.
     *
     * @param task_weights Relative op weights of the independent CG
     *        tasks (islands' rows, cloths' vertices, pair chunks);
     *        the phase's parallel ops are distributed
     *        proportionally and scheduled LPT. An empty list means
     *        the phase is serial.
     * @param overhead_tasks Number of work-queue dispatches paying
     *        the per-task overhead. Defaults (-1) to the number of
     *        weights; narrowphase passes the chunk count instead
     *        (its pairs are pre-partitioned, one chunk per worker).
     */
    PhaseTime parallelPhaseTime(Phase phase, const OpVector &ops,
                                const PhaseMemStats &mem,
                                unsigned threads,
                                const std::vector<double> &
                                    task_weights,
                                std::int64_t overhead_tasks =
                                    -1) const;

    /**
     * LPT makespan of weighted tasks on `threads` machines,
     * normalized so the weights sum to 1.
     */
    static double makespan(const std::vector<double> &weights,
                           unsigned threads);

    const CgTimingParams &params() const { return params_; }

  private:
    double stallCycles(Phase phase, const PhaseMemStats &mem) const;

    CgTimingParams params_;
};

/** Full-frame times per phase, in seconds. */
struct FrameTime
{
    std::array<PhaseTime, numPhases> phase{};

    PhaseTime &operator[](Phase p)
    { return phase[static_cast<int>(p)]; }
    const PhaseTime &operator[](Phase p) const
    { return phase[static_cast<int>(p)]; }

    double
    total() const
    {
        double t = 0;
        for (const PhaseTime &pt : phase)
            t += pt.total();
        return t;
    }

    double
    serial() const
    {
        return phase[static_cast<int>(Phase::Broadphase)].total() +
               phase[static_cast<int>(Phase::IslandCreation)]
                   .total();
    }
};

} // namespace parallax

#endif // PARALLAX_CPU_CG_TIMING_HH
