#include "lane_machine.hh"

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace parallax
{

namespace
{

constexpr std::uint64_t privateRegion(unsigned core)
{
    // Disjoint 4 GiB windows per core; the shared region lives far
    // above all of them.
    return (static_cast<std::uint64_t>(core) + 1) << 32;
}

constexpr std::uint64_t sharedRegion = 1ull << 44;

} // namespace

LaneMachine::LaneMachine(LaneMachineConfig config)
    : config_(config),
      mesh_(static_cast<int>(config.cores + config.banks)),
      laneSet_(config.cores + config.banks,
               SimConfig{config.parallelLanes,
                         mesh_.minCrossLaneLatency(
                             config.requestBytes)})
{
    if (config_.cores == 0 || config_.banks == 0)
        fatal("a LaneMachine needs at least one core and one bank");

    auto issueFn = [this](CoreLane &core, std::uint64_t addr,
                          bool write, CoreLane::Resume resume) {
        issue(core, addr, write, std::move(resume));
    };
    cores_.reserve(config_.cores);
    for (unsigned c = 0; c < config_.cores; ++c) {
        cores_.push_back(std::make_unique<CoreLane>(
            laneSet_.lane(c), config_.core, issueFn));
    }
    banks_.reserve(config_.banks);
    for (unsigned b = 0; b < config_.banks; ++b) {
        banks_.push_back(std::make_unique<L2BankLane>(
            laneSet_.lane(config_.cores + b), config_.bank));
    }

    if (config_.parallelLanes > 0) {
        SchedulerConfig sched;
        sched.workerThreads = config_.parallelLanes - 1;
        sched.grainSize = 1;
        scheduler_ = std::make_unique<TaskScheduler>(sched);
        laneSet_.setParallelRunner(
            [this](unsigned laneCount,
                   const std::function<void(unsigned)> &runLane) {
                scheduler_->parallelFor(
                    laneCount, 1,
                    [&runLane](std::size_t begin, std::size_t end,
                               unsigned) {
                        for (std::size_t i = begin; i < end; ++i)
                            runLane(static_cast<unsigned>(i));
                    });
            });
    }
}

void
LaneMachine::attachTrace(TraceCollector *collector)
{
    trace_ = collector;
}

void
LaneMachine::attachMetrics(MetricsRegistry *metrics)
{
    metrics_ = metrics;
}

unsigned
LaneMachine::bankFor(std::uint64_t addr) const
{
    // Line-interleaved banking: consecutive lines round-robin the
    // banks, like the serial model's partition interleave.
    return static_cast<unsigned>(
        (addr / config_.lineBytes) % config_.banks);
}

void
LaneMachine::issue(CoreLane &core, std::uint64_t addr, bool write,
                   CoreLane::Resume resume)
{
    const unsigned b = bankFor(addr);
    const unsigned bankLane = config_.cores + b;
    const int hops = mesh_.hops(static_cast<int>(core.laneId()),
                                static_cast<int>(bankLane));
    const Tick requestLatency =
        mesh_.packetLatency(hops, config_.requestBytes);
    const Tick replyLatency =
        mesh_.packetLatency(hops, config_.lineBytes);
    L2BankLane *bank = banks_[b].get();
    const unsigned coreLane = core.laneId();
    core.lane().send(
        bankLane, requestLatency,
        [bank, addr, write, coreLane, replyLatency,
         resume = std::move(resume)] {
            bank->request(addr, write, coreLane, replyLatency,
                          resume);
        });
}

std::vector<MemRef>
LaneMachine::syntheticStream(const LaneMachineConfig &config,
                             unsigned c)
{
    // One decorrelated stream per core from the master seed: the
    // stream is a pure function of (seed, c), never of how many host
    // lanes replay it.
    Rng rng = Rng::forStream(config.seed, c);
    std::vector<MemRef> refs;
    refs.reserve(config.refsPerCore);
    const std::uint64_t base = privateRegion(c);
    for (std::size_t i = 0; i < config.refsPerCore; ++i) {
        std::uint64_t addr;
        if (rng.chance(config.sharedFraction)) {
            addr = sharedRegion +
                   rng.below(config.sharedBytes / 8) * 8;
        } else if (rng.chance(config.hotFraction)) {
            addr = base + rng.below(config.hotBytes / 8) * 8;
        } else {
            addr = base + rng.below(config.coldBytes / 8) * 8;
        }
        const bool write = rng.chance(config.writeFraction);
        refs.push_back(MemRef{addr, 8, write, false});
    }
    return refs;
}

std::uint64_t
LaneMachine::run()
{
    for (unsigned c = 0; c < config_.cores; ++c) {
        cores_[c]->setStream(syntheticStream(config_, c));
        cores_[c]->start();
    }

    if (trace_ != nullptr && trace_->enabled()) {
        LaneSet::Hooks hooks;
        hooks.quantumBegin = [this](Tick, Tick) {
            quantumBeginUs_ = trace_->nowUs();
        };
        hooks.quantumEnd = [this](Tick, Tick) {
            trace_->recordSpan(0, "sim.quantum",
                               laneSet_.stats().quanta,
                               quantumBeginUs_, trace_->nowUs());
        };
        laneSet_.setHooks(hooks);
    }

    const std::uint64_t executed = laneSet_.run();

    for (const auto &core : cores_) {
        if (!core->stats().finished)
            panic("core lane %u did not drain its stream",
                  core->laneId());
    }

    if (metrics_ != nullptr) {
        const LaneSet::Stats &s = laneSet_.stats();
        metrics_->add("sim.quanta",
                      static_cast<double>(s.quanta));
        metrics_->add("sim.events",
                      static_cast<double>(s.eventsExecuted));
        metrics_->add("sim.messages_merged",
                      static_cast<double>(s.messagesMerged));
        metrics_->set("sim.max_quantum_skew",
                      static_cast<double>(s.maxQuantumSkew));
        metrics_->set("sim.lanes",
                      static_cast<double>(config_.parallelLanes));
        metrics_->set("sim.quantum_ticks",
                      static_cast<double>(quantum()));
        if (scheduler_ != nullptr) {
            metrics_->add("sim.lane_steals",
                          static_cast<double>(
                              scheduler_->tasksStolen()));
        }
    }
    return executed;
}

std::uint64_t
LaneMachine::statsChecksum() const
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    auto mix = [&hash](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            hash ^= (v >> (8 * i)) & 0xffu;
            hash *= 0x100000001b3ull;
        }
    };
    for (const auto &core : cores_) {
        const CoreLane::Stats &s = core->stats();
        mix(s.refs);
        mix(s.l1Hits);
        mix(s.l1Misses);
        mix(s.missCycles);
        mix(s.finishTick);
        mix(s.finished ? 1 : 0);
    }
    for (const auto &bank : banks_) {
        const L2BankLane::Stats &s = bank->stats();
        mix(s.accesses);
        mix(s.hits);
        mix(s.misses);
        mix(s.writebacks);
    }
    const LaneSet::Stats &s = laneSet_.stats();
    mix(s.quanta);
    mix(s.eventsExecuted);
    mix(s.messagesMerged);
    mix(s.maxQuantumSkew);
    return hash;
}

} // namespace parallax
