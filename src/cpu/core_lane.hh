/**
 * @file
 * Core pipeline + private L1 as a quantum-parallel simulation
 * component.
 *
 * One CoreLane models what the serial trace replay calls "a thread":
 * a core working through its per-thread slice of a memory reference
 * stream against a private L1. L1 hits burn l1Latency cycles each
 * and are burst-processed inside a single event; an L1 miss issues a
 * request over the NoC to the owning L2 bank's lane (a cross-lane
 * message with >= quantum latency) and the core stalls until the
 * reply message resumes the burst. The core and its private cache
 * are one lane: nothing else ever touches them, which is exactly the
 * parti-gem5 partitioning rule (docs/SIMULATOR.md).
 */

#ifndef PARALLAX_CPU_CORE_LANE_HH
#define PARALLAX_CPU_CORE_LANE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/cache.hh"
#include "sim/event_queue.hh"
#include "workload/mem_trace.hh"

namespace parallax
{

/** Private-cache geometry of one core lane (Table 5 defaults). */
struct CoreLaneConfig
{
    CacheConfig l1{32 * 1024, 4, 64};
    Tick l1Latency = 2;
    /** Tick at which the core begins processing its stream. */
    Tick startTick = 0;
};

/**
 * A core pipeline bound to an event lane.
 *
 * The machine wires the core to the memory system through `IssueFn`:
 * called at the simulated time of each L1 miss, it must deliver the
 * request to the right bank lane (via EventLane::send) and arrange
 * for `resume` to run on *this* core's lane when the data returns.
 */
class CoreLane
{
  public:
    using Resume = EventQueue::Callback;
    using IssueFn = std::function<void(
        CoreLane &core, std::uint64_t addr, bool write,
        Resume resume)>;

    /** Integer-only counters (stat-merge rule: order-independent). */
    struct Stats
    {
        std::uint64_t refs = 0;
        std::uint64_t l1Hits = 0;
        std::uint64_t l1Misses = 0;
        /** Total stall cycles spent waiting on bank replies. */
        std::uint64_t missCycles = 0;
        /** Tick at which the stream finished (0 until then). */
        Tick finishTick = 0;
        bool finished = false;
    };

    CoreLane(EventLane &lane, CoreLaneConfig config, IssueFn issue);

    /** Assign the reference stream (before LaneSet::run). */
    void setStream(std::vector<MemRef> refs);

    /** Schedule the first burst at CoreLaneConfig::startTick. */
    void start();

    const Stats &stats() const { return stats_; }
    const Cache &l1() const { return l1_; }
    EventLane &lane() { return lane_; }
    unsigned laneId() const { return lane_.id(); }

  private:
    /** Process hits from the cursor until a miss or end-of-stream,
     *  advancing simulated time by l1Latency per reference. Runs as
     *  an event on this core's lane. */
    void burst();

    EventLane &lane_;
    CoreLaneConfig config_;
    IssueFn issue_;
    Cache l1_;
    std::vector<MemRef> refs_;
    std::size_t cursor_ = 0;
    Tick issueTick_ = 0;
    Stats stats_;
};

} // namespace parallax

#endif // PARALLAX_CPU_CORE_LANE_HH
