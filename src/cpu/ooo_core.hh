/**
 * @file
 * Cycle-level out-of-order core timing model.
 *
 * A scoreboard/interval model of the Table 5/6 cores: limited fetch
 * width, instruction window (scheduler), reorder buffer, per-class
 * functional units, YAGS branch prediction with a pipeline-depth
 * misprediction penalty, and precise local-memory dependences
 * (store-to-load through actual addresses). Drives the FG kernel
 * IPC measurements of Figure 10(a) and the fine-grain core sizing
 * of Figure 10(b).
 */

#ifndef PARALLAX_CPU_OOO_CORE_HH
#define PARALLAX_CPU_OOO_CORE_HH

#include <cstdint>
#include <string>

#include "isa/machine.hh"
#include "isa/program.hh"
#include "sim/ticks.hh"
#include "yags.hh"

namespace parallax
{

/** Core microarchitecture parameters (Tables 5 and 6). */
struct CoreConfig
{
    std::string name = "desktop";
    int width = 4;         // Fetch/issue/commit width.
    int windowEntries = 32;
    int robEntries = 96;
    int pipelineDepth = 14;
    std::uint32_t predictorKb = 17;
    int intUnits = 4;
    int fpUnits = 2;
    int memUnits = 2;

    /** Table 5 / Intel Core Duo-class desktop core. */
    static CoreConfig desktop();
    /** IBM Cell-class console core (Table 6). */
    static CoreConfig console();
    /** GPU-shader-class core (Table 6). */
    static CoreConfig shader();
    /** Unrealistic ILP limit-study core (Table 6). */
    static CoreConfig limit();
};

/** Outcome of a timed run. */
struct CoreRunResult
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    OpVector dynamicMix;
    bool halted = false;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) / cycles
                      : 0.0;
    }
};

/** The timing simulator. */
class OooCore
{
  public:
    explicit OooCore(CoreConfig config);

    /**
     * Execute a program to completion (or the instruction limit) on
     * the given machine state, producing cycle-accurate timing.
     */
    CoreRunResult run(const Program &program, Machine &machine,
                      std::uint64_t max_instructions = 50'000'000);

    const CoreConfig &config() const { return config_; }

  private:
    CoreConfig config_;
};

} // namespace parallax

#endif // PARALLAX_CPU_OOO_CORE_HH
