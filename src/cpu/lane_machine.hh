/**
 * @file
 * LaneMachine: a lane-partitioned multicore timing model.
 *
 * This is the parti-gem5 recipe applied to the repo's architecture
 * model (docs/SIMULATOR.md). The simulated machine is partitioned
 * into components that only interact through NoC messages:
 *
 *   lane 0..C-1   core pipeline + private L1   (CoreLane)
 *   lane C..C+B-1 shared-L2 bank               (L2BankLane)
 *
 * Core c sits on mesh node c, bank b on node C+b, and every
 * cross-lane message pays at least one mesh hop, so the sync quantum
 * defaults to MeshModel::minCrossLaneLatency(request payload): lanes
 * can step freely inside a quantum without ever missing an in-flight
 * message. With LaneMachineConfig::parallelLanes == 0 the quantum
 * loop runs serially in lane-id order (the reference schedule); with
 * N > 0 the lanes run on a work-stealing TaskScheduler. Both paths
 * execute the identical per-lane event schedules and merge messages
 * in the same (tick, source lane, sequence) order, so every counter
 * — and statsChecksum() — is bit-identical between the two.
 */

#ifndef PARALLAX_CPU_LANE_MACHINE_HH
#define PARALLAX_CPU_LANE_MACHINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/core_lane.hh"
#include "mem/bank_lane.hh"
#include "noc/interconnect.hh"
#include "physics/parallel/task_scheduler.hh"
#include "physics/trace/metrics.hh"
#include "physics/trace/trace.hh"
#include "sim/event_queue.hh"

namespace parallax
{

/** Shape of the simulated machine and of its synthetic workload. */
struct LaneMachineConfig
{
    unsigned cores = 4;
    unsigned banks = 4;
    CoreLaneConfig core;
    BankLaneConfig bank;

    /** Host lanes running the simulation: 0 = serial reference. */
    unsigned parallelLanes = 0;

    /** NoC payloads: a miss request and a returned cache line. */
    std::uint64_t requestBytes = 16;
    std::uint64_t lineBytes = 64;

    /** Synthetic per-core reference stream (seeded, reproducible). */
    std::size_t refsPerCore = 20000;
    std::uint64_t seed = 0x5eedu;
    /** Fraction of references into the shared (cross-core) region. */
    double sharedFraction = 0.25;
    /** Fraction of private references hitting the hot set. */
    double hotFraction = 0.9;
    std::uint64_t hotBytes = 16 * 1024;
    std::uint64_t coldBytes = 4ull << 20;
    std::uint64_t sharedBytes = 2ull << 20;
    double writeFraction = 0.3;
};

/** The built machine: lanes, components, and the run/stat surface. */
class LaneMachine
{
  public:
    explicit LaneMachine(LaneMachineConfig config);

    /** Record sim.quantum spans on this collector (optional). */
    void attachTrace(TraceCollector *collector);

    /** Publish sim.* counters/gauges after run() (optional). */
    void attachMetrics(MetricsRegistry *metrics);

    /**
     * Generate the per-core streams, run every core to completion,
     * and return the number of events executed. Single-shot: build a
     * fresh machine per run.
     */
    std::uint64_t run();

    unsigned coreCount() const { return config_.cores; }
    unsigned bankCount() const { return config_.banks; }
    Tick quantum() const { return laneSet_.quantum(); }
    const CoreLane &core(unsigned i) const { return *cores_.at(i); }
    const L2BankLane &bank(unsigned i) const { return *banks_.at(i); }
    const LaneSet::Stats &laneStats() const
    { return laneSet_.stats(); }
    const TaskScheduler *scheduler() const { return scheduler_.get(); }

    /**
     * FNV-1a over every integer counter of every component plus the
     * LaneSet totals, in fixed component order. Two runs are
     * bit-identical iff their checksums match; bench_sim_parallel
     * and tests/test_sim_parallel.cc assert this across lane counts.
     */
    std::uint64_t statsChecksum() const;

    /** The deterministic synthetic stream of core `c` (exposed so
     *  tests can cross-check against a hand-rolled replay). */
    static std::vector<MemRef>
    syntheticStream(const LaneMachineConfig &config, unsigned c);

  private:
    unsigned bankFor(std::uint64_t addr) const;
    void issue(CoreLane &core, std::uint64_t addr, bool write,
               CoreLane::Resume resume);

    LaneMachineConfig config_;
    MeshModel mesh_;
    LaneSet laneSet_;
    std::vector<std::unique_ptr<CoreLane>> cores_;
    std::vector<std::unique_ptr<L2BankLane>> banks_;
    std::unique_ptr<TaskScheduler> scheduler_;
    TraceCollector *trace_ = nullptr;
    MetricsRegistry *metrics_ = nullptr;
    double quantumBeginUs_ = 0.0;
};

} // namespace parallax

#endif // PARALLAX_CPU_LANE_MACHINE_HH
