#include "yags.hh"

#include "sim/logging.hh"

namespace parallax
{

namespace
{

std::size_t
roundDownPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p * 2 <= n)
        p *= 2;
    return p;
}

bool
counterTaken(std::uint8_t c)
{
    return c >= 2;
}

std::uint8_t
bump(std::uint8_t c, bool taken)
{
    if (taken)
        return c < 3 ? c + 1 : 3;
    return c > 0 ? c - 1 : 0;
}

} // namespace

Yags::Yags(YagsConfig config) : config_(config)
{
    if (config_.sizeKb == 0)
        fatal("YAGS predictor needs a non-zero budget");
    // Budget split: half to the choice PHT (2 bits/entry), a quarter
    // to each direction cache (2-bit counter + tag ~ 10 bits/entry).
    const std::uint64_t bits =
        static_cast<std::uint64_t>(config_.sizeKb) * 1024 * 8;
    const std::size_t choice_entries =
        roundDownPow2(static_cast<std::size_t>(bits / 2 / 2));
    const std::size_t cache_entries = roundDownPow2(
        static_cast<std::size_t>(bits / 4 / (2 + config_.tagBits)));
    choice_.assign(std::max<std::size_t>(choice_entries, 16), 1);
    takenCache_.assign(std::max<std::size_t>(cache_entries, 16),
                       TaggedEntry{});
    notTakenCache_.assign(std::max<std::size_t>(cache_entries, 16),
                          TaggedEntry{});
}

std::size_t
Yags::choiceIndex(std::uint64_t pc) const
{
    return pc % choice_.size();
}

std::size_t
Yags::cacheIndex(std::uint64_t pc) const
{
    return (pc ^ history_) % takenCache_.size();
}

std::uint16_t
Yags::tagOf(std::uint64_t pc) const
{
    return static_cast<std::uint16_t>(pc &
                                      ((1u << config_.tagBits) - 1));
}

bool
Yags::predict(std::uint64_t pc) const
{
    ++lookups_;
    const bool choice_taken = counterTaken(choice_[choiceIndex(pc)]);
    const std::size_t index = cacheIndex(pc);
    const std::uint16_t tag = tagOf(pc);
    // Consult the exception cache for the *opposite* direction.
    if (choice_taken) {
        const TaggedEntry &entry = notTakenCache_[index];
        if (entry.tag == tag)
            return counterTaken(entry.counter);
        return true;
    }
    const TaggedEntry &entry = takenCache_[index];
    if (entry.tag == tag)
        return counterTaken(entry.counter);
    return false;
}

void
Yags::update(std::uint64_t pc, bool taken)
{
    const std::size_t ci = choiceIndex(pc);
    const bool choice_taken = counterTaken(choice_[ci]);
    const std::size_t index = cacheIndex(pc);
    const std::uint16_t tag = tagOf(pc);

    if (choice_taken) {
        TaggedEntry &entry = notTakenCache_[index];
        if (entry.tag == tag) {
            entry.counter = bump(entry.counter, taken);
        } else if (!taken) {
            // Allocate an exception entry for the surprise.
            entry.tag = tag;
            entry.counter = 1;
        }
    } else {
        TaggedEntry &entry = takenCache_[index];
        if (entry.tag == tag) {
            entry.counter = bump(entry.counter, taken);
        } else if (taken) {
            entry.tag = tag;
            entry.counter = 2;
        }
    }
    // The choice PHT trains unless the exception cache was both
    // present and correct while the choice was wrong.
    choice_[ci] = bump(choice_[ci], taken);

    history_ = ((history_ << 1) | (taken ? 1 : 0)) &
               ((1ull << config_.historyBits) - 1);
}

bool
Yags::predictAndUpdate(std::uint64_t pc, bool taken)
{
    const bool predicted = predict(pc);
    if (predicted != taken)
        ++mispredicts_;
    update(pc, taken);
    return predicted == taken;
}

ReturnAddressStack::ReturnAddressStack(int depth)
    : depth_(static_cast<std::size_t>(depth))
{
    if (depth <= 0)
        fatal("RAS depth must be positive");
}

void
ReturnAddressStack::push(std::uint64_t return_pc)
{
    if (stack_.size() == depth_)
        stack_.erase(stack_.begin()); // Overflow drops the oldest.
    stack_.push_back(return_pc);
}

std::uint64_t
ReturnAddressStack::pop()
{
    if (stack_.empty())
        return 0;
    const std::uint64_t pc = stack_.back();
    stack_.pop_back();
    return pc;
}

} // namespace parallax
