/**
 * @file
 * YAGS branch predictor (Eden & Mudge), plus a return-address stack.
 *
 * The paper's cores use a 17 KB YAGS predictor with a 64-entry RAS
 * (Table 5), and the shader-class FG core scales it down to 1 KB
 * (Table 6). YAGS keeps a bimodal choice PHT indexed by PC and two
 * tagged exception caches (taken / not-taken) indexed by PC xor
 * global history; the direction cache is consulted only when its
 * tag matches, otherwise the choice table decides.
 */

#ifndef PARALLAX_CPU_YAGS_HH
#define PARALLAX_CPU_YAGS_HH

#include <cstdint>
#include <vector>

namespace parallax
{

/** Predictor geometry derived from a storage budget. */
struct YagsConfig
{
    /** Total storage budget in kilobytes (paper: 17 or 1 or 64). */
    std::uint32_t sizeKb = 17;
    int historyBits = 12;
    int tagBits = 8;
};

/** The YAGS direction predictor. */
class Yags
{
  public:
    explicit Yags(YagsConfig config = YagsConfig());

    /** Predict the direction of a conditional branch at `pc`. */
    bool predict(std::uint64_t pc) const;

    /** Train with the actual outcome and advance global history. */
    void update(std::uint64_t pc, bool taken);

    const YagsConfig &config() const { return config_; }

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

    /** Convenience: predict, compare, update; true if correct. */
    bool predictAndUpdate(std::uint64_t pc, bool taken);

  private:
    struct TaggedEntry
    {
        std::uint16_t tag = 0xffff;
        std::uint8_t counter = 1; // 2-bit saturating.
    };

    std::size_t choiceIndex(std::uint64_t pc) const;
    std::size_t cacheIndex(std::uint64_t pc) const;
    std::uint16_t tagOf(std::uint64_t pc) const;

    YagsConfig config_;
    std::vector<std::uint8_t> choice_; // 2-bit counters.
    std::vector<TaggedEntry> takenCache_;
    std::vector<TaggedEntry> notTakenCache_;
    std::uint64_t history_ = 0;
    mutable std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
};

/** Fixed-depth return address stack (64 entries in the paper). */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(int depth = 64);

    void push(std::uint64_t return_pc);

    /** Pop a prediction; 0 if empty (forced mispredict). */
    std::uint64_t pop();

  private:
    std::vector<std::uint64_t> stack_;
    std::size_t depth_;
};

} // namespace parallax

#endif // PARALLAX_CPU_YAGS_HH
