#include "mem_trace.hh"

#include <algorithm>
#include <unordered_map>

#include "sim/logging.hh"

namespace parallax
{

namespace record
{

std::uint64_t
jointBytes(JointType type)
{
    switch (type) {
      case JointType::Contact: return contactJointBytes;
      case JointType::Ball: return ballJointBytes;
      case JointType::Hinge: return hingeJointBytes;
      case JointType::Slider: return sliderJointBytes;
      case JointType::Fixed: return fixedJointBytes;
    }
    return contactJointBytes;
}

} // namespace record

namespace
{

constexpr std::uint64_t lineBytes = 64;

/** Touch every cache line of a record. */
void
touch(std::vector<MemRef> &out, std::uint64_t addr,
      std::uint64_t bytes, bool write, bool kernel = false)
{
    const std::uint64_t first = addr / lineBytes;
    const std::uint64_t last = (addr + bytes - 1) / lineBytes;
    for (std::uint64_t line = first; line <= last; ++line) {
        out.push_back(MemRef{line * lineBytes,
                             static_cast<std::uint16_t>(lineBytes),
                             write, kernel});
    }
}

/** Touch only the first portion of a record (hot fields). */
void
touchHead(std::vector<MemRef> &out, std::uint64_t addr,
          std::uint64_t bytes, bool write)
{
    touch(out, addr, std::min<std::uint64_t>(bytes, lineBytes),
          write);
}

} // namespace

std::size_t
StepTrace::totalRefs() const
{
    std::size_t total = 0;
    for (const auto &refs : phase)
        total += refs.size();
    return total;
}

std::uint64_t
kernelFootprintForThreads(unsigned threads)
{
    // Solaris pmap in the paper: ~850 KB per worker at 2-4 threads,
    // jumping to ~5 MB per worker at 8 threads.
    if (threads <= 4)
        return 850ull * 1024;
    if (threads >= 8)
        return 5ull * 1024 * 1024;
    const double t = (threads - 4) / 4.0;
    return static_cast<std::uint64_t>(
        (1.0 - t) * 850.0 * 1024 + t * 5.0 * 1024 * 1024);
}

TraceGenerator::TraceGenerator(TraceOptions options)
    : options_(options)
{
}

StepTrace
TraceGenerator::generate(const World &world) const
{
    StepTrace trace;
    genBroadphase(world, trace.refs(Phase::Broadphase));
    genNarrowphase(world, trace.refs(Phase::Narrowphase));
    genIslandCreation(world, trace.refs(Phase::IslandCreation));
    genIslandProcessing(world,
                        trace.refs(Phase::IslandProcessing));
    genCloth(world, trace.refs(Phase::Cloth));

    // OS overhead: the paper attributes the 8-thread miss explosion
    // to kernel memory touched inside Island Processing and Cloth.
    const std::uint64_t kernel_bytes =
        options_.kernelBytesPerThread;
    for (unsigned t = 0; t < std::max(1u, options_.threads); ++t) {
        genKernelRefs(trace.refs(Phase::IslandProcessing), t,
                      kernel_bytes / 2);
        genKernelRefs(trace.refs(Phase::Cloth), t, kernel_bytes / 2);
    }
    return trace;
}

void
TraceGenerator::genBroadphase(const World &world,
                              std::vector<MemRef> &out) const
{
    // AABB refresh pass in geom-id order: read geom + body pose,
    // write the AABB back into the geom record.
    std::vector<const Geom *> bounded;
    for (const auto &g : world.geoms()) {
        if (!g->enabled())
            continue;
        touch(out, AddressMap::geom(g->id()), record::geomBytes,
              false);
        if (g->body() != nullptr) {
            touchHead(out, AddressMap::object(g->body()->id()),
                      record::objectBytes, false);
        }
        touchHead(out, AddressMap::geom(g->id()), record::geomBytes,
                  true);
        if (g->shape().type() != ShapeType::Plane)
            bounded.push_back(g.get());
    }

    // Sort-axis structure update: visit entries in sorted-x order.
    std::sort(bounded.begin(), bounded.end(),
              [](const Geom *a, const Geom *b) {
                  if (a->bounds().lo.x != b->bounds().lo.x)
                      return a->bounds().lo.x < b->bounds().lo.x;
                  return a->id() < b->id();
              });
    for (std::size_t i = 0; i < bounded.size(); ++i) {
        touch(out, AddressMap::sortEntry(i), 16, false);
        touch(out, AddressMap::sortEntry(i), 16, true);
        touchHead(out, AddressMap::geom(bounded[i]->id()),
                  record::geomBytes, false);
    }

    // Sweep: each candidate pair reads both geoms' bounds.
    for (const GeomPair &pair : world.lastPairs()) {
        touchHead(out, AddressMap::geom(pair.a), record::geomBytes,
                  false);
        touchHead(out, AddressMap::geom(pair.b), record::geomBytes,
                  false);
    }
}

void
TraceGenerator::genNarrowphase(const World &world,
                               std::vector<MemRef> &out) const
{
    // Shape ordinals for shared shape records.
    std::unordered_map<const Shape *, std::uint64_t> shape_ordinal;
    for (const auto &shape : world.shapes()) {
        shape_ordinal.emplace(shape.get(), shape_ordinal.size());
    }

    const auto &pairs = world.lastPairs();
    const unsigned threads = std::max(1u, options_.threads);
    const std::size_t chunk = (pairs.size() + threads - 1) / threads;

    for (unsigned t = 0; t < threads; ++t) {
        const std::size_t begin = t * chunk;
        const std::size_t end =
            std::min(pairs.size(), begin + chunk);
        std::uint64_t contact_index = 0;
        for (std::size_t i = begin; i < end; ++i) {
            const Geom *ga = world.geom(pairs[i].a);
            const Geom *gb = world.geom(pairs[i].b);
            touch(out, AddressMap::geom(pairs[i].a),
                  record::geomBytes, false);
            touch(out, AddressMap::geom(pairs[i].b),
                  record::geomBytes, false);
            if (ga->body() != nullptr) {
                touchHead(out,
                          AddressMap::object(ga->body()->id()),
                          record::objectBytes, false);
            }
            if (gb->body() != nullptr) {
                touchHead(out,
                          AddressMap::object(gb->body()->id()),
                          record::objectBytes, false);
            }
            touch(out, AddressMap::shape(shape_ordinal[&ga->shape()]),
                  128, false);
            touch(out, AddressMap::shape(shape_ordinal[&gb->shape()]),
                  128, false);
            // Per-thread contact store (the per-thread joint group
            // that removes ODE's serialization).
            touch(out,
                  AddressMap::contact(t * 0x10000 + contact_index++),
                  record::contactBytes, true);
        }
    }
}

void
TraceGenerator::genIslandCreation(const World &world,
                                  std::vector<MemRef> &out) const
{
    // Serial pass over all objects.
    for (const auto &body : world.bodies()) {
        touchHead(out, AddressMap::object(body->id()),
                  record::objectBytes, false);
        touch(out, AddressMap::islandScratch(body->id()), 8, true);
    }
    // Union-find over permanent joints: pointer chasing between the
    // joint record, its endpoints, and the scratch array.
    for (const auto &joint : world.joints()) {
        if (joint->broken())
            continue;
        touch(out, AddressMap::joint(joint->id()),
              record::jointBytes(joint->type()), false);
        const RigidBody *a = joint->bodyA();
        const RigidBody *b = joint->bodyB();
        if (a != nullptr) {
            touchHead(out, AddressMap::object(a->id()),
                      record::objectBytes, false);
            touch(out, AddressMap::islandScratch(a->id()), 8, false);
            touch(out, AddressMap::islandScratch(a->id()), 8, true);
        }
        if (b != nullptr) {
            touchHead(out, AddressMap::object(b->id()),
                      record::objectBytes, false);
            touch(out, AddressMap::islandScratch(b->id()), 8, false);
        }
    }
    // And over this step's contacts.
    std::uint64_t index = 0;
    for (const Contact &c : world.lastContacts()) {
        touch(out, AddressMap::contact(index++),
              record::contactBytes, false);
        const Geom *ga = world.geom(c.geomA);
        const Geom *gb = world.geom(c.geomB);
        for (const Geom *g : {ga, gb}) {
            if (g != nullptr && g->body() != nullptr) {
                touch(out,
                      AddressMap::islandScratch(g->body()->id()), 8,
                      false);
            }
        }
    }
}

void
TraceGenerator::genIslandProcessing(const World &world,
                                    std::vector<MemRef> &out) const
{
    // Rebuild island membership: joints and contacts keyed by the
    // island of their first dynamic body.
    struct IslandWork
    {
        std::vector<const RigidBody *> bodies;
        std::vector<std::pair<std::uint64_t, std::uint64_t>>
            jointRecords; // (addr, bytes)
        std::vector<std::pair<BodyId, BodyId>> jointBodies;
    };
    std::unordered_map<std::uint32_t, IslandWork> islands;

    for (const auto &body : world.bodies()) {
        if (body->islandId() != ~std::uint32_t(0))
            islands[body->islandId()].bodies.push_back(body.get());
    }
    auto islandOfBody = [&](const RigidBody *b) -> std::int64_t {
        if (b == nullptr || b->islandId() == ~std::uint32_t(0))
            return -1;
        return b->islandId();
    };
    for (const auto &joint : world.joints()) {
        if (joint->broken())
            continue;
        std::int64_t island = islandOfBody(joint->bodyA());
        if (island < 0)
            island = islandOfBody(joint->bodyB());
        if (island < 0)
            continue;
        auto &work = islands[static_cast<std::uint32_t>(island)];
        work.jointRecords.emplace_back(
            AddressMap::joint(joint->id()),
            record::jointBytes(joint->type()));
        work.jointBodies.emplace_back(
            joint->bodyA() != nullptr ? joint->bodyA()->id()
                                      : invalidBodyId,
            joint->bodyB() != nullptr ? joint->bodyB()->id()
                                      : invalidBodyId);
    }
    std::uint64_t contact_index = 0;
    for (const Contact &c : world.lastContacts()) {
        const Geom *ga = world.geom(c.geomA);
        const Geom *gb = world.geom(c.geomB);
        const RigidBody *ba = ga != nullptr ? ga->body() : nullptr;
        const RigidBody *bb = gb != nullptr ? gb->body() : nullptr;
        std::int64_t island = islandOfBody(ba);
        if (island < 0)
            island = islandOfBody(bb);
        const std::uint64_t addr =
            AddressMap::contact(contact_index++);
        if (island < 0)
            continue;
        auto &work = islands[static_cast<std::uint32_t>(island)];
        work.jointRecords.emplace_back(addr,
                                       record::contactBytes);
        work.jointBodies.emplace_back(
            ba != nullptr ? ba->id() : invalidBodyId,
            bb != nullptr ? bb->id() : invalidBodyId);
    }

    // Deterministic island order.
    std::vector<std::uint32_t> order;
    order.reserve(islands.size());
    for (const auto &[id, work] : islands)
        order.push_back(id);
    std::sort(order.begin(), order.end());

    for (std::uint32_t id : order) {
        const IslandWork &work = islands[id];
        // Row build: full joint + endpoint records once.
        for (std::size_t j = 0; j < work.jointRecords.size(); ++j) {
            touch(out, work.jointRecords[j].first,
                  work.jointRecords[j].second, false);
            const auto [a, b] = work.jointBodies[j];
            if (a != invalidBodyId) {
                touch(out, AddressMap::object(a),
                      record::objectBytes, false);
            }
            if (b != invalidBodyId) {
                touch(out, AddressMap::object(b),
                      record::objectBytes, false);
            }
        }
        // Relaxation sweeps: hot joint line + endpoint velocity
        // lines, read-modify-write.
        for (int sweep = 0; sweep < options_.solverSweepsTraced;
             ++sweep) {
            for (std::size_t j = 0; j < work.jointRecords.size();
                 ++j) {
                touchHead(out, work.jointRecords[j].first,
                          work.jointRecords[j].second, false);
                const auto [a, b] = work.jointBodies[j];
                for (BodyId body_id : {a, b}) {
                    if (body_id == invalidBodyId)
                        continue;
                    // Velocity fields: two lines of the object.
                    touch(out, AddressMap::object(body_id) + 64, 128,
                          false);
                    touch(out, AddressMap::object(body_id) + 64, 128,
                          true);
                }
            }
        }
        // Integration: read-modify-write every body record.
        for (const RigidBody *body : work.bodies) {
            touch(out, AddressMap::object(body->id()),
                  record::objectBytes, false);
            touchHead(out, AddressMap::object(body->id()),
                      record::objectBytes, true);
        }
    }
}

void
TraceGenerator::genCloth(const World &world,
                         std::vector<MemRef> &out) const
{
    for (const auto &cloth : world.cloths()) {
        const auto vertex_count =
            static_cast<std::uint64_t>(cloth->vertexCount());
        // Verlet integration: stream over the vertex array.
        for (std::uint64_t v = 0; v < vertex_count; ++v) {
            touch(out, AddressMap::clothVertex(cloth->id(), v),
                  record::clothVertexBytes, false);
            touch(out, AddressMap::clothVertex(cloth->id(), v),
                  record::clothVertexBytes, true);
        }
        // Constraint sweeps: each constraint touches two vertices.
        for (int sweep = 0; sweep < options_.clothSweepsTraced;
             ++sweep) {
            for (const auto &c : cloth->constraints()) {
                touch(out, AddressMap::clothVertex(cloth->id(), c.a),
                      record::clothVertexBytes, true);
                touch(out, AddressMap::clothVertex(cloth->id(), c.b),
                      record::clothVertexBytes, true);
            }
        }
        // Collision: vertices against nearby geom records.
        const Aabb bounds = cloth->bounds();
        for (const auto &g : world.geoms()) {
            if (!g->enabled() || g->isBlast())
                continue;
            if (g->shape().type() == ShapeType::Plane ||
                g->bounds().overlaps(bounds)) {
                touch(out, AddressMap::geom(g->id()),
                      record::geomBytes, false);
            }
        }
    }
}

void
TraceGenerator::genKernelRefs(std::vector<MemRef> &out,
                              unsigned thread,
                              std::uint64_t bytes) const
{
    for (std::uint64_t offset = 0; offset < bytes;
         offset += lineBytes) {
        out.push_back(MemRef{AddressMap::kernel(thread, offset),
                             lineBytes, (offset % 256) == 0, true});
    }
}

} // namespace parallax
