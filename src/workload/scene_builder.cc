#include "scene_builder.hh"

#include <cmath>

namespace parallax
{

SceneBuilder::SceneBuilder(World &world, std::uint64_t seed)
    : world_(world), rng_(seed)
{
}

const BoxShape *
SceneBuilder::boxShape(const Vec3 &half)
{
    for (const auto &[dims, shape] : boxCache_) {
        if (dims == half)
            return shape;
    }
    const BoxShape *shape = world_.addBox(half);
    boxCache_.emplace_back(half, shape);
    return shape;
}

const SphereShape *
SceneBuilder::sphereShape(Real radius)
{
    for (const auto &[r, shape] : sphereCache_) {
        if (r == radius)
            return shape;
    }
    const SphereShape *shape = world_.addSphere(radius);
    sphereCache_.emplace_back(radius, shape);
    return shape;
}

const CapsuleShape *
SceneBuilder::capsuleShape(Real radius, Real half_height)
{
    for (const auto &[dims, shape] : capsuleCache_) {
        if (dims.first == radius && dims.second == half_height)
            return shape;
    }
    const CapsuleShape *shape = world_.addCapsule(radius, half_height);
    capsuleCache_.emplace_back(std::make_pair(radius, half_height),
                               shape);
    return shape;
}

void
SceneBuilder::addGround()
{
    const PlaneShape *plane = world_.addPlane({0, 1, 0}, 0.0);
    world_.createGeom(plane, world_.createStaticBody(Transform()));
}

RigidBody *
SceneBuilder::addHumanoid(const Vec3 &pos, const Vec3 &velocity)
{
    // Anthropomorphic capsule segments (radius, half-height, offset
    // from pelvis, density).
    struct SegmentSpec
    {
        Real radius;
        Real halfHeight;
        Vec3 offset;
    };

    // Pelvis sits at `pos`; the figure stands along +y.
    const SegmentSpec specs[16] = {
        {0.12, 0.08, {0.00, 0.00, 0.00}},   // 0 pelvis
        {0.11, 0.10, {0.00, 0.25, 0.00}},   // 1 torso
        {0.12, 0.10, {0.00, 0.50, 0.00}},   // 2 chest
        {0.09, 0.05, {0.00, 0.75, 0.00}},   // 3 head
        {0.05, 0.12, {0.22, 0.55, 0.00}},   // 4 R upper arm
        {0.04, 0.12, {0.22, 0.25, 0.00}},   // 5 R forearm
        {0.04, 0.04, {0.22, 0.05, 0.00}},   // 6 R hand
        {0.05, 0.12, {-0.22, 0.55, 0.00}},  // 7 L upper arm
        {0.04, 0.12, {-0.22, 0.25, 0.00}},  // 8 L forearm
        {0.04, 0.04, {-0.22, 0.05, 0.00}},  // 9 L hand
        {0.07, 0.17, {0.10, -0.30, 0.00}},  // 10 R thigh
        {0.05, 0.17, {0.10, -0.70, 0.00}},  // 11 R shin
        {0.04, 0.05, {0.10, -0.95, 0.07}},  // 12 R foot
        {0.07, 0.17, {-0.10, -0.30, 0.00}}, // 13 L thigh
        {0.05, 0.17, {-0.10, -0.70, 0.00}}, // 14 L shin
        {0.04, 0.05, {-0.10, -0.95, 0.07}}, // 15 L foot
    };

    std::vector<RigidBody *> segments;
    segments.reserve(16);
    for (const SegmentSpec &spec : specs) {
        const CapsuleShape *cap =
            capsuleShape(spec.radius, spec.halfHeight);
        RigidBody *body = world_.createDynamicBody(
            Transform(Quat(), pos + spec.offset), *cap, 985.0);
        body->setLinearVelocity(velocity);
        world_.createGeom(cap, body);
        segments.push_back(body);
    }

    // Joint tree: (child, parent, ball?) with anchors between them.
    struct JointSpec
    {
        int child;
        int parent;
        bool ball;
    };
    const JointSpec joint_specs[15] = {
        {1, 0, true},   // torso-pelvis
        {2, 1, true},   // chest-torso
        {3, 2, true},   // head-chest (neck)
        {4, 2, true},   // R shoulder
        {5, 4, false},  // R elbow
        {6, 5, false},  // R wrist
        {7, 2, true},   // L shoulder
        {8, 7, false},  // L elbow
        {9, 8, false},  // L wrist
        {10, 0, true},  // R hip
        {11, 10, false}, // R knee
        {12, 11, false}, // R ankle
        {13, 0, true},  // L hip
        {14, 13, false}, // L knee
        {15, 14, false}, // L ankle
    };
    for (const JointSpec &js : joint_specs) {
        const Vec3 anchor = (segments[js.child]->position() +
                             segments[js.parent]->position()) *
                            0.5;
        if (js.ball) {
            world_.createBallJoint(segments[js.child],
                                   segments[js.parent], anchor);
        } else {
            world_.createHingeJoint(segments[js.child],
                                    segments[js.parent], anchor,
                                    {1, 0, 0});
        }
    }
    return segments[0];
}

RigidBody *
SceneBuilder::addCar(const Vec3 &pos, const Vec3 &velocity)
{
    const BoxShape *chassis_shape = boxShape({1.0, 0.25, 0.5});
    const BoxShape *frame_shape = boxShape({0.9, 0.08, 0.45});
    const SphereShape *wheel_shape = sphereShape(0.3);

    RigidBody *chassis = world_.createDynamicBody(
        Transform(Quat(), pos + Vec3{0, 0.9, 0}), *chassis_shape,
        400.0);
    chassis->setLinearVelocity(velocity);
    world_.createGeom(chassis_shape, chassis);

    RigidBody *frame = world_.createDynamicBody(
        Transform(Quat(), pos + Vec3{0, 0.4, 0}), *frame_shape,
        400.0);
    frame->setLinearVelocity(velocity);
    world_.createGeom(frame_shape, frame);

    // Suspension: the frame slides vertically under the chassis.
    world_.createSliderJoint(chassis, frame, {0, 1, 0});

    const Vec3 wheel_offsets[4] = {{0.7, 0.3, 0.55},
                                   {0.7, 0.3, -0.55},
                                   {-0.7, 0.3, 0.55},
                                   {-0.7, 0.3, -0.55}};
    for (const Vec3 &off : wheel_offsets) {
        RigidBody *wheel = world_.createDynamicBody(
            Transform(Quat(), pos + off), *wheel_shape, 150.0);
        wheel->setLinearVelocity(velocity);
        world_.createGeom(wheel_shape, wheel);
        world_.createHingeJoint(wheel, frame, pos + off, {0, 0, 1});
    }
    return chassis;
}

std::vector<RigidBody *>
SceneBuilder::addWall(const Vec3 &origin, const Vec3 &along,
                      int bricks_x, int bricks_y,
                      const Vec3 &brick_half, bool prefractured,
                      int debris_per_brick)
{
    const BoxShape *brick = boxShape(brick_half);
    const Vec3 dir = along.normalized();
    // Stride by the brick's extent along the wall direction (a
    // z-running wall of z-long bricks must step by the z extent).
    const Real along_half = std::fabs(dir.x) * brick_half.x +
                            std::fabs(dir.y) * brick_half.y +
                            std::fabs(dir.z) * brick_half.z;
    // Running bond: alternate rows offset by half a brick, so each
    // brick rests on two below. The wall is one contact-connected
    // island through its vertical contacts, while the small lateral
    // gap keeps side neighbours from doubling the contact count.
    const Real step_x = along_half * 2.001;
    const Real step_y = brick_half.y * 2.0;

    std::vector<RigidBody *> bricks;
    for (int y = 0; y < bricks_y; ++y) {
        const Real bond = (y % 2) ? along_half : 0.0;
        for (int x = 0; x < bricks_x; ++x) {
            const Vec3 pos = origin + dir * (x * step_x + bond) +
                Vec3{0, brick_half.y + y * step_y, 0};
            RigidBody *body;
            if (prefractured) {
                // Parent brick is a dynamic body (the wall can be
                // toppled) that swaps for its debris when a blast
                // volume touches it.
                body = world_.createDynamicBody(
                    Transform(Quat(), pos), *brick, 800.0);
                world_.createGeom(brick, body);

                // Debris pieces: disabled dynamic boxes in the 2x2x2
                // octant grid of the parent's volume, so enabled
                // debris starts in contact rather than interpenetrating
                // (which would inject solver energy).
                const Vec3 piece_half = brick_half * 0.5;
                const BoxShape *piece = boxShape(piece_half);
                std::vector<BodyId> debris;
                for (int k = 0; k < debris_per_brick; ++k) {
                    const int slot = k % 8;
                    const Vec3 offset{
                        ((slot & 1) ? 1.0 : -1.0) * piece_half.x,
                        ((slot & 2) ? 1.0 : -1.0) * piece_half.y,
                        ((slot & 4) ? 1.0 : -1.0) * piece_half.z};
                    RigidBody *d = world_.createDynamicBody(
                        Transform(Quat(), pos + offset), *piece,
                        800.0);
                    d->setEnabled(false);
                    world_.createGeom(piece, d);
                    debris.push_back(d->id());
                }
                world_.effects().registerFractureGroup(body->id(),
                                                       debris);
            } else {
                body = world_.createDynamicBody(
                    Transform(Quat(), pos), *brick, 800.0);
                world_.createGeom(brick, body);
            }
            bricks.push_back(body);
        }
    }
    return bricks;
}

std::vector<RigidBody *>
SceneBuilder::addBridge(const Vec3 &start, int planks,
                        Real break_force)
{
    const Vec3 plank_half{0.5, 0.05, 1.0};
    const BoxShape *plank_shape = boxShape(plank_half);
    const Real step = plank_half.x * 2.02;

    std::vector<RigidBody *> plank_bodies;
    RigidBody *prev = world_.createStaticBody(
        Transform(Quat(), start - Vec3{step, 0, 0}));
    for (int i = 0; i < planks; ++i) {
        const Vec3 pos = start + Vec3{i * step, 0, 0};
        RigidBody *plank = world_.createDynamicBody(
            Transform(Quat(), pos), *plank_shape, 600.0);
        world_.createGeom(plank_shape, plank);
        FixedJoint *j = world_.createFixedJoint(plank, prev);
        j->setBreakForce(break_force);
        plank_bodies.push_back(plank);
        prev = plank;
    }
    // Anchor the far end too.
    RigidBody *end_anchor = world_.createStaticBody(Transform(
        Quat(), start + Vec3{planks * step, 0, 0}));
    FixedJoint *j = world_.createFixedJoint(plank_bodies.back(),
                                            end_anchor);
    j->setBreakForce(break_force);
    return plank_bodies;
}

void
SceneBuilder::addBuilding(const Vec3 &center, int bricks_per_wall,
                          int rows, bool prefractured,
                          int debris_per_brick)
{
    const Vec3 brick_half{0.5, 0.25, 0.25};
    const Real wall_len = bricks_per_wall * brick_half.x * 2.001;
    // Three walls enclosing the area, open toward +x: two parallel
    // walls along x, and a closing wall along z set just outside
    // their ends so the corners do not interpenetrate.
    addWall(center + Vec3{-wall_len / 2, 0, -wall_len / 2},
            {1, 0, 0}, bricks_per_wall, rows, brick_half,
            prefractured, debris_per_brick);
    addWall(center + Vec3{-wall_len / 2, 0, wall_len / 2}, {1, 0, 0},
            bricks_per_wall, rows, brick_half, prefractured,
            debris_per_brick);
    addWall(center + Vec3{-wall_len / 2 - 0.8, 0,
                          -wall_len / 2 + 0.5},
            {0, 0, 1}, bricks_per_wall - 1, rows,
            Vec3{0.25, 0.25, 0.5}, prefractured, debris_per_brick);
}

void
SceneBuilder::addHeightfieldTerrain(const Vec3 &origin, int nx,
                                    int nz, Real spacing,
                                    Real amplitude)
{
    std::vector<Real> heights;
    heights.reserve(static_cast<size_t>(nx) * nz);
    for (int z = 0; z < nz; ++z) {
        for (int x = 0; x < nx; ++x) {
            const Real h =
                amplitude *
                (std::sin(x * 0.7) * std::cos(z * 0.5) * 0.5 + 0.5) +
                rng_.uniform(0.0, amplitude * 0.1);
            heights.push_back(h);
        }
    }
    const HeightfieldShape *hf = world_.addHeightfield(
        std::move(heights), nx, nz, spacing);
    world_.createGeom(hf, world_.createStaticBody(
                              Transform(Quat(), origin)));
}

void
SceneBuilder::addTriMeshTerrain(const Vec3 &origin, int nx, int nz,
                                Real spacing, Real amplitude)
{
    std::vector<Vec3> verts;
    verts.reserve(static_cast<size_t>(nx) * nz);
    for (int z = 0; z < nz; ++z) {
        for (int x = 0; x < nx; ++x) {
            const Real h =
                amplitude *
                (std::cos(x * 0.6) * std::sin(z * 0.8) * 0.5 + 0.5);
            verts.push_back(Vec3{x * spacing, h, z * spacing});
        }
    }
    std::vector<TriMeshShape::Triangle> tris;
    auto index = [nx](int x, int z) {
        return static_cast<std::uint32_t>(z * nx + x);
    };
    for (int z = 0; z + 1 < nz; ++z) {
        for (int x = 0; x + 1 < nx; ++x) {
            tris.push_back({index(x, z), index(x, z + 1),
                            index(x + 1, z)});
            tris.push_back({index(x + 1, z), index(x, z + 1),
                            index(x + 1, z + 1)});
        }
    }
    const TriMeshShape *mesh =
        world_.addTriMesh(std::move(verts), std::move(tris));
    world_.createGeom(mesh, world_.createStaticBody(
                                Transform(Quat(), origin)));
}

void
SceneBuilder::addStaticObstacle(const Vec3 &pos, const Vec3 &half)
{
    const BoxShape *box = boxShape(half);
    world_.createGeom(box, world_.createStaticBody(
                               Transform(Quat(), pos)));
}

RigidBody *
SceneBuilder::addProjectile(const Vec3 &pos, const Vec3 &velocity,
                            Real radius, bool explosive,
                            const BlastConfig &blast)
{
    const SphereShape *s = sphereShape(radius);
    RigidBody *body = world_.createDynamicBody(
        Transform(Quat(), pos), *s, 2000.0);
    body->setLinearVelocity(velocity);
    Geom *geom = world_.createGeom(s, body);
    if (explosive) {
        geom->setExplosive(true);
        world_.effects().registerExplosive(geom->id(), blast);
    }
    return body;
}

Cloth *
SceneBuilder::addLargeCloth(const Vec3 &origin)
{
    Cloth *cloth = world_.createCloth(25, 25, origin, 0.12, 3.0);
    // Pin the first row (drapery / netting hung from above).
    for (int i = 0; i < 25; ++i)
        cloth->pin(i);
    return cloth;
}

Cloth *
SceneBuilder::addSmallClothOnBody(RigidBody *body)
{
    const Vec3 origin = body->position() + Vec3{-0.2, 0.4, -0.2};
    Cloth *cloth = world_.createCloth(5, 5, origin, 0.1, 0.3);
    // Attach the two front corners to the body (a uniform/cape).
    world_.attachClothParticle(cloth, 0, body, {-0.2, 0.4, -0.2});
    world_.attachClothParticle(cloth, 4, body, {0.2, 0.4, -0.2});
    return cloth;
}

} // namespace parallax
