/**
 * @file
 * The five computational phases of the physics workload (Figure 1)
 * and the operation classes of the instruction-mix analysis (Figures
 * 7b and 9b).
 */

#ifndef PARALLAX_WORKLOAD_PHASE_HH
#define PARALLAX_WORKLOAD_PHASE_HH

#include <array>
#include <cstdint>

namespace parallax
{

/** Pipeline phases; all serialized with respect to each other. */
enum class Phase
{
    Broadphase,
    Narrowphase,
    IslandCreation,
    IslandProcessing,
    Cloth,
};

constexpr int numPhases = 5;

/** Human-readable phase name. */
const char *phaseName(Phase phase);

/** Phases that cannot exploit parallelism within the stage. */
constexpr bool
phaseIsSerial(Phase phase)
{
    return phase == Phase::Broadphase ||
           phase == Phase::IslandCreation;
}

/** Instruction classes of the paper's instruction-mix figures. */
enum class OpClass
{
    IntAlu,
    Branch,
    FloatAdd,
    FloatMult,
    RdPort,
    WrPort,
    Other,
};

constexpr int numOpClasses = 7;

/** Human-readable operation class name. */
const char *opClassName(OpClass cls);

/** A vector of operation counts by class. */
struct OpVector
{
    std::array<double, numOpClasses> ops{};

    double &operator[](OpClass cls)
    { return ops[static_cast<int>(cls)]; }
    double operator[](OpClass cls) const
    { return ops[static_cast<int>(cls)]; }

    OpVector &
    operator+=(const OpVector &o)
    {
        for (int i = 0; i < numOpClasses; ++i)
            ops[i] += o.ops[i];
        return *this;
    }

    OpVector
    operator*(double scale) const
    {
        OpVector r = *this;
        for (double &v : r.ops)
            v *= scale;
        return r;
    }

    OpVector
    operator+(const OpVector &o) const
    {
        OpVector r = *this;
        r += o;
        return r;
    }

    /** Total operations across all classes. */
    double
    total() const
    {
        double t = 0;
        for (double v : ops)
            t += v;
        return t;
    }

    /** Fraction of the total in the given class (0 if empty). */
    double
    fraction(OpClass cls) const
    {
        const double t = total();
        return t > 0 ? (*this)[cls] / t : 0.0;
    }
};

} // namespace parallax

#endif // PARALLAX_WORKLOAD_PHASE_HH
