/**
 * @file
 * Structure-faithful memory reference streams for the cache studies.
 *
 * The paper replayed real SPARC memory traces through the GEMS cache
 * model; we derive reference streams from the live engine's own
 * state instead: every body, geom, joint, contact and cloth vertex
 * gets a fixed synthetic address (using the paper's record sizes —
 * 412 B per object, 116 B per geom, 148-392 B per joint), and each
 * phase touches those records in the order the engine actually
 * processes them. Footprints, reuse distances and inter-phase
 * eviction behaviour therefore track the real workload.
 */

#ifndef PARALLAX_WORKLOAD_MEM_TRACE_HH
#define PARALLAX_WORKLOAD_MEM_TRACE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "phase.hh"
#include "physics/world.hh"

namespace parallax
{

/** One memory reference. */
struct MemRef
{
    std::uint64_t addr;
    std::uint16_t size;
    bool write;
    bool kernel; // Operating-system reference (Figure 6b).
};

/** Paper record sizes (section 6.1). */
namespace record
{
constexpr std::uint64_t objectBytes = 412;
constexpr std::uint64_t geomBytes = 116;
constexpr std::uint64_t contactJointBytes = 148; // Smallest joint.
constexpr std::uint64_t ballJointBytes = 200;
constexpr std::uint64_t hingeJointBytes = 280;
constexpr std::uint64_t sliderJointBytes = 320;
constexpr std::uint64_t fixedJointBytes = 392; // Largest joint.
constexpr std::uint64_t clothVertexBytes = 48; // pos+prev+invMass.
constexpr std::uint64_t contactBytes = 96;

/** Size of a joint record by type. */
std::uint64_t jointBytes(JointType type);
} // namespace record

/**
 * Deterministic synthetic address layout. Each record class lives in
 * its own region, spaced far apart so regions never alias.
 */
class AddressMap
{
  public:
    static constexpr std::uint64_t objectBase = 0x1000'0000;
    static constexpr std::uint64_t geomBase = 0x3000'0000;
    static constexpr std::uint64_t shapeBase = 0x4000'0000;
    static constexpr std::uint64_t jointBase = 0x5000'0000;
    static constexpr std::uint64_t contactBase = 0x7000'0000;
    static constexpr std::uint64_t islandBase = 0x8000'0000;
    static constexpr std::uint64_t clothBase = 0x9000'0000;
    static constexpr std::uint64_t sortBase = 0xa000'0000;
    static constexpr std::uint64_t kernelBase = 0xc000'0000;

    static std::uint64_t object(BodyId id)
    { return objectBase + id * record::objectBytes; }
    static std::uint64_t geom(GeomId id)
    { return geomBase + id * record::geomBytes; }
    /** Shape records are shared; index by an opaque shape ordinal. */
    static std::uint64_t shape(std::uint64_t ordinal)
    { return shapeBase + ordinal * 256; }
    static std::uint64_t joint(JointId id)
    { return jointBase + id * 512; } // Worst-case slot per joint.
    static std::uint64_t contact(std::uint64_t index)
    { return contactBase + index * record::contactBytes; }
    static std::uint64_t islandScratch(std::uint64_t index)
    { return islandBase + index * 8; }
    static std::uint64_t clothVertex(ClothId cloth,
                                     std::uint64_t vertex)
    {
        return clothBase + cloth * 0x10'0000 +
               vertex * record::clothVertexBytes;
    }
    static std::uint64_t sortEntry(std::uint64_t index)
    { return sortBase + index * 16; }
    /** Per-thread kernel region (up to ~8 MB each). */
    static std::uint64_t kernel(unsigned thread, std::uint64_t offset)
    { return kernelBase + thread * 0x80'0000ull + offset; }
};

/** Per-phase reference streams for one simulation step. */
struct StepTrace
{
    std::array<std::vector<MemRef>, numPhases> phase;

    std::vector<MemRef> &refs(Phase p)
    { return phase[static_cast<int>(p)]; }
    const std::vector<MemRef> &refs(Phase p) const
    { return phase[static_cast<int>(p)]; }

    std::size_t totalRefs() const;
};

/** Parameters of the trace generator. */
struct TraceOptions
{
    /**
     * Worker threads the trace models (affects narrowphase / island
     * partitioning interleave and per-thread kernel footprints).
     */
    unsigned threads = 1;

    /**
     * Solver sweeps traced explicitly. The remaining (20 - traced)
     * sweeps revisit the same records and are pure cache hits; the
     * replay accounts them analytically.
     */
    int solverSweepsTraced = 2;

    /** Cloth relaxation sweeps traced explicitly. */
    int clothSweepsTraced = 2;

    /**
     * Per-thread kernel working set touched per step (bytes).
     * Solaris pmap measurement in the paper: ~850 KB per worker at
     * 2-4 threads, jumping to ~5 MB at 8 threads.
     */
    std::uint64_t kernelBytesPerThread = 850 * 1024;
};

/** Returns the paper's kernel footprint for a given thread count. */
std::uint64_t kernelFootprintForThreads(unsigned threads);

/**
 * Generates the five phase streams for the step that just executed
 * (uses World::lastPairs / lastContacts / body island ids).
 */
class TraceGenerator
{
  public:
    explicit TraceGenerator(TraceOptions options = TraceOptions());

    StepTrace generate(const World &world) const;

    const TraceOptions &options() const { return options_; }

  private:
    void genBroadphase(const World &world,
                       std::vector<MemRef> &out) const;
    void genNarrowphase(const World &world,
                        std::vector<MemRef> &out) const;
    void genIslandCreation(const World &world,
                           std::vector<MemRef> &out) const;
    void genIslandProcessing(const World &world,
                             std::vector<MemRef> &out) const;
    void genCloth(const World &world,
                  std::vector<MemRef> &out) const;
    void genKernelRefs(std::vector<MemRef> &out, unsigned thread,
                       std::uint64_t bytes) const;

    TraceOptions options_;
};

} // namespace parallax

#endif // PARALLAX_WORKLOAD_MEM_TRACE_HH
