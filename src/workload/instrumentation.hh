/**
 * @file
 * Converts engine step statistics into per-phase operation profiles
 * and fine-grain task inventories.
 */

#ifndef PARALLAX_WORKLOAD_INSTRUMENTATION_HH
#define PARALLAX_WORKLOAD_INSTRUMENTATION_HH

#include <cstdint>
#include <vector>

#include "cost_model.hh"
#include "phase.hh"
#include "physics/world.hh"

namespace parallax
{

/** Operation profile and task inventory of one simulation step. */
struct StepProfile
{
    /** Total operations per phase. */
    std::array<OpVector, numPhases> phaseOps{};

    /**
     * The fine-grain-parallel subset of each phase's operations:
     * pair tests in Narrowphase, row relaxations in Island
     * Processing, vertex work in Cloth. Zero for serial phases.
     */
    std::array<OpVector, numPhases> fgOps{};

    /** Narrowphase FG tasks: independent object-pairs. */
    std::uint64_t pairTasks = 0;

    /** Island Processing FG tasks per island: LCP rows. */
    std::vector<int> islandRows;

    /** Cloth FG tasks per cloth object: vertices. */
    std::vector<int> clothVertices;

    OpVector &ops(Phase p) { return phaseOps[static_cast<int>(p)]; }
    const OpVector &ops(Phase p) const
    { return phaseOps[static_cast<int>(p)]; }
    OpVector &fg(Phase p) { return fgOps[static_cast<int>(p)]; }
    const OpVector &fg(Phase p) const
    { return fgOps[static_cast<int>(p)]; }

    /** Coarse-grain (non-FG) operations of a phase. */
    OpVector cg(Phase p) const;

    /** Total operations across all phases. */
    double totalOps() const;

    /** Operations in the serial phases (Broadphase + Island Cr.). */
    double serialOps() const;

    StepProfile &operator+=(const StepProfile &o);
};

/** A frame is a fixed number of steps (paper: 3 at dt = 0.01). */
struct FrameProfile
{
    std::vector<StepProfile> steps;

    StepProfile aggregate() const;
    double totalOps() const;
};

/**
 * Derives a StepProfile from the World's last-step statistics and
 * the cost model.
 */
class Instrumentation
{
  public:
    static StepProfile profileStep(const World &world);
};

} // namespace parallax

#endif // PARALLAX_WORKLOAD_INSTRUMENTATION_HH
