/**
 * @file
 * Operation-cost model: converts engine work counters into the
 * instruction-level workload the architecture study consumes.
 *
 * The paper measured instruction counts from SPARC binaries under
 * Simics; we do not have that stack, so each unit of engine work
 * (one pair test, one LCP row relaxation, one cloth vertex, ...) is
 * assigned an operation vector whose magnitude and class mix are
 * calibrated against the paper's anchors: Table 3's per-frame
 * instruction counts, Figure 7(b)'s per-phase instruction mix, and
 * Figure 9(b)'s kernel mix. Constants live here, in one place, so
 * the calibration is auditable.
 */

#ifndef PARALLAX_WORKLOAD_COST_MODEL_HH
#define PARALLAX_WORKLOAD_COST_MODEL_HH

#include "phase.hh"
#include "physics/shapes/shape.hh"

namespace parallax
{

/** Per-unit operation vectors for every kind of engine work. */
namespace cost
{

/** Build an OpVector from per-class counts. */
constexpr OpVector
opVec(double int_alu, double branch, double fadd, double fmul,
      double rd, double wr, double other)
{
    OpVector v{};
    v.ops[static_cast<int>(OpClass::IntAlu)] = int_alu;
    v.ops[static_cast<int>(OpClass::Branch)] = branch;
    v.ops[static_cast<int>(OpClass::FloatAdd)] = fadd;
    v.ops[static_cast<int>(OpClass::FloatMult)] = fmul;
    v.ops[static_cast<int>(OpClass::RdPort)] = rd;
    v.ops[static_cast<int>(OpClass::WrPort)] = wr;
    v.ops[static_cast<int>(OpClass::Other)] = other;
    return v;
}

// --- Broadphase (serial; integer/branch dominant). ---
/** AABB refresh for one geom. */
inline constexpr OpVector bpGeomUpdate = opVec(18, 4, 8, 6, 10, 4, 2);
/** One geom's share of the sort-axis structure update. */
inline constexpr OpVector bpSortPerGeom = opVec(40, 22, 0, 0, 18, 8, 2);
/** One AABB overlap test in the sweep. */
inline constexpr OpVector bpOverlapTest = opVec(8, 5, 0, 0, 6, 0, 1);
/** Emitting one candidate pair. */
inline constexpr OpVector bpPairEmit = opVec(6, 2, 0, 0, 2, 3, 1);

// --- Narrowphase (fine-grain parallel; int + branch heavy). ---
/** Dispatch overhead per pair (the CG portion). */
inline constexpr OpVector npDispatch = opVec(30, 8, 0, 0, 12, 2, 2);
/** Contact emission (one contact point). */
inline constexpr OpVector npContactEmit = opVec(30, 6, 8, 4, 8, 18, 2);
/** Pair-test cost by unordered shape combination (the FG kernel). */
OpVector npPairTest(ShapeType a, ShapeType b);

// --- Island creation (serial; pointer chasing). ---
inline constexpr OpVector icPerBody = opVec(40, 16, 0, 0, 24, 6, 4);
inline constexpr OpVector icPerJoint = opVec(85, 35, 0, 0, 55, 12, 8);
inline constexpr OpVector icPerFind = opVec(7, 3, 0, 0, 4, 1, 0);
inline constexpr OpVector icPerIsland = opVec(24, 6, 0, 0, 8, 10, 2);

// --- Island processing (FP dominant). ---
/** Building one constraint row (Jacobian setup; CG portion). */
inline constexpr OpVector ipRowBuild =
    opVec(40, 10, 60, 68, 52, 22, 8);
/** One row relaxation (the FG kernel inner iteration). */
inline constexpr OpVector ipRowIteration =
    opVec(26, 9, 52, 58, 42, 12, 6);
/** Integrating one body (CG portion). */
inline constexpr OpVector ipBodyIntegrate =
    opVec(18, 4, 42, 48, 26, 16, 8);

// --- Cloth (FP dominant; more branches + special FP ops). ---
/** Verlet integration of one vertex (FG kernel). */
inline constexpr OpVector clVertexIntegrate =
    opVec(10, 3, 16, 12, 12, 8, 2);
/** One distance-constraint relaxation (FG kernel; includes sqrt). */
inline constexpr OpVector clConstraintRelax =
    opVec(12, 6, 18, 16, 14, 8, 6);
/** One vertex-vs-collider projection test (FG kernel). The paper's
 *  cloth collision uses ray casting against AABB hierarchies, so a
 *  single test is far heavier than the projection math alone. */
inline constexpr OpVector clCollisionTest =
    opVec(120, 78, 156, 150, 192, 24, 60);
/** Per-cloth CG overhead (collider gathering, task setup). */
inline constexpr OpVector clPerClothSetup =
    opVec(220, 60, 30, 20, 150, 40, 10);

} // namespace cost

} // namespace parallax

#endif // PARALLAX_WORKLOAD_COST_MODEL_HH
