/**
 * @file
 * The forward-looking physics benchmark suite (Tables 3 and 4).
 *
 * Eight parameterized scenes covering the high-level physical
 * actions of Table 1 — continuous contact, periodic contact, high
 * velocity impulse, explosions, and deformations — across the game
 * genres the paper enumerates. Entity counts reproduce the scale of
 * Table 4; derived quantities (object-pairs, islands) are measured
 * from simulation, exactly as in the paper.
 */

#ifndef PARALLAX_WORKLOAD_BENCHMARKS_HH
#define PARALLAX_WORKLOAD_BENCHMARKS_HH

#include <memory>
#include <string>

#include "instrumentation.hh"
#include "physics/world.hh"

namespace parallax
{

/** The eight benchmarks of the suite. */
enum class BenchmarkId
{
    Periodic,
    Ragdoll,
    Continuous,
    Breakable,
    Deformable,
    Explosions,
    Highspeed,
    Mix,
};

constexpr int numBenchmarks = 8;

constexpr BenchmarkId allBenchmarks[numBenchmarks] = {
    BenchmarkId::Periodic,   BenchmarkId::Ragdoll,
    BenchmarkId::Continuous, BenchmarkId::Breakable,
    BenchmarkId::Deformable, BenchmarkId::Explosions,
    BenchmarkId::Highspeed,  BenchmarkId::Mix,
};

/** Paper-reported reference numbers for calibration checks. */
struct BenchmarkInfo
{
    const char *name;      // Full name.
    const char *shortName; // Three-letter tag used in the figures.
    const char *genre;
    double paperInstPerFrame; // Table 3, in millions.
};

/** Static metadata for a benchmark. */
const BenchmarkInfo &benchmarkInfo(BenchmarkId id);

/** Look up a benchmark by its short tag (e.g. "Mix"). Returns false
 *  (leaving *id untouched) when the name matches no benchmark. */
bool benchmarkFromShortName(const std::string &name, BenchmarkId *id);

/** Scene statistics in the shape of Table 4. */
struct SceneSpec
{
    std::uint64_t objPairs = 0; // Measured (broadphase output).
    std::uint64_t islands = 0;  // Measured (island creation output).
    int clothObjs = 0;
    int clothVertices = 0;
    int staticObjs = 0;
    int dynamicObjs = 0;
    int prefracturedObjs = 0; // Debris pieces (disabled at start).
    int staticJoints = 0;     // Permanent (non-contact) joints.
};

/**
 * Build one benchmark scene.
 *
 * @param id Which benchmark.
 * @param config World configuration (threads, broadphase, ...).
 * @param scale Linear scale on entity counts (1.0 = Table 4 scale).
 */
std::unique_ptr<World> buildBenchmark(BenchmarkId id,
                                      const WorldConfig &config =
                                          WorldConfig(),
                                      double scale = 1.0);

/** Count the static portion of a SceneSpec from a built world. */
SceneSpec staticSceneSpec(const World &world);

/** Options controlling a measured benchmark run. */
struct RunOptions
{
    /**
     * Warmup steps before measurement. The paper lets activity
     * develop and measures frames 5-7; four frames of warmup (12
     * steps) place the measured window there.
     */
    int warmupSteps = 12;
    /** Measured frames (paper: 3). */
    int frames = 3;
    /** Steps per frame (paper: 3). */
    int stepsPerFrame = 3;
    WorldConfig config;
    double scale = 1.0;
};

/** Result of a measured run. */
struct BenchmarkRun
{
    BenchmarkId id;
    SceneSpec spec;                   // Static + measured averages.
    std::vector<FrameProfile> frames; // One per measured frame.

    /** The worst frame by total operations (the paper's metric). */
    const FrameProfile &worstFrame() const;

    /** Aggregate profile of the worst frame. */
    StepProfile worstFrameProfile() const;
};

/** Build, warm up, and measure one benchmark. */
BenchmarkRun runBenchmark(BenchmarkId id,
                          const RunOptions &options = RunOptions());

} // namespace parallax

#endif // PARALLAX_WORKLOAD_BENCHMARKS_HH
