#include "phase.hh"

namespace parallax
{

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Broadphase: return "Broadphase";
      case Phase::Narrowphase: return "Narrowphase";
      case Phase::IslandCreation: return "IslandCreation";
      case Phase::IslandProcessing: return "IslandProcessing";
      case Phase::Cloth: return "Cloth";
    }
    return "?";
}

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return "int_alu";
      case OpClass::Branch: return "branch";
      case OpClass::FloatAdd: return "float_add";
      case OpClass::FloatMult: return "float_mult";
      case OpClass::RdPort: return "rd_port";
      case OpClass::WrPort: return "wr_port";
      case OpClass::Other: return "other";
    }
    return "?";
}

} // namespace parallax
