#include "benchmarks.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "scene_builder.hh"
#include "sim/logging.hh"

namespace parallax
{

namespace
{

constexpr BenchmarkInfo infos[numBenchmarks] = {
    {"Periodic Contact", "Per", "role-playing", 34.0},
    {"Ragdoll Effects", "Rag", "first-person shooter", 36.0},
    {"Continuous Contact", "Con", "racing", 47.0},
    {"Breakable", "Bre", "first-person shooter", 256.0},
    {"Deformable", "Def", "sports/action", 409.0},
    {"Explosions", "Exp", "real-time strategy", 547.0},
    {"Highspeed", "Hig", "action", 518.0},
    {"Mix", "Mix", "combined", 829.0},
};

int
scaled(int count, double scale)
{
    return std::max(1, static_cast<int>(std::lround(count * scale)));
}

/**
 * Periodic Contact: role-playing hand-to-hand combat. 30 humanoids
 * in 3 groups of 5, 3 of 3, and 3 of 2, all members of each group
 * engaged with one another (velocities toward the group center).
 */
void
buildPeriodic(SceneBuilder &sb, double scale)
{
    sb.addGround();
    const int group_sizes[3] = {5, 3, 2};
    int group_index = 0;
    for (int size_class = 0; size_class < 3; ++size_class) {
        for (int g = 0; g < scaled(3, scale); ++g, ++group_index) {
            const Vec3 center{(group_index % 3) * 10.0,
                              1.05,
                              (group_index / 3) * 10.0};
            const int members = group_sizes[size_class];
            // Ring radius chosen so neighbours' arms interleave:
            // combatants start engaged (hand-to-hand range).
            const double radius =
                0.5 / (2.0 * std::sin(M_PI / members));
            for (int m = 0; m < members; ++m) {
                const double angle = 2.0 * M_PI * m / members;
                const Vec3 offset{radius * std::cos(angle), 0.0,
                                  radius * std::sin(angle)};
                sb.addHumanoid(center + offset, -offset * 2.0);
            }
        }
    }
}

/** Ragdoll Effects: 30 ragdolls all falling away from each other. */
void
buildRagdoll(SceneBuilder &sb, double scale)
{
    sb.addGround();
    const int count = scaled(30, scale);
    for (int i = 0; i < count; ++i) {
        const double angle = 2.0 * M_PI * i / count;
        // Low enough to crumple on the ground during the measured
        // frames.
        const Vec3 pos{3.0 * std::cos(angle),
                       1.05 + (i % 5) * 0.1,
                       3.0 * std::sin(angle)};
        const Vec3 away{2.5 * std::cos(angle), -3.0,
                        2.5 * std::sin(angle)};
        sb.addHumanoid(pos, away);
    }
}

/**
 * Continuous Contact: rally race. 30 cars driving over heightfield
 * and trimesh terrain between static obstacles, with loose dynamic
 * scatter on the course.
 */
void
buildContinuous(SceneBuilder &sb, double scale)
{
    sb.addGround();
    sb.addHeightfieldTerrain({-10, 0, -10}, 40, 40, 2.0, 1.2);
    sb.addTriMeshTerrain({-10, 0, 75}, 30, 20, 2.0, 1.0);

    const int cars = scaled(30, scale);
    for (int i = 0; i < cars; ++i) {
        // On the terrain surface (amplitude 1.2, wheels at +0.3).
        const Vec3 pos{(i % 6) * 5.0, 1.5, (i / 6) * 6.0};
        sb.addCar(pos, {9.0 + (i % 4), 0, 0});
    }

    // Course markers: rows of static obstacles along the track.
    const int obstacles = scaled(1700, scale);
    for (int i = 0; i < obstacles; ++i) {
        const Vec3 pos{-12.0 + (i % 85) * 1.2,
                       0.5,
                       -14.0 + (i / 85) * 5.0};
        sb.addStaticObstacle(pos, {0.3, 0.5, 0.3});
    }

    // Loose dynamic scatter (cones, rocks) in touching piles along
    // the course, so settled scatter clusters into contact islands.
    // Loose dynamic scatter (cones, rocks) in clusters on the flat
    // apron before the terrain (the heightfield footprint starts at
    // z = -10). Spheres rest with single ground contacts, keeping
    // the racing benchmark's per-object cost light, as in the paper.
    const int piles = scaled(34, scale);
    for (int p = 0; p < piles; ++p) {
        const Vec3 base{(p % 17) * 4.5, 0.0,
                        -13.0 - (p / 17) * 4.0};
        for (int i = 0; i < 14; ++i) {
            const Vec3 offset{(i % 3) * 0.51,
                              0.26 + (i / 7) * 0.51,
                              ((i / 3) % 3) * 0.51};
            sb.addProjectile(base + offset, {}, 0.26);
        }
    }
}

/**
 * Breakable: cannons and exploding vehicles versus pre-fractured
 * brick walls. Three areas each enclosed by three walls of
 * fracturable bricks, two breakable bridges per area, 30 humans in
 * groups of 10, six vehicles ramming the walls and exploding.
 */
void
buildBreakable(SceneBuilder &sb, double scale)
{
    sb.addGround();
    const int areas = scaled(3, scale);
    for (int a = 0; a < areas; ++a) {
        const Vec3 center{a * 50.0, 0, 0};
        // Three pre-fractured walls (25 x 5 bricks each).
        const Vec3 brick_half{0.5, 0.25, 0.25};
        const double len = 25 * brick_half.x * 2.001;
        sb.addWall(center + Vec3{-len / 2, 0, -8}, {1, 0, 0},
                   scaled(25, 1.0), 5, brick_half, true, 5);
        sb.addWall(center + Vec3{-len / 2, 0, 8}, {1, 0, 0},
                   scaled(25, 1.0), 5, brick_half, true, 5);
        sb.addWall(center + Vec3{-len / 2 - 1, 0, -8 + 0.25},
                   {0, 0, 1}, scaled(25, 1.0), 5,
                   Vec3{0.25, 0.25, 0.5}, true, 5);

        // Two bridges.
        sb.addBridge(center + Vec3{-8, 2.0, -4}, 15, 5e4);
        sb.addBridge(center + Vec3{-8, 2.0, 4}, 15, 5e4);

        // Ten humans in a group.
        for (int h = 0; h < 10; ++h) {
            sb.addHumanoid(center + Vec3{-4.0 + (h % 5) * 2.0, 1.05,
                                         -2.0 + (h / 5) * 4.0});
        }

        // Two vehicles ramming the walls, exploding on contact;
        // close and fast enough to hit inside the measured frames.
        for (int v = 0; v < 2; ++v) {
            RigidBody *car = sb.addCar(
                center + Vec3{0.0, 0.2, v == 0 ? -4.0 : 4.0},
                {0, 0, v == 0 ? -25.0 : 25.0});
            // The chassis geom is the explosive trigger.
            for (const auto &g : sb.world().geoms()) {
                if (g->body() == car) {
                    g->setExplosive(true);
                    sb.world().effects().registerExplosive(
                        g->id(), BlastConfig{3.5, 0.08, 250.0});
                    break;
                }
            }
        }

        // Cannonballs already in flight toward the walls, arcing
        // over the bridges (planks sit at y = 2).
        for (int c = 0; c < 2; ++c) {
            sb.addProjectile(
                center + Vec3{-6.0 + c * 12.0, 3.2, -2.5},
                {0.0, -2.0, -30.0}, 0.3, true,
                BlastConfig{3.0, 0.08, 250.0});
        }
    }
}

/**
 * Deformable: 30 uniformed players (small cloth each) and two large
 * cloths, each in contact with one player.
 */
void
buildDeformable(SceneBuilder &sb, double scale)
{
    sb.addGround();
    const int players = scaled(30, scale);
    std::vector<RigidBody *> roots;
    for (int i = 0; i < players; ++i) {
        const Vec3 pos{(i % 6) * 3.0, 1.05, (i / 6) * 3.0};
        RigidBody *root = sb.addHumanoid(
            pos, {sb.rng().uniform(-1.5, 1.5), 0,
                  sb.rng().uniform(-1.5, 1.5)});
        sb.addSmallClothOnBody(root);
        roots.push_back(root);
    }
    // Two large cloths hung in contact with two players.
    if (!roots.empty()) {
        sb.addLargeCloth(roots.front()->position() +
                         Vec3{-1.4, 1.6, -1.4});
        sb.addLargeCloth(roots.back()->position() +
                         Vec3{-1.4, 1.6, -1.4});
    }

    // Stadium props: static obstacles around the field.
    const int props = scaled(480, scale);
    for (int i = 0; i < props; ++i) {
        const Vec3 pos{-6.0 + (i % 40) * 0.8, 0.5,
                       -4.0 + (i / 40) * 2.2 +
                           ((i % 40) < 20 ? -6.0 : 18.0)};
        sb.addStaticObstacle(pos, {0.3, 0.5, 0.3});
    }
}

/**
 * Explosions: an army in an urban environment. Ten walled areas,
 * 50 roaming vehicles, 10 cannons shooting exploding projectiles.
 * No breakable joints or pre-fractured objects.
 */
void
buildExplosions(SceneBuilder &sb, double scale)
{
    sb.addGround();
    const int areas = scaled(10, scale);
    for (int a = 0; a < areas; ++a) {
        const Vec3 center{(a % 5) * 40.0, 0, (a / 5) * 40.0};
        sb.addBuilding(center, 15, 8, false);
    }
    const int vehicles = scaled(50, scale);
    for (int v = 0; v < vehicles; ++v) {
        const Vec3 pos{(v % 10) * 16.0 + 6.0, 0.2,
                       (v / 10) * 14.0 + 6.0};
        const double heading = sb.rng().uniform(0.0, 2.0 * M_PI);
        sb.addCar(pos, {9.0 * std::cos(heading), 0,
                        9.0 * std::sin(heading)});
    }
    const int shells = scaled(10, scale);
    for (int c = 0; c < shells; ++c) {
        // In flight toward each area's wall, impacting during the
        // measured frames.
        const Vec3 target{(c % 5) * 40.0, 1.0, (c / 5) * 40.0 - 6.0};
        const Vec3 from = target + Vec3{0.0, 2.0, 5.0};
        sb.addProjectile(from, {0.0, -1.0, -33.0}, 0.3, true,
                         BlastConfig{5.0, 0.1, 300.0});
    }
}

/**
 * Highspeed: cars crashing into walls and high-speed rockets
 * hitting buildings — no explosions, just the complexity of
 * detecting high-speed impacts.
 */
void
buildHighspeed(SceneBuilder &sb, double scale)
{
    sb.addGround();
    const int buildings = scaled(10, scale);
    for (int b = 0; b < buildings; ++b) {
        const Vec3 center{(b % 5) * 40.0, 0, (b / 5) * 40.0};
        sb.addBuilding(center, 13, 8, false);
    }
    const int cars = scaled(20, scale);
    for (int v = 0; v < cars; ++v) {
        const Vec3 center{(v % 5) * 40.0, 0, ((v / 5) % 2) * 40.0};
        // Charging straight at a building side wall at speed,
        // impacting during the measured frames.
        sb.addCar(center + Vec3{(v % 3 - 1) * 2.0, 0.2, 11.0},
                  {0, 0, -30.0});
    }
    const int rockets = scaled(10, scale);
    for (int r = 0; r < rockets; ++r) {
        const Vec3 target{(r % 5) * 40.0, 2.0, (r / 5) * 40.0};
        sb.addProjectile(target + Vec3{1.0, 0.0, 18.0},
                         {0.0, 0.0, -100.0}, 0.25);
    }
}

/**
 * Mix: every feature combined — 3 pre-fractured buildings, 6
 * breakable bridges, 30 cloth-draped humanoids, 6 vehicles, large
 * cloths over the building openings, heightfield terrain, and
 * exploding projectiles.
 */
void
buildMix(SceneBuilder &sb, double scale)
{
    sb.addGround();
    sb.addHeightfieldTerrain({-60, 0, 30}, 30, 30, 2.0, 1.0);

    const int buildings = scaled(3, scale);
    for (int b = 0; b < buildings; ++b) {
        const Vec3 center{b * 50.0, 0, 0};
        // Pre-fractured walls, 25 x 5 bricks, 5 debris each.
        const Vec3 brick_half{0.5, 0.25, 0.25};
        const double len = 25 * brick_half.x * 2.001;
        sb.addWall(center + Vec3{-len / 2, 0, -8}, {1, 0, 0}, 25, 5,
                   brick_half, true, 5);
        sb.addWall(center + Vec3{-len / 2, 0, 8}, {1, 0, 0}, 25, 5,
                   brick_half, true, 5);
        sb.addWall(center + Vec3{-len / 2 - 1, 0, -8 + 0.25},
                   {0, 0, 1}, 25, 5, Vec3{0.25, 0.25, 0.5}, true, 5);
        // Large cloth covering the building opening.
        sb.addLargeCloth(center + Vec3{len / 2 - 1.0, 3.0, -1.5});
    }

    const int bridges = scaled(6, scale);
    for (int br = 0; br < bridges; ++br) {
        sb.addBridge({br * 20.0 - 40.0, 2.0, 20.0}, 15, 5e4);
    }

    const int humans = scaled(30, scale);
    for (int h = 0; h < humans; ++h) {
        RigidBody *root = sb.addHumanoid(
            {-20.0 + (h % 10) * 3.0, 1.05, -18.0 + (h / 10) * 3.0},
            {sb.rng().uniform(-1.0, 1.0), 0,
             sb.rng().uniform(-1.0, 1.0)});
        sb.addSmallClothOnBody(root);
    }

    const int vehicles = scaled(6, scale);
    for (int v = 0; v < vehicles; ++v) {
        sb.addCar({-30.0 + v * 9.0, 0.2, 14.0},
                  {8.0, 0, -4.0});
    }

    const int shells = scaled(6, scale);
    for (int c = 0; c < shells; ++c) {
        // Shells arcing into each building's walls.
        const Vec3 target{(c % 3) * 50.0, 1.5, c < 3 ? -8.0 : 8.0};
        sb.addProjectile(target + Vec3{1.0, 1.5,
                                       c < 3 ? 5.0 : -5.0},
                         {0.0, -1.0, c < 3 ? -32.0 : 32.0}, 0.3,
                         true, BlastConfig{4.0, 0.1, 300.0});
    }
}

} // namespace

const BenchmarkInfo &
benchmarkInfo(BenchmarkId id)
{
    return infos[static_cast<int>(id)];
}

bool
benchmarkFromShortName(const std::string &name, BenchmarkId *id)
{
    for (BenchmarkId candidate : allBenchmarks) {
        if (name == benchmarkInfo(candidate).shortName) {
            *id = candidate;
            return true;
        }
    }
    return false;
}

std::unique_ptr<World>
buildBenchmark(BenchmarkId id, const WorldConfig &config, double scale)
{
    // Stamp the scene's provenance so snapshots taken from this
    // world can be replayed against a fresh build of the same scene
    // (tools/replay_snapshot parses the tag back).
    WorldConfig tagged = config;
    char tag[64];
    std::snprintf(tag, sizeof(tag), "bench:%s:scale=%g",
                  benchmarkInfo(id).shortName, scale);
    tagged.sceneTag = tag;
    auto world = std::make_unique<World>(tagged);
    SceneBuilder sb(*world, 12345 + static_cast<int>(id));
    switch (id) {
      case BenchmarkId::Periodic: buildPeriodic(sb, scale); break;
      case BenchmarkId::Ragdoll: buildRagdoll(sb, scale); break;
      case BenchmarkId::Continuous: buildContinuous(sb, scale); break;
      case BenchmarkId::Breakable: buildBreakable(sb, scale); break;
      case BenchmarkId::Deformable: buildDeformable(sb, scale); break;
      case BenchmarkId::Explosions: buildExplosions(sb, scale); break;
      case BenchmarkId::Highspeed: buildHighspeed(sb, scale); break;
      case BenchmarkId::Mix: buildMix(sb, scale); break;
    }
    return world;
}

SceneSpec
staticSceneSpec(const World &world)
{
    SceneSpec spec;
    for (const auto &body : world.bodies()) {
        if (body->isStatic()) {
            ++spec.staticObjs;
        } else if (body->enabled()) {
            ++spec.dynamicObjs;
        } else {
            // Disabled dynamic bodies at scene start are debris.
            ++spec.prefracturedObjs;
        }
    }
    spec.staticJoints = static_cast<int>(world.jointCount());
    spec.clothObjs = static_cast<int>(world.clothCount());
    for (const auto &cloth : world.cloths())
        spec.clothVertices += cloth->vertexCount();
    return spec;
}

const FrameProfile &
BenchmarkRun::worstFrame() const
{
    parallax_assert(!frames.empty());
    const FrameProfile *worst = &frames.front();
    for (const FrameProfile &frame : frames) {
        if (frame.totalOps() > worst->totalOps())
            worst = &frame;
    }
    return *worst;
}

StepProfile
BenchmarkRun::worstFrameProfile() const
{
    return worstFrame().aggregate();
}

BenchmarkRun
runBenchmark(BenchmarkId id, const RunOptions &options)
{
    auto world = buildBenchmark(id, options.config, options.scale);

    BenchmarkRun run;
    run.id = id;
    run.spec = staticSceneSpec(*world);

    for (int i = 0; i < options.warmupSteps; ++i)
        world->step();

    double pair_total = 0;
    double island_total = 0;
    int steps_measured = 0;

    for (int f = 0; f < options.frames; ++f) {
        FrameProfile frame;
        for (int s = 0; s < options.stepsPerFrame; ++s) {
            world->step();
            frame.steps.push_back(
                Instrumentation::profileStep(*world));
            // Obj-pairs in the Table 4 sense: all AABB-overlapping
            // pairs the broadphase reports, before the jointed-pair
            // cull (ODE's near-callback sees these).
            pair_total +=
                world->lastStepStats().broadphase.pairsFound;
            island_total += world->lastStepStats().islands.size();
            ++steps_measured;
        }
        run.frames.push_back(std::move(frame));
    }

    if (steps_measured > 0) {
        run.spec.objPairs = static_cast<std::uint64_t>(
            pair_total / steps_measured);
        run.spec.islands = static_cast<std::uint64_t>(
            island_total / steps_measured);
    }
    return run;
}

} // namespace parallax
