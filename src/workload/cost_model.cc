#include "cost_model.hh"

namespace parallax
{
namespace cost
{

OpVector
npPairTest(ShapeType a, ShapeType b)
{
    // Canonicalize to the lower-valued type first.
    if (static_cast<int>(a) > static_cast<int>(b))
        std::swap(a, b);

    // Costs reflect the relative complexity of the colliders:
    // sphere tests are cheap; box-box SAT + clipping is the most
    // expensive convex pair; terrain tests pay for triangle / cell
    // lookup. Mixes are integer/branch heavy per Figure 7(b).
    auto pair = [](ShapeType x, ShapeType y, ShapeType px,
                   ShapeType py) {
        return x == px && y == py;
    };

    using ST = ShapeType;
    if (pair(a, b, ST::Sphere, ST::Sphere))
        return opVec(30, 10, 16, 14, 18, 4, 4);
    if (pair(a, b, ST::Sphere, ST::Box))
        return opVec(60, 22, 28, 26, 30, 6, 6);
    if (pair(a, b, ST::Sphere, ST::Capsule))
        return opVec(55, 18, 30, 28, 26, 5, 6);
    if (pair(a, b, ST::Sphere, ST::Plane))
        return opVec(24, 8, 10, 8, 12, 3, 2);
    if (pair(a, b, ST::Sphere, ST::Heightfield))
        return opVec(90, 34, 40, 36, 60, 6, 8);
    if (pair(a, b, ST::Sphere, ST::TriMesh))
        return opVec(150, 60, 70, 62, 110, 8, 12);
    if (pair(a, b, ST::Box, ST::Box))
        return opVec(280, 110, 150, 170, 180, 24, 16);
    if (pair(a, b, ST::Box, ST::Capsule))
        return opVec(160, 62, 82, 84, 96, 14, 10);
    if (pair(a, b, ST::Box, ST::Plane))
        return opVec(70, 26, 36, 34, 40, 12, 6);
    if (pair(a, b, ST::Box, ST::Heightfield))
        return opVec(200, 82, 96, 88, 140, 16, 14);
    if (pair(a, b, ST::Box, ST::TriMesh))
        return opVec(300, 130, 140, 128, 220, 18, 20);
    if (pair(a, b, ST::Capsule, ST::Capsule))
        return opVec(90, 30, 52, 50, 44, 8, 8);
    if (pair(a, b, ST::Capsule, ST::Plane))
        return opVec(46, 16, 22, 20, 24, 8, 4);
    if (pair(a, b, ST::Capsule, ST::Heightfield))
        return opVec(130, 52, 60, 54, 90, 10, 10);
    if (pair(a, b, ST::Capsule, ST::TriMesh))
        return opVec(210, 90, 100, 90, 160, 12, 14);
    // Static-static combinations are filtered by the broadphase;
    // charge a bare dispatch if one slips through.
    return opVec(10, 4, 0, 0, 4, 0, 1);
}

} // namespace cost
} // namespace parallax
