/**
 * @file
 * Reusable scene entities for the benchmark suite (Table 2).
 *
 * SceneBuilder assembles the features the benchmarks are made of:
 * constrained rigid bodies (16-segment virtual humans, cars with
 * rotating wheels and slider suspensions), terrains (heightfields and
 * trimeshes), breakable joints, pre-fractured objects, explosives,
 * static obstacles, and cloth.
 */

#ifndef PARALLAX_WORKLOAD_SCENE_BUILDER_HH
#define PARALLAX_WORKLOAD_SCENE_BUILDER_HH

#include <vector>

#include "physics/world.hh"
#include "sim/rng.hh"

namespace parallax
{

/** Builds benchmark scene entities inside a World. */
class SceneBuilder
{
  public:
    explicit SceneBuilder(World &world, std::uint64_t seed = 1);

    World &world() { return world_; }
    Rng &rng() { return rng_; }

    /** Add the ground plane (y = 0). */
    void addGround();

    /**
     * Add a 16-segment virtual human of anthropomorphic dimensions:
     * pelvis, torso, chest, head, and 2x (upper arm, forearm, hand,
     * thigh, shin, foot), joined by ball and hinge joints.
     *
     * @param pos Pelvis position.
     * @param velocity Initial velocity applied to every segment.
     * @return The pelvis body (the figure's root).
     */
    RigidBody *addHumanoid(const Vec3 &pos,
                           const Vec3 &velocity = Vec3());

    /**
     * Add a car: chassis box, suspension frame on a slider joint,
     * and four wheels on hinge joints (6 bodies, 5 joints).
     *
     * @return The chassis body.
     */
    RigidBody *addCar(const Vec3 &pos, const Vec3 &velocity = Vec3());

    /**
     * Add a wall of bricks.
     *
     * @param origin Lower-left-front corner of the wall.
     * @param along Unit direction the wall runs along (horizontal).
     * @param bricks_x Bricks per row.
     * @param bricks_y Rows.
     * @param brick_half Brick half-extents.
     * @param prefractured If true each brick is a static parent with
     *        `debris_per_brick` disabled debris pieces, registered
     *        with the effects manager.
     * @param debris_per_brick Debris pieces per brick.
     * @return Brick bodies created (parents when prefractured).
     */
    std::vector<RigidBody *>
    addWall(const Vec3 &origin, const Vec3 &along, int bricks_x,
            int bricks_y, const Vec3 &brick_half,
            bool prefractured = false, int debris_per_brick = 4);

    /**
     * Add a bridge of planks spanning from `start` toward +x, with
     * breakable fixed joints between neighbours and static anchors
     * at both ends.
     */
    std::vector<RigidBody *>
    addBridge(const Vec3 &start, int planks, Real break_force);

    /**
     * Add a three-walled building enclosure around `center`, open
     * toward +x.
     */
    void addBuilding(const Vec3 &center, int bricks_per_wall,
                     int rows, bool prefractured,
                     int debris_per_brick = 4);

    /** Add rolling heightfield terrain with the given footprint. */
    void addHeightfieldTerrain(const Vec3 &origin, int nx, int nz,
                               Real spacing, Real amplitude);

    /** Add a trimesh terrain patch (triangulated ramp grid). */
    void addTriMeshTerrain(const Vec3 &origin, int nx, int nz,
                           Real spacing, Real amplitude);

    /** Add an immobile box obstacle. */
    void addStaticObstacle(const Vec3 &pos, const Vec3 &half);

    /**
     * Add a sphere projectile with an initial velocity; optionally
     * explosive with the given blast parameters.
     */
    RigidBody *addProjectile(const Vec3 &pos, const Vec3 &velocity,
                             Real radius, bool explosive = false,
                             const BlastConfig &blast = BlastConfig());

    /** Add a large 25x25 (625-vertex) cloth pinned along one edge. */
    Cloth *addLargeCloth(const Vec3 &origin);

    /** Add a small 5x5 (25-vertex) cloth attached to a body. */
    Cloth *addSmallClothOnBody(RigidBody *body);

  private:
    /** Cached shape lookup to avoid duplicating identical shapes. */
    const BoxShape *boxShape(const Vec3 &half);
    const SphereShape *sphereShape(Real radius);
    const CapsuleShape *capsuleShape(Real radius, Real half_height);

    World &world_;
    Rng rng_;
    std::vector<std::pair<Vec3, const BoxShape *>> boxCache_;
    std::vector<std::pair<Real, const SphereShape *>> sphereCache_;
    std::vector<std::pair<std::pair<Real, Real>, const CapsuleShape *>>
        capsuleCache_;
};

} // namespace parallax

#endif // PARALLAX_WORKLOAD_SCENE_BUILDER_HH
