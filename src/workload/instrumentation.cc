#include "instrumentation.hh"

#include <cmath>

namespace parallax
{

OpVector
StepProfile::cg(Phase p) const
{
    OpVector r = ops(p);
    const OpVector &f = fg(p);
    for (int i = 0; i < numOpClasses; ++i)
        r.ops[i] -= f.ops[i];
    return r;
}

double
StepProfile::totalOps() const
{
    double t = 0;
    for (const OpVector &v : phaseOps)
        t += v.total();
    return t;
}

double
StepProfile::serialOps() const
{
    return ops(Phase::Broadphase).total() +
           ops(Phase::IslandCreation).total();
}

StepProfile &
StepProfile::operator+=(const StepProfile &o)
{
    for (int i = 0; i < numPhases; ++i) {
        phaseOps[i] += o.phaseOps[i];
        fgOps[i] += o.fgOps[i];
    }
    pairTasks += o.pairTasks;
    islandRows.insert(islandRows.end(), o.islandRows.begin(),
                      o.islandRows.end());
    clothVertices.insert(clothVertices.end(), o.clothVertices.begin(),
                         o.clothVertices.end());
    return *this;
}

StepProfile
FrameProfile::aggregate() const
{
    StepProfile sum;
    for (const StepProfile &s : steps)
        sum += s;
    return sum;
}

double
FrameProfile::totalOps() const
{
    double t = 0;
    for (const StepProfile &s : steps)
        t += s.totalOps();
    return t;
}

StepProfile
Instrumentation::profileStep(const World &world)
{
    const StepStats &stats = world.lastStepStats();
    StepProfile profile;

    // --- Broadphase (serial). ---
    {
        OpVector &ops = profile.ops(Phase::Broadphase);
        const auto &bp = stats.broadphase;
        const double n = std::max<double>(2.0, bp.structureUpdates);
        const double sort_levels = std::log2(n);
        ops += cost::bpGeomUpdate * bp.geomsConsidered;
        ops += cost::bpSortPerGeom *
               (bp.structureUpdates * sort_levels / 2.0);
        ops += cost::bpOverlapTest * bp.overlapTests;
        ops += cost::bpPairEmit * bp.pairsFound;
    }

    // --- Narrowphase (FG parallel over object-pairs). ---
    {
        OpVector &ops = profile.ops(Phase::Narrowphase);
        OpVector &fg = profile.fg(Phase::Narrowphase);
        const auto &np = stats.narrowphase;
        for (int i = 0; i < 6; ++i) {
            for (int j = i; j < 6; ++j) {
                const double count = np.testsByType[i][j];
                if (count == 0)
                    continue;
                const OpVector per = cost::npPairTest(
                    static_cast<ShapeType>(i),
                    static_cast<ShapeType>(j));
                fg += per * count;
            }
        }
        fg += cost::npContactEmit * np.contactsCreated;
        ops += fg;
        ops += cost::npDispatch * np.pairsTested;
        profile.pairTasks = np.pairsTested;
    }

    // --- Island creation (serial). ---
    {
        OpVector &ops = profile.ops(Phase::IslandCreation);
        const auto &ic = stats.island;
        ops += cost::icPerBody * ic.bodiesVisited;
        ops += cost::icPerJoint * ic.jointsVisited;
        ops += cost::icPerFind * ic.findOps;
        ops += cost::icPerIsland * ic.islandsCreated;
    }

    // --- Island processing (CG over islands, FG over rows). ---
    {
        OpVector &ops = profile.ops(Phase::IslandProcessing);
        OpVector &fg = profile.fg(Phase::IslandProcessing);
        const auto &sv = stats.solver;
        fg += cost::ipRowIteration * sv.rowIterations;
        ops += fg;
        ops += cost::ipRowBuild * sv.rowsBuilt;
        ops += cost::ipBodyIntegrate * sv.bodiesIntegrated;
        for (const IslandSummary &island : stats.islands)
            profile.islandRows.push_back(island.rows);
    }

    // --- Cloth (CG over cloths, FG over vertices). ---
    {
        OpVector &ops = profile.ops(Phase::Cloth);
        OpVector &fg = profile.fg(Phase::Cloth);
        const auto &cl = stats.cloth;
        fg += cost::clVertexIntegrate * cl.verticesIntegrated;
        fg += cost::clConstraintRelax * cl.constraintRelaxations;
        fg += cost::clCollisionTest * cl.collisionTests;
        ops += fg;
        ops += cost::clPerClothSetup * cl.clothsStepped;
        profile.clothVertices = stats.clothVertexCounts;
    }

    return profile;
}

} // namespace parallax
