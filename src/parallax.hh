/**
 * @file
 * Umbrella public header for the ParallAX reproduction.
 *
 * Consumers (benches, examples, downstream tools) include this one
 * header instead of reaching into `physics/...`, `workload/...`, or
 * `core/...` internals, so the engine's threading model and module
 * layout can evolve without breaking call sites.
 *
 * Exports, by area:
 *  - Engine:       World, WorldConfig (+ validate()), StepStats,
 *                  RigidBody, Geom, Joint, Cloth, shapes, raycasts.
 *  - Debugging:    checkWorldInvariants, InvariantViolation,
 *                  snapshot capture/replay (captureState /
 *                  restoreState, describeSnapshot, snapshot files).
 *  - Robustness:   StepGovernor + GovernorTuning/GovernorStats (the
 *                  real-time degradation ladder behind
 *                  WorldConfig::frameBudget), InvariantMode
 *                  (Off/Warn/Quarantine/HardFail), FaultPlan /
 *                  FaultEvent scripted fault injection.
 *  - Observability: TraceCollector + PAX_TRACE_SCOPE (per-phase /
 *                  per-island spans, Chrome trace JSON via
 *                  World::writeTrace), MetricsRegistry (monotonic
 *                  counters + gauges, World::metricsLine). See
 *                  docs/OBSERVABILITY.md.
 *  - Scheduling:   TaskScheduler, SchedulerConfig, LaneStats
 *                  (the work-stealing parallel_for runtime).
 *  - Workload:     BenchmarkId, buildBenchmark/runBenchmark,
 *                  StepProfile, Instrumentation, TraceGenerator,
 *                  scene-builder helpers.
 *  - Architecture: ParallaxSystem, FgCoreModel, AreaModel, Arbiter.
 *  - Simulation:   StatGroup, Counter, Distribution, logging.
 *
 * Lower-level simulator internals (cpu/, isa/, mem/, noc/) remain
 * separate opt-in includes: they model hardware, not the engine API.
 */

#ifndef PARALLAX_PARALLAX_HH
#define PARALLAX_PARALLAX_HH

#include "core/arbiter.hh"
#include "core/area_model.hh"
#include "core/fg_core_model.hh"
#include "core/parallax_system.hh"
#include "physics/debug/capture.hh"
#include "physics/debug/invariants.hh"
#include "physics/governor/fault_injection.hh"
#include "physics/governor/governor.hh"
#include "physics/parallel/task_scheduler.hh"
#include "physics/raycast.hh"
#include "physics/trace/metrics.hh"
#include "physics/trace/trace.hh"
#include "physics/world.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "workload/benchmarks.hh"
#include "workload/instrumentation.hh"
#include "workload/mem_trace.hh"
#include "workload/scene_builder.hh"

#endif // PARALLAX_PARALLAX_HH
