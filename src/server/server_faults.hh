/**
 * @file
 * Server-scale scripted fault injection.
 *
 * The per-world WorldConfig::faultPlan (governor/fault_injection.hh)
 * proves one world's containment story; a ServerFaultPlan proves the
 * server's recovery story across a fleet. Events target a hosted
 * session by WorldId and fire when that session's server-side tick
 * counter (Session::ticksRun — monotonic, never rewound by a
 * rollback) reaches the event's tick:
 *
 *  - NanState:          poison a body's linear velocity with NaN
 *                       (the watchdog's non-finite classification
 *                       must catch it without any invariant mode),
 *  - HugeImpulse:       apply an oversized impulse to a body
 *                       (trips invariant/quarantine machinery when
 *                       the session runs an InvariantMode),
 *  - CorruptCheckpoint: flip bytes in the session's newest
 *                       checkpoint so rollback must fall back to an
 *                       older ring entry,
 *  - StalledTick:       report the session's next tick as having
 *                       taken `magnitude` seconds (models a stuck
 *                       or preempted world; perturbs the watchdog's
 *                       deadline accounting only, never simulation
 *                       state).
 *
 * Injection happens on the server's calling thread before the tick
 * burst runs, in session order, so the same plan produces the same
 * faults — and therefore the same recovery decisions — at any
 * worker count.
 */

#ifndef PARALLAX_SERVER_SERVER_FAULTS_HH
#define PARALLAX_SERVER_SERVER_FAULTS_HH

#include <cstdint>
#include <vector>

namespace parallax
{

/** What a scripted server-level fault does when it fires. */
enum class ServerFaultKind : std::uint8_t
{
    NanState,
    HugeImpulse,
    CorruptCheckpoint,
    StalledTick,
};

/** Human-readable server-fault-kind name. */
const char *serverFaultKindName(ServerFaultKind kind);

/** One scripted server-level fault. */
struct ServerFaultEvent
{
    /** Session tick (Session::ticksRun) at which the fault fires. */
    std::uint64_t tick = 0;
    /** Target session. Events naming an unknown or already-evicted
     *  id are skipped. */
    std::uint64_t world = 0;
    ServerFaultKind kind = ServerFaultKind::NanState;
    /** Body index modulo the live dynamic-body count (NanState /
     *  HugeImpulse); unused otherwise. */
    std::uint32_t target = 0;
    /** Impulse magnitude in N*s (HugeImpulse) or reported stall
     *  seconds (StalledTick); unused otherwise. */
    double magnitude = 0.0;
};

/** A deterministic schedule of server-level faults
 *  (ServerConfig::faultPlan). */
struct ServerFaultPlan
{
    std::vector<ServerFaultEvent> events;

    bool empty() const { return events.empty(); }
};

} // namespace parallax

#endif // PARALLAX_SERVER_SERVER_FAULTS_HH
