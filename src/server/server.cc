/**
 * @file
 * Multi-world server implementation. See server.hh for the model.
 *
 * The scheduling trick is a single parallelFor over the sessions
 * with pending ticks, grain 1: each chunk is one whole session, so
 * an idle lane steals an entire world's tick burst at once. A
 * session is only ever touched by the one lane executing its chunk,
 * which makes the per-session bookkeeping (tick counters, cost
 * samples) race-free without any locks.
 *
 * Everything the self-healing layer decides — fault firing, watchdog
 * classification, the recovery ladder, checkpoint cadence — runs on
 * the calling thread, outside the parallelFor, in session order,
 * from deterministic inputs (session tick counters and, in tests,
 * mockTickSeconds). The lanes only ever run World::step(); recovery
 * decisions therefore replay bitwise-identically at any worker
 * count.
 */

#include "server/server.hh"

#include <algorithm>
#include <chrono>
#include <climits>
#include <cmath>
#include <limits>

#include "physics/debug/capture.hh"
#include "physics/governor/governor.hh"
#include "sim/logging.hh"

namespace parallax
{

namespace
{

std::string
joinErrors(const std::vector<std::string> &errors)
{
    std::string joined;
    for (const std::string &e : errors) {
        if (!joined.empty())
            joined += "; ";
        joined += e;
    }
    return joined;
}

/** Whole ticks banked in `accumulator`, robust to the float error
 *  of repeated `elapsed` additions (2.9999999996 ticks is 3).
 *  Clamped to [0, max_ticks] (max_ticks <= 0 means INT_MAX): the
 *  double->int cast is UB once the quotient exceeds INT_MAX, so a
 *  huge `elapsed` must never reach the cast unclamped. */
int
wholeTicks(double accumulator, double tick_dt, int max_ticks)
{
    const double ticks = std::floor(accumulator / tick_dt + 1e-9);
    const int cap = max_ticks > 0 ? max_ticks : INT_MAX;
    if (ticks <= 0)
        return 0;
    if (ticks >= static_cast<double>(cap))
        return cap;
    return static_cast<int>(ticks);
}

} // namespace

const char *
worldFailureName(WorldFailure failure)
{
    switch (failure) {
    case WorldFailure::None:
        return "none";
    case WorldFailure::InvariantHardFail:
        return "invariant_hardfail";
    case WorldFailure::PermanentQuarantine:
        return "permanent_quarantine";
    case WorldFailure::NonFiniteState:
        return "nonfinite_state";
    case WorldFailure::DeadlineOverrun:
        return "deadline_overrun";
    }
    return "unknown";
}

const char *
healthStateName(HealthState state)
{
    switch (state) {
    case HealthState::Healthy:
        return "healthy";
    case HealthState::Probation:
        return "probation";
    case HealthState::Frozen:
        return "frozen";
    }
    return "unknown";
}

const char *
recoveryActionName(RecoveryAction action)
{
    switch (action) {
    case RecoveryAction::Rollback:
        return "rollback";
    case RecoveryAction::RollbackDemote:
        return "rollback_demote";
    case RecoveryAction::Freeze:
        return "freeze";
    case RecoveryAction::Evict:
        return "evict";
    case RecoveryAction::Heal:
        return "heal";
    }
    return "unknown";
}

std::vector<std::string>
ServerConfig::validate() const
{
    std::vector<std::string> errors;
    auto check = [&errors](bool ok, std::string msg) {
        if (!ok)
            errors.push_back(std::move(msg));
    };
    check(std::isfinite(tickDt) && tickDt > 0,
          "tickDt must be positive and finite (got " +
              std::to_string(tickDt) + ")");
    check(workerThreads <= 1024,
          "workerThreads must be <= 1024 (got " +
              std::to_string(workerThreads) + ")");
    check(std::isfinite(tickBudget) && tickBudget >= 0,
          "tickBudget must be >= 0 and finite (got " +
              std::to_string(tickBudget) + ")");
    check(maxTicksPerUpdate >= 0,
          "maxTicksPerUpdate must be >= 0 (got " +
              std::to_string(maxTicksPerUpdate) + ")");
    check(shedDemoteMaxRung >= 0,
          "shedDemoteMaxRung must be >= 0 (got " +
              std::to_string(shedDemoteMaxRung) + ")");
    check(std::isfinite(shedDemoteCostScale) &&
              shedDemoteCostScale > 0 && shedDemoteCostScale <= 1,
          "shedDemoteCostScale must be in (0, 1] (got " +
              std::to_string(shedDemoteCostScale) + ")");
    check(shedRecoveryUpdates >= 1,
          "shedRecoveryUpdates must be >= 1 (got " +
              std::to_string(shedRecoveryUpdates) + ")");
    check(checkpointIntervalTicks >= 0,
          "checkpointIntervalTicks must be >= 0 (got " +
              std::to_string(checkpointIntervalTicks) + ")");
    check(checkpointRingSize >= 1,
          "checkpointRingSize must be >= 1 (got " +
              std::to_string(checkpointRingSize) + ")");
    check(std::isfinite(tickDeadline) && tickDeadline >= 0,
          "tickDeadline must be >= 0 and finite (got " +
              std::to_string(tickDeadline) + ")");
    check(recovery.maxRollbacks >= 0,
          "recovery.maxRollbacks must be >= 0 (got " +
              std::to_string(recovery.maxRollbacks) + ")");
    check(recovery.backoffBaseTicks >= 1,
          "recovery.backoffBaseTicks must be >= 1 (got " +
              std::to_string(recovery.backoffBaseTicks) + ")");
    check(recovery.demoteRungsPerRetry >= 0,
          "recovery.demoteRungsPerRetry must be >= 0 (got " +
              std::to_string(recovery.demoteRungsPerRetry) + ")");
    return errors;
}

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      // Grain 1: one session per chunk, maximal stealing surface.
      scheduler_(SchedulerConfig{config_.workerThreads, 1, true})
{
    const std::vector<std::string> errors = config_.validate();
    if (!errors.empty())
        fatal("invalid ServerConfig: %s", joinErrors(errors).c_str());
    faultFired_.assign(config_.faultPlan.events.size(), false);
}

Server::~Server() = default;

bool
Server::selfHealingEnabled() const
{
    return config_.checkpointIntervalTicks > 0 ||
           config_.tickDeadline > 0 || !config_.faultPlan.empty();
}

Server::Session *
Server::findSession(WorldId id)
{
    for (Session &s : sessions_)
        if (s.id == id)
            return &s;
    return nullptr;
}

const Server::Session *
Server::findSession(WorldId id) const
{
    for (const Session &s : sessions_)
        if (s.id == id)
            return &s;
    return nullptr;
}

Status
Server::admit(std::unique_ptr<World> world,
              const SessionConfig &session, WorldId &id)
{
    if (config_.maxWorlds > 0 &&
        sessions_.size() >= config_.maxWorlds) {
        ++stats_.admissionRejects;
        metrics_.add("server.admission_rejects", 1.0);
        return resourceExhausted(
            "admission refused: server hosts " +
            std::to_string(sessions_.size()) + " worlds, cap is " +
            std::to_string(config_.maxWorlds));
    }
    Session s;
    s.id = nextId_++;
    s.world = std::move(world);
    s.config = session;
    s.world->setMetricsScope("world." + std::to_string(s.id));
    if (selfHealingEnabled()) {
        // Hosted worlds must never take the process down: a HardFail
        // invariant becomes a sticky code the watchdog reads.
        s.world->setDeferInvariantHardFail(true);
        s.ring.setCapacity(config_.checkpointRingSize);
        if (config_.checkpointIntervalTicks > 0) {
            // Stagger first captures by id so a fleet admitted
            // together does not checkpoint in lockstep forever.
            s.nextCheckpointTick =
                1 + s.id % static_cast<std::uint64_t>(
                               config_.checkpointIntervalTicks);
        }
    }
    id = s.id;
    sessions_.push_back(std::move(s));
    return okStatus();
}

Status
Server::createWorld(const WorldConfig &config, WorldId &id,
                    const SessionConfig &session)
{
    WorldConfig cfg = config;
    cfg.dt = config_.tickDt;
    cfg.workerThreads = 0;
    const std::vector<std::string> errors = cfg.validate();
    if (!errors.empty())
        return invalidArgument("invalid WorldConfig: " +
                               joinErrors(errors));
    return admit(std::make_unique<World>(std::move(cfg)), session,
                 id);
}

Status
Server::adoptWorld(std::unique_ptr<World> world, WorldId &id,
                   const SessionConfig &session)
{
    if (!world)
        return invalidArgument("adoptWorld: null world");
    if (world->config().workerThreads != 0) {
        return invalidArgument(
            "adoptWorld: world has workerThreads == " +
            std::to_string(world->config().workerThreads) +
            "; hosted worlds must be single-threaded (the server's "
            "scheduler supplies the parallelism)");
    }
    if (world->config().dt != config_.tickDt) {
        return invalidArgument(
            "adoptWorld: world dt " +
            std::to_string(world->config().dt) +
            " != server tickDt " + std::to_string(config_.tickDt));
    }
    return admit(std::move(world), session, id);
}

Status
Server::destroyWorld(WorldId id)
{
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
        if (it->id == id) {
            // The Session owns the world and its checkpoint ring;
            // erasing frees both (the churn test pins this down).
            sessions_.erase(it);
            return okStatus();
        }
    }
    return notFound("no session with WorldId " + std::to_string(id));
}

std::unique_ptr<World>
Server::releaseWorld(WorldId id)
{
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
        if (it->id == id) {
            std::unique_ptr<World> world = std::move(it->world);
            sessions_.erase(it);
            world->setMetricsScope("");
            // Back to solo semantics: hard-fails abort again, and
            // any server-imposed quality floor is lifted.
            world->setDeferInvariantHardFail(false);
            world->setDegradationFloor(0);
            return world;
        }
    }
    return nullptr;
}

World *
Server::world(WorldId id)
{
    Session *s = findSession(id);
    return s ? s->world.get() : nullptr;
}

const World *
Server::world(WorldId id) const
{
    const Session *s = findSession(id);
    return s ? s->world.get() : nullptr;
}

std::vector<WorldId>
Server::worldIds() const
{
    std::vector<WorldId> ids;
    ids.reserve(sessions_.size());
    for (const Session &s : sessions_)
        ids.push_back(s.id);
    return ids;
}

double
Server::phase(WorldId id) const
{
    const Session *s = findSession(id);
    if (!s)
        return 0.0;
    const double p = s->accumulator / config_.tickDt;
    return std::min(std::max(p, 0.0), 1.0);
}

double
Server::tickCostEstimate(const Session &s) const
{
    double cost = config_.mockTickSeconds
                      ? config_.mockTickSeconds(s.ticksRun, s.id)
                      : s.lastTickSeconds;
    // A demoted session runs a cheaper ladder plan; price it so,
    // or the shedder would keep demoting past the point of relief.
    if (s.shedRung > 0)
        cost *= std::pow(config_.shedDemoteCostScale, s.shedRung);
    return cost;
}

void
Server::applyDegradationFloor(Session &s)
{
    s.world->setDegradationFloor(
        std::max(s.recoveryRung, s.shedRung));
}

bool
Server::shedPendingTicks()
{
    // Projected bill: pending ticks priced at each session's latest
    // cost sample (or the injected schedule). Sessions that have
    // never ticked price at zero, so a cold server always admits its
    // first update — shedding needs evidence.
    double projected = 0.0;
    for (const Session &s : sessions_)
        projected += s.pendingTicks * tickCostEstimate(s);
    if (projected <= config_.tickBudget)
        return false;

    std::vector<Session *> order;
    order.reserve(sessions_.size());
    for (Session &s : sessions_)
        if (s.config.sheddable && s.pendingTicks > 0)
            order.push_back(&s);
    std::sort(order.begin(), order.end(),
              [](const Session *a, const Session *b) {
                  return a->id > b->id;
              });

    // Tier one: demote quality before dropping time. One rung per
    // session per pass, newest first, so the pain spreads across the
    // sheddable population instead of crushing one session.
    if (config_.shedDemoteMaxRung > 0) {
        const int max_rung = std::min(config_.shedDemoteMaxRung,
                                      StepGovernor::maxLadderLevel);
        bool progress = true;
        while (projected > config_.tickBudget && progress) {
            progress = false;
            for (Session *s : order) {
                if (projected <= config_.tickBudget)
                    break;
                if (s->shedRung >= max_rung)
                    continue;
                projected -=
                    s->pendingTicks * tickCostEstimate(*s);
                ++s->shedRung;
                s->shedCalmUpdates = 0;
                applyDegradationFloor(*s);
                ++stats_.demotions;
                metrics_.add("server.demotions", 1.0);
                projected +=
                    s->pendingTicks * tickCostEstimate(*s);
                progress = true;
            }
        }
        if (projected <= config_.tickBudget)
            return true;
    }

    // Tier two: drop whole sessions' pending ticks, newest (highest
    // id) first — a deterministic order that favors long-lived
    // sessions, and one tests can predict exactly. Non-sheddable
    // sessions always run.
    for (Session *s : order) {
        if (projected <= config_.tickBudget)
            break;
        projected -= s->pendingTicks * tickCostEstimate(*s);
        stats_.ticksShed += s->pendingTicks;
        metrics_.add("server.ticks_shed",
                     static_cast<double>(s->pendingTicks));
        s->pendingTicks = 0;
    }
    return true;
}

void
Server::relaxShedRungs(bool pressured)
{
    if (config_.shedDemoteMaxRung <= 0)
        return;
    for (Session &s : sessions_) {
        if (s.shedRung == 0)
            continue;
        if (pressured) {
            s.shedCalmUpdates = 0;
            continue;
        }
        if (++s.shedCalmUpdates >= config_.shedRecoveryUpdates) {
            --s.shedRung;
            s.shedCalmUpdates = 0;
            applyDegradationFloor(s);
        }
    }
}

void
Server::injectFaults()
{
    if (config_.faultPlan.empty())
        return;
    const std::vector<ServerFaultEvent> &events =
        config_.faultPlan.events;
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (faultFired_[i])
            continue;
        const ServerFaultEvent &e = events[i];
        Session *s = findSession(e.world);
        if (!s || s->ticksRun < e.tick)
            continue;
        faultFired_[i] = true;
        ++stats_.faultsInjected;
        metrics_.add("server.faults_injected", 1.0);
        switch (e.kind) {
        case ServerFaultKind::NanState:
        case ServerFaultKind::HugeImpulse: {
            std::vector<RigidBody *> dynamic;
            for (const auto &b : s->world->bodies())
                if (!b->isStatic())
                    dynamic.push_back(b.get());
            if (dynamic.empty())
                break;
            RigidBody *body = dynamic[e.target % dynamic.size()];
            if (e.kind == ServerFaultKind::NanState) {
                const double nan =
                    std::numeric_limits<double>::quiet_NaN();
                body->setLinearVelocity(Vec3(nan, nan, nan));
            } else {
                body->applyImpulse(Vec3(e.magnitude, 0.0, 0.0),
                                   body->position());
            }
            break;
        }
        case ServerFaultKind::CorruptCheckpoint:
            s->ring.corruptNewest();
            break;
        case ServerFaultKind::StalledTick:
            s->stallSeconds = e.magnitude;
            break;
        }
    }
}

void
Server::runPendingTicks()
{
    std::vector<Session *> active;
    active.reserve(sessions_.size());
    for (Session &s : sessions_)
        if (s.pendingTicks > 0)
            active.push_back(&s);
    if (active.empty()) {
        stats_.lastUpdateSeconds = 0.0;
        return;
    }

    const auto wall_start = std::chrono::steady_clock::now();
    scheduler_.parallelFor(
        active.size(), 1,
        [this, &active](std::size_t begin, std::size_t end,
                        unsigned /*lane*/) {
            for (std::size_t i = begin; i < end; ++i) {
                Session &s = *active[i];
                for (int t = 0; t < s.pendingTicks; ++t) {
                    if (config_.mockTickSeconds) {
                        s.lastTickSeconds =
                            config_.mockTickSeconds(s.ticksRun,
                                                    s.id);
                        s.world->step();
                    } else {
                        const auto t0 =
                            std::chrono::steady_clock::now();
                        s.world->step();
                        const auto t1 =
                            std::chrono::steady_clock::now();
                        s.lastTickSeconds =
                            std::chrono::duration<double>(t1 - t0)
                                .count();
                    }
                    ++s.ticksRun;
                }
                // A scripted stall overrides the burst's cost sample
                // (this session belongs to this lane alone — no
                // race). Consumed once: the next burst measures
                // normally again.
                if (s.stallSeconds >= 0.0) {
                    s.lastTickSeconds = s.stallSeconds;
                    s.stallSeconds = -1.0;
                }
            }
        });
    const auto wall_end = std::chrono::steady_clock::now();
    stats_.lastUpdateSeconds =
        std::chrono::duration<double>(wall_end - wall_start).count();

    // Merge per-session counters on the calling thread, after the
    // parallelFor barrier: no lane contention on the global stats.
    std::uint64_t ran = 0;
    for (Session *s : active) {
        ran += static_cast<std::uint64_t>(s->pendingTicks);
        s->pendingTicks = 0;
    }
    stats_.ticksRun += ran;
    metrics_.add("server.ticks", static_cast<double>(ran));
}

WorldFailure
Server::classify(const Session &s) const
{
    // Severity order: an explicit invariant verdict outranks the
    // cheap numeric probe, which outranks the timing symptom.
    if (!s.world->invariantHardFailure().empty())
        return WorldFailure::InvariantHardFail;
    if (s.world->permanentQuarantineCount() > 0)
        return WorldFailure::PermanentQuarantine;
    if (!worldStateFinite(*s.world))
        return WorldFailure::NonFiniteState;
    if (config_.tickDeadline > 0 &&
        s.lastTickSeconds > config_.tickDeadline)
        return WorldFailure::DeadlineOverrun;
    return WorldFailure::None;
}

Status
Server::attemptRollback(Session &s, std::uint64_t &restoredTick)
{
    Status last = failedPrecondition(
        "no checkpoint available for world " + std::to_string(s.id));
    // Newest first; a corrupt entry (checksum mismatch) or one the
    // world rejects falls through to the next-older checkpoint —
    // entries are encoded independently against the ring's anchor,
    // so one bad blob never poisons the rest.
    for (std::size_t i = 0; i < s.ring.size(); ++i) {
        std::vector<std::uint8_t> full;
        Status st = s.ring.reconstruct(i, full);
        if (!st.ok()) {
            last = std::move(st);
            continue;
        }
        st = s.world->restoreState(full);
        if (!st.ok()) {
            last = std::move(st);
            continue;
        }
        restoredTick = s.ring.tickAt(i);
        // Entries newer than the restore point captured states on
        // the now-abandoned (possibly poisoned) timeline: restart
        // the ring from the proven-good snapshot.
        s.ring.clear();
        s.ring.push(restoredTick, std::move(full));
        return okStatus();
    }
    return last;
}

void
Server::recordRecovery(const Session &s, WorldFailure failure,
                       RecoveryAction action,
                       std::uint64_t restoredTick, Status status)
{
    RecoveryRecord r;
    r.update = stats_.updates;
    r.world = s.id;
    r.failure = failure;
    r.action = action;
    r.tick = s.ticksRun;
    r.restoredTick = restoredTick;
    r.rung = std::max(s.recoveryRung, s.shedRung);
    r.status = std::move(status);
    if (recoveryLog_.size() >= maxRecoveryLogEntries)
        recoveryLog_.erase(recoveryLog_.begin());
    recoveryLog_.push_back(std::move(r));
}

void
Server::watchdogSweep()
{
    const RecoveryConfig &rec = config_.recovery;
    std::vector<WorldId> evict;
    for (Session &s : sessions_) {
        if (s.health == HealthState::Frozen) {
            ++s.frozenUpdates;
            if (rec.freezeUpdates > 0 &&
                s.frozenUpdates >= rec.freezeUpdates) {
                recordRecovery(
                    s, s.lastFailure, RecoveryAction::Evict, 0,
                    dataLoss("world " + std::to_string(s.id) +
                             " evicted: unrecoverable after " +
                             std::to_string(s.totalRollbacks) +
                             " rollbacks (" +
                             worldFailureName(s.lastFailure) + ")"));
                ++stats_.evictions;
                metrics_.add("server.evictions", 1.0);
                evict.push_back(s.id);
            }
            continue;
        }

        const WorldFailure failure = classify(s);
        if (failure == WorldFailure::None) {
            if (s.health == HealthState::Probation &&
                s.ticksRun >= s.probationUntilTick) {
                s.health = HealthState::Healthy;
                s.consecutiveRollbacks = 0;
                s.recoveryRung = 0;
                s.lastFailure = WorldFailure::None;
                applyDegradationFloor(s);
                ++stats_.recoveries;
                metrics_.add("server.recoveries", 1.0);
                recordRecovery(s, WorldFailure::None,
                               RecoveryAction::Heal, 0, okStatus());
                s.world->markRecoveryEvent(
                    "server_heal",
                    static_cast<std::int64_t>(s.id));
            }
            continue;
        }

        ++stats_.watchdogTrips;
        metrics_.add("server.watchdog_trips", 1.0);
        s.lastFailure = failure;
        // Backoff: a world that keeps re-tripping right after a
        // rollback must not consume the server in a rollback storm;
        // it runs sick (deterministically) until the window passes.
        if (s.ticksRun < s.nextRetryTick)
            continue;

        const int attempt =
            static_cast<int>(s.consecutiveRollbacks);
        if (attempt >= rec.maxRollbacks) {
            s.health = HealthState::Frozen;
            s.frozenUpdates = 0;
            ++stats_.freezes;
            metrics_.add("server.freezes", 1.0);
            recordRecovery(
                s, failure, RecoveryAction::Freeze, 0,
                unavailable("world " + std::to_string(s.id) +
                            " frozen: rollback budget exhausted (" +
                            std::to_string(rec.maxRollbacks) + ")"));
            s.world->markRecoveryEvent(
                "server_freeze", static_cast<std::int64_t>(s.id));
            continue;
        }

        std::uint64_t restored_tick = 0;
        Status st = attemptRollback(s, restored_tick);
        if (!st.ok()) {
            s.health = HealthState::Frozen;
            s.frozenUpdates = 0;
            ++stats_.freezes;
            metrics_.add("server.freezes", 1.0);
            recordRecovery(s, failure, RecoveryAction::Freeze, 0,
                           std::move(st));
            s.world->markRecoveryEvent(
                "server_freeze", static_cast<std::int64_t>(s.id));
            continue;
        }

        ++s.consecutiveRollbacks;
        ++s.totalRollbacks;
        ++stats_.rollbacks;
        metrics_.add("server.rollbacks", 1.0);
        RecoveryAction action = RecoveryAction::Rollback;
        const int rung =
            std::min(StepGovernor::maxLadderLevel,
                     (static_cast<int>(s.consecutiveRollbacks) - 1) *
                         rec.demoteRungsPerRetry);
        if (rung > s.recoveryRung) {
            s.recoveryRung = rung;
            ++stats_.demotions;
            metrics_.add("server.demotions", 1.0);
            action = RecoveryAction::RollbackDemote;
        }
        applyDegradationFloor(s);
        s.health = HealthState::Probation;
        s.probationUntilTick = s.ticksRun + rec.probationTicks;
        const unsigned shift = std::min(
            s.consecutiveRollbacks - 1, std::uint32_t(20));
        s.nextRetryTick =
            s.ticksRun + (rec.backoffBaseTicks << shift);
        // The rewind invalidated every delta base clients hold.
        s.streamDirty = true;
        s.world->markRecoveryEvent(
            "server_rollback",
            static_cast<std::int64_t>(restored_tick));
        recordRecovery(s, failure, action, restored_tick,
                       okStatus());
    }

    for (WorldId id : evict)
        destroyWorld(id);
}

void
Server::takeCheckpoints()
{
    if (config_.checkpointIntervalTicks <= 0)
        return;
    for (Session &s : sessions_) {
        if (s.health == HealthState::Frozen)
            continue;
        if (s.ticksRun == 0 || s.ticksRun < s.nextCheckpointTick)
            continue;
        // Only provably-healthy states enter the ring: a checkpoint
        // of a sick world would make rollback a no-op.
        if (classify(s) != WorldFailure::None)
            continue;
        s.ring.push(s.ticksRun, s.world->captureState());
        s.nextCheckpointTick =
            s.ticksRun + static_cast<std::uint64_t>(
                             config_.checkpointIntervalTicks);
        ++stats_.checkpoints;
        metrics_.add("server.checkpoints", 1.0);
    }
}

Status
Server::advance(double elapsed)
{
    if (!std::isfinite(elapsed) || elapsed < 0)
        return invalidArgument("advance: elapsed must be >= 0 and "
                               "finite (got " +
                               std::to_string(elapsed) + ")");
    for (Session &s : sessions_) {
        if (s.health == HealthState::Frozen) {
            // Frozen worlds hold at last-good: no ticks, and no
            // banked debt to repay on a thaw that may never come.
            s.accumulator = 0.0;
            s.pendingTicks = 0;
            continue;
        }
        s.accumulator += elapsed;
        s.pendingTicks = wholeTicks(s.accumulator, config_.tickDt,
                                    config_.maxTicksPerUpdate);
        // Banked time is consumed whether the ticks run or get
        // shed: a shed session drops simulation time instead of
        // accumulating an unpayable debt. Likewise when the
        // spiral-of-death guard clamps the count, the unpayable
        // remainder is dropped, not carried into the next update.
        const int cap = config_.maxTicksPerUpdate > 0
                            ? config_.maxTicksPerUpdate
                            : INT_MAX;
        if (s.pendingTicks >= cap)
            s.accumulator = 0.0;
        else
            s.accumulator -= s.pendingTicks * config_.tickDt;
    }
    if (config_.tickBudget > 0) {
        const bool pressured = shedPendingTicks();
        relaxShedRungs(pressured);
    }
    if (selfHealingEnabled())
        injectFaults();
    runPendingTicks();
    ++stats_.updates;
    if (selfHealingEnabled()) {
        watchdogSweep();
        takeCheckpoints();
    }
    updateMetrics();
    return okStatus();
}

Status
Server::tickAll(int ticks)
{
    if (ticks < 0)
        return invalidArgument("tickAll: ticks must be >= 0 (got " +
                               std::to_string(ticks) + ")");
    for (Session &s : sessions_)
        s.pendingTicks =
            s.health == HealthState::Frozen ? 0 : ticks;
    if (selfHealingEnabled())
        injectFaults();
    runPendingTicks();
    ++stats_.updates;
    if (selfHealingEnabled()) {
        watchdogSweep();
        takeCheckpoints();
    }
    updateMetrics();
    return okStatus();
}

Status
Server::snapshotWorld(WorldId id,
                      std::vector<std::uint8_t> &out) const
{
    const Session *s = findSession(id);
    if (!s)
        return notFound("no session with WorldId " +
                        std::to_string(id));
    out = s->world->captureState();
    return okStatus();
}

Status
Server::streamSnapshot(WorldId id,
                       const std::vector<std::uint8_t> *base,
                       std::vector<std::uint8_t> &out)
{
    Session *s = findSession(id);
    if (!s)
        return notFound("no session with WorldId " +
                        std::to_string(id));
    std::vector<std::uint8_t> full = s->world->captureState();
    if (!base || s->streamDirty) {
        if (base && s->streamDirty) {
            // Resync: the caller expected a delta; the full blob it
            // gets instead (detectable via isSnapshotDelta) restarts
            // the chain from shared ground truth.
            ++stats_.resyncFulls;
            metrics_.add("server.resync_fulls", 1.0);
        }
        s->streamDirty = false;
        out = std::move(full);
        return okStatus();
    }
    out = encodeSnapshotDelta(*base, full);
    return okStatus();
}

Status
Server::restoreWorld(WorldId id,
                     const std::vector<std::uint8_t> &blob,
                     const std::vector<std::uint8_t> *base)
{
    Session *s = findSession(id);
    if (!s)
        return notFound("no session with WorldId " +
                        std::to_string(id));
    if (isSnapshotDelta(blob)) {
        if (!base) {
            return failedPrecondition(
                "restoreWorld: blob is a snapshot delta but no base "
                "snapshot was supplied");
        }
        std::vector<std::uint8_t> full;
        const Status st = applySnapshotDelta(*base, blob, full);
        if (!st.ok()) {
            // The delta chain is broken in both directions: the
            // next streamSnapshot must not build on a base the
            // client provably no longer shares.
            s->streamDirty = true;
            return st;
        }
        return s->world->restoreState(full);
    }
    return s->world->restoreState(blob);
}

Status
Server::sessionHealth(WorldId id, SessionHealth &out) const
{
    const Session *s = findSession(id);
    if (!s)
        return notFound("no session with WorldId " +
                        std::to_string(id));
    out.state = s->health;
    out.lastFailure = s->lastFailure;
    out.consecutiveRollbacks = s->consecutiveRollbacks;
    out.totalRollbacks = s->totalRollbacks;
    out.recoveryRung = s->recoveryRung;
    out.shedRung = s->shedRung;
    out.checkpoints = s->ring.size();
    out.checkpointBytes = s->ring.bytesUsed();
    out.lastCheckpointTick =
        s->ring.empty() ? 0 : s->ring.tickAt(0);
    return okStatus();
}

void
Server::updateMetrics()
{
    metrics_.set("server.worlds",
                 static_cast<double>(sessions_.size()));
    metrics_.set("server.workers",
                 static_cast<double>(scheduler_.workerCount()));
    if (selfHealingEnabled()) {
        std::size_t bytes = 0;
        for (const Session &s : sessions_)
            bytes += s.ring.bytesUsed();
        metrics_.set("server.checkpoint_bytes",
                     static_cast<double>(bytes));
    }
}

std::string
Server::metricsLine() const
{
    // Deterministic values only (counts, never wall-clock), fixed
    // key order; consumers key on "pax_server". New keys append so
    // substring-based consumers of older keys keep matching.
    auto u64 = [](std::uint64_t v) { return std::to_string(v); };
    std::size_t checkpoint_bytes = 0;
    for (const Session &s : sessions_)
        checkpoint_bytes += s.ring.bytesUsed();
    std::string out = "{\"pax_server\":1";
    out += ",\"worlds\":" + u64(sessions_.size());
    out += ",\"updates\":" + u64(stats_.updates);
    out += ",\"ticks_total\":" + u64(stats_.ticksRun);
    out += ",\"ticks_shed_total\":" + u64(stats_.ticksShed);
    out += ",\"admission_rejects\":" + u64(stats_.admissionRejects);
    out += ",\"checkpoints\":" + u64(stats_.checkpoints);
    out += ",\"checkpoint_bytes\":" + u64(checkpoint_bytes);
    out += ",\"watchdog_trips\":" + u64(stats_.watchdogTrips);
    out += ",\"rollbacks\":" + u64(stats_.rollbacks);
    out += ",\"recoveries\":" + u64(stats_.recoveries);
    out += ",\"demotions\":" + u64(stats_.demotions);
    out += ",\"freezes\":" + u64(stats_.freezes);
    out += ",\"evictions\":" + u64(stats_.evictions);
    out += ",\"faults_injected\":" + u64(stats_.faultsInjected);
    out += ",\"resync_fulls\":" + u64(stats_.resyncFulls);
    out += "}";
    return out;
}

} // namespace parallax
