/**
 * @file
 * Multi-world server implementation. See server.hh for the model.
 *
 * The scheduling trick is a single parallelFor over the sessions
 * with pending ticks, grain 1: each chunk is one whole session, so
 * an idle lane steals an entire world's tick burst at once. A
 * session is only ever touched by the one lane executing its chunk,
 * which makes the per-session bookkeeping (tick counters, cost
 * samples) race-free without any locks.
 */

#include "server/server.hh"

#include <algorithm>
#include <chrono>
#include <climits>
#include <cmath>

#include "physics/debug/capture.hh"
#include "sim/logging.hh"

namespace parallax
{

namespace
{

std::string
joinErrors(const std::vector<std::string> &errors)
{
    std::string joined;
    for (const std::string &e : errors) {
        if (!joined.empty())
            joined += "; ";
        joined += e;
    }
    return joined;
}

/** Whole ticks banked in `accumulator`, robust to the float error
 *  of repeated `elapsed` additions (2.9999999996 ticks is 3).
 *  Clamped to [0, max_ticks] (max_ticks <= 0 means INT_MAX): the
 *  double->int cast is UB once the quotient exceeds INT_MAX, so a
 *  huge `elapsed` must never reach the cast unclamped. */
int
wholeTicks(double accumulator, double tick_dt, int max_ticks)
{
    const double ticks = std::floor(accumulator / tick_dt + 1e-9);
    const int cap = max_ticks > 0 ? max_ticks : INT_MAX;
    if (ticks <= 0)
        return 0;
    if (ticks >= static_cast<double>(cap))
        return cap;
    return static_cast<int>(ticks);
}

} // namespace

std::vector<std::string>
ServerConfig::validate() const
{
    std::vector<std::string> errors;
    auto check = [&errors](bool ok, std::string msg) {
        if (!ok)
            errors.push_back(std::move(msg));
    };
    check(std::isfinite(tickDt) && tickDt > 0,
          "tickDt must be positive and finite (got " +
              std::to_string(tickDt) + ")");
    check(workerThreads <= 1024,
          "workerThreads must be <= 1024 (got " +
              std::to_string(workerThreads) + ")");
    check(std::isfinite(tickBudget) && tickBudget >= 0,
          "tickBudget must be >= 0 and finite (got " +
              std::to_string(tickBudget) + ")");
    check(maxTicksPerUpdate >= 0,
          "maxTicksPerUpdate must be >= 0 (got " +
              std::to_string(maxTicksPerUpdate) + ")");
    return errors;
}

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      // Grain 1: one session per chunk, maximal stealing surface.
      scheduler_(SchedulerConfig{config_.workerThreads, 1, true})
{
    const std::vector<std::string> errors = config_.validate();
    if (!errors.empty())
        fatal("invalid ServerConfig: %s", joinErrors(errors).c_str());
}

Server::~Server() = default;

Server::Session *
Server::findSession(WorldId id)
{
    for (Session &s : sessions_)
        if (s.id == id)
            return &s;
    return nullptr;
}

const Server::Session *
Server::findSession(WorldId id) const
{
    for (const Session &s : sessions_)
        if (s.id == id)
            return &s;
    return nullptr;
}

Status
Server::admit(std::unique_ptr<World> world,
              const SessionConfig &session, WorldId &id)
{
    if (config_.maxWorlds > 0 &&
        sessions_.size() >= config_.maxWorlds) {
        ++stats_.admissionRejects;
        metrics_.add("server.admission_rejects", 1.0);
        return resourceExhausted(
            "admission refused: server hosts " +
            std::to_string(sessions_.size()) + " worlds, cap is " +
            std::to_string(config_.maxWorlds));
    }
    Session s;
    s.id = nextId_++;
    s.world = std::move(world);
    s.config = session;
    s.world->setMetricsScope("world." + std::to_string(s.id));
    id = s.id;
    sessions_.push_back(std::move(s));
    return okStatus();
}

Status
Server::createWorld(const WorldConfig &config, WorldId &id,
                    const SessionConfig &session)
{
    WorldConfig cfg = config;
    cfg.dt = config_.tickDt;
    cfg.workerThreads = 0;
    const std::vector<std::string> errors = cfg.validate();
    if (!errors.empty())
        return invalidArgument("invalid WorldConfig: " +
                               joinErrors(errors));
    return admit(std::make_unique<World>(std::move(cfg)), session,
                 id);
}

Status
Server::adoptWorld(std::unique_ptr<World> world, WorldId &id,
                   const SessionConfig &session)
{
    if (!world)
        return invalidArgument("adoptWorld: null world");
    if (world->config().workerThreads != 0) {
        return invalidArgument(
            "adoptWorld: world has workerThreads == " +
            std::to_string(world->config().workerThreads) +
            "; hosted worlds must be single-threaded (the server's "
            "scheduler supplies the parallelism)");
    }
    if (world->config().dt != config_.tickDt) {
        return invalidArgument(
            "adoptWorld: world dt " +
            std::to_string(world->config().dt) +
            " != server tickDt " + std::to_string(config_.tickDt));
    }
    return admit(std::move(world), session, id);
}

Status
Server::destroyWorld(WorldId id)
{
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
        if (it->id == id) {
            sessions_.erase(it);
            return okStatus();
        }
    }
    return notFound("no session with WorldId " + std::to_string(id));
}

std::unique_ptr<World>
Server::releaseWorld(WorldId id)
{
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
        if (it->id == id) {
            std::unique_ptr<World> world = std::move(it->world);
            sessions_.erase(it);
            world->setMetricsScope("");
            return world;
        }
    }
    return nullptr;
}

World *
Server::world(WorldId id)
{
    Session *s = findSession(id);
    return s ? s->world.get() : nullptr;
}

const World *
Server::world(WorldId id) const
{
    const Session *s = findSession(id);
    return s ? s->world.get() : nullptr;
}

std::vector<WorldId>
Server::worldIds() const
{
    std::vector<WorldId> ids;
    ids.reserve(sessions_.size());
    for (const Session &s : sessions_)
        ids.push_back(s.id);
    return ids;
}

double
Server::phase(WorldId id) const
{
    const Session *s = findSession(id);
    if (!s)
        return 0.0;
    const double p = s->accumulator / config_.tickDt;
    return std::min(std::max(p, 0.0), 1.0);
}

void
Server::shedPendingTicks()
{
    // Projected bill: pending ticks priced at each session's latest
    // cost sample (or the injected schedule). Sessions that have
    // never ticked price at zero, so a cold server always admits its
    // first update — shedding needs evidence.
    auto estimate = [this](const Session &s) {
        if (config_.mockTickSeconds)
            return config_.mockTickSeconds(s.ticksRun, s.id);
        return s.lastTickSeconds;
    };
    double projected = 0.0;
    for (const Session &s : sessions_)
        projected += s.pendingTicks * estimate(s);
    if (projected <= config_.tickBudget)
        return;

    // Drop whole sessions' pending ticks, newest (highest id) first:
    // a deterministic order that favors long-lived sessions, and one
    // tests can predict exactly. Non-sheddable sessions always run.
    std::vector<Session *> order;
    order.reserve(sessions_.size());
    for (Session &s : sessions_)
        if (s.config.sheddable && s.pendingTicks > 0)
            order.push_back(&s);
    std::sort(order.begin(), order.end(),
              [](const Session *a, const Session *b) {
                  return a->id > b->id;
              });
    for (Session *s : order) {
        if (projected <= config_.tickBudget)
            break;
        projected -= s->pendingTicks * estimate(*s);
        stats_.ticksShed += s->pendingTicks;
        metrics_.add("server.ticks_shed",
                     static_cast<double>(s->pendingTicks));
        s->pendingTicks = 0;
    }
}

void
Server::runPendingTicks()
{
    std::vector<Session *> active;
    active.reserve(sessions_.size());
    for (Session &s : sessions_)
        if (s.pendingTicks > 0)
            active.push_back(&s);
    if (active.empty()) {
        stats_.lastUpdateSeconds = 0.0;
        return;
    }

    const auto wall_start = std::chrono::steady_clock::now();
    scheduler_.parallelFor(
        active.size(), 1,
        [this, &active](std::size_t begin, std::size_t end,
                        unsigned /*lane*/) {
            for (std::size_t i = begin; i < end; ++i) {
                Session &s = *active[i];
                for (int t = 0; t < s.pendingTicks; ++t) {
                    if (config_.mockTickSeconds) {
                        s.lastTickSeconds =
                            config_.mockTickSeconds(s.ticksRun,
                                                    s.id);
                        s.world->step();
                    } else {
                        const auto t0 =
                            std::chrono::steady_clock::now();
                        s.world->step();
                        const auto t1 =
                            std::chrono::steady_clock::now();
                        s.lastTickSeconds =
                            std::chrono::duration<double>(t1 - t0)
                                .count();
                    }
                    ++s.ticksRun;
                }
            }
        });
    const auto wall_end = std::chrono::steady_clock::now();
    stats_.lastUpdateSeconds =
        std::chrono::duration<double>(wall_end - wall_start).count();

    // Merge per-session counters on the calling thread, after the
    // parallelFor barrier: no lane contention on the global stats.
    std::uint64_t ran = 0;
    for (Session *s : active) {
        ran += static_cast<std::uint64_t>(s->pendingTicks);
        s->pendingTicks = 0;
    }
    stats_.ticksRun += ran;
    metrics_.add("server.ticks", static_cast<double>(ran));
}

Status
Server::advance(double elapsed)
{
    if (!std::isfinite(elapsed) || elapsed < 0)
        return invalidArgument("advance: elapsed must be >= 0 and "
                               "finite (got " +
                               std::to_string(elapsed) + ")");
    for (Session &s : sessions_) {
        s.accumulator += elapsed;
        s.pendingTicks = wholeTicks(s.accumulator, config_.tickDt,
                                    config_.maxTicksPerUpdate);
        // Banked time is consumed whether the ticks run or get
        // shed: a shed session drops simulation time instead of
        // accumulating an unpayable debt. Likewise when the
        // spiral-of-death guard clamps the count, the unpayable
        // remainder is dropped, not carried into the next update.
        const int cap = config_.maxTicksPerUpdate > 0
                            ? config_.maxTicksPerUpdate
                            : INT_MAX;
        if (s.pendingTicks >= cap)
            s.accumulator = 0.0;
        else
            s.accumulator -= s.pendingTicks * config_.tickDt;
    }
    if (config_.tickBudget > 0)
        shedPendingTicks();
    runPendingTicks();
    ++stats_.updates;
    updateMetrics();
    return okStatus();
}

Status
Server::tickAll(int ticks)
{
    if (ticks < 0)
        return invalidArgument("tickAll: ticks must be >= 0 (got " +
                               std::to_string(ticks) + ")");
    for (Session &s : sessions_)
        s.pendingTicks = ticks;
    runPendingTicks();
    ++stats_.updates;
    updateMetrics();
    return okStatus();
}

Status
Server::snapshotWorld(WorldId id,
                      std::vector<std::uint8_t> &out) const
{
    const Session *s = findSession(id);
    if (!s)
        return notFound("no session with WorldId " +
                        std::to_string(id));
    out = s->world->captureState();
    return okStatus();
}

Status
Server::streamSnapshot(WorldId id,
                       const std::vector<std::uint8_t> *base,
                       std::vector<std::uint8_t> &out) const
{
    const Session *s = findSession(id);
    if (!s)
        return notFound("no session with WorldId " +
                        std::to_string(id));
    std::vector<std::uint8_t> full = s->world->captureState();
    if (!base) {
        out = std::move(full);
        return okStatus();
    }
    out = encodeSnapshotDelta(*base, full);
    return okStatus();
}

Status
Server::restoreWorld(WorldId id,
                     const std::vector<std::uint8_t> &blob,
                     const std::vector<std::uint8_t> *base)
{
    Session *s = findSession(id);
    if (!s)
        return notFound("no session with WorldId " +
                        std::to_string(id));
    if (isSnapshotDelta(blob)) {
        if (!base) {
            return failedPrecondition(
                "restoreWorld: blob is a snapshot delta but no base "
                "snapshot was supplied");
        }
        std::vector<std::uint8_t> full;
        const Status st = applySnapshotDelta(*base, blob, full);
        if (!st.ok())
            return st;
        return s->world->restoreState(full);
    }
    return s->world->restoreState(blob);
}

void
Server::updateMetrics()
{
    metrics_.set("server.worlds",
                 static_cast<double>(sessions_.size()));
    metrics_.set("server.workers",
                 static_cast<double>(scheduler_.workerCount()));
}

std::string
Server::metricsLine() const
{
    // Deterministic values only (counts, never wall-clock), fixed
    // key order; consumers key on "pax_server".
    auto u64 = [](std::uint64_t v) { return std::to_string(v); };
    std::string out = "{\"pax_server\":1";
    out += ",\"worlds\":" + u64(sessions_.size());
    out += ",\"updates\":" + u64(stats_.updates);
    out += ",\"ticks_total\":" + u64(stats_.ticksRun);
    out += ",\"ticks_shed_total\":" + u64(stats_.ticksShed);
    out += ",\"admission_rejects\":" + u64(stats_.admissionRejects);
    out += "}";
    return out;
}

} // namespace parallax
