/**
 * @file
 * Checkpoint ring implementation. See checkpoint_ring.hh for the
 * anchor + independent-delta layout and the rebase policy.
 */

#include "server/checkpoint_ring.hh"

#include "physics/debug/capture.hh"
#include "physics/world.hh"

namespace parallax
{

namespace
{

/** Magic/version/checksum validation of a stored full snapshot, so
 *  a corrupted full entry fails inside reconstruct() just like a
 *  corrupted delta — the caller's fallback walk stays uniform. */
Status
validateFull(const std::vector<std::uint8_t> &bytes)
{
    SnapshotInfo info;
    WorldConfig config;
    return describeSnapshot(bytes, info, config);
}

} // namespace

void
CheckpointRing::setCapacity(std::size_t capacity)
{
    capacity_ = capacity == 0 ? 1 : capacity;
    while (deltas_.size() + 1 > capacity_)
        deltas_.pop_back();
}

std::uint64_t
CheckpointRing::tickAt(std::size_t i) const
{
    if (i < deltas_.size())
        return deltas_[i].tick;
    return baseTick_;
}

void
CheckpointRing::push(std::uint64_t tick, std::vector<std::uint8_t> full)
{
    if (base_.empty() || capacity_ == 1) {
        base_ = std::move(full);
        baseTick_ = tick;
        deltas_.clear();
        return;
    }
    std::vector<std::uint8_t> delta =
        encodeSnapshotDelta(base_, full);
    // Store whichever representation is smaller. A busy scene moves
    // nearly every body byte between checkpoints, making the delta
    // as large as the snapshot — storing it full keeps the entry
    // independent of the anchor at no extra cost.
    if (delta.size() < full.size())
        deltas_.push_front(Entry{tick, std::move(delta)});
    else
        deltas_.push_front(Entry{tick, std::move(full)});
    while (deltas_.size() + 1 > capacity_)
        deltas_.pop_back();
}

Status
CheckpointRing::reconstruct(std::size_t i,
                            std::vector<std::uint8_t> &out) const
{
    if (i >= size()) {
        return invalidArgument(
            "checkpoint index " + std::to_string(i) +
            " out of range (ring holds " + std::to_string(size()) +
            ")");
    }
    if (i == deltas_.size()) {
        const Status st = validateFull(base_);
        if (!st.ok())
            return st;
        out = base_;
        return okStatus();
    }
    const std::vector<std::uint8_t> &blob = deltas_[i].blob;
    if (isSnapshotDelta(blob))
        return applySnapshotDelta(base_, blob, out);
    const Status st = validateFull(blob);
    if (!st.ok())
        return st;
    out = blob;
    return okStatus();
}

std::size_t
CheckpointRing::bytesUsed() const
{
    std::size_t bytes = base_.size();
    for (const Entry &e : deltas_)
        bytes += e.blob.size();
    return bytes;
}

void
CheckpointRing::clear()
{
    base_.clear();
    base_.shrink_to_fit();
    baseTick_ = 0;
    deltas_.clear();
}

void
CheckpointRing::corruptNewest()
{
    std::vector<std::uint8_t> &blob =
        deltas_.empty() ? base_ : deltas_.front().blob;
    // Flip a spread of bytes (not just one, so both checksum fields
    // and payload are hit regardless of blob layout).
    for (std::size_t i = 0; i < blob.size(); i += 97)
        blob[i] ^= 0xa5;
}

} // namespace parallax
