/**
 * @file
 * Multi-world simulation server: N independent Worlds multiplexed
 * over one shared work-stealing TaskScheduler.
 *
 * Each hosted world runs single-threaded internally (workerThreads
 * must be 0); parallelism comes from the server's scheduler running
 * whole-world ticks as top-level chunks, so lanes steal entire
 * worlds instead of intra-world phases. Because a world's trajectory
 * depends only on its own step sequence — never on which lane ran
 * it — every hosted world's state is bitwise identical to stepping
 * the same scene solo, for any server worker count.
 *
 * Time advances on the classic fixed-tick accumulator: advance(dt)
 * banks real time per session, runs the whole ticks that fit, and
 * leaves the fractional remainder as the interpolation phase that
 * World::interpolate() consumes for rendering.
 *
 * Overload handling is two-tier and deterministic:
 *  - admission: ServerConfig::maxWorlds caps the population;
 *    createWorld/adoptWorld fail with RESOURCE_EXHAUSTED beyond it.
 *  - shedding: with ServerConfig::tickBudget set, advance() projects
 *    the coming tick bill from per-world cost estimates and, before
 *    dropping anything, demotes sheddable sessions down the step
 *    governor's degradation ladder (shedDemoteMaxRung rungs, cost
 *    scaled by shedDemoteCostScale per rung); only when the cheapest
 *    ladder still does not fit are pending ticks dropped, highest
 *    WorldId first. Calm updates promote demoted sessions back one
 *    rung at a time (shedRecoveryUpdates hysteresis).
 *    ServerConfig::mockTickSeconds replaces measured costs so tests
 *    replay identical decisions.
 *
 * Self-healing (all off by default; enabling it never perturbs a
 * healthy world's trajectory):
 *  - checkpointing: every checkpointIntervalTicks the server captures
 *    each healthy session into a per-world CheckpointRing (the K
 *    last-good snapshots, delta-encoded; staggered by session id so
 *    the capture cost spreads across updates).
 *  - watchdog: after every tick burst, each session is classified on
 *    the calling thread, in session order: a deferred invariant
 *    hard-fail, a permanent quarantine, a non-finite state, or a
 *    tick that overran ServerConfig::tickDeadline marks the world
 *    sick. Decisions key off deterministic inputs only (with
 *    mockTickSeconds supplying tick costs), so the same fault plan
 *    replays bitwise-identically at any worker count.
 *  - recovery ladder: a sick world is rolled back to its newest
 *    reconstructable checkpoint; repeated trips add a degradation
 *    floor (demoteRungsPerRetry rungs per retry) and exponential
 *    retry backoff; after maxRollbacks failed rehabilitations — or
 *    when no checkpoint is usable — the world is frozen at last-good,
 *    and after freezeUpdates more updates it is evicted with a typed
 *    Status in the recovery log. A world that stays healthy through
 *    its probation window is restored to full quality.
 *  - fault injection: ServerConfig::faultPlan scripts server-scale
 *    faults (server_faults.hh) against hosted sessions, the chaos
 *    harness for all of the above (tools/server_storm).
 */

#ifndef PARALLAX_SERVER_SERVER_HH
#define PARALLAX_SERVER_SERVER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "parallax/status.hh"
#include "physics/parallel/task_scheduler.hh"
#include "physics/trace/metrics.hh"
#include "physics/world.hh"
#include "server/checkpoint_ring.hh"
#include "server/server_faults.hh"

namespace parallax
{

/**
 * Opaque session handle. Ids are assigned monotonically and never
 * reused, so a stale handle from a destroyed session fails with
 * NOT_FOUND instead of silently aliasing a new world.
 */
using WorldId = std::uint64_t;

/** Never a valid session. */
constexpr WorldId invalidWorldId = 0;

/** Why the watchdog classified a hosted world as sick. */
enum class WorldFailure : std::uint8_t
{
    None,
    /** A deferred InvariantMode::HardFail violation (see
     *  World::setDeferInvariantHardFail). */
    InvariantHardFail,
    /** At least one island or cloth is quarantined permanently —
     *  containment gave up on part of the scene. */
    PermanentQuarantine,
    /** NaN or Inf in dynamic state (worldStateFinite). */
    NonFiniteState,
    /** The last tick's (measured or mocked) cost exceeded
     *  ServerConfig::tickDeadline. */
    DeadlineOverrun,
};

/** Human-readable failure-class name. */
const char *worldFailureName(WorldFailure failure);

/** Where a session sits in the recovery lifecycle. */
enum class HealthState : std::uint8_t
{
    Healthy,
    /** Rolled back recently; healthy ticks are counting toward the
     *  probation window that lifts the recovery demotion. */
    Probation,
    /** Recovery exhausted: held at last-good state, not ticking,
     *  awaiting eviction (or operator intervention). */
    Frozen,
};

/** Human-readable health-state name. */
const char *healthStateName(HealthState state);

/** What the recovery ladder did about a watchdog trip. */
enum class RecoveryAction : std::uint8_t
{
    /** Restored the newest reconstructable checkpoint. */
    Rollback,
    /** Rollback plus a degradation-floor demotion (second and later
     *  consecutive trips). */
    RollbackDemote,
    /** No rollback attempts left (or no usable checkpoint): session
     *  frozen at its last-good state. */
    Freeze,
    /** Frozen session removed; its RecoveryRecord::status carries
     *  the typed reason. */
    Evict,
    /** Probation completed: consecutive-rollback count cleared and
     *  the recovery degradation floor lifted. */
    Heal,
};

/** Human-readable recovery-action name. */
const char *recoveryActionName(RecoveryAction action);

/** Recovery-ladder tunables (ServerConfig::recovery). */
struct RecoveryConfig
{
    /** Consecutive rollbacks tolerated before the ladder freezes the
     *  world instead of rolling it back again. */
    int maxRollbacks = 3;

    /** Retry backoff: after the Nth consecutive rollback the
     *  watchdog ignores new trips for backoffBaseTicks << (N-1)
     *  session ticks, so a persistently sick world cannot consume
     *  the server in a rollback storm. */
    std::uint64_t backoffBaseTicks = 8;

    /** Degradation-ladder rungs added per consecutive rollback
     *  (governor/governor.hh): retry N runs with a floor of
     *  N * demoteRungsPerRetry. 0 retries at full quality. */
    int demoteRungsPerRetry = 2;

    /** Healthy session ticks after a rollback before the session is
     *  declared healed (rollback count cleared, floor lifted). */
    std::uint64_t probationTicks = 64;

    /** Server updates a frozen session is retained before eviction.
     *  0 keeps frozen sessions forever (operator decides). */
    std::uint64_t freezeUpdates = 4;
};

/** Server-wide tunables. */
struct ServerConfig
{
    /** Worker threads of the shared scheduler (0 = tick worlds
     *  inline on the calling thread). */
    unsigned workerThreads = 0;

    /** Fixed tick quantum in seconds. Every hosted world must be
     *  configured with dt == tickDt: sessions joining mid-run stay
     *  tick-aligned with everyone else. */
    double tickDt = 0.01;

    /** Admission cap: sessions beyond this fail with
     *  RESOURCE_EXHAUSTED (0 = unlimited). */
    std::size_t maxWorlds = 0;

    /**
     * Load shedding: wall-clock seconds of simulation budget per
     * advance() call. 0 (the default) disables shedding — every
     * pending tick always runs. When > 0, advance() projects the
     * cost of the pending ticks from per-session estimates and
     * drops sheddable sessions' ticks, highest WorldId first, until
     * the projection fits the budget.
     */
    double tickBudget = 0.0;

    /**
     * Spiral-of-death guard: at most this many ticks are banked per
     * session per advance() call; excess elapsed time is dropped.
     * Also caps the pathological case where a huge `elapsed` would
     * demand billions of ticks. 0 disables the cap (the count is
     * still clamped to INT_MAX internally, never overflowed).
     */
    int maxTicksPerUpdate = 0;

    /**
     * Test hook: when set, per-tick wall-clock measurements are
     * replaced by this function's value for each (tick, world), so
     * shedding and watchdog-deadline decisions become a pure
     * function of the injected schedule — two runs decide
     * identically at any worker count.
     */
    std::function<double(std::uint64_t tick, WorldId world)>
        mockTickSeconds;

    // --- Shedder degradation ladder. ---

    /**
     * Before dropping a sheddable session's ticks, demote it up to
     * this many rungs down the step governor's degradation ladder
     * (clamped to StepGovernor::maxLadderLevel). 0 (the default)
     * restores the drop-only shedder.
     */
    int shedDemoteMaxRung = 0;

    /** Projected cost multiplier per shed-demotion rung (a rung-3
     *  session is priced at scale^3 of its measured cost). */
    double shedDemoteCostScale = 0.85;

    /** Hysteresis: consecutive pressure-free updates before a
     *  shed-demoted session is promoted back one rung. */
    int shedRecoveryUpdates = 4;

    // --- Self-healing. ---

    /**
     * Checkpoint cadence in session ticks; 0 (the default) disables
     * checkpointing. Captures are staggered by session id so a fleet
     * does not checkpoint in lockstep.
     */
    int checkpointIntervalTicks = 0;

    /** Checkpoints retained per session (CheckpointRing capacity,
     *  anchor + deltas). */
    std::size_t checkpointRingSize = 3;

    /**
     * Watchdog deadline in seconds for one world tick; a session
     * whose last (measured or mocked) tick exceeds it is classified
     * DeadlineOverrun. 0 (the default) disables the deadline.
     */
    double tickDeadline = 0.0;

    /** Recovery-ladder tuning (used once the watchdog is active). */
    RecoveryConfig recovery;

    /** Scripted server-scale faults (empty = none). */
    ServerFaultPlan faultPlan;

    /** One human-readable message per problem (empty = valid). */
    std::vector<std::string> validate() const;
};

/** Per-session knobs, fixed at create/adopt time. */
struct SessionConfig
{
    /** May the shedder drop this session's ticks under overload?
     *  Non-sheddable sessions always run every pending tick. */
    bool sheddable = true;
};

/** Run-cumulative server counters. */
struct ServerStats
{
    /** World-ticks executed across all sessions. */
    std::uint64_t ticksRun = 0;
    /** World-ticks dropped by the shedder. */
    std::uint64_t ticksShed = 0;
    /** Sessions refused by the admission cap. */
    std::uint64_t admissionRejects = 0;
    /** advance() + tickAll() calls. */
    std::uint64_t updates = 0;
    /** Checkpoints captured into session rings. */
    std::uint64_t checkpoints = 0;
    /** Watchdog classifications of a sick world (pre-ladder). */
    std::uint64_t watchdogTrips = 0;
    /** Successful checkpoint rollbacks. */
    std::uint64_t rollbacks = 0;
    /** Probation completions — worlds restored to full health. */
    std::uint64_t recoveries = 0;
    /** Degradation-floor demotions (recovery ladder + shedder). */
    std::uint64_t demotions = 0;
    /** Sessions frozen by the recovery ladder. */
    std::uint64_t freezes = 0;
    /** Frozen sessions evicted. */
    std::uint64_t evictions = 0;
    /** ServerFaultPlan events fired. */
    std::uint64_t faultsInjected = 0;
    /** Full snapshots forced onto dirty delta streams. */
    std::uint64_t resyncFulls = 0;
    /** Measured (or mocked) seconds of the most recent update. */
    double lastUpdateSeconds = 0.0;
};

/** Snapshot of one session's recovery lifecycle (sessionHealth). */
struct SessionHealth
{
    HealthState state = HealthState::Healthy;
    /** Most recent watchdog classification (None when healthy). */
    WorldFailure lastFailure = WorldFailure::None;
    /** Consecutive rollbacks since the last Heal. */
    std::uint32_t consecutiveRollbacks = 0;
    std::uint64_t totalRollbacks = 0;
    /** Active recovery-ladder degradation floor. */
    int recoveryRung = 0;
    /** Active shedder degradation rung. */
    int shedRung = 0;
    /** Restorable checkpoints in the session's ring. */
    std::size_t checkpoints = 0;
    /** Ring bytes held (the memory-bound gauge). */
    std::size_t checkpointBytes = 0;
    /** Session tick of the newest checkpoint. */
    std::uint64_t lastCheckpointTick = 0;
};

/** One recovery-ladder decision, in decision order. */
struct RecoveryRecord
{
    /** ServerStats::updates when the decision was made. */
    std::uint64_t update = 0;
    WorldId world = invalidWorldId;
    WorldFailure failure = WorldFailure::None;
    RecoveryAction action = RecoveryAction::Rollback;
    /** Session tick (ticks run) at the decision. */
    std::uint64_t tick = 0;
    /** Session tick of the checkpoint restored (rollbacks). */
    std::uint64_t restoredTick = 0;
    /** Degradation floor in force after the action. */
    int rung = 0;
    /** Typed outcome — notably the eviction reason. */
    Status status;
};

/**
 * The multi-world server. Not thread-safe: one thread owns the
 * session API; parallelism happens inside advance()/tickAll().
 */
class Server
{
  public:
    explicit Server(ServerConfig config = ServerConfig());
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    // --- Session lifecycle. ---

    /**
     * Build an empty world from `config` and host it. The config's
     * dt is forced to tickDt and its worker count to 0 (the server's
     * scheduler supplies the parallelism); everything else — solver
     * iterations, governor frameBudget and ladder tuning, invariant
     * policy — is the session's own. Fails with RESOURCE_EXHAUSTED
     * past the admission cap and INVALID_ARGUMENT on a config the
     * World constructor would reject. On success `id` names the new
     * session and the world's metrics scope is set to "world.<id>".
     */
    Status createWorld(const WorldConfig &config, WorldId &id,
                       const SessionConfig &session = SessionConfig());

    /**
     * Host an already-built world (scene included). The world must
     * have workerThreads == 0 and dt == tickDt — anything else fails
     * with INVALID_ARGUMENT (FAILED_PRECONDITION would suggest
     * retrying later; these are caller bugs).
     */
    Status adoptWorld(std::unique_ptr<World> world, WorldId &id,
                      const SessionConfig &session = SessionConfig());

    /** Remove a session and free its world (checkpoint ring
     *  included). NOT_FOUND on a stale or never-issued id. */
    Status destroyWorld(WorldId id);

    /** Detach and return a session's world (e.g. to migrate it);
     *  the session is removed and the world's hosted-mode settings
     *  (metrics scope, deferred hard-fail, degradation floor) are
     *  reset so it behaves solo again. Null when `id` is unknown. */
    std::unique_ptr<World> releaseWorld(WorldId id);

    std::size_t worldCount() const { return sessions_.size(); }

    /** The hosted world, or null for an unknown id. The pointer is
     *  valid until destroyWorld/releaseWorld on that id. */
    World *world(WorldId id);
    const World *world(WorldId id) const;

    /** Session ids in deterministic (creation) order. */
    std::vector<WorldId> worldIds() const;

    // --- Time. ---

    /**
     * Bank `elapsed` seconds on every session's accumulator and run
     * the whole ticks that fit, in parallel across sessions on the
     * shared scheduler. The fractional remainder becomes phase().
     * Applies the shedding policy when tickBudget is set, then the
     * self-healing pass (fault injection, watchdog, checkpoints)
     * when any of it is configured.
     */
    Status advance(double elapsed);

    /** Run exactly `ticks` ticks on every session, bypassing the
     *  accumulators and the shedder (benchmark/test path). The
     *  self-healing pass still runs — recovery tests drive the
     *  server tick-exactly through this. */
    Status tickAll(int ticks = 1);

    /**
     * Interpolation phase of a session: the banked fraction of a
     * tick in [0, 1). Feed it to World::interpolate() between the
     * render samples bracketing the current tick. Unknown ids
     * return 0.
     */
    double phase(WorldId id) const;

    // --- Snapshot streaming (client join / rewind). ---

    /** Capture a session's full snapshot blob. NOT_FOUND on a stale
     *  id. */
    Status snapshotWorld(WorldId id,
                         std::vector<std::uint8_t> &out) const;

    /**
     * Capture a session's state as a delta against `base` (a full
     * snapshot blob previously streamed to the same client), or as
     * a full snapshot when `base` is null — the common join/rewind
     * stream: one full blob, then per-tick deltas.
     *
     * When the session's delta stream is dirty — a rollback rewound
     * the world, or a previous delta failed to apply — the base is
     * ignored and a full snapshot is sent (detect it client-side
     * with isSnapshotDelta), resynchronizing the stream instead of
     * emitting deltas against a base the client no longer shares.
     */
    Status streamSnapshot(WorldId id,
                          const std::vector<std::uint8_t> *base,
                          std::vector<std::uint8_t> &out);

    /**
     * Restore a session from `blob` — a full snapshot, or a delta
     * (isSnapshotDelta) applied against `base`. A delta without its
     * base fails with FAILED_PRECONDITION. A delta that fails to
     * apply marks the session's outgoing stream dirty (the chain is
     * broken in both directions; the next streamSnapshot resyncs
     * with a full blob).
     */
    Status restoreWorld(WorldId id,
                        const std::vector<std::uint8_t> &blob,
                        const std::vector<std::uint8_t> *base =
                            nullptr);

    // --- Health / recovery. ---

    /** A session's recovery-lifecycle snapshot. NOT_FOUND on a
     *  stale id. */
    Status sessionHealth(WorldId id, SessionHealth &out) const;

    /** Recovery-ladder decisions in decision order (bounded: the
     *  oldest entries are dropped past maxRecoveryLogEntries). */
    const std::vector<RecoveryRecord> &recoveryLog() const
    { return recoveryLog_; }

    /** recoveryLog() retention bound. */
    static constexpr std::size_t maxRecoveryLogEntries = 4096;

    // --- Observability. ---

    const ServerStats &stats() const { return stats_; }

    /** The shared scheduler (for lane/steal counters). */
    const TaskScheduler &scheduler() const { return scheduler_; }

    /** Server-level counters and gauges (admission, shedding, tick
     *  throughput, recovery), updated every advance()/tickAll(). */
    const MetricsRegistry &metrics() const { return metrics_; }

    /**
     * One single-line JSON object of server-level metrics, fixed key
     * order ("pax_server" marker). Per-world lines come from
     * world(id)->metricsLine(), already scoped as "world.<id>.*".
     */
    std::string metricsLine() const;

    const ServerConfig &config() const { return config_; }

  private:
    struct Session
    {
        WorldId id = invalidWorldId;
        std::unique_ptr<World> world;
        SessionConfig config;
        /** Banked real time not yet consumed by whole ticks. */
        double accumulator = 0.0;
        /** Whole ticks advance() decided to run this update. */
        int pendingTicks = 0;
        /** Latest measured (or mocked) seconds of one tick: the
         *  shedder's cost estimate and the watchdog's deadline
         *  sample. */
        double lastTickSeconds = 0.0;
        /** Ticks this session has executed. Monotonic — rollbacks
         *  rewind the world's stepCount, never this: fault schedules
         *  and backoff windows stay in a time that only moves
         *  forward. */
        std::uint64_t ticksRun = 0;

        // --- Self-healing state. ---

        CheckpointRing ring;
        /** Session tick at/after which the next checkpoint fires. */
        std::uint64_t nextCheckpointTick = 0;
        HealthState health = HealthState::Healthy;
        WorldFailure lastFailure = WorldFailure::None;
        std::uint32_t consecutiveRollbacks = 0;
        std::uint64_t totalRollbacks = 0;
        /** Backoff gate: watchdog trips before this tick are
         *  ignored. */
        std::uint64_t nextRetryTick = 0;
        /** Healthy at/after this tick completes probation. */
        std::uint64_t probationUntilTick = 0;
        /** Recovery-ladder degradation floor. */
        int recoveryRung = 0;
        /** Updates spent frozen (drives eviction). */
        std::uint64_t frozenUpdates = 0;
        /** Outgoing delta stream needs a full-snapshot resync. */
        bool streamDirty = false;
        /** Pending StalledTick fault: >= 0 overrides the next tick
         *  burst's cost sample. */
        double stallSeconds = -1.0;

        // --- Shedder ladder state. ---

        /** Shedder degradation rung (0 = full quality). */
        int shedRung = 0;
        /** Consecutive pressure-free updates (hysteresis). */
        int shedCalmUpdates = 0;
    };

    Session *findSession(WorldId id);
    const Session *findSession(WorldId id) const;

    /** Admission check + registration shared by create/adopt. */
    Status admit(std::unique_ptr<World> world,
                 const SessionConfig &session, WorldId &id);

    /** Any self-healing machinery configured? When false the update
     *  path is byte-for-byte the pre-recovery server. */
    bool selfHealingEnabled() const;

    /** Shed-rung-scaled cost estimate for one pending tick. */
    double tickCostEstimate(const Session &s) const;

    /** Push the session's combined degradation floor (recovery +
     *  shed rung) into the world. */
    void applyDegradationFloor(Session &s);

    /** Demote, then drop, until the projected bill fits the budget.
     *  Returns true when any action was taken (pressure). */
    bool shedPendingTicks();

    /** Promote calm shed-demoted sessions back up (hysteresis). */
    void relaxShedRungs(bool pressured);

    /** Run every session's pendingTicks on the shared scheduler. */
    void runPendingTicks();

    /** Fire due ServerFaultPlan events (calling thread, session
     *  order, before the tick burst). */
    void injectFaults();

    /** Classify a session against the failure ladder. */
    WorldFailure classify(const Session &s) const;

    /** Classify every session and drive the recovery ladder; then
     *  age and evict frozen sessions. */
    void watchdogSweep();

    /** Capture due checkpoints of healthy sessions (staggered). */
    void takeCheckpoints();

    /** Roll `s` back to its newest reconstructable checkpoint.
     *  Returns the restore status; fills `restoredTick`. */
    Status attemptRollback(Session &s, std::uint64_t &restoredTick);

    void recordRecovery(const Session &s, WorldFailure failure,
                        RecoveryAction action,
                        std::uint64_t restoredTick, Status status);

    void updateMetrics();

    ServerConfig config_;
    TaskScheduler scheduler_;
    MetricsRegistry metrics_;
    std::vector<Session> sessions_;
    WorldId nextId_ = 1;
    ServerStats stats_;
    /** One flag per ServerFaultPlan event: fired yet? */
    std::vector<bool> faultFired_;
    std::vector<RecoveryRecord> recoveryLog_;
};

} // namespace parallax

#endif // PARALLAX_SERVER_SERVER_HH
