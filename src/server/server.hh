/**
 * @file
 * Multi-world simulation server: N independent Worlds multiplexed
 * over one shared work-stealing TaskScheduler.
 *
 * Each hosted world runs single-threaded internally (workerThreads
 * must be 0); parallelism comes from the server's scheduler running
 * whole-world ticks as top-level chunks, so lanes steal entire
 * worlds instead of intra-world phases. Because a world's trajectory
 * depends only on its own step sequence — never on which lane ran
 * it — every hosted world's state is bitwise identical to stepping
 * the same scene solo, for any server worker count.
 *
 * Time advances on the classic fixed-tick accumulator: advance(dt)
 * banks real time per session, runs the whole ticks that fit, and
 * leaves the fractional remainder as the interpolation phase that
 * World::interpolate() consumes for rendering.
 *
 * Overload handling is two-tier and deterministic:
 *  - admission: ServerConfig::maxWorlds caps the population;
 *    createWorld/adoptWorld fail with RESOURCE_EXHAUSTED beyond it.
 *  - shedding: with ServerConfig::tickBudget set, advance() projects
 *    the coming tick bill from per-world cost estimates and drops
 *    pending ticks from sheddable sessions (highest WorldId first)
 *    until the projection fits. ServerConfig::mockTickSeconds
 *    replaces measured costs so tests replay identical decisions.
 */

#ifndef PARALLAX_SERVER_SERVER_HH
#define PARALLAX_SERVER_SERVER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "parallax/status.hh"
#include "physics/parallel/task_scheduler.hh"
#include "physics/trace/metrics.hh"
#include "physics/world.hh"

namespace parallax
{

/**
 * Opaque session handle. Ids are assigned monotonically and never
 * reused, so a stale handle from a destroyed session fails with
 * NOT_FOUND instead of silently aliasing a new world.
 */
using WorldId = std::uint64_t;

/** Never a valid session. */
constexpr WorldId invalidWorldId = 0;

/** Server-wide tunables. */
struct ServerConfig
{
    /** Worker threads of the shared scheduler (0 = tick worlds
     *  inline on the calling thread). */
    unsigned workerThreads = 0;

    /** Fixed tick quantum in seconds. Every hosted world must be
     *  configured with dt == tickDt: sessions joining mid-run stay
     *  tick-aligned with everyone else. */
    double tickDt = 0.01;

    /** Admission cap: sessions beyond this fail with
     *  RESOURCE_EXHAUSTED (0 = unlimited). */
    std::size_t maxWorlds = 0;

    /**
     * Load shedding: wall-clock seconds of simulation budget per
     * advance() call. 0 (the default) disables shedding — every
     * pending tick always runs. When > 0, advance() projects the
     * cost of the pending ticks from per-session estimates and
     * drops sheddable sessions' ticks, highest WorldId first, until
     * the projection fits the budget.
     */
    double tickBudget = 0.0;

    /**
     * Spiral-of-death guard: at most this many ticks are banked per
     * session per advance() call; excess elapsed time is dropped.
     * Also caps the pathological case where a huge `elapsed` would
     * demand billions of ticks. 0 disables the cap (the count is
     * still clamped to INT_MAX internally, never overflowed).
     */
    int maxTicksPerUpdate = 0;

    /**
     * Test hook: when set, per-tick wall-clock measurements are
     * replaced by this function's value for each (tick, world), so
     * shedding decisions become a pure function of the injected
     * schedule — two runs shed identically.
     */
    std::function<double(std::uint64_t tick, WorldId world)>
        mockTickSeconds;

    /** One human-readable message per problem (empty = valid). */
    std::vector<std::string> validate() const;
};

/** Per-session knobs, fixed at create/adopt time. */
struct SessionConfig
{
    /** May the shedder drop this session's ticks under overload?
     *  Non-sheddable sessions always run every pending tick. */
    bool sheddable = true;
};

/** Run-cumulative server counters. */
struct ServerStats
{
    /** World-ticks executed across all sessions. */
    std::uint64_t ticksRun = 0;
    /** World-ticks dropped by the shedder. */
    std::uint64_t ticksShed = 0;
    /** Sessions refused by the admission cap. */
    std::uint64_t admissionRejects = 0;
    /** advance() + tickAll() calls. */
    std::uint64_t updates = 0;
    /** Measured (or mocked) seconds of the most recent update. */
    double lastUpdateSeconds = 0.0;
};

/**
 * The multi-world server. Not thread-safe: one thread owns the
 * session API; parallelism happens inside advance()/tickAll().
 */
class Server
{
  public:
    explicit Server(ServerConfig config = ServerConfig());
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    // --- Session lifecycle. ---

    /**
     * Build an empty world from `config` and host it. The config's
     * dt is forced to tickDt and its worker count to 0 (the server's
     * scheduler supplies the parallelism); everything else — solver
     * iterations, governor frameBudget and ladder tuning, invariant
     * policy — is the session's own. Fails with RESOURCE_EXHAUSTED
     * past the admission cap and INVALID_ARGUMENT on a config the
     * World constructor would reject. On success `id` names the new
     * session and the world's metrics scope is set to "world.<id>".
     */
    Status createWorld(const WorldConfig &config, WorldId &id,
                       const SessionConfig &session = SessionConfig());

    /**
     * Host an already-built world (scene included). The world must
     * have workerThreads == 0 and dt == tickDt — anything else fails
     * with INVALID_ARGUMENT (FAILED_PRECONDITION would suggest
     * retrying later; these are caller bugs).
     */
    Status adoptWorld(std::unique_ptr<World> world, WorldId &id,
                      const SessionConfig &session = SessionConfig());

    /** Remove a session and free its world. NOT_FOUND on a stale or
     *  never-issued id. */
    Status destroyWorld(WorldId id);

    /** Detach and return a session's world (e.g. to migrate it);
     *  the session is removed. Null when `id` is unknown. */
    std::unique_ptr<World> releaseWorld(WorldId id);

    std::size_t worldCount() const { return sessions_.size(); }

    /** The hosted world, or null for an unknown id. The pointer is
     *  valid until destroyWorld/releaseWorld on that id. */
    World *world(WorldId id);
    const World *world(WorldId id) const;

    /** Session ids in deterministic (creation) order. */
    std::vector<WorldId> worldIds() const;

    // --- Time. ---

    /**
     * Bank `elapsed` seconds on every session's accumulator and run
     * the whole ticks that fit, in parallel across sessions on the
     * shared scheduler. The fractional remainder becomes phase().
     * Applies the shedding policy when tickBudget is set.
     */
    Status advance(double elapsed);

    /** Run exactly `ticks` ticks on every session, bypassing the
     *  accumulators and the shedder (benchmark/test path). */
    Status tickAll(int ticks = 1);

    /**
     * Interpolation phase of a session: the banked fraction of a
     * tick in [0, 1). Feed it to World::interpolate() between the
     * render samples bracketing the current tick. Unknown ids
     * return 0.
     */
    double phase(WorldId id) const;

    // --- Snapshot streaming (client join / rewind). ---

    /** Capture a session's full snapshot blob. NOT_FOUND on a stale
     *  id. */
    Status snapshotWorld(WorldId id,
                         std::vector<std::uint8_t> &out) const;

    /**
     * Capture a session's state as a delta against `base` (a full
     * snapshot blob previously streamed to the same client), or as
     * a full snapshot when `base` is null — the common join/rewind
     * stream: one full blob, then per-tick deltas.
     */
    Status streamSnapshot(WorldId id,
                          const std::vector<std::uint8_t> *base,
                          std::vector<std::uint8_t> &out) const;

    /**
     * Restore a session from `blob` — a full snapshot, or a delta
     * (isSnapshotDelta) applied against `base`. A delta without its
     * base fails with FAILED_PRECONDITION.
     */
    Status restoreWorld(WorldId id,
                        const std::vector<std::uint8_t> &blob,
                        const std::vector<std::uint8_t> *base =
                            nullptr);

    // --- Observability. ---

    const ServerStats &stats() const { return stats_; }

    /** The shared scheduler (for lane/steal counters). */
    const TaskScheduler &scheduler() const { return scheduler_; }

    /** Server-level counters and gauges (admission, shedding, tick
     *  throughput), updated every advance()/tickAll(). */
    const MetricsRegistry &metrics() const { return metrics_; }

    /**
     * One single-line JSON object of server-level metrics, fixed key
     * order ("pax_server" marker). Per-world lines come from
     * world(id)->metricsLine(), already scoped as "world.<id>.*".
     */
    std::string metricsLine() const;

    const ServerConfig &config() const { return config_; }

  private:
    struct Session
    {
        WorldId id = invalidWorldId;
        std::unique_ptr<World> world;
        SessionConfig config;
        /** Banked real time not yet consumed by whole ticks. */
        double accumulator = 0.0;
        /** Whole ticks advance() decided to run this update. */
        int pendingTicks = 0;
        /** Latest measured (or mocked) seconds of one tick: the
         *  shedder's cost estimate for the next projection. */
        double lastTickSeconds = 0.0;
        /** Ticks this session has executed (feeds mockTickSeconds). */
        std::uint64_t ticksRun = 0;
    };

    Session *findSession(WorldId id);
    const Session *findSession(WorldId id) const;

    /** Admission check + registration shared by create/adopt. */
    Status admit(std::unique_ptr<World> world,
                 const SessionConfig &session, WorldId &id);

    /** Drop pending ticks until the projected bill fits the budget
     *  (called by advance when tickBudget > 0). */
    void shedPendingTicks();

    /** Run every session's pendingTicks on the shared scheduler. */
    void runPendingTicks();

    void updateMetrics();

    ServerConfig config_;
    TaskScheduler scheduler_;
    MetricsRegistry metrics_;
    std::vector<Session> sessions_;
    WorldId nextId_ = 1;
    ServerStats stats_;
};

} // namespace parallax

#endif // PARALLAX_SERVER_SERVER_HH
