/**
 * @file
 * Per-world checkpoint ring: the K last-good snapshots of one hosted
 * world, delta-encoded so memory stays proportional to one snapshot.
 *
 * Layout: one full snapshot anchor (`base`) plus up to K-1 newer
 * entries, each stored EITHER as a PAXDELT1 delta against the anchor
 * — never against each other — OR as an independent full snapshot
 * when the world has diverged so far that the delta stopped paying
 * for itself (a busy scene changes nearly every body byte between
 * checkpoints). Either way entries never depend on one another, so
 * corrupting one checkpoint (a real failure mode, and a scripted
 * ServerFaultKind::CorruptCheckpoint) leaves every other entry
 * reconstructable. Rollback walks newest to oldest until a
 * reconstruction both decodes and restores.
 *
 * Memory is bounded by K full snapshots in the worst case (every
 * entry stored full) and is typically one snapshot plus small
 * deltas for quiescent worlds — the population that dominates a
 * 10k-world server.
 *
 * The ring never touches a World: it stores and reconstructs blobs.
 * The server owns the capture/restore calls around it.
 */

#ifndef PARALLAX_SERVER_CHECKPOINT_RING_HH
#define PARALLAX_SERVER_CHECKPOINT_RING_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "parallax/status.hh"

namespace parallax
{

/** Bounded history of delta-encoded world snapshots. */
class CheckpointRing
{
  public:
    CheckpointRing() = default;
    explicit CheckpointRing(std::size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    /** Max checkpoints retained (anchor + deltas). Shrinking drops
     *  the oldest entries immediately. */
    void setCapacity(std::size_t capacity);
    std::size_t capacity() const { return capacity_; }

    /** Restorable checkpoints currently held. */
    std::size_t size() const
    { return deltas_.size() + (base_.empty() ? 0 : 1); }

    bool empty() const { return base_.empty(); }

    /** World tick of checkpoint `i` (0 = newest). */
    std::uint64_t tickAt(std::size_t i) const;

    /** Record `full` (a full snapshot blob) as the checkpoint taken
     *  at world tick `tick`. Ticks must be pushed in increasing
     *  order. */
    void push(std::uint64_t tick, std::vector<std::uint8_t> full);

    /**
     * Reconstruct the full snapshot of checkpoint `i` (0 = newest)
     * into `out`. Fails with INVALID_ARGUMENT on a bad index and
     * with the delta codec's status (DATA_LOSS / INVALID_ARGUMENT)
     * when the stored bytes are corrupt — the caller is expected to
     * fall back to an older entry.
     */
    Status reconstruct(std::size_t i,
                       std::vector<std::uint8_t> &out) const;

    /** Total bytes held (anchor + deltas): the memory-bound gauge. */
    std::size_t bytesUsed() const;

    void clear();

    /**
     * Fault-injection hook (ServerFaultKind::CorruptCheckpoint):
     * deterministically flip bytes of the newest entry's stored blob
     * so its reconstruction fails checksum validation. Older entries
     * are encoded against the anchor, not this blob, so they stay
     * reconstructable — exactly the failure the recovery ladder's
     * walk-to-older-checkpoint path exists for.
     */
    void corruptNewest();

  private:
    struct Entry
    {
        std::uint64_t tick = 0;
        /** PAXDELT1 delta against base_, or a full snapshot when
         *  the delta would not have been smaller (distinguished by
         *  isSnapshotDelta). */
        std::vector<std::uint8_t> blob;
    };

    /** Full snapshot anchor — also the oldest checkpoint. */
    std::vector<std::uint8_t> base_;
    std::uint64_t baseTick_ = 0;
    /** Deltas vs base_, newest first. */
    std::deque<Entry> deltas_;
    std::size_t capacity_ = 3;
};

} // namespace parallax

#endif // PARALLAX_SERVER_CHECKPOINT_RING_HH
