/**
 * @file
 * Server-fault-kind names (see server_faults.hh; injection lives in
 * server.cc so it can reach session internals).
 */

#include "server/server_faults.hh"

namespace parallax
{

const char *
serverFaultKindName(ServerFaultKind kind)
{
    switch (kind) {
    case ServerFaultKind::NanState:
        return "nan_state";
    case ServerFaultKind::HugeImpulse:
        return "huge_impulse";
    case ServerFaultKind::CorruptCheckpoint:
        return "corrupt_checkpoint";
    case ServerFaultKind::StalledTick:
        return "stalled_tick";
    }
    return "unknown";
}

} // namespace parallax
