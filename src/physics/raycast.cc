#include "raycast.hh"

#include <algorithm>
#include <cmath>

#include "physics/shapes/primitives.hh"
#include "physics/shapes/static_shapes.hh"

namespace parallax
{

namespace
{

/** Sphere at `center` with `radius`. */
std::optional<RayHit>
raySphere(const Ray &ray, const Vec3 &center, Real radius,
          Real max_t)
{
    const Vec3 oc = ray.origin - center;
    const Real b = oc.dot(ray.direction);
    const Real c = oc.lengthSquared() - radius * radius;
    const Real disc = b * b - c;
    if (disc < 0)
        return std::nullopt;
    const Real sqrt_disc = std::sqrt(disc);
    Real t = -b - sqrt_disc;
    if (t < 0)
        t = -b + sqrt_disc; // Origin inside the sphere.
    if (t < 0 || t > max_t)
        return std::nullopt;
    RayHit hit;
    hit.t = t;
    hit.point = ray.at(t);
    hit.normal = (hit.point - center).normalized();
    return hit;
}

/** Axis-aligned slab test in the box's local frame. */
std::optional<RayHit>
rayBox(const Ray &ray, const Transform &pose, const Vec3 &half,
       Real max_t)
{
    const Vec3 o = pose.applyInverse(ray.origin);
    const Vec3 d =
        pose.rotation.conjugate().rotate(ray.direction);

    Real t_near = 0.0;
    Real t_far = max_t;
    int near_axis = -1;
    Real near_sign = 1.0;
    for (int axis = 0; axis < 3; ++axis) {
        const Real od = o[axis];
        const Real dd = d[axis];
        const Real h = half[axis];
        if (std::fabs(dd) < 1e-12) {
            if (od < -h || od > h)
                return std::nullopt;
            continue;
        }
        Real t0 = (-h - od) / dd;
        Real t1 = (h - od) / dd;
        Real sign = -1.0;
        if (t0 > t1) {
            std::swap(t0, t1);
            sign = 1.0;
        }
        if (t0 > t_near) {
            t_near = t0;
            near_axis = axis;
            near_sign = sign;
        }
        t_far = std::min(t_far, t1);
        if (t_near > t_far)
            return std::nullopt;
    }
    if (near_axis < 0) {
        // Origin inside the box: report the exit point.
        return std::nullopt;
    }
    RayHit hit;
    hit.t = t_near;
    hit.point = ray.at(t_near);
    Vec3 n_local;
    n_local[near_axis] = near_sign;
    hit.normal = pose.applyDirection(n_local);
    return hit;
}

std::optional<RayHit>
rayTriangle(const Ray &ray, const Vec3 &a, const Vec3 &b,
            const Vec3 &c, Real max_t)
{
    // Moller-Trumbore.
    const Vec3 e1 = b - a;
    const Vec3 e2 = c - a;
    const Vec3 p = ray.direction.cross(e2);
    const Real det = e1.dot(p);
    if (std::fabs(det) < 1e-12)
        return std::nullopt;
    const Real inv_det = 1.0 / det;
    const Vec3 tv = ray.origin - a;
    const Real u = tv.dot(p) * inv_det;
    if (u < 0 || u > 1)
        return std::nullopt;
    const Vec3 q = tv.cross(e1);
    const Real v = ray.direction.dot(q) * inv_det;
    if (v < 0 || u + v > 1)
        return std::nullopt;
    const Real t = e2.dot(q) * inv_det;
    if (t < 0 || t > max_t)
        return std::nullopt;
    RayHit hit;
    hit.t = t;
    hit.point = ray.at(t);
    Vec3 n = e1.cross(e2).normalized();
    if (n.dot(ray.direction) > 0)
        n = -n;
    hit.normal = n;
    return hit;
}

} // namespace

std::optional<RayHit>
raycastShape(const Shape &shape, const Transform &pose,
             const Ray &ray, Real max_t)
{
    switch (shape.type()) {
      case ShapeType::Sphere: {
        const auto &s = static_cast<const SphereShape &>(shape);
        return raySphere(ray, pose.position, s.radius(), max_t);
      }
      case ShapeType::Box: {
        const auto &b = static_cast<const BoxShape &>(shape);
        return rayBox(ray, pose, b.halfExtents(), max_t);
      }
      case ShapeType::Capsule: {
        // Segment-swept sphere: sample the closest approach via the
        // cylinder quadratic, falling back to the cap spheres.
        const auto &c = static_cast<const CapsuleShape &>(shape);
        Vec3 p, q;
        c.segment(pose, p, q);
        std::optional<RayHit> best;
        auto consider = [&](const std::optional<RayHit> &hit) {
            if (hit && (!best || hit->t < best->t))
                best = hit;
        };
        consider(raySphere(ray, p, c.radius(), max_t));
        consider(raySphere(ray, q, c.radius(), max_t));
        // Infinite-cylinder intersection clipped to the segment.
        const Vec3 axis = (q - p).normalized();
        const Vec3 oc = ray.origin - p;
        const Vec3 d_perp =
            ray.direction - axis * ray.direction.dot(axis);
        const Vec3 o_perp = oc - axis * oc.dot(axis);
        const Real a2 = d_perp.lengthSquared();
        if (a2 > 1e-12) {
            const Real b2 = o_perp.dot(d_perp);
            const Real c2 =
                o_perp.lengthSquared() - c.radius() * c.radius();
            const Real disc = b2 * b2 - a2 * c2;
            if (disc >= 0) {
                const Real t = (-b2 - std::sqrt(disc)) / a2;
                if (t >= 0 && t <= max_t) {
                    const Vec3 point = ray.at(t);
                    const Real s = (point - p).dot(axis);
                    if (s >= 0 && s <= (q - p).length()) {
                        RayHit hit;
                        hit.t = t;
                        hit.point = point;
                        hit.normal =
                            (point - (p + axis * s)).normalized();
                        consider(hit);
                    }
                }
            }
        }
        return best;
      }
      case ShapeType::Plane: {
        const auto &pl = static_cast<const PlaneShape &>(shape);
        const Real denom = pl.normal().dot(ray.direction);
        if (std::fabs(denom) < 1e-12)
            return std::nullopt;
        const Real t = -pl.distance(ray.origin) / denom;
        if (t < 0 || t > max_t)
            return std::nullopt;
        RayHit hit;
        hit.t = t;
        hit.point = ray.at(t);
        hit.normal =
            denom < 0 ? pl.normal() : -pl.normal();
        return hit;
      }
      case ShapeType::Heightfield: {
        // March the ray across the grid footprint at half-cell
        // resolution and bisect on the first below-surface sample.
        const auto &hf =
            static_cast<const HeightfieldShape &>(shape);
        const Real step = hf.spacing() * 0.5;
        Real prev_t = 0.0;
        Vec3 prev_local = ray.origin - pose.position;
        bool prev_above =
            prev_local.y >
            hf.sampleHeight(prev_local.x, prev_local.z);
        if (!prev_above)
            return std::nullopt; // Starting underground.
        for (Real t = step; t <= max_t; t += step) {
            const Vec3 local = ray.at(t) - pose.position;
            if (local.x < 0 || local.x > hf.width() || local.z < 0 ||
                local.z > hf.depth()) {
                prev_t = t;
                continue;
            }
            const bool above =
                local.y > hf.sampleHeight(local.x, local.z);
            if (!above) {
                // Bisect between prev_t and t.
                Real lo = prev_t, hi = t;
                for (int i = 0; i < 16; ++i) {
                    const Real mid = 0.5 * (lo + hi);
                    const Vec3 m = ray.at(mid) - pose.position;
                    if (m.y > hf.sampleHeight(m.x, m.z))
                        lo = mid;
                    else
                        hi = mid;
                }
                RayHit hit;
                hit.t = hi;
                hit.point = ray.at(hi);
                const Vec3 local_hit = hit.point - pose.position;
                hit.normal =
                    hf.sampleNormal(local_hit.x, local_hit.z);
                return hit;
            }
            prev_t = t;
        }
        return std::nullopt;
      }
      case ShapeType::TriMesh: {
        const auto &mesh =
            static_cast<const TriMeshShape &>(shape);
        // Query candidate triangles via the ray's local AABB.
        const Vec3 o_local = pose.applyInverse(ray.origin);
        const Vec3 end_local =
            pose.applyInverse(ray.at(max_t));
        Aabb box;
        box.extend(o_local);
        box.extend(end_local);
        std::optional<RayHit> best;
        for (std::uint32_t tri : mesh.query(box)) {
            Vec3 a, b, c;
            mesh.triangleCorners(tri, pose, a, b, c);
            const auto hit = rayTriangle(ray, a, b, c, max_t);
            if (hit && (!best || hit->t < best->t))
                best = hit;
        }
        return best;
      }
    }
    return std::nullopt;
}

} // namespace parallax
