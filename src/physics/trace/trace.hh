/**
 * @file
 * Low-overhead, thread-safe trace collection with Chrome-trace
 * export.
 *
 * The paper's whole argument rests on measuring per-phase load
 * (Figures 2-7, Tables 3-5), so the engine carries a first-class
 * tracing surface: scoped spans for every pipeline phase and every
 * stealable work item (islands, cloths, narrowphase chunks), counter
 * tracks for the per-step metrics the governor and scheduler emit,
 * and instant markers for containment events. The collector exports
 * the Chrome trace-event JSON format, loadable in `chrome://tracing`
 * or https://ui.perfetto.dev with no further tooling.
 *
 * Threading model: the collector owns one append-only buffer per
 * scheduler lane (lane 0 = the calling thread). A lane only ever
 * writes its own buffer, so recording a span from inside a
 * parallelFor body is race-free without locks; merging and export
 * happen on the main thread while the workers are parked at a phase
 * barrier. Buffers are bounded — past `maxEventsPerLane` events a
 * lane drops new events and counts the drops rather than growing
 * without limit.
 *
 * Overhead discipline: when tracing is disabled every entry point is
 * a single branch on `enabled()`; no clocks are read, no memory is
 * touched, and the simulation trajectory is bitwise identical to a
 * build without tracing (tests/test_trace.cc pins this down).
 */

#ifndef PARALLAX_PHYSICS_TRACE_TRACE_HH
#define PARALLAX_PHYSICS_TRACE_TRACE_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace parallax
{

/** One recorded event (a completed span, counter sample, or instant
 *  marker). `name` must point at a string with static storage
 *  duration — events store the pointer, never a copy. */
struct TraceEvent
{
    enum class Type : std::uint8_t
    {
        Span,    // Chrome "X": a [ts, ts+dur] interval on a lane.
        Counter, // Chrome "C": a sampled value track.
        Instant, // Chrome "i": a point marker (faults, quarantines).
    };

    Type type = Type::Span;
    const char *name = "";
    /** World step the event belongs to (rendered into args). */
    std::uint64_t step = 0;
    /** Microseconds since the collector's epoch. */
    double ts = 0.0;
    /** Span duration in microseconds (spans only). */
    double dur = 0.0;
    /** Sampled value (counters only). */
    double value = 0.0;
    /** Optional entity id (island/cloth/chunk/lane); -1 = none.
     *  Counters with distinct ids render as separate tracks. */
    std::int64_t id = -1;
    /** Lane that recorded the event (Chrome tid). */
    unsigned lane = 0;
};

/** Per-lane bounded trace-event sink with Chrome JSON export. */
class TraceCollector
{
  public:
    /** Events a single lane may record before dropping. */
    static constexpr std::size_t maxEventsPerLane = 1u << 20;

    TraceCollector();

    TraceCollector(const TraceCollector &) = delete;
    TraceCollector &operator=(const TraceCollector &) = delete;

    /**
     * Size the per-lane buffers and arm (or disarm) collection.
     * Must be called while no worker is inside a parallel loop
     * (World's constructor does it before any step).
     */
    void configure(unsigned lanes, bool enabled);

    bool enabled() const { return enabled_; }
    unsigned laneCount() const
    { return static_cast<unsigned>(lanes_.size()); }

    /** Microseconds since the collector epoch (monotonic clock). */
    double nowUs() const;

    /** Record a completed [beginUs, endUs] span on `lane`. */
    void recordSpan(unsigned lane, const char *name,
                    std::uint64_t step, double beginUs, double endUs,
                    std::int64_t id = -1);

    /** Record a counter sample (main thread / lane 0 only). */
    void recordCounter(const char *name, std::uint64_t step,
                       double value, std::int64_t id = -1);

    /** Record an instant marker (main thread / lane 0 only). */
    void recordInstant(const char *name, std::uint64_t step,
                       std::int64_t id = -1);

    /** Events recorded so far, lane-major in record order. Call only
     *  while the workers are parked (between steps). */
    std::vector<TraceEvent> events() const;

    /** Events discarded because a lane buffer filled up. */
    std::uint64_t droppedEvents() const;

    /** Serialize everything as Chrome trace-event JSON. */
    std::string toChromeJson() const;

    /** Write toChromeJson() to `path`; "" on success or a readable
     *  error. */
    std::string writeChromeJson(const std::string &path) const;

  private:
    struct LaneBuffer
    {
        std::vector<TraceEvent> events;
        std::uint64_t dropped = 0;
    };

    void record(unsigned lane, TraceEvent event);

    bool enabled_ = false;
    std::chrono::steady_clock::time_point epoch_;
    /** One heap-allocated buffer per lane: stable addresses, no
     *  false sharing between adjacent lanes' append paths. */
    std::vector<std::unique_ptr<LaneBuffer>> lanes_;
};

/**
 * RAII span: reads the clock on entry and records on exit. When the
 * collector is disabled construction is a branch and a null store —
 * no clock read, no buffer touch.
 */
class TraceScope
{
  public:
    TraceScope(TraceCollector &collector, unsigned lane,
               const char *name, std::uint64_t step,
               std::int64_t id = -1)
        : collector_(collector.enabled() ? &collector : nullptr),
          name_(name), step_(step), id_(id), lane_(lane)
    {
        if (collector_ != nullptr)
            begin_ = collector_->nowUs();
    }

    ~TraceScope()
    {
        if (collector_ != nullptr) {
            collector_->recordSpan(lane_, name_, step_, begin_,
                                   collector_->nowUs(), id_);
        }
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    TraceCollector *collector_;
    const char *name_;
    std::uint64_t step_;
    std::int64_t id_;
    unsigned lane_;
    double begin_ = 0.0;
};

/**
 * Insert `_tag` before the final extension of `path`'s basename
 * ("trace.json", "Mix_w2" -> "trace_Mix_w2.json"), so one --trace
 * flag fans out to one file per (scene, workers) run.
 */
std::string decorateTracePath(const std::string &path,
                              const std::string &tag);

// Scoped-span convenience macros (unique local per expansion).
#define PAX_TRACE_CONCAT2(a, b) a##b
#define PAX_TRACE_CONCAT(a, b) PAX_TRACE_CONCAT2(a, b)

/** Span over the rest of the enclosing block. */
#define PAX_TRACE_SCOPE(collector, lane, name, step)                  \
    ::parallax::TraceScope PAX_TRACE_CONCAT(pax_trace_scope_,         \
                                            __LINE__)(                \
        (collector), (lane), (name), (step))

/** Same, tagging the span with an entity id. */
#define PAX_TRACE_SCOPE_ID(collector, lane, name, step, id)           \
    ::parallax::TraceScope PAX_TRACE_CONCAT(pax_trace_scope_,         \
                                            __LINE__)(                \
        (collector), (lane), (name), (step), (id))

} // namespace parallax

#endif // PARALLAX_PHYSICS_TRACE_TRACE_HH
