/**
 * @file
 * MetricsRegistry: named monotonic counters and gauges with a stable
 * machine-readable dump.
 *
 * Where StatGroup (sim/stats.hh) is the gem5-style "dump the last
 * step as aligned text" surface for the figure harnesses, the
 * registry is the long-lived operational surface: counters only ever
 * accumulate across the run (steps, contacts, steals, quarantine
 * events), gauges hold the latest observation (governor rung, bodies
 * asleep), and `toJson()` emits one single-line JSON object in
 * registration order — stable key order, so diffs and log scrapers
 * can rely on it.
 *
 * The registry is updated from the main thread between phase
 * barriers; it is not itself thread-safe and does not need to be.
 */

#ifndef PARALLAX_PHYSICS_TRACE_METRICS_HH
#define PARALLAX_PHYSICS_TRACE_METRICS_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace parallax
{

/** Registry of monotonic counters and last-value gauges. */
class MetricsRegistry
{
  public:
    enum class Kind : std::uint8_t
    {
        Counter, // Monotonic: value only grows.
        Gauge,   // Latest observation.
    };

    struct Entry
    {
        std::string name;
        Kind kind = Kind::Counter;
        double value = 0.0;
    };

    /** Add `delta` (>= 0) to the counter `name`, registering it on
     *  first use. Negative deltas are ignored — counters are
     *  monotonic by contract. */
    void add(const std::string &name, double delta);

    /** Set the gauge `name` to `value`, registering it on first
     *  use. */
    void set(const std::string &name, double value);

    /** Current value of `name` (0 if never registered). */
    double value(const std::string &name) const;

    /** All metrics in registration order. */
    const std::vector<Entry> &entries() const { return entries_; }

    /** Single-line JSON object, keys in registration order. */
    std::string toJson() const;

    /** Drop every metric (a fresh registry). */
    void clear();

  private:
    Entry &entry(const std::string &name, Kind kind);

    std::vector<Entry> entries_;
    std::unordered_map<std::string, std::size_t> index_;
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_TRACE_METRICS_HH
