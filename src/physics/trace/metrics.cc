#include "metrics.hh"

#include <cstdio>

namespace parallax
{

MetricsRegistry::Entry &
MetricsRegistry::entry(const std::string &name, Kind kind)
{
    auto it = index_.find(name);
    if (it != index_.end())
        return entries_[it->second];
    index_.emplace(name, entries_.size());
    entries_.push_back(Entry{name, kind, 0.0});
    return entries_.back();
}

void
MetricsRegistry::add(const std::string &name, double delta)
{
    Entry &e = entry(name, Kind::Counter);
    if (delta > 0.0)
        e.value += delta;
}

void
MetricsRegistry::set(const std::string &name, double value)
{
    entry(name, Kind::Gauge).value = value;
}

double
MetricsRegistry::value(const std::string &name) const
{
    auto it = index_.find(name);
    return it != index_.end() ? entries_[it->second].value : 0.0;
}

std::string
MetricsRegistry::toJson() const
{
    std::string out = "{";
    bool first = true;
    for (const Entry &e : entries_) {
        if (!first)
            out += ",";
        first = false;
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.9g", e.value);
        out += "\"" + e.name + "\":" + buf;
    }
    out += "}";
    return out;
}

void
MetricsRegistry::clear()
{
    entries_.clear();
    index_.clear();
}

} // namespace parallax
