#include "trace.hh"

#include <algorithm>
#include <cstdio>

namespace parallax
{

TraceCollector::TraceCollector()
    : epoch_(std::chrono::steady_clock::now())
{
}

void
TraceCollector::configure(unsigned lanes, bool enabled)
{
    enabled_ = enabled;
    lanes_.clear();
    if (!enabled)
        return;
    lanes_.reserve(lanes);
    for (unsigned i = 0; i < lanes; ++i)
        lanes_.push_back(std::make_unique<LaneBuffer>());
    epoch_ = std::chrono::steady_clock::now();
}

double
TraceCollector::nowUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void
TraceCollector::record(unsigned lane, TraceEvent event)
{
    if (!enabled_ || lane >= lanes_.size())
        return;
    LaneBuffer &buffer = *lanes_[lane];
    if (buffer.events.size() >= maxEventsPerLane) {
        ++buffer.dropped;
        return;
    }
    event.lane = lane;
    buffer.events.push_back(event);
}

void
TraceCollector::recordSpan(unsigned lane, const char *name,
                           std::uint64_t step, double beginUs,
                           double endUs, std::int64_t id)
{
    TraceEvent e;
    e.type = TraceEvent::Type::Span;
    e.name = name;
    e.step = step;
    e.ts = beginUs;
    e.dur = std::max(0.0, endUs - beginUs);
    e.id = id;
    record(lane, e);
}

void
TraceCollector::recordCounter(const char *name, std::uint64_t step,
                              double value, std::int64_t id)
{
    TraceEvent e;
    e.type = TraceEvent::Type::Counter;
    e.name = name;
    e.step = step;
    e.ts = nowUs();
    e.value = value;
    e.id = id;
    record(0, e);
}

void
TraceCollector::recordInstant(const char *name, std::uint64_t step,
                              std::int64_t id)
{
    TraceEvent e;
    e.type = TraceEvent::Type::Instant;
    e.name = name;
    e.step = step;
    e.ts = nowUs();
    e.id = id;
    record(0, e);
}

std::vector<TraceEvent>
TraceCollector::events() const
{
    std::vector<TraceEvent> merged;
    std::size_t total = 0;
    for (const auto &lane : lanes_)
        total += lane->events.size();
    merged.reserve(total);
    for (const auto &lane : lanes_) {
        merged.insert(merged.end(), lane->events.begin(),
                      lane->events.end());
    }
    return merged;
}

std::uint64_t
TraceCollector::droppedEvents() const
{
    std::uint64_t dropped = 0;
    for (const auto &lane : lanes_)
        dropped += lane->dropped;
    return dropped;
}

namespace
{

void
appendNumber(std::string &out, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    out += buf;
}

} // namespace

std::string
TraceCollector::toChromeJson() const
{
    // Chrome trace-event format ("JSON Array Format" inside an
    // object wrapper): https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
    std::string out;
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
           "\"args\":{\"name\":\"parallax\"}}";
    for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
        out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
               "\"tid\":" +
               std::to_string(lane) + ",\"args\":{\"name\":\"lane " +
               std::to_string(lane) +
               (lane == 0 ? " (main)" : "") + "\"}}";
    }

    // Merge lane buffers and sort by timestamp so viewers that build
    // tracks incrementally see monotone input (stable sort keeps a
    // lane's record order for equal stamps).
    std::vector<TraceEvent> merged = events();
    std::stable_sort(merged.begin(), merged.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.ts < b.ts;
                     });

    for (const TraceEvent &e : merged) {
        out += ",\n{\"name\":\"";
        out += e.name;
        out += "\",\"pid\":0,\"tid\":";
        out += std::to_string(e.lane);
        out += ",\"ts\":";
        appendNumber(out, e.ts);
        switch (e.type) {
          case TraceEvent::Type::Span:
            out += ",\"ph\":\"X\",\"dur\":";
            appendNumber(out, e.dur);
            out += ",\"args\":{\"step\":" + std::to_string(e.step);
            if (e.id >= 0)
                out += ",\"id\":" + std::to_string(e.id);
            out += "}}";
            break;
          case TraceEvent::Type::Counter:
            out += ",\"ph\":\"C\"";
            if (e.id >= 0)
                out += ",\"id\":" + std::to_string(e.id);
            out += ",\"args\":{\"value\":";
            appendNumber(out, e.value);
            out += "}}";
            break;
          case TraceEvent::Type::Instant:
            out += ",\"ph\":\"i\",\"s\":\"g\",\"args\":{\"step\":" +
                   std::to_string(e.step);
            if (e.id >= 0)
                out += ",\"id\":" + std::to_string(e.id);
            out += "}}";
            break;
        }
    }
    out += "\n]}";
    out += "\n";
    return out;
}

std::string
TraceCollector::writeChromeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return "cannot open '" + path + "' for writing";
    const std::string text = toChromeJson();
    const std::size_t written =
        std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    if (written != text.size())
        return "short write to '" + path + "'";
    return "";
}

std::string
decorateTracePath(const std::string &path, const std::string &tag)
{
    if (tag.empty())
        return path;
    const std::size_t slash = path.find_last_of('/');
    const std::size_t dot = path.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return path + "_" + tag;
    }
    return path.substr(0, dot) + "_" + tag + path.substr(dot);
}

} // namespace parallax
