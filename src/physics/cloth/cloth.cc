#include "cloth.hh"

#include <algorithm>
#include <cmath>

#include "physics/shapes/primitives.hh"
#include "physics/shapes/static_shapes.hh"
#include "sim/logging.hh"

namespace parallax
{

Cloth::Cloth(ClothId id, int nx, int ny, const Vec3 &origin,
             Real spacing, Real mass)
    : id_(id), nx_(nx), ny_(ny)
{
    if (nx < 2 || ny < 2)
        fatal("cloth needs at least a 2x2 particle grid");
    if (spacing <= 0 || mass <= 0)
        fatal("cloth spacing and mass must be positive");

    const int count = nx * ny;
    const Real inv_mass = static_cast<Real>(count) / mass;
    particles_.reserve(count);
    for (int j = 0; j < ny; ++j) {
        for (int i = 0; i < nx; ++i) {
            Particle p;
            p.position = origin +
                Vec3{i * spacing, 0.0, j * spacing};
            p.previous = p.position;
            p.invMass = inv_mass;
            particles_.push_back(p);
        }
    }

    auto index = [nx](int i, int j) {
        return static_cast<std::uint32_t>(j * nx + i);
    };
    auto addConstraint = [&](std::uint32_t a, std::uint32_t b) {
        const Real rest =
            (particles_[a].position - particles_[b].position).length();
        constraints_.push_back({a, b, rest});
    };

    // Structural edges plus one shear diagonal per cell: this tiles
    // the patch with triangles (the paper's triangular mesh).
    for (int j = 0; j < ny; ++j) {
        for (int i = 0; i < nx; ++i) {
            if (i + 1 < nx)
                addConstraint(index(i, j), index(i + 1, j));
            if (j + 1 < ny)
                addConstraint(index(i, j), index(i, j + 1));
            if (i + 1 < nx && j + 1 < ny)
                addConstraint(index(i, j), index(i + 1, j + 1));
        }
    }

    // SoA streams for the kernel backends. The constraint coloring
    // is built once here: the mesh never changes, so the Native
    // backend's conflict-free sweep order is a constant.
    px_.resize(count); py_.resize(count); pz_.resize(count);
    qx_.resize(count); qy_.resize(count); qz_.resize(count);
    w_.resize(count);
    const std::size_t n_cons = constraints_.size();
    consA_.resize(n_cons);
    consB_.resize(n_cons);
    consRest_.resize(n_cons);
    for (std::size_t i = 0; i < n_cons; ++i) {
        consA_[i] = static_cast<std::int32_t>(constraints_[i].a);
        consB_[i] = static_cast<std::int32_t>(constraints_[i].b);
        consRest_[i] = constraints_[i].restLength;
    }
    colorEdges(consA_.data(), consB_.data(), n_cons,
               particles_.size(), coloring_);
    coloredA_.resize(n_cons);
    coloredB_.resize(n_cons);
    coloredRest_.resize(n_cons);
    for (std::size_t s = 0; s < n_cons; ++s) {
        const std::size_t i = coloring_.order[s];
        coloredA_[s] = consA_[i];
        coloredB_[s] = consB_[i];
        coloredRest_[s] = consRest_[i];
    }
}

void
Cloth::pin(std::uint32_t index)
{
    parallax_assert(index < particles_.size());
    particles_[index].invMass = 0.0;
}

void
Cloth::movePinned(std::uint32_t index, const Vec3 &position)
{
    parallax_assert(index < particles_.size());
    particles_[index].position = position;
    particles_[index].previous = position;
}

bool
Cloth::restoreParticles(const std::vector<Particle> &particles)
{
    if (particles.size() != particles_.size())
        return false;
    particles_ = particles;
    return true;
}

Aabb
Cloth::bounds(Real margin) const
{
    Aabb box;
    for (const Particle &p : particles_)
        box.extend(p.position);
    return box.inflated(margin);
}

bool
Cloth::projectOut(const Geom &geom, Vec3 &point, Real margin)
{
    const Transform pose = geom.worldPose();
    switch (geom.shape().type()) {
      case ShapeType::Sphere: {
        const auto &s = static_cast<const SphereShape &>(geom.shape());
        const Vec3 d = point - pose.position;
        const Real r = s.radius() + margin;
        const Real dist2 = d.lengthSquared();
        if (dist2 >= r * r)
            return false;
        const Real dist = std::sqrt(dist2);
        const Vec3 n = dist > 1e-12 ? d / dist : Vec3{0.0, 1.0, 0.0};
        point = pose.position + n * r;
        return true;
      }
      case ShapeType::Capsule: {
        const auto &c =
            static_cast<const CapsuleShape &>(geom.shape());
        Vec3 a, b;
        c.segment(pose, a, b);
        const Vec3 ab = b - a;
        const Real len2 = ab.lengthSquared();
        const Real t = len2 > 1e-18
            ? std::clamp((point - a).dot(ab) / len2, 0.0, 1.0)
            : 0.0;
        const Vec3 closest = a + ab * t;
        const Vec3 d = point - closest;
        const Real r = c.radius() + margin;
        const Real dist2 = d.lengthSquared();
        if (dist2 >= r * r)
            return false;
        const Real dist = std::sqrt(dist2);
        const Vec3 n = dist > 1e-12 ? d / dist : Vec3{0.0, 1.0, 0.0};
        point = closest + n * r;
        return true;
      }
      case ShapeType::Box: {
        const auto &bx = static_cast<const BoxShape &>(geom.shape());
        const Vec3 h = bx.halfExtents() +
            Vec3{margin, margin, margin};
        const Vec3 local = pose.applyInverse(point);
        if (std::fabs(local.x) >= h.x || std::fabs(local.y) >= h.y ||
            std::fabs(local.z) >= h.z) {
            return false;
        }
        // Push out through the nearest face.
        const Real dx = h.x - std::fabs(local.x);
        const Real dy = h.y - std::fabs(local.y);
        const Real dz = h.z - std::fabs(local.z);
        Vec3 pushed = local;
        if (dx <= dy && dx <= dz)
            pushed.x = local.x >= 0 ? h.x : -h.x;
        else if (dy <= dz)
            pushed.y = local.y >= 0 ? h.y : -h.y;
        else
            pushed.z = local.z >= 0 ? h.z : -h.z;
        point = pose.apply(pushed);
        return true;
      }
      case ShapeType::Plane: {
        const auto &pl = static_cast<const PlaneShape &>(geom.shape());
        const Real dist = pl.distance(point) - margin;
        if (dist >= 0)
            return false;
        point -= pl.normal() * dist;
        return true;
      }
      case ShapeType::Heightfield: {
        const auto &hf =
            static_cast<const HeightfieldShape &>(geom.shape());
        const Vec3 local = point - pose.position;
        if (local.x < 0 || local.x > hf.width() || local.z < 0 ||
            local.z > hf.depth()) {
            return false;
        }
        const Real surface = hf.sampleHeight(local.x, local.z) + margin;
        if (local.y >= surface)
            return false;
        point.y = pose.position.y + surface;
        return true;
      }
      default:
        return false;
    }
}

void
Cloth::syncSoa()
{
    const std::size_t n = particles_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const Particle &p = particles_[i];
        px_[i] = p.position.x;
        py_[i] = p.position.y;
        pz_[i] = p.position.z;
        qx_[i] = p.previous.x;
        qy_[i] = p.previous.y;
        qz_[i] = p.previous.z;
        w_[i] = p.invMass;
    }
}

void
Cloth::writeBackSoa()
{
    const std::size_t n = particles_.size();
    for (std::size_t i = 0; i < n; ++i) {
        Particle &p = particles_[i];
        p.position = Vec3{px_[i], py_[i], pz_[i]};
        p.previous = Vec3{qx_[i], qy_[i], qz_[i]};
    }
}

void
Cloth::step(Real dt, const Vec3 &gravity, int iterations,
            const std::vector<const Geom *> &colliders,
            ClothStats &stats, const KernelBackend *backend)
{
    ++stats.clothsStepped;
    const KernelBackend &kb =
        backend != nullptr ? *backend : scalarKernelBackend();

    syncSoa();
    ClothParticlesView pv;
    pv.count = particles_.size();
    pv.px = px_.data(); pv.py = py_.data(); pv.pz = pz_.data();
    pv.qx = qx_.data(); pv.qy = qy_.data(); pv.qz = qz_.data();
    pv.w = w_.data();

    ClothConstraintsView cv;
    cv.count = constraints_.size();
    cv.a = consA_.data();
    cv.b = consB_.data();
    cv.rest = consRest_.data();
    cv.ca = coloredA_.data();
    cv.cb = coloredB_.data();
    cv.crest = coloredRest_.data();
    cv.colorOffsets = coloring_.colorOffsets.data();
    cv.colors = coloring_.colors;
    cv.vecCount = coloring_.vecCount;

    // Verlet integration: x' = 2x - x_prev + g dt^2 (with mild
    // damping folded into the velocity term).
    const Real damping = 0.995;
    const Vec3 accel_term = gravity * (dt * dt);
    kb.clothIntegrate(pv, accel_term, damping, stats.kernels);
    stats.verticesIntegrated += particles_.size();

    // Interleaved relaxation: each sweep relaxes every distance
    // constraint, then projects every vertex out of the colliders
    // (Jakobsen's scheme — collision is just another constraint).
    // Projection stays scalar (branchy per-shape code) and runs on
    // the SoA streams between relaxation sweeps.
    const Real margin = 0.02;
    for (int it = 0; it < iterations; ++it) {
        kb.clothRelax(pv, cv, stats.kernels);
        stats.constraintRelaxations += constraints_.size();
        for (std::size_t i = 0; i < pv.count; ++i) {
            if (w_[i] == 0.0)
                continue;
            Vec3 pos{px_[i], py_[i], pz_[i]};
            Vec3 prev{qx_[i], qy_[i], qz_[i]};
            bool touched = false;
            for (const Geom *g : colliders) {
                ++stats.collisionTests;
                if (projectOut(*g, pos, margin)) {
                    ++stats.collisionsResolved;
                    // Kill part of the velocity into the surface by
                    // dragging the previous position along.
                    prev = prev + (pos - prev) * 0.5;
                    touched = true;
                }
            }
            if (touched) {
                px_[i] = pos.x;
                py_[i] = pos.y;
                pz_[i] = pos.z;
                qx_[i] = prev.x;
                qy_[i] = prev.y;
                qz_[i] = prev.z;
            }
        }
    }
    writeBackSoa();
}

} // namespace parallax
