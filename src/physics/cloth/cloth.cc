#include "cloth.hh"

#include <algorithm>
#include <cmath>

#include "physics/shapes/primitives.hh"
#include "physics/shapes/static_shapes.hh"
#include "sim/logging.hh"

namespace parallax
{

Cloth::Cloth(ClothId id, int nx, int ny, const Vec3 &origin,
             Real spacing, Real mass)
    : id_(id), nx_(nx), ny_(ny)
{
    if (nx < 2 || ny < 2)
        fatal("cloth needs at least a 2x2 particle grid");
    if (spacing <= 0 || mass <= 0)
        fatal("cloth spacing and mass must be positive");

    const int count = nx * ny;
    const Real inv_mass = static_cast<Real>(count) / mass;
    particles_.reserve(count);
    for (int j = 0; j < ny; ++j) {
        for (int i = 0; i < nx; ++i) {
            Particle p;
            p.position = origin +
                Vec3{i * spacing, 0.0, j * spacing};
            p.previous = p.position;
            p.invMass = inv_mass;
            particles_.push_back(p);
        }
    }

    auto index = [nx](int i, int j) {
        return static_cast<std::uint32_t>(j * nx + i);
    };
    auto addConstraint = [&](std::uint32_t a, std::uint32_t b) {
        const Real rest =
            (particles_[a].position - particles_[b].position).length();
        constraints_.push_back({a, b, rest});
    };

    // Structural edges plus one shear diagonal per cell: this tiles
    // the patch with triangles (the paper's triangular mesh).
    for (int j = 0; j < ny; ++j) {
        for (int i = 0; i < nx; ++i) {
            if (i + 1 < nx)
                addConstraint(index(i, j), index(i + 1, j));
            if (j + 1 < ny)
                addConstraint(index(i, j), index(i, j + 1));
            if (i + 1 < nx && j + 1 < ny)
                addConstraint(index(i, j), index(i + 1, j + 1));
        }
    }
}

void
Cloth::pin(std::uint32_t index)
{
    parallax_assert(index < particles_.size());
    particles_[index].invMass = 0.0;
}

void
Cloth::movePinned(std::uint32_t index, const Vec3 &position)
{
    parallax_assert(index < particles_.size());
    particles_[index].position = position;
    particles_[index].previous = position;
}

bool
Cloth::restoreParticles(const std::vector<Particle> &particles)
{
    if (particles.size() != particles_.size())
        return false;
    particles_ = particles;
    return true;
}

Aabb
Cloth::bounds(Real margin) const
{
    Aabb box;
    for (const Particle &p : particles_)
        box.extend(p.position);
    return box.inflated(margin);
}

bool
Cloth::projectOut(const Geom &geom, Vec3 &point, Real margin)
{
    const Transform pose = geom.worldPose();
    switch (geom.shape().type()) {
      case ShapeType::Sphere: {
        const auto &s = static_cast<const SphereShape &>(geom.shape());
        const Vec3 d = point - pose.position;
        const Real r = s.radius() + margin;
        const Real dist2 = d.lengthSquared();
        if (dist2 >= r * r)
            return false;
        const Real dist = std::sqrt(dist2);
        const Vec3 n = dist > 1e-12 ? d / dist : Vec3{0.0, 1.0, 0.0};
        point = pose.position + n * r;
        return true;
      }
      case ShapeType::Capsule: {
        const auto &c =
            static_cast<const CapsuleShape &>(geom.shape());
        Vec3 a, b;
        c.segment(pose, a, b);
        const Vec3 ab = b - a;
        const Real len2 = ab.lengthSquared();
        const Real t = len2 > 1e-18
            ? std::clamp((point - a).dot(ab) / len2, 0.0, 1.0)
            : 0.0;
        const Vec3 closest = a + ab * t;
        const Vec3 d = point - closest;
        const Real r = c.radius() + margin;
        const Real dist2 = d.lengthSquared();
        if (dist2 >= r * r)
            return false;
        const Real dist = std::sqrt(dist2);
        const Vec3 n = dist > 1e-12 ? d / dist : Vec3{0.0, 1.0, 0.0};
        point = closest + n * r;
        return true;
      }
      case ShapeType::Box: {
        const auto &bx = static_cast<const BoxShape &>(geom.shape());
        const Vec3 h = bx.halfExtents() +
            Vec3{margin, margin, margin};
        const Vec3 local = pose.applyInverse(point);
        if (std::fabs(local.x) >= h.x || std::fabs(local.y) >= h.y ||
            std::fabs(local.z) >= h.z) {
            return false;
        }
        // Push out through the nearest face.
        const Real dx = h.x - std::fabs(local.x);
        const Real dy = h.y - std::fabs(local.y);
        const Real dz = h.z - std::fabs(local.z);
        Vec3 pushed = local;
        if (dx <= dy && dx <= dz)
            pushed.x = local.x >= 0 ? h.x : -h.x;
        else if (dy <= dz)
            pushed.y = local.y >= 0 ? h.y : -h.y;
        else
            pushed.z = local.z >= 0 ? h.z : -h.z;
        point = pose.apply(pushed);
        return true;
      }
      case ShapeType::Plane: {
        const auto &pl = static_cast<const PlaneShape &>(geom.shape());
        const Real dist = pl.distance(point) - margin;
        if (dist >= 0)
            return false;
        point -= pl.normal() * dist;
        return true;
      }
      case ShapeType::Heightfield: {
        const auto &hf =
            static_cast<const HeightfieldShape &>(geom.shape());
        const Vec3 local = point - pose.position;
        if (local.x < 0 || local.x > hf.width() || local.z < 0 ||
            local.z > hf.depth()) {
            return false;
        }
        const Real surface = hf.sampleHeight(local.x, local.z) + margin;
        if (local.y >= surface)
            return false;
        point.y = pose.position.y + surface;
        return true;
      }
      default:
        return false;
    }
}

void
Cloth::step(Real dt, const Vec3 &gravity, int iterations,
            const std::vector<const Geom *> &colliders,
            ClothStats &stats)
{
    ++stats.clothsStepped;

    // Verlet integration: x' = 2x - x_prev + g dt^2 (with mild
    // damping folded into the velocity term).
    const Real damping = 0.995;
    const Vec3 accel_term = gravity * (dt * dt);
    for (Particle &p : particles_) {
        ++stats.verticesIntegrated;
        if (p.invMass == 0.0)
            continue;
        const Vec3 velocity = (p.position - p.previous) * damping;
        p.previous = p.position;
        p.position += velocity + accel_term;
    }

    // Interleaved relaxation: each sweep relaxes every distance
    // constraint, then projects every vertex out of the colliders
    // (Jakobsen's scheme — collision is just another constraint).
    const Real margin = 0.02;
    for (int it = 0; it < iterations; ++it) {
        for (const DistanceConstraint &c : constraints_) {
            ++stats.constraintRelaxations;
            Particle &pa = particles_[c.a];
            Particle &pb = particles_[c.b];
            const Real wsum = pa.invMass + pb.invMass;
            if (wsum == 0.0)
                continue;
            const Vec3 delta = pb.position - pa.position;
            const Real len = delta.length();
            if (len < 1e-12)
                continue;
            const Real diff = (len - c.restLength) / (len * wsum);
            pa.position += delta * (diff * pa.invMass);
            pb.position -= delta * (diff * pb.invMass);
        }
        for (Particle &p : particles_) {
            if (p.invMass == 0.0)
                continue;
            for (const Geom *g : colliders) {
                ++stats.collisionTests;
                if (projectOut(*g, p.position, margin)) {
                    ++stats.collisionsResolved;
                    // Kill part of the velocity into the surface by
                    // dragging the previous position along.
                    p.previous = p.previous +
                        (p.position - p.previous) * 0.5;
                }
            }
        }
    }
}

} // namespace parallax
