/**
 * @file
 * Position-based cloth simulation (Jakobsen's approach).
 *
 * A cloth object is a triangular mesh where each edge is a length
 * constraint. Constraints are solved with an iterative relaxation
 * solver and the mesh is simulated forward in time with a Verlet
 * integrator; collision resolution uses vertex projection (section
 * 3.2). Each vertex is an independent fine-grain task.
 */

#ifndef PARALLAX_PHYSICS_CLOTH_CLOTH_HH
#define PARALLAX_PHYSICS_CLOTH_CLOTH_HH

#include <cstdint>
#include <vector>

#include "physics/geom.hh"
#include "physics/kernels/kernel_backend.hh"
#include "physics/math/aabb.hh"
#include "physics/math/vec3.hh"

namespace parallax
{

/** Identifier of a cloth object within its World. */
using ClothId = std::uint32_t;

/** Observability counters for the cloth phase. */
struct ClothStats
{
    std::uint64_t clothsStepped = 0;
    std::uint64_t verticesIntegrated = 0;
    std::uint64_t constraintRelaxations = 0;
    std::uint64_t collisionTests = 0;
    std::uint64_t collisionsResolved = 0;
    /** Vector-engine counters (zero under the Scalar backend). */
    KernelStats kernels;

    void
    reset()
    {
        *this = ClothStats();
    }
};

/**
 * A rectangular cloth patch: nx-by-ny particles joined by structural
 * and shear (diagonal) distance constraints, forming the triangular
 * mesh of the paper. Large cloths use 625 vertices (25x25); small
 * ones attached to virtual humans use 25 (5x5).
 */
class Cloth
{
  public:
    struct Particle
    {
        Vec3 position;
        Vec3 previous;
        Real invMass = 1.0; // 0 pins the particle in place.
    };

    struct DistanceConstraint
    {
        std::uint32_t a;
        std::uint32_t b;
        Real restLength;
    };

    /**
     * Build a cloth patch in the XZ plane starting at `origin`,
     * spaced `spacing` apart, with total mass `mass`.
     */
    Cloth(ClothId id, int nx, int ny, const Vec3 &origin, Real spacing,
          Real mass);

    ClothId id() const { return id_; }
    int vertexCount() const { return static_cast<int>(particles_.size()); }
    int constraintCount() const
    { return static_cast<int>(constraints_.size()); }

    const std::vector<Particle> &particles() const { return particles_; }
    const std::vector<DistanceConstraint> &constraints() const
    { return constraints_; }

    /** Pin a particle so it never moves (attachment points). */
    void pin(std::uint32_t index);

    /** Replace all particle states (snapshot replay). Fails (returns
     *  false) if the count does not match this cloth's mesh. */
    bool restoreParticles(const std::vector<Particle> &particles);

    /** Displace a pinned particle (to follow an attached body). */
    void movePinned(std::uint32_t index, const Vec3 &position);

    /** Bounding volume of all particles, inflated by a margin. */
    Aabb bounds(Real margin = 0.2) const;

    /**
     * Advance the cloth one step: Verlet integration under gravity,
     * `iterations` constraint-relaxation sweeps, then vertex
     * projection out of the given collider geoms. Integration and
     * relaxation run on the given kernel backend (nullptr = the
     * scalar reference); collision projection is always scalar.
     */
    void step(Real dt, const Vec3 &gravity, int iterations,
              const std::vector<const Geom *> &colliders,
              ClothStats &stats,
              const KernelBackend *backend = nullptr);

  private:
    /** Push a point out of a geom; returns true if it was inside. */
    static bool projectOut(const Geom &geom, Vec3 &point, Real margin);

    /** Copy the AoS particle state into the SoA streams. */
    void syncSoa();
    /** Copy the SoA streams back into the AoS particle state. */
    void writeBackSoa();

    ClothId id_;
    int nx_;
    int ny_;
    std::vector<Particle> particles_;
    std::vector<DistanceConstraint> constraints_;

    // SoA particle streams the kernels run on: synced from
    // particles_ at the top of step() and written back at the end,
    // so the public AoS view (particles(), capture, render) is
    // unchanged. Sized once in the constructor.
    std::vector<Real> px_, py_, pz_, qx_, qy_, qz_, w_;

    // Constraint endpoint/rest streams: original order (the scalar
    // bitwise reference) plus a color-major permutation built once
    // here — constraints never change after construction.
    std::vector<std::int32_t> consA_, consB_;
    std::vector<Real> consRest_;
    std::vector<std::int32_t> coloredA_, coloredB_;
    std::vector<Real> coloredRest_;
    EdgeColoring coloring_;
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_CLOTH_CLOTH_HH
