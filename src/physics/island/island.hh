/**
 * @file
 * Island creation: connected components of interacting objects.
 *
 * After contact joints link interacting objects together, the engine
 * steps through all objects to form islands (section 3.2). This phase
 * is serializing: the full contact topology isn't known until the
 * last pair is examined, and only then can the constraint solvers
 * begin. Islands are independent of one another, which is the source
 * of Island Processing's coarse-grain parallelism.
 */

#ifndef PARALLAX_PHYSICS_ISLAND_ISLAND_HH
#define PARALLAX_PHYSICS_ISLAND_ISLAND_HH

#include <cstdint>
#include <vector>

#include "physics/body.hh"
#include "physics/joints/joint.hh"

namespace parallax
{

/** A connected component of dynamic bodies and their joints. */
struct Island
{
    std::vector<RigidBody *> bodies;
    std::vector<Joint *> joints;

    /** Total constraint rows (degrees of freedom removed). */
    int
    rowCount() const
    {
        int rows = 0;
        for (const Joint *j : joints)
            rows += j->numRows();
        return rows;
    }
};

/** Observability counters for the island-creation phase. */
struct IslandStats
{
    std::uint64_t bodiesVisited = 0;
    std::uint64_t jointsVisited = 0;
    std::uint64_t unionOps = 0;
    std::uint64_t findOps = 0;
    std::uint64_t islandsCreated = 0;
    std::uint64_t largestIslandRows = 0;
    std::uint64_t largestIslandBodies = 0;

    void
    reset()
    {
        *this = IslandStats();
    }
};

/**
 * Union-find island builder.
 *
 * Joints merge the components of their dynamic endpoints; joints to
 * static bodies (or the world) keep the dynamic body's component.
 * Disabled bodies and broken joints are skipped. Output islands and
 * their member lists are deterministic.
 */
class IslandBuilder
{
  public:
    /**
     * Build islands into `out`, stamping each body's islandId and
     * its dense solverIndex (position within its island's body
     * list). Existing Island objects in `out` are reused — their
     * member vectors keep capacity across steps, so a warmed-up
     * builder allocates nothing.
     *
     * @param bodies All bodies in the world (indexed by BodyId).
     * @param joints Joints to consider (typically permanent joints
     *               plus this step's contact joints).
     */
    void build(const std::vector<RigidBody *> &bodies,
               const std::vector<Joint *> &joints,
               std::vector<Island> &out);

    /** Convenience wrapper returning a fresh island list. */
    std::vector<Island>
    build(const std::vector<RigidBody *> &bodies,
          const std::vector<Joint *> &joints)
    {
        std::vector<Island> islands;
        build(bodies, joints, islands);
        return islands;
    }

    const IslandStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

  private:
    std::uint32_t find(std::uint32_t i);

    std::vector<std::uint32_t> parent_;
    /** Union-find root -> island index, cleared (by fill) per build;
     *  sized to the body count like parent_. */
    std::vector<std::uint32_t> rootToIsland_;
    /** Retired Island objects kept for their vector capacity. */
    std::vector<Island> pool_;
    IslandStats stats_;
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_ISLAND_ISLAND_HH
