#include "island.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace parallax
{

std::uint32_t
IslandBuilder::find(std::uint32_t i)
{
    ++stats_.findOps;
    while (parent_[i] != i) {
        parent_[i] = parent_[parent_[i]]; // Path halving.
        i = parent_[i];
    }
    return i;
}

void
IslandBuilder::build(const std::vector<RigidBody *> &bodies,
                     const std::vector<Joint *> &joints,
                     std::vector<Island> &out)
{
    const auto n = static_cast<std::uint32_t>(bodies.size());
    parent_.resize(n);
    for (std::uint32_t i = 0; i < n; ++i)
        parent_[i] = i;
    stats_.bodiesVisited += n;

    // Recycle the caller's Island objects: park them in the pool so
    // their bodies/joints vectors keep capacity, then hand them back
    // one at a time as components materialize.
    while (!out.empty()) {
        pool_.push_back(std::move(out.back()));
        out.pop_back();
    }

    auto dynamicIndex = [&](RigidBody *b) -> std::int64_t {
        if (b == nullptr || b->isStatic() || !b->enabled())
            return -1;
        return b->id();
    };

    for (Joint *j : joints) {
        ++stats_.jointsVisited;
        if (j->broken())
            continue;
        const std::int64_t ia = dynamicIndex(j->bodyA());
        const std::int64_t ib = dynamicIndex(j->bodyB());
        if (ia >= 0 && ib >= 0) {
            const std::uint32_t ra = find(static_cast<std::uint32_t>(ia));
            const std::uint32_t rb = find(static_cast<std::uint32_t>(ib));
            if (ra != rb) {
                parent_[rb] = ra;
                ++stats_.unionOps;
            }
        }
    }

    // Collect components in deterministic body-id order. The
    // root -> island map is a dense array indexed by the root body
    // id (roots are body indices), with ~0 marking "no island yet".
    constexpr std::uint32_t no_island = ~std::uint32_t(0);
    rootToIsland_.assign(n, no_island);
    for (std::uint32_t i = 0; i < n; ++i) {
        RigidBody *b = bodies[i];
        if (b == nullptr || b->isStatic() || !b->enabled()) {
            if (b != nullptr)
                b->setIslandId(no_island);
            continue;
        }
        parallax_assert(b->id() == i);
        const std::uint32_t root = find(i);
        std::uint32_t island = rootToIsland_[root];
        if (island == no_island) {
            island = static_cast<std::uint32_t>(out.size());
            rootToIsland_[root] = island;
            if (!pool_.empty()) {
                out.push_back(std::move(pool_.back()));
                pool_.pop_back();
                out.back().bodies.clear();
                out.back().joints.clear();
            } else {
                out.emplace_back();
            }
        }
        // The position within the island's body list doubles as the
        // solver's dense body index (replacing its body->index map).
        b->setSolverIndex(static_cast<int>(out[island].bodies.size()));
        out[island].bodies.push_back(b);
        b->setIslandId(island);
    }

    // Attach joints to the island of their first dynamic body.
    for (Joint *j : joints) {
        if (j->broken())
            continue;
        const std::int64_t ia = dynamicIndex(j->bodyA());
        const std::int64_t ib = dynamicIndex(j->bodyB());
        const std::int64_t owner = ia >= 0 ? ia : ib;
        if (owner < 0)
            continue; // Both endpoints static or disabled.
        const std::uint32_t island =
            bodies[static_cast<std::uint32_t>(owner)]->islandId();
        out[island].joints.push_back(j);
    }

    stats_.islandsCreated += out.size();
    for (const Island &island : out) {
        stats_.largestIslandRows = std::max<std::uint64_t>(
            stats_.largestIslandRows, island.rowCount());
        stats_.largestIslandBodies = std::max<std::uint64_t>(
            stats_.largestIslandBodies, island.bodies.size());
    }
}

} // namespace parallax
