#include "island.hh"

#include <algorithm>
#include <unordered_map>

#include "sim/logging.hh"

namespace parallax
{

std::uint32_t
IslandBuilder::find(std::uint32_t i)
{
    ++stats_.findOps;
    while (parent_[i] != i) {
        parent_[i] = parent_[parent_[i]]; // Path halving.
        i = parent_[i];
    }
    return i;
}

std::vector<Island>
IslandBuilder::build(const std::vector<RigidBody *> &bodies,
                     const std::vector<Joint *> &joints)
{
    const auto n = static_cast<std::uint32_t>(bodies.size());
    parent_.resize(n);
    for (std::uint32_t i = 0; i < n; ++i)
        parent_[i] = i;
    stats_.bodiesVisited += n;

    auto dynamicIndex = [&](RigidBody *b) -> std::int64_t {
        if (b == nullptr || b->isStatic() || !b->enabled())
            return -1;
        return b->id();
    };

    for (Joint *j : joints) {
        ++stats_.jointsVisited;
        if (j->broken())
            continue;
        const std::int64_t ia = dynamicIndex(j->bodyA());
        const std::int64_t ib = dynamicIndex(j->bodyB());
        if (ia >= 0 && ib >= 0) {
            const std::uint32_t ra = find(static_cast<std::uint32_t>(ia));
            const std::uint32_t rb = find(static_cast<std::uint32_t>(ib));
            if (ra != rb) {
                parent_[rb] = ra;
                ++stats_.unionOps;
            }
        }
    }

    // Collect components in deterministic body-id order.
    std::unordered_map<std::uint32_t, std::uint32_t> root_to_island;
    std::vector<Island> islands;
    for (std::uint32_t i = 0; i < n; ++i) {
        RigidBody *b = bodies[i];
        if (b == nullptr || b->isStatic() || !b->enabled()) {
            if (b != nullptr)
                b->setIslandId(~std::uint32_t(0));
            continue;
        }
        parallax_assert(b->id() == i);
        const std::uint32_t root = find(i);
        auto [it, inserted] = root_to_island.try_emplace(
            root, static_cast<std::uint32_t>(islands.size()));
        if (inserted)
            islands.emplace_back();
        islands[it->second].bodies.push_back(b);
        b->setIslandId(it->second);
    }

    // Attach joints to the island of their first dynamic body.
    for (Joint *j : joints) {
        if (j->broken())
            continue;
        const std::int64_t ia = dynamicIndex(j->bodyA());
        const std::int64_t ib = dynamicIndex(j->bodyB());
        const std::int64_t owner = ia >= 0 ? ia : ib;
        if (owner < 0)
            continue; // Both endpoints static or disabled.
        const std::uint32_t island =
            bodies[static_cast<std::uint32_t>(owner)]->islandId();
        islands[island].joints.push_back(j);
    }

    stats_.islandsCreated += islands.size();
    for (const Island &island : islands) {
        stats_.largestIslandRows = std::max<std::uint64_t>(
            stats_.largestIslandRows, island.rowCount());
        stats_.largestIslandBodies = std::max<std::uint64_t>(
            stats_.largestIslandBodies, island.bodies.size());
    }
    return islands;
}

} // namespace parallax
