/**
 * @file
 * AVX2 instantiations of the native kernels. This is the ONLY TU
 * compiled with -mavx2 (see src/physics/CMakeLists.txt); callers
 * reach it through avx2KernelBackend() and only after the runtime
 * __builtin_cpu_supports("avx2") check in kernel_backend.cc, so no
 * AVX2 instruction ever executes on a host without the feature.
 */

#include "native_impl.hh"

#if !defined(__AVX2__)
#error "native_avx2.cc must be compiled with -mavx2"
#endif

namespace parallax
{

/**
 * fp32 ops policy for the fused contact sweep (pgsContactSweep).
 * AVX2 has a native fp32 gather but no scatter; stores are emulated
 * per lane off a movemask-derived bitmask. 8 fp32 lanes per pack.
 */
struct FOpsAvx2 {
    static constexpr int W = 8;
    using R = __m256;
    using I = __m256i;
    using M = int; // movemask bits, lane i -> bit i

    static I idx(const std::int32_t *p)
    {
        return _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p));
    }
    static M valid(I i, std::int32_t dummy3)
    {
        const __m256i eq =
            _mm256_cmpeq_epi32(i, _mm256_set1_epi32(dummy3));
        return (~_mm256_movemask_ps(_mm256_castsi256_ps(eq))) &
               0xff;
    }
    static R gather(const float *base, I i)
    {
        return _mm256_i32gather_ps(base, i, 4);
    }
    static void scatter(float *base, I i, M m, R v)
    {
        alignas(32) std::int32_t ix[8];
        alignas(32) float vx[8];
        _mm256_store_si256(reinterpret_cast<__m256i *>(ix), i);
        _mm256_store_ps(vx, v);
        for (int l = 0; l < 8; ++l)
            if (m & (1 << l))
                base[ix[l]] = vx[l];
    }
    static R load(const float *p) { return _mm256_loadu_ps(p); }
    static void store(float *p, R v) { _mm256_storeu_ps(p, v); }
    static R zero() { return _mm256_setzero_ps(); }
    static R add(R a, R b) { return _mm256_add_ps(a, b); }
    static R sub(R a, R b) { return _mm256_sub_ps(a, b); }
    static R mul(R a, R b) { return _mm256_mul_ps(a, b); }
    static R min(R a, R b) { return _mm256_min_ps(a, b); }
    static R max(R a, R b) { return _mm256_max_ps(a, b); }
    static R fmadd(R a, R b, R c)
    {
        return _mm256_fmadd_ps(a, b, c);
    }
    static R fnmadd(R a, R b, R c)
    {
        return _mm256_fnmadd_ps(a, b, c);
    }
};

const KernelBackend *
avx2KernelBackend(int variant)
{
    static const NativeBackend<PackAvx2, FOpsAvx2> w4("avx2x4");
    static const NativeBackend<PackX2<PackAvx2>, FOpsAvx2> w8(
        "avx2x8");
    return variant == 0 ? static_cast<const KernelBackend *>(&w4)
                        : static_cast<const KernelBackend *>(&w8);
}

} // namespace parallax
