/**
 * @file
 * Thin fixed-width SIMD pack wrapper for the kernel backends.
 *
 * A "pack" is W lanes of Real (double) with the small op vocabulary
 * the vectorized kernels need: load/store, broadcast, arithmetic,
 * min/max/sqrt, 32-bit-index gather, compares and masked select.
 * Three families exist:
 *
 *  - PackScalar<W>: portable reference, plain arrays + loops. Used
 *    by unit tests on any host and as the documentation of the
 *    semantics the intrinsic packs must match.
 *  - PackAvx2 (W=4, x86-64): one __m256d. Only defined in TUs built
 *    with -mavx2 (the build isolates those; see
 *    src/physics/CMakeLists.txt).
 *  - PackNeon (W=2, aarch64): one float64x2_t.
 *
 * PackX2<P> glues two packs into a double-width one (W=8 on AVX2,
 * W=4 on NEON) so kernels can be instantiated at two widths from the
 * same source.
 *
 * Deliberately absent: FMA. The kernels keep plain mul+add so each
 * lane's arithmetic is the same IEEE sequence as the scalar
 * reference — elementwise kernels (cloth integration, batched
 * narrowphase) are then bitwise identical per element, and the
 * relaxation kernels differ from the scalar reference only by
 * processing order (see DESIGN.md section 13).
 */

#ifndef PARALLAX_PHYSICS_KERNELS_SIMD_PACK_HH
#define PARALLAX_PHYSICS_KERNELS_SIMD_PACK_HH

#include <cmath>
#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace parallax
{

/** Portable reference pack: W doubles, all ops are plain loops. */
template <int Width>
struct PackScalar
{
    static constexpr int W = Width;
    double v[W];

    struct Mask
    {
        bool m[W];

        /** Lane mask as bits (lane i -> bit i). */
        unsigned
        bits() const
        {
            unsigned b = 0;
            for (int i = 0; i < W; ++i)
                b |= m[i] ? (1u << i) : 0u;
            return b;
        }

        friend Mask
        operator&(const Mask &a, const Mask &b)
        {
            Mask r;
            for (int i = 0; i < W; ++i)
                r.m[i] = a.m[i] && b.m[i];
            return r;
        }
    };

    static PackScalar
    load(const double *p)
    {
        PackScalar r;
        for (int i = 0; i < W; ++i)
            r.v[i] = p[i];
        return r;
    }

    static PackScalar
    broadcast(double s)
    {
        PackScalar r;
        for (int i = 0; i < W; ++i)
            r.v[i] = s;
        return r;
    }

    static PackScalar zero() { return broadcast(0.0); }

    static PackScalar
    gather(const double *base, const std::int32_t *idx)
    {
        PackScalar r;
        for (int i = 0; i < W; ++i)
            r.v[i] = base[idx[i]];
        return r;
    }

    void
    store(double *p) const
    {
        for (int i = 0; i < W; ++i)
            p[i] = v[i];
    }

    friend PackScalar
    operator+(const PackScalar &a, const PackScalar &b)
    {
        PackScalar r;
        for (int i = 0; i < W; ++i)
            r.v[i] = a.v[i] + b.v[i];
        return r;
    }

    friend PackScalar
    operator-(const PackScalar &a, const PackScalar &b)
    {
        PackScalar r;
        for (int i = 0; i < W; ++i)
            r.v[i] = a.v[i] - b.v[i];
        return r;
    }

    friend PackScalar
    operator*(const PackScalar &a, const PackScalar &b)
    {
        PackScalar r;
        for (int i = 0; i < W; ++i)
            r.v[i] = a.v[i] * b.v[i];
        return r;
    }

    friend PackScalar
    operator/(const PackScalar &a, const PackScalar &b)
    {
        PackScalar r;
        for (int i = 0; i < W; ++i)
            r.v[i] = a.v[i] / b.v[i];
        return r;
    }

    /** a*b + c, fused where the target has FMA. Only for kernels
     *  whose contract is tolerance-bounded (PGS): fusing changes
     *  rounding, so the bitwise elementwise kernels must not use
     *  it. */
    static PackScalar
    mulAdd(const PackScalar &a, const PackScalar &b,
           const PackScalar &c)
    {
        PackScalar r;
        for (int i = 0; i < W; ++i)
            r.v[i] = std::fma(a.v[i], b.v[i], c.v[i]);
        return r;
    }

    PackScalar
    operator-() const
    {
        PackScalar r;
        for (int i = 0; i < W; ++i)
            r.v[i] = -v[i];
        return r;
    }

    static PackScalar
    min(const PackScalar &a, const PackScalar &b)
    {
        PackScalar r;
        // a > b ? b : a — matches the x86 minpd operand convention
        // (second operand wins on ties/NaN) so all pack families
        // agree on the edge cases.
        for (int i = 0; i < W; ++i)
            r.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
        return r;
    }

    static PackScalar
    max(const PackScalar &a, const PackScalar &b)
    {
        PackScalar r;
        for (int i = 0; i < W; ++i)
            r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
        return r;
    }

    static PackScalar
    sqrt(const PackScalar &a)
    {
        PackScalar r;
        for (int i = 0; i < W; ++i)
            r.v[i] = std::sqrt(a.v[i]);
        return r;
    }

    static Mask
    cmpGt(const PackScalar &a, const PackScalar &b)
    {
        Mask r;
        for (int i = 0; i < W; ++i)
            r.m[i] = a.v[i] > b.v[i];
        return r;
    }

    static Mask
    cmpGe(const PackScalar &a, const PackScalar &b)
    {
        Mask r;
        for (int i = 0; i < W; ++i)
            r.m[i] = a.v[i] >= b.v[i];
        return r;
    }

    static Mask
    cmpLe(const PackScalar &a, const PackScalar &b)
    {
        Mask r;
        for (int i = 0; i < W; ++i)
            r.m[i] = a.v[i] <= b.v[i];
        return r;
    }

    /** Lane-wise m ? a : b. */
    static PackScalar
    select(const Mask &m, const PackScalar &a, const PackScalar &b)
    {
        PackScalar r;
        for (int i = 0; i < W; ++i)
            r.v[i] = m.m[i] ? a.v[i] : b.v[i];
        return r;
    }
};

#if defined(__AVX2__)

/** AVX2 pack: 4 doubles in one __m256d. */
struct PackAvx2
{
    static constexpr int W = 4;
    __m256d v;

    struct Mask
    {
        __m256d m; // All-ones lanes where true.

        unsigned
        bits() const
        {
            return static_cast<unsigned>(_mm256_movemask_pd(m));
        }

        friend Mask
        operator&(const Mask &a, const Mask &b)
        {
            return {_mm256_and_pd(a.m, b.m)};
        }
    };

    static PackAvx2 load(const double *p) { return {_mm256_loadu_pd(p)}; }
    static PackAvx2 broadcast(double s) { return {_mm256_set1_pd(s)}; }
    static PackAvx2 zero() { return {_mm256_setzero_pd()}; }

    static PackAvx2
    gather(const double *base, const std::int32_t *idx)
    {
        const __m128i i = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(idx));
        return {_mm256_i32gather_pd(base, i, 8)};
    }

    void store(double *p) const { _mm256_storeu_pd(p, v); }

    friend PackAvx2
    operator+(const PackAvx2 &a, const PackAvx2 &b)
    {
        return {_mm256_add_pd(a.v, b.v)};
    }

    friend PackAvx2
    operator-(const PackAvx2 &a, const PackAvx2 &b)
    {
        return {_mm256_sub_pd(a.v, b.v)};
    }

    friend PackAvx2
    operator*(const PackAvx2 &a, const PackAvx2 &b)
    {
        return {_mm256_mul_pd(a.v, b.v)};
    }

    friend PackAvx2
    operator/(const PackAvx2 &a, const PackAvx2 &b)
    {
        return {_mm256_div_pd(a.v, b.v)};
    }

    /** a*b + c (fused when compiled with -mfma; the runtime
     *  dispatch requires the fma CPU bit alongside avx2). */
    static PackAvx2
    mulAdd(const PackAvx2 &a, const PackAvx2 &b, const PackAvx2 &c)
    {
#if defined(__FMA__)
        return {_mm256_fmadd_pd(a.v, b.v, c.v)};
#else
        return {_mm256_add_pd(_mm256_mul_pd(a.v, b.v), c.v)};
#endif
    }

    PackAvx2
    operator-() const
    {
        return {_mm256_sub_pd(_mm256_setzero_pd(), v)};
    }

    static PackAvx2
    min(const PackAvx2 &a, const PackAvx2 &b)
    {
        return {_mm256_min_pd(a.v, b.v)};
    }

    static PackAvx2
    max(const PackAvx2 &a, const PackAvx2 &b)
    {
        return {_mm256_max_pd(a.v, b.v)};
    }

    static PackAvx2 sqrt(const PackAvx2 &a) { return {_mm256_sqrt_pd(a.v)}; }

    static Mask
    cmpGt(const PackAvx2 &a, const PackAvx2 &b)
    {
        return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)};
    }

    static Mask
    cmpGe(const PackAvx2 &a, const PackAvx2 &b)
    {
        return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)};
    }

    static Mask
    cmpLe(const PackAvx2 &a, const PackAvx2 &b)
    {
        return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)};
    }

    static PackAvx2
    select(const Mask &m, const PackAvx2 &a, const PackAvx2 &b)
    {
        return {_mm256_blendv_pd(b.v, a.v, m.m)};
    }
};

#endif // __AVX2__

#if defined(__aarch64__)

/** NEON pack: 2 doubles in one float64x2_t. */
struct PackNeon
{
    static constexpr int W = 2;
    float64x2_t v;

    struct Mask
    {
        uint64x2_t m;

        unsigned
        bits() const
        {
            return static_cast<unsigned>(vgetq_lane_u64(m, 0) & 1u) |
                   (static_cast<unsigned>(vgetq_lane_u64(m, 1) & 1u)
                    << 1);
        }

        friend Mask
        operator&(const Mask &a, const Mask &b)
        {
            return {vandq_u64(a.m, b.m)};
        }
    };

    static PackNeon load(const double *p) { return {vld1q_f64(p)}; }
    static PackNeon broadcast(double s) { return {vdupq_n_f64(s)}; }
    static PackNeon zero() { return broadcast(0.0); }

    static PackNeon
    gather(const double *base, const std::int32_t *idx)
    {
        double lanes[2] = {base[idx[0]], base[idx[1]]};
        return load(lanes);
    }

    void store(double *p) const { vst1q_f64(p, v); }

    friend PackNeon
    operator+(const PackNeon &a, const PackNeon &b)
    {
        return {vaddq_f64(a.v, b.v)};
    }

    friend PackNeon
    operator-(const PackNeon &a, const PackNeon &b)
    {
        return {vsubq_f64(a.v, b.v)};
    }

    friend PackNeon
    operator*(const PackNeon &a, const PackNeon &b)
    {
        return {vmulq_f64(a.v, b.v)};
    }

    friend PackNeon
    operator/(const PackNeon &a, const PackNeon &b)
    {
        return {vdivq_f64(a.v, b.v)};
    }

    /** a*b + c, fused (vfmaq accumulates into its first operand). */
    static PackNeon
    mulAdd(const PackNeon &a, const PackNeon &b, const PackNeon &c)
    {
        return {vfmaq_f64(c.v, a.v, b.v)};
    }

    PackNeon operator-() const { return {vnegq_f64(v)}; }

    static PackNeon
    min(const PackNeon &a, const PackNeon &b)
    {
        return {vminq_f64(a.v, b.v)};
    }

    static PackNeon
    max(const PackNeon &a, const PackNeon &b)
    {
        return {vmaxq_f64(a.v, b.v)};
    }

    static PackNeon sqrt(const PackNeon &a) { return {vsqrtq_f64(a.v)}; }

    static Mask
    cmpGt(const PackNeon &a, const PackNeon &b)
    {
        return {vcgtq_f64(a.v, b.v)};
    }

    static Mask
    cmpGe(const PackNeon &a, const PackNeon &b)
    {
        return {vcgeq_f64(a.v, b.v)};
    }

    static Mask
    cmpLe(const PackNeon &a, const PackNeon &b)
    {
        return {vcleq_f64(a.v, b.v)};
    }

    static PackNeon
    select(const Mask &m, const PackNeon &a, const PackNeon &b)
    {
        return {vbslq_f64(m.m, a.v, b.v)};
    }
};

#endif // __aarch64__

/** Double-width pack built from two P halves (W = 2 * P::W). */
template <typename P>
struct PackX2
{
    static constexpr int W = 2 * P::W;
    P lo, hi;

    struct Mask
    {
        typename P::Mask lo, hi;

        unsigned
        bits() const
        {
            return lo.bits() | (hi.bits() << P::W);
        }

        friend Mask
        operator&(const Mask &a, const Mask &b)
        {
            return {a.lo & b.lo, a.hi & b.hi};
        }
    };

    static PackX2
    load(const double *p)
    {
        return {P::load(p), P::load(p + P::W)};
    }

    static PackX2
    broadcast(double s)
    {
        return {P::broadcast(s), P::broadcast(s)};
    }

    static PackX2 zero() { return {P::zero(), P::zero()}; }

    static PackX2
    gather(const double *base, const std::int32_t *idx)
    {
        return {P::gather(base, idx), P::gather(base, idx + P::W)};
    }

    void
    store(double *p) const
    {
        lo.store(p);
        hi.store(p + P::W);
    }

    friend PackX2
    operator+(const PackX2 &a, const PackX2 &b)
    {
        return {a.lo + b.lo, a.hi + b.hi};
    }

    friend PackX2
    operator-(const PackX2 &a, const PackX2 &b)
    {
        return {a.lo - b.lo, a.hi - b.hi};
    }

    friend PackX2
    operator*(const PackX2 &a, const PackX2 &b)
    {
        return {a.lo * b.lo, a.hi * b.hi};
    }

    friend PackX2
    operator/(const PackX2 &a, const PackX2 &b)
    {
        return {a.lo / b.lo, a.hi / b.hi};
    }

    static PackX2
    mulAdd(const PackX2 &a, const PackX2 &b, const PackX2 &c)
    {
        return {P::mulAdd(a.lo, b.lo, c.lo),
                P::mulAdd(a.hi, b.hi, c.hi)};
    }

    PackX2 operator-() const { return {-lo, -hi}; }

    static PackX2
    min(const PackX2 &a, const PackX2 &b)
    {
        return {P::min(a.lo, b.lo), P::min(a.hi, b.hi)};
    }

    static PackX2
    max(const PackX2 &a, const PackX2 &b)
    {
        return {P::max(a.lo, b.lo), P::max(a.hi, b.hi)};
    }

    static PackX2
    sqrt(const PackX2 &a)
    {
        return {P::sqrt(a.lo), P::sqrt(a.hi)};
    }

    static Mask
    cmpGt(const PackX2 &a, const PackX2 &b)
    {
        return {P::cmpGt(a.lo, b.lo), P::cmpGt(a.hi, b.hi)};
    }

    static Mask
    cmpGe(const PackX2 &a, const PackX2 &b)
    {
        return {P::cmpGe(a.lo, b.lo), P::cmpGe(a.hi, b.hi)};
    }

    static Mask
    cmpLe(const PackX2 &a, const PackX2 &b)
    {
        return {P::cmpLe(a.lo, b.lo), P::cmpLe(a.hi, b.hi)};
    }

    static PackX2
    select(const Mask &m, const PackX2 &a, const PackX2 &b)
    {
        return {P::select(m.lo, a.lo, b.lo),
                P::select(m.hi, a.hi, b.hi)};
    }
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_KERNELS_SIMD_PACK_HH
