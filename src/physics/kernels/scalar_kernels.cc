/**
 * @file
 * Scalar reference backend: a verbatim transplant of the pre-seam
 * hot loops. Every expression keeps the original operand order so
 * trajectories stay bitwise identical to the engine before the
 * kernel seam existed (asserted by tools/state_hash).
 */

#include <algorithm>
#include <cmath>

#include "kernel_backend.hh"

namespace parallax
{

namespace
{

class ScalarBackend final : public KernelBackend
{
  public:
    SimdBackend kind() const override { return SimdBackend::Scalar; }
    const char *name() const override { return "scalar"; }
    int width() const override { return 1; }

    void
    pgsSweep(const PgsSweepCtx &ctx, PgsScratch &,
             KernelStats &) const override
    {
        Vec3 *lin_vel = ctx.linVel;
        Vec3 *ang_vel = ctx.angVel;
        const std::size_t n_rows = ctx.rows;
        for (int it = 0; it < ctx.iterations; ++it) {
            for (std::size_t r = 0; r < n_rows; ++r) {
                // Friction rows: refresh bounds from the normal
                // impulse.
                const int normal_row = ctx.normalRow[r];
                if (normal_row >= 0) {
                    const Real limit =
                        ctx.mu[r] * ctx.lambda[normal_row];
                    ctx.lo[r] = -limit;
                    ctx.hi[r] = limit;
                }

                const int ia = ctx.bodyA[r];
                const int ib = ctx.bodyB[r];
                Real jv = 0.0;
                if (ia >= 0) {
                    jv += ctx.jLinA[r].dot(lin_vel[ia]) +
                          ctx.jAngA[r].dot(ang_vel[ia]);
                }
                if (ib >= 0) {
                    jv += ctx.jLinB[r].dot(lin_vel[ib]) +
                          ctx.jAngB[r].dot(ang_vel[ib]);
                }

                const Real delta =
                    ctx.sor *
                    (ctx.rhs[r] - jv - ctx.cfm[r] * ctx.lambda[r]) *
                    ctx.invDiag[r];
                const Real new_lambda = std::clamp(
                    ctx.lambda[r] + delta, ctx.lo[r], ctx.hi[r]);
                const Real dl = new_lambda - ctx.lambda[r];
                ctx.lambda[r] = new_lambda;
                if (dl == 0.0)
                    continue;

                if (ia >= 0) {
                    lin_vel[ia] += ctx.mLinA[r] * dl;
                    ang_vel[ia] += ctx.mAngA[r] * dl;
                }
                if (ib >= 0) {
                    lin_vel[ib] += ctx.mLinB[r] * dl;
                    ang_vel[ib] += ctx.mAngB[r] * dl;
                }
            }
        }
    }

    void
    clothIntegrate(const ClothParticlesView &p, const Vec3 &accelTerm,
                   Real damping, KernelStats &) const override
    {
        for (std::size_t i = 0; i < p.count; ++i) {
            if (p.w[i] == 0.0)
                continue;
            // velocity = (position - previous) * damping;
            // previous = position; position += velocity + accel.
            const Real vx = (p.px[i] - p.qx[i]) * damping;
            const Real vy = (p.py[i] - p.qy[i]) * damping;
            const Real vz = (p.pz[i] - p.qz[i]) * damping;
            p.qx[i] = p.px[i];
            p.qy[i] = p.py[i];
            p.qz[i] = p.pz[i];
            p.px[i] = p.px[i] + (vx + accelTerm.x);
            p.py[i] = p.py[i] + (vy + accelTerm.y);
            p.pz[i] = p.pz[i] + (vz + accelTerm.z);
        }
    }

    void
    clothRelax(const ClothParticlesView &p,
               const ClothConstraintsView &c,
               KernelStats &) const override
    {
        // Original constraint order — the bitwise reference.
        for (std::size_t i = 0; i < c.count; ++i) {
            const std::size_t a = static_cast<std::size_t>(c.a[i]);
            const std::size_t b = static_cast<std::size_t>(c.b[i]);
            const Real wa = p.w[a];
            const Real wb = p.w[b];
            const Real wsum = wa + wb;
            if (wsum == 0.0)
                continue;
            const Real dx = p.px[b] - p.px[a];
            const Real dy = p.py[b] - p.py[a];
            const Real dz = p.pz[b] - p.pz[a];
            const Real len =
                std::sqrt(dx * dx + dy * dy + dz * dz);
            if (len < 1e-12)
                continue;
            const Real diff = (len - c.rest[i]) / (len * wsum);
            const Real sa = diff * wa;
            const Real sb = diff * wb;
            p.px[a] += dx * sa;
            p.py[a] += dy * sa;
            p.pz[a] += dz * sa;
            p.px[b] -= dx * sb;
            p.py[b] -= dy * sb;
            p.pz[b] -= dz * sb;
        }
    }

    void
    sphereSphereBatch(SphereSphereBatch &b,
                      KernelStats &) const override
    {
        for (std::size_t i = 0; i < b.size(); ++i)
            sphereSphereSlotScalar(b, i);
    }

    void
    sphereBoxBatch(SphereBoxBatch &b, KernelStats &) const override
    {
        for (std::size_t i = 0; i < b.size(); ++i)
            sphereBoxSlotScalar(b, i);
    }
};

} // namespace

const KernelBackend &
scalarKernelBackend()
{
    static const ScalarBackend backend;
    return backend;
}

} // namespace parallax
