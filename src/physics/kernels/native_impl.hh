/**
 * @file
 * Width-generic vectorized kernels, templated on a simd_pack type.
 * Included ONLY by the target-specific TUs (native_avx2.cc /
 * native_neon.cc) so intrinsic code never leaks into the portable
 * build. The elementwise kernels (integration, narrowphase) use the
 * same IEEE op sequence as the scalar reference — no FMA — so their
 * lanes are bitwise identical to Scalar. The relaxation kernels are
 * tolerance-bounded (they already reassociate via the color-major
 * processing order), so the PGS sweep is free to fuse with
 * Pack::mulAdd.
 */

#ifndef PARALLAX_PHYSICS_KERNELS_NATIVE_IMPL_HH
#define PARALLAX_PHYSICS_KERNELS_NATIVE_IMPL_HH

#include <type_traits>

#include "kernel_backend.hh"
#include "simd_pack.hh"

namespace parallax
{

/**
 * The fused contact-triplet PGS sweep (see PgsContactScratch): one
 * fp32 lane = one contact, velocities gathered once and scattered
 * once per unit per iteration, friction J·v corrected in-register
 * via the precomputed coupling scalars. Templated on a small fp32
 * ops policy `F` supplied by the ISA TU:
 *
 *   F::W                 lane count
 *   F::R / F::I / F::M   fp32 / index / lane-mask register types
 *   F::idx(p)            load W int32 gather indices
 *   F::valid(i, dummy3)  mask of lanes whose index != dummy3
 *   F::gather(base, i)   base[i] per lane (fp32)
 *   F::scatter(b, i, m, v)  masked per-lane store b[i] = v
 *   F::load/store/zero, add/sub/mul/min/max,
 *   F::fmadd(a,b,c) = a*b + c, F::fnmadd(a,b,c) = c - a*b
 *
 * Color regions are padded to whole packs (inert dummy lanes), so
 * there is no vector remainder; units past the 64-color budget run
 * through relaxPgsContactUnitScalar each iteration.
 */
template <typename F>
inline void
pgsContactSweep(const PgsSweepCtx &ctx, PgsContactScratch &sc,
                KernelStats &stats)
{
    constexpr int W = F::W;
    using R = typename F::R;

    buildPgsContactScratch(ctx, sc, W);
    pgsContactLoadVelocities(ctx, sc);
    float *lvf = sc.lvf.data();
    float *avf = sc.avf.data();
    const std::int32_t dummy3 =
        3 * static_cast<std::int32_t>(ctx.bodies);

    for (int it = 0; it < ctx.iterations; ++it) {
        for (std::size_t c = 0; c < sc.colors; ++c) {
            const std::size_t end = sc.colorOffsets[c + 1];
            for (std::size_t s = sc.colorOffsets[c]; s < end;
                 s += W) {
                const auto ia = F::idx(&sc.idxA3[s]);
                const auto ib = F::idx(&sc.idxB3[s]);
                const auto mA = F::valid(ia, dummy3);
                const auto mB = F::valid(ib, dummy3);

                R vAl[3], vAa[3], vBl[3], vBa[3];
                for (int k = 0; k < 3; ++k) {
                    vAl[k] = F::gather(lvf + k, ia);
                    vAa[k] = F::gather(avf + k, ia);
                    vBl[k] = F::gather(lvf + k, ib);
                    vBa[k] = F::gather(avf + k, ib);
                }
                R dvl[3];
                for (int k = 0; k < 3; ++k)
                    dvl[k] = F::sub(vAl[k], vBl[k]);

                // Three J·v chains off the same gathered velocities
                // (J_lin applies to vA - vB since jLinB = -jLinA).
                R jv[3], jrow[3][9];
                for (int r = 0; r < 3; ++r) {
                    for (int k = 0; k < 9; ++k)
                        jrow[r][k] = F::load(&sc.J[r][k][s]);
                    R a = F::mul(jrow[r][0], dvl[0]);
                    R b = F::mul(jrow[r][3], vAa[0]);
                    R g = F::mul(jrow[r][6], vBa[0]);
                    a = F::fmadd(jrow[r][1], dvl[1], a);
                    b = F::fmadd(jrow[r][4], vAa[1], b);
                    g = F::fmadd(jrow[r][7], vBa[1], g);
                    a = F::fmadd(jrow[r][2], dvl[2], a);
                    b = F::fmadd(jrow[r][5], vAa[2], b);
                    g = F::fmadd(jrow[r][8], vBa[2], g);
                    jv[r] = F::add(a, F::add(b, g));
                }

                const R cfm = F::load(&sc.cfmU[s]);
                // Normal row: clamp to [0, +inf).
                const R lamN = F::load(&sc.lam[0][s]);
                R d = F::fnmadd(cfm, lamN, F::load(&sc.rhsN[s]));
                d = F::sub(d, jv[0]);
                d = F::mul(d, F::load(&sc.sid[0][s]));
                const R newN =
                    F::max(F::add(lamN, d), F::zero());
                const R dl0 = F::sub(newN, lamN);
                F::store(&sc.lam[0][s], newN);
                const R limit =
                    F::mul(F::load(&sc.mu[s]), newN);
                const R nlimit = F::sub(F::zero(), limit);

                // Friction rows: rhs == 0 folded out; J·v picks up
                // the earlier rows' impulses through the coupling
                // scalars instead of re-gathering velocities.
                const R lamF = F::load(&sc.lam[1][s]);
                d = F::fmadd(F::load(&sc.c10[s]), dl0, jv[1]);
                d = F::fmadd(cfm, lamF, d);
                d = F::fnmadd(d, F::load(&sc.sid[1][s]), lamF);
                const R newF = F::min(F::max(d, nlimit), limit);
                const R dl1 = F::sub(newF, lamF);
                F::store(&sc.lam[1][s], newF);

                const R lamG = F::load(&sc.lam[2][s]);
                d = F::fmadd(F::load(&sc.c20[s]), dl0, jv[2]);
                d = F::fmadd(F::load(&sc.c21[s]), dl1, d);
                d = F::fmadd(cfm, lamG, d);
                d = F::fnmadd(d, F::load(&sc.sid[2][s]), lamG);
                const R newG = F::min(F::max(d, nlimit), limit);
                const R dl2 = F::sub(newG, lamG);
                F::store(&sc.lam[2][s], newG);

                // Combined velocity update; one masked scatter per
                // component. Within a color the touched bodies are
                // disjoint, so lanes never race on a slot.
                const R imAv = F::load(&sc.imA[s]);
                const R imBv = F::load(&sc.imB[s]);
                for (int k = 0; k < 3; ++k) {
                    R P = F::mul(jrow[0][k], dl0);
                    P = F::fmadd(jrow[1][k], dl1, P);
                    P = F::fmadd(jrow[2][k], dl2, P);
                    vAl[k] = F::fmadd(imAv, P, vAl[k]);
                    vBl[k] = F::fnmadd(imBv, P, vBl[k]);
                    R aa = F::fmadd(F::load(&sc.maA[0][k][s]), dl0,
                                    vAa[k]);
                    aa = F::fmadd(F::load(&sc.maA[1][k][s]), dl1,
                                  aa);
                    vAa[k] = F::fmadd(F::load(&sc.maA[2][k][s]),
                                      dl2, aa);
                    R bb = F::fmadd(F::load(&sc.maB[0][k][s]), dl0,
                                    vBa[k]);
                    bb = F::fmadd(F::load(&sc.maB[1][k][s]), dl1,
                                  bb);
                    vBa[k] = F::fmadd(F::load(&sc.maB[2][k][s]),
                                      dl2, bb);
                    F::scatter(lvf + k, ia, mA, vAl[k]);
                    F::scatter(avf + k, ia, mA, vAa[k]);
                    F::scatter(lvf + k, ib, mB, vBl[k]);
                    F::scatter(avf + k, ib, mB, vBa[k]);
                }
            }
        }
        for (std::size_t s = sc.tailStart;
             s < sc.tailStart + sc.tailUnits; ++s)
            relaxPgsContactUnitScalar(sc, s);
    }

    pgsContactStoreResults(ctx, sc);
    const std::uint64_t iters =
        static_cast<std::uint64_t>(ctx.iterations);
    stats.rowsVectorized +=
        3 * (sc.units - sc.tailUnits) * iters;
    stats.remainderRows += 3 * sc.tailUnits * iters;
    stats.contactUnits += sc.units;
}

template <typename Pack, typename FOps = void>
class NativeBackend final : public KernelBackend
{
    static constexpr int W = Pack::W;

  public:
    explicit NativeBackend(const char *name) : name_(name) {}

    SimdBackend kind() const override { return SimdBackend::Native; }
    const char *name() const override { return name_; }
    int width() const override { return W; }

    void
    pgsSweep(const PgsSweepCtx &ctx, PgsScratch &sc,
             KernelStats &stats) const override
    {
        const std::size_t n = ctx.rows;
        if (n == 0)
            return;
        if constexpr (!std::is_void_v<FOps>) {
            // All-contact islands take the fused triplet fast path;
            // anything else (joint rows, exotic bounds) falls back
            // to the generic per-row machinery below.
            if (pgsContactPatternMatches(ctx)) {
                pgsContactSweep<FOps>(ctx, sc.contact, stats);
                return;
            }
        }
        buildPgsScratch(ctx, sc);

        const double *lv =
            reinterpret_cast<const double *>(ctx.linVel);
        const double *av =
            reinterpret_cast<const double *>(ctx.angVel);

        std::uint64_t vectorized = 0;
        std::uint64_t remainder = 0;
        const Pack sor = Pack::broadcast(ctx.sor);
        const Pack half = Pack::broadcast(0.5);

        for (int it = 0; it < ctx.iterations; ++it) {
            for (std::size_t c = 0; c < sc.colors; ++c) {
                std::size_t s = sc.colorOffsets[c];
                const std::size_t end = sc.colorOffsets[c + 1];
                for (; s + W <= end; s += W) {
                    relaxPack(ctx, sc, lv, av, sor, half, s);
                    vectorized += W;
                }
                for (; s < end; ++s) {
                    relaxPgsSlotScalar(ctx, sc, s);
                    ++remainder;
                }
            }
            // Overflow tail: rows beyond the 64-color budget, in
            // original relative order.
            for (std::size_t s = sc.vecRows; s < n; ++s) {
                relaxPgsSlotScalar(ctx, sc, s);
                ++remainder;
            }
        }

        // Scatter lambda and the final friction bounds back to the
        // caller's row order.
        for (std::size_t s = 0; s < n; ++s) {
            const std::size_t r = sc.order[s];
            ctx.lambda[r] = sc.plambda[s];
            ctx.lo[r] = sc.plo[s];
            ctx.hi[r] = sc.phi[s];
        }

        stats.rowsVectorized += vectorized;
        stats.remainderRows += remainder;
    }

    void
    clothIntegrate(const ClothParticlesView &p, const Vec3 &accelTerm,
                   Real damping, KernelStats &stats) const override
    {
        const Pack damp = Pack::broadcast(damping);
        const Pack ax = Pack::broadcast(accelTerm.x);
        const Pack ay = Pack::broadcast(accelTerm.y);
        const Pack az = Pack::broadcast(accelTerm.z);
        const Pack zero = Pack::zero();

        std::size_t i = 0;
        for (; i + W <= p.count; i += W) {
            const auto active =
                Pack::cmpGt(Pack::load(&p.w[i]), zero);
            const Pack px = Pack::load(&p.px[i]);
            const Pack py = Pack::load(&p.py[i]);
            const Pack pz = Pack::load(&p.pz[i]);
            const Pack qx = Pack::load(&p.qx[i]);
            const Pack qy = Pack::load(&p.qy[i]);
            const Pack qz = Pack::load(&p.qz[i]);
            const Pack vx = (px - qx) * damp;
            const Pack vy = (py - qy) * damp;
            const Pack vz = (pz - qz) * damp;
            // previous = position; position += velocity + accel.
            Pack::select(active, px, qx).store(&p.qx[i]);
            Pack::select(active, py, qy).store(&p.qy[i]);
            Pack::select(active, pz, qz).store(&p.qz[i]);
            Pack::select(active, px + (vx + ax), px).store(&p.px[i]);
            Pack::select(active, py + (vy + ay), py).store(&p.py[i]);
            Pack::select(active, pz + (vz + az), pz).store(&p.pz[i]);
        }
        stats.rowsVectorized += i;
        stats.remainderRows += p.count - i;
        for (; i < p.count; ++i) {
            if (p.w[i] == 0.0)
                continue;
            const Real vx = (p.px[i] - p.qx[i]) * damping;
            const Real vy = (p.py[i] - p.qy[i]) * damping;
            const Real vz = (p.pz[i] - p.qz[i]) * damping;
            p.qx[i] = p.px[i];
            p.qy[i] = p.py[i];
            p.qz[i] = p.pz[i];
            p.px[i] = p.px[i] + (vx + accelTerm.x);
            p.py[i] = p.py[i] + (vy + accelTerm.y);
            p.pz[i] = p.pz[i] + (vz + accelTerm.z);
        }
    }

    void
    clothRelax(const ClothParticlesView &p,
               const ClothConstraintsView &c,
               KernelStats &stats) const override
    {
        const Pack zero = Pack::zero();
        const Pack eps = Pack::broadcast(1e-12);
        std::uint64_t vectorized = 0;
        std::uint64_t remainder = 0;

        for (std::size_t col = 0; col < c.colors; ++col) {
            std::size_t s = c.colorOffsets[col];
            const std::size_t end = c.colorOffsets[col + 1];
            for (; s + W <= end; s += W) {
                const Pack pax = Pack::gather(p.px, &c.ca[s]);
                const Pack pay = Pack::gather(p.py, &c.ca[s]);
                const Pack paz = Pack::gather(p.pz, &c.ca[s]);
                const Pack pbx = Pack::gather(p.px, &c.cb[s]);
                const Pack pby = Pack::gather(p.py, &c.cb[s]);
                const Pack pbz = Pack::gather(p.pz, &c.cb[s]);
                const Pack wa = Pack::gather(p.w, &c.ca[s]);
                const Pack wb = Pack::gather(p.w, &c.cb[s]);
                const Pack wsum = wa + wb;
                const Pack dx = pbx - pax;
                const Pack dy = pby - pay;
                const Pack dz = pbz - paz;
                const Pack len =
                    Pack::sqrt(dx * dx + dy * dy + dz * dz);
                const auto active = Pack::cmpGt(wsum, zero) &
                                    Pack::cmpGe(len, eps);
                const Pack rest = Pack::load(&c.crest[s]);
                const Pack diff = (len - rest) / (len * wsum);
                const Pack sa = diff * wa;
                const Pack sb = diff * wb;
                double nax[W], nay[W], naz[W];
                double nbx[W], nby[W], nbz[W];
                (pax + dx * sa).store(nax);
                (pay + dy * sa).store(nay);
                (paz + dz * sa).store(naz);
                (pbx - dx * sb).store(nbx);
                (pby - dy * sb).store(nby);
                (pbz - dz * sb).store(nbz);
                unsigned bits = active.bits();
                for (int l = 0; l < W; ++l) {
                    if (!(bits & (1u << l)))
                        continue;
                    const std::size_t a =
                        static_cast<std::size_t>(c.ca[s + l]);
                    const std::size_t b =
                        static_cast<std::size_t>(c.cb[s + l]);
                    p.px[a] = nax[l];
                    p.py[a] = nay[l];
                    p.pz[a] = naz[l];
                    p.px[b] = nbx[l];
                    p.py[b] = nby[l];
                    p.pz[b] = nbz[l];
                }
                vectorized += W;
            }
            for (; s < end; ++s) {
                relaxClothSlotScalar(p, c, s);
                ++remainder;
            }
        }
        for (std::size_t s = c.vecCount; s < c.count; ++s) {
            relaxClothSlotScalar(p, c, s);
            ++remainder;
        }
        stats.rowsVectorized += vectorized;
        stats.remainderRows += remainder;
    }

    void
    sphereSphereBatch(SphereSphereBatch &b,
                      KernelStats &stats) const override
    {
        const std::size_t n = b.size();
        const Pack eps = Pack::broadcast(1e-12);
        const Pack half = Pack::broadcast(0.5);
        std::size_t i = 0;
        for (; i + W <= n; i += W) {
            const Pack axp = Pack::load(&b.ax[i]);
            const Pack ayp = Pack::load(&b.ay[i]);
            const Pack azp = Pack::load(&b.az[i]);
            const Pack bxp = Pack::load(&b.bx[i]);
            const Pack byp = Pack::load(&b.by[i]);
            const Pack bzp = Pack::load(&b.bz[i]);
            const Pack dx = axp - bxp;
            const Pack dy = ayp - byp;
            const Pack dz = azp - bzp;
            const Pack dist2 = dx * dx + dy * dy + dz * dz;
            const Pack rsum =
                Pack::load(&b.ar[i]) + Pack::load(&b.br[i]);
            const auto hit = Pack::cmpLe(dist2, rsum * rsum);
            const Pack dist = Pack::sqrt(dist2);
            const auto safe = Pack::cmpGt(dist, eps);
            const Pack nx =
                Pack::select(safe, dx / dist, Pack::zero());
            const Pack ny = Pack::select(safe, dy / dist,
                                         Pack::broadcast(1.0));
            const Pack nz =
                Pack::select(safe, dz / dist, Pack::zero());
            const Pack depth = rsum - dist;
            const Pack t = Pack::load(&b.br[i]) - half * depth;
            (bxp + nx * t).store(&b.px[i]);
            (byp + ny * t).store(&b.py[i]);
            (bzp + nz * t).store(&b.pz[i]);
            nx.store(&b.nx[i]);
            ny.store(&b.ny[i]);
            nz.store(&b.nz[i]);
            depth.store(&b.depth[i]);
            const unsigned bits = hit.bits();
            for (int l = 0; l < W; ++l)
                b.hit[i + l] = (bits & (1u << l)) ? 1 : 0;
        }
        stats.rowsVectorized += i;
        stats.remainderRows += n - i;
        for (; i < n; ++i)
            sphereSphereSlotScalar(b, i);
    }

    void
    sphereBoxBatch(SphereBoxBatch &b,
                   KernelStats &stats) const override
    {
        const std::size_t n = b.size();
        const Pack deepEps = Pack::broadcast(1e-18);
        std::size_t i = 0;
        for (; i + W <= n; i += W) {
            const Pack qw = Pack::load(&b.qw[i]);
            const Pack qx = Pack::load(&b.qx[i]);
            const Pack qy = Pack::load(&b.qy[i]);
            const Pack qz = Pack::load(&b.qz[i]);
            const Pack wx = Pack::load(&b.cx[i]) - Pack::load(&b.bx[i]);
            const Pack wy = Pack::load(&b.cy[i]) - Pack::load(&b.by[i]);
            const Pack wz = Pack::load(&b.cz[i]) - Pack::load(&b.bz[i]);
            Pack lx, ly, lz;
            rotate(qw, -qx, -qy, -qz, wx, wy, wz, lx, ly, lz);

            const Pack hx = Pack::load(&b.hx[i]);
            const Pack hy = Pack::load(&b.hy[i]);
            const Pack hz = Pack::load(&b.hz[i]);
            const Pack clx = Pack::min(Pack::max(lx, -hx), hx);
            const Pack cly = Pack::min(Pack::max(ly, -hy), hy);
            const Pack clz = Pack::min(Pack::max(lz, -hz), hz);
            const Pack dx = lx - clx;
            const Pack dy = ly - cly;
            const Pack dz = lz - clz;
            const Pack dist2 = dx * dx + dy * dy + dz * dz;
            const Pack r = Pack::load(&b.cr[i]);
            const auto hit = Pack::cmpLe(dist2, r * r);
            // Deep-center lanes take the branchy nearest-face exit:
            // flag them for the caller's scalar fallback.
            const auto deep = Pack::cmpLe(dist2, deepEps);
            const Pack dist = Pack::sqrt(dist2);
            const Pack nlx = dx / dist;
            const Pack nly = dy / dist;
            const Pack nlz = dz / dist;
            const Pack depth = r - dist;

            Pack pxl, pyl, pzl;
            rotate(qw, qx, qy, qz, clx, cly, clz, pxl, pyl, pzl);
            (pxl + Pack::load(&b.bx[i])).store(&b.px[i]);
            (pyl + Pack::load(&b.by[i])).store(&b.py[i]);
            (pzl + Pack::load(&b.bz[i])).store(&b.pz[i]);
            Pack nxw, nyw, nzw;
            rotate(qw, qx, qy, qz, nlx, nly, nlz, nxw, nyw, nzw);
            nxw.store(&b.nx[i]);
            nyw.store(&b.ny[i]);
            nzw.store(&b.nz[i]);
            depth.store(&b.depth[i]);

            const unsigned hitBits = hit.bits();
            const unsigned deepBits = deep.bits();
            for (int l = 0; l < W; ++l) {
                const unsigned m = 1u << l;
                b.hit[i + l] = (hitBits & m)
                    ? ((deepBits & m) ? 2 : 1)
                    : 0;
            }
        }
        stats.rowsVectorized += i;
        stats.remainderRows += n - i;
        for (; i < n; ++i)
            sphereBoxSlotScalar(b, i);
    }

  private:
    /** One vector pack of the PGS relaxation at slot s. */
    static inline void
    relaxPack(const PgsSweepCtx &ctx, PgsScratch &sc,
              const double *lv, const double *av, const Pack &sor,
              const Pack &half, std::size_t s)
    {
        // Friction bounds: limit = mu * lambda[normal row]. The
        // normal row's color is strictly lower, so its lambda for
        // this sweep is final before any friction lane reads it.
        const auto fric =
            Pack::cmpGt(Pack::load(&sc.pfric[s]), half);
        const Pack limit = Pack::load(&sc.pmu[s]) *
            Pack::gather(sc.plambda.data(), &sc.fricSlot[s]);
        const Pack lo =
            Pack::select(fric, -limit, Pack::load(&sc.plo[s]));
        const Pack hi =
            Pack::select(fric, limit, Pack::load(&sc.phi[s]));
        lo.store(&sc.plo[s]);
        hi.store(&sc.phi[s]);

        // J·v over both bodies. Lanes with a static/absent body
        // gather the zeroed dummy velocity slot, contributing 0.
        // Four independent fused chains (linA/angA/linB/angB) keep
        // the FMA latency off the critical path; fusing is fine
        // here because the PGS contract is tolerance-bounded, not
        // bitwise (the color-major order already reassociates).
        const std::int32_t *ia3 = &sc.idxA3[s];
        const std::int32_t *ib3 = &sc.idxB3[s];
        const Pack jvLinA = Pack::mulAdd(
            Pack::load(&sc.jlaz[s]), Pack::gather(lv + 2, ia3),
            Pack::mulAdd(
                Pack::load(&sc.jlay[s]), Pack::gather(lv + 1, ia3),
                Pack::load(&sc.jlax[s]) * Pack::gather(lv + 0, ia3)));
        const Pack jvAngA = Pack::mulAdd(
            Pack::load(&sc.jaaz[s]), Pack::gather(av + 2, ia3),
            Pack::mulAdd(
                Pack::load(&sc.jaay[s]), Pack::gather(av + 1, ia3),
                Pack::load(&sc.jaax[s]) * Pack::gather(av + 0, ia3)));
        const Pack jvLinB = Pack::mulAdd(
            Pack::load(&sc.jlbz[s]), Pack::gather(lv + 2, ib3),
            Pack::mulAdd(
                Pack::load(&sc.jlby[s]), Pack::gather(lv + 1, ib3),
                Pack::load(&sc.jlbx[s]) * Pack::gather(lv + 0, ib3)));
        const Pack jvAngB = Pack::mulAdd(
            Pack::load(&sc.jabz[s]), Pack::gather(av + 2, ib3),
            Pack::mulAdd(
                Pack::load(&sc.jaby[s]), Pack::gather(av + 1, ib3),
                Pack::load(&sc.jabx[s]) * Pack::gather(av + 0, ib3)));
        const Pack jv = (jvLinA + jvAngA) + (jvLinB + jvAngB);

        const Pack lambda = Pack::load(&sc.plambda[s]);
        const Pack delta = sor *
            (Pack::load(&sc.prhs[s]) - jv -
             Pack::load(&sc.pcfm[s]) * lambda) *
            Pack::load(&sc.pinvDiag[s]);
        const Pack newLambda =
            Pack::min(Pack::max(lambda + delta, lo), hi);
        const Pack dl = newLambda - lambda;
        newLambda.store(&sc.plambda[s]);

        // Impulse scatter: the twelve M·Δλ products are computed in
        // vector registers; only the indexed accumulation into the
        // Vec3 velocity slots stays scalar (AVX2 has no double
        // scatter). Within a color the touched bodies are disjoint,
        // so lanes never race on a slot.
        double dls[W];
        double ilax[W], ilay[W], ilaz[W], iaax[W], iaay[W], iaaz[W];
        double ilbx[W], ilby[W], ilbz[W], iabx[W], iaby[W], iabz[W];
        dl.store(dls);
        (Pack::load(&sc.mlax[s]) * dl).store(ilax);
        (Pack::load(&sc.mlay[s]) * dl).store(ilay);
        (Pack::load(&sc.mlaz[s]) * dl).store(ilaz);
        (Pack::load(&sc.maax[s]) * dl).store(iaax);
        (Pack::load(&sc.maay[s]) * dl).store(iaay);
        (Pack::load(&sc.maaz[s]) * dl).store(iaaz);
        (Pack::load(&sc.mlbx[s]) * dl).store(ilbx);
        (Pack::load(&sc.mlby[s]) * dl).store(ilby);
        (Pack::load(&sc.mlbz[s]) * dl).store(ilbz);
        (Pack::load(&sc.mabx[s]) * dl).store(iabx);
        (Pack::load(&sc.maby[s]) * dl).store(iaby);
        (Pack::load(&sc.mabz[s]) * dl).store(iabz);
        for (int l = 0; l < W; ++l) {
            if (dls[l] == 0.0)
                continue;
            const std::size_t k = s + static_cast<std::size_t>(l);
            const std::int32_t a = sc.bA[k];
            if (a >= 0) {
                Vec3 &lvk = ctx.linVel[a];
                Vec3 &avk = ctx.angVel[a];
                lvk.x += ilax[l];
                lvk.y += ilay[l];
                lvk.z += ilaz[l];
                avk.x += iaax[l];
                avk.y += iaay[l];
                avk.z += iaaz[l];
            }
            const std::int32_t bb = sc.bB[k];
            if (bb >= 0) {
                Vec3 &lvk = ctx.linVel[bb];
                Vec3 &avk = ctx.angVel[bb];
                lvk.x += ilbx[l];
                lvk.y += ilby[l];
                lvk.z += ilbz[l];
                avk.x += iabx[l];
                avk.y += iaby[l];
                avk.z += iabz[l];
            }
        }
    }

    /** Quat::rotate on pack components: v + (u×v*2)*w + u×(u×v*2). */
    static inline void
    rotate(const Pack &qw, const Pack &ux, const Pack &uy,
           const Pack &uz, const Pack &vx, const Pack &vy,
           const Pack &vz, Pack &rx, Pack &ry, Pack &rz)
    {
        const Pack two = Pack::broadcast(2.0);
        const Pack tx = (uy * vz - uz * vy) * two;
        const Pack ty = (uz * vx - ux * vz) * two;
        const Pack tz = (ux * vy - uy * vx) * two;
        rx = (vx + tx * qw) + (uy * tz - uz * ty);
        ry = (vy + ty * qw) + (uz * tx - ux * tz);
        rz = (vz + tz * qw) + (ux * ty - uy * tx);
    }

    const char *name_;
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_KERNELS_NATIVE_IMPL_HH
