/**
 * @file
 * Pluggable kernel backend seam for the SoA hot kernels.
 *
 * The three hottest per-element loops in the engine — the PGS
 * relaxation sweep, cloth constraint relaxation + Verlet
 * integration, and batched sphere/sphere + sphere/box narrowphase —
 * run behind this interface. Two implementations exist:
 *
 *  - Scalar: a verbatim copy of the pre-seam loops. This is the
 *    bitwise-deterministic reference; `tools/state_hash` asserts its
 *    trajectories are identical to the pre-refactor engine on all
 *    benchmark scenes.
 *  - Native: SIMD via the simd_pack wrapper (AVX2 on x86-64, NEON
 *    on aarch64) with runtime CPU dispatch. Elementwise kernels are
 *    bitwise identical per element (no FMA, same IEEE op order);
 *    the relaxation kernels reorder rows through a conflict-free
 *    coloring, so Native trajectories are tolerance-bounded, not
 *    bitwise, against Scalar (DESIGN.md section 13).
 *
 * Backends are stateless singletons; all mutable state lives in
 * caller-owned scratch structs, so one backend instance is safely
 * shared across solver lanes.
 */

#ifndef PARALLAX_PHYSICS_KERNELS_KERNEL_BACKEND_HH
#define PARALLAX_PHYSICS_KERNELS_KERNEL_BACKEND_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "physics/math/quat.hh"
#include "physics/math/vec3.hh"

namespace parallax
{

/** Which kernel implementation a World runs. */
enum class SimdBackend
{
    /** Bitwise-deterministic reference kernels (the default). */
    Scalar,
    /** Vectorized kernels; falls back to Scalar when the host has
     *  neither AVX2 nor NEON. */
    Native,
};

/** Observability counters for the vector engine (merged into the
 *  per-phase stats and surfaced as the kernel.* metrics). */
struct KernelStats
{
    /** Elements processed in full-width SIMD packs (per sweep). */
    std::uint64_t rowsVectorized = 0;
    /** Elements processed by scalar tail/overflow loops (per sweep).
     *  The Scalar backend leaves both counters at zero. */
    std::uint64_t remainderRows = 0;
    /** Contact triplets solved by the fused fp32 fast path (per
     *  solve, not per iteration). Zero when the generic row path
     *  ran instead. */
    std::uint64_t contactUnits = 0;

    void
    reset()
    {
        *this = KernelStats();
    }

    void
    merge(const KernelStats &o)
    {
        rowsVectorized += o.rowsVectorized;
        remainderRows += o.remainderRows;
        contactUnits += o.contactUnits;
    }
};

/**
 * SoA view of one island's constraint rows plus its body working
 * set, as prepared by PgsSolver::solve. `linVel`/`angVel` carry
 * `bodies` + 1 entries: the extra slot is zero and is what body
 * index -1 (static/absent) remaps to in the gather streams, so the
 * vector path needs no per-lane body test on the gather side.
 */
struct PgsSweepCtx
{
    std::size_t rows = 0;
    const Vec3 *jLinA = nullptr, *jAngA = nullptr;
    const Vec3 *jLinB = nullptr, *jAngB = nullptr;
    const Vec3 *mLinA = nullptr, *mAngA = nullptr;
    const Vec3 *mLinB = nullptr, *mAngB = nullptr;
    const Real *rhs = nullptr, *cfm = nullptr, *invDiag = nullptr;
    const Real *mu = nullptr;
    Real *lo = nullptr, *hi = nullptr;   // Friction rows rewrite these.
    Real *lambda = nullptr;
    const int *normalRow = nullptr;      // -1 = not a friction row.
    const int *bodyA = nullptr, *bodyB = nullptr; // -1 = static/none.

    std::size_t bodies = 0;
    Vec3 *linVel = nullptr, *angVel = nullptr; // bodies + 1 entries.

    int iterations = 1;
    Real sor = 1.0;
};

/**
 * Scratch for the fused contact-triplet PGS fast path.
 *
 * A contact emits exactly three rows sharing one body pair — normal,
 * then two tangent friction rows bounded by the normal's lambda
 * (ContactJoint::buildRows). When EVERY row of an island follows
 * that pattern (pgsContactPatternMatches), the Native backends solve
 * per-contact units instead of per-row slots: one lane = one
 * contact, body velocities are gathered once and scattered once per
 * unit per iteration, and the friction rows' J·v terms are corrected
 * in-register through precomputed coupling scalars (c10/c20/c21 =
 * J_fric · M·J of the earlier rows of the same unit) instead of
 * re-reading memory. The unit streams are compressed using the
 * contact structure — jLinB = -jLinA, M·J_lin = jLinA * invMass,
 * friction rhs = 0, one cfm/mu per contact — and stored in fp32:
 * the contact path trades per-lane precision for twice the lane
 * width, which the tolerance-bounded Native contract explicitly
 * allows (DESIGN.md section 13). The Scalar backend never runs this
 * path and stays the bitwise double-precision reference.
 *
 * Units are colored greedily (no two units in a color share a
 * dynamic body) and every color region is padded to a whole number
 * of packs with inert dummy slots (zero Jacobians, velocities
 * gathered from the zeroed dummy body, scatters masked off), so the
 * vector loop has no remainder handling. Units past the 64-color
 * budget go to a scalar tail. The unit coloring is cached keyed on
 * the (bodyA, bodyB) topology and reused while only row values
 * change between solves.
 */
struct PgsContactScratch
{
    // Unit layout. order[slot] = unit index, or kPad for a padding
    // slot. [colorOffsets[c], colorOffsets[c+1]) is color c (padded);
    // [tailStart, tailStart + tailUnits) is the scalar overflow tail.
    static constexpr std::uint32_t kPad = 0xffffffffu;
    std::vector<std::uint32_t> order;
    std::vector<std::uint32_t> colorOffsets; // colors + 1, padded
    std::vector<std::uint32_t> colorCounts;  // real units per color
    std::size_t colors = 0;
    std::size_t units = 0;
    std::size_t tailStart = 0; // == colorOffsets[colors]
    std::size_t tailUnits = 0;

    // Per-unit gather/scatter indices into the fp32 velocity mirror
    // (3 * body, or 3 * bodies for the zeroed dummy slot).
    std::vector<std::int32_t> idxA3, idxB3;

    // fp32 row streams, slot-major. J[r][0..2] = jLinA (jLinB is its
    // negation), J[r][3..5] = jAngA, J[r][6..8] = jAngB. maA/maB =
    // M·J angular parts per row; the linear parts collapse to the
    // per-unit invMass scalars imA/imB.
    std::vector<float> J[3][9];
    std::vector<float> maA[3][3], maB[3][3];
    std::vector<float> imA, imB;
    std::vector<float> rhsN;        // normal rhs (friction rhs == 0)
    std::vector<float> cfmU;        // one cfm per contact
    std::vector<float> mu;          // friction coefficient
    std::vector<float> c10, c20, c21; // row coupling scalars
    std::vector<float> sid[3];      // sor * invDiag per row
    std::vector<float> lam[3];      // lambda per row (lives here
                                    // during the sweep)

    // fp32 mirror of the island body velocities (bodies + 1 slots;
    // the last is the zeroed dummy).
    std::vector<float> lvf, avf;

    // Topology cache: coloring is reused while the island's
    // (bodyA, bodyB) row streams are unchanged.
    std::vector<std::int32_t> topoA, topoB;
    std::size_t topoRows = 0;
    int topoWidth = 0;
    bool topoValid = false;

    // Coloring workspace.
    std::vector<std::uint64_t> bodyColorMask;
    std::vector<std::int32_t> colorOfUnit;
};

/**
 * Persistent per-solver scratch for the Native PGS sweep: the row
 * coloring plus color-major permuted copies of every row stream.
 * Rebuilt each solve (rows change every step), capacity is reused,
 * so the steady-state step stays allocation-free.
 */
struct PgsScratch
{
    /** Scratch for the fused contact fast path (used instead of the
     *  row streams below when the island is all contact triplets). */
    PgsContactScratch contact;
    // Coloring. order[slot] = original row; rows are laid out
    // color-major: [colorOffsets[c], colorOffsets[c+1]) is color c,
    // and [vecRows, rows) is the scalar overflow tail (rows that
    // exceeded the 64-color budget), kept in original relative order.
    std::vector<std::uint32_t> order;
    std::vector<std::uint32_t> slotOf;       // row -> slot
    std::vector<std::uint32_t> colorOffsets; // colors + 1 entries
    std::size_t colors = 0;
    std::size_t vecRows = 0;

    // Coloring workspace.
    std::vector<std::uint64_t> bodyColorMask; // per body
    std::vector<std::int32_t> colorOfRow;     // -1 = overflow

    // Permuted row streams (slot-major).
    std::vector<double> jlax, jlay, jlaz, jaax, jaay, jaaz;
    std::vector<double> jlbx, jlby, jlbz, jabx, jaby, jabz;
    std::vector<double> mlax, mlay, mlaz, maax, maay, maaz;
    std::vector<double> mlbx, mlby, mlbz, mabx, maby, mabz;
    std::vector<double> prhs, pcfm, pinvDiag, pmu;
    std::vector<double> plo, phi, plambda;
    std::vector<double> pfric;               // 1.0 = friction row
    std::vector<std::int32_t> bA, bB;        // body index, -1 = none
    std::vector<std::int32_t> idxA3, idxB3;  // gather index * 3
    std::vector<std::int32_t> fricSlot;      // slot of the normal row
};

/** SoA view of one cloth's particle streams (owned by Cloth). */
struct ClothParticlesView
{
    std::size_t count = 0;
    Real *px = nullptr, *py = nullptr, *pz = nullptr; // position
    Real *qx = nullptr, *qy = nullptr, *qz = nullptr; // previous
    const Real *w = nullptr;                          // invMass
};

/**
 * SoA view of a cloth's distance constraints: the original-order
 * streams (the Scalar backend's bitwise reference order) plus a
 * color-major permutation built once at cloth construction for the
 * Native backend. [vecCount, count) of the colored arrays is the
 * scalar overflow tail.
 */
struct ClothConstraintsView
{
    std::size_t count = 0;
    const std::int32_t *a = nullptr, *b = nullptr;
    const Real *rest = nullptr;
    const std::int32_t *ca = nullptr, *cb = nullptr;
    const Real *crest = nullptr;
    const std::uint32_t *colorOffsets = nullptr;
    std::size_t colors = 0;
    std::size_t vecCount = 0;
};

/** One color-major edge coloring (cloth constraints). */
struct EdgeColoring
{
    std::vector<std::uint32_t> order;        // slot -> original edge
    std::vector<std::uint32_t> colorOffsets; // colors + 1 entries
    std::size_t colors = 0;
    std::size_t vecCount = 0;                // colored prefix length
};

/**
 * Greedy conflict-free coloring of edges (a[i], b[i]) over `nodes`
 * endpoints: no two edges in one color share an endpoint. Edges
 * beyond the 64-color budget land in the overflow tail (original
 * relative order preserved). Stable within each color.
 */
void colorEdges(const std::int32_t *a, const std::int32_t *b,
                std::size_t count, std::size_t nodes,
                EdgeColoring &out);

/** Packed sphere/sphere candidate pairs (slot i = one pair). */
struct SphereSphereBatch
{
    // Inputs: centers + radii, in the narrowphase's canonical order.
    std::vector<double> ax, ay, az, ar;
    std::vector<double> bx, by, bz, br;
    // Outputs: contact point/normal/depth where hit[i] != 0.
    std::vector<double> px, py, pz, nx, ny, nz, depth;
    std::vector<std::uint8_t> hit;

    std::size_t size() const { return ax.size(); }

    void
    clear()
    {
        ax.clear(); ay.clear(); az.clear(); ar.clear();
        bx.clear(); by.clear(); bz.clear(); br.clear();
    }

    void
    push(const Vec3 &ca, Real ra, const Vec3 &cb, Real rb)
    {
        ax.push_back(ca.x); ay.push_back(ca.y); az.push_back(ca.z);
        ar.push_back(ra);
        bx.push_back(cb.x); by.push_back(cb.y); bz.push_back(cb.z);
        br.push_back(rb);
    }

    /** Size the output arrays to match the inputs. */
    void
    prepareOutputs()
    {
        const std::size_t n = size();
        px.resize(n); py.resize(n); pz.resize(n);
        nx.resize(n); ny.resize(n); nz.resize(n);
        depth.resize(n);
        hit.assign(n, 0);
    }
};

/**
 * Packed sphere/box candidate pairs. hit[i] is 0 (miss), 1 (contact
 * written), or 2 (sphere center essentially inside the box — the
 * branchy nearest-face case, left for the caller's scalar fallback).
 * The Scalar backend resolves the deep case inline and never
 * emits 2.
 */
struct SphereBoxBatch
{
    // Sphere center + radius; box rotation (quat), position, half
    // extents.
    std::vector<double> cx, cy, cz, cr;
    std::vector<double> qw, qx, qy, qz;
    std::vector<double> bx, by, bz;
    std::vector<double> hx, hy, hz;
    std::vector<double> px, py, pz, nx, ny, nz, depth;
    std::vector<std::uint8_t> hit;

    std::size_t size() const { return cx.size(); }

    void
    clear()
    {
        cx.clear(); cy.clear(); cz.clear(); cr.clear();
        qw.clear(); qx.clear(); qy.clear(); qz.clear();
        bx.clear(); by.clear(); bz.clear();
        hx.clear(); hy.clear(); hz.clear();
    }

    void
    push(const Vec3 &center, Real radius, const Quat &rot,
         const Vec3 &pos, const Vec3 &half)
    {
        cx.push_back(center.x); cy.push_back(center.y);
        cz.push_back(center.z); cr.push_back(radius);
        qw.push_back(rot.w); qx.push_back(rot.x);
        qy.push_back(rot.y); qz.push_back(rot.z);
        bx.push_back(pos.x); by.push_back(pos.y); bz.push_back(pos.z);
        hx.push_back(half.x); hy.push_back(half.y); hz.push_back(half.z);
    }

    void
    prepareOutputs()
    {
        const std::size_t n = size();
        px.resize(n); py.resize(n); pz.resize(n);
        nx.resize(n); ny.resize(n); nz.resize(n);
        depth.resize(n);
        hit.assign(n, 0);
    }
};

/** The backend seam. Implementations are stateless and const. */
class KernelBackend
{
  public:
    virtual ~KernelBackend() = default;

    virtual SimdBackend kind() const = 0;
    /** Implementation tag for logs/metrics: "scalar", "avx2x4", ... */
    virtual const char *name() const = 0;
    /** Pack width (1 for the scalar backend). */
    virtual int width() const = 0;

    /** Run all `ctx.iterations` PGS relaxation sweeps. */
    virtual void pgsSweep(const PgsSweepCtx &ctx, PgsScratch &scratch,
                          KernelStats &stats) const = 0;

    /** Verlet position integration over the particle streams. */
    virtual void clothIntegrate(const ClothParticlesView &p,
                                const Vec3 &accelTerm, Real damping,
                                KernelStats &stats) const = 0;

    /** One distance-constraint relaxation sweep. */
    virtual void clothRelax(const ClothParticlesView &p,
                            const ClothConstraintsView &c,
                            KernelStats &stats) const = 0;

    /** Batched sphere/sphere tests (outputs must be prepared). */
    virtual void sphereSphereBatch(SphereSphereBatch &b,
                                   KernelStats &stats) const = 0;

    /** Batched sphere/box tests (outputs must be prepared). */
    virtual void sphereBoxBatch(SphereBoxBatch &b,
                                KernelStats &stats) const = 0;
};

/** The bitwise-reference scalar backend (always available). */
const KernelBackend &scalarKernelBackend();

/** True when this build + host can run vectorized kernels. */
bool nativeSimdAvailable();

/**
 * The preferred vector backend for this host, or nullptr when
 * unavailable (build without AVX2/NEON TU, or CPU lacks AVX2).
 */
const KernelBackend *nativeKernelBackend();

/** All compiled vector-backend width variants (for bench/tests);
 *  empty when the host has none. */
std::vector<const KernelBackend *> nativeKernelBackends();

/** Resolve a config choice to a concrete backend. Native silently
 *  degrades to Scalar when unavailable (callers wanting a notice
 *  check nativeSimdAvailable() themselves). */
const KernelBackend &kernelBackendFor(SimdBackend kind);

/**
 * Apply the PAX_SIMD environment override ("scalar" or "native",
 * case-insensitive) used by tools and benches; returns `fallback`
 * when the variable is unset or unrecognized.
 */
SimdBackend simdBackendFromEnv(SimdBackend fallback);

/** Parse a --simd= style value; returns false if unrecognized. */
bool parseSimdBackend(const char *text, SimdBackend &out);

/** Build the coloring + permuted streams for a Native PGS sweep
 *  (exposed for tests; Native backends call it per solve). */
void buildPgsScratch(const PgsSweepCtx &ctx, PgsScratch &scratch);

/** Scalar relaxation of one permuted row slot (tail/overflow path
 *  of the Native sweep). */
void relaxPgsSlotScalar(const PgsSweepCtx &ctx, PgsScratch &sc,
                        std::size_t slot);

/** True when every row of the island is part of a contact triplet
 *  (normal + two friction rows sharing one body pair, friction
 *  rhs 0, shared cfm, jLinB the exact negation of jLinA) — the
 *  precondition for the fused contact fast path. */
bool pgsContactPatternMatches(const PgsSweepCtx &ctx);

/** Build the unit coloring (cached on topology) and the compressed
 *  fp32 unit streams for the contact fast path. `width` is the
 *  vector lane count; every color region is padded to a multiple of
 *  it. Exposed for tests. */
void buildPgsContactScratch(const PgsSweepCtx &ctx,
                            PgsContactScratch &sc, int width);

/** Convert the island body velocities into the scratch's fp32
 *  mirror (call once before the iteration loop). */
void pgsContactLoadVelocities(const PgsSweepCtx &ctx,
                              PgsContactScratch &sc);

/** Write the solved velocities, lambdas and final friction bounds
 *  back to the caller's double-precision arrays. */
void pgsContactStoreResults(const PgsSweepCtx &ctx,
                            PgsContactScratch &sc);

/** Scalar fp32 relaxation of one contact unit slot (overflow tail
 *  of the contact fast path). */
void relaxPgsContactUnitScalar(PgsContactScratch &sc,
                               std::size_t slot);

/** Scalar relaxation of one colored cloth constraint slot. */
void relaxClothSlotScalar(const ClothParticlesView &p,
                          const ClothConstraintsView &c,
                          std::size_t slot);

/** Scalar sphere/sphere test of one batch slot (exact collide.cc
 *  arithmetic). */
void sphereSphereSlotScalar(SphereSphereBatch &b, std::size_t i);

/** Scalar sphere/box test of one batch slot, deep case included. */
void sphereBoxSlotScalar(SphereBoxBatch &b, std::size_t i);

} // namespace parallax

#endif // PARALLAX_PHYSICS_KERNELS_KERNEL_BACKEND_HH
