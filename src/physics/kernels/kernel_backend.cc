/**
 * @file
 * Backend dispatch, row coloring, and the scalar slot helpers shared
 * by every Native width variant. This TU is compiled WITHOUT -mavx2
 * so the shared code never emits instructions the host might lack;
 * only the native_*.cc TUs carry target-specific flags.
 */

#include "kernel_backend.hh"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

namespace parallax
{

// The gather streams index Vec3 arrays as flat double triples.
static_assert(sizeof(Vec3) == 3 * sizeof(Real),
              "Vec3 must be three tightly packed Reals");

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

#if PAX_KERNELS_HAVE_AVX2
// Defined in native_avx2.cc (the only TU built with -mavx2).
const KernelBackend *avx2KernelBackend(int variant);
#endif
#if PAX_KERNELS_HAVE_AVX512
// Defined in native_avx512.cc (the only TU built with -mavx512*).
const KernelBackend *avx512KernelBackend();
#endif
#if PAX_KERNELS_HAVE_NEON
// Defined in native_neon.cc.
const KernelBackend *neonKernelBackend(int variant);
#endif

#if PAX_KERNELS_HAVE_AVX512
static bool
avx512Supported()
{
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512dq") &&
           __builtin_cpu_supports("avx512vl");
}
#endif

bool
nativeSimdAvailable()
{
#if PAX_KERNELS_HAVE_AVX2
    // The AVX2 TU is compiled with -mfma as well (the PGS sweep
    // fuses; every AVX2-era CPU ships FMA, but check anyway).
    return __builtin_cpu_supports("avx2") &&
           __builtin_cpu_supports("fma");
#elif PAX_KERNELS_HAVE_NEON
    return true; // NEON is architectural on aarch64.
#else
    return false;
#endif
}

const KernelBackend *
nativeKernelBackend()
{
#if PAX_KERNELS_HAVE_AVX512
    if (avx512Supported())
        return avx512KernelBackend();
#endif
#if PAX_KERNELS_HAVE_AVX2
    if (nativeSimdAvailable())
        return avx2KernelBackend(0);
#elif PAX_KERNELS_HAVE_NEON
    return neonKernelBackend(0);
#endif
    return nullptr;
}

std::vector<const KernelBackend *>
nativeKernelBackends()
{
    std::vector<const KernelBackend *> all;
#if PAX_KERNELS_HAVE_AVX512
    if (avx512Supported())
        all.push_back(avx512KernelBackend());
#endif
#if PAX_KERNELS_HAVE_AVX2
    if (nativeSimdAvailable()) {
        all.push_back(avx2KernelBackend(0));
        all.push_back(avx2KernelBackend(1));
    }
#elif PAX_KERNELS_HAVE_NEON
    all.push_back(neonKernelBackend(0));
    all.push_back(neonKernelBackend(1));
#endif
    return all;
}

const KernelBackend &
kernelBackendFor(SimdBackend kind)
{
    if (kind == SimdBackend::Native) {
        if (const KernelBackend *native = nativeKernelBackend())
            return *native;
    }
    return scalarKernelBackend();
}

bool
parseSimdBackend(const char *text, SimdBackend &out)
{
    if (text == nullptr)
        return false;
    std::string s(text);
    for (char &c : s)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (s == "scalar") {
        out = SimdBackend::Scalar;
        return true;
    }
    if (s == "native" || s == "simd") {
        out = SimdBackend::Native;
        return true;
    }
    return false;
}

SimdBackend
simdBackendFromEnv(SimdBackend fallback)
{
    SimdBackend parsed;
    if (parseSimdBackend(std::getenv("PAX_SIMD"), parsed))
        return parsed;
    return fallback;
}

// ---------------------------------------------------------------------
// Coloring
// ---------------------------------------------------------------------

void
colorEdges(const std::int32_t *a, const std::int32_t *b,
           std::size_t count, std::size_t nodes, EdgeColoring &out)
{
    std::vector<std::uint64_t> nodeMask(nodes, 0);
    std::vector<std::int32_t> colorOf(count, -1);
    std::size_t counts[64] = {};
    std::size_t maxColor = 0;
    std::size_t overflow = 0;

    for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t used =
            nodeMask[static_cast<std::size_t>(a[i])] |
            nodeMask[static_cast<std::size_t>(b[i])];
        const int c = std::countr_one(used);
        if (c >= 64) {
            ++overflow;
            continue;
        }
        colorOf[i] = c;
        const std::uint64_t bit = std::uint64_t(1) << c;
        nodeMask[static_cast<std::size_t>(a[i])] |= bit;
        nodeMask[static_cast<std::size_t>(b[i])] |= bit;
        ++counts[c];
        maxColor = std::max<std::size_t>(maxColor,
                                         static_cast<std::size_t>(c));
    }

    out.colors = count > overflow ? maxColor + 1 : 0;
    out.vecCount = count - overflow;
    out.colorOffsets.assign(out.colors + 1, 0);
    for (std::size_t c = 0; c < out.colors; ++c)
        out.colorOffsets[c + 1] =
            out.colorOffsets[c] +
            static_cast<std::uint32_t>(counts[c]);

    // Stable counting sort into color-major order; overflow edges
    // keep their original relative order at the tail.
    out.order.resize(count);
    std::vector<std::uint32_t> cursor(out.colorOffsets.begin(),
                                      out.colorOffsets.end() - 1);
    std::uint32_t tail = static_cast<std::uint32_t>(out.vecCount);
    for (std::size_t i = 0; i < count; ++i) {
        if (colorOf[i] < 0)
            out.order[tail++] = static_cast<std::uint32_t>(i);
        else
            out.order[cursor[static_cast<std::size_t>(colorOf[i])]++] =
                static_cast<std::uint32_t>(i);
    }
}

// ---------------------------------------------------------------------
// PGS scratch build
// ---------------------------------------------------------------------

void
buildPgsScratch(const PgsSweepCtx &ctx, PgsScratch &sc)
{
    const std::size_t n = ctx.rows;

    // --- Greedy coloring. Constraints: rows in one color share no
    // dynamic body, and a friction row's color is strictly greater
    // than its normal row's color (its bounds read that row's
    // just-updated lambda, exactly like the original sweep order).
    sc.bodyColorMask.assign(ctx.bodies, 0);
    sc.colorOfRow.assign(n, -1);
    std::size_t counts[64] = {};
    std::size_t maxColor = 0;
    std::size_t overflow = 0;

    for (std::size_t r = 0; r < n; ++r) {
        const int ia = ctx.bodyA[r];
        const int ib = ctx.bodyB[r];
        const int nr = ctx.normalRow[r];
        std::uint64_t used = 0;
        if (ia >= 0)
            used |= sc.bodyColorMask[static_cast<std::size_t>(ia)];
        if (ib >= 0)
            used |= sc.bodyColorMask[static_cast<std::size_t>(ib)];
        if (nr >= 0) {
            // Rows are built normal-before-friction within a joint,
            // so nr < r and its color is already assigned.
            const std::int32_t nc = sc.colorOfRow[nr];
            if (nc < 0) {
                // Normal row overflowed: this friction row must run
                // after it, so it overflows too.
                ++overflow;
                continue;
            }
            if (nc >= 63) {
                ++overflow;
                continue;
            }
            used |= (std::uint64_t(1) << (nc + 1)) - 1;
        }
        const int c = std::countr_one(used);
        if (c >= 64) {
            ++overflow;
            continue;
        }
        sc.colorOfRow[r] = c;
        const std::uint64_t bit = std::uint64_t(1) << c;
        if (ia >= 0)
            sc.bodyColorMask[static_cast<std::size_t>(ia)] |= bit;
        if (ib >= 0)
            sc.bodyColorMask[static_cast<std::size_t>(ib)] |= bit;
        ++counts[c];
        maxColor = std::max<std::size_t>(maxColor,
                                         static_cast<std::size_t>(c));
    }

    sc.colors = n > overflow ? maxColor + 1 : 0;
    sc.vecRows = n - overflow;
    sc.colorOffsets.assign(sc.colors + 1, 0);
    for (std::size_t c = 0; c < sc.colors; ++c)
        sc.colorOffsets[c + 1] =
            sc.colorOffsets[c] + static_cast<std::uint32_t>(counts[c]);

    sc.order.resize(n);
    sc.slotOf.resize(n);
    std::vector<std::uint32_t> cursor(sc.colorOffsets.begin(),
                                      sc.colorOffsets.end() - 1);
    std::uint32_t tail = static_cast<std::uint32_t>(sc.vecRows);
    for (std::size_t r = 0; r < n; ++r) {
        std::uint32_t slot;
        if (sc.colorOfRow[r] < 0)
            slot = tail++;
        else
            slot = cursor[static_cast<std::size_t>(sc.colorOfRow[r])]++;
        sc.order[slot] = static_cast<std::uint32_t>(r);
        sc.slotOf[r] = slot;
    }

    // --- Pack every row stream into slot-major order.
    auto sized = [n](std::vector<double> &v) { v.resize(n); };
    sized(sc.jlax); sized(sc.jlay); sized(sc.jlaz);
    sized(sc.jaax); sized(sc.jaay); sized(sc.jaaz);
    sized(sc.jlbx); sized(sc.jlby); sized(sc.jlbz);
    sized(sc.jabx); sized(sc.jaby); sized(sc.jabz);
    sized(sc.mlax); sized(sc.mlay); sized(sc.mlaz);
    sized(sc.maax); sized(sc.maay); sized(sc.maaz);
    sized(sc.mlbx); sized(sc.mlby); sized(sc.mlbz);
    sized(sc.mabx); sized(sc.maby); sized(sc.mabz);
    sized(sc.prhs); sized(sc.pcfm); sized(sc.pinvDiag); sized(sc.pmu);
    sized(sc.plo); sized(sc.phi); sized(sc.plambda); sized(sc.pfric);
    sc.bA.resize(n); sc.bB.resize(n);
    sc.idxA3.resize(n); sc.idxB3.resize(n);
    sc.fricSlot.resize(n);

    const std::int32_t dummy =
        static_cast<std::int32_t>(ctx.bodies);
    for (std::size_t s = 0; s < n; ++s) {
        const std::size_t r = sc.order[s];
        sc.jlax[s] = ctx.jLinA[r].x;
        sc.jlay[s] = ctx.jLinA[r].y;
        sc.jlaz[s] = ctx.jLinA[r].z;
        sc.jaax[s] = ctx.jAngA[r].x;
        sc.jaay[s] = ctx.jAngA[r].y;
        sc.jaaz[s] = ctx.jAngA[r].z;
        sc.jlbx[s] = ctx.jLinB[r].x;
        sc.jlby[s] = ctx.jLinB[r].y;
        sc.jlbz[s] = ctx.jLinB[r].z;
        sc.jabx[s] = ctx.jAngB[r].x;
        sc.jaby[s] = ctx.jAngB[r].y;
        sc.jabz[s] = ctx.jAngB[r].z;
        sc.mlax[s] = ctx.mLinA[r].x;
        sc.mlay[s] = ctx.mLinA[r].y;
        sc.mlaz[s] = ctx.mLinA[r].z;
        sc.maax[s] = ctx.mAngA[r].x;
        sc.maay[s] = ctx.mAngA[r].y;
        sc.maaz[s] = ctx.mAngA[r].z;
        sc.mlbx[s] = ctx.mLinB[r].x;
        sc.mlby[s] = ctx.mLinB[r].y;
        sc.mlbz[s] = ctx.mLinB[r].z;
        sc.mabx[s] = ctx.mAngB[r].x;
        sc.maby[s] = ctx.mAngB[r].y;
        sc.mabz[s] = ctx.mAngB[r].z;
        sc.prhs[s] = ctx.rhs[r];
        sc.pcfm[s] = ctx.cfm[r];
        sc.pinvDiag[s] = ctx.invDiag[r];
        sc.pmu[s] = ctx.mu[r];
        sc.plo[s] = ctx.lo[r];
        sc.phi[s] = ctx.hi[r];
        sc.plambda[s] = ctx.lambda[r];
        const int ia = ctx.bodyA[r];
        const int ib = ctx.bodyB[r];
        sc.bA[s] = ia;
        sc.bB[s] = ib;
        sc.idxA3[s] = (ia >= 0 ? ia : dummy) * 3;
        sc.idxB3[s] = (ib >= 0 ? ib : dummy) * 3;
        const int nr = ctx.normalRow[r];
        sc.pfric[s] = nr >= 0 ? 1.0 : 0.0;
        sc.fricSlot[s] = nr >= 0
            ? static_cast<std::int32_t>(sc.slotOf[nr])
            : static_cast<std::int32_t>(s);
    }
}

// ---------------------------------------------------------------------
// Contact-triplet fast path (see PgsContactScratch docs)
// ---------------------------------------------------------------------

bool
pgsContactPatternMatches(const PgsSweepCtx &ctx)
{
    const std::size_t n = ctx.rows;
    if (n == 0 || n % 3 != 0)
        return false;
    for (std::size_t r0 = 0; r0 < n; r0 += 3) {
        const int nr = static_cast<int>(r0);
        if (ctx.normalRow[r0] >= 0 || ctx.normalRow[r0 + 1] != nr ||
            ctx.normalRow[r0 + 2] != nr)
            return false;
        if (ctx.bodyA[r0 + 1] != ctx.bodyA[r0] ||
            ctx.bodyA[r0 + 2] != ctx.bodyA[r0] ||
            ctx.bodyB[r0 + 1] != ctx.bodyB[r0] ||
            ctx.bodyB[r0 + 2] != ctx.bodyB[r0])
            return false;
        // Normal clamp is specialized to [0, +inf).
        if (ctx.lo[r0] != 0.0 || ctx.hi[r0] < 1e29)
            return false;
        // Friction rhs is folded out; cfm is per contact.
        if (ctx.rhs[r0 + 1] != 0.0 || ctx.rhs[r0 + 2] != 0.0)
            return false;
        if (ctx.cfm[r0 + 1] != ctx.cfm[r0] ||
            ctx.cfm[r0 + 2] != ctx.cfm[r0])
            return false;
        // The kernel evaluates J·v_lin over (vA - vB), which needs
        // jLinB to be the exact negation of jLinA (how ContactJoint
        // builds its rows). A static/absent B has zero jLinB and a
        // zeroed dummy velocity slot, so the subtraction still holds.
        if (ctx.bodyB[r0] >= 0) {
            for (int r = 0; r < 3; ++r) {
                const Vec3 &ja = ctx.jLinA[r0 + r];
                const Vec3 &jb = ctx.jLinB[r0 + r];
                if (jb.x != -ja.x || jb.y != -ja.y || jb.z != -ja.z)
                    return false;
            }
        }
    }
    return true;
}

namespace
{

/** Recover the scalar invMass from mLin = jLin * invMass using the
 *  largest-magnitude Jacobian component (contact normals/tangents
 *  are unit vectors, so one component is always >= 1/sqrt(3)). */
inline double
invMassFrom(const Vec3 &j, const Vec3 &m)
{
    double best = std::fabs(j.x);
    double im = best > 0.0 ? m.x / j.x : 0.0;
    if (std::fabs(j.y) > best) {
        best = std::fabs(j.y);
        im = m.y / j.y;
    }
    if (std::fabs(j.z) > best)
        im = m.z / j.z;
    return im;
}

/** Full 12-component J_rj · (M·J)_rm dot (the coupling scalars). */
inline double
couplingDot(const PgsSweepCtx &ctx, std::size_t rj, std::size_t rm)
{
    return ctx.jLinA[rj].dot(ctx.mLinA[rm]) +
           ctx.jAngA[rj].dot(ctx.mAngA[rm]) +
           ctx.jLinB[rj].dot(ctx.mLinB[rm]) +
           ctx.jAngB[rj].dot(ctx.mAngB[rm]);
}

} // namespace

void
buildPgsContactScratch(const PgsSweepCtx &ctx, PgsContactScratch &sc,
                       int width)
{
    const std::size_t nu = ctx.rows / 3;
    const std::size_t w = static_cast<std::size_t>(width);
    sc.units = nu;

    // --- Unit coloring, cached on the (bodyA, bodyB) topology.
    // Units only constrain the coloring through their body pair, so
    // a stable contact set (the steady state of a resting pile)
    // rebuilds just the value streams.
    const bool topoHit =
        sc.topoValid && sc.topoRows == ctx.rows &&
        sc.topoWidth == width &&
        std::memcmp(sc.topoA.data(), ctx.bodyA,
                    ctx.rows * sizeof(std::int32_t)) == 0 &&
        std::memcmp(sc.topoB.data(), ctx.bodyB,
                    ctx.rows * sizeof(std::int32_t)) == 0;
    if (!topoHit) {
        sc.topoA.assign(ctx.bodyA, ctx.bodyA + ctx.rows);
        sc.topoB.assign(ctx.bodyB, ctx.bodyB + ctx.rows);
        sc.topoRows = ctx.rows;
        sc.topoWidth = width;

        sc.bodyColorMask.assign(ctx.bodies, 0);
        sc.colorOfUnit.assign(nu, -1);
        std::size_t counts[64] = {};
        std::size_t maxColor = 0;
        std::size_t overflow = 0;
        for (std::size_t u = 0; u < nu; ++u) {
            const int ia = ctx.bodyA[3 * u];
            const int ib = ctx.bodyB[3 * u];
            std::uint64_t used = 0;
            if (ia >= 0)
                used |= sc.bodyColorMask[static_cast<std::size_t>(ia)];
            if (ib >= 0)
                used |= sc.bodyColorMask[static_cast<std::size_t>(ib)];
            const int c = std::countr_one(used);
            if (c >= 64) {
                ++overflow;
                continue;
            }
            sc.colorOfUnit[u] = c;
            const std::uint64_t bit = std::uint64_t(1) << c;
            if (ia >= 0)
                sc.bodyColorMask[static_cast<std::size_t>(ia)] |= bit;
            if (ib >= 0)
                sc.bodyColorMask[static_cast<std::size_t>(ib)] |= bit;
            ++counts[c];
            maxColor = std::max<std::size_t>(
                maxColor, static_cast<std::size_t>(c));
        }

        sc.colors = nu > overflow ? maxColor + 1 : 0;
        sc.tailUnits = overflow;
        sc.colorOffsets.assign(sc.colors + 1, 0);
        sc.colorCounts.assign(sc.colors, 0);
        for (std::size_t c = 0; c < sc.colors; ++c) {
            sc.colorCounts[c] = static_cast<std::uint32_t>(counts[c]);
            // Pad each color to a whole number of packs.
            sc.colorOffsets[c + 1] =
                sc.colorOffsets[c] +
                static_cast<std::uint32_t>((counts[c] + w - 1) / w * w);
        }
        sc.tailStart = sc.colorOffsets[sc.colors];

        const std::size_t total = sc.tailStart + sc.tailUnits;
        sc.order.assign(total, PgsContactScratch::kPad);
        std::vector<std::uint32_t> cursor(sc.colorOffsets.begin(),
                                          sc.colorOffsets.end() - 1);
        std::uint32_t tail = static_cast<std::uint32_t>(sc.tailStart);
        for (std::size_t u = 0; u < nu; ++u) {
            if (sc.colorOfUnit[u] < 0)
                sc.order[tail++] = static_cast<std::uint32_t>(u);
            else
                sc.order[cursor[static_cast<std::size_t>(
                    sc.colorOfUnit[u])]++] =
                    static_cast<std::uint32_t>(u);
        }
        sc.topoValid = true;
    }

    // --- Pack the compressed fp32 unit streams, slot-major.
    const std::size_t total = sc.tailStart + sc.tailUnits;
    for (int r = 0; r < 3; ++r) {
        for (int k = 0; k < 9; ++k)
            sc.J[r][k].resize(total);
        for (int k = 0; k < 3; ++k) {
            sc.maA[r][k].resize(total);
            sc.maB[r][k].resize(total);
        }
        sc.sid[r].resize(total);
        sc.lam[r].resize(total);
    }
    sc.imA.resize(total);
    sc.imB.resize(total);
    sc.rhsN.resize(total);
    sc.cfmU.resize(total);
    sc.mu.resize(total);
    sc.c10.resize(total);
    sc.c20.resize(total);
    sc.c21.resize(total);
    sc.idxA3.resize(total);
    sc.idxB3.resize(total);
    sc.lvf.resize(3 * (ctx.bodies + 1));
    sc.avf.resize(3 * (ctx.bodies + 1));

    const std::int32_t dummy3 =
        3 * static_cast<std::int32_t>(ctx.bodies);
    for (std::size_t s = 0; s < total; ++s) {
        const std::uint32_t u = sc.order[s];
        if (u == PgsContactScratch::kPad) {
            // Inert padding: zero Jacobians, dummy gather slot,
            // masked-off scatter. The lane computes all-zero deltas.
            for (int r = 0; r < 3; ++r) {
                for (int k = 0; k < 9; ++k)
                    sc.J[r][k][s] = 0.0f;
                for (int k = 0; k < 3; ++k) {
                    sc.maA[r][k][s] = 0.0f;
                    sc.maB[r][k][s] = 0.0f;
                }
                sc.sid[r][s] = 0.0f;
                sc.lam[r][s] = 0.0f;
            }
            sc.imA[s] = sc.imB[s] = 0.0f;
            sc.rhsN[s] = sc.cfmU[s] = sc.mu[s] = 0.0f;
            sc.c10[s] = sc.c20[s] = sc.c21[s] = 0.0f;
            sc.idxA3[s] = dummy3;
            sc.idxB3[s] = dummy3;
            continue;
        }
        const std::size_t r0 = 3 * static_cast<std::size_t>(u);
        const int ia = ctx.bodyA[r0];
        const int ib = ctx.bodyB[r0];
        sc.idxA3[s] = ia >= 0 ? 3 * ia : dummy3;
        sc.idxB3[s] = ib >= 0 ? 3 * ib : dummy3;
        for (int r = 0; r < 3; ++r) {
            const std::size_t rr = r0 + static_cast<std::size_t>(r);
            sc.J[r][0][s] = static_cast<float>(ctx.jLinA[rr].x);
            sc.J[r][1][s] = static_cast<float>(ctx.jLinA[rr].y);
            sc.J[r][2][s] = static_cast<float>(ctx.jLinA[rr].z);
            sc.J[r][3][s] = static_cast<float>(ctx.jAngA[rr].x);
            sc.J[r][4][s] = static_cast<float>(ctx.jAngA[rr].y);
            sc.J[r][5][s] = static_cast<float>(ctx.jAngA[rr].z);
            sc.J[r][6][s] = static_cast<float>(ctx.jAngB[rr].x);
            sc.J[r][7][s] = static_cast<float>(ctx.jAngB[rr].y);
            sc.J[r][8][s] = static_cast<float>(ctx.jAngB[rr].z);
            sc.maA[r][0][s] = static_cast<float>(ctx.mAngA[rr].x);
            sc.maA[r][1][s] = static_cast<float>(ctx.mAngA[rr].y);
            sc.maA[r][2][s] = static_cast<float>(ctx.mAngA[rr].z);
            sc.maB[r][0][s] = static_cast<float>(ctx.mAngB[rr].x);
            sc.maB[r][1][s] = static_cast<float>(ctx.mAngB[rr].y);
            sc.maB[r][2][s] = static_cast<float>(ctx.mAngB[rr].z);
            sc.sid[r][s] =
                static_cast<float>(ctx.sor * ctx.invDiag[rr]);
            sc.lam[r][s] = static_cast<float>(ctx.lambda[rr]);
        }
        sc.imA[s] = static_cast<float>(
            invMassFrom(ctx.jLinA[r0], ctx.mLinA[r0]));
        sc.imB[s] = ib >= 0 ? static_cast<float>(invMassFrom(
                                  ctx.jLinB[r0], ctx.mLinB[r0]))
                            : 0.0f;
        sc.rhsN[s] = static_cast<float>(ctx.rhs[r0]);
        sc.cfmU[s] = static_cast<float>(ctx.cfm[r0]);
        sc.mu[s] = static_cast<float>(ctx.mu[r0 + 1]);
        sc.c10[s] = static_cast<float>(couplingDot(ctx, r0 + 1, r0));
        sc.c20[s] = static_cast<float>(couplingDot(ctx, r0 + 2, r0));
        sc.c21[s] =
            static_cast<float>(couplingDot(ctx, r0 + 2, r0 + 1));
    }
}

void
pgsContactLoadVelocities(const PgsSweepCtx &ctx, PgsContactScratch &sc)
{
    const double *lv = reinterpret_cast<const double *>(ctx.linVel);
    const double *av = reinterpret_cast<const double *>(ctx.angVel);
    const std::size_t n = 3 * (ctx.bodies + 1);
    for (std::size_t i = 0; i < n; ++i) {
        sc.lvf[i] = static_cast<float>(lv[i]);
        sc.avf[i] = static_cast<float>(av[i]);
    }
}

void
pgsContactStoreResults(const PgsSweepCtx &ctx, PgsContactScratch &sc)
{
    double *lv = reinterpret_cast<double *>(ctx.linVel);
    double *av = reinterpret_cast<double *>(ctx.angVel);
    const std::size_t n = 3 * ctx.bodies; // dummy slot stays zero
    for (std::size_t i = 0; i < n; ++i) {
        lv[i] = static_cast<double>(sc.lvf[i]);
        av[i] = static_cast<double>(sc.avf[i]);
    }
    const std::size_t total = sc.tailStart + sc.tailUnits;
    for (std::size_t s = 0; s < total; ++s) {
        const std::uint32_t u = sc.order[s];
        if (u == PgsContactScratch::kPad)
            continue;
        const std::size_t r0 = 3 * static_cast<std::size_t>(u);
        const double lamN = static_cast<double>(sc.lam[0][s]);
        ctx.lambda[r0] = lamN;
        ctx.lambda[r0 + 1] = static_cast<double>(sc.lam[1][s]);
        ctx.lambda[r0 + 2] = static_cast<double>(sc.lam[2][s]);
        // Mirror the scalar sweep's observable side effect: friction
        // bounds end at the last iteration's +-mu*lambda_normal.
        const double limit = static_cast<double>(sc.mu[s]) * lamN;
        ctx.lo[r0 + 1] = -limit;
        ctx.hi[r0 + 1] = limit;
        ctx.lo[r0 + 2] = -limit;
        ctx.hi[r0 + 2] = limit;
    }
}

void
relaxPgsContactUnitScalar(PgsContactScratch &sc, std::size_t s)
{
    float *lvf = sc.lvf.data();
    float *avf = sc.avf.data();
    const std::int32_t iA = sc.idxA3[s];
    const std::int32_t iB = sc.idxB3[s];
    float vAl[3], vAa[3], vBl[3], vBa[3];
    for (int k = 0; k < 3; ++k) {
        vAl[k] = lvf[iA + k];
        vAa[k] = avf[iA + k];
        vBl[k] = lvf[iB + k];
        vBa[k] = avf[iB + k];
    }
    const float dvl[3] = {vAl[0] - vBl[0], vAl[1] - vBl[1],
                          vAl[2] - vBl[2]};
    float jv[3];
    for (int r = 0; r < 3; ++r) {
        jv[r] = sc.J[r][0][s] * dvl[0] + sc.J[r][1][s] * dvl[1] +
                sc.J[r][2][s] * dvl[2] + sc.J[r][3][s] * vAa[0] +
                sc.J[r][4][s] * vAa[1] + sc.J[r][5][s] * vAa[2] +
                sc.J[r][6][s] * vBa[0] + sc.J[r][7][s] * vBa[1] +
                sc.J[r][8][s] * vBa[2];
    }
    const float cfm = sc.cfmU[s];
    // Normal: clamp to [0, +inf).
    const float lamN = sc.lam[0][s];
    float d = (sc.rhsN[s] - cfm * lamN - jv[0]) * sc.sid[0][s];
    const float newN = std::max(lamN + d, 0.0f);
    const float dl0 = newN - lamN;
    sc.lam[0][s] = newN;
    const float limit = sc.mu[s] * newN;
    // Friction rows: rhs == 0, J·v corrected by the coupling
    // scalars, symmetric clamp against the fresh normal lambda.
    const float lamF = sc.lam[1][s];
    d = lamF -
        (jv[1] + sc.c10[s] * dl0 + cfm * lamF) * sc.sid[1][s];
    const float newF = std::min(std::max(d, -limit), limit);
    const float dl1 = newF - lamF;
    sc.lam[1][s] = newF;
    const float lamG = sc.lam[2][s];
    d = lamG - (jv[2] + sc.c20[s] * dl0 + sc.c21[s] * dl1 +
                cfm * lamG) *
                   sc.sid[2][s];
    const float newG = std::min(std::max(d, -limit), limit);
    const float dl2 = newG - lamG;
    sc.lam[2][s] = newG;
    // Combined velocity update, written back once per unit.
    const std::int32_t dummy3 =
        static_cast<std::int32_t>(sc.lvf.size() - 3);
    for (int k = 0; k < 3; ++k) {
        const float P = sc.J[0][k][s] * dl0 + sc.J[1][k][s] * dl1 +
                        sc.J[2][k][s] * dl2;
        vAl[k] += sc.imA[s] * P;
        vBl[k] -= sc.imB[s] * P;
        vAa[k] += sc.maA[0][k][s] * dl0 + sc.maA[1][k][s] * dl1 +
                  sc.maA[2][k][s] * dl2;
        vBa[k] += sc.maB[0][k][s] * dl0 + sc.maB[1][k][s] * dl1 +
                  sc.maB[2][k][s] * dl2;
    }
    if (iA != dummy3) {
        for (int k = 0; k < 3; ++k) {
            lvf[iA + k] = vAl[k];
            avf[iA + k] = vAa[k];
        }
    }
    if (iB != dummy3) {
        for (int k = 0; k < 3; ++k) {
            lvf[iB + k] = vBl[k];
            avf[iB + k] = vBa[k];
        }
    }
}

// ---------------------------------------------------------------------
// Scalar slot helpers (Native tail/overflow paths)
// ---------------------------------------------------------------------

void
relaxPgsSlotScalar(const PgsSweepCtx &ctx, PgsScratch &sc,
                   std::size_t s)
{
    if (sc.pfric[s] > 0.5) {
        const double limit =
            sc.pmu[s] *
            sc.plambda[static_cast<std::size_t>(sc.fricSlot[s])];
        sc.plo[s] = -limit;
        sc.phi[s] = limit;
    }

    const std::int32_t ia = sc.bA[s];
    const std::int32_t ib = sc.bB[s];
    double jv = 0.0;
    if (ia >= 0) {
        const Vec3 &lv = ctx.linVel[ia];
        const Vec3 &av = ctx.angVel[ia];
        jv += sc.jlax[s] * lv.x + sc.jlay[s] * lv.y +
              sc.jlaz[s] * lv.z + sc.jaax[s] * av.x +
              sc.jaay[s] * av.y + sc.jaaz[s] * av.z;
    }
    if (ib >= 0) {
        const Vec3 &lv = ctx.linVel[ib];
        const Vec3 &av = ctx.angVel[ib];
        jv += sc.jlbx[s] * lv.x + sc.jlby[s] * lv.y +
              sc.jlbz[s] * lv.z + sc.jabx[s] * av.x +
              sc.jaby[s] * av.y + sc.jabz[s] * av.z;
    }

    const double delta =
        ctx.sor * (sc.prhs[s] - jv - sc.pcfm[s] * sc.plambda[s]) *
        sc.pinvDiag[s];
    const double new_lambda =
        std::clamp(sc.plambda[s] + delta, sc.plo[s], sc.phi[s]);
    const double dl = new_lambda - sc.plambda[s];
    sc.plambda[s] = new_lambda;
    if (dl == 0.0)
        return;

    if (ia >= 0) {
        Vec3 &lv = ctx.linVel[ia];
        Vec3 &av = ctx.angVel[ia];
        lv.x += sc.mlax[s] * dl;
        lv.y += sc.mlay[s] * dl;
        lv.z += sc.mlaz[s] * dl;
        av.x += sc.maax[s] * dl;
        av.y += sc.maay[s] * dl;
        av.z += sc.maaz[s] * dl;
    }
    if (ib >= 0) {
        Vec3 &lv = ctx.linVel[ib];
        Vec3 &av = ctx.angVel[ib];
        lv.x += sc.mlbx[s] * dl;
        lv.y += sc.mlby[s] * dl;
        lv.z += sc.mlbz[s] * dl;
        av.x += sc.mabx[s] * dl;
        av.y += sc.maby[s] * dl;
        av.z += sc.mabz[s] * dl;
    }
}

void
relaxClothSlotScalar(const ClothParticlesView &p,
                     const ClothConstraintsView &c, std::size_t s)
{
    const std::size_t a = static_cast<std::size_t>(c.ca[s]);
    const std::size_t b = static_cast<std::size_t>(c.cb[s]);
    const Real wa = p.w[a];
    const Real wb = p.w[b];
    const Real wsum = wa + wb;
    if (wsum == 0.0)
        return;
    const Real dx = p.px[b] - p.px[a];
    const Real dy = p.py[b] - p.py[a];
    const Real dz = p.pz[b] - p.pz[a];
    const Real len = std::sqrt(dx * dx + dy * dy + dz * dz);
    if (len < 1e-12)
        return;
    const Real diff = (len - c.crest[s]) / (len * wsum);
    const Real sa = diff * wa;
    const Real sb = diff * wb;
    p.px[a] += dx * sa;
    p.py[a] += dy * sa;
    p.pz[a] += dz * sa;
    p.px[b] -= dx * sb;
    p.py[b] -= dy * sb;
    p.pz[b] -= dz * sb;
}

void
sphereSphereSlotScalar(SphereSphereBatch &b, std::size_t i)
{
    // Mirrors collide.cc sphereSphere() exactly.
    const double dx = b.ax[i] - b.bx[i];
    const double dy = b.ay[i] - b.by[i];
    const double dz = b.az[i] - b.bz[i];
    const double dist2 = dx * dx + dy * dy + dz * dz;
    const double rsum = b.ar[i] + b.br[i];
    if (dist2 > rsum * rsum) {
        b.hit[i] = 0;
        return;
    }
    const double dist = std::sqrt(dist2);
    double nx_, ny_, nz_;
    if (dist > 1e-12) {
        nx_ = dx / dist;
        ny_ = dy / dist;
        nz_ = dz / dist;
    } else {
        nx_ = 0.0;
        ny_ = 1.0;
        nz_ = 0.0;
    }
    const double depth = rsum - dist;
    const double t = b.br[i] - 0.5 * depth;
    b.px[i] = b.bx[i] + nx_ * t;
    b.py[i] = b.by[i] + ny_ * t;
    b.pz[i] = b.bz[i] + nz_ * t;
    b.nx[i] = nx_;
    b.ny[i] = ny_;
    b.nz[i] = nz_;
    b.depth[i] = depth;
    b.hit[i] = 1;
}

namespace
{

/** v + t*w + u×t with u = (ux,uy,uz), t = u×v * 2 — the exact
 *  Quat::rotate arithmetic on explicit components. */
inline void
quatRotate(double qw, double ux, double uy, double uz, double vx,
           double vy, double vz, double &rx, double &ry, double &rz)
{
    const double tx = (uy * vz - uz * vy) * 2.0;
    const double ty = (uz * vx - ux * vz) * 2.0;
    const double tz = (ux * vy - uy * vx) * 2.0;
    rx = (vx + tx * qw) + (uy * tz - uz * ty);
    ry = (vy + ty * qw) + (uz * tx - ux * tz);
    rz = (vz + tz * qw) + (ux * ty - uy * tx);
}

} // namespace

void
sphereBoxSlotScalar(SphereBoxBatch &b, std::size_t i)
{
    // Mirrors collide.cc sphereBox() exactly (deep case included).
    const double qw = b.qw[i], qx_ = b.qx[i], qy_ = b.qy[i],
                 qz_ = b.qz[i];
    const double wx = b.cx[i] - b.bx[i];
    const double wy = b.cy[i] - b.by[i];
    const double wz = b.cz[i] - b.bz[i];
    // applyInverse: rotate by the conjugate.
    double lx, ly, lz;
    quatRotate(qw, -qx_, -qy_, -qz_, wx, wy, wz, lx, ly, lz);

    const double hx_ = b.hx[i], hy_ = b.hy[i], hz_ = b.hz[i];
    const double clx = std::clamp(lx, -hx_, hx_);
    const double cly = std::clamp(ly, -hy_, hy_);
    const double clz = std::clamp(lz, -hz_, hz_);
    const double dx = lx - clx;
    const double dy = ly - cly;
    const double dz = lz - clz;
    const double dist2 = dx * dx + dy * dy + dz * dz;
    const double r = b.cr[i];
    if (dist2 > r * r) {
        b.hit[i] = 0;
        return;
    }

    double nlx, nly, nlz, depth;
    if (dist2 > 1e-18) {
        const double dist = std::sqrt(dist2);
        nlx = dx / dist;
        nly = dy / dist;
        nlz = dz / dist;
        depth = r - dist;
    } else {
        const double ex = hx_ - std::fabs(lx);
        const double ey = hy_ - std::fabs(ly);
        const double ez = hz_ - std::fabs(lz);
        if (ex <= ey && ex <= ez) {
            nlx = lx >= 0 ? 1.0 : -1.0;
            nly = 0.0;
            nlz = 0.0;
            depth = ex + r;
        } else if (ey <= ez) {
            nlx = 0.0;
            nly = ly >= 0 ? 1.0 : -1.0;
            nlz = 0.0;
            depth = ey + r;
        } else {
            nlx = 0.0;
            nly = 0.0;
            nlz = lz >= 0 ? 1.0 : -1.0;
            depth = ez + r;
        }
    }

    double pxw, pyw, pzw;
    quatRotate(qw, qx_, qy_, qz_, clx, cly, clz, pxw, pyw, pzw);
    b.px[i] = pxw + b.bx[i];
    b.py[i] = pyw + b.by[i];
    b.pz[i] = pzw + b.bz[i];
    double nxw, nyw, nzw;
    quatRotate(qw, qx_, qy_, qz_, nlx, nly, nlz, nxw, nyw, nzw);
    b.nx[i] = nxw;
    b.ny[i] = nyw;
    b.nz[i] = nzw;
    b.depth[i] = depth;
    b.hit[i] = 1;
}

} // namespace parallax
