/**
 * @file
 * AVX-512 instantiations of the native kernels. This is the ONLY TU
 * compiled with -mavx512f/dq/vl (see src/physics/CMakeLists.txt);
 * callers reach it through avx512KernelBackend() and only after the
 * runtime __builtin_cpu_supports checks in kernel_backend.cc, so no
 * AVX-512 instruction ever executes on a host without the feature.
 *
 * The double-precision Pack stays the W=8 AVX2 pair (512-bit doubles
 * buy nothing on the generic path here); what AVX-512 adds is the
 * fp32 contact fast path at W=16 with native gather/scatter and
 * mask registers, which is where the contact-heavy PGS time goes.
 */

#include "native_impl.hh"

#if !defined(__AVX512F__) || !defined(__AVX512DQ__) ||                \
    !defined(__AVX512VL__)
#error "native_avx512.cc must be compiled with -mavx512f/dq/vl"
#endif

namespace parallax
{

/** fp32 ops policy: 16 lanes, native gather/scatter, __mmask16. */
struct FOpsAvx512 {
    static constexpr int W = 16;
    using R = __m512;
    using I = __m512i;
    using M = __mmask16;

    static I idx(const std::int32_t *p)
    {
        return _mm512_loadu_si512(p);
    }
    static M valid(I i, std::int32_t dummy3)
    {
        return _mm512_cmpneq_epi32_mask(
            i, _mm512_set1_epi32(dummy3));
    }
    static R gather(const float *base, I i)
    {
        return _mm512_i32gather_ps(i, base, 4);
    }
    static void scatter(float *base, I i, M m, R v)
    {
        _mm512_mask_i32scatter_ps(base, m, i, v, 4);
    }
    static R load(const float *p) { return _mm512_loadu_ps(p); }
    static void store(float *p, R v) { _mm512_storeu_ps(p, v); }
    static R zero() { return _mm512_setzero_ps(); }
    static R add(R a, R b) { return _mm512_add_ps(a, b); }
    static R sub(R a, R b) { return _mm512_sub_ps(a, b); }
    static R mul(R a, R b) { return _mm512_mul_ps(a, b); }
    static R min(R a, R b) { return _mm512_min_ps(a, b); }
    static R max(R a, R b) { return _mm512_max_ps(a, b); }
    static R fmadd(R a, R b, R c)
    {
        return _mm512_fmadd_ps(a, b, c);
    }
    static R fnmadd(R a, R b, R c)
    {
        return _mm512_fnmadd_ps(a, b, c);
    }
};

const KernelBackend *
avx512KernelBackend()
{
    static const NativeBackend<PackX2<PackAvx2>, FOpsAvx512> w(
        "avx512");
    return &w;
}

} // namespace parallax
