/**
 * @file
 * NEON instantiations of the native kernels (aarch64 only; NEON is
 * architectural there, so no runtime dispatch is needed).
 */

#include "native_impl.hh"

#if !defined(__aarch64__)
#error "native_neon.cc is aarch64-only"
#endif

namespace parallax
{

const KernelBackend *
neonKernelBackend(int variant)
{
    static const NativeBackend<PackNeon> w2("neonx2");
    static const NativeBackend<PackX2<PackNeon>> w4("neonx4");
    return variant == 0 ? static_cast<const KernelBackend *>(&w4)
                        : static_cast<const KernelBackend *>(&w2);
}

} // namespace parallax
