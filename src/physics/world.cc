#include "world.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "sim/logging.hh"

namespace parallax
{

const char *
pipelinePhaseName(PipelinePhase phase)
{
    switch (phase) {
      case PipelinePhase::Broadphase: return "broadphase";
      case PipelinePhase::Narrowphase: return "narrowphase";
      case PipelinePhase::IslandCreation: return "island_creation";
      case PipelinePhase::IslandProcessing:
        return "island_processing";
      case PipelinePhase::Cloth: return "cloth";
    }
    return "unknown";
}

double
StepStats::totalSeconds() const
{
    double total = 0;
    for (double s : phaseSeconds)
        total += s;
    return total;
}

void
StepStats::reset()
{
    // Field-wise, not `*this = StepStats()`: the vectors must keep
    // their capacity so a steady-state step allocates nothing here.
    broadphase.reset();
    narrowphase.reset();
    island.reset();
    solver.reset();
    cloth.reset();
    effects.reset();
    pairsFound = 0;
    contactsCreated = 0;
    contactJointsCreated = 0;
    jointsBroken = 0;
    islandsToWorkQueue = 0;
    islandsOnMainThread = 0;
    clothColliderInsertions = 0;
    islandsAsleep = 0;
    bodiesAsleep = 0;
    parTasksExecuted = 0;
    parTasksStolen = 0;
    arenaBytesUsed = 0;
    arenaHighWaterBytes = 0;
    arenaGrowths = 0;
    laneTasks.clear();
    phaseSeconds.fill(0.0);
    governor = GovernorStats();
    faultsInjected = 0;
    quarantineEvents = 0;
    islands.clear();
    clothVertexCounts.clear();
}

std::vector<std::string>
WorldConfig::validate() const
{
    std::vector<std::string> errors;
    auto check = [&errors](bool ok, std::string msg) {
        if (!ok)
            errors.push_back(std::move(msg));
    };
    check(std::isfinite(dt) && dt > 0,
          "dt must be positive and finite (got " +
              std::to_string(dt) + ")");
    check(solverIterations >= 1,
          "solverIterations must be >= 1 (got " +
              std::to_string(solverIterations) + ")");
    check(clothIterations >= 1,
          "clothIterations must be >= 1 (got " +
              std::to_string(clothIterations) + ")");
    check(islandWorkQueueThreshold >= 0,
          "islandWorkQueueThreshold must be >= 0 (got " +
              std::to_string(islandWorkQueueThreshold) + ")");
    check(workerThreads <= 1024,
          "workerThreads must be <= 1024 (got " +
              std::to_string(workerThreads) + ")");
    check(grainSize >= 1,
          "grainSize must be >= 1 (got " +
              std::to_string(grainSize) + ")");
    check(arenaBlockBytes >= 1024,
          "arenaBlockBytes must be >= 1024 (got " +
              std::to_string(arenaBlockBytes) + ")");
    check(std::isfinite(erp) && erp >= 0 && erp <= 1,
          "erp must be in [0, 1] (got " + std::to_string(erp) + ")");
    check(std::isfinite(cfm) && cfm >= 0,
          "cfm must be >= 0 (got " + std::to_string(cfm) + ")");
    check(std::isfinite(gravity.x) && std::isfinite(gravity.y) &&
              std::isfinite(gravity.z),
          "gravity must be finite");
    // isfinite matters here: +inf passes a bare `>= 0` test and a
    // +inf threshold makes every island sleep on its first calm
    // step, silently freezing the scene.
    check(std::isfinite(sleepLinearVelocity) &&
              sleepLinearVelocity >= 0,
          "sleepLinearVelocity must be >= 0 and finite (got " +
              std::to_string(sleepLinearVelocity) + ")");
    check(std::isfinite(sleepAngularVelocity) &&
              sleepAngularVelocity >= 0,
          "sleepAngularVelocity must be >= 0 and finite (got " +
              std::to_string(sleepAngularVelocity) + ")");
    check(sleepSteps >= 1,
          "sleepSteps must be >= 1 (got " +
              std::to_string(sleepSteps) + ")");
    check(std::isfinite(frameBudget) && frameBudget >= 0,
          "frameBudget must be >= 0 and finite (got " +
              std::to_string(frameBudget) + ")");
    check(governor.frameSubsteps >= 1,
          "governor.frameSubsteps must be >= 1 (got " +
              std::to_string(governor.frameSubsteps) + ")");
    check(governor.solverIterationFloor >= 1,
          "governor.solverIterationFloor must be >= 1 (got " +
              std::to_string(governor.solverIterationFloor) + ")");
    check(governor.clothIterationFloor >= 1,
          "governor.clothIterationFloor must be >= 1 (got " +
              std::to_string(governor.clothIterationFloor) + ")");
    check(std::isfinite(governor.hysteresis) &&
              governor.hysteresis >= 0 && governor.hysteresis < 1,
          "governor.hysteresis must be in [0, 1) (got " +
              std::to_string(governor.hysteresis) + ")");
    check(governor.recoverySteps >= 1,
          "governor.recoverySteps must be >= 1 (got " +
              std::to_string(governor.recoverySteps) + ")");
    check(std::isfinite(governor.deferVelocity) &&
              governor.deferVelocity >= 0,
          "governor.deferVelocity must be >= 0 and finite (got " +
              std::to_string(governor.deferVelocity) + ")");
    check(quarantineThawSteps >= 0,
          "quarantineThawSteps must be >= 0 (got " +
              std::to_string(quarantineThawSteps) + ")");
    check(quarantineMaxRetries >= 0,
          "quarantineMaxRetries must be >= 0 (got " +
              std::to_string(quarantineMaxRetries) + ")");
    check(std::isfinite(quarantineRetryDtScale) &&
              quarantineRetryDtScale > 0 &&
              quarantineRetryDtScale <= 1,
          "quarantineRetryDtScale must be in (0, 1] (got " +
              std::to_string(quarantineRetryDtScale) + ")");
    check(quarantineProbationSteps >= 1,
          "quarantineProbationSteps must be >= 1 (got " +
              std::to_string(quarantineProbationSteps) + ")");
    for (const FaultEvent &e : faultPlan.events) {
        check(std::isfinite(e.magnitude),
              std::string("faultPlan magnitude must be finite (") +
                  faultKindName(e.kind) + " at step " +
                  std::to_string(e.step) + ")");
    }
    check((!checkInvariants && invariantMode == InvariantMode::Off) ||
              !snapshotDir.empty(),
          "snapshotDir must be non-empty when invariant checking "
          "is enabled");
    return errors;
}

namespace
{

/** Reject invalid configs before any subsystem sees them. */
WorldConfig
validatedConfig(WorldConfig config)
{
    const std::vector<std::string> errors = config.validate();
    if (!errors.empty()) {
        std::string joined;
        for (const std::string &e : errors) {
            if (!joined.empty())
                joined += "; ";
            joined += e;
        }
        fatal("invalid WorldConfig: %s", joined.c_str());
    }
    return config;
}

} // namespace

World::World(WorldConfig config)
    : config_(validatedConfig(std::move(config))),
      solver_(config_.solverIterations),
      scheduler_(SchedulerConfig{config_.workerThreads,
                                 config_.grainSize,
                                 config_.deterministic,
                                 config_.arenaBlockBytes}),
      governor_(config_.frameBudget, config_.governor,
                config_.solverIterations, config_.clothIterations),
      plan_(governor_.planForLevel(0))
{
    switch (config_.broadphase) {
      case BroadphaseKind::SweepAndPrune:
        broadphase_ = std::make_unique<SweepAndPrune>();
        break;
      case BroadphaseKind::SpatialHash:
        broadphase_ = std::make_unique<SpatialHash>();
        break;
    }
    // The broadphase runs on the calling thread: lend it lane 0's
    // frame arena for its step-transient cell storage.
    broadphase_->setFrameArena(&scheduler_.arena(0));
    // Resolve the kernel backend once: PAX_SIMD overrides the config,
    // and Native degrades to Scalar on hosts without SIMD support.
    kernelBackend_ =
        &kernelBackendFor(simdBackendFromEnv(config_.simdBackend));
    solver_.setBackend(kernelBackend_);
    narrowphase_.setBackend(kernelBackend_);
    // One persistent solver and narrowphase per lane; their
    // workspaces warm up once and are reused every step after.
    laneSolvers_.reserve(scheduler_.laneCount());
    for (unsigned i = 0; i < scheduler_.laneCount(); ++i) {
        laneSolvers_.emplace_back(config_.solverIterations);
        laneSolvers_.back().setBackend(kernelBackend_);
    }
    npLocals_.resize(scheduler_.laneCount());
    for (Narrowphase &local : npLocals_)
        local.setBackend(kernelBackend_);
    trace_.configure(scheduler_.laneCount(), config_.tracing);
}

World::~World() = default;

const SphereShape *
World::addSphere(Real radius)
{
    shapes_.push_back(std::make_unique<SphereShape>(radius));
    return static_cast<const SphereShape *>(shapes_.back().get());
}

const BoxShape *
World::addBox(const Vec3 &half_extents)
{
    shapes_.push_back(std::make_unique<BoxShape>(half_extents));
    return static_cast<const BoxShape *>(shapes_.back().get());
}

const CapsuleShape *
World::addCapsule(Real radius, Real half_height)
{
    shapes_.push_back(
        std::make_unique<CapsuleShape>(radius, half_height));
    return static_cast<const CapsuleShape *>(shapes_.back().get());
}

const PlaneShape *
World::addPlane(const Vec3 &normal, Real offset)
{
    shapes_.push_back(std::make_unique<PlaneShape>(normal, offset));
    return static_cast<const PlaneShape *>(shapes_.back().get());
}

const HeightfieldShape *
World::addHeightfield(std::vector<Real> heights, int nx, int nz,
                      Real spacing)
{
    shapes_.push_back(std::make_unique<HeightfieldShape>(
        std::move(heights), nx, nz, spacing));
    return static_cast<const HeightfieldShape *>(shapes_.back().get());
}

const TriMeshShape *
World::addTriMesh(std::vector<Vec3> vertices,
                  std::vector<TriMeshShape::Triangle> triangles)
{
    shapes_.push_back(std::make_unique<TriMeshShape>(
        std::move(vertices), std::move(triangles)));
    return static_cast<const TriMeshShape *>(shapes_.back().get());
}

RigidBody *
World::createBody(const Transform &pose, Real mass, const Mat3 &inertia)
{
    const auto id = static_cast<BodyId>(bodies_.size());
    bodies_.push_back(
        std::make_unique<RigidBody>(id, pose, mass, inertia));
    bodyPtrs_.push_back(bodies_.back().get());
    return bodies_.back().get();
}

RigidBody *
World::createDynamicBody(const Transform &pose, const Shape &shape,
                         Real density)
{
    const Real volume = shape.volume();
    if (volume <= 0)
        fatal("cannot derive mass from an unbounded shape");
    const Real mass = density * volume;
    const Mat3 inertia = shape.unitInertia() * mass;
    return createBody(pose, mass, inertia);
}

RigidBody *
World::createStaticBody(const Transform &pose)
{
    const auto id = static_cast<BodyId>(bodies_.size());
    bodies_.push_back(std::make_unique<RigidBody>(
        RigidBody::makeStatic(id, pose)));
    bodyPtrs_.push_back(bodies_.back().get());
    return bodies_.back().get();
}

Geom *
World::createGeom(const Shape *shape, RigidBody *body,
                  const Transform &local)
{
    const auto id = static_cast<GeomId>(geoms_.size());
    geoms_.push_back(std::make_unique<Geom>(id, shape, body, local));
    return geoms_.back().get();
}

void
World::rememberConnected(const RigidBody *a, const RigidBody *b)
{
    if (a == nullptr || b == nullptr)
        return;
    const std::uint64_t lo = std::min(a->id(), b->id());
    const std::uint64_t hi = std::max(a->id(), b->id());
    connectedPairs_.insert((lo << 32) | hi);
}

bool
World::connectedByJoint(const RigidBody *a, const RigidBody *b) const
{
    if (a == nullptr || b == nullptr)
        return false;
    const std::uint64_t lo = std::min(a->id(), b->id());
    const std::uint64_t hi = std::max(a->id(), b->id());
    return connectedPairs_.count((lo << 32) | hi) != 0;
}

BallJoint *
World::createBallJoint(RigidBody *a, RigidBody *b, const Vec3 &anchor)
{
    const auto id = static_cast<JointId>(joints_.size());
    joints_.push_back(std::make_unique<BallJoint>(id, a, b, anchor));
    rememberConnected(a, b);
    return static_cast<BallJoint *>(joints_.back().get());
}

HingeJoint *
World::createHingeJoint(RigidBody *a, RigidBody *b, const Vec3 &anchor,
                        const Vec3 &axis)
{
    const auto id = static_cast<JointId>(joints_.size());
    joints_.push_back(
        std::make_unique<HingeJoint>(id, a, b, anchor, axis));
    rememberConnected(a, b);
    return static_cast<HingeJoint *>(joints_.back().get());
}

SliderJoint *
World::createSliderJoint(RigidBody *a, RigidBody *b, const Vec3 &axis)
{
    const auto id = static_cast<JointId>(joints_.size());
    joints_.push_back(std::make_unique<SliderJoint>(id, a, b, axis));
    rememberConnected(a, b);
    return static_cast<SliderJoint *>(joints_.back().get());
}

FixedJoint *
World::createFixedJoint(RigidBody *a, RigidBody *b)
{
    const auto id = static_cast<JointId>(joints_.size());
    joints_.push_back(std::make_unique<FixedJoint>(id, a, b));
    rememberConnected(a, b);
    return static_cast<FixedJoint *>(joints_.back().get());
}

Cloth *
World::createCloth(int nx, int ny, const Vec3 &origin, Real spacing,
                   Real mass)
{
    const auto id = static_cast<ClothId>(cloths_.size());
    cloths_.push_back(
        std::make_unique<Cloth>(id, nx, ny, origin, spacing, mass));
    return cloths_.back().get();
}

void
World::attachClothParticle(Cloth *cloth, std::uint32_t particle,
                           RigidBody *body, const Vec3 &local_point)
{
    parallax_assert(cloth != nullptr && body != nullptr);
    cloth->pin(particle);
    clothAttachments_.push_back(
        ClothAttachment{cloth, particle, body, local_point});
}

std::optional<RayHit>
World::raycast(const Ray &ray, Real max_t) const
{
    std::optional<RayHit> best;
    Real limit = max_t;
    for (const auto &g : geoms_) {
        if (!g->enabled() || g->isBlast())
            continue;
        const auto hit =
            raycastShape(g->shape(), g->worldPose(), ray, limit);
        if (hit && (!best || hit->t < best->t)) {
            best = hit;
            best->geom = g->id();
            limit = hit->t; // Narrow the search as we go.
        }
    }
    return best;
}

RigidBody *
World::body(BodyId id)
{
    return id < bodies_.size() ? bodies_[id].get() : nullptr;
}

const RigidBody *
World::body(BodyId id) const
{
    return id < bodies_.size() ? bodies_[id].get() : nullptr;
}

Geom *
World::geom(GeomId id)
{
    return id < geoms_.size() ? geoms_[id].get() : nullptr;
}

const Geom *
World::geom(GeomId id) const
{
    return id < geoms_.size() ? geoms_[id].get() : nullptr;
}

Joint *
World::joint(JointId id)
{
    return id < joints_.size() ? joints_[id].get() : nullptr;
}

void
World::fillStats(StatGroup &group) const
{
    const StepStats &s = stepStats_;
    group.counter("pairs_found").set(
        static_cast<double>(s.pairsFound));
    group.counter("contacts_created").set(
        static_cast<double>(s.contactsCreated));
    group.counter("contact_joints").set(
        static_cast<double>(s.contactJointsCreated));
    group.counter("islands").set(
        static_cast<double>(s.islands.size()));
    group.counter("solver_rows").set(
        static_cast<double>(s.solver.rowsBuilt));
    group.counter("solver_row_iterations").set(
        static_cast<double>(s.solver.rowIterations));
    group.counter("cloth_vertices").set(
        static_cast<double>(s.cloth.verticesIntegrated));
    group.counter("joints_broken").set(
        static_cast<double>(s.jointsBroken));
    group.counter("bodies_asleep").set(
        static_cast<double>(s.bodiesAsleep));
    Distribution &rows = group.distribution("island_rows");
    rows.reset();
    for (const IslandSummary &island : s.islands)
        rows.sample(island.rows);

    // Work-stealing scheduler: per-worker execution counters.
    group.counter("par_workers").set(
        static_cast<double>(scheduler_.workerCount()));
    group.counter("par_tasks_executed").set(
        static_cast<double>(s.parTasksExecuted));
    group.counter("par_tasks_stolen").set(
        static_cast<double>(s.parTasksStolen));
    // Per-step lane deltas (StepStats::laneTasks), not the
    // scheduler's cumulative counters: sampling the latter made the
    // "last step" distribution grow with run length.
    Distribution &per_lane = group.distribution("par_lane_tasks");
    per_lane.reset();
    for (const LaneStats &lane : s.laneTasks)
        per_lane.sample(static_cast<double>(lane.chunksExecuted));

    // Real-time governor and fault containment.
    group.counter("governor_ladder_level").set(
        static_cast<double>(s.governor.ladderLevel));
    group.counter("governor_solver_iterations").set(
        static_cast<double>(s.governor.solverIterations));
    group.counter("governor_cloth_iterations").set(
        static_cast<double>(s.governor.clothIterations));
    group.counter("governor_degradations").set(
        static_cast<double>(s.governor.degradations));
    group.counter("governor_recoveries").set(
        static_cast<double>(s.governor.recoveries));
    group.counter("governor_deadline_misses").set(
        static_cast<double>(s.governor.deadlineMisses));
    group.counter("governor_pairs_deferred").set(
        static_cast<double>(s.governor.pairsDeferred));
    group.counter("faults_injected").set(
        static_cast<double>(s.faultsInjected));
    group.counter("invariant_violations").set(
        static_cast<double>(invariantViolations_));
    group.counter("quarantine_events").set(
        static_cast<double>(quarantineEvents_));
    group.counter("bodies_quarantined").set(
        static_cast<double>(quarantinedBodies_.size()));
}

void
World::step()
{
    const InvariantMode mode = effectiveInvariantMode();

    // Frozen islands whose thaw time arrived re-enter the world (on
    // probation) before anything else looks at them this step.
    processQuarantineThaws();

    // With invariant checking on, keep a pre-step snapshot so a
    // violation at the end of this step can be dumped and replayed
    // in exactly one step.
    if (mode != InvariantMode::Off)
        preStepSnapshot_ = captureState();
    // Under Quarantine, also keep a cheap last-good backup: the state
    // a faulting island is restored to when it is frozen (the frozen
    // pose must be sane, not the corrupted one that tripped the
    // checker).
    if (mode == InvariantMode::Quarantine)
        captureLastGood();

    // Plan this step's quality from the previous step's measured (or
    // mocked) total. One ladder rung at most, either direction. An
    // external degradation floor (server shedder / recovery ladder)
    // clamps the plan to at least its rung, governor or no governor.
    plan_ = governor_.planStep(lastStepSeconds_);
    if (degradationFloor_ > plan_.level)
        plan_ = governor_.planForLevel(degradationFloor_);
    effects_.setThrottled(plan_.throttleEffects);

    scheduler_.laneStats(lanesBefore_);

    stepStats_.reset();
    broadphase_->resetStats();
    narrowphase_.resetStats();
    islandBuilder_.resetStats();
    solver_.resetStats();
    // Substep barrier: rewind every lane's frame arena. All arena
    // memory handed out during the previous step dies here.
    scheduler_.resetArenas();
    // Effects stats are cumulative across the run (blasts and
    // fractures are one-shot events, not per-step rates).
    pairsDeferredThisStep_ = 0;

    // Scripted body/scheduler faults fire after the backup above, so
    // quarantine restores pre-fault state.
    injectScriptedFaults();

    // 2(a): apply external forces (gravity).
    for (const auto &body : bodies_) {
        if (!body->isStatic() && body->enabled() && !body->asleep())
            body->applyForce(config_.gravity * body->mass());
    }

    const std::uint64_t tasks_before = scheduler_.tasksExecuted();
    const std::uint64_t steals_before = scheduler_.tasksStolen();
    using Clock = std::chrono::steady_clock;
    // One span per pipeline phase, bracketing exactly the interval
    // the phaseSeconds timer measures; the enclosing "step" span is
    // recorded at the end of step() below.
    const double step_begin_us =
        trace_.enabled() ? trace_.nowUs() : 0.0;
    auto timed = [this](PipelinePhase phase, auto &&fn) {
        const bool tracing = trace_.enabled();
        const double span_begin = tracing ? trace_.nowUs() : 0.0;
        const Clock::time_point t0 = Clock::now();
        fn();
        stepStats_.phaseSeconds[static_cast<int>(phase)] =
            std::chrono::duration<double>(Clock::now() - t0).count();
        if (tracing) {
            trace_.recordSpan(0, pipelinePhaseName(phase), stepCount_,
                              span_begin, trace_.nowUs());
        }
    };

    timed(PipelinePhase::Broadphase, [this] { phaseBroadphase(); });
    timed(PipelinePhase::Narrowphase, [this] { phaseNarrowphase(); });

    // Scripted contact corruption lands on the narrowphase output.
    injectContactFaults();

    // 2(c).ii-iv: explosion triggers, fracture triggers, blast ticks.
    effects_.onContacts(*this, lastContacts_);
    effects_.update(*this, config_.dt);

    timed(PipelinePhase::IslandCreation,
          [this] { phaseIslandCreation(); });
    timed(PipelinePhase::IslandProcessing,
          [this] { phaseIslandProcessing(); });
    timed(PipelinePhase::Cloth, [this] { phaseCloth(); });

    stepStats_.parTasksExecuted =
        scheduler_.tasksExecuted() - tasks_before;
    stepStats_.parTasksStolen =
        scheduler_.tasksStolen() - steals_before;
    // Per-lane deltas for this step, taken after the last phase
    // barrier (all workers are parked, so the reads race nothing).
    scheduler_.laneStats(lanesAfter_);
    stepStats_.laneTasks.resize(lanesAfter_.size());
    for (std::size_t i = 0; i < lanesAfter_.size(); ++i) {
        stepStats_.laneTasks[i].chunksExecuted =
            lanesAfter_[i].chunksExecuted -
            lanesBefore_[i].chunksExecuted;
        stepStats_.laneTasks[i].rangesStolen =
            lanesAfter_[i].rangesStolen - lanesBefore_[i].rangesStolen;
        stepStats_.laneTasks[i].itemsProcessed =
            lanesAfter_[i].itemsProcessed -
            lanesBefore_[i].itemsProcessed;
    }

    // Frame-arena accounting for this step (the arenas were rewound
    // at the top of step(), so frameBytes is this step's total).
    stepStats_.arenaBytesUsed = scheduler_.arenaFrameBytes();
    stepStats_.arenaHighWaterBytes = scheduler_.arenaHighWaterBytes();
    const std::uint64_t arena_growths = scheduler_.arenaGrowths();
    stepStats_.arenaGrowths = arena_growths - lastArenaGrowths_;
    lastArenaGrowths_ = arena_growths;

    // Collect stats snapshots.
    stepStats_.broadphase = broadphase_->stats();
    stepStats_.narrowphase = narrowphase_.stats();
    stepStats_.island = islandBuilder_.stats();
    stepStats_.solver = solver_.stats();
    stepStats_.effects = effects_.stats();

    // Feed measured per-item narrowphase cost back into the grain
    // model — but never in deterministic mode, where chunk
    // boundaries must stay a pure function of counts and the
    // committed seeds (wall clock must not leak into tiling).
    if (!config_.deterministic && stepStats_.pairsFound > 0) {
        npCost_.observe(
            stepStats_.pairsFound,
            stepStats_.phaseSeconds[static_cast<int>(
                PipelinePhase::Narrowphase)]);
    }

    // Mocked clock (governor determinism tests): the injected
    // schedule replaces the measured phase timers wholesale, so
    // every downstream consumer — the governor above all — sees a
    // reproducible timeline.
    if (config_.mockPhaseTime) {
        for (int p = 0; p < numPipelinePhases; ++p) {
            stepStats_.phaseSeconds[p] = config_.mockPhaseTime(
                stepCount_, static_cast<PipelinePhase>(p));
        }
    }
    lastStepSeconds_ = stepStats_.totalSeconds();
    governor_.finishStep(lastStepSeconds_, pairsDeferredThisStep_);
    stepStats_.governor = governor_.stats();
    // When an external floor overrode the governor's plan, publish
    // the quality actually applied, not the rung the governor's own
    // ladder sits at (its internal state is untouched).
    if (degradationFloor_ > stepStats_.governor.ladderLevel) {
        stepStats_.governor.ladderLevel = plan_.level;
        stepStats_.governor.solverIterations = plan_.solverIterations;
        stepStats_.governor.clothIterations = plan_.clothIterations;
        stepStats_.governor.narrowphaseDeferral =
            plan_.deferNarrowphase;
        stepStats_.governor.effectsThrottled = plan_.throttleEffects;
    }

    for (const auto &body : bodies_)
        body->clearAccumulators();
    time_ += config_.dt;

    if (mode != InvariantMode::Off) {
        const std::vector<InvariantViolation> violations =
            validateInvariants();
        if (!violations.empty())
            handleViolations(violations, mode);
    }

    updateMetrics();
    if (trace_.enabled()) {
        recordStepTraceCounters();
        trace_.recordSpan(0, "step", stepCount_, step_begin_us,
                          trace_.nowUs());
    }
    ++stepCount_;
}

void
World::recordStepTraceCounters()
{
    const StepStats &s = stepStats_;
    trace_.recordCounter("pairs", stepCount_,
                         static_cast<double>(s.pairsFound));
    trace_.recordCounter("contacts", stepCount_,
                         static_cast<double>(s.contactsCreated));
    trace_.recordCounter("islands", stepCount_,
                         static_cast<double>(s.islands.size()));
    trace_.recordCounter("bodies_asleep", stepCount_,
                         static_cast<double>(s.bodiesAsleep));
    trace_.recordCounter("governor_rung", stepCount_,
                         static_cast<double>(s.governor.ladderLevel));
    trace_.recordCounter("tasks_stolen", stepCount_,
                         static_cast<double>(s.parTasksStolen));
    trace_.recordCounter("quarantined_bodies", stepCount_,
                         static_cast<double>(
                             quarantinedBodies_.size()));
    trace_.recordCounter("arena_bytes", stepCount_,
                         static_cast<double>(s.arenaBytesUsed));
    trace_.recordCounter("solver_reuse", stepCount_,
                         static_cast<double>(
                             s.solver.workspaceReuses));
    // Per-lane scheduler load: one counter track per lane, sourced
    // from the per-step deltas merged at the last phase barrier.
    for (std::size_t i = 0; i < s.laneTasks.size(); ++i) {
        trace_.recordCounter("lane_chunks", stepCount_,
                             static_cast<double>(
                                 s.laneTasks[i].chunksExecuted),
                             static_cast<std::int64_t>(i));
        trace_.recordCounter("lane_steals", stepCount_,
                             static_cast<double>(
                                 s.laneTasks[i].rangesStolen),
                             static_cast<std::int64_t>(i));
    }
}

void
World::updateMetrics()
{
    const StepStats &s = stepStats_;
    // Monotonic counters: run totals.
    metrics_.add("steps", 1.0);
    metrics_.add("pairs_found",
                 static_cast<double>(s.pairsFound));
    metrics_.add("contacts_created",
                 static_cast<double>(s.contactsCreated));
    metrics_.add("contact_joints",
                 static_cast<double>(s.contactJointsCreated));
    metrics_.add("joints_broken",
                 static_cast<double>(s.jointsBroken));
    metrics_.add("tasks_executed",
                 static_cast<double>(s.parTasksExecuted));
    metrics_.add("tasks_stolen",
                 static_cast<double>(s.parTasksStolen));
    metrics_.add("governor_degradations",
                 static_cast<double>(s.governor.degradations) -
                     metrics_.value("governor_degradations"));
    metrics_.add("governor_recoveries",
                 static_cast<double>(s.governor.recoveries) -
                     metrics_.value("governor_recoveries"));
    metrics_.add("deadline_misses",
                 static_cast<double>(s.governor.deadlineMisses) -
                     metrics_.value("deadline_misses"));
    metrics_.add("pairs_deferred",
                 static_cast<double>(s.governor.pairsDeferred) -
                     metrics_.value("pairs_deferred"));
    metrics_.add("faults_injected",
                 static_cast<double>(s.faultsInjected));
    metrics_.add("invariant_violations",
                 static_cast<double>(invariantViolations_) -
                     metrics_.value("invariant_violations"));
    metrics_.add("quarantine_events",
                 static_cast<double>(quarantineEvents_) -
                     metrics_.value("quarantine_events"));
    metrics_.add("trace_events_dropped",
                 static_cast<double>(trace_.droppedEvents()) -
                     metrics_.value("trace_events_dropped"));
    // Allocation-free hot path: arena block allocations this step
    // (zero once warm) and solver workspace reuse events.
    metrics_.add("arena.growths",
                 static_cast<double>(s.arenaGrowths));
    metrics_.add("solver.reuse",
                 static_cast<double>(s.solver.workspaceReuses));
    // Vector-engine counters, summed across the solver, cloth and
    // narrowphase kernels (all zero under the Scalar backend).
    // Registry-only: metricsLine() keys are a frozen format.
    metrics_.add("kernel.rows_vectorized",
                 static_cast<double>(s.solver.kernels.rowsVectorized +
                                     s.cloth.kernels.rowsVectorized +
                                     s.narrowphase.kernels
                                         .rowsVectorized));
    metrics_.add("kernel.remainder_rows",
                 static_cast<double>(s.solver.kernels.remainderRows +
                                     s.cloth.kernels.remainderRows +
                                     s.narrowphase.kernels
                                         .remainderRows));
    // Contact triplets routed through the fused fp32 fast path
    // (solver-only; zero when islands fall back to the generic
    // per-row sweep or under the Scalar backend).
    metrics_.add("kernel.contact_units",
                 static_cast<double>(s.solver.kernels.contactUnits));
    metrics_.set("kernel.width",
                 static_cast<double>(kernelBackend_->width()));
    // Gauges: the latest observation.
    metrics_.set("arena.high_water_bytes",
                 static_cast<double>(s.arenaHighWaterBytes));
    metrics_.set("governor_rung",
                 static_cast<double>(s.governor.ladderLevel));
    metrics_.set("islands",
                 static_cast<double>(s.islands.size()));
    metrics_.set("islands_asleep",
                 static_cast<double>(s.islandsAsleep));
    metrics_.set("bodies_asleep",
                 static_cast<double>(s.bodiesAsleep));
    metrics_.set("bodies_quarantined",
                 static_cast<double>(quarantinedBodies_.size()));
    metrics_.set("workers",
                 static_cast<double>(scheduler_.workerCount()));
}

std::string
World::metricsLine() const
{
    // Fixed key order, deterministic values only (no wall-clock, no
    // lane counters): in deterministic mode this line is identical
    // for any worker count. Consumers key on "pax_metrics".
    const StepStats &s = stepStats_;
    auto u64 = [](std::uint64_t v) { return std::to_string(v); };
    // With a metrics scope set (the server's "world.<id>"), every
    // key except the "pax_metrics" format marker gains the prefix;
    // without one the bytes are identical to prior releases.
    const std::string pfx =
        metricsScope_.empty() ? std::string() : metricsScope_ + ".";
    auto key = [&pfx](const char *k) {
        return ",\"" + pfx + k + "\":";
    };
    std::string out = "{\"pax_metrics\":1";
    out += key("step") + u64(stepCount_ > 0 ? stepCount_ - 1 : 0);
    out += key("steps_total") + u64(stepCount_);
    out += key("pairs") + u64(s.pairsFound);
    out += key("contacts") + u64(s.contactsCreated);
    out += key("contact_joints") + u64(s.contactJointsCreated);
    out += key("islands") + u64(s.islands.size());
    out += key("islands_asleep") + u64(s.islandsAsleep);
    out += key("bodies_asleep") + u64(s.bodiesAsleep);
    out += key("joints_broken") + u64(s.jointsBroken);
    out += key("cloth_vertices") + u64(s.cloth.verticesIntegrated);
    out += key("governor_rung") +
           std::to_string(s.governor.ladderLevel);
    out += key("pairs_deferred") + u64(s.governor.pairsDeferred);
    out += key("faults_injected") + u64(s.faultsInjected);
    out += key("quarantine_events") + u64(s.quarantineEvents);
    out += key("violations_total") + u64(invariantViolations_);
    out += key("quarantines_total") + u64(quarantineEvents_);
    out += "}";
    return out;
}

RenderState
World::renderState() const
{
    RenderState state;
    state.time = time_;
    state.bodies.reserve(bodies_.size());
    for (const auto &b : bodies_) {
        RenderPose pose;
        pose.position = b->position();
        pose.orientation = b->pose().rotation;
        state.bodies.push_back(pose);
    }
    state.cloths.reserve(cloths_.size());
    for (const auto &c : cloths_) {
        std::vector<Vec3> pts;
        pts.reserve(c->particles().size());
        for (const Cloth::Particle &p : c->particles())
            pts.push_back(p.position);
        state.cloths.push_back(std::move(pts));
    }
    return state;
}

RenderState
World::interpolate(const RenderState &a, const RenderState &b,
                   double phase)
{
    // The endpoints return their input bitwise: a display sampling
    // exactly on a tick boundary must see the simulated state, not a
    // lerp that rounded through it.
    if (!(phase > 0.0))
        return a;
    if (phase >= 1.0)
        return b;

    const Real t = static_cast<Real>(phase);
    RenderState out;
    out.time = a.time + (b.time - a.time) * phase;

    const std::size_t nb = std::min(a.bodies.size(), b.bodies.size());
    out.bodies.reserve(nb);
    for (std::size_t i = 0; i < nb; ++i) {
        const RenderPose &pa = a.bodies[i];
        const RenderPose &pb = b.bodies[i];
        RenderPose p;
        p.position = pa.position + (pb.position - pa.position) * t;
        // Shortest-path normalized quaternion lerp: q and -q encode
        // the same rotation, so flip the target when the dot product
        // is negative or the blend takes the long way around.
        Quat qb = pb.orientation;
        const Real dot =
            pa.orientation.w * qb.w + pa.orientation.x * qb.x +
            pa.orientation.y * qb.y + pa.orientation.z * qb.z;
        if (dot < 0) {
            qb.w = -qb.w;
            qb.x = -qb.x;
            qb.y = -qb.y;
            qb.z = -qb.z;
        }
        const Real s = 1 - t;
        const Quat blended{s * pa.orientation.w + t * qb.w,
                           s * pa.orientation.x + t * qb.x,
                           s * pa.orientation.y + t * qb.y,
                           s * pa.orientation.z + t * qb.z};
        p.orientation = blended.normalized();
        out.bodies.push_back(p);
    }

    const std::size_t nc = std::min(a.cloths.size(), b.cloths.size());
    out.cloths.reserve(nc);
    for (std::size_t i = 0; i < nc; ++i) {
        const std::vector<Vec3> &ca = a.cloths[i];
        const std::vector<Vec3> &cb = b.cloths[i];
        const std::size_t np = std::min(ca.size(), cb.size());
        std::vector<Vec3> pts;
        pts.reserve(np);
        for (std::size_t j = 0; j < np; ++j)
            pts.push_back(ca[j] + (cb[j] - ca[j]) * t);
        out.cloths.push_back(std::move(pts));
    }
    return out;
}

std::string
World::writeTrace(const std::string &path) const
{
    if (!trace_.enabled())
        return "tracing is disabled (set WorldConfig::tracing)";
    return trace_.writeChromeJson(path);
}

InvariantMode
World::effectiveInvariantMode() const
{
    if (config_.invariantMode != InvariantMode::Off)
        return config_.invariantMode;
    return config_.checkInvariants ? InvariantMode::HardFail
                                   : InvariantMode::Off;
}

void
World::handleViolations(
    const std::vector<InvariantViolation> &violations,
    InvariantMode mode)
{
    invariantViolations_ += violations.size();
    if (mode == InvariantMode::HardFail) {
        if (!deferHardFail_)
            failInvariants(violations);
        deferHardFailure(violations);
        return;
    }

    for (const InvariantViolation &v : violations) {
        warn("invariant [%s] (%s): %s", v.code.c_str(),
             invariantModeName(mode), v.message.c_str());
    }

    if (mode == InvariantMode::Warn) {
        // One snapshot per run is enough to replay the first failure;
        // a persistent violation must not fill the disk.
        if (!warnSnapshotWritten_) {
            warnSnapshotWritten_ = true;
            dumpViolationSnapshot("invariant");
        }
        return;
    }

    // Quarantine. Structural violations (a broken island partition,
    // contacts without pairs) cannot be pinned to one island —
    // containment has no target, so they stay fatal.
    for (const InvariantViolation &v : violations) {
        if (!v.attributable() && v.code != "truncated") {
            warn("invariant [%s] is not attributable to an island; "
                 "quarantine cannot contain it",
                 v.code.c_str());
            if (!deferHardFail_)
                failInvariants(violations);
            deferHardFailure(violations);
            return;
        }
    }
    for (const InvariantViolation &v : violations) {
        if (v.body >= 0)
            quarantineBody(static_cast<BodyId>(v.body), v.code);
        else if (v.cloth >= 0)
            quarantineCloth(static_cast<ClothId>(v.cloth), v.code);
    }
}

void
World::deferHardFailure(
    const std::vector<InvariantViolation> &violations)
{
    // Sticky: the first failure names the world sick until a
    // supervisor rolls it back (restoreState clears the code). Log
    // and snapshot once — a persistently broken hosted world must
    // not spam per step while it waits out the recovery backoff.
    if (!hardFailCode_.empty())
        return;
    hardFailCode_ = violations[0].code;
    for (const InvariantViolation &v : violations) {
        warn("invariant [%s] (deferred hard-fail): %s",
             v.code.c_str(), v.message.c_str());
    }
    dumpViolationSnapshot("invariant");
    if (trace_.enabled())
        trace_.recordInstant("invariant_hardfail", stepCount_, 0);
}

void
World::setDegradationFloor(int rung)
{
    degradationFloor_ =
        std::clamp(rung, 0, StepGovernor::maxLadderLevel);
}

std::size_t
World::permanentQuarantineCount() const
{
    std::size_t n = 0;
    for (const auto &[id, state] : quarantinedBodies_) {
        (void)id;
        n += state.permanent ? 1 : 0;
    }
    for (std::size_t i = 0; i < clothQuarantined_.size(); ++i)
        n += clothQuarantined_[i] ? 1 : 0;
    return n;
}

void
World::markRecoveryEvent(const char *name, std::int64_t detail)
{
    if (trace_.enabled())
        trace_.recordInstant(name, stepCount_, detail);
}

void
World::quarantineBody(BodyId id, const std::string &code)
{
    if (quarantinedBodies_.count(id) != 0)
        return; // Island already frozen by an earlier violation.

    // retryCount_ counts thaws already spent on this body. Once they
    // reach quarantineMaxRetries (or thawing is disabled), the next
    // freeze is permanent.
    const auto spent = retryCount_.find(id);
    const int retries =
        spent != retryCount_.end() ? spent->second : 0;
    const bool permanent = config_.quarantineThawSteps <= 0 ||
                           retries >= config_.quarantineMaxRetries;

    // Freeze the whole island: the violation already propagated
    // through its joints this step, so island-mates are suspect too.
    std::vector<RigidBody *> members;
    const std::uint32_t island = bodies_[id]->islandId();
    if (island != ~std::uint32_t(0) &&
        island < lastIslandList_.size()) {
        members = lastIslandList_[island].bodies;
    } else {
        members.push_back(bodies_[id].get());
    }

    for (RigidBody *member : members) {
        if (member->isStatic())
            continue;
        // Bodies spawned mid-step (blast anchors are static, so this
        // is belt-and-braces) have no backup; freeze them as-is.
        if (member->id() < lastGood_.size()) {
            member->setPose(lastGood_[member->id()].pose);
        }
        member->setLinearVelocity({});
        member->setAngularVelocity({});
        member->clearAccumulators();
        member->setEnabled(false);
        member->setSleepState(false, 0);
        quarantinedBodies_[member->id()] =
            QuarantineState{stepCount_, permanent};
        probationUntil_.erase(member->id());
    }

    ++quarantineEvents_;
    ++stepStats_.quarantineEvents;
    if (trace_.enabled()) {
        trace_.recordInstant("quarantine_body", stepCount_,
                             static_cast<std::int64_t>(id));
    }
    quarantineRecords_.push_back(QuarantineRecord{
        stepCount_, static_cast<std::int64_t>(id), -1, code,
        permanent});
    warn("quarantined island of body %u (%zu bodies) after [%s] "
         "at step %llu%s",
         id, members.size(), code.c_str(),
         static_cast<unsigned long long>(stepCount_),
         permanent ? " (permanent)" : "");
    // A handful of replayable snapshots per run, not one per event.
    if (quarantineEvents_ <= 4)
        dumpViolationSnapshot("quarantine");
}

void
World::quarantineCloth(ClothId id, const std::string &code)
{
    if (clothQuarantined_.size() < cloths_.size())
        clothQuarantined_.resize(cloths_.size(), false);
    if (clothQuarantined_[id])
        return;
    // Cloths have no island/retry machinery: restore last-good
    // particles and freeze for the rest of the run.
    cloths_[id]->restoreParticles(lastGoodCloth_[id]);
    clothQuarantined_[id] = true;
    ++quarantineEvents_;
    ++stepStats_.quarantineEvents;
    if (trace_.enabled()) {
        trace_.recordInstant("quarantine_cloth", stepCount_,
                             static_cast<std::int64_t>(id));
    }
    quarantineRecords_.push_back(QuarantineRecord{
        stepCount_, -1, static_cast<std::int64_t>(id), code, true});
    warn("quarantined cloth %u after [%s] at step %llu", id,
         code.c_str(), static_cast<unsigned long long>(stepCount_));
    if (quarantineEvents_ <= 4)
        dumpViolationSnapshot("quarantine");
}

void
World::captureLastGood()
{
    lastGood_.resize(bodies_.size());
    for (std::size_t i = 0; i < bodies_.size(); ++i) {
        const RigidBody &b = *bodies_[i];
        lastGood_[i] = BodyBackup{b.pose(), b.linearVelocity(),
                                  b.angularVelocity(), b.enabled(),
                                  b.asleep(), b.sleepCounter()};
    }
    lastGoodCloth_.resize(cloths_.size());
    for (std::size_t i = 0; i < cloths_.size(); ++i) {
        if (clothQuarantined_.size() > i && clothQuarantined_[i])
            continue; // Keep the state it was frozen with.
        lastGoodCloth_[i] = cloths_[i]->particles();
    }
}

void
World::processQuarantineThaws()
{
    if (quarantinedBodies_.empty() ||
        config_.quarantineThawSteps <= 0) {
        return;
    }
    std::vector<BodyId> ready;
    for (const auto &[id, state] : quarantinedBodies_) {
        if (!state.permanent &&
            stepCount_ >=
                state.frozenAtStep +
                    static_cast<std::uint64_t>(
                        config_.quarantineThawSteps)) {
            ready.push_back(id);
        }
    }
    // Map order is arbitrary; sorted thaw keeps runs reproducible.
    std::sort(ready.begin(), ready.end());
    for (const BodyId id : ready) {
        quarantinedBodies_.erase(id);
        ++retryCount_[id];
        probationUntil_[id] =
            stepCount_ +
            static_cast<std::uint64_t>(
                config_.quarantineProbationSteps);
        bodies_[id]->setEnabled(true); // Re-enabling also wakes.
    }
    // Probation served without a re-violation: fully rehabilitated.
    std::vector<BodyId> served;
    for (const auto &[id, until] : probationUntil_) {
        if (stepCount_ >= until)
            served.push_back(id);
    }
    for (const BodyId id : served)
        probationUntil_.erase(id);
}

RigidBody *
World::pickFaultBody(std::uint32_t target)
{
    // Deterministic: the target indexes the dynamic, enabled bodies
    // in id order, so the same plan hits the same body every run.
    std::uint32_t eligible = 0;
    for (const auto &body : bodies_) {
        if (!body->isStatic() && body->enabled())
            ++eligible;
    }
    if (eligible == 0)
        return nullptr;
    std::uint32_t index = target % eligible;
    for (const auto &body : bodies_) {
        if (body->isStatic() || !body->enabled())
            continue;
        if (index == 0)
            return body.get();
        --index;
    }
    return nullptr;
}

void
World::injectScriptedFaults()
{
    if (config_.faultPlan.empty())
        return;
    for (const FaultEvent &e : config_.faultPlan.events) {
        if (e.step != stepCount_)
            continue;
        if (trace_.enabled() &&
            e.kind != FaultKind::CorruptContactNormal) {
            trace_.recordInstant("fault_injected", stepCount_,
                                 static_cast<std::int64_t>(e.target));
        }
        switch (e.kind) {
          case FaultKind::NanVelocity: {
            RigidBody *victim = pickFaultBody(e.target);
            if (victim == nullptr)
                break;
            victim->wake();
            victim->setLinearVelocity(Vec3{
                std::numeric_limits<Real>::quiet_NaN(), 0.0, 0.0});
            ++stepStats_.faultsInjected;
            break;
          }
          case FaultKind::HugeImpulse: {
            RigidBody *victim = pickFaultBody(e.target);
            if (victim == nullptr)
                break;
            victim->wake();
            victim->applyImpulse(Vec3{0.0, e.magnitude, 0.0},
                                 victim->position());
            ++stepStats_.faultsInjected;
            break;
          }
          case FaultKind::StallLane:
            scheduler_.stallLane(e.target, e.magnitude);
            ++stepStats_.faultsInjected;
            break;
          case FaultKind::CorruptContactNormal:
            // Needs narrowphase output; injectContactFaults().
            break;
        }
    }
}

void
World::injectContactFaults()
{
    if (config_.faultPlan.empty() || lastContacts_.empty())
        return;
    for (const FaultEvent &e : config_.faultPlan.events) {
        if (e.step != stepCount_ ||
            e.kind != FaultKind::CorruptContactNormal) {
            continue;
        }
        Contact &c = lastContacts_[e.target % lastContacts_.size()];
        const Real nan = std::numeric_limits<Real>::quiet_NaN();
        c.normal = Vec3{nan, nan, nan};
        ++stepStats_.faultsInjected;
        if (trace_.enabled()) {
            trace_.recordInstant("fault_injected", stepCount_,
                                 static_cast<std::int64_t>(e.target));
        }
    }
}

void
World::stepFrame(int substeps)
{
    for (int i = 0; i < substeps; ++i)
        step();
}

void
World::phaseBroadphase()
{
    // Pipeline overlap: if the previous step's cloth phase already
    // ran the spatial pass for this step and the world still looks
    // the way it did then, only the step-coupled filter remains.
    if (bpPrefetchValid_ && broadphasePrefetchUsable()) {
        bpPrefetchValid_ = false;
        broadphaseFilterPairs();
        return;
    }
    bpPrefetchValid_ = false;
    broadphaseFindPairs();
    broadphaseFilterPairs();
}

bool
World::broadphasePrefetchUsable() const
{
    if (bpPrefetchStep_ != stepCount_ ||
        bpPrefetchGeoms_ != geoms_.size())
        return false;
    for (std::size_t i = 0; i < geoms_.size(); ++i) {
        if (bpPrefetchEnabled_[i] !=
            static_cast<std::uint8_t>(geoms_[i]->enabled()))
            return false;
    }
    return true;
}

void
World::broadphaseFindPairs()
{
    // 2(b): find all pairs of objects potentially in contact. The
    // pointer list and pair output are persistent: once warm the
    // whole phase runs without touching the heap.
    geomPtrs_.clear();
    geomPtrs_.reserve(geoms_.size());
    for (const auto &g : geoms_) {
        g->updateBounds();
        geomPtrs_.push_back(g.get());
    }
    broadphase_->findPairsInto(geomPtrs_, lastPairs_);
}

void
World::broadphaseFilterPairs()
{
    // Drop pairs whose bodies share a permanent joint (ODE's
    // dAreConnected rule): articulated segments do not self-collide.
    // Runs at the top of the step it serves (never prefetched), so
    // joints created between steps are always respected.
    std::erase_if(lastPairs_, [this](const GeomPair &pair) {
        return connectedByJoint(geoms_[pair.a]->body(),
                                geoms_[pair.b]->body());
    });
    stepStats_.pairsFound = lastPairs_.size();

    // Ladder level 6: defer narrowphase for slow-moving pairs every
    // other substep. Staleness is bounded to one substep, fast pairs
    // and blast triggers are never deferred, and the decision is a
    // pure function of simulation state (stepCount parity and body
    // velocities), so degraded runs stay reproducible.
    if (plan_.deferNarrowphase && (stepCount_ % 2) == 1) {
        const double v = config_.governor.deferVelocity;
        const Real v2 = static_cast<Real>(v * v);
        auto slow = [v2](const RigidBody *body) {
            return body == nullptr || body->isStatic() ||
                   (body->linearVelocity().lengthSquared() <= v2 &&
                    body->angularVelocity().lengthSquared() <= v2);
        };
        const std::size_t before = lastPairs_.size();
        std::erase_if(lastPairs_, [this, &slow](const GeomPair &pair) {
            const Geom *ga = geoms_[pair.a].get();
            const Geom *gb = geoms_[pair.b].get();
            if (ga->isBlast() || gb->isBlast())
                return false;
            return slow(ga->body()) && slow(gb->body());
        });
        pairsDeferredThisStep_ = before - lastPairs_.size();
    }
}

void
World::phaseNarrowphase()
{
    // 2(c).i: compute contact points for each pair. Object-pairs are
    // independent: the scheduler tiles them into chunks that idle
    // lanes steal, each chunk appending to its own contact store
    // (the paper's per-thread joint group that removes ODE's
    // artificial serialization).
    lastContacts_.clear();

    // Adaptive grain: chunks sized so each is worth roughly
    // targetChunkNanos of pair tests under the narrowphase cost
    // model (committed seed; measured EWMA outside deterministic
    // mode), with config grainSize as the floor. Contact order is
    // the pair order in both branches below, so the trajectory is
    // invariant to the grain — only dispatch overhead moves.
    const std::size_t pairs = lastPairs_.size();
    const TaskScheduler::Tiling tile =
        scheduler_.tiling(pairs, config_.grainSize, npCost_);
    if (scheduler_.laneCount() == 1 || tile.chunks < 2) {
        narrowphase_.batchClear();
        for (const GeomPair &pair : lastPairs_)
            narrowphase_.batchAdd(geoms_[pair.a].get(),
                                  geoms_[pair.b].get());
        narrowphase_.batchRun(lastContacts_);
        stepStats_.contactsCreated = lastContacts_.size();
        return;
    }

    // Worker narrowphase instances keep stats races away; their
    // counters (plain integers, order-independent) merge after the
    // loop. The instances are persistent (only their counters reset)
    // and contact buffers bump-allocate from the executing lane's
    // frame arena, so a warm narrowphase never touches the heap.
    for (Narrowphase &local : npLocals_)
        local.resetStats();
    auto collideRange = [this](std::size_t begin, std::size_t end,
                               unsigned lane,
                               ArenaVector<Contact> &out) {
        PAX_TRACE_SCOPE_ID(trace_, lane, "narrowphase_chunk",
                           stepCount_,
                           static_cast<std::int64_t>(begin));
        Narrowphase &np = npLocals_[lane];
        np.batchClear();
        for (std::size_t i = begin; i < end; ++i) {
            const GeomPair &pair = lastPairs_[i];
            np.batchAdd(geoms_[pair.a].get(), geoms_[pair.b].get());
        }
        np.batchRun(out);
    };

    if (config_.deterministic) {
        // Ordered reduction: one buffer per fixed tile, concatenated
        // in chunk-index order, so the contact order (and therefore
        // every downstream solver row) is independent of which lane
        // ran which chunk. Each chunk body runs exactly once, so
        // binding the chunk's buffer to the executing lane's arena
        // there is race-free (slots are cache-line padded).
        detChunkBufs_.clear();
        detChunkBufs_.resize(tile.chunks);
        scheduler_.parallelFor(
            pairs, config_.grainSize, npCost_,
            [&](std::size_t begin, std::size_t end, unsigned lane) {
                ArenaVector<Contact> &buf =
                    detChunkBufs_[tile.chunkOf(begin)].contacts;
                buf = ArenaVector<Contact>(&scheduler_.arena(lane));
                collideRange(begin, end, lane, buf);
            });
        for (const ChunkContacts &chunk : detChunkBufs_) {
            lastContacts_.insert(lastContacts_.end(),
                                 chunk.contacts.begin(),
                                 chunk.contacts.end());
        }
    } else {
        // Per-lane buffers merged in lane order: fewer allocations,
        // but the chunk-to-lane assignment (and thus contact order)
        // depends on stealing.
        laneContactBufs_.clear();
        laneContactBufs_.resize(scheduler_.laneCount());
        for (unsigned l = 0; l < scheduler_.laneCount(); ++l) {
            laneContactBufs_[l].contacts =
                ArenaVector<Contact>(&scheduler_.arena(l));
        }
        scheduler_.parallelFor(
            pairs, config_.grainSize, npCost_,
            [&](std::size_t begin, std::size_t end, unsigned lane) {
                collideRange(begin, end, lane,
                             laneContactBufs_[lane].contacts);
            });
        for (const ChunkContacts &chunk : laneContactBufs_) {
            lastContacts_.insert(lastContacts_.end(),
                                 chunk.contacts.begin(),
                                 chunk.contacts.end());
        }
    }
    for (const Narrowphase &local : npLocals_)
        narrowphase_.mergeStats(local.stats());
    stepStats_.contactsCreated = lastContacts_.size();
}

void
World::phaseIslandCreation()
{
    // 2(c).i (joints) + 2(d): create contact joints, then form
    // islands of objects interconnected by joints. Serial phase.
    contactJoints_.clear();
    JointId next_contact_id = static_cast<JointId>(joints_.size());
    for (const Contact &c : lastContacts_) {
        Geom *ga = geoms_[c.geomA].get();
        Geom *gb = geoms_[c.geomB].get();
        // Blast volumes are non-solid triggers.
        if (ga->isBlast() || gb->isBlast())
            continue;
        RigidBody *ba = ga->body();
        RigidBody *bb = gb->body();
        // Bodies connected by a permanent joint never get contact
        // joints (their constraint already governs the pair).
        if (connectedByJoint(ba, bb))
            continue;
        // Ensure bodyA is dynamic (Joint requires it).
        Contact contact = c;
        if (ba == nullptr || ba->isStatic()) {
            std::swap(ba, bb);
            std::swap(contact.geomA, contact.geomB);
            contact.normal = -contact.normal;
        }
        if (ba == nullptr || ba->isStatic() || !ba->enabled())
            continue;
        if (bb != nullptr && !bb->enabled())
            continue;
        auto joint = std::make_unique<ContactJoint>(
            next_contact_id++, ba,
            (bb != nullptr && !bb->isStatic()) ? bb : nullptr,
            contact, config_.defaultMaterial);

        // Warm start: inherit the impulses of the nearest matching
        // contact from the previous step (same geom pair, within a
        // small positional tolerance, compatible normal).
        const std::uint64_t key =
            (static_cast<std::uint64_t>(
                 std::min(contact.geomA, contact.geomB))
             << 32) |
            std::max(contact.geomA, contact.geomB);
        auto group = std::lower_bound(
            warmCache_.begin(), warmCache_.end(), key,
            [](const WarmEntry &e, std::uint64_t k) {
                return e.key < k;
            });
        {
            const CachedContact *best = nullptr;
            Real best_d2 = 0.05 * 0.05;
            for (auto it = group;
                 it != warmCache_.end() && it->key == key; ++it) {
                const Real d2 =
                    (it->c.position - contact.position)
                        .lengthSquared();
                if (d2 < best_d2) {
                    best_d2 = d2;
                    best = &it->c;
                }
            }
            // Only a cache entry whose normal still points the same
            // way may seed the solve. Inheriting the normal impulse
            // across a normal flip (contact side change, e.g. a body
            // tunneling past a thin wall) pre-applies an impulse in
            // the wrong direction — injected energy the iterations
            // then have to claw back.
            if (best != nullptr &&
                best->normal.dot(contact.normal) > 0.95) {
                joint->setWarmStart(best->lambdas[0],
                                    best->lambdas[1],
                                    best->lambdas[2]);
            }
        }
        contactJoints_.push_back(std::move(joint));
    }
    stepStats_.contactJointsCreated = contactJoints_.size();

    allJointsScratch_.clear();
    allJointsScratch_.reserve(joints_.size() + contactJoints_.size());
    for (const auto &j : joints_) {
        if (!j->broken())
            allJointsScratch_.push_back(j.get());
    }
    for (const auto &j : contactJoints_)
        allJointsScratch_.push_back(j.get());

    islandBuilder_.build(bodyPtrs_, allJointsScratch_,
                         lastIslandList_);

    stepStats_.islands.clear();
    for (const Island &island : lastIslandList_) {
        stepStats_.islands.push_back(IslandSummary{
            static_cast<int>(island.bodies.size()),
            static_cast<int>(island.joints.size()),
            island.rowCount()});
    }
}

void
World::phaseIslandProcessing()
{
    // 2(e): for each island compute loads and new velocities, then
    // integrate. Islands are independent: big ones go to the work
    // queue, small ones execute on the main thread (paper threshold:
    // 25 degrees of freedom removed).
    SolverParams params;
    params.dt = config_.dt;
    params.erp = config_.erp;
    params.cfm = config_.cfm;

    // Governor: this step's (possibly degraded) solver iterations.
    solver_.setIterations(plan_.solverIterations);

    // Thawed islands on probation retry at reduced dt: island
    // membership (via islandId stamped this step) decides which
    // bodies solve and integrate on the scaled clock.
    std::unordered_set<std::uint32_t> probation_islands;
    for (const auto &[id, until] : probationUntil_) {
        const std::uint32_t island = bodies_[id]->islandId();
        if (island != ~std::uint32_t(0))
            probation_islands.insert(island);
    }
    const Real probation_dt =
        config_.dt *
        static_cast<Real>(config_.quarantineRetryDtScale);
    auto bodyDt = [&](const RigidBody &body) {
        return probation_islands.count(body.islandId()) != 0
                   ? probation_dt
                   : config_.dt;
    };
    auto paramsFor = [&](const Island &island) {
        SolverParams p = params;
        if (!probation_islands.empty() && !island.bodies.empty() &&
            probation_islands.count(
                island.bodies.front()->islandId()) != 0) {
            p.dt = probation_dt;
        }
        return p;
    };

    // Velocity integration is per-body independent, so it tiles
    // like any other kernel: same per-body arithmetic in the same
    // order at any worker count (the committed body cost keeps
    // chunks coarse enough to amortize dispatch).
    auto forEachBody = [this](auto &&per_body) {
        scheduler_.parallelFor(
            bodies_.size(), 1, bodyCost_,
            [this, &per_body](std::size_t begin, std::size_t end,
                              unsigned) {
                for (std::size_t i = begin; i < end; ++i)
                    per_body(*bodies_[i]);
            });
    };
    if (probation_islands.empty()) {
        forEachBody([this](RigidBody &body) {
            body.integrateVelocities(config_.dt);
        });
    } else {
        forEachBody([&bodyDt](RigidBody &body) {
            body.integrateVelocities(bodyDt(body));
        });
    }

    // Auto-disable, part 1: islands sleep and wake as a unit. An
    // island that mixes sleeping and awake bodies has been disturbed
    // (e.g. a projectile contacted a sleeping wall): wake everyone
    // so the solver and integrator treat them consistently.
    if (config_.autoDisable) {
        for (Island &island : lastIslandList_) {
            bool any_awake = false;
            bool any_asleep = false;
            for (const RigidBody *body : island.bodies) {
                any_awake |= !body->asleep();
                any_asleep |= body->asleep();
            }
            if (any_awake && any_asleep) {
                for (RigidBody *body : island.bodies)
                    body->wake();
            }
        }
    }

    // Every awake island is stealable work. Small islands no longer
    // serialize on the main thread: they pack (in island index
    // order) into batches carrying at least `target_rows` constraint
    // rows, so a scene of many tiny islands still spreads across all
    // lanes while per-task dispatch stays amortized. Islands touch
    // disjoint body sets, so results are bitwise identical whichever
    // lane solves them; per-lane solver instances keep stats
    // counters race-free and reuse their workspaces across steps.
    solveIslands_.clear();
    for (Island &island : lastIslandList_) {
        // Fully sleeping islands are not solved or integrated.
        bool all_asleep = !island.bodies.empty();
        for (const RigidBody *body : island.bodies)
            all_asleep &= body->asleep();
        if (all_asleep) {
            ++stepStats_.islandsAsleep;
            stepStats_.bodiesAsleep += island.bodies.size();
            continue;
        }
        solveIslands_.push_back(&island);
    }

    const Island *island_base = lastIslandList_.data();
    if (scheduler_.workerCount() == 0 || solveIslands_.size() <= 1) {
        stepStats_.islandsOnMainThread = solveIslands_.size();
        for (Island *island : solveIslands_) {
            PAX_TRACE_SCOPE_ID(
                trace_, 0, "island_solve", stepCount_,
                static_cast<std::int64_t>(island - island_base));
            solver_.solve(*island, paramsFor(*island));
        }
    } else {
        stepStats_.islandsToWorkQueue = solveIslands_.size();
        // islandWorkQueueThreshold is the batching floor; the
        // committed per-row cost (scaled by this step's solver
        // iterations) widens it so one batch is worth roughly
        // targetChunkNanos of solver work. All inputs are
        // step-stable, so batch boundaries — and a fortiori the
        // trajectory — never depend on wall clock or worker count.
        const double row_ns = islandRowCost_.nsPerItem() *
                              std::max(1, plan_.solverIterations);
        const auto cost_rows = static_cast<std::size_t>(std::max(
            1.0,
            scheduler_.schedulerConfig().targetChunkNanos / row_ns));
        const std::size_t target_rows =
            std::max(static_cast<std::size_t>(std::max(
                         1, config_.islandWorkQueueThreshold)),
                     cost_rows);
        islandBatchOffsets_.clear();
        std::size_t batch_rows = target_rows; // open a batch at i=0
        for (std::size_t i = 0; i < solveIslands_.size(); ++i) {
            if (batch_rows >= target_rows) {
                islandBatchOffsets_.push_back(
                    static_cast<std::uint32_t>(i));
                batch_rows = 0;
            }
            batch_rows += static_cast<std::size_t>(
                std::max(1, solveIslands_[i]->rowCount()));
        }
        islandBatchOffsets_.push_back(
            static_cast<std::uint32_t>(solveIslands_.size()));

        for (PgsSolver &s : laneSolvers_) {
            s.setIterations(plan_.solverIterations);
            s.resetStats();
        }
        scheduler_.parallelFor(
            islandBatchOffsets_.size() - 1, 1,
            [this, island_base, &paramsFor](
                std::size_t begin, std::size_t end, unsigned lane) {
                for (std::size_t b = begin; b < end; ++b) {
                    for (std::uint32_t i = islandBatchOffsets_[b];
                         i < islandBatchOffsets_[b + 1]; ++i) {
                        Island *island = solveIslands_[i];
                        PAX_TRACE_SCOPE_ID(
                            trace_, lane, "island_solve", stepCount_,
                            static_cast<std::int64_t>(island -
                                                      island_base));
                        laneSolvers_[lane].solve(*island,
                                                 paramsFor(*island));
                    }
                }
            });
        for (const PgsSolver &s : laneSolvers_)
            solver_.mergeStats(s.stats());
    }

    // 2(f): check all breakable joints. This must run between the
    // solve (which records the impulses that break joints) and the
    // sleep decision below: a joint that broke THIS step frees its
    // endpoint bodies, and the solver held them with the joint still
    // intact — their post-solve velocities look calm, but next step
    // (without the joint) they move. Sleeping them now would leave
    // e.g. a plank dangling in mid-air forever, with the
    // islandsAsleep/bodiesAsleep counters overcounting it every
    // step. Wake the endpoints and veto this step's sleep decision
    // for their islands instead.
    std::uint64_t total_broken = 0;
    std::unordered_set<std::uint32_t> broke_this_step;
    jointWasBroken_.resize(joints_.size(), false);
    for (std::size_t i = 0; i < joints_.size(); ++i) {
        Joint *joint = joints_[i].get();
        if (joint->broken()) {
            ++total_broken;
            if (!jointWasBroken_[i]) {
                jointWasBroken_[i] = true;
                for (RigidBody *body :
                     {joint->bodyA(), joint->bodyB()}) {
                    if (body == nullptr || body->isStatic())
                        continue;
                    body->wake();
                    if (body->islandId() != ~std::uint32_t(0))
                        broke_this_step.insert(body->islandId());
                }
            }
        }
    }
    stepStats_.jointsBroken = total_broken - totalJointsBroken_;
    totalJointsBroken_ = total_broken;

    if (probation_islands.empty()) {
        forEachBody([this](RigidBody &body) {
            body.integratePositions(config_.dt);
        });
    } else {
        forEachBody([&bodyDt](RigidBody &body) {
            body.integratePositions(bodyDt(body));
        });
    }

    // Auto-disable, part 2: with post-solve velocities (resting
    // contacts cancelled gravity), decide which islands go to sleep.
    if (config_.autoDisable) {
        for (std::uint32_t island_index = 0;
             island_index < lastIslandList_.size(); ++island_index) {
            Island &island = lastIslandList_[island_index];
            if (broke_this_step.count(island_index))
                continue; // A joint broke here: stay awake.
            bool all_asleep = !island.bodies.empty();
            for (const RigidBody *body : island.bodies)
                all_asleep &= body->asleep();
            if (all_asleep)
                continue; // Already sleeping.
            bool calm = true;
            for (const RigidBody *body : island.bodies) {
                if (body->linearVelocity().length() >
                        config_.sleepLinearVelocity ||
                    body->angularVelocity().length() >
                        config_.sleepAngularVelocity) {
                    calm = false;
                    break;
                }
            }
            if (!calm) {
                for (RigidBody *body : island.bodies)
                    body->wake();
                continue;
            }
            bool all_ripe = true;
            for (RigidBody *body : island.bodies) {
                body->incrementSleepCounter();
                all_ripe &=
                    body->sleepCounter() >= config_.sleepSteps;
            }
            if (all_ripe) {
                for (RigidBody *body : island.bodies)
                    body->sleep();
            }
        }
    }

    // Persist this step's solved contact impulses for warm starting
    // the next step's matching contacts. The flat cache is rebuilt
    // in place: seq records insertion order so the stable (key, seq)
    // sort groups entries per pair in the same order the old per-key
    // vectors accumulated them.
    warmCache_.clear();
    std::uint32_t warm_seq = 0;
    for (const auto &joint : contactJoints_) {
        const Contact &c = joint->contact();
        const std::uint64_t key =
            (static_cast<std::uint64_t>(std::min(c.geomA, c.geomB))
             << 32) |
            std::max(c.geomA, c.geomB);
        const Real *l = joint->solvedLambdas();
        warmCache_.push_back(WarmEntry{
            key, warm_seq++,
            CachedContact{c.position, c.normal,
                          {l[0], l[1], l[2]}}});
    }
    std::sort(warmCache_.begin(), warmCache_.end(),
              [](const WarmEntry &x, const WarmEntry &y) {
                  return x.key != y.key ? x.key < y.key
                                        : x.seq < y.seq;
              });
}

void
World::phaseCloth()
{
    // 2(g): process all cloth objects with a forward step. Each
    // cloth is independent (coarse grain); vertices are independent
    // (fine grain).
    ClothStats &stats = stepStats_.cloth;

    // Quarantined cloths are frozen: no pin tracking, no colliders,
    // no stepping.
    auto frozen = [this](std::size_t ci) {
        return ci < clothQuarantined_.size() && clothQuarantined_[ci];
    };

    // Follow attachments: pinned particles track their bodies.
    for (const ClothAttachment &att : clothAttachments_) {
        if (frozen(att.cloth->id()))
            continue;
        att.cloth->movePinned(
            att.particle, att.body->pose().apply(att.localPoint));
    }

    stepStats_.clothVertexCounts.clear();
    if (cloths_.empty())
        return;

    // Build per-cloth collider lists from bounding-volume overlap
    // (the paper's "cloth contact list"). The nested lists are
    // persistent scratch: clear() keeps their capacity so the warm
    // steady state allocates nothing here.
    std::vector<std::vector<const Geom *>> &colliders =
        clothColliders_;
    colliders.resize(cloths_.size());
    for (auto &list : colliders)
        list.clear();
    for (size_t ci = 0; ci < cloths_.size(); ++ci) {
        stepStats_.clothVertexCounts.push_back(
            cloths_[ci]->vertexCount());
        if (frozen(ci))
            continue;
        const Aabb cloth_bounds = cloths_[ci]->bounds();
        for (const auto &g : geoms_) {
            if (!g->enabled() || g->isBlast())
                continue;
            if (g->shape().type() == ShapeType::Plane ||
                g->bounds().overlaps(cloth_bounds)) {
                colliders[ci].push_back(g.get());
                ++stepStats_.clothColliderInsertions;
            }
        }
    }

    // Pipeline overlap (WorldConfig::overlapPhases): next step's
    // broadphase rides this phase's parallelFor as one extra
    // stealable item. It is safe to run concurrently with cloth
    // stepping because the two touch disjoint state: the broadphase
    // writes geom bounds and the pair list, while cloth collision
    // reads collider poses recomputed from body state (never cached
    // bounds) against the collider lists prebuilt above. Nothing
    // moves rigid bodies between here and the next step's broadphase
    // phase, so the prefetched pairs are byte-identical to what a
    // synchronous pass would find.
    const bool prefetch =
        config_.overlapPhases && scheduler_.workerCount() > 0 &&
        effectiveInvariantMode() == InvariantMode::Off;

    if (scheduler_.workerCount() > 0 &&
        (cloths_.size() > 1 || prefetch)) {
        // One chunk per cloth; relaxation sweeps within a cloth are
        // sequential, so cloths are the stealable unit. Per-cloth
        // stats buffers reduce in cloth order (deterministic either
        // way: each cloth is touched by exactly one lane). The
        // prefetch rides as the last item so cloth indices are
        // untouched; splitting hands it to an idle lane early.
        std::vector<ClothStats> &locals = clothLocalStats_;
        locals.assign(cloths_.size(), ClothStats{});
        scheduler_.parallelFor(
            cloths_.size() + (prefetch ? 1 : 0), 1,
            [this, &colliders, &locals, &frozen](std::size_t begin,
                                                 std::size_t end,
                                                 unsigned lane) {
                for (std::size_t ci = begin; ci < end; ++ci) {
                    if (ci == cloths_.size()) {
                        PAX_TRACE_SCOPE_ID(trace_, lane,
                                           "broadphase_prefetch",
                                           stepCount_, 0);
                        broadphaseFindPairs();
                        continue;
                    }
                    if (frozen(ci))
                        continue;
                    PAX_TRACE_SCOPE_ID(
                        trace_, lane, "cloth_step", stepCount_,
                        static_cast<std::int64_t>(ci));
                    cloths_[ci]->step(config_.dt, config_.gravity,
                                      plan_.clothIterations,
                                      colliders[ci], locals[ci],
                                      kernelBackend_);
                }
            });
        if (prefetch) {
            // Snapshot what the prefetch saw; the next step's
            // broadphase discards it if the world changed shape.
            bpPrefetchValid_ = true;
            bpPrefetchStep_ = stepCount_ + 1;
            bpPrefetchGeoms_ = geoms_.size();
            bpPrefetchEnabled_.resize(geoms_.size());
            for (std::size_t i = 0; i < geoms_.size(); ++i) {
                bpPrefetchEnabled_[i] =
                    static_cast<std::uint8_t>(geoms_[i]->enabled());
            }
        }
        for (const ClothStats &ls : locals) {
            stats.clothsStepped += ls.clothsStepped;
            stats.verticesIntegrated += ls.verticesIntegrated;
            stats.constraintRelaxations += ls.constraintRelaxations;
            stats.collisionTests += ls.collisionTests;
            stats.collisionsResolved += ls.collisionsResolved;
            stats.kernels.merge(ls.kernels);
        }
    } else {
        for (size_t ci = 0; ci < cloths_.size(); ++ci) {
            if (frozen(ci))
                continue;
            PAX_TRACE_SCOPE_ID(trace_, 0, "cloth_step", stepCount_,
                               static_cast<std::int64_t>(ci));
            cloths_[ci]->step(config_.dt, config_.gravity,
                              plan_.clothIterations, colliders[ci],
                              stats, kernelBackend_);
        }
    }
}

} // namespace parallax
