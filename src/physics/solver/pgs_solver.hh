/**
 * @file
 * Projected Gauss-Seidel island constraint solver.
 *
 * The forward simulation step (section 3.1): for each island the
 * solver computes the applied loads and the new velocities of each
 * object with an iterative relaxation method, trading accuracy for
 * efficiency through the iteration-count parameter. The benchmarks
 * use 20 iterations as recommended by the ODE user guide.
 *
 * Each row's independent inner iteration is the unit of fine-grain
 * parallelism the ParallAX FG cores exploit ("degrees of freedom
 * removed in the LCP solver", section 7).
 */

#ifndef PARALLAX_PHYSICS_SOLVER_PGS_SOLVER_HH
#define PARALLAX_PHYSICS_SOLVER_PGS_SOLVER_HH

#include <cstdint>
#include <vector>

#include "physics/island/island.hh"
#include "physics/joints/joint.hh"
#include "physics/kernels/kernel_backend.hh"

namespace parallax
{

/** Observability counters for island processing. */
struct SolverStats
{
    std::uint64_t islandsSolved = 0;
    std::uint64_t rowsBuilt = 0;
    std::uint64_t rowIterations = 0;
    std::uint64_t bodiesIntegrated = 0;
    /** Solves that had to grow a persistent workspace buffer. */
    std::uint64_t workspaceGrowths = 0;
    /** Solves fully served by already-reserved workspace capacity. */
    std::uint64_t workspaceReuses = 0;
    /** Vector-engine counters (zero under the Scalar backend). */
    KernelStats kernels;

    void
    reset()
    {
        *this = SolverStats();
    }

    /** Fold another instance's counters into this one. */
    void
    merge(const SolverStats &o)
    {
        islandsSolved += o.islandsSolved;
        rowsBuilt += o.rowsBuilt;
        rowIterations += o.rowIterations;
        bodiesIntegrated += o.bodiesIntegrated;
        workspaceGrowths += o.workspaceGrowths;
        workspaceReuses += o.workspaceReuses;
        kernels.merge(o.kernels);
    }
};

/** Iterative projected Gauss-Seidel LCP solver. */
class PgsSolver
{
  public:
    /**
     * @param iterations Relaxation sweeps per step (paper: 20).
     * @param sor Successive-over-relaxation factor.
     */
    explicit PgsSolver(int iterations = 20, Real sor = 1.0);

    /**
     * Solve one island: gather rows from the island's joints,
     * relax, apply the resulting impulses to body velocities, and
     * feed applied impulses back to the joints (for breakage).
     *
     * Body velocities must already include external forces
     * (integrateVelocities must have run). Position integration is
     * the caller's responsibility.
     */
    void solve(Island &island, const SolverParams &params);

    int iterations() const { return iterations_; }

    /** Adjust relaxation sweeps (the step governor walks this toward
     *  its floor under deadline pressure). */
    void setIterations(int iterations) { iterations_ = iterations; }

    /** Select the kernel backend the relaxation sweep runs on.
     *  nullptr (the default) means the scalar reference backend. */
    void setBackend(const KernelBackend *backend) { backend_ = backend; }

    const SolverStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    /** Merge a worker instance's counters (parallel islands). */
    void mergeStats(const SolverStats &o) { stats_.merge(o); }

  private:
    /**
     * Persistent per-solver scratch, reused across islands and
     * substeps. Every vector is clear()ed (capacity kept) at the top
     * of solve(), so after the solver has seen its largest island the
     * hot path performs zero heap allocations. Row data lives in SoA
     * arrays (RowBuffer + the mLin/mAng/invDiag/body arrays below)
     * so the relaxation sweep streams each field linearly.
     */
    struct Workspace
    {
        // Island body working set, indexed by RigidBody::solverIndex.
        std::vector<Vec3> linVel, angVel;
        std::vector<Real> invMass;
        std::vector<Mat3> invInertia;

        // Constraint rows (SoA) and per-row precomputed state.
        RowBuffer rows;
        std::vector<Vec3> mLinA, mAngA, mLinB, mAngB;
        std::vector<Real> invDiag;
        std::vector<int> bodyA, bodyB;

        /** Row range each joint emitted, for impulse write-back. */
        struct JointSlice
        {
            Joint *joint;
            std::size_t begin;
            std::size_t count;
        };
        std::vector<JointSlice> slices;

        /** Capacity fingerprint for the reuse/growth counters. */
        std::size_t capacitySum() const;
    };

    int iterations_;
    Real sor_;
    SolverStats stats_;
    Workspace ws_;
    const KernelBackend *backend_ = nullptr;
    /** Native-backend scratch (coloring + permuted streams). */
    PgsScratch scratch_;
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_SOLVER_PGS_SOLVER_HH
