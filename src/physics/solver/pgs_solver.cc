#include "pgs_solver.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace parallax
{

PgsSolver::PgsSolver(int iterations, Real sor)
    : iterations_(iterations), sor_(sor)
{
    if (iterations < 1)
        fatal("solver iterations must be >= 1 (got %d)", iterations);
    if (sor <= 0.0 || sor > 2.0)
        fatal("SOR factor must be in (0, 2] (got %g)", sor);
}

std::size_t
PgsSolver::Workspace::capacitySum() const
{
    return linVel.capacity() + invInertia.capacity() +
           rows.rhs.capacity() + invDiag.capacity() +
           slices.capacity();
}

void
PgsSolver::solve(Island &island, const SolverParams &params)
{
    ++stats_.islandsSolved;
    const std::size_t capacity_before = ws_.capacitySum();

    // Gather the island's body working set. Bodies are addressed by
    // the dense solverIndex() stamped during island build — no hash
    // map. A static, disabled, or null body reads as -1 (its stamp,
    // if any, is stale and must not be trusted).
    const std::size_t n_bodies = island.bodies.size();
    // One extra, always-zero velocity slot: the vector backend's
    // gather streams remap body index -1 (static/absent) to it, so
    // those lanes contribute exactly 0 to J·v without branching.
    ws_.linVel.resize(n_bodies + 1);
    ws_.angVel.resize(n_bodies + 1);
    ws_.linVel[n_bodies] = Vec3{};
    ws_.angVel[n_bodies] = Vec3{};
    ws_.invMass.resize(n_bodies);
    ws_.invInertia.resize(n_bodies);
    for (std::size_t i = 0; i < n_bodies; ++i) {
        const RigidBody *b = island.bodies[i];
        ws_.linVel[i] = b->linearVelocity();
        ws_.angVel[i] = b->angularVelocity();
        ws_.invMass[i] = b->invMass();
        ws_.invInertia[i] = b->invInertiaWorld();
    }
    Vec3 *lin_vel = ws_.linVel.data();
    Vec3 *ang_vel = ws_.angVel.data();

    // Build rows into the SoA buffer, remembering each joint's slice
    // for write-back.
    RowBuffer &rows = ws_.rows;
    rows.clear();
    ws_.slices.clear();
    for (Joint *j : island.joints) {
        if (j->broken())
            continue;
        const std::size_t begin = rows.size();
        j->buildRows(params, rows);
        ws_.slices.push_back(
            Workspace::JointSlice{j, begin, rows.size() - begin});
    }
    const std::size_t n_rows = rows.size();
    stats_.rowsBuilt += n_rows;
    if (n_rows == 0) {
        stats_.bodiesIntegrated += n_bodies;
        if (ws_.capacitySum() > capacity_before)
            ++stats_.workspaceGrowths;
        else
            ++stats_.workspaceReuses;
        return;
    }

    // Precompute M^-1 J^T and row diagonals. Body indices come from
    // the joint recorded in each slice, so rows need no joint->body
    // hash lookup either.
    ws_.mLinA.resize(n_rows);
    ws_.mAngA.resize(n_rows);
    ws_.mLinB.resize(n_rows);
    ws_.mAngB.resize(n_rows);
    ws_.invDiag.resize(n_rows);
    ws_.bodyA.resize(n_rows);
    ws_.bodyB.resize(n_rows);

    auto indexOf = [](RigidBody *b) -> int {
        if (b == nullptr || b->isStatic() || !b->enabled())
            return -1;
        return b->solverIndex();
    };

    for (const Workspace::JointSlice &slice : ws_.slices) {
        const int ia = indexOf(slice.joint->bodyA());
        const int ib = indexOf(slice.joint->bodyB());
        for (std::size_t r = slice.begin;
             r < slice.begin + slice.count; ++r) {
            ws_.bodyA[r] = ia;
            ws_.bodyB[r] = ib;

            Real diag = rows.cfm[r];
            if (ia >= 0) {
                ws_.mLinA[r] = rows.jLinA[r] * ws_.invMass[ia];
                ws_.mAngA[r] = ws_.invInertia[ia] * rows.jAngA[r];
                diag += rows.jLinA[r].dot(ws_.mLinA[r]) +
                        rows.jAngA[r].dot(ws_.mAngA[r]);
            }
            if (ib >= 0) {
                ws_.mLinB[r] = rows.jLinB[r] * ws_.invMass[ib];
                ws_.mAngB[r] = ws_.invInertia[ib] * rows.jAngB[r];
                diag += rows.jLinB[r].dot(ws_.mLinB[r]) +
                        rows.jAngB[r].dot(ws_.mAngB[r]);
            }
            ws_.invDiag[r] = diag > 1e-18 ? 1.0 / diag : 0.0;
        }
    }

    // Warm start: rows carrying a previous-step impulse apply it
    // before iterating, so resting contacts start converged.
    for (std::size_t r = 0; r < n_rows; ++r) {
        const Real l0 = rows.lambda[r];
        if (l0 == 0.0)
            continue;
        const int ia = ws_.bodyA[r];
        const int ib = ws_.bodyB[r];
        if (ia >= 0) {
            lin_vel[ia] += ws_.mLinA[r] * l0;
            ang_vel[ia] += ws_.mAngA[r] * l0;
        }
        if (ib >= 0) {
            lin_vel[ib] += ws_.mLinB[r] * l0;
            ang_vel[ib] += ws_.mAngB[r] * l0;
        }
    }

    // Relaxation sweeps, delegated to the kernel backend. Each
    // (row, iteration) is one independent fine-grain task in the
    // ParallAX mapping; every per-row field is a separate linear
    // array, so each sweep streams the row data front to back. The
    // Scalar backend replays the exact pre-seam loop (bitwise
    // reference); Native runs it vectorized in color-major order.
    PgsSweepCtx ctx;
    ctx.rows = n_rows;
    ctx.jLinA = rows.jLinA.data();
    ctx.jAngA = rows.jAngA.data();
    ctx.jLinB = rows.jLinB.data();
    ctx.jAngB = rows.jAngB.data();
    ctx.mLinA = ws_.mLinA.data();
    ctx.mAngA = ws_.mAngA.data();
    ctx.mLinB = ws_.mLinB.data();
    ctx.mAngB = ws_.mAngB.data();
    ctx.rhs = rows.rhs.data();
    ctx.cfm = rows.cfm.data();
    ctx.invDiag = ws_.invDiag.data();
    ctx.mu = rows.mu.data();
    ctx.lo = rows.lo.data();
    ctx.hi = rows.hi.data();
    ctx.lambda = rows.lambda.data();
    ctx.normalRow = rows.normalRow.data();
    ctx.bodyA = ws_.bodyA.data();
    ctx.bodyB = ws_.bodyB.data();
    ctx.bodies = n_bodies;
    ctx.linVel = lin_vel;
    ctx.angVel = ang_vel;
    ctx.iterations = iterations_;
    ctx.sor = sor_;
    const KernelBackend &backend =
        backend_ != nullptr ? *backend_ : scalarKernelBackend();
    backend.pgsSweep(ctx, scratch_, stats_.kernels);
    // One count per (row, sweep).
    stats_.rowIterations +=
        n_rows * static_cast<std::uint64_t>(iterations_);

    // Write back velocities.
    for (std::size_t i = 0; i < n_bodies; ++i) {
        island.bodies[i]->setLinearVelocity(ws_.linVel[i]);
        island.bodies[i]->setAngularVelocity(ws_.angVel[i]);
    }
    stats_.bodiesIntegrated += n_bodies;

    // Feed solved impulses back to the joints: breakage checks and
    // contact warm-start persistence.
    for (const Workspace::JointSlice &slice : ws_.slices) {
        Real applied = 0;
        for (std::size_t r = slice.begin;
             r < slice.begin + slice.count; ++r) {
            applied += std::fabs(rows.lambda[r]);
        }
        slice.joint->recordAppliedImpulse(applied, params.dt);
        slice.joint->onSolved(rows.lambda.data() + slice.begin,
                              static_cast<int>(slice.count));
    }

    if (ws_.capacitySum() > capacity_before)
        ++stats_.workspaceGrowths;
    else
        ++stats_.workspaceReuses;
}

} // namespace parallax
