#include "pgs_solver.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "sim/logging.hh"

namespace parallax
{

namespace
{

/** Per-row precomputed solver state. */
struct RowState
{
    // M^-1 J^T terms.
    Vec3 mLinA;
    Vec3 mAngA;
    Vec3 mLinB;
    Vec3 mAngB;
    Real invDiag = 0.0;
    int bodyA = -1; // Index into island body arrays; -1 == static.
    int bodyB = -1;
};

} // namespace

PgsSolver::PgsSolver(int iterations, Real sor)
    : iterations_(iterations), sor_(sor)
{
    if (iterations < 1)
        fatal("solver iterations must be >= 1 (got %d)", iterations);
    if (sor <= 0.0 || sor > 2.0)
        fatal("SOR factor must be in (0, 2] (got %g)", sor);
}

void
PgsSolver::solve(Island &island, const SolverParams &params)
{
    ++stats_.islandsSolved;

    // Index the island's dynamic bodies.
    std::unordered_map<const RigidBody *, int> body_index;
    body_index.reserve(island.bodies.size());
    for (size_t i = 0; i < island.bodies.size(); ++i)
        body_index[island.bodies[i]] = static_cast<int>(i);

    // Working copies of velocities.
    std::vector<Vec3> lin_vel(island.bodies.size());
    std::vector<Vec3> ang_vel(island.bodies.size());
    std::vector<Real> inv_mass(island.bodies.size());
    std::vector<Mat3> inv_inertia(island.bodies.size());
    for (size_t i = 0; i < island.bodies.size(); ++i) {
        const RigidBody *b = island.bodies[i];
        lin_vel[i] = b->linearVelocity();
        ang_vel[i] = b->angularVelocity();
        inv_mass[i] = b->invMass();
        inv_inertia[i] = b->invInertiaWorld();
    }

    // Build rows, remembering each joint's slice for write-back.
    std::vector<ConstraintRow> rows;
    struct JointSlice
    {
        Joint *joint;
        std::size_t begin;
        std::size_t count;
    };
    std::vector<JointSlice> slices;
    for (Joint *j : island.joints) {
        if (j->broken())
            continue;
        const std::size_t begin = rows.size();
        j->buildRows(params, rows);
        slices.push_back(JointSlice{j, begin, rows.size() - begin});
    }
    stats_.rowsBuilt += rows.size();
    if (rows.empty()) {
        stats_.bodiesIntegrated += island.bodies.size();
        return;
    }

    // Precompute M^-1 J^T and row diagonals.
    std::vector<RowState> states(rows.size());
    std::unordered_map<JointId, std::pair<RigidBody *, RigidBody *>>
        joint_bodies;
    for (Joint *j : island.joints)
        joint_bodies[j->id()] = {j->bodyA(), j->bodyB()};

    auto indexOf = [&](RigidBody *b) -> int {
        if (b == nullptr || b->isStatic())
            return -1;
        auto it = body_index.find(b);
        return it == body_index.end() ? -1 : it->second;
    };

    for (size_t r = 0; r < rows.size(); ++r) {
        const ConstraintRow &row = rows[r];
        RowState &st = states[r];
        const auto [ba, bb] = joint_bodies.at(row.joint);
        st.bodyA = indexOf(ba);
        st.bodyB = indexOf(bb);

        Real diag = row.cfm;
        if (st.bodyA >= 0) {
            st.mLinA = row.jLinA * inv_mass[st.bodyA];
            st.mAngA = inv_inertia[st.bodyA] * row.jAngA;
            diag += row.jLinA.dot(st.mLinA) + row.jAngA.dot(st.mAngA);
        }
        if (st.bodyB >= 0) {
            st.mLinB = row.jLinB * inv_mass[st.bodyB];
            st.mAngB = inv_inertia[st.bodyB] * row.jAngB;
            diag += row.jLinB.dot(st.mLinB) + row.jAngB.dot(st.mAngB);
        }
        st.invDiag = diag > 1e-18 ? 1.0 / diag : 0.0;
    }

    // Warm start: rows carrying a previous-step impulse apply it
    // before iterating, so resting contacts start converged.
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const Real l0 = rows[r].lambda;
        if (l0 == 0.0)
            continue;
        const RowState &st = states[r];
        if (st.bodyA >= 0) {
            lin_vel[st.bodyA] += st.mLinA * l0;
            ang_vel[st.bodyA] += st.mAngA * l0;
        }
        if (st.bodyB >= 0) {
            lin_vel[st.bodyB] += st.mLinB * l0;
            ang_vel[st.bodyB] += st.mAngB * l0;
        }
    }

    // Relaxation sweeps. Each (row, iteration) is one independent
    // fine-grain task in the ParallAX mapping.
    for (int it = 0; it < iterations_; ++it) {
        for (size_t r = 0; r < rows.size(); ++r) {
            ConstraintRow &row = rows[r];
            RowState &st = states[r];
            ++stats_.rowIterations;

            // Friction rows: refresh bounds from the normal impulse.
            if (row.normalRow >= 0) {
                const Real limit =
                    row.mu * rows[row.normalRow].lambda;
                row.lo = -limit;
                row.hi = limit;
            }

            Real jv = 0.0;
            if (st.bodyA >= 0) {
                jv += row.jLinA.dot(lin_vel[st.bodyA]) +
                      row.jAngA.dot(ang_vel[st.bodyA]);
            }
            if (st.bodyB >= 0) {
                jv += row.jLinB.dot(lin_vel[st.bodyB]) +
                      row.jAngB.dot(ang_vel[st.bodyB]);
            }

            const Real delta =
                sor_ * (row.rhs - jv - row.cfm * row.lambda) *
                st.invDiag;
            const Real new_lambda =
                std::clamp(row.lambda + delta, row.lo, row.hi);
            const Real dl = new_lambda - row.lambda;
            row.lambda = new_lambda;
            if (dl == 0.0)
                continue;

            if (st.bodyA >= 0) {
                lin_vel[st.bodyA] += st.mLinA * dl;
                ang_vel[st.bodyA] += st.mAngA * dl;
            }
            if (st.bodyB >= 0) {
                lin_vel[st.bodyB] += st.mLinB * dl;
                ang_vel[st.bodyB] += st.mAngB * dl;
            }
        }
    }

    // Write back velocities.
    for (size_t i = 0; i < island.bodies.size(); ++i) {
        island.bodies[i]->setLinearVelocity(lin_vel[i]);
        island.bodies[i]->setAngularVelocity(ang_vel[i]);
    }
    stats_.bodiesIntegrated += island.bodies.size();

    // Feed solved impulses back to the joints: breakage checks and
    // contact warm-start persistence.
    for (const JointSlice &slice : slices) {
        Real applied = 0;
        for (std::size_t r = slice.begin;
             r < slice.begin + slice.count; ++r) {
            applied += std::fabs(rows[r].lambda);
        }
        slice.joint->recordAppliedImpulse(applied, params.dt);
        slice.joint->onSolved(rows.data() + slice.begin,
                              static_cast<int>(slice.count));
    }
}

} // namespace parallax
