#include "collide.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <optional>

#include "physics/parallel/arena.hh"
#include "physics/shapes/primitives.hh"
#include "physics/shapes/static_shapes.hh"
#include "sim/logging.hh"

namespace parallax
{

namespace
{

/** A raw contact before geom ids are attached. */
struct RawContact
{
    Vec3 position;
    Vec3 normal; // Points toward the "first" shape of the helper.
    Real depth;
};

/** Closest point on segment [p, q] to point x. */
Vec3
closestOnSegment(const Vec3 &p, const Vec3 &q, const Vec3 &x)
{
    const Vec3 d = q - p;
    const Real len2 = d.lengthSquared();
    if (len2 < 1e-18)
        return p;
    const Real t = std::clamp((x - p).dot(d) / len2, 0.0, 1.0);
    return p + d * t;
}

/** Sphere (ca, ra) against sphere (cb, rb); normal points toward a. */
std::optional<RawContact>
sphereSphere(const Vec3 &ca, Real ra, const Vec3 &cb, Real rb)
{
    const Vec3 d = ca - cb;
    const Real dist2 = d.lengthSquared();
    const Real rsum = ra + rb;
    if (dist2 > rsum * rsum)
        return std::nullopt;
    const Real dist = std::sqrt(dist2);
    const Vec3 n = dist > 1e-12 ? d / dist : Vec3{0.0, 1.0, 0.0};
    const Real depth = rsum - dist;
    return RawContact{cb + n * (rb - 0.5 * depth), n, depth};
}

/** Sphere against an oriented box; normal points toward the sphere. */
std::optional<RawContact>
sphereBox(const Vec3 &center, Real radius, const Transform &box_pose,
          const Vec3 &half)
{
    const Vec3 c_local = box_pose.applyInverse(center);
    const Vec3 clamped{std::clamp(c_local.x, -half.x, half.x),
                       std::clamp(c_local.y, -half.y, half.y),
                       std::clamp(c_local.z, -half.z, half.z)};
    const Vec3 d = c_local - clamped;
    const Real dist2 = d.lengthSquared();
    if (dist2 > radius * radius)
        return std::nullopt;

    Vec3 n_local;
    Real depth;
    if (dist2 > 1e-18) {
        const Real dist = std::sqrt(dist2);
        n_local = d / dist;
        depth = radius - dist;
    } else {
        // Center inside the box: exit through the nearest face.
        const Real dx = half.x - std::fabs(c_local.x);
        const Real dy = half.y - std::fabs(c_local.y);
        const Real dz = half.z - std::fabs(c_local.z);
        if (dx <= dy && dx <= dz) {
            n_local = {c_local.x >= 0 ? 1.0 : -1.0, 0.0, 0.0};
            depth = dx + radius;
        } else if (dy <= dz) {
            n_local = {0.0, c_local.y >= 0 ? 1.0 : -1.0, 0.0};
            depth = dy + radius;
        } else {
            n_local = {0.0, 0.0, c_local.z >= 0 ? 1.0 : -1.0};
            depth = dz + radius;
        }
    }
    return RawContact{box_pose.apply(clamped),
                      box_pose.applyDirection(n_local), depth};
}

/** Sphere against a heightfield; normal points toward the sphere. */
std::optional<RawContact>
sphereHeightfield(const Vec3 &center, Real radius,
                  const Transform &hf_pose, const HeightfieldShape &hf)
{
    const Vec3 local = center - hf_pose.position;
    if (local.x < -radius || local.x > hf.width() + radius ||
        local.z < -radius || local.z > hf.depth() + radius) {
        return std::nullopt;
    }
    const Real surface = hf.sampleHeight(local.x, local.z);
    const Real dist = local.y - surface;
    if (dist > radius)
        return std::nullopt;
    const Vec3 n = hf.sampleNormal(local.x, local.z);
    const Vec3 pos = hf_pose.position + Vec3{local.x, surface, local.z};
    return RawContact{pos, n, radius - dist};
}

/** Sphere against one trimesh triangle; normal toward the sphere. */
std::optional<RawContact>
sphereTriangle(const Vec3 &center, Real radius, const Vec3 &va,
               const Vec3 &vb, const Vec3 &vc)
{
    const Vec3 n = (vb - va).cross(vc - va).normalized();
    const Real dist = n.dot(center - va);
    const Vec3 proj = center - n * dist;
    const Vec3 e0 = vb - va, e1 = vc - vb, e2 = va - vc;
    const bool inside = n.dot(e0.cross(proj - va)) >= 0 &&
                        n.dot(e1.cross(proj - vb)) >= 0 &&
                        n.dot(e2.cross(proj - vc)) >= 0;
    Vec3 closest = proj;
    if (!inside) {
        const std::array<Vec3, 3> candidates{
            closestOnSegment(va, vb, center),
            closestOnSegment(vb, vc, center),
            closestOnSegment(vc, va, center)};
        Real best = 1e30;
        for (const Vec3 &c : candidates) {
            const Real d2 = (center - c).lengthSquared();
            if (d2 < best) {
                best = d2;
                closest = c;
            }
        }
    }
    const Vec3 dvec = center - closest;
    const Real d2 = dvec.lengthSquared();
    if (d2 > radius * radius)
        return std::nullopt;
    const Real dist_c = std::sqrt(d2);
    const Vec3 cn = dist_c > 1e-12 ? dvec / dist_c : n;
    return RawContact{closest, cn, radius - dist_c};
}

/**
 * Sample-sphere decomposition of a convex geom: capsules become three
 * axis spheres, boxes become eight inset corner spheres. Used for the
 * approximate capsule/box versus terrain and capsule-box tests (a
 * documented deviation from exact ODE colliders).
 */
std::vector<std::pair<Vec3, Real>>
sampleSpheres(const Geom &g)
{
    std::vector<std::pair<Vec3, Real>> samples;
    const Transform pose = g.worldPose();
    switch (g.shape().type()) {
      case ShapeType::Sphere: {
        const auto &s = static_cast<const SphereShape &>(g.shape());
        samples.emplace_back(pose.position, s.radius());
        break;
      }
      case ShapeType::Capsule: {
        const auto &cap = static_cast<const CapsuleShape &>(g.shape());
        Vec3 p, q;
        cap.segment(pose, p, q);
        samples.emplace_back(p, cap.radius());
        samples.emplace_back((p + q) * 0.5, cap.radius());
        samples.emplace_back(q, cap.radius());
        break;
      }
      case ShapeType::Box: {
        const auto &box = static_cast<const BoxShape &>(g.shape());
        const Vec3 h = box.halfExtents();
        const Real r = std::min({h.x, h.y, h.z});
        const Vec3 inner = h - Vec3{r, r, r};
        for (int i = 0; i < 8; ++i) {
            const Vec3 local{(i & 1) ? inner.x : -inner.x,
                             (i & 2) ? inner.y : -inner.y,
                             (i & 4) ? inner.z : -inner.z};
            samples.emplace_back(pose.apply(local), r);
        }
        break;
      }
      default:
        break;
    }
    return samples;
}

} // namespace

template <typename ContactSink>
int
Narrowphase::collide(const Geom &a, const Geom &b, ContactSink &out)
{
    ++stats_.pairsTested;
    const auto ta = static_cast<int>(a.shape().type());
    const auto tb = static_cast<int>(b.shape().type());
    ++stats_.testsByType[std::min(ta, tb)][std::max(ta, tb)];

    const size_t before = out.size();
    collideOrdered(a, b, out, false);
    const int made = static_cast<int>(out.size() - before);
    if (made > 0)
        ++stats_.pairsColliding;
    stats_.contactsCreated += made;
    return made;
}

void
Narrowphase::batchClear()
{
    pairA_.clear();
    pairB_.clear();
}

void
Narrowphase::batchAdd(const Geom *a, const Geom *b)
{
    pairA_.push_back(a);
    pairB_.push_back(b);
}

namespace
{
// Pair classification for the batch path.
constexpr std::uint8_t pairOther = 0;        // scalar dispatcher
constexpr std::uint8_t pairSphereSphere = 1; // SIMD batch
constexpr std::uint8_t pairSphereBox = 2;    // SIMD batch
} // namespace

template <typename ContactSink>
void
Narrowphase::batchRun(ContactSink &out)
{
    const std::size_t n = pairA_.size();

    // Scalar backend (or none): the batch is just the per-pair loop,
    // bitwise identical to the pre-batch engine.
    if (backend_ == nullptr ||
        backend_->kind() == SimdBackend::Scalar) {
        for (std::size_t i = 0; i < n; ++i)
            collide(*pairA_[i], *pairB_[i], out);
        return;
    }

    // Pass 1: classify. Sphere/sphere and sphere/box pairs pack
    // their shape data into SoA batches; everything else waits for
    // the scalar dispatcher in pass 2. pairFlip_ records a box-first
    // pair (the batch always computes sphere-vs-box, normal toward
    // the sphere).
    pairKind_.assign(n, pairOther);
    pairFlip_.assign(n, 0);
    pairSlot_.resize(n);
    ssBatch_.clear();
    sbBatch_.clear();
    for (std::size_t i = 0; i < n; ++i) {
        const Geom *a = pairA_[i];
        const Geom *b = pairB_[i];
        const ShapeType sa = a->shape().type();
        const ShapeType sb = b->shape().type();
        if (sa == ShapeType::Sphere && sb == ShapeType::Sphere) {
            const auto &s1 =
                static_cast<const SphereShape &>(a->shape());
            const auto &s2 =
                static_cast<const SphereShape &>(b->shape());
            pairKind_[i] = pairSphereSphere;
            pairSlot_[i] = static_cast<std::int32_t>(ssBatch_.size());
            ssBatch_.push(a->worldPose().position, s1.radius(),
                          b->worldPose().position, s2.radius());
        } else if ((sa == ShapeType::Sphere && sb == ShapeType::Box) ||
                   (sa == ShapeType::Box && sb == ShapeType::Sphere)) {
            const bool flip = sa == ShapeType::Box;
            const Geom *sphere = flip ? b : a;
            const Geom *box = flip ? a : b;
            const auto &s =
                static_cast<const SphereShape &>(sphere->shape());
            const auto &bx =
                static_cast<const BoxShape &>(box->shape());
            const Transform bp = box->worldPose();
            pairKind_[i] = pairSphereBox;
            pairFlip_[i] = flip ? 1 : 0;
            pairSlot_[i] = static_cast<std::int32_t>(sbBatch_.size());
            sbBatch_.push(sphere->worldPose().position, s.radius(),
                          bp.rotation, bp.position, bx.halfExtents());
        }
    }
    ssBatch_.prepareOutputs();
    sbBatch_.prepareOutputs();
    if (ssBatch_.size() > 0)
        backend_->sphereSphereBatch(ssBatch_, stats_.kernels);
    if (sbBatch_.size() > 0)
        backend_->sphereBoxBatch(sbBatch_, stats_.kernels);

    // Pass 2: emit in the original pair order, so the contact list
    // (and every downstream solver row) is independent of the
    // batching. The stats protocol per pair matches collide()
    // exactly.
    for (std::size_t i = 0; i < n; ++i) {
        const Geom &a = *pairA_[i];
        const Geom &b = *pairB_[i];
        const std::uint8_t kind = pairKind_[i];
        if (kind == pairOther) {
            collide(a, b, out);
            continue;
        }
        const auto s = static_cast<std::size_t>(pairSlot_[i]);
        if (kind == pairSphereBox && sbBatch_.hit[s] == 2) {
            // Sphere center essentially inside the box: the branchy
            // nearest-face exit runs on the scalar dispatcher.
            collide(a, b, out);
            continue;
        }
        ++stats_.pairsTested;
        const auto ta = static_cast<int>(a.shape().type());
        const auto tb = static_cast<int>(b.shape().type());
        ++stats_.testsByType[std::min(ta, tb)][std::max(ta, tb)];
        bool hit;
        Contact c;
        if (kind == pairSphereSphere) {
            hit = ssBatch_.hit[s] != 0;
            if (hit) {
                c.position = {ssBatch_.px[s], ssBatch_.py[s],
                              ssBatch_.pz[s]};
                c.normal = {ssBatch_.nx[s], ssBatch_.ny[s],
                            ssBatch_.nz[s]};
                c.depth = ssBatch_.depth[s];
            }
        } else {
            hit = sbBatch_.hit[s] != 0;
            if (hit) {
                c.position = {sbBatch_.px[s], sbBatch_.py[s],
                              sbBatch_.pz[s]};
                c.normal = {sbBatch_.nx[s], sbBatch_.ny[s],
                            sbBatch_.nz[s]};
                c.depth = sbBatch_.depth[s];
            }
        }
        if (hit) {
            // The batch normal points toward the sphere; the contact
            // convention wants it toward geom A.
            if (pairFlip_[i] != 0)
                c.normal = -c.normal;
            c.geomA = a.id();
            c.geomB = b.id();
            out.push_back(c);
            ++stats_.pairsColliding;
            ++stats_.contactsCreated;
        }
    }
}

template <typename ContactSink>
void
Narrowphase::collideOrdered(const Geom &a, const Geom &b,
                            ContactSink &out, bool flipped)
{
    const ShapeType sa = a.shape().type();
    const ShapeType sb = b.shape().type();

    // Canonicalize: handle each combination with a <= b in type order
    // by re-dispatching with the arguments swapped.
    if (static_cast<int>(sa) > static_cast<int>(sb)) {
        collideOrdered(b, a, out, !flipped);
        return;
    }

    auto emit = [&](const RawContact &rc) {
        Contact c;
        c.position = rc.position;
        c.depth = rc.depth;
        if (flipped) {
            c.geomA = b.id();
            c.geomB = a.id();
            c.normal = -rc.normal;
        } else {
            c.geomA = a.id();
            c.geomB = b.id();
            c.normal = rc.normal;
        }
        out.push_back(c);
    };

    const Transform pa = a.worldPose();
    const Transform pb = b.worldPose();

    if (sa == ShapeType::Sphere && sb == ShapeType::Sphere) {
        const auto &s1 = static_cast<const SphereShape &>(a.shape());
        const auto &s2 = static_cast<const SphereShape &>(b.shape());
        if (auto rc = sphereSphere(pa.position, s1.radius(),
                                   pb.position, s2.radius()))
            emit(*rc);
    } else if (sa == ShapeType::Sphere && sb == ShapeType::Box) {
        const auto &s = static_cast<const SphereShape &>(a.shape());
        const auto &box = static_cast<const BoxShape &>(b.shape());
        if (auto rc = sphereBox(pa.position, s.radius(), pb,
                                box.halfExtents()))
            emit(*rc);
    } else if (sa == ShapeType::Sphere && sb == ShapeType::Plane) {
        const auto &s = static_cast<const SphereShape &>(a.shape());
        const auto &plane = static_cast<const PlaneShape &>(b.shape());
        const Real dist = plane.distance(pa.position);
        if (dist <= s.radius()) {
            emit(RawContact{pa.position - plane.normal() * dist,
                            plane.normal(), s.radius() - dist});
        }
    } else if (sa == ShapeType::Sphere && sb == ShapeType::Capsule) {
        const auto &s = static_cast<const SphereShape &>(a.shape());
        const auto &cap = static_cast<const CapsuleShape &>(b.shape());
        Vec3 p, q;
        cap.segment(pb, p, q);
        const Vec3 closest = closestOnSegment(p, q, pa.position);
        if (auto rc = sphereSphere(pa.position, s.radius(), closest,
                                   cap.radius()))
            emit(*rc);
    } else if (sa == ShapeType::Sphere &&
               sb == ShapeType::Heightfield) {
        const auto &s = static_cast<const SphereShape &>(a.shape());
        const auto &hf =
            static_cast<const HeightfieldShape &>(b.shape());
        if (auto rc = sphereHeightfield(pa.position, s.radius(), pb,
                                        hf))
            emit(*rc);
    } else if (sa == ShapeType::Sphere && sb == ShapeType::TriMesh) {
        const auto &s = static_cast<const SphereShape &>(a.shape());
        const auto &mesh =
            static_cast<const TriMeshShape &>(b.shape());
        const Vec3 c_local = pb.applyInverse(pa.position);
        const Real r = s.radius();
        const Aabb query{
            {c_local.x - r, c_local.y - r, c_local.z - r},
            {c_local.x + r, c_local.y + r, c_local.z + r}};
        int made = 0;
        for (std::uint32_t tri : mesh.query(query)) {
            Vec3 va, vb, vc;
            mesh.triangleCorners(tri, pb, va, vb, vc);
            if (auto rc = sphereTriangle(pa.position, r, va, vb, vc)) {
                emit(*rc);
                if (++made >= maxContactsPerPair)
                    break;
            }
        }
    } else if (sa == ShapeType::Box && sb == ShapeType::Box) {
        collideBoxBox(a, b, out, flipped);
    } else if (sa == ShapeType::Box && sb == ShapeType::Plane) {
        collideBoxPlane(a, b, out, flipped);
    } else if (sa == ShapeType::Box && sb == ShapeType::Capsule) {
        // Capsule sampled as spheres versus the exact box.
        const auto &box = static_cast<const BoxShape &>(a.shape());
        int made = 0;
        for (const auto &[center, radius] : sampleSpheres(b)) {
            if (auto rc = sphereBox(center, radius, pa,
                                    box.halfExtents())) {
                // rc's normal points toward the capsule sample (the
                // "sphere" side), i.e. toward b; our convention needs
                // it toward a, so flip relative to emit's handling.
                RawContact flippedRc{rc->position, -rc->normal,
                                     rc->depth};
                emit(flippedRc);
                if (++made >= maxContactsPerPair)
                    break;
            }
        }
    } else if (sa == ShapeType::Box &&
               (sb == ShapeType::Heightfield ||
                sb == ShapeType::TriMesh)) {
        collideSampledVsStatic(a, b, out, flipped);
    } else if (sa == ShapeType::Capsule && sb == ShapeType::Capsule) {
        collideCapsuleCapsule(a, b, out, flipped);
    } else if (sa == ShapeType::Capsule && sb == ShapeType::Plane) {
        const auto &cap = static_cast<const CapsuleShape &>(a.shape());
        const auto &plane = static_cast<const PlaneShape &>(b.shape());
        Vec3 p, q;
        cap.segment(pa, p, q);
        for (const Vec3 &end : {p, q}) {
            const Real dist = plane.distance(end);
            if (dist <= cap.radius()) {
                emit(RawContact{end - plane.normal() * dist,
                                plane.normal(),
                                cap.radius() - dist});
            }
        }
    } else if (sa == ShapeType::Capsule &&
               (sb == ShapeType::Heightfield ||
                sb == ShapeType::TriMesh)) {
        collideSampledVsStatic(a, b, out, flipped);
    }
    // All remaining combinations pair two static environment shapes
    // and are filtered out by the broadphase.
}

template <typename ContactSink>
void
Narrowphase::collideBoxBox(const Geom &a, const Geom &b,
                           ContactSink &out, bool flipped)
{
    const auto &ba = static_cast<const BoxShape &>(a.shape());
    const auto &bb = static_cast<const BoxShape &>(b.shape());
    const Transform pa = a.worldPose();
    const Transform pb = b.worldPose();
    const Mat3 ra = pa.rotation.toMat3();
    const Mat3 rb = pb.rotation.toMat3();
    const Vec3 ha = ba.halfExtents();
    const Vec3 hb = bb.halfExtents();
    const Vec3 d = pa.position - pb.position;

    auto projectedRadius = [](const Mat3 &rot, const Vec3 &half,
                              const Vec3 &axis) {
        return std::fabs(rot.column(0).dot(axis)) * half.x +
               std::fabs(rot.column(1).dot(axis)) * half.y +
               std::fabs(rot.column(2).dot(axis)) * half.z;
    };

    // Separating-axis test over the 15 candidate axes. Face axes are
    // slightly favored over edge cross products (the 1.01 bias) so
    // near-ties produce stable face manifolds instead of flickering
    // edge contacts.
    Real best_depth = 1e30;
    Vec3 best_axis;
    bool best_is_face_of_a = true;
    bool best_is_face = true;
    bool separated = false;

    auto testAxis = [&](Vec3 axis, bool is_face, bool is_a) {
        const Real len = axis.length();
        if (len < 1e-9)
            return; // Degenerate cross-product axis: skip.
        axis = axis / len;
        const Real overlap = projectedRadius(ra, ha, axis) +
                             projectedRadius(rb, hb, axis) -
                             std::fabs(d.dot(axis));
        if (overlap < 0) {
            separated = true;
            return;
        }
        const Real bias = is_face ? 1.0 : 1.01;
        if (overlap * bias < best_depth) {
            best_depth = overlap;
            best_axis = d.dot(axis) >= 0 ? axis : -axis;
            best_is_face = is_face;
            best_is_face_of_a = is_a;
        }
    };

    for (int i = 0; i < 3 && !separated; ++i)
        testAxis(ra.column(i), true, true);
    for (int i = 0; i < 3 && !separated; ++i)
        testAxis(rb.column(i), true, false);
    for (int i = 0; i < 3 && !separated; ++i)
        for (int j = 0; j < 3 && !separated; ++j)
            testAxis(ra.column(i).cross(rb.column(j)), false, false);
    if (separated)
        return;

    // Reference-face clipping (Sutherland-Hodgman), the standard
    // stable manifold for face contact: clip the incident face of
    // the other box against the side planes of the reference face,
    // keep the clipped vertices behind the reference plane.
    const bool ref_is_a = best_is_face ? best_is_face_of_a : true;
    const Transform &ref_pose = ref_is_a ? pa : pb;
    const Transform &inc_pose = ref_is_a ? pb : pa;
    const Mat3 &ref_rot = ref_is_a ? ra : rb;
    const Mat3 &inc_rot = ref_is_a ? rb : ra;
    const Vec3 &ref_h = ref_is_a ? ha : hb;
    const Vec3 &inc_h = ref_is_a ? hb : ha;
    // Reference normal points from the reference box toward the
    // incident box. best_axis points B->A.
    const Vec3 ref_normal = ref_is_a ? -best_axis : best_axis;

    // Reference face: the ref box axis most aligned with ref_normal.
    int ref_face = 0;
    Real best_align = -1e30;
    Real ref_sign = 1.0;
    for (int i = 0; i < 3; ++i) {
        const Real align = ref_rot.column(i).dot(ref_normal);
        if (std::fabs(align) > best_align) {
            best_align = std::fabs(align);
            ref_face = i;
            ref_sign = align >= 0 ? 1.0 : -1.0;
        }
    }
    const Vec3 ref_face_normal = ref_rot.column(ref_face) * ref_sign;
    const Vec3 ref_face_center =
        ref_pose.position + ref_face_normal * ref_h[ref_face];

    // Incident face: the inc box face most anti-parallel to the
    // reference face normal.
    int inc_face = 0;
    Real most_anti = 1e30;
    Real inc_sign = 1.0;
    for (int i = 0; i < 3; ++i) {
        const Real align = inc_rot.column(i).dot(ref_face_normal);
        if (align < most_anti) {
            most_anti = align;
            inc_face = i;
            inc_sign = 1.0;
        }
        if (-align < most_anti) {
            most_anti = -align;
            inc_face = i;
            inc_sign = -1.0;
        }
    }
    const Vec3 inc_normal = inc_rot.column(inc_face) * inc_sign;
    const int iu = (inc_face + 1) % 3;
    const int iv = (inc_face + 2) % 3;
    const Vec3 inc_center =
        inc_pose.position + inc_normal * inc_h[inc_face];
    const Vec3 inc_u = inc_rot.column(iu) * inc_h[iu];
    const Vec3 inc_v = inc_rot.column(iv) * inc_h[iv];

    std::vector<Vec3> poly{
        inc_center + inc_u + inc_v, inc_center + inc_u - inc_v,
        inc_center - inc_u - inc_v, inc_center - inc_u + inc_v};

    // Clip against the four side planes of the reference face.
    const int ru = (ref_face + 1) % 3;
    const int rv = (ref_face + 2) % 3;
    struct ClipPlane { Vec3 n; Real offset; };
    const ClipPlane clip_planes[4] = {
        {ref_rot.column(ru),
         ref_rot.column(ru).dot(ref_pose.position) + ref_h[ru]},
        {-ref_rot.column(ru),
         -ref_rot.column(ru).dot(ref_pose.position) + ref_h[ru]},
        {ref_rot.column(rv),
         ref_rot.column(rv).dot(ref_pose.position) + ref_h[rv]},
        {-ref_rot.column(rv),
         -ref_rot.column(rv).dot(ref_pose.position) + ref_h[rv]}};

    for (const ClipPlane &plane : clip_planes) {
        std::vector<Vec3> clipped;
        clipped.reserve(poly.size() + 1);
        for (size_t i = 0; i < poly.size(); ++i) {
            const Vec3 &cur = poly[i];
            const Vec3 &nxt = poly[(i + 1) % poly.size()];
            const Real dc = plane.n.dot(cur) - plane.offset;
            const Real dn = plane.n.dot(nxt) - plane.offset;
            if (dc <= 0)
                clipped.push_back(cur);
            if ((dc < 0 && dn > 0) || (dc > 0 && dn < 0)) {
                const Real t = dc / (dc - dn);
                clipped.push_back(cur + (nxt - cur) * t);
            }
        }
        poly = std::move(clipped);
        if (poly.empty())
            break;
    }

    // Keep clipped points behind the reference face; their depth is
    // the distance below the face plane.
    struct Point { Vec3 pos; Real depth; };
    std::vector<Point> points;
    for (const Vec3 &p : poly) {
        const Real separation =
            ref_face_normal.dot(p - ref_face_center);
        if (separation <= 0)
            points.push_back({p, -separation});
    }

    if (points.empty()) {
        // Edge-edge contact (or grazing): fall back to the midpoint
        // of the overlap along the separating axis.
        points.push_back({(pa.position + pb.position) * 0.5,
                          best_depth});
    }

    // Keep the deepest points up to the manifold cap.
    std::sort(points.begin(), points.end(),
              [](const Point &x, const Point &y) {
                  return x.depth > y.depth;
              });
    const int keep = std::min<int>(static_cast<int>(points.size()),
                                   maxContactsPerPair);
    for (int i = 0; i < keep; ++i) {
        Contact c;
        c.position = points[i].pos;
        c.depth = points[i].depth;
        if (flipped) {
            c.geomA = b.id();
            c.geomB = a.id();
            c.normal = -best_axis;
        } else {
            c.geomA = a.id();
            c.geomB = b.id();
            c.normal = best_axis;
        }
        out.push_back(c);
    }
}

template <typename ContactSink>
void
Narrowphase::collideBoxPlane(const Geom &a, const Geom &b,
                             ContactSink &out, bool flipped)
{
    const auto &box = static_cast<const BoxShape &>(a.shape());
    const auto &plane = static_cast<const PlaneShape &>(b.shape());
    const Transform pose = a.worldPose();
    const Vec3 h = box.halfExtents();

    struct Corner { Vec3 pos; Real depth; };
    std::vector<Corner> corners;
    corners.reserve(8);
    for (int i = 0; i < 8; ++i) {
        const Vec3 local{(i & 1) ? h.x : -h.x,
                         (i & 2) ? h.y : -h.y,
                         (i & 4) ? h.z : -h.z};
        const Vec3 world = pose.apply(local);
        const Real dist = plane.distance(world);
        if (dist <= 0.0)
            corners.push_back(Corner{world, -dist});
    }
    if (corners.empty())
        return;
    std::sort(corners.begin(), corners.end(),
              [](const Corner &x, const Corner &y) {
                  return x.depth > y.depth;
              });
    const int keep = std::min<int>(static_cast<int>(corners.size()),
                                   maxContactsPerPair);
    for (int i = 0; i < keep; ++i) {
        Contact c;
        c.position = corners[i].pos;
        c.depth = corners[i].depth;
        if (flipped) {
            c.geomA = b.id();
            c.geomB = a.id();
            c.normal = -plane.normal();
        } else {
            c.geomA = a.id();
            c.geomB = b.id();
            c.normal = plane.normal();
        }
        out.push_back(c);
    }
}

template <typename ContactSink>
void
Narrowphase::collideCapsuleCapsule(const Geom &a, const Geom &b,
                                   ContactSink &out, bool flipped)
{
    const auto &ca = static_cast<const CapsuleShape &>(a.shape());
    const auto &cb = static_cast<const CapsuleShape &>(b.shape());
    Vec3 p1, q1, p2, q2;
    ca.segment(a.worldPose(), p1, q1);
    cb.segment(b.worldPose(), p2, q2);

    // Closest points between the two segments (Ericson 5.1.9).
    const Vec3 d1 = q1 - p1;
    const Vec3 d2 = q2 - p2;
    const Vec3 r = p1 - p2;
    const Real aa = d1.lengthSquared();
    const Real ee = d2.lengthSquared();
    const Real f = d2.dot(r);
    Real s = 0.0, t = 0.0;
    if (aa > 1e-18) {
        const Real c = d1.dot(r);
        if (ee > 1e-18) {
            const Real bb = d1.dot(d2);
            const Real denom = aa * ee - bb * bb;
            if (denom > 1e-18)
                s = std::clamp((bb * f - c * ee) / denom, 0.0, 1.0);
            t = (bb * s + f) / ee;
            if (t < 0.0) {
                t = 0.0;
                s = std::clamp(-c / aa, 0.0, 1.0);
            } else if (t > 1.0) {
                t = 1.0;
                s = std::clamp((bb - c) / aa, 0.0, 1.0);
            }
        } else {
            s = std::clamp(-c / aa, 0.0, 1.0);
        }
    } else if (ee > 1e-18) {
        t = std::clamp(f / ee, 0.0, 1.0);
    }
    const Vec3 c1 = p1 + d1 * s;
    const Vec3 c2 = p2 + d2 * t;
    if (auto rc = sphereSphere(c1, ca.radius(), c2, cb.radius())) {
        Contact c;
        c.position = rc->position;
        c.depth = rc->depth;
        if (flipped) {
            c.geomA = b.id();
            c.geomB = a.id();
            c.normal = -rc->normal;
        } else {
            c.geomA = a.id();
            c.geomB = b.id();
            c.normal = rc->normal;
        }
        out.push_back(c);
    }
}

template <typename ContactSink>
void
Narrowphase::collideSampledVsStatic(const Geom &a, const Geom &b,
                                    ContactSink &out, bool flipped)
{
    const Transform pb = b.worldPose();
    int made = 0;
    for (const auto &[center, radius] : sampleSpheres(a)) {
        std::optional<RawContact> rc;
        if (b.shape().type() == ShapeType::Heightfield) {
            const auto &hf =
                static_cast<const HeightfieldShape &>(b.shape());
            rc = sphereHeightfield(center, radius, pb, hf);
        } else {
            const auto &mesh =
                static_cast<const TriMeshShape &>(b.shape());
            const Vec3 c_local = pb.applyInverse(center);
            const Aabb query{
                {c_local.x - radius, c_local.y - radius,
                 c_local.z - radius},
                {c_local.x + radius, c_local.y + radius,
                 c_local.z + radius}};
            for (std::uint32_t tri : mesh.query(query)) {
                Vec3 va, vb, vc;
                mesh.triangleCorners(tri, pb, va, vb, vc);
                rc = sphereTriangle(center, radius, va, vb, vc);
                if (rc)
                    break;
            }
        }
        if (rc) {
            Contact c;
            c.position = rc->position;
            c.depth = rc->depth;
            if (flipped) {
                c.geomA = b.id();
                c.geomB = a.id();
                c.normal = -rc->normal;
            } else {
                c.geomA = a.id();
                c.geomB = b.id();
                c.normal = rc->normal;
            }
            out.push_back(c);
            if (++made >= maxContactsPerPair)
                break;
        }
    }
}

// The two sinks the engine uses: plain vectors on the serial path
// and per-lane arena vectors on the parallel path.
template int Narrowphase::collide<std::vector<Contact>>(
    const Geom &, const Geom &, std::vector<Contact> &);
template int Narrowphase::collide<ArenaVector<Contact>>(
    const Geom &, const Geom &, ArenaVector<Contact> &);
template void Narrowphase::batchRun<std::vector<Contact>>(
    std::vector<Contact> &);
template void Narrowphase::batchRun<ArenaVector<Contact>>(
    ArenaVector<Contact> &);

} // namespace parallax
