/**
 * @file
 * Contact points produced by the narrowphase.
 */

#ifndef PARALLAX_PHYSICS_NARROWPHASE_CONTACT_HH
#define PARALLAX_PHYSICS_NARROWPHASE_CONTACT_HH

#include <cstdint>

#include "physics/geom.hh"
#include "physics/kernels/kernel_backend.hh"
#include "physics/math/vec3.hh"

namespace parallax
{

/**
 * A single contact point between two geoms.
 *
 * The normal points from geom B toward geom A; pushing A along the
 * normal (and B against it) separates the pair. Depth is the
 * penetration distance (positive when overlapping).
 */
struct Contact
{
    Vec3 position;
    Vec3 normal;
    Real depth = 0.0;
    GeomId geomA = invalidGeomId;
    GeomId geomB = invalidGeomId;
};

/** Observability counters for the narrowphase phase. */
struct NarrowphaseStats
{
    std::uint64_t pairsTested = 0;
    std::uint64_t pairsColliding = 0;
    std::uint64_t contactsCreated = 0;
    /** Pair tests by (unordered) shape-type combination. */
    std::uint64_t testsByType[6][6] = {};
    /** Vector-engine counters (zero under the Scalar backend). */
    KernelStats kernels;

    void
    reset()
    {
        *this = NarrowphaseStats();
    }

    /** Fold another instance's counters into this one. */
    void
    merge(const NarrowphaseStats &o)
    {
        pairsTested += o.pairsTested;
        pairsColliding += o.pairsColliding;
        contactsCreated += o.contactsCreated;
        for (int i = 0; i < 6; ++i)
            for (int j = 0; j < 6; ++j)
                testsByType[i][j] += o.testsByType[i][j];
        kernels.merge(o.kernels);
    }
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_NARROWPHASE_CONTACT_HH
