/**
 * @file
 * Narrowphase collision dispatcher.
 *
 * Determines the contact points between each pair of colliding geoms
 * (section 3.2). Every object-pair is independent of every other,
 * which is the source of this phase's massive fine-grain parallelism.
 */

#ifndef PARALLAX_PHYSICS_NARROWPHASE_COLLIDE_HH
#define PARALLAX_PHYSICS_NARROWPHASE_COLLIDE_HH

#include <vector>

#include "contact.hh"

namespace parallax
{

/** Maximum contacts generated for one pair (ODE-style manifold cap). */
constexpr int maxContactsPerPair = 4;

/**
 * Stateless narrowphase: dispatches on the shape types of the two
 * geoms and appends contact points to `out`.
 */
class Narrowphase
{
  public:
    /**
     * Generate contacts for one pair. `ContactSink` is any container
     * of Contact with push_back/size/operator[] — std::vector for
     * the serial path, ArenaVector for parallel workers writing into
     * their lane's frame arena. Definitions live in collide.cc with
     * explicit instantiations for exactly those two sinks.
     *
     * @return Number of contacts appended.
     */
    template <typename ContactSink>
    int collide(const Geom &a, const Geom &b, ContactSink &out);

    const NarrowphaseStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    /** Merge a worker instance's counters (parallel narrowphase). */
    void mergeStats(const NarrowphaseStats &o) { stats_.merge(o); }

  private:
    /**
     * Dispatch with canonical type ordering; `flipped` records that
     * the caller's (a, b) were swapped so ids/normals are restored.
     */
    template <typename ContactSink>
    void collideOrdered(const Geom &a, const Geom &b,
                        ContactSink &out, bool flipped);

    template <typename ContactSink>
    void collideBoxBox(const Geom &a, const Geom &b,
                       ContactSink &out, bool flipped);
    template <typename ContactSink>
    void collideBoxPlane(const Geom &a, const Geom &b,
                         ContactSink &out, bool flipped);
    template <typename ContactSink>
    void collideCapsuleCapsule(const Geom &a, const Geom &b,
                               ContactSink &out, bool flipped);
    template <typename ContactSink>
    void collideSampledVsStatic(const Geom &a, const Geom &b,
                                ContactSink &out, bool flipped);

    NarrowphaseStats stats_;
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_NARROWPHASE_COLLIDE_HH
