/**
 * @file
 * Narrowphase collision dispatcher.
 *
 * Determines the contact points between each pair of colliding geoms
 * (section 3.2). Every object-pair is independent of every other,
 * which is the source of this phase's massive fine-grain parallelism.
 */

#ifndef PARALLAX_PHYSICS_NARROWPHASE_COLLIDE_HH
#define PARALLAX_PHYSICS_NARROWPHASE_COLLIDE_HH

#include <vector>

#include "contact.hh"

namespace parallax
{

/** Maximum contacts generated for one pair (ODE-style manifold cap). */
constexpr int maxContactsPerPair = 4;

/**
 * Stateless narrowphase: dispatches on the shape types of the two
 * geoms and appends contact points to `out`.
 */
class Narrowphase
{
  public:
    /**
     * Generate contacts for one pair.
     *
     * @return Number of contacts appended.
     */
    int collide(const Geom &a, const Geom &b, std::vector<Contact> &out);

    const NarrowphaseStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    /** Merge a worker instance's counters (parallel narrowphase). */
    void mergeStats(const NarrowphaseStats &o) { stats_.merge(o); }

  private:
    /**
     * Dispatch with canonical type ordering; `flipped` records that
     * the caller's (a, b) were swapped so ids/normals are restored.
     */
    void collideOrdered(const Geom &a, const Geom &b,
                        std::vector<Contact> &out, bool flipped);

    void collideBoxBox(const Geom &a, const Geom &b,
                       std::vector<Contact> &out, bool flipped);
    void collideBoxPlane(const Geom &a, const Geom &b,
                         std::vector<Contact> &out, bool flipped);
    void collideCapsuleCapsule(const Geom &a, const Geom &b,
                               std::vector<Contact> &out, bool flipped);
    void collideSampledVsStatic(const Geom &a, const Geom &b,
                                std::vector<Contact> &out, bool flipped);

    NarrowphaseStats stats_;
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_NARROWPHASE_COLLIDE_HH
