/**
 * @file
 * Narrowphase collision dispatcher.
 *
 * Determines the contact points between each pair of colliding geoms
 * (section 3.2). Every object-pair is independent of every other,
 * which is the source of this phase's massive fine-grain parallelism.
 */

#ifndef PARALLAX_PHYSICS_NARROWPHASE_COLLIDE_HH
#define PARALLAX_PHYSICS_NARROWPHASE_COLLIDE_HH

#include <vector>

#include "contact.hh"

namespace parallax
{

/** Maximum contacts generated for one pair (ODE-style manifold cap). */
constexpr int maxContactsPerPair = 4;

/**
 * Stateless narrowphase: dispatches on the shape types of the two
 * geoms and appends contact points to `out`.
 */
class Narrowphase
{
  public:
    /**
     * Generate contacts for one pair. `ContactSink` is any container
     * of Contact with push_back/size/operator[] — std::vector for
     * the serial path, ArenaVector for parallel workers writing into
     * their lane's frame arena. Definitions live in collide.cc with
     * explicit instantiations for exactly those two sinks.
     *
     * @return Number of contacts appended.
     */
    template <typename ContactSink>
    int collide(const Geom &a, const Geom &b, ContactSink &out);

    /**
     * Batched pair testing: accumulate pairs with batchAdd, then
     * batchRun appends their contacts to `out` in the order the
     * pairs were added — exactly the contacts (and stats) the
     * per-pair collide() loop would produce. Under a Native backend
     * the sphere/sphere and sphere/box pairs run through the SIMD
     * batch kernels; every other shape combination (and the deep
     * sphere-in-box case) falls through to the scalar dispatcher.
     */
    void batchClear();
    void batchAdd(const Geom *a, const Geom *b);
    template <typename ContactSink>
    void batchRun(ContactSink &out);

    /** Select the kernel backend for batched pair tests. nullptr
     *  (the default) means the scalar reference backend. */
    void setBackend(const KernelBackend *backend) { backend_ = backend; }

    const NarrowphaseStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    /** Merge a worker instance's counters (parallel narrowphase). */
    void mergeStats(const NarrowphaseStats &o) { stats_.merge(o); }

  private:
    /**
     * Dispatch with canonical type ordering; `flipped` records that
     * the caller's (a, b) were swapped so ids/normals are restored.
     */
    template <typename ContactSink>
    void collideOrdered(const Geom &a, const Geom &b,
                        ContactSink &out, bool flipped);

    template <typename ContactSink>
    void collideBoxBox(const Geom &a, const Geom &b,
                       ContactSink &out, bool flipped);
    template <typename ContactSink>
    void collideBoxPlane(const Geom &a, const Geom &b,
                         ContactSink &out, bool flipped);
    template <typename ContactSink>
    void collideCapsuleCapsule(const Geom &a, const Geom &b,
                               ContactSink &out, bool flipped);
    template <typename ContactSink>
    void collideSampledVsStatic(const Geom &a, const Geom &b,
                                ContactSink &out, bool flipped);

    NarrowphaseStats stats_;
    const KernelBackend *backend_ = nullptr;

    // Batch scratch, persistent across batchRun calls (capacity is
    // paid once per instance; one instance per lane keeps it
    // race-free).
    std::vector<const Geom *> pairA_, pairB_;
    std::vector<std::uint8_t> pairKind_, pairFlip_;
    std::vector<std::int32_t> pairSlot_;
    SphereSphereBatch ssBatch_;
    SphereBoxBatch sbBatch_;
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_NARROWPHASE_COLLIDE_HH
