/**
 * @file
 * Collision geometry attached to a body.
 */

#ifndef PARALLAX_PHYSICS_GEOM_HH
#define PARALLAX_PHYSICS_GEOM_HH

#include <cstdint>

#include "body.hh"
#include "physics/math/aabb.hh"
#include "physics/shapes/shape.hh"

namespace parallax
{

/** Identifier of a geom within its World. */
using GeomId = std::uint32_t;

constexpr GeomId invalidGeomId = ~GeomId(0);

/**
 * Placement of a Shape in the world, optionally offset from its
 * body's frame. Geom-level flags drive the benchmark features of
 * Table 2: explosives (blast spheres on contact) and pre-fractured
 * pieces (debris enabled when the parent breaks).
 */
class Geom
{
  public:
    Geom(GeomId id, const Shape *shape, RigidBody *body,
         const Transform &local_offset = Transform());

    GeomId id() const { return id_; }
    const Shape &shape() const { return *shape_; }
    RigidBody *body() const { return body_; }

    /** World-space pose: body pose composed with the local offset. */
    Transform worldPose() const;

    /** Cached world-space AABB from the last updateBounds() call. */
    const Aabb &bounds() const { return bounds_; }

    /** Recompute the cached AABB from the current body pose. */
    void updateBounds();

    bool enabled() const { return body_ == nullptr || body_->enabled(); }

    /** Explosive objects spawn a blast sphere on first contact. */
    bool explosive() const { return explosive_; }
    void setExplosive(bool e) { explosive_ = e; }

    /** Blast spheres: transient, apply impulses, break prefractured. */
    bool isBlast() const { return blast_; }
    void setBlast(bool b) { blast_ = b; }

    /** Marker linking a geom to a pre-fractured parent object. */
    std::uint32_t fractureGroup() const { return fractureGroup_; }
    void setFractureGroup(std::uint32_t g) { fractureGroup_ = g; }
    static constexpr std::uint32_t noFractureGroup = ~std::uint32_t(0);

  private:
    GeomId id_;
    const Shape *shape_;
    RigidBody *body_;
    Transform localOffset_;
    Aabb bounds_;
    bool explosive_ = false;
    bool blast_ = false;
    std::uint32_t fractureGroup_ = noFractureGroup;
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_GEOM_HH
