#include "geom.hh"

#include "sim/logging.hh"

namespace parallax
{

Geom::Geom(GeomId id, const Shape *shape, RigidBody *body,
           const Transform &local_offset)
    : id_(id), shape_(shape), body_(body), localOffset_(local_offset)
{
    if (shape == nullptr)
        fatal("geom requires a shape");
    updateBounds();
}

Transform
Geom::worldPose() const
{
    if (body_ == nullptr)
        return localOffset_;
    return body_->pose() * localOffset_;
}

void
Geom::updateBounds()
{
    bounds_ = shape_->bounds(worldPose());
}

} // namespace parallax
