/**
 * @file
 * Rigid body state and dynamics.
 */

#ifndef PARALLAX_PHYSICS_BODY_HH
#define PARALLAX_PHYSICS_BODY_HH

#include <cstdint>

#include "physics/math/transform.hh"

namespace parallax
{

class Shape;

/** Identifier of a body within its World. */
using BodyId = std::uint32_t;

constexpr BodyId invalidBodyId = ~BodyId(0);

/**
 * A rigid body: pose, velocities, mass properties and force
 * accumulators. Static bodies have zero inverse mass and never move;
 * they participate in collision detection only, matching the "static
 * obstacles" feature of the benchmark suite (Table 2).
 */
class RigidBody
{
  public:
    RigidBody(BodyId id, const Transform &pose, Real mass,
              const Mat3 &inertia);

    /** Create an immovable body at the given pose. */
    static RigidBody makeStatic(BodyId id, const Transform &pose);

    BodyId id() const { return id_; }
    bool isStatic() const { return invMass_ == 0.0; }

    /** Disabled bodies are skipped by every phase (debris pre-break). */
    bool enabled() const { return enabled_; }

    void
    setEnabled(bool e)
    {
        enabled_ = e;
        if (e)
            wake();
    }

    /**
     * Auto-disable (sleeping): a body whose island has been at rest
     * for enough steps stops simulating until disturbed. Sleeping
     * bodies still collide (a contact from an awake body wakes the
     * whole island).
     */
    bool asleep() const { return asleep_; }

    /** Clear sleep state (external disturbance). */
    void
    wake()
    {
        asleep_ = false;
        sleepCounter_ = 0;
    }

    /** Put the body to sleep (island-level decision by the world). */
    void
    sleep()
    {
        asleep_ = true;
        linVel_ = {};
        angVel_ = {};
    }

    int sleepCounter() const { return sleepCounter_; }
    void incrementSleepCounter() { ++sleepCounter_; }

    /** Restore exact sleep bookkeeping (snapshot replay): unlike
     *  wake()/sleep(), touches no other state. */
    void
    setSleepState(bool asleep, int counter)
    {
        asleep_ = asleep;
        sleepCounter_ = counter;
    }

    const Transform &pose() const { return pose_; }
    const Vec3 &position() const { return pose_.position; }
    const Quat &orientation() const { return pose_.rotation; }
    void setPose(const Transform &pose) { pose_ = pose; }

    const Vec3 &linearVelocity() const { return linVel_; }
    const Vec3 &angularVelocity() const { return angVel_; }
    void setLinearVelocity(const Vec3 &v) { linVel_ = v; }
    void setAngularVelocity(const Vec3 &w) { angVel_ = w; }

    Real mass() const { return mass_; }
    Real invMass() const { return invMass_; }
    const Mat3 &invInertiaBody() const { return invInertiaBody_; }

    /** Inverse inertia tensor in world coordinates. */
    Mat3 invInertiaWorld() const;

    /** Accumulate a force through the center of mass. */
    void applyForce(const Vec3 &f) { force_ += f; }

    /** Accumulate a torque. */
    void applyTorque(const Vec3 &t) { torque_ += t; }

    /** Accumulate a force applied at a world-space point. */
    void applyForceAtPoint(const Vec3 &f, const Vec3 &point);

    /** Instantaneously change velocity by an impulse at a point. */
    void applyImpulse(const Vec3 &impulse, const Vec3 &point);

    const Vec3 &force() const { return force_; }
    const Vec3 &torque() const { return torque_; }
    void clearAccumulators() { force_ = {}; torque_ = {}; }

    /** Velocity of a world-space point attached to the body. */
    Vec3 velocityAt(const Vec3 &point) const;

    /**
     * Semi-implicit Euler integration: velocities from accumulated
     * loads, then pose from velocities. No-op for static bodies.
     */
    void integrate(Real dt);

    /** First integration half: update velocities from forces. */
    void integrateVelocities(Real dt);

    /** Second integration half: update pose from velocities. */
    void integratePositions(Real dt);

    /** Island assigned by the most recent island-creation phase. */
    std::uint32_t islandId() const { return islandId_; }
    void setIslandId(std::uint32_t id) { islandId_ = id; }

    /**
     * Position within Island::bodies, stamped by the island builder
     * each step: the solver's dense replacement for a body->index
     * hash map. Stale for bodies that are currently static, disabled,
     * or outside every island — callers must check those conditions
     * before trusting it.
     */
    int solverIndex() const { return solverIndex_; }
    void setSolverIndex(int index) { solverIndex_ = index; }

  private:
    BodyId id_;
    Transform pose_;
    Vec3 linVel_;
    Vec3 angVel_;
    Vec3 force_;
    Vec3 torque_;
    Real mass_;
    Real invMass_;
    Mat3 inertiaBody_;
    Mat3 invInertiaBody_;
    bool enabled_ = true;
    bool asleep_ = false;
    int sleepCounter_ = 0;
    std::uint32_t islandId_ = ~std::uint32_t(0);
    int solverIndex_ = -1;
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_BODY_HH
