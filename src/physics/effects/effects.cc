#include "effects.hh"

#include <algorithm>
#include <cmath>

#include "physics/world.hh"
#include "sim/logging.hh"

namespace parallax
{

void
EffectsManager::registerExplosive(GeomId geom, const BlastConfig &config)
{
    if (config.radius <= 0 || config.duration <= 0)
        fatal("blast radius and duration must be positive");
    explosives_[geom] = config;
}

void
EffectsManager::registerFractureGroup(BodyId parent,
                                      std::vector<BodyId> debris)
{
    if (debris.empty())
        fatal("fracture group needs at least one debris body");
    fractureByParent_[parent] = fractureGroups_.size();
    fractureGroups_.push_back(FractureGroup{parent, std::move(debris),
                                            false});
}

EffectsManager::State
EffectsManager::captureState() const
{
    State state;
    state.explosives.reserve(explosives_.size());
    for (const auto &[geom, config] : explosives_)
        state.explosives.push_back(State::PendingExplosive{geom, config});
    // The map iterates in hash order; sort so captures of the same
    // world state are byte-identical.
    std::sort(state.explosives.begin(), state.explosives.end(),
              [](const State::PendingExplosive &a,
                 const State::PendingExplosive &b) {
                  return a.geom < b.geom;
              });
    state.blasts = blasts_;
    state.fractureBroken.reserve(fractureGroups_.size());
    for (const FractureGroup &group : fractureGroups_)
        state.fractureBroken.push_back(group.broken ? 1 : 0);
    return state;
}

std::string
EffectsManager::restoreState(const State &state)
{
    if (state.fractureBroken.size() != fractureGroups_.size()) {
        return "snapshot has " +
               std::to_string(state.fractureBroken.size()) +
               " fracture groups but the world has " +
               std::to_string(fractureGroups_.size());
    }
    explosives_.clear();
    for (const State::PendingExplosive &e : state.explosives)
        explosives_[e.geom] = e.config;
    blasts_ = state.blasts;
    for (std::size_t i = 0; i < fractureGroups_.size(); ++i)
        fractureGroups_[i].broken = state.fractureBroken[i] != 0;
    return "";
}

void
EffectsManager::onContacts(World &world,
                           const std::vector<Contact> &contacts)
{
    for (const Contact &c : contacts) {
        const Geom *ga = world.geom(c.geomA);
        const Geom *gb = world.geom(c.geomB);
        if (ga == nullptr || gb == nullptr)
            continue;

        // Explosive touched something (that is not a blast volume):
        // replace it with a blast sphere.
        for (const Geom *g : {ga, gb}) {
            const Geom *other = g == ga ? gb : ga;
            if (g->explosive() && g->enabled() && !other->isBlast()) {
                if (throttled_) {
                    ++stats_.triggersThrottled;
                    continue;
                }
                triggerExplosion(world, g->id());
            }
        }

        // Pre-fractured object touched a blast volume: break it.
        for (const Geom *g : {ga, gb}) {
            const Geom *other = g == ga ? gb : ga;
            if (!other->isBlast() || g->body() == nullptr)
                continue;
            auto it = fractureByParent_.find(g->body()->id());
            if (it == fractureByParent_.end())
                continue;
            FractureGroup &group = fractureGroups_[it->second];
            if (group.broken)
                continue;
            if (throttled_) {
                ++stats_.triggersThrottled;
                continue;
            }
            {
                // Find the blast that owns the trigger geom for its
                // impulse magnitude.
                Real impulse = 100.0;
                Vec3 center = other->worldPose().position;
                for (const Blast &blast : blasts_) {
                    if (blast.geom == other->id()) {
                        impulse = blast.impulse;
                        center = blast.center;
                        break;
                    }
                }
                fracture(world, group, center, impulse);
            }
        }
    }
}

void
EffectsManager::triggerExplosion(World &world, GeomId geom_id)
{
    auto it = explosives_.find(geom_id);
    if (it == explosives_.end())
        return;
    const BlastConfig config = it->second;
    explosives_.erase(it);

    Geom *geom = world.geom(geom_id);
    parallax_assert(geom != nullptr);
    const Vec3 center = geom->worldPose().position;

    // Disable the exploding object.
    if (geom->body() != nullptr)
        geom->body()->setEnabled(false);

    // Create the blast volume: a trigger sphere on a static body.
    const SphereShape *sphere = world.addSphere(config.radius);
    RigidBody *anchor =
        world.createStaticBody(Transform(Quat(), center));
    Geom *blast_geom = world.createGeom(sphere, anchor);
    blast_geom->setBlast(true);

    blasts_.push_back(Blast{center, config.radius, config.impulse,
                            config.duration, config.duration,
                            blast_geom->id()});
    ++stats_.blastsTriggered;
}

void
EffectsManager::fracture(World &world, FractureGroup &group,
                         const Vec3 &blast_center, Real blast_impulse)
{
    group.broken = true;
    ++stats_.objectsFractured;

    RigidBody *parent = world.body(group.parent);
    if (parent != nullptr)
        parent->setEnabled(false);

    for (BodyId debris_id : group.debris) {
        RigidBody *debris = world.body(debris_id);
        if (debris == nullptr)
            continue;
        debris->setEnabled(true);
        ++stats_.debrisEnabled;
        // Kick the debris radially away from the blast.
        const Vec3 d = debris->position() - blast_center;
        const Real dist = d.length();
        const Vec3 dir = dist > 1e-9 ? d / dist : Vec3{0.0, 1.0, 0.0};
        const Real falloff = 1.0 / (1.0 + dist);
        debris->applyImpulse(dir * (blast_impulse * falloff * 0.1),
                             debris->position());
    }
}

void
EffectsManager::update(World &world, Real dt)
{
    for (Blast &blast : blasts_) {
        // Radial impulse to every dynamic body inside the radius.
        for (const auto &body : world.bodies()) {
            if (body == nullptr || body->isStatic() ||
                !body->enabled()) {
                continue;
            }
            const Vec3 d = body->position() - blast.center;
            const Real dist = d.length();
            if (dist > blast.radius)
                continue;
            const Vec3 dir =
                dist > 1e-9 ? d / dist : Vec3{0.0, 1.0, 0.0};
            const Real falloff = 1.0 - dist / blast.radius;
            // Spread the impulse evenly across the blast duration.
            const Real scale =
                blast.impulse * falloff * (dt / blast.duration);
            body->applyImpulse(dir * scale, body->position());
            ++stats_.bodiesPushed;
        }
        blast.remaining -= dt;
    }

    // Retire expired blasts (disable their trigger geoms).
    std::erase_if(blasts_, [&](const Blast &blast) {
        if (blast.remaining > 0)
            return false;
        Geom *geom = world.geom(blast.geom);
        if (geom != nullptr && geom->body() != nullptr)
            geom->body()->setEnabled(false);
        ++stats_.blastsExpired;
        return true;
    });
}

} // namespace parallax
