/**
 * @file
 * Gameplay physics effects: explosions and pre-fractured objects.
 *
 * From Table 2: each explosive object carries a flag; when it makes
 * contact with any other object it is replaced by a sphere
 * representing the blast radius, with predetermined radius and
 * duration, disabled when the duration is reached. Each pre-fractured
 * object contains a set amount of debris created at startup and
 * enabled once the object breaks (when it contacts a blast volume).
 */

#ifndef PARALLAX_PHYSICS_EFFECTS_EFFECTS_HH
#define PARALLAX_PHYSICS_EFFECTS_EFFECTS_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "physics/body.hh"
#include "physics/geom.hh"
#include "physics/narrowphase/contact.hh"

namespace parallax
{

class World;

/** Parameters of one explosive charge. */
struct BlastConfig
{
    Real radius = 4.0;
    Real duration = 0.1;  // Seconds the blast volume persists.
    Real impulse = 200.0; // Peak radial impulse at the center (N*s).
};

/** Observability counters for the effects subsystem. */
struct EffectsStats
{
    std::uint64_t blastsTriggered = 0;
    std::uint64_t blastsExpired = 0;
    std::uint64_t bodiesPushed = 0;
    std::uint64_t objectsFractured = 0;
    std::uint64_t debrisEnabled = 0;
    /** Triggers suppressed while the governor throttled spawning
     *  (they stay pending and fire once the throttle lifts). */
    std::uint64_t triggersThrottled = 0;

    void
    reset()
    {
        *this = EffectsStats();
    }
};

/**
 * Tracks explosives, active blast volumes, and fracture groups, and
 * applies their effects during the world step.
 */
class EffectsManager
{
  public:
    /** Mark a geom as explosive with the given blast parameters. */
    void registerExplosive(GeomId geom, const BlastConfig &config);

    /**
     * Register a pre-fractured object: when `parent` touches a blast
     * volume, it is disabled and its debris bodies are enabled.
     */
    void registerFractureGroup(BodyId parent,
                               std::vector<BodyId> debris);

    /**
     * React to this step's contacts: trigger explosives that touched
     * something and fracture objects that touched a blast volume.
     * Called by World between narrowphase and island creation.
     */
    void onContacts(World &world, const std::vector<Contact> &contacts);

    /**
     * Advance blast timers, apply radial impulses from active blast
     * volumes, and retire expired blasts. Called once per step.
     */
    void update(World &world, Real dt);

    /** Number of currently active blast volumes. */
    std::size_t activeBlasts() const { return blasts_.size(); }

    /**
     * Governor ladder level 7: suppress NEW blast/fracture spawning
     * (the expensive structural mutations). Active blasts keep
     * ticking; suppressed triggers stay pending and fire on the
     * first unthrottled contact.
     */
    void setThrottled(bool throttled) { throttled_ = throttled; }
    bool throttled() const { return throttled_; }

    const EffectsStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    struct Blast
    {
        Vec3 center;
        Real radius;
        Real impulse;
        Real duration;
        Real remaining;
        GeomId geom; // The blast-volume geom (for contact matching).
    };

    /**
     * All mutable effects state, extracted for snapshot capture
     * (debug/capture.hh): which explosives are still pending, the
     * active blast volumes, and which fracture groups already broke.
     */
    struct State
    {
        struct PendingExplosive
        {
            GeomId geom;
            BlastConfig config;
        };
        std::vector<PendingExplosive> explosives;
        std::vector<Blast> blasts;
        std::vector<std::uint8_t> fractureBroken;
    };

    /** Extract mutable state (explosives sorted by geom id). */
    State captureState() const;

    /**
     * Restore previously captured state. The fracture-group
     * registrations must match the capture (same scene build);
     * returns "" on success or a readable error.
     */
    std::string restoreState(const State &state);

  private:

    struct FractureGroup
    {
        BodyId parent;
        std::vector<BodyId> debris;
        bool broken = false;
    };

    void triggerExplosion(World &world, GeomId geom);
    void fracture(World &world, FractureGroup &group,
                  const Vec3 &blast_center, Real blast_impulse);

    std::unordered_map<GeomId, BlastConfig> explosives_;
    std::vector<Blast> blasts_;
    std::vector<FractureGroup> fractureGroups_;
    std::unordered_map<BodyId, std::size_t> fractureByParent_;
    EffectsStats stats_;
    bool throttled_ = false;
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_EFFECTS_EFFECTS_HH
