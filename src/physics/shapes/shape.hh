/**
 * @file
 * Collision shape base class.
 *
 * Shapes are immutable geometric descriptions; placement comes from
 * the owning Geom/RigidBody. Each shape knows how to compute its
 * world-space AABB (for the broadphase), its volume, and its inertia
 * tensor for unit mass (scaled by the body's mass at body setup).
 */

#ifndef PARALLAX_PHYSICS_SHAPES_SHAPE_HH
#define PARALLAX_PHYSICS_SHAPES_SHAPE_HH

#include "physics/math/aabb.hh"
#include "physics/math/mat3.hh"
#include "physics/math/transform.hh"

namespace parallax
{

/**
 * Discriminator for the concrete shape classes.
 *
 * Order matters: the narrowphase canonicalizes pairs so that the
 * lower-valued type comes first, and its dispatch table assumes
 * convex shapes (sphere, box, capsule) order before environment
 * shapes (plane, heightfield, trimesh).
 */
enum class ShapeType
{
    Sphere,
    Box,
    Capsule,
    Plane,
    Heightfield,
    TriMesh,
};

/** Human-readable name of a shape type. */
const char *shapeTypeName(ShapeType type);

/** Abstract collision shape. */
class Shape
{
  public:
    virtual ~Shape() = default;

    /** Concrete type of this shape. */
    virtual ShapeType type() const = 0;

    /** World-space bounding box under the given pose. */
    virtual Aabb bounds(const Transform &pose) const = 0;

    /** Enclosed volume; 0 for unbounded shapes (plane, heightfield). */
    virtual Real volume() const = 0;

    /**
     * Body-frame inertia tensor for unit mass, about the centroid.
     * Unbounded shapes return identity (they are always static).
     */
    virtual Mat3 unitInertia() const = 0;
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_SHAPES_SHAPE_HH
