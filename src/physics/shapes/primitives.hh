/**
 * @file
 * Bounded primitive shapes: sphere, box, capsule.
 */

#ifndef PARALLAX_PHYSICS_SHAPES_PRIMITIVES_HH
#define PARALLAX_PHYSICS_SHAPES_PRIMITIVES_HH

#include "shape.hh"

namespace parallax
{

/** Sphere of a given radius, centered at the body origin. */
class SphereShape : public Shape
{
  public:
    explicit SphereShape(Real radius);

    ShapeType type() const override { return ShapeType::Sphere; }
    Aabb bounds(const Transform &pose) const override;
    Real volume() const override;
    Mat3 unitInertia() const override;

    Real radius() const { return radius_; }

  private:
    Real radius_;
};

/** Box with the given half-extents, centered at the body origin. */
class BoxShape : public Shape
{
  public:
    explicit BoxShape(const Vec3 &half_extents);

    ShapeType type() const override { return ShapeType::Box; }
    Aabb bounds(const Transform &pose) const override;
    Real volume() const override;
    Mat3 unitInertia() const override;

    const Vec3 &halfExtents() const { return halfExtents_; }

  private:
    Vec3 halfExtents_;
};

/**
 * Capsule aligned with the local Y axis: a cylinder of the given
 * half-height capped with hemispheres of the given radius.
 */
class CapsuleShape : public Shape
{
  public:
    CapsuleShape(Real radius, Real half_height);

    ShapeType type() const override { return ShapeType::Capsule; }
    Aabb bounds(const Transform &pose) const override;
    Real volume() const override;
    Mat3 unitInertia() const override;

    Real radius() const { return radius_; }
    Real halfHeight() const { return halfHeight_; }

    /** World-space segment endpoints of the capsule axis. */
    void segment(const Transform &pose, Vec3 &a, Vec3 &b) const;

  private:
    Real radius_;
    Real halfHeight_;
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_SHAPES_PRIMITIVES_HH
