#include "static_shapes.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace parallax
{

PlaneShape::PlaneShape(const Vec3 &normal, Real offset)
    : normal_(normal.normalized()), offset_(offset)
{
    if (normal.lengthSquared() < 1e-12)
        fatal("plane normal must be non-zero");
}

Aabb
PlaneShape::bounds(const Transform &) const
{
    // Unbounded: return a huge box so the broadphase always keeps it.
    const Real big = 1e9;
    return {{-big, -big, -big}, {big, big, big}};
}

HeightfieldShape::HeightfieldShape(std::vector<Real> heights, int nx,
                                   int nz, Real spacing)
    : heights_(std::move(heights)), nx_(nx), nz_(nz), spacing_(spacing)
{
    if (nx < 2 || nz < 2)
        fatal("heightfield needs at least a 2x2 grid");
    if (spacing <= 0)
        fatal("heightfield spacing must be positive");
    if (heights_.size() != static_cast<size_t>(nx) * nz)
        fatal("heightfield data size %zu != %d x %d", heights_.size(),
              nx, nz);
    const auto [lo, hi] =
        std::minmax_element(heights_.begin(), heights_.end());
    minHeight_ = *lo;
    maxHeight_ = *hi;
}

Aabb
HeightfieldShape::bounds(const Transform &pose) const
{
    // Heightfields are axis-aligned in practice (static terrain);
    // bound the grid footprint translated by the pose.
    const Vec3 lo = pose.position + Vec3{0.0, minHeight_, 0.0};
    const Vec3 hi = pose.position +
        Vec3{width(), maxHeight_, depth()};
    Aabb box;
    box.extend(lo);
    box.extend(hi);
    return box;
}

Real
HeightfieldShape::heightAt(int ix, int iz) const
{
    ix = std::clamp(ix, 0, nx_ - 1);
    iz = std::clamp(iz, 0, nz_ - 1);
    return heights_[static_cast<size_t>(iz) * nx_ + ix];
}

Real
HeightfieldShape::sampleHeight(Real x, Real z) const
{
    const Real fx = std::clamp(x / spacing_, 0.0, Real(nx_ - 1));
    const Real fz = std::clamp(z / spacing_, 0.0, Real(nz_ - 1));
    const int ix = static_cast<int>(fx);
    const int iz = static_cast<int>(fz);
    const Real tx = fx - ix;
    const Real tz = fz - iz;
    const Real h00 = heightAt(ix, iz);
    const Real h10 = heightAt(ix + 1, iz);
    const Real h01 = heightAt(ix, iz + 1);
    const Real h11 = heightAt(ix + 1, iz + 1);
    const Real h0 = h00 * (1 - tx) + h10 * tx;
    const Real h1 = h01 * (1 - tx) + h11 * tx;
    return h0 * (1 - tz) + h1 * tz;
}

Vec3
HeightfieldShape::sampleNormal(Real x, Real z) const
{
    const Real eps = spacing_ * 0.5;
    const Real hl = sampleHeight(x - eps, z);
    const Real hr = sampleHeight(x + eps, z);
    const Real hd = sampleHeight(x, z - eps);
    const Real hu = sampleHeight(x, z + eps);
    const Vec3 n{(hl - hr) / (2 * eps), 1.0, (hd - hu) / (2 * eps)};
    return n.normalized();
}

TriMeshShape::TriMeshShape(std::vector<Vec3> vertices,
                           std::vector<Triangle> triangles)
    : vertices_(std::move(vertices)), triangles_(std::move(triangles))
{
    if (vertices_.empty() || triangles_.empty())
        fatal("trimesh needs at least one vertex and one triangle");
    triBounds_.reserve(triangles_.size());
    for (const auto &tri : triangles_) {
        if (tri.a >= vertices_.size() || tri.b >= vertices_.size() ||
            tri.c >= vertices_.size()) {
            fatal("trimesh triangle index out of range");
        }
        Aabb box;
        box.extend(vertices_[tri.a]);
        box.extend(vertices_[tri.b]);
        box.extend(vertices_[tri.c]);
        triBounds_.push_back(box);
        localBounds_.merge(box);
    }
}

Aabb
TriMeshShape::bounds(const Transform &pose) const
{
    // Transform the 8 corners of the local bounds.
    Aabb box;
    for (int i = 0; i < 8; ++i) {
        const Vec3 corner{(i & 1) ? localBounds_.hi.x : localBounds_.lo.x,
                          (i & 2) ? localBounds_.hi.y : localBounds_.lo.y,
                          (i & 4) ? localBounds_.hi.z : localBounds_.lo.z};
        box.extend(pose.apply(corner));
    }
    return box;
}

std::vector<std::uint32_t>
TriMeshShape::query(const Aabb &local_box) const
{
    std::vector<std::uint32_t> hits;
    for (std::uint32_t i = 0; i < triBounds_.size(); ++i) {
        if (triBounds_[i].overlaps(local_box))
            hits.push_back(i);
    }
    return hits;
}

void
TriMeshShape::triangleCorners(std::uint32_t index, const Transform &pose,
                              Vec3 &a, Vec3 &b, Vec3 &c) const
{
    parallax_assert(index < triangles_.size());
    const Triangle &tri = triangles_[index];
    a = pose.apply(vertices_[tri.a]);
    b = pose.apply(vertices_[tri.b]);
    c = pose.apply(vertices_[tri.c]);
}

} // namespace parallax
