/**
 * @file
 * Unbounded / environment shapes: plane, heightfield, trimesh.
 *
 * These model the terrain features of Table 2 ("uneven surfaces
 * described by heightfields or trimeshes") and static obstacles. They
 * are always attached to static bodies: they participate in collision
 * detection but never in forward stepping.
 */

#ifndef PARALLAX_PHYSICS_SHAPES_STATIC_SHAPES_HH
#define PARALLAX_PHYSICS_SHAPES_STATIC_SHAPES_HH

#include <cstdint>
#include <vector>

#include "shape.hh"

namespace parallax
{

/** Infinite plane: dot(normal, p) == offset, normal pointing "up". */
class PlaneShape : public Shape
{
  public:
    PlaneShape(const Vec3 &normal, Real offset);

    ShapeType type() const override { return ShapeType::Plane; }
    Aabb bounds(const Transform &pose) const override;
    Real volume() const override { return 0.0; }
    Mat3 unitInertia() const override { return Mat3::identity(); }

    const Vec3 &normal() const { return normal_; }
    Real offset() const { return offset_; }

    /** Signed distance from a point to the plane. */
    Real distance(const Vec3 &p) const { return normal_.dot(p) - offset_; }

  private:
    Vec3 normal_;
    Real offset_;
};

/**
 * Regular-grid heightfield over the local XZ plane.
 *
 * Heights are stored row-major (nx columns by nz rows) with uniform
 * cell spacing. Collision queries bilinearly interpolate the surface
 * height under a point.
 */
class HeightfieldShape : public Shape
{
  public:
    HeightfieldShape(std::vector<Real> heights, int nx, int nz,
                     Real spacing);

    ShapeType type() const override { return ShapeType::Heightfield; }
    Aabb bounds(const Transform &pose) const override;
    Real volume() const override { return 0.0; }
    Mat3 unitInertia() const override { return Mat3::identity(); }

    int nx() const { return nx_; }
    int nz() const { return nz_; }
    Real spacing() const { return spacing_; }

    /** Raw height at grid coordinates, clamped to the grid. */
    Real heightAt(int ix, int iz) const;

    /** Interpolated surface height at local (x, z). */
    Real sampleHeight(Real x, Real z) const;

    /** Approximate surface normal at local (x, z). */
    Vec3 sampleNormal(Real x, Real z) const;

    /** Local-space extents of the grid footprint. */
    Real width() const { return spacing_ * (nx_ - 1); }
    Real depth() const { return spacing_ * (nz_ - 1); }

  private:
    std::vector<Real> heights_;
    int nx_;
    int nz_;
    Real spacing_;
    Real minHeight_;
    Real maxHeight_;
};

/**
 * Triangle mesh used for static environment geometry.
 *
 * Narrowphase treats trimesh collisions approximately: spheres and
 * boxes test against each triangle's plane within the triangle's
 * bounds. A uniform grid over the mesh accelerates triangle lookup.
 */
class TriMeshShape : public Shape
{
  public:
    struct Triangle
    {
        std::uint32_t a;
        std::uint32_t b;
        std::uint32_t c;
    };

    TriMeshShape(std::vector<Vec3> vertices,
                 std::vector<Triangle> triangles);

    ShapeType type() const override { return ShapeType::TriMesh; }
    Aabb bounds(const Transform &pose) const override;
    Real volume() const override { return 0.0; }
    Mat3 unitInertia() const override { return Mat3::identity(); }

    const std::vector<Vec3> &vertices() const { return vertices_; }
    const std::vector<Triangle> &triangles() const { return triangles_; }

    /** Indices of triangles whose AABB overlaps the local-space box. */
    std::vector<std::uint32_t> query(const Aabb &local_box) const;

    /** World-space corners of one triangle. */
    void triangleCorners(std::uint32_t index, const Transform &pose,
                         Vec3 &a, Vec3 &b, Vec3 &c) const;

  private:
    std::vector<Vec3> vertices_;
    std::vector<Triangle> triangles_;
    std::vector<Aabb> triBounds_;
    Aabb localBounds_;
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_SHAPES_STATIC_SHAPES_HH
