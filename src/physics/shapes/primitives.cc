#include "primitives.hh"

#include <cmath>

#include "sim/logging.hh"

namespace parallax
{

const char *
shapeTypeName(ShapeType type)
{
    switch (type) {
      case ShapeType::Sphere: return "sphere";
      case ShapeType::Box: return "box";
      case ShapeType::Plane: return "plane";
      case ShapeType::Capsule: return "capsule";
      case ShapeType::Heightfield: return "heightfield";
      case ShapeType::TriMesh: return "trimesh";
    }
    return "?";
}

namespace
{
constexpr Real pi = 3.141592653589793;
} // namespace

SphereShape::SphereShape(Real radius) : radius_(radius)
{
    if (radius <= 0)
        fatal("sphere radius must be positive (got %g)", radius);
}

Aabb
SphereShape::bounds(const Transform &pose) const
{
    const Vec3 r{radius_, radius_, radius_};
    return {pose.position - r, pose.position + r};
}

Real
SphereShape::volume() const
{
    return 4.0 / 3.0 * pi * radius_ * radius_ * radius_;
}

Mat3
SphereShape::unitInertia() const
{
    const Real i = 0.4 * radius_ * radius_;
    return Mat3::diagonal(i, i, i);
}

BoxShape::BoxShape(const Vec3 &half_extents) : halfExtents_(half_extents)
{
    if (half_extents.x <= 0 || half_extents.y <= 0 || half_extents.z <= 0)
        fatal("box half-extents must be positive");
}

Aabb
BoxShape::bounds(const Transform &pose) const
{
    // World extents are |R| * halfExtents.
    const Mat3 rot = pose.rotation.toMat3();
    Vec3 ext;
    for (int i = 0; i < 3; ++i) {
        ext[i] = std::fabs(rot.m[i][0]) * halfExtents_.x
               + std::fabs(rot.m[i][1]) * halfExtents_.y
               + std::fabs(rot.m[i][2]) * halfExtents_.z;
    }
    return {pose.position - ext, pose.position + ext};
}

Real
BoxShape::volume() const
{
    return 8.0 * halfExtents_.x * halfExtents_.y * halfExtents_.z;
}

Mat3
BoxShape::unitInertia() const
{
    const Vec3 d = halfExtents_ * 2.0;
    const Real c = 1.0 / 12.0;
    return Mat3::diagonal(c * (d.y * d.y + d.z * d.z),
                          c * (d.x * d.x + d.z * d.z),
                          c * (d.x * d.x + d.y * d.y));
}

CapsuleShape::CapsuleShape(Real radius, Real half_height)
    : radius_(radius), halfHeight_(half_height)
{
    if (radius <= 0 || half_height < 0)
        fatal("capsule dimensions must be positive");
}

Aabb
CapsuleShape::bounds(const Transform &pose) const
{
    Vec3 a, b;
    segment(pose, a, b);
    Aabb box;
    box.extend(a);
    box.extend(b);
    return box.inflated(radius_);
}

Real
CapsuleShape::volume() const
{
    const Real cyl = pi * radius_ * radius_ * (2.0 * halfHeight_);
    const Real sph = 4.0 / 3.0 * pi * radius_ * radius_ * radius_;
    return cyl + sph;
}

Mat3
CapsuleShape::unitInertia() const
{
    // Approximate with the bounding cylinder's inertia; adequate for
    // game-style humanoid segments.
    const Real r2 = radius_ * radius_;
    const Real h = 2.0 * (halfHeight_ + radius_);
    const Real ix = (3.0 * r2 + h * h) / 12.0;
    const Real iy = r2 / 2.0;
    return Mat3::diagonal(ix, iy, ix);
}

void
CapsuleShape::segment(const Transform &pose, Vec3 &a, Vec3 &b) const
{
    const Vec3 axis = pose.applyDirection({0.0, 1.0, 0.0}) * halfHeight_;
    a = pose.position - axis;
    b = pose.position + axis;
}

} // namespace parallax
