#include "body.hh"

#include "sim/logging.hh"

namespace parallax
{

RigidBody::RigidBody(BodyId id, const Transform &pose, Real mass,
                     const Mat3 &inertia)
    : id_(id), pose_(pose), mass_(mass), inertiaBody_(inertia)
{
    if (mass < 0)
        fatal("body mass must be non-negative (got %g)", mass);
    if (mass == 0.0) {
        invMass_ = 0.0;
        invInertiaBody_ = Mat3::zero();
    } else {
        invMass_ = 1.0 / mass;
        invInertiaBody_ = inertiaBody_.inverse();
    }
}

RigidBody
RigidBody::makeStatic(BodyId id, const Transform &pose)
{
    return RigidBody(id, pose, 0.0, Mat3::zero());
}

Mat3
RigidBody::invInertiaWorld() const
{
    const Mat3 rot = pose_.rotation.toMat3();
    return rot * invInertiaBody_ * rot.transposed();
}

void
RigidBody::applyForceAtPoint(const Vec3 &f, const Vec3 &point)
{
    force_ += f;
    torque_ += (point - pose_.position).cross(f);
}

void
RigidBody::applyImpulse(const Vec3 &impulse, const Vec3 &point)
{
    if (isStatic())
        return;
    wake(); // External disturbance.
    linVel_ += impulse * invMass_;
    angVel_ += invInertiaWorld() *
        (point - pose_.position).cross(impulse);
}

Vec3
RigidBody::velocityAt(const Vec3 &point) const
{
    return linVel_ + angVel_.cross(point - pose_.position);
}

void
RigidBody::integrate(Real dt)
{
    integrateVelocities(dt);
    integratePositions(dt);
}

void
RigidBody::integrateVelocities(Real dt)
{
    if (isStatic() || !enabled_ || asleep_)
        return;
    linVel_ += force_ * (invMass_ * dt);
    angVel_ += invInertiaWorld() * torque_ * dt;
}

void
RigidBody::integratePositions(Real dt)
{
    if (isStatic() || !enabled_ || asleep_)
        return;
    pose_.position += linVel_ * dt;
    pose_.rotation = pose_.rotation.integrated(angVel_, dt);
}

} // namespace parallax
