/**
 * @file
 * Work-queue threading model with persistent worker threads.
 *
 * The paper's engine is parallelized "using pthreads and a work-queue
 * model with persistent worker threads. Pthreads minimize thread
 * overhead, while persistent threads eliminate thread creation and
 * destruction costs" (section 3.1). This is the equivalent built on
 * std::thread: workers are created once and park on a condition
 * variable between batches.
 */

#ifndef PARALLAX_PHYSICS_PARALLEL_WORK_QUEUE_HH
#define PARALLAX_PHYSICS_PARALLEL_WORK_QUEUE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace parallax
{

/**
 * A pool of persistent worker threads consuming a shared task queue.
 *
 * Tasks are submitted in batches; waitAll() blocks the caller until
 * every submitted task has completed. With zero workers, run()
 * executes tasks inline on the calling thread (single-threaded mode).
 */
class WorkQueue
{
  public:
    using Task = std::function<void()>;

    /** @param workers Number of persistent worker threads (0 = inline). */
    explicit WorkQueue(unsigned workers);
    ~WorkQueue();

    WorkQueue(const WorkQueue &) = delete;
    WorkQueue &operator=(const WorkQueue &) = delete;

    /** Enqueue one task. */
    void submit(Task task);

    /** Block until all submitted tasks have finished. */
    void waitAll();

    /** Convenience: submit all tasks then wait. */
    void runBatch(std::vector<Task> tasks);

    unsigned workerCount() const { return workerCount_; }

    /** Total tasks executed since construction. */
    std::uint64_t tasksExecuted() const;

  private:
    void workerLoop();

    unsigned workerCount_;
    std::vector<std::thread> threads_;
    std::vector<Task> queue_;
    mutable std::mutex mutex_;
    std::condition_variable taskAvailable_;
    std::condition_variable batchDone_;
    std::uint64_t pending_ = 0;
    std::uint64_t executed_ = 0;
    bool shutdown_ = false;
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_PARALLEL_WORK_QUEUE_HH
