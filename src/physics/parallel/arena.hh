/**
 * @file
 * Per-lane frame arena: bump allocation for step-transient data.
 *
 * The modeled ParallAX cores work out of partition-local memories and
 * never touch a general-purpose allocator mid-step; the host engine
 * earns the same property with one FrameArena per scheduler lane.
 * Tasks bump-allocate whatever scratch they need from their own
 * lane's arena (no synchronization — a lane only allocates from
 * itself), and the world rewinds every arena at the substep barrier.
 * After warm-up the arenas stop growing and the steady-state step
 * performs no transient heap allocations at all; the growth and
 * high-water counters feed the `arena.*` metrics and the `perf`
 * allocation-regression test that pins this down.
 *
 * Allocation is not constructed storage: ArenaVector (below) is the
 * intended container and requires trivially destructible elements,
 * because reset() rewinds without running destructors.
 */

#ifndef PARALLAX_PHYSICS_PARALLEL_ARENA_HH
#define PARALLAX_PHYSICS_PARALLEL_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace parallax
{

/** Bump allocator over a chain of blocks, rewound once per step. */
class FrameArena
{
  public:
    explicit FrameArena(std::size_t block_bytes = 64 * 1024)
        : blockBytes_(block_bytes)
    {
    }

    FrameArena(const FrameArena &) = delete;
    FrameArena &operator=(const FrameArena &) = delete;

    /** Bump-allocate `bytes` aligned to `align` (a power of two). */
    void *
    allocate(std::size_t bytes, std::size_t align)
    {
        if (current_ < blocks_.size()) {
            Block &b = blocks_[current_];
            const std::size_t at = alignUp(b.used, align);
            if (at + bytes <= b.size) {
                b.used = at + bytes;
                bumpFrame(bytes);
                return b.data.get() + at;
            }
            // Current block exhausted: fall through to the next one
            // (possibly allocating it).
        }
        return allocateSlow(bytes, align);
    }

    /** Typed uninitialized array of `n` elements. */
    template <typename T>
    T *
    allocArray(std::size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena storage is rewound without destructors");
        return static_cast<T *>(allocate(n * sizeof(T), alignof(T)));
    }

    /**
     * Rewind to empty, keeping every block for reuse. Called at the
     * step barrier; all pointers handed out this frame die here.
     */
    void
    reset()
    {
        for (Block &b : blocks_)
            b.used = 0;
        current_ = 0;
        frameBytes_ = 0;
    }

    /** Bytes handed out since the last reset(). */
    std::size_t frameBytes() const { return frameBytes_; }

    /** Largest frameBytes() ever observed (monotonic). */
    std::size_t highWaterBytes() const { return highWater_; }

    /** Total bytes of owned block storage. */
    std::size_t
    capacityBytes() const
    {
        std::size_t total = 0;
        for (const Block &b : blocks_)
            total += b.size;
        return total;
    }

    /**
     * Times a fresh block had to be heap-allocated (monotonic). A
     * warm steady state never grows this: that is exactly what the
     * `perf`-labeled allocation-regression test asserts.
     */
    std::uint64_t growthCount() const { return growths_; }

  private:
    struct Block
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
        std::size_t used = 0;
    };

    static std::size_t
    alignUp(std::size_t v, std::size_t align)
    {
        return (v + align - 1) & ~(align - 1);
    }

    void *
    allocateSlow(std::size_t bytes, std::size_t align)
    {
        // Advance through already-owned blocks first; only allocate
        // a new one (and count the growth) when none fits.
        while (current_ + 1 < blocks_.size()) {
            ++current_;
            Block &b = blocks_[current_];
            const std::size_t at = alignUp(b.used, align);
            if (at + bytes <= b.size) {
                b.used = at + bytes;
                bumpFrame(bytes);
                return b.data.get() + at;
            }
        }
        const std::size_t size =
            bytes + align > blockBytes_ ? bytes + align : blockBytes_;
        blocks_.push_back(Block{
            std::make_unique<std::byte[]>(size), size, 0});
        ++growths_;
        current_ = blocks_.size() - 1;
        Block &b = blocks_.back();
        const std::size_t at = alignUp(0, align);
        b.used = at + bytes;
        bumpFrame(bytes);
        return b.data.get() + at;
    }

    void
    bumpFrame(std::size_t bytes)
    {
        frameBytes_ += bytes;
        if (frameBytes_ > highWater_)
            highWater_ = frameBytes_;
    }

    std::size_t blockBytes_;
    std::vector<Block> blocks_;
    std::size_t current_ = 0;
    std::size_t frameBytes_ = 0;
    std::size_t highWater_ = 0;
    std::uint64_t growths_ = 0;
};

/**
 * Minimal vector over FrameArena storage: push_back with geometric
 * growth, no destructors, no shrink. Growth abandons the old span
 * (arena memory is reclaimed wholesale at reset), so the arena
 * high-water mark honestly accounts the waste. Elements must be
 * trivially copyable so growth is a memcpy.
 */
template <typename T>
class ArenaVector
{
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(std::is_trivially_destructible_v<T>);

  public:
    ArenaVector() = default;
    explicit ArenaVector(FrameArena *arena) : arena_(arena) {}

    void
    push_back(const T &value)
    {
        if (size_ == capacity_)
            grow(capacity_ == 0 ? 8 : capacity_ * 2);
        data_[size_++] = value;
    }

    T *begin() { return data_; }
    T *end() { return data_ + size_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }

    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    const T *data() const { return data_; }
    T *data() { return data_; }

  private:
    void
    grow(std::size_t cap)
    {
        T *fresh = arena_->allocArray<T>(cap);
        if (size_ > 0)
            std::memcpy(fresh, data_, size_ * sizeof(T));
        data_ = fresh;
        capacity_ = cap;
    }

    FrameArena *arena_ = nullptr;
    T *data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t capacity_ = 0;
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_PARALLEL_ARENA_HH
