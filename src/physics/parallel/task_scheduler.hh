/**
 * @file
 * Work-stealing task scheduler with persistent worker threads.
 *
 * The paper's engine is parallelized "using pthreads and a work-queue
 * model with persistent worker threads" (section 3.1). This is the
 * modern equivalent: instead of one shared mutex/condvar queue, every
 * execution lane (the calling thread plus each persistent worker)
 * owns a Chase-Lev deque. A parallelFor() call tiles the iteration
 * space into fixed-size chunks, seeds the caller's deque with the
 * whole range, and lets idle lanes steal half-open sub-ranges until
 * the loop is drained. Owners push and pop at the bottom of their
 * deque (LIFO, cache-friendly); thieves steal from the top (FIFO,
 * takes the largest outstanding split first).
 *
 * Deterministic mode pins the tiling to the configured grain size so
 * chunk boundaries never depend on the number of workers; callers
 * combine per-chunk partial results in chunk-index order ("ordered
 * reduction") and obtain bitwise-identical simulation state for any
 * worker count.
 */

#ifndef PARALLAX_PHYSICS_PARALLEL_TASK_SCHEDULER_HH
#define PARALLAX_PHYSICS_PARALLEL_TASK_SCHEDULER_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "physics/parallel/arena.hh"

namespace parallax
{

/** Tunables of the work-stealing scheduler. */
struct SchedulerConfig
{
    /** Persistent worker threads (0 = run everything inline). */
    unsigned workerThreads = 0;

    /**
     * Loop-tiling grain: iterations per chunk handed to one lane.
     * Small grains balance better; large grains amortize dispatch.
     */
    std::size_t grainSize = 16;

    /**
     * Fix the tiling to `grainSize` regardless of worker count and
     * promise callers that chunk boundaries are reproducible, so
     * ordered per-chunk reductions give bitwise-identical results
     * for any number of workers.
     */
    bool deterministic = false;

    /** Per-lane frame-arena block size in bytes (arena.hh). Small
     *  worlds in a multi-world server shrink this so footprint
     *  scales with scene size instead of lane count. */
    std::size_t arenaBlockBytes = 64 * 1024;

    /**
     * Adaptive grain sizing: target nanoseconds of work per chunk
     * for the cost-model tiling overloads. Dispatch plus steal
     * overhead is a few hundred nanoseconds per chunk, so 50 us
     * chunks keep that overhead under ~1% of chunk work while still
     * yielding tens of stealable chunks per millisecond of phase
     * time. A pure tuning knob: it moves chunk boundaries, never
     * results (in deterministic mode it is part of the committed
     * cost model, so it must be identical across compared runs).
     */
    double targetChunkNanos = 50 * 1000.0;
};

/** Per-lane execution counters (lane 0 is the calling thread). */
struct LaneStats
{
    std::uint64_t chunksExecuted = 0;
    std::uint64_t rangesStolen = 0;
    std::uint64_t itemsProcessed = 0;
};

/**
 * Per-loop-site cost model feeding adaptive grain sizing.
 *
 * Each parallel loop site (narrowphase pair tests, island batches,
 * cloth steps) owns one of these. It starts from a committed
 * estimate of nanoseconds per iteration and, when the owner feeds it
 * measurements via observe(), tracks the measured cost with an EWMA.
 *
 * Deterministic mode must never call observe(): the committed
 * estimate is a step-stable input (a constant), so the grain derived
 * from it — and therefore every chunk boundary — is a pure function
 * of the iteration count, reproducible across runs and worker
 * counts. Non-deterministic mode feeds measured per-item wall clock
 * back in so grains track the actual scene.
 */
class ChunkCostModel
{
  public:
    explicit ChunkCostModel(double committedNsPerItem)
        : committed_(committedNsPerItem), ns_(committedNsPerItem)
    {
    }

    /** Current cost estimate (committed until observe() is called). */
    double nsPerItem() const { return ns_; }

    /** The committed (never-measured) estimate. */
    double committedNsPerItem() const { return committed_; }

    /**
     * Fold one measured loop execution into the estimate. Callers in
     * deterministic mode must not call this (wall clock would leak
     * into chunk boundaries).
     */
    void
    observe(std::size_t items, double seconds)
    {
        if (items == 0 || !(seconds >= 0))
            return;
        const double measured = seconds * 1e9 / items;
        // EWMA with a half-life of a few steps: quick to lock onto a
        // scene, slow enough to ride out scheduler noise.
        ns_ = ns_ * 0.7 + measured * 0.3;
    }

  private:
    double committed_;
    double ns_;
};

/**
 * A lock-free single-owner double-ended queue of packed chunk
 * ranges (the Chase-Lev deque; memory ordering follows Le et al.,
 * "Correct and Efficient Work-Stealing for Weak Memory Models",
 * with seq_cst on the top/bottom indices, which ThreadSanitizer
 * models exactly).
 *
 * Capacity is fixed: a lane's deque holds at most one entry per
 * binary split of its current range, so depth is bounded by
 * log2(chunk count) <= 32 well under the ring size.
 */
class WorkStealingDeque
{
  public:
    WorkStealingDeque();

    WorkStealingDeque(const WorkStealingDeque &) = delete;
    WorkStealingDeque &operator=(const WorkStealingDeque &) = delete;

    /** Owner only: push a packed range at the bottom. */
    void push(std::uint64_t value);

    /** Owner only: pop the most recently pushed range. */
    bool pop(std::uint64_t &value);

    /** Any thread: steal the oldest (largest) range from the top. */
    bool steal(std::uint64_t &value);

    bool empty() const;

  private:
    static constexpr std::size_t capacity = 256;
    static constexpr std::size_t mask = capacity - 1;

    std::atomic<std::int64_t> top_{0};
    std::atomic<std::int64_t> bottom_{0};
    std::unique_ptr<std::atomic<std::uint64_t>[]> ring_;
};

/**
 * Fork-join parallel-for over persistent workers with work stealing.
 *
 * The calling thread is always lane 0 and participates in every
 * loop; `workerThreads` additional lanes park on a condition
 * variable between loops. With zero workers every loop runs inline,
 * chunk by chunk, in index order.
 */
class TaskScheduler
{
  public:
    /** Chunk body: [begin, end) iteration range + executing lane. */
    using LoopBody =
        std::function<void(std::size_t begin, std::size_t end,
                           unsigned lane)>;

    /** How parallelFor() will tile `count` iterations. */
    struct Tiling
    {
        std::size_t grain = 1;
        std::size_t chunks = 0;

        /** Chunk index covering iteration `i`. */
        std::size_t chunkOf(std::size_t i) const { return i / grain; }
    };

    /**
     * Hard cap on worker threads. Requests beyond it are clamped
     * with a warning: more lanes than this only multiply stacks and
     * context switches, never throughput. Oversubscribing the actual
     * hardware_concurrency() below the cap is allowed (and warned
     * about) — determinism guarantees do not depend on lane:core
     * ratios, which the oversubscription regression test pins down.
     */
    static constexpr unsigned maxWorkers = 128;

    explicit TaskScheduler(SchedulerConfig config = SchedulerConfig());
    ~TaskScheduler();

    TaskScheduler(const TaskScheduler &) = delete;
    TaskScheduler &operator=(const TaskScheduler &) = delete;

    unsigned workerCount() const { return workerCount_; }

    /** Execution lanes: workers plus the calling thread. */
    unsigned laneCount() const { return workerCount_ + 1; }

    bool deterministic() const { return config_.deterministic; }
    const SchedulerConfig &schedulerConfig() const { return config_; }

    /**
     * The tiling parallelFor(count, grain, ...) will use. In
     * deterministic mode this is exactly `grain`; otherwise the
     * grain is widened so no loop produces more than a few chunks
     * per lane (less dispatch overhead, tiling varies with lanes).
     */
    Tiling tiling(std::size_t count, std::size_t grain) const;
    Tiling tiling(std::size_t count) const
    { return tiling(count, config_.grainSize); }

    /**
     * Cost-model tiling: widen the grain beyond `minGrain` until one
     * chunk is worth at least SchedulerConfig::targetChunkNanos of
     * estimated work (`nsPerItem` per iteration), so dispatch+steal
     * overhead stays a small fraction of chunk cost.
     *
     * Deterministic mode derives the grain only from step-stable
     * inputs — the iteration count and the (never wall-clock) cost
     * estimate — and additionally caps it so loops big enough to
     * split still yield a fixed number of chunks independent of the
     * lane count, keeping chunk boundaries bitwise-reproducible for
     * any number of workers. Non-deterministic mode balances the
     * cost target against a few chunks per lane.
     */
    Tiling tiling(std::size_t count, std::size_t minGrain,
                  const ChunkCostModel &cost) const;

    /** parallelFor with cost-model tiling (see tiling above). */
    void parallelFor(std::size_t count, std::size_t minGrain,
                     const ChunkCostModel &cost, const LoopBody &body);

    /**
     * Run `body` over [0, count) in parallel and wait for
     * completion. Chunks execute exactly on the boundaries reported
     * by tiling(); each chunk runs on exactly one lane.
     */
    void parallelFor(std::size_t count, std::size_t grain,
                     const LoopBody &body);
    void parallelFor(std::size_t count, const LoopBody &body)
    { parallelFor(count, config_.grainSize, body); }

    // --- Execution counters (since construction). ---
    std::uint64_t tasksExecuted() const;
    std::uint64_t tasksStolen() const;
    std::uint64_t loopsRun() const
    { return loopsRun_.load(std::memory_order_relaxed); }

    /** Per-lane counter snapshot (lane 0 = calling thread). */
    std::vector<LaneStats> laneStats() const;

    /** Allocation-free variant: fill `out` (resized to laneCount). */
    void laneStats(std::vector<LaneStats> &out) const;

    /**
     * The frame arena owned by `lane`. A chunk body must only
     * allocate from the arena of the lane it is executing on —
     * arenas are single-owner and unsynchronized.
     */
    FrameArena &arena(unsigned lane) { return *arenas_[lane]; }
    const FrameArena &arena(unsigned lane) const
    { return *arenas_[lane]; }

    /**
     * Rewind every lane's arena. The world calls this at the top of
     * each step (the substep barrier): all arena pointers from the
     * previous step are dead afterwards.
     */
    void resetArenas();

    /** Sum of frameBytes() across lanes (since the last reset). */
    std::size_t arenaFrameBytes() const;

    /** Largest per-lane high-water mark across all lanes. */
    std::size_t arenaHighWaterBytes() const;

    /** Total arena block heap allocations across lanes (monotonic). */
    std::uint64_t arenaGrowths() const;

    /**
     * Fault injection (FaultKind::StallLane): make `lane` sleep for
     * `seconds` of wall-clock time at its next loop participation,
     * modeling a slow or preempted core. Perturbs timing only —
     * simulation state is unaffected, which is exactly what the
     * deterministic-mode guarantee promises under scheduling jitter.
     */
    void stallLane(unsigned lane, double seconds);

  private:
    /** One execution lane: a deque plus its private counters. */
    struct alignas(64) Lane
    {
        WorkStealingDeque deque;
        std::atomic<std::uint64_t> executed{0};
        std::atomic<std::uint64_t> stolen{0};
        std::atomic<std::uint64_t> items{0};
        /** Pending injected stall (stallLane), consumed on the
         *  lane's next participation. */
        std::atomic<std::uint64_t> stallNanos{0};
    };

    static std::uint64_t pack(std::uint64_t c0, std::uint64_t c1)
    { return (c0 << 32) | c1; }

    void workerMain(unsigned lane);

    /** Sleep off any stall injected for this lane. */
    void consumeStall(Lane &lane);

    /** Seed, publish and drain one tiled loop (parallelFor body). */
    void runLoop(std::size_t count, const Tiling &tile,
                 const LoopBody &body);

    /** Pop/steal/split until the current loop has no chunks left. */
    void participate(unsigned lane);

    /** Split a range down to one chunk and execute it. The steal
     *  counter is maintained at the cross-lane steal site in
     *  participate(), never here. */
    void runRange(unsigned lane, std::uint64_t packed);

    SchedulerConfig config_;
    unsigned workerCount_;
    std::vector<std::unique_ptr<Lane>> lanes_;
    std::vector<std::unique_ptr<FrameArena>> arenas_;
    std::vector<std::thread> threads_;

    // Current-loop state. body_/grain_/count_ are written by lane 0
    // before the seeding push and read by other lanes only after a
    // successful steal, which synchronizes through the deque.
    const LoopBody *body_ = nullptr;
    std::size_t grain_ = 1;
    std::size_t count_ = 0;
    std::atomic<std::int64_t> remaining_{0};
    std::atomic<std::uint64_t> loopsRun_{0};

    // Worker parking between loops.
    std::mutex wakeMutex_;
    std::condition_variable wake_;
    std::uint64_t epoch_ = 0;
    bool shutdown_ = false;
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_PARALLEL_TASK_SCHEDULER_HH
