#include "task_scheduler.hh"

#include <algorithm>
#include <bit>
#include <chrono>

#include "sim/logging.hh"

namespace parallax
{

// --- WorkStealingDeque -------------------------------------------------

WorkStealingDeque::WorkStealingDeque()
    : ring_(new std::atomic<std::uint64_t>[capacity])
{
}

void
WorkStealingDeque::push(std::uint64_t value)
{
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(capacity)) {
        // Cannot happen with binary splitting (depth <= log2(2^32)),
        // so treat overflow as a scheduler bug rather than growing.
        panic("work-stealing deque overflow (%lld entries)",
              static_cast<long long>(b - t));
    }
    ring_[static_cast<std::size_t>(b) & mask].store(
        value, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_seq_cst);
}

bool
WorkStealingDeque::pop(std::uint64_t &value)
{
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);

    if (t > b) {
        // Deque was already empty; restore bottom.
        bottom_.store(b + 1, std::memory_order_relaxed);
        return false;
    }
    value = ring_[static_cast<std::size_t>(b) & mask].load(
        std::memory_order_relaxed);
    if (t == b) {
        // Last element: race against thieves for it.
        const bool won = top_.compare_exchange_strong(
            t, t + 1, std::memory_order_seq_cst,
            std::memory_order_relaxed);
        bottom_.store(b + 1, std::memory_order_relaxed);
        return won;
    }
    return true;
}

bool
WorkStealingDeque::steal(std::uint64_t &value)
{
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b)
        return false;
    value = ring_[static_cast<std::size_t>(t) & mask].load(
        std::memory_order_relaxed);
    return top_.compare_exchange_strong(t, t + 1,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed);
}

bool
WorkStealingDeque::empty() const
{
    return top_.load(std::memory_order_acquire) >=
           bottom_.load(std::memory_order_acquire);
}

// --- TaskScheduler -----------------------------------------------------

TaskScheduler::TaskScheduler(SchedulerConfig config)
    : config_(config), workerCount_(config.workerThreads)
{
    if (config_.grainSize == 0)
        config_.grainSize = 1;
    if (config_.arenaBlockBytes == 0)
        config_.arenaBlockBytes = 64 * 1024;
    if (workerCount_ > maxWorkers) {
        warn("workerThreads %u exceeds the scheduler cap of %u; "
             "clamping",
             workerCount_, maxWorkers);
        workerCount_ = maxWorkers;
        config_.workerThreads = maxWorkers;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw > 0 && laneCount() > hw) {
        warn("%u execution lanes oversubscribe %u hardware threads; "
             "results are unaffected but expect context-switch "
             "overhead",
             laneCount(), hw);
    }
    lanes_.reserve(laneCount());
    arenas_.reserve(laneCount());
    for (unsigned i = 0; i < laneCount(); ++i) {
        lanes_.push_back(std::make_unique<Lane>());
        arenas_.push_back(
            std::make_unique<FrameArena>(config_.arenaBlockBytes));
    }
    threads_.reserve(workerCount_);
    for (unsigned i = 0; i < workerCount_; ++i)
        threads_.emplace_back([this, i] { workerMain(i + 1); });
}

TaskScheduler::~TaskScheduler()
{
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

TaskScheduler::Tiling
TaskScheduler::tiling(std::size_t count, std::size_t grain) const
{
    Tiling t;
    t.grain = std::max<std::size_t>(1, grain);
    if (!config_.deterministic) {
        // Widen the grain so the loop yields at most a handful of
        // chunks per lane; tiling then depends on the lane count,
        // which is why this path is not deterministic across
        // worker counts once reductions care about chunk identity.
        const std::size_t target =
            static_cast<std::size_t>(laneCount()) * 8;
        t.grain = std::max(t.grain, (count + target - 1) / target);
    }
    t.chunks = count == 0 ? 0 : (count + t.grain - 1) / t.grain;
    return t;
}

TaskScheduler::Tiling
TaskScheduler::tiling(std::size_t count, std::size_t minGrain,
                      const ChunkCostModel &cost) const
{
    // Widen the grain until one chunk is worth ~targetChunkNanos of
    // estimated work. The result depends only on the iteration count
    // and the cost estimate — never the lane count — so in
    // deterministic mode (where the estimate is the committed
    // constant) chunk boundaries are identical for any number of
    // workers. Chunk count is bounded by total-work / target-chunk,
    // which amortizes dispatch+steal overhead to a fixed fraction,
    // and a loop cheaper than one target chunk collapses to a single
    // inline chunk instead of paying any dispatch at all.
    const double ns = std::max(1.0, cost.nsPerItem());
    const auto cost_grain = static_cast<std::size_t>(
        std::max(1.0, config_.targetChunkNanos / ns));
    // Quantize to a power of two: the measured estimate must move
    // 2x before chunk boundaries shift, so EWMA jitter does not
    // re-tile every step (stable tiling keeps per-lane arena demand
    // — and the allocation-flat guarantee — stable too).
    Tiling t;
    t.grain = std::max(std::max<std::size_t>(1, minGrain),
                       std::bit_floor(cost_grain));
    t.chunks = count == 0 ? 0 : (count + t.grain - 1) / t.grain;
    return t;
}

void
TaskScheduler::parallelFor(std::size_t count, std::size_t grain,
                           const LoopBody &body)
{
    runLoop(count, tiling(count, grain), body);
}

void
TaskScheduler::parallelFor(std::size_t count, std::size_t minGrain,
                           const ChunkCostModel &cost,
                           const LoopBody &body)
{
    runLoop(count, tiling(count, minGrain, cost), body);
}

void
TaskScheduler::runLoop(std::size_t count, const Tiling &tile,
                       const LoopBody &body)
{
    if (count == 0)
        return;
    loopsRun_.fetch_add(1, std::memory_order_relaxed);

    Lane &self = *lanes_[0];
    if (workerCount_ == 0 || tile.chunks == 1) {
        // Inline execution, chunk by chunk in index order (same
        // boundaries as the parallel path, so ordered reductions
        // match bit for bit).
        consumeStall(self);
        for (std::size_t c = 0; c < tile.chunks; ++c) {
            const std::size_t begin = c * tile.grain;
            const std::size_t end =
                std::min(count, begin + tile.grain);
            body(begin, end, 0);
            self.executed.fetch_add(1, std::memory_order_relaxed);
            self.items.fetch_add(end - begin,
                                 std::memory_order_relaxed);
        }
        return;
    }

    // Publish the loop, seed lane 0's deque with the full chunk
    // range, and wake the workers. Workers read body_/grain_/count_
    // only after a successful steal, which synchronizes with the
    // seeding push through the deque indices.
    body_ = &body;
    grain_ = tile.grain;
    count_ = count;
    remaining_.store(static_cast<std::int64_t>(tile.chunks),
                     std::memory_order_relaxed);
    self.deque.push(pack(0, tile.chunks));
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        ++epoch_;
    }
    wake_.notify_all();

    participate(0);
    // remaining_ hit zero: every chunk body has completed and those
    // completions happen-before this return (release decrement /
    // acquire load), so per-chunk results are safe to reduce.
}

void
TaskScheduler::workerMain(unsigned lane)
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(wakeMutex_);
            wake_.wait(lock, [this, seen] {
                return shutdown_ || epoch_ != seen;
            });
            if (shutdown_)
                return;
            seen = epoch_;
        }
        participate(lane);
    }
}

void
TaskScheduler::consumeStall(Lane &lane)
{
    const std::uint64_t ns =
        lane.stallNanos.exchange(0, std::memory_order_relaxed);
    if (ns > 0)
        std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

void
TaskScheduler::stallLane(unsigned lane, double seconds)
{
    if (!(seconds > 0.0))
        return;
    lanes_[lane % laneCount()]->stallNanos.fetch_add(
        static_cast<std::uint64_t>(seconds * 1e9),
        std::memory_order_relaxed);
}

void
TaskScheduler::participate(unsigned lane)
{
    consumeStall(*lanes_[lane]);
    const unsigned lanes = laneCount();
    for (;;) {
        std::uint64_t task;
        if (lanes_[lane]->deque.pop(task)) {
            runRange(lane, task);
            continue;
        }
        if (remaining_.load(std::memory_order_acquire) <= 0)
            return;
        bool got = false;
        for (unsigned v = 1; v < lanes && !got; ++v) {
            const unsigned victim = (lane + v) % lanes;
            got = lanes_[victim]->deque.steal(task);
        }
        if (got) {
            // The steal counter is bumped here, at the cross-lane
            // steal site itself (the victim loop above never visits
            // the thief's own deque), and nowhere else — a pop of a
            // self-pushed split can never read as a steal, so
            // tasks_stolen is exactly the cross-lane migration count
            // and must be zero whenever workerThreads == 0.
            lanes_[lane]->stolen.fetch_add(1,
                                           std::memory_order_relaxed);
            runRange(lane, task);
        } else if (remaining_.load(std::memory_order_acquire) <= 0) {
            return;
        } else {
            // Someone holds the remaining chunks; let them run.
            std::this_thread::yield();
        }
    }
}

void
TaskScheduler::runRange(unsigned lane, std::uint64_t packed)
{
    Lane &self = *lanes_[lane];
    std::uint64_t c0 = packed >> 32;
    std::uint64_t c1 = packed & 0xffffffffu;

    // Lazy binary splitting: keep the left half, expose the right
    // half to thieves, until a single chunk remains.
    while (c1 - c0 > 1) {
        const std::uint64_t mid = c0 + (c1 - c0) / 2;
        self.deque.push(pack(mid, c1));
        c1 = mid;
    }

    const std::size_t begin = static_cast<std::size_t>(c0) * grain_;
    const std::size_t end = std::min(count_, begin + grain_);
    (*body_)(begin, end, lane);
    self.executed.fetch_add(1, std::memory_order_relaxed);
    self.items.fetch_add(end - begin, std::memory_order_relaxed);
    remaining_.fetch_sub(1, std::memory_order_release);
}

std::uint64_t
TaskScheduler::tasksExecuted() const
{
    std::uint64_t total = 0;
    for (const auto &lane : lanes_)
        total += lane->executed.load(std::memory_order_relaxed);
    return total;
}

std::uint64_t
TaskScheduler::tasksStolen() const
{
    std::uint64_t total = 0;
    for (const auto &lane : lanes_)
        total += lane->stolen.load(std::memory_order_relaxed);
    return total;
}

std::vector<LaneStats>
TaskScheduler::laneStats() const
{
    std::vector<LaneStats> stats;
    laneStats(stats);
    return stats;
}

void
TaskScheduler::laneStats(std::vector<LaneStats> &out) const
{
    out.resize(lanes_.size());
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
        out[i].chunksExecuted =
            lanes_[i]->executed.load(std::memory_order_relaxed);
        out[i].rangesStolen =
            lanes_[i]->stolen.load(std::memory_order_relaxed);
        out[i].itemsProcessed =
            lanes_[i]->items.load(std::memory_order_relaxed);
    }
}

void
TaskScheduler::resetArenas()
{
    for (auto &arena : arenas_)
        arena->reset();
}

std::size_t
TaskScheduler::arenaFrameBytes() const
{
    std::size_t total = 0;
    for (const auto &arena : arenas_)
        total += arena->frameBytes();
    return total;
}

std::size_t
TaskScheduler::arenaHighWaterBytes() const
{
    std::size_t high = 0;
    for (const auto &arena : arenas_)
        high = std::max(high, arena->highWaterBytes());
    return high;
}

std::uint64_t
TaskScheduler::arenaGrowths() const
{
    std::uint64_t total = 0;
    for (const auto &arena : arenas_)
        total += arena->growthCount();
    return total;
}

} // namespace parallax
