#include "work_queue.hh"

namespace parallax
{

WorkQueue::WorkQueue(unsigned workers) : workerCount_(workers)
{
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

WorkQueue::~WorkQueue()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    taskAvailable_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
WorkQueue::submit(Task task)
{
    if (workerCount_ == 0) {
        // Inline execution (single-threaded mode).
        task();
        std::lock_guard<std::mutex> lock(mutex_);
        ++executed_;
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        ++pending_;
    }
    taskAvailable_.notify_one();
}

void
WorkQueue::waitAll()
{
    if (workerCount_ == 0)
        return;
    std::unique_lock<std::mutex> lock(mutex_);
    batchDone_.wait(lock, [this] { return pending_ == 0; });
}

void
WorkQueue::runBatch(std::vector<Task> tasks)
{
    for (Task &t : tasks)
        submit(std::move(t));
    waitAll();
}

std::uint64_t
WorkQueue::tasksExecuted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return executed_;
}

void
WorkQueue::workerLoop()
{
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            taskAvailable_.wait(lock, [this] {
                return shutdown_ || !queue_.empty();
            });
            if (shutdown_ && queue_.empty())
                return;
            task = std::move(queue_.back());
            queue_.pop_back();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++executed_;
            if (--pending_ == 0)
                batchDone_.notify_all();
        }
    }
}

} // namespace parallax
