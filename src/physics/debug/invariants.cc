#include "invariants.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "physics/world.hh"

namespace parallax
{

namespace
{

bool
finite(const Vec3 &v)
{
    return std::isfinite(v.x) && std::isfinite(v.y) &&
           std::isfinite(v.z);
}

bool
finite(const Quat &q)
{
    return std::isfinite(q.w) && std::isfinite(q.x) &&
           std::isfinite(q.y) && std::isfinite(q.z);
}

std::uint64_t
orderedPairKey(std::uint32_t a, std::uint32_t b)
{
    return (static_cast<std::uint64_t>(a) << 32) | b;
}

/** The dynamic body a contact violation should be attributed to
 *  (quarantine wants an island, and only dynamic bodies have one). */
std::int64_t
dynamicBodyOf(const World &world, GeomId a, GeomId b)
{
    for (const GeomId id : {a, b}) {
        const Geom *geom = world.geom(id);
        const RigidBody *body = geom != nullptr ? geom->body()
                                                : nullptr;
        if (body != nullptr && !body->isStatic())
            return body->id();
    }
    return -1;
}

/** Collects violations, capping the list so a systemic failure (every
 *  body NaN) reports a readable handful, not a million lines. */
class Report
{
  public:
    explicit Report(std::vector<InvariantViolation> &out) : out_(out) {}

    void
    add(const char *code, std::string message,
        std::int64_t body = -1, std::int64_t cloth = -1)
    {
        if (out_.size() < maxViolations) {
            out_.push_back(InvariantViolation{
                code, std::move(message), body, cloth});
        }
        ++total_;
    }

    std::size_t total() const { return total_; }

    static constexpr std::size_t maxViolations = 64;

  private:
    std::vector<InvariantViolation> &out_;
    std::size_t total_ = 0;
};

void
checkBodiesFinite(const World &world, Report &report)
{
    for (const auto &body : world.bodies()) {
        const BodyId id = body->id();
        if (!finite(body->position()) || !finite(body->orientation())) {
            report.add("body-finite",
                       "body " + std::to_string(id) +
                           " has a non-finite pose", id);
        }
        if (!finite(body->linearVelocity()) ||
            !finite(body->angularVelocity())) {
            report.add("body-finite",
                       "body " + std::to_string(id) +
                           " has a non-finite velocity", id);
        }
        if (!finite(body->force()) || !finite(body->torque())) {
            report.add("body-finite",
                       "body " + std::to_string(id) +
                           " has a non-finite force/torque accumulator",
                       id);
        }
    }
}

void
checkContacts(const World &world, Report &report)
{
    // Broadphase pairs are canonical (a < b); a contact for geoms
    // (x, y) must have come from pair (min, max). Also: no pair may
    // be emitted in both orientations, and a geom never contacts
    // itself.
    std::unordered_set<std::uint64_t> pair_set;
    pair_set.reserve(world.lastPairs().size());
    for (const GeomPair &pair : world.lastPairs())
        pair_set.insert(orderedPairKey(pair.a, pair.b));

    std::unordered_set<std::uint64_t> emitted;
    emitted.reserve(world.lastContacts().size());
    for (const Contact &c : world.lastContacts()) {
        if (c.geomA == c.geomB) {
            report.add("contact-distinct",
                       "contact pairs geom " +
                           std::to_string(c.geomA) + " with itself");
            continue;
        }
        if (c.geomA >= world.geomCount() ||
            c.geomB >= world.geomCount()) {
            report.add("contact-valid",
                       "contact references geom out of range (" +
                           std::to_string(c.geomA) + ", " +
                           std::to_string(c.geomB) + ")");
            continue;
        }
        if (!finite(c.position) || !finite(c.normal) ||
            !std::isfinite(c.depth)) {
            report.add("contact-finite",
                       "contact between geoms " +
                           std::to_string(c.geomA) + " and " +
                           std::to_string(c.geomB) +
                           " has non-finite data",
                       dynamicBodyOf(world, c.geomA, c.geomB));
        }
        const std::uint64_t lo_hi = orderedPairKey(
            std::min(c.geomA, c.geomB), std::max(c.geomA, c.geomB));
        if (pair_set.find(lo_hi) == pair_set.end()) {
            report.add("contact-from-pair",
                       "contact between geoms " +
                           std::to_string(c.geomA) + " and " +
                           std::to_string(c.geomB) +
                           " has no broadphase pair");
        }
        emitted.insert(orderedPairKey(c.geomA, c.geomB));
        if (emitted.count(orderedPairKey(c.geomB, c.geomA))) {
            report.add("contact-symmetric",
                       "geom pair (" + std::to_string(c.geomA) +
                           ", " + std::to_string(c.geomB) +
                           ") emitted in both orientations");
        }
    }
}

void
checkIslandPartition(const World &world, Report &report)
{
    // Every awake, enabled dynamic body belongs to exactly one
    // island; a sleeping body still belongs to exactly one (sleeping
    // islands are kept, just not solved). Static and disabled bodies
    // belong to none.
    std::unordered_map<BodyId, int> seen;
    for (const Island &island : world.lastIslandPartition()) {
        for (const RigidBody *body : island.bodies)
            ++seen[body->id()];
    }
    for (const auto &body : world.bodies()) {
        const bool expected =
            !body->isStatic() && body->enabled();
        const int count =
            seen.count(body->id()) ? seen[body->id()] : 0;
        if (expected && count != 1) {
            report.add("island-partition",
                       "dynamic body " + std::to_string(body->id()) +
                           " appears in " + std::to_string(count) +
                           " islands (expected 1)");
        } else if (!expected && count != 0) {
            report.add("island-partition",
                       (body->isStatic() ? "static" : "disabled") +
                           std::string(" body ") +
                           std::to_string(body->id()) +
                           " appears in " + std::to_string(count) +
                           " islands (expected 0)");
        }
    }
}

void
checkSleeping(const World &world, Report &report)
{
    // Sleeping bodies were zeroed by sleep() and skipped by the
    // solver and integrator: any residual velocity or contact
    // impulse means a sleeping island was touched without waking.
    for (const auto &body : world.bodies()) {
        if (!body->asleep())
            continue;
        if (body->linearVelocity().lengthSquared() != 0.0 ||
            body->angularVelocity().lengthSquared() != 0.0) {
            report.add("sleep-motion",
                       "sleeping body " + std::to_string(body->id()) +
                           " has non-zero velocity",
                       body->id());
        }
    }
    for (const auto &joint : world.lastContactJoints()) {
        const RigidBody *a = joint->bodyA();
        const RigidBody *b = joint->bodyB();
        const bool touches_sleeper =
            (a != nullptr && a->asleep()) ||
            (b != nullptr && b->asleep());
        if (!touches_sleeper)
            continue;
        const Real *l = joint->solvedLambdas();
        if (l[0] != 0.0 || l[1] != 0.0 || l[2] != 0.0) {
            report.add("sleep-impulse",
                       "contact joint " + std::to_string(joint->id()) +
                           " applied an impulse to a sleeping body",
                       joint->bodyA() != nullptr
                           ? static_cast<std::int64_t>(
                                 joint->bodyA()->id())
                           : -1);
        }
    }
}

void
checkFrictionCone(const World &world, Report &report,
                  const InvariantOptions &options)
{
    // Contact joints are built with the world's default material, so
    // its friction coefficient bounds every solved friction impulse.
    const Real mu = world.config().defaultMaterial.friction;
    for (const auto &joint : world.lastContactJoints()) {
        // ContactJoint guarantees a dynamic bodyA; quarantine will
        // freeze its island.
        const std::int64_t owner =
            joint->bodyA() != nullptr
                ? static_cast<std::int64_t>(joint->bodyA()->id())
                : -1;
        const Real *l = joint->solvedLambdas();
        if (!std::isfinite(l[0]) || !std::isfinite(l[1]) ||
            !std::isfinite(l[2])) {
            report.add("impulse-finite",
                       "contact joint " + std::to_string(joint->id()) +
                           " solved a non-finite impulse",
                       owner);
            continue;
        }
        const Real slack =
            options.frictionSlack * (1.0 + std::fabs(mu * l[0]));
        if (l[0] < -slack) {
            report.add("friction-cone",
                       "contact joint " + std::to_string(joint->id()) +
                           " has negative normal impulse " +
                           std::to_string(l[0]),
                       owner);
        }
        const Real limit = mu * std::max<Real>(l[0], 0.0) + slack;
        if (std::fabs(l[1]) > limit || std::fabs(l[2]) > limit) {
            report.add("friction-cone",
                       "contact joint " + std::to_string(joint->id()) +
                           " friction impulse exceeds mu * normal (" +
                           std::to_string(l[1]) + ", " +
                           std::to_string(l[2]) + " vs limit " +
                           std::to_string(limit) + ")",
                       owner);
        }
    }
}

void
checkCloth(const World &world, Report &report,
           const InvariantOptions &options)
{
    for (const auto &cloth : world.cloths()) {
        for (std::size_t i = 0; i < cloth->particles().size(); ++i) {
            const Cloth::Particle &p = cloth->particles()[i];
            if (!finite(p.position) || !finite(p.previous)) {
                report.add("cloth-finite",
                           "cloth " + std::to_string(cloth->id()) +
                               " particle " + std::to_string(i) +
                               " is non-finite",
                           -1, cloth->id());
            }
        }
        for (const Cloth::DistanceConstraint &c :
             cloth->constraints()) {
            const Vec3 d = cloth->particles()[c.a].position -
                           cloth->particles()[c.b].position;
            const Real len = d.length();
            if (!std::isfinite(len) ||
                std::fabs(len - c.restLength) >
                    options.clothStretchFactor * c.restLength) {
                report.add("cloth-stretch",
                           "cloth " + std::to_string(cloth->id()) +
                               " edge (" + std::to_string(c.a) + ", " +
                               std::to_string(c.b) + ") length " +
                               std::to_string(len) +
                               " vs rest " +
                               std::to_string(c.restLength),
                           -1, cloth->id());
            }
        }
    }
}

} // namespace

std::vector<InvariantViolation>
checkWorldInvariants(const World &world, const InvariantOptions &options)
{
    std::vector<InvariantViolation> violations;
    Report report(violations);
    checkBodiesFinite(world, report);
    checkContacts(world, report);
    checkIslandPartition(world, report);
    checkSleeping(world, report);
    checkFrictionCone(world, report, options);
    checkCloth(world, report, options);
    if (report.total() > Report::maxViolations) {
        violations.push_back(InvariantViolation{
            "truncated",
            std::to_string(report.total() - Report::maxViolations) +
                " further violations omitted"});
    }
    return violations;
}

} // namespace parallax
