/**
 * @file
 * World-invariant checker: structural validation of simulation state.
 *
 * Physics pipelines fail subtly — a NaN velocity or a stale sleeping
 * island skews every per-phase figure the benchmarks report without
 * crashing anything. The checker walks the world after a step and
 * verifies the structural properties every phase relies on:
 *
 *  - all body positions / orientations / velocities / accumulators
 *    are finite,
 *  - narrowphase contacts reference valid, distinct geoms and no
 *    pair is emitted in both (A,B) and (B,A) orientations,
 *  - every narrowphase contact came from a broadphase pair
 *    (pair set is a superset of the contact set),
 *  - the island list is a true partition: every awake, enabled
 *    dynamic body appears in exactly one island,
 *  - sleeping bodies have zero velocity and no applied contact
 *    impulse (sleeping islands are skipped by the solver),
 *  - solved contact impulses respect the friction-cone bounds
 *    (normal lambda >= 0, |friction| <= mu * normal),
 *  - cloth particles are finite and no distance constraint is
 *    stretched beyond tolerance (a blown-up relaxation solve).
 *
 * Enabled with WorldConfig::checkInvariants, World::step() runs the
 * checker after every substep and, on any violation, dumps the
 * pre-step snapshot (see capture.hh) so the failure replays in one
 * step under a debugger.
 */

#ifndef PARALLAX_PHYSICS_DEBUG_INVARIANTS_HH
#define PARALLAX_PHYSICS_DEBUG_INVARIANTS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace parallax
{

class World;

/** One violated invariant: a stable code plus a readable message. */
struct InvariantViolation
{
    /** Stable identifier, e.g. "body-finite", "contact-symmetric". */
    std::string code;
    /** Human-readable description naming the offending entity. */
    std::string message;
    /**
     * Fault attribution for InvariantMode::Quarantine: the offending
     * body (quarantine its island) or cloth, when the violation can
     * be pinned to one. -1 means structural / not attributable —
     * those violations hard-fail even under Quarantine.
     */
    std::int64_t body = -1;
    std::int64_t cloth = -1;

    bool attributable() const { return body >= 0 || cloth >= 0; }
};

/** Tolerances used by the checker. */
struct InvariantOptions
{
    /** Friction-cone slack: |f| <= mu * n + slack * (1 + mu * n). */
    double frictionSlack = 1e-6;
    /** Cloth constraint length may deviate from rest by this factor
     *  (Jakobsen relaxation keeps edges near rest; a large multiple
     *  means the solve diverged). The gate is an explosion detector,
     *  not a trajectory pin: the scalar reference itself peaks at
     *  1.80x on the Deformable scene (capes dragged by running
     *  ragdolls), so tolerance-bounded backends (native SIMD sweeps
     *  relax in color-major order) need headroom over the reference's
     *  worst case. A diverged solve overshoots this by orders of
     *  magnitude or goes non-finite, which cloth-finite catches. */
    double clothStretchFactor = 3.0;
};

/**
 * Validate the world against every invariant and return the list of
 * violations (empty = healthy). Pure observer: never mutates state.
 */
std::vector<InvariantViolation>
checkWorldInvariants(const World &world,
                     const InvariantOptions &options =
                         InvariantOptions());

} // namespace parallax

#endif // PARALLAX_PHYSICS_DEBUG_INVARIANTS_HH
