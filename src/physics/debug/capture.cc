#include "capture.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>

#include "physics/shapes/primitives.hh"
#include "physics/world.hh"
#include "sim/logging.hh"

namespace parallax
{

namespace
{

constexpr char snapshotMagic[8] = {'P', 'A', 'X', 'S',
                                   'N', 'A', 'P', '1'};

std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= data[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

/** Little-endian byte appender for POD snapshot fields. */
class Writer
{
  public:
    explicit Writer(std::vector<std::uint8_t> &out) : out_(out) {}

    void
    u8(std::uint8_t v)
    {
        out_.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    i32(std::int32_t v)
    {
        u32(static_cast<std::uint32_t>(v));
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    vec3(const Vec3 &v)
    {
        f64(v.x);
        f64(v.y);
        f64(v.z);
    }

    void
    quat(const Quat &q)
    {
        f64(q.w);
        f64(q.x);
        f64(q.y);
        f64(q.z);
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        out_.insert(out_.end(), s.begin(), s.end());
    }

  private:
    std::vector<std::uint8_t> &out_;
};

/** Bounds-checked reader: records what it was reading when the bytes
 *  ran out, so truncation errors name the missing section. */
class Reader
{
  public:
    Reader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {}

    bool ok() const { return error_.empty(); }
    const std::string &error() const { return error_; }

    std::uint8_t
    u8(const char *what)
    {
        if (!need(1, what))
            return 0;
        return data_[pos_++];
    }

    std::uint32_t
    u32(const char *what)
    {
        if (!need(4, what))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    std::uint64_t
    u64(const char *what)
    {
        if (!need(8, what))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    std::int32_t
    i32(const char *what)
    {
        return static_cast<std::int32_t>(u32(what));
    }

    double
    f64(const char *what)
    {
        const std::uint64_t bits = u64(what);
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    Vec3
    vec3(const char *what)
    {
        Vec3 v;
        v.x = f64(what);
        v.y = f64(what);
        v.z = f64(what);
        return v;
    }

    Quat
    quat(const char *what)
    {
        Quat q;
        q.w = f64(what);
        q.x = f64(what);
        q.y = f64(what);
        q.z = f64(what);
        return q;
    }

    std::string
    str(const char *what)
    {
        const std::uint32_t n = u32(what);
        if (!need(n, what))
            return "";
        std::string s(reinterpret_cast<const char *>(data_ + pos_), n);
        pos_ += n;
        return s;
    }

    std::size_t remaining() const { return size_ - pos_; }

    /**
     * Validate a declared element count against the bytes actually
     * left in the payload: each element encodes to at least
     * `elem_bytes`, so a hostile length field (say 2^31) fails here
     * with a readable error instead of sizing a giant allocation.
     */
    std::size_t
    count(std::uint32_t n, std::size_t elem_bytes, const char *what)
    {
        if (!ok())
            return 0;
        if (static_cast<std::uint64_t>(n) * elem_bytes > remaining()) {
            error_ = "snapshot declares " + std::to_string(n) + " " +
                     what + " but only " +
                     std::to_string(remaining()) +
                     " payload bytes remain";
            return 0;
        }
        return n;
    }

    void
    fail(std::string message)
    {
        if (error_.empty())
            error_ = std::move(message);
    }

  private:
    bool
    need(std::size_t n, const char *what)
    {
        if (!ok())
            return false;
        if (pos_ + n > size_) {
            error_ = std::string("snapshot truncated while reading ") +
                     what;
            return false;
        }
        return true;
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    std::string error_;
};

void
writeConfig(Writer &w, const WorldConfig &config)
{
    w.vec3(config.gravity);
    w.f64(config.dt);
    w.i32(config.solverIterations);
    w.i32(config.clothIterations);
    w.u32(config.workerThreads);
    w.i32(config.islandWorkQueueThreshold);
    w.u32(config.grainSize);
    w.u8(config.deterministic ? 1 : 0);
    w.u8(static_cast<std::uint8_t>(config.broadphase));
    w.f64(config.defaultMaterial.friction);
    w.f64(config.defaultMaterial.restitution);
    w.f64(config.defaultMaterial.restitutionThreshold);
    w.f64(config.erp);
    w.f64(config.cfm);
    w.u8(config.autoDisable ? 1 : 0);
    w.f64(config.sleepLinearVelocity);
    w.f64(config.sleepAngularVelocity);
    w.i32(config.sleepSteps);
}

WorldConfig
readConfig(Reader &r)
{
    WorldConfig config;
    config.gravity = r.vec3("config.gravity");
    config.dt = r.f64("config.dt");
    config.solverIterations = r.i32("config.solverIterations");
    config.clothIterations = r.i32("config.clothIterations");
    config.workerThreads = r.u32("config.workerThreads");
    config.islandWorkQueueThreshold =
        r.i32("config.islandWorkQueueThreshold");
    config.grainSize = r.u32("config.grainSize");
    config.deterministic = r.u8("config.deterministic") != 0;
    config.broadphase =
        static_cast<BroadphaseKind>(r.u8("config.broadphase"));
    config.defaultMaterial.friction = r.f64("config.friction");
    config.defaultMaterial.restitution = r.f64("config.restitution");
    config.defaultMaterial.restitutionThreshold =
        r.f64("config.restitutionThreshold");
    config.erp = r.f64("config.erp");
    config.cfm = r.f64("config.cfm");
    config.autoDisable = r.u8("config.autoDisable") != 0;
    config.sleepLinearVelocity = r.f64("config.sleepLinearVelocity");
    config.sleepAngularVelocity = r.f64("config.sleepAngularVelocity");
    config.sleepSteps = r.i32("config.sleepSteps");
    return config;
}

/** Validate magic/version/checksum; returns the payload span via
 *  out-parameters and OK on success. */
Status
openSnapshot(const std::vector<std::uint8_t> &bytes,
             const std::uint8_t **payload, std::size_t *payload_size)
{
    constexpr std::size_t header_size =
        sizeof(snapshotMagic) + 4 + 8 + 8;
    if (bytes.size() < header_size)
        return dataLoss("snapshot too small to hold a header (" +
                        std::to_string(bytes.size()) + " bytes)");
    if (std::memcmp(bytes.data(), snapshotMagic,
                    sizeof(snapshotMagic)) != 0) {
        return invalidArgument("not a ParallAX snapshot (bad magic)");
    }
    Reader header(bytes.data() + sizeof(snapshotMagic),
                  bytes.size() - sizeof(snapshotMagic));
    const std::uint32_t version = header.u32("header.version");
    if (version != snapshotVersion) {
        return invalidArgument("unsupported snapshot version " +
                               std::to_string(version) +
                               " (expected " +
                               std::to_string(snapshotVersion) + ")");
    }
    const std::uint64_t checksum = header.u64("header.checksum");
    const std::uint64_t size = header.u64("header.payloadSize");
    if (header_size + size != bytes.size()) {
        return dataLoss("snapshot truncated: header promises " +
                        std::to_string(size) +
                        " payload bytes, file has " +
                        std::to_string(bytes.size() - header_size));
    }
    *payload = bytes.data() + header_size;
    *payload_size = static_cast<std::size_t>(size);
    if (fnv1a(*payload, *payload_size) != checksum)
        return dataLoss(
            "snapshot corrupted: payload checksum mismatch");
    return okStatus();
}

/** Payload prefix shared by describeSnapshot and restoreState. */
struct Preamble
{
    SnapshotInfo info;
    WorldConfig config;
    std::uint64_t totalJointsBroken = 0;
};

Preamble
readPreamble(Reader &r)
{
    Preamble p;
    p.info.version = snapshotVersion;
    p.info.sceneTag = r.str("sceneTag");
    p.info.stepCount = r.u64("stepCount");
    p.info.time = r.f64("time");
    p.totalJointsBroken = r.u64("totalJointsBroken");
    p.config = readConfig(r);
    p.config.sceneTag = p.info.sceneTag;
    p.info.bodies = r.u32("bodyCount");
    p.info.geoms = r.u32("geomCount");
    p.info.joints = r.u32("jointCount");
    p.info.cloths = r.u32("clothCount");
    p.info.blastSpawns = r.u32("blastSpawnCount");
    return p;
}

/** First config field whose mismatch would make a replay diverge. */
const char *
divergentConfigField(const WorldConfig &a, const WorldConfig &b)
{
    if ((a.gravity - b.gravity).lengthSquared() != 0.0)
        return "gravity";
    if (a.dt != b.dt)
        return "dt";
    if (a.solverIterations != b.solverIterations)
        return "solverIterations";
    if (a.clothIterations != b.clothIterations)
        return "clothIterations";
    if (a.deterministic != b.deterministic)
        return "deterministic";
    if (a.deterministic && a.grainSize != b.grainSize)
        return "grainSize";
    if (a.broadphase != b.broadphase)
        return "broadphase";
    if (a.defaultMaterial.friction != b.defaultMaterial.friction ||
        a.defaultMaterial.restitution !=
            b.defaultMaterial.restitution ||
        a.defaultMaterial.restitutionThreshold !=
            b.defaultMaterial.restitutionThreshold) {
        return "defaultMaterial";
    }
    if (a.erp != b.erp)
        return "erp";
    if (a.cfm != b.cfm)
        return "cfm";
    if (a.autoDisable != b.autoDisable)
        return "autoDisable";
    if (a.autoDisable &&
        (a.sleepLinearVelocity != b.sleepLinearVelocity ||
         a.sleepAngularVelocity != b.sleepAngularVelocity ||
         a.sleepSteps != b.sleepSteps)) {
        return "sleep thresholds";
    }
    return nullptr;
}

} // namespace

Status
describeSnapshot(const std::vector<std::uint8_t> &bytes,
                 SnapshotInfo &info, WorldConfig &config)
{
    const std::uint8_t *payload = nullptr;
    std::size_t payload_size = 0;
    const Status st = openSnapshot(bytes, &payload, &payload_size);
    if (!st.ok())
        return st;
    Reader r(payload, payload_size);
    const Preamble p = readPreamble(r);
    if (!r.ok())
        return dataLoss(r.error());
    info = p.info;
    config = p.config;
    return okStatus();
}

Status
writeSnapshotFile(const std::string &path,
                  const std::vector<std::uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return ioError("cannot open '" + path + "' for writing");
    const std::size_t written =
        std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (written != bytes.size())
        return ioError("short write to '" + path + "'");
    return okStatus();
}

Status
readSnapshotFile(const std::string &path,
                 std::vector<std::uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return notFound("cannot open '" + path + "' for reading");
    bytes.clear();
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    const bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad)
        return ioError("read error on '" + path + "'");
    return okStatus();
}

std::vector<std::uint8_t>
World::captureState() const
{
    std::vector<std::uint8_t> payload;
    Writer w(payload);

    w.str(config_.sceneTag);
    w.u64(stepCount_);
    w.f64(time_);
    w.u64(totalJointsBroken_);
    writeConfig(w, config_);

    w.u32(static_cast<std::uint32_t>(bodies_.size()));
    w.u32(static_cast<std::uint32_t>(geoms_.size()));
    w.u32(static_cast<std::uint32_t>(joints_.size()));
    w.u32(static_cast<std::uint32_t>(cloths_.size()));

    // Blast volumes are the one structural mutation a running scene
    // performs; record them so a fresh scene build can recreate them
    // in id order before restoring per-entity state.
    std::uint32_t spawns = 0;
    for (const auto &g : geoms_) {
        if (g->isBlast())
            ++spawns;
    }
    w.u32(spawns);
    for (const auto &g : geoms_) {
        if (!g->isBlast())
            continue;
        parallax_assert(g->shape().type() == ShapeType::Sphere &&
                        g->body() != nullptr);
        w.u32(g->id());
        w.u32(g->body()->id());
        w.f64(static_cast<const SphereShape &>(g->shape()).radius());
        w.vec3(g->body()->position());
    }

    for (const auto &b : bodies_) {
        w.vec3(b->position());
        w.quat(b->orientation());
        w.vec3(b->linearVelocity());
        w.vec3(b->angularVelocity());
        w.vec3(b->force());
        w.vec3(b->torque());
        w.u8(b->enabled() ? 1 : 0);
        w.u8(b->asleep() ? 1 : 0);
        w.i32(b->sleepCounter());
    }

    for (const auto &j : joints_) {
        w.u8(j->broken() ? 1 : 0);
        w.f64(j->lastAppliedForce());
        w.f64(j->accumulatedForce());
    }

    for (const auto &c : cloths_) {
        w.u32(static_cast<std::uint32_t>(c->particles().size()));
        for (const Cloth::Particle &p : c->particles()) {
            w.vec3(p.position);
            w.vec3(p.previous);
            w.f64(p.invMass);
        }
    }

    // Warm-start cache: the flat vector is already sorted by
    // (key, seq), so walking it group-by-group writes the same
    // key-sorted, insertion-ordered bytes the old per-key map
    // capture produced.
    std::uint32_t warm_groups = 0;
    for (std::size_t i = 0; i < warmCache_.size();) {
        std::size_t j = i + 1;
        while (j < warmCache_.size() &&
               warmCache_[j].key == warmCache_[i].key)
            ++j;
        ++warm_groups;
        i = j;
    }
    w.u32(warm_groups);
    for (std::size_t i = 0; i < warmCache_.size();) {
        std::size_t j = i + 1;
        while (j < warmCache_.size() &&
               warmCache_[j].key == warmCache_[i].key)
            ++j;
        w.u64(warmCache_[i].key);
        w.u32(static_cast<std::uint32_t>(j - i));
        for (std::size_t k = i; k < j; ++k) {
            const CachedContact &c = warmCache_[k].c;
            w.vec3(c.position);
            w.vec3(c.normal);
            w.f64(c.lambdas[0]);
            w.f64(c.lambdas[1]);
            w.f64(c.lambdas[2]);
        }
        i = j;
    }

    const EffectsManager::State effects = effects_.captureState();
    w.u32(static_cast<std::uint32_t>(effects.explosives.size()));
    for (const auto &e : effects.explosives) {
        w.u32(e.geom);
        w.f64(e.config.radius);
        w.f64(e.config.duration);
        w.f64(e.config.impulse);
    }
    w.u32(static_cast<std::uint32_t>(effects.blasts.size()));
    for (const EffectsManager::Blast &b : effects.blasts) {
        w.vec3(b.center);
        w.f64(b.radius);
        w.f64(b.impulse);
        w.f64(b.duration);
        w.f64(b.remaining);
        w.u32(b.geom);
    }
    w.u32(static_cast<std::uint32_t>(effects.fractureBroken.size()));
    for (const std::uint8_t broken : effects.fractureBroken)
        w.u8(broken);

    std::vector<std::uint8_t> bytes;
    bytes.reserve(sizeof(snapshotMagic) + 20 + payload.size());
    bytes.insert(bytes.end(), snapshotMagic,
                 snapshotMagic + sizeof(snapshotMagic));
    Writer header(bytes);
    header.u32(snapshotVersion);
    header.u64(fnv1a(payload.data(), payload.size()));
    header.u64(payload.size());
    bytes.insert(bytes.end(), payload.begin(), payload.end());
    return bytes;
}

Status
World::restoreState(const std::vector<std::uint8_t> &bytes)
{
    const std::uint8_t *payload = nullptr;
    std::size_t payload_size = 0;
    const Status st = openSnapshot(bytes, &payload, &payload_size);
    if (!st.ok())
        return st;

    Reader r(payload, payload_size);
    const Preamble p = readPreamble(r);
    if (!r.ok())
        return dataLoss(r.error());

    if (const char *field =
            divergentConfigField(p.config, config_)) {
        warn("snapshot config differs from world config (%s): "
             "replay may diverge", field);
    }

    struct Spawn
    {
        GeomId geom;
        BodyId body;
        Real radius;
        Vec3 center;
    };
    // Each spawn record is 2 u32 + f64 + vec3 = 40 bytes.
    std::vector<Spawn> spawn_records(
        r.count(p.info.blastSpawns, 40, "blast spawns"));
    for (Spawn &s : spawn_records) {
        s.geom = r.u32("spawn.geom");
        s.body = r.u32("spawn.body");
        s.radius = r.f64("spawn.radius");
        s.center = r.vec3("spawn.center");
    }
    if (!r.ok())
        return dataLoss(r.error());

    // Line the structure up before touching any state: either the
    // world already contains the spawned blast volumes (restoring
    // into the same world) or it is a fresh scene build and they
    // must be recreated in id order.
    if (geoms_.size() + spawn_records.size() == p.info.geoms) {
        for (const Spawn &s : spawn_records) {
            const SphereShape *sphere = addSphere(s.radius);
            RigidBody *anchor =
                createStaticBody(Transform(Quat(), s.center));
            Geom *blast_geom = createGeom(sphere, anchor);
            blast_geom->setBlast(true);
            if (blast_geom->id() != s.geom ||
                anchor->id() != s.body) {
                return failedPrecondition(
                    "blast spawn id mismatch: snapshot has geom " +
                    std::to_string(s.geom) + "/body " +
                    std::to_string(s.body) + ", world created " +
                    std::to_string(blast_geom->id()) + "/" +
                    std::to_string(anchor->id()));
            }
        }
    } else if (geoms_.size() == p.info.geoms) {
        for (const Spawn &s : spawn_records) {
            if (s.geom >= geoms_.size() ||
                !geoms_[s.geom]->isBlast()) {
                return failedPrecondition(
                    "snapshot blast geom " + std::to_string(s.geom) +
                    " is not a blast volume in this world");
            }
        }
    } else {
        return failedPrecondition(
            "snapshot does not match this world: snapshot has " +
            std::to_string(p.info.geoms) + " geoms (" +
            std::to_string(p.info.blastSpawns) +
            " blast spawns), world has " +
            std::to_string(geoms_.size()));
    }
    if (bodies_.size() != p.info.bodies ||
        joints_.size() != p.info.joints ||
        cloths_.size() != p.info.cloths) {
        return failedPrecondition(
            "snapshot does not match this world: snapshot has " +
            std::to_string(p.info.bodies) + " bodies / " +
            std::to_string(p.info.joints) + " joints / " +
            std::to_string(p.info.cloths) + " cloths, world has " +
            std::to_string(bodies_.size()) + " / " +
            std::to_string(joints_.size()) + " / " +
            std::to_string(cloths_.size()));
    }

    // Parse everything into locals first: a truncated tail must not
    // leave the world half-restored.
    struct BodyState
    {
        Transform pose;
        Vec3 linVel, angVel, force, torque;
        bool enabled, asleep;
        int sleepCounter;
    };
    std::vector<BodyState> body_states(p.info.bodies);
    for (BodyState &b : body_states) {
        b.pose.position = r.vec3("body.position");
        b.pose.rotation = r.quat("body.orientation");
        b.linVel = r.vec3("body.linearVelocity");
        b.angVel = r.vec3("body.angularVelocity");
        b.force = r.vec3("body.force");
        b.torque = r.vec3("body.torque");
        b.enabled = r.u8("body.enabled") != 0;
        b.asleep = r.u8("body.asleep") != 0;
        b.sleepCounter = r.i32("body.sleepCounter");
    }

    struct JointState
    {
        bool broken;
        Real lastForce, accumForce;
    };
    std::vector<JointState> joint_states(p.info.joints);
    for (JointState &j : joint_states) {
        j.broken = r.u8("joint.broken") != 0;
        j.lastForce = r.f64("joint.lastForce");
        j.accumForce = r.f64("joint.accumForce");
    }

    std::vector<std::vector<Cloth::Particle>> cloth_states(
        p.info.cloths);
    for (std::vector<Cloth::Particle> &particles : cloth_states) {
        const std::uint32_t n = r.u32("cloth.particleCount");
        particles.resize(r.count(n, 56, "cloth particles"));
        for (Cloth::Particle &particle : particles) {
            particle.position = r.vec3("cloth.position");
            particle.previous = r.vec3("cloth.previous");
            particle.invMass = r.f64("cloth.invMass");
        }
    }

    // Groups arrive key-sorted with entries in insertion order, so a
    // running seq reproduces the live cache's (key, seq) sort order
    // without re-sorting.
    std::vector<WarmEntry> warm;
    std::uint32_t warm_seq = 0;
    const std::uint32_t warm_entries =
        static_cast<std::uint32_t>(r.count(
            r.u32("warmCache.entries"), 12, "warm-cache entries"));
    for (std::uint32_t i = 0; r.ok() && i < warm_entries; ++i) {
        const std::uint64_t key = r.u64("warmCache.key");
        const std::uint32_t n = static_cast<std::uint32_t>(
            r.count(r.u32("warmCache.count"), 72,
                    "warm-cache contacts"));
        for (std::uint32_t k = 0; k < n; ++k) {
            CachedContact c;
            c.position = r.vec3("warmCache.position");
            c.normal = r.vec3("warmCache.normal");
            c.lambdas[0] = r.f64("warmCache.lambda");
            c.lambdas[1] = r.f64("warmCache.lambda");
            c.lambdas[2] = r.f64("warmCache.lambda");
            warm.push_back(WarmEntry{key, warm_seq++, c});
        }
    }

    EffectsManager::State effects;
    const std::uint32_t explosive_count = r.u32("effects.explosives");
    effects.explosives.resize(
        r.count(explosive_count, 28, "explosives"));
    for (auto &e : effects.explosives) {
        e.geom = r.u32("effects.explosive.geom");
        e.config.radius = r.f64("effects.explosive.radius");
        e.config.duration = r.f64("effects.explosive.duration");
        e.config.impulse = r.f64("effects.explosive.impulse");
    }
    const std::uint32_t blast_count = r.u32("effects.blasts");
    effects.blasts.resize(r.count(blast_count, 60, "blasts"));
    for (EffectsManager::Blast &b : effects.blasts) {
        b.center = r.vec3("effects.blast.center");
        b.radius = r.f64("effects.blast.radius");
        b.impulse = r.f64("effects.blast.impulse");
        b.duration = r.f64("effects.blast.duration");
        b.remaining = r.f64("effects.blast.remaining");
        b.geom = r.u32("effects.blast.geom");
    }
    const std::uint32_t fracture_count = r.u32("effects.fractures");
    effects.fractureBroken.resize(
        r.count(fracture_count, 1, "fracture flags"));
    for (std::uint8_t &broken : effects.fractureBroken)
        broken = r.u8("effects.fracture.broken");
    if (!r.ok())
        return dataLoss(r.error());

    // Commit.
    for (std::size_t i = 0; i < bodies_.size(); ++i) {
        RigidBody *body = bodies_[i].get();
        const BodyState &s = body_states[i];
        body->setPose(s.pose);
        body->setLinearVelocity(s.linVel);
        body->setAngularVelocity(s.angVel);
        body->clearAccumulators();
        body->applyForce(s.force);
        body->applyTorque(s.torque);
        body->setEnabled(s.enabled);
        body->setSleepState(s.asleep, s.sleepCounter);
    }
    for (std::size_t i = 0; i < joints_.size(); ++i) {
        joints_[i]->restoreBreakState(joint_states[i].broken,
                                      joint_states[i].lastForce,
                                      joint_states[i].accumForce);
    }
    for (std::size_t i = 0; i < cloths_.size(); ++i) {
        if (!cloths_[i]->restoreParticles(cloth_states[i])) {
            return failedPrecondition(
                "cloth " + std::to_string(i) + " has " +
                std::to_string(cloths_[i]->particles().size()) +
                " particles, snapshot has " +
                std::to_string(cloth_states[i].size()) +
                " (different mesh)");
        }
    }
    warmCache_ = std::move(warm);
    const std::string effects_err = effects_.restoreState(effects);
    if (!effects_err.empty())
        return failedPrecondition(effects_err);

    jointWasBroken_.assign(joints_.size(), false);
    for (std::size_t i = 0; i < joints_.size(); ++i)
        jointWasBroken_[i] = joints_[i]->broken();
    time_ = p.info.time;
    stepCount_ = p.info.stepCount;
    totalJointsBroken_ = p.totalJointsBroken;

    // Per-step scratch describes a step that never happened here.
    lastPairs_.clear();
    lastContacts_.clear();
    contactJoints_.clear();
    lastIslandList_.clear();
    stepStats_.reset();
    // A prefetched broadphase saw the pre-restore poses.
    bpPrefetchValid_ = false;

    // Governor ladder and quarantine bookkeeping are runtime
    // containment state, not simulation state: a restored world
    // starts at full quality with nothing frozen (body enabled flags
    // from the snapshot already reflect any freezes).
    governor_ = StepGovernor(config_.frameBudget, config_.governor,
                             config_.solverIterations,
                             config_.clothIterations);
    plan_ = governor_.planForLevel(0);
    lastStepSeconds_ = 0.0;
    quarantinedBodies_.clear();
    probationUntil_.clear();
    retryCount_.clear();
    clothQuarantined_.clear();
    // A deferred hard-fail is rehabilitated by the rollback that
    // brought us here (the external degradation floor, by contrast,
    // is the supervisor's to lift — it survives restores).
    hardFailCode_.clear();
    return okStatus();
}

std::vector<InvariantViolation>
World::validateInvariants() const
{
    return checkWorldInvariants(*this);
}

void
World::dumpViolationSnapshot(const char *prefix)
{
    std::string name = prefix;
    for (const char c : config_.sceneTag)
        name += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
    name += "_step" + std::to_string(stepCount_) + ".paxsnap";
    const std::string path = config_.snapshotDir + "/" + name;
    const Status st = writeSnapshotFile(path, preStepSnapshot_);
    if (st.ok()) {
        warn("pre-step snapshot written to %s "
             "(replay: tools/replay_snapshot %s)",
             path.c_str(), path.c_str());
    } else {
        warn("failed to write pre-step snapshot: %s",
             st.toString().c_str());
    }
}

void
World::failInvariants(const std::vector<InvariantViolation> &violations)
{
    parallax_assert(!violations.empty());
    for (const InvariantViolation &v : violations)
        warn("invariant [%s]: %s", v.code.c_str(), v.message.c_str());

    dumpViolationSnapshot("invariant");
    fatal("world invariants violated at step %llu (%zu violation(s), "
          "first: [%s] %s)",
          static_cast<unsigned long long>(stepCount_),
          violations.size(), violations[0].code.c_str(),
          violations[0].message.c_str());
}


// --- Delta-compressed snapshot streaming. ---

namespace
{

constexpr char snapshotDeltaMagic[8] = {'P', 'A', 'X', 'D',
                                        'E', 'L', 'T', '1'};

/** Fixed-size delta header: magic + version + base/target checksums
 *  + target size + range count. */
constexpr std::size_t deltaHeaderSize =
    sizeof(snapshotDeltaMagic) + 4 + 8 + 8 + 8 + 4;

/** Two differing byte runs closer than this are emitted as one
 *  range: each range costs 12 header bytes, so bridging a short
 *  matching gap is cheaper than splitting. */
constexpr std::size_t deltaCoalesceGap = 8;

std::uint64_t
readLittleU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

std::uint32_t
readLittleU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

bool
isSnapshotDelta(const std::vector<std::uint8_t> &bytes)
{
    return bytes.size() >= sizeof(snapshotDeltaMagic) &&
           std::memcmp(bytes.data(), snapshotDeltaMagic,
                       sizeof(snapshotDeltaMagic)) == 0;
}

std::vector<std::uint8_t>
encodeSnapshotDelta(const std::vector<std::uint8_t> &base,
                    const std::vector<std::uint8_t> &target)
{
    // Collect differing byte ranges over the shared prefix, merging
    // runs separated by short matches; bytes past the base's end are
    // one final range.
    struct Range
    {
        std::size_t offset;
        std::size_t length;
    };
    std::vector<Range> ranges;
    const std::size_t shared = std::min(base.size(), target.size());
    std::size_t i = 0;
    while (i < shared) {
        if (base[i] == target[i]) {
            ++i;
            continue;
        }
        std::size_t end = i + 1;
        std::size_t match = 0;
        while (end < shared) {
            if (base[end] != target[end]) {
                end += 1;
                match = 0;
            } else if (match + 1 <= deltaCoalesceGap) {
                end += 1;
                match += 1;
            } else {
                break;
            }
        }
        end -= match; // trailing matched bytes are not part of it
        ranges.push_back({i, end - i});
        i = end;
    }
    if (target.size() > base.size())
        ranges.push_back({base.size(), target.size() - base.size()});

    // Range lengths are stored as u32; split longer runs so diffs
    // >= 4 GiB encode losslessly instead of silently truncating.
    constexpr std::size_t maxRangeLength = UINT32_MAX;
    for (std::size_t n = 0; n < ranges.size(); ++n) {
        if (ranges[n].length > maxRangeLength) {
            const Range r = ranges[n];
            ranges[n] = {r.offset, maxRangeLength};
            // The remainder is revisited (and split again if still
            // too long) on the next iteration.
            ranges.insert(ranges.begin() + n + 1,
                          {r.offset + maxRangeLength,
                           r.length - maxRangeLength});
        }
    }

    std::vector<std::uint8_t> out;
    std::size_t payload = 0;
    for (const Range &r : ranges)
        payload += 12 + r.length;
    out.reserve(deltaHeaderSize + payload);
    out.insert(out.end(), snapshotDeltaMagic,
               snapshotDeltaMagic + sizeof(snapshotDeltaMagic));
    Writer w(out);
    w.u32(snapshotDeltaVersion);
    w.u64(fnv1a(base.data(), base.size()));
    w.u64(fnv1a(target.data(), target.size()));
    w.u64(target.size());
    w.u32(static_cast<std::uint32_t>(ranges.size()));
    for (const Range &r : ranges) {
        w.u64(r.offset);
        w.u32(static_cast<std::uint32_t>(r.length));
        out.insert(out.end(), target.begin() + r.offset,
                   target.begin() + r.offset + r.length);
    }
    return out;
}

Status
applySnapshotDelta(const std::vector<std::uint8_t> &base,
                   const std::vector<std::uint8_t> &delta,
                   std::vector<std::uint8_t> &out)
{
    if (delta.size() < deltaHeaderSize)
        return invalidArgument(
            "snapshot delta too small to hold a header (" +
            std::to_string(delta.size()) + " bytes)");
    if (!isSnapshotDelta(delta))
        return invalidArgument(
            "not a ParallAX snapshot delta (bad magic)");
    const std::uint8_t *p = delta.data() + sizeof(snapshotDeltaMagic);
    const std::uint32_t version = readLittleU32(p);
    p += 4;
    if (version != snapshotDeltaVersion) {
        return invalidArgument(
            "unsupported snapshot delta version " +
            std::to_string(version) + " (expected " +
            std::to_string(snapshotDeltaVersion) + ")");
    }
    const std::uint64_t base_checksum = readLittleU64(p);
    p += 8;
    const std::uint64_t target_checksum = readLittleU64(p);
    p += 8;
    const std::uint64_t target_size = readLittleU64(p);
    p += 8;
    const std::uint32_t range_count = readLittleU32(p);
    p += 4;

    if (fnv1a(base.data(), base.size()) != base_checksum) {
        return dataLoss("snapshot delta does not apply to this "
                        "base: base checksum mismatch");
    }

    // A well-formed delta's target can never exceed the base plus
    // the delta's own size: every byte past the base's end must
    // arrive in a range payload. Reject oversized headers before
    // resize() so a corrupt blob yields a Status, not bad_alloc.
    if (target_size >
        static_cast<std::uint64_t>(base.size()) + delta.size()) {
        return invalidArgument(
            "snapshot delta target size " +
            std::to_string(target_size) +
            " exceeds base plus delta size (" +
            std::to_string(base.size() + delta.size()) + ")");
    }

    out.assign(base.begin(), base.end());
    out.resize(static_cast<std::size_t>(target_size));

    const std::uint8_t *delta_end = delta.data() + delta.size();
    for (std::uint32_t r = 0; r < range_count; ++r) {
        if (delta_end - p < 12) {
            return invalidArgument(
                "snapshot delta truncated in range header " +
                std::to_string(r));
        }
        const std::uint64_t offset = readLittleU64(p);
        p += 8;
        const std::uint32_t length = readLittleU32(p);
        p += 4;
        // Overflow-safe form of `offset + length > target_size`: a
        // crafted offset near UINT64_MAX must not wrap past the
        // check and reach the memcpy below.
        if (offset > target_size || length > target_size - offset) {
            return invalidArgument(
                "snapshot delta range " + std::to_string(r) +
                " writes past the target size");
        }
        if (static_cast<std::uint64_t>(delta_end - p) < length) {
            return invalidArgument(
                "snapshot delta truncated in range payload " +
                std::to_string(r));
        }
        std::memcpy(out.data() + offset, p, length);
        p += length;
    }
    if (p != delta_end)
        return invalidArgument(
            "snapshot delta has trailing bytes after the last range");

    if (fnv1a(out.data(), out.size()) != target_checksum) {
        return dataLoss("snapshot delta reconstruction failed its "
                        "target checksum");
    }
    return okStatus();
}

std::uint64_t
worldStateHash(const World &world)
{
    // Must cover exactly what tools/state_hash has always hashed so
    // recorded fingerprints stay comparable across versions.
    struct Fnv
    {
        std::uint64_t h = 0xcbf29ce484222325ull;

        void
        bytes(const void *data, std::size_t n)
        {
            const auto *p = static_cast<const std::uint8_t *>(data);
            for (std::size_t i = 0; i < n; ++i) {
                h ^= p[i];
                h *= 0x100000001b3ull;
            }
        }

        void real(Real v) { bytes(&v, sizeof(v)); }

        void
        vec3(const Vec3 &v)
        {
            real(v.x);
            real(v.y);
            real(v.z);
        }
    } f;

    for (const auto &b : world.bodies()) {
        f.vec3(b->position());
        f.bytes(&b->orientation(), sizeof(Quat));
        f.vec3(b->linearVelocity());
        f.vec3(b->angularVelocity());
        const std::uint8_t flags =
            static_cast<std::uint8_t>((b->enabled() ? 1 : 0) |
                                      (b->asleep() ? 2 : 0));
        f.bytes(&flags, 1);
        const std::int32_t sleep = b->sleepCounter();
        f.bytes(&sleep, sizeof(sleep));
    }
    for (const auto &j : world.joints()) {
        const std::uint8_t broken = j->broken() ? 1 : 0;
        f.bytes(&broken, 1);
        f.real(j->lastAppliedForce());
        f.real(j->accumulatedForce());
    }
    for (const auto &c : world.cloths()) {
        for (const Cloth::Particle &p : c->particles()) {
            f.vec3(p.position);
            f.vec3(p.previous);
        }
    }
    f.real(world.time());
    return f.h;
}

bool
worldStateFinite(const World &world)
{
    const auto finite3 = [](const Vec3 &v) {
        return std::isfinite(v.x) && std::isfinite(v.y) &&
               std::isfinite(v.z);
    };
    for (const auto &b : world.bodies()) {
        const Quat &q = b->orientation();
        if (!finite3(b->position()) || !finite3(b->linearVelocity()) ||
            !finite3(b->angularVelocity()) || !std::isfinite(q.w) ||
            !std::isfinite(q.x) || !std::isfinite(q.y) ||
            !std::isfinite(q.z)) {
            return false;
        }
    }
    for (const auto &c : world.cloths()) {
        for (const Cloth::Particle &p : c->particles()) {
            if (!finite3(p.position) || !finite3(p.previous))
                return false;
        }
    }
    return std::isfinite(world.time());
}

} // namespace parallax
