/**
 * @file
 * Deterministic capture/replay: versioned binary world snapshots.
 *
 * A snapshot records everything World::step() reads: body states,
 * joint break states, cloth particles, the contact warm-start cache,
 * the effects subsystem (pending explosives, active blasts, fracture
 * flags), simulation time, and the world configuration. Restoring a
 * snapshot into a world with the same scene structure reproduces the
 * subsequent trajectory bitwise (in deterministic mode, for any
 * worker count), which turns "scene misbehaves at step 2843" into
 * "load snapshot, step once".
 *
 * Blast volumes are the one structural mutation a running scene
 * performs (EffectsManager::triggerExplosion adds a shape, a static
 * anchor body and a trigger geom). Snapshots record these spawns so
 * restoring into a freshly built scene can recreate them and line
 * the id spaces back up.
 *
 * Format: an 8-byte magic, a version word, an FNV-1a checksum and a
 * payload length, followed by the payload. Truncated or corrupted
 * files are rejected with a structured parallax::Status, never a
 * crash.
 *
 * Delta streaming: a second blob type ("PAXDELT1") encodes one
 * snapshot as a set of byte-range patches against a base snapshot,
 * for server-side client join/rewind streams where consecutive ticks
 * share almost all of their bytes. Both blob checksums are embedded,
 * so applying a delta to the wrong base fails loudly. See
 * docs/SNAPSHOT_FORMAT.md.
 */

#ifndef PARALLAX_PHYSICS_DEBUG_CAPTURE_HH
#define PARALLAX_PHYSICS_DEBUG_CAPTURE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "parallax/status.hh"

namespace parallax
{

struct WorldConfig;
class World;

/** Current snapshot format version (bumped on layout changes). */
constexpr std::uint32_t snapshotVersion = 1;

/** Current snapshot-delta format version. */
constexpr std::uint32_t snapshotDeltaVersion = 1;

/** Header fields parsed without touching a World. */
struct SnapshotInfo
{
    std::uint32_t version = 0;
    /** Scene provenance (WorldConfig::sceneTag), e.g.
     *  "bench:MIX:scale=1". Empty for hand-built scenes. */
    std::string sceneTag;
    std::uint64_t stepCount = 0;
    double time = 0.0;
    std::uint32_t bodies = 0;
    std::uint32_t geoms = 0;
    std::uint32_t joints = 0;
    std::uint32_t cloths = 0;
    /** Blast volumes spawned mid-run (structural mutations). */
    std::uint32_t blastSpawns = 0;
};

/**
 * Parse a snapshot's header, scene tag, config and entity counts.
 * Verifies magic, version and checksum. Fills `info` and the
 * snapshot's WorldConfig.
 */
Status describeSnapshot(const std::vector<std::uint8_t> &bytes,
                        SnapshotInfo &info, WorldConfig &config);

/** Write a snapshot (or delta) blob to a file. */
Status writeSnapshotFile(const std::string &path,
                         const std::vector<std::uint8_t> &bytes);

/** Read a snapshot (or delta) blob from a file. */
Status readSnapshotFile(const std::string &path,
                        std::vector<std::uint8_t> &bytes);

// --- Delta-compressed snapshot streaming. ---

/** True when `bytes` carry the delta magic (vs a full snapshot). */
bool isSnapshotDelta(const std::vector<std::uint8_t> &bytes);

/**
 * Encode `target` as byte-range patches against `base` (both full
 * snapshot blobs). The result embeds checksums of base and target,
 * so application is verified end to end. Worst case (nothing
 * shared) the delta is slightly larger than the target; typical
 * tick-to-tick deltas are a small fraction of it.
 */
std::vector<std::uint8_t>
encodeSnapshotDelta(const std::vector<std::uint8_t> &base,
                    const std::vector<std::uint8_t> &target);

/**
 * Reconstruct the target snapshot from `base` + `delta` into `out`.
 * Fails with DATA_LOSS when `base` is not the blob the delta was
 * encoded against or the reconstruction fails its checksum, and
 * with INVALID_ARGUMENT on a malformed delta.
 */
Status applySnapshotDelta(const std::vector<std::uint8_t> &base,
                          const std::vector<std::uint8_t> &delta,
                          std::vector<std::uint8_t> &out);

/**
 * FNV-1a fingerprint of the world's dynamic state only: body poses,
 * velocities and sleep state, joint break bookkeeping, cloth
 * particles, and simulation time. Unlike captureState() — whose
 * bytes embed the WorldConfig, including the worker count — this
 * hash covers exactly the quantities the deterministic-mode
 * guarantee promises are bitwise identical for any number of
 * workers: equal hashes across worker counts are that promise, and
 * equal hashes across code versions mean a refactor did not move a
 * single bit (tools/state_hash prints it per scene).
 */
std::uint64_t worldStateHash(const World &world);

/**
 * True when every quantity worldStateHash covers — body poses,
 * orientations, velocities, cloth particles, simulation time — is
 * finite. The cheap health probe the server watchdog runs after each
 * tick burst: a NaN or Inf anywhere in dynamic state means the world
 * is poisoned even when no invariant checker is configured. Early-
 * exits on the first non-finite value.
 */
bool worldStateFinite(const World &world);

} // namespace parallax

#endif // PARALLAX_PHYSICS_DEBUG_CAPTURE_HH
