/**
 * @file
 * Deterministic capture/replay: versioned binary world snapshots.
 *
 * A snapshot records everything World::step() reads: body states,
 * joint break states, cloth particles, the contact warm-start cache,
 * the effects subsystem (pending explosives, active blasts, fracture
 * flags), simulation time, and the world configuration. Restoring a
 * snapshot into a world with the same scene structure reproduces the
 * subsequent trajectory bitwise (in deterministic mode, for any
 * worker count), which turns "scene misbehaves at step 2843" into
 * "load snapshot, step once".
 *
 * Blast volumes are the one structural mutation a running scene
 * performs (EffectsManager::triggerExplosion adds a shape, a static
 * anchor body and a trigger geom). Snapshots record these spawns so
 * restoring into a freshly built scene can recreate them and line
 * the id spaces back up.
 *
 * Format: an 8-byte magic, a version word, an FNV-1a checksum and a
 * payload length, followed by the payload. Truncated or corrupted
 * files are rejected with a readable error, never a crash.
 */

#ifndef PARALLAX_PHYSICS_DEBUG_CAPTURE_HH
#define PARALLAX_PHYSICS_DEBUG_CAPTURE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace parallax
{

struct WorldConfig;

/** Current snapshot format version (bumped on layout changes). */
constexpr std::uint32_t snapshotVersion = 1;

/** Header fields parsed without touching a World. */
struct SnapshotInfo
{
    std::uint32_t version = 0;
    /** Scene provenance (WorldConfig::sceneTag), e.g.
     *  "bench:MIX:scale=1". Empty for hand-built scenes. */
    std::string sceneTag;
    std::uint64_t stepCount = 0;
    double time = 0.0;
    std::uint32_t bodies = 0;
    std::uint32_t geoms = 0;
    std::uint32_t joints = 0;
    std::uint32_t cloths = 0;
    /** Blast volumes spawned mid-run (structural mutations). */
    std::uint32_t blastSpawns = 0;
};

/**
 * Parse a snapshot's header, scene tag, config and entity counts.
 * Verifies magic, version and checksum. Fills `info` and the
 * snapshot's WorldConfig; returns "" on success or a readable error.
 */
std::string describeSnapshot(const std::vector<std::uint8_t> &bytes,
                             SnapshotInfo &info, WorldConfig &config);

/** Write a snapshot to a file; returns "" or a readable error. */
std::string writeSnapshotFile(const std::string &path,
                              const std::vector<std::uint8_t> &bytes);

/** Read a snapshot from a file; returns "" or a readable error. */
std::string readSnapshotFile(const std::string &path,
                             std::vector<std::uint8_t> &bytes);

} // namespace parallax

#endif // PARALLAX_PHYSICS_DEBUG_CAPTURE_HH
