/**
 * @file
 * Deterministic scripted fault injection.
 *
 * GRAPE-6-style designs pair raw throughput with on-line error
 * detection *and containment*; proving the containment story needs a
 * way to make representative faults happen on demand. A FaultPlan is
 * a list of scripted events World::step() fires when stepCount()
 * reaches each event's step:
 *
 *  - NanVelocity:          poison a body's linear velocity with NaN
 *                          (models a corrupted solver write),
 *  - HugeImpulse:          apply an oversized impulse to a body
 *                          (models an energy-injection bug),
 *  - CorruptContactNormal: overwrite one narrowphase contact normal
 *                          with NaN (models bad collision output),
 *  - StallLane:            stall one scheduler lane for `magnitude`
 *                          seconds (models a slow or preempted core;
 *                          perturbs wall-clock timing only, never
 *                          simulation state).
 *
 * Targets select entities modulo the live count, so the same plan is
 * valid for any scene. Injection is deterministic: the same plan and
 * scene produce the same faults at the same steps.
 */

#ifndef PARALLAX_PHYSICS_GOVERNOR_FAULT_INJECTION_HH
#define PARALLAX_PHYSICS_GOVERNOR_FAULT_INJECTION_HH

#include <cstdint>
#include <vector>

namespace parallax
{

/** What a scripted fault event does when it fires. */
enum class FaultKind : std::uint8_t
{
    NanVelocity,
    HugeImpulse,
    CorruptContactNormal,
    StallLane,
};

/** Human-readable fault-kind name. */
const char *faultKindName(FaultKind kind);

/** One scripted fault. */
struct FaultEvent
{
    /** World::stepCount() at which the fault fires. */
    std::uint64_t step = 0;
    FaultKind kind = FaultKind::NanVelocity;
    /** Body index (NanVelocity/HugeImpulse), contact index
     *  (CorruptContactNormal) or lane (StallLane), taken modulo the
     *  live entity count at injection time. */
    std::uint32_t target = 0;
    /** Impulse magnitude in N*s (HugeImpulse) or stall duration in
     *  seconds (StallLane); unused otherwise. */
    double magnitude = 0.0;
};

/** A deterministic schedule of fault events (WorldConfig::faultPlan). */
struct FaultPlan
{
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }

    /** Number of events scheduled at exactly `step`. */
    std::size_t
    countAt(std::uint64_t step) const
    {
        std::size_t n = 0;
        for (const FaultEvent &e : events)
            n += e.step == step ? 1 : 0;
        return n;
    }
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_GOVERNOR_FAULT_INJECTION_HH
