#include "fault_injection.hh"

namespace parallax
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::NanVelocity: return "nan-velocity";
      case FaultKind::HugeImpulse: return "huge-impulse";
      case FaultKind::CorruptContactNormal:
        return "corrupt-contact-normal";
      case FaultKind::StallLane: return "stall-lane";
    }
    return "unknown";
}

} // namespace parallax
