#include "governor.hh"

#include <algorithm>

namespace parallax
{

const char *
invariantModeName(InvariantMode mode)
{
    switch (mode) {
      case InvariantMode::Off: return "off";
      case InvariantMode::Warn: return "warn";
      case InvariantMode::Quarantine: return "quarantine";
      case InvariantMode::HardFail: return "hardfail";
    }
    return "unknown";
}

StepGovernor::StepGovernor(double frameBudget,
                           const GovernorTuning &tuning,
                           int solverIterations, int clothIterations)
    : budget_(frameBudget > 0.0
                  ? frameBudget / std::max(1, tuning.frameSubsteps)
                  : 0.0),
      tuning_(tuning), fullSolver_(solverIterations),
      fullCloth_(clothIterations),
      // A floor above the configured iteration count would "degrade"
      // upward; the effective floor can never exceed full quality.
      solverFloor_(std::min(tuning.solverIterationFloor,
                            solverIterations)),
      clothFloor_(std::min(tuning.clothIterationFloor,
                           clothIterations))
{
    stats_.active = enabled();
    stats_.budgetSeconds = budget_;
    stats_.solverIterations = fullSolver_;
    stats_.clothIterations = fullCloth_;
}

StepGovernor::Plan
StepGovernor::planForLevel(int level) const
{
    Plan plan;
    plan.level = std::clamp(level, 0, maxLadderLevel);
    // Levels 1-3 walk the solver from full quality to its floor in
    // three even rungs; levels 4-5 do the same for cloth in two.
    const int solverSpan = fullSolver_ - solverFloor_;
    const int solverRung = std::min(plan.level, 3);
    plan.solverIterations =
        fullSolver_ - (solverSpan * solverRung) / 3;
    const int clothSpan = fullCloth_ - clothFloor_;
    const int clothRung = std::clamp(plan.level - 3, 0, 2);
    plan.clothIterations = fullCloth_ - (clothSpan * clothRung) / 2;
    plan.deferNarrowphase = plan.level >= 6;
    plan.throttleEffects = plan.level >= 7;
    return plan;
}

StepGovernor::Plan
StepGovernor::planStep(double lastMeasuredSeconds)
{
    if (!enabled()) {
        Plan plan = planForLevel(0);
        stats_.solverIterations = plan.solverIterations;
        stats_.clothIterations = plan.clothIterations;
        return plan;
    }

    stats_.projectedSeconds = lastMeasuredSeconds;
    stats_.overBudget = lastMeasuredSeconds > budget_;
    if (stats_.overBudget) {
        calmStreak_ = 0;
        if (level_ < maxLadderLevel) {
            ++level_;
            ++stats_.degradations;
        }
    } else if (lastMeasuredSeconds <
               budget_ * (1.0 - tuning_.hysteresis)) {
        // Hysteresis: require a sustained run of clearly-under-budget
        // substeps before restoring one rung of quality, so the
        // ladder does not oscillate around the deadline.
        ++calmStreak_;
        if (calmStreak_ >= tuning_.recoverySteps && level_ > 0) {
            --level_;
            ++stats_.recoveries;
            calmStreak_ = 0;
        }
    } else {
        // Between the two thresholds: hold the current rung.
        calmStreak_ = 0;
    }

    const Plan plan = planForLevel(level_);
    stats_.ladderLevel = plan.level;
    stats_.solverIterations = plan.solverIterations;
    stats_.clothIterations = plan.clothIterations;
    stats_.narrowphaseDeferral = plan.deferNarrowphase;
    stats_.effectsThrottled = plan.throttleEffects;
    return plan;
}

void
StepGovernor::finishStep(double measuredSeconds,
                         std::uint64_t pairsDeferred)
{
    stats_.pairsDeferred = pairsDeferred;
    if (!enabled())
        return;
    if (measuredSeconds > budget_) {
        ++stats_.deadlineMisses;
        if (level_ >= maxLadderLevel)
            ++stats_.deadlineMissesAtFloor;
    }
}

} // namespace parallax
