/**
 * @file
 * Real-time step governor: deadline-aware graceful degradation.
 *
 * ParallAX is sized for a hard real-time budget — all physics must
 * finish inside a 33 ms display frame (3 substeps of dt = 0.01).
 * Without a governor the engine either makes the deadline or silently
 * blows it. The StepGovernor watches the wall-clock phase timers of
 * the previous substep (StepStats::phaseSeconds) and, when the
 * projected time exceeds the per-substep budget, walks a
 * deterministic degradation ladder:
 *
 *   level 0      full quality
 *   levels 1-3   reduce PGS solver iterations toward a floor
 *   levels 4-5   cap cloth relaxation iterations toward a floor
 *   level 6      defer narrowphase for slow-moving pairs every other
 *                substep (staleness bounded to one substep)
 *   level 7      throttle debris/blast spawning in the effects
 *                subsystem (pending triggers fire once unthrottled)
 *
 * Escalation is one rung per substep. Recovery has hysteresis: the
 * governor steps back down one rung only after `recoverySteps`
 * consecutive substeps measured below budget * (1 - hysteresis), so
 * quality is restored when headroom genuinely returns instead of
 * oscillating around the deadline. Every decision is recorded in
 * StepStats::governor.
 *
 * Decisions key off the *measured* phase seconds stored in StepStats,
 * which WorldConfig::mockPhaseTime can replace with an injected
 * schedule — under a mocked clock the ladder walk is bitwise
 * reproducible, which is how the determinism tests pin it down.
 */

#ifndef PARALLAX_PHYSICS_GOVERNOR_GOVERNOR_HH
#define PARALLAX_PHYSICS_GOVERNOR_GOVERNOR_HH

#include <cstdint>

namespace parallax
{

/**
 * Policy applied when the per-step invariant checker finds a
 * violation (see debug/invariants.hh).
 *
 *  - Off:        checker does not run.
 *  - Warn:       log the violations (and dump one snapshot per run)
 *                but keep stepping; World::invariantViolationCount()
 *                accumulates for harnesses to gate on.
 *  - Quarantine: freeze and isolate only the offending island (or
 *                cloth), restore it to its last good state, snapshot
 *                it for tools/replay_snapshot, and keep stepping the
 *                rest of the world. Violations that cannot be pinned
 *                to an island (structural corruption such as a broken
 *                island partition) still hard-fail.
 *  - HardFail:   dump the pre-step snapshot and abort the process
 *                (the PR 2 behaviour, and the default when the legacy
 *                WorldConfig::checkInvariants flag is set).
 */
enum class InvariantMode : std::uint8_t
{
    Off,
    Warn,
    Quarantine,
    HardFail,
};

/** Human-readable invariant-mode name. */
const char *invariantModeName(InvariantMode mode);

/** Secondary tuning knobs of the step governor (the primary switch
 *  is WorldConfig::frameBudget; all of these have sane defaults). */
struct GovernorTuning
{
    /** Substeps per display frame: the per-substep budget is
     *  frameBudget / frameSubsteps (paper: 3 steps per frame). */
    int frameSubsteps = 3;
    /** PGS solver iterations never degrade below this floor. */
    int solverIterationFloor = 8;
    /** Cloth relaxation iterations never degrade below this floor. */
    int clothIterationFloor = 8;
    /** Recovery hysteresis: a substep counts as calm only when it
     *  measures below budget * (1 - hysteresis). */
    double hysteresis = 0.25;
    /** Consecutive calm substeps required per recovery rung. */
    int recoverySteps = 5;
    /** Narrowphase deferral (ladder level 6) only skips pairs whose
     *  bodies all move slower than this (m/s and rad/s). */
    double deferVelocity = 0.5;
};

/**
 * The governor's per-step decisions plus cumulative counters,
 * published as StepStats::governor after every step.
 */
struct GovernorStats
{
    /** frameBudget > 0: the governor is making decisions. */
    bool active = false;
    /** Current degradation rung (0 = full quality). */
    int ladderLevel = 0;
    /** Effective PGS iterations used this step. */
    int solverIterations = 0;
    /** Effective cloth relaxation iterations used this step. */
    int clothIterations = 0;
    /** Ladder level 6 reached: calm pairs skipped every other step. */
    bool narrowphaseDeferral = false;
    /** Ladder level 7 reached: effects spawning suppressed. */
    bool effectsThrottled = false;
    /** Broadphase pairs whose narrowphase was deferred this step. */
    std::uint64_t pairsDeferred = 0;
    /** The projection that drove this step's plan exceeded budget. */
    bool overBudget = false;
    /** Per-substep budget (frameBudget / frameSubsteps), seconds. */
    double budgetSeconds = 0.0;
    /** Projection used for this step's plan (last measured step). */
    double projectedSeconds = 0.0;
    /** Cumulative rung-up decisions. */
    std::uint64_t degradations = 0;
    /** Cumulative rung-down decisions (quality restored). */
    std::uint64_t recoveries = 0;
    /** Cumulative substeps measured over budget. */
    std::uint64_t deadlineMisses = 0;
    /** Cumulative misses while already at the ladder floor — the
     *  machine is too slow even at minimum quality. */
    std::uint64_t deadlineMissesAtFloor = 0;
};

/** Deadline-aware degradation ladder with hysteresis. */
class StepGovernor
{
  public:
    /** The quality settings World::step() applies for one substep. */
    struct Plan
    {
        int level = 0;
        int solverIterations = 0;
        int clothIterations = 0;
        bool deferNarrowphase = false;
        bool throttleEffects = false;
    };

    static constexpr int maxLadderLevel = 7;

    /**
     * @param frameBudget Seconds per display frame (0 disables).
     * @param tuning Floors, hysteresis and deferral knobs.
     * @param solverIterations Configured full-quality PGS sweeps.
     * @param clothIterations Configured full-quality cloth sweeps.
     */
    StepGovernor(double frameBudget, const GovernorTuning &tuning,
                 int solverIterations, int clothIterations);

    bool enabled() const { return budget_ > 0.0; }

    /** Per-substep wall-clock budget in seconds (0 = disabled). */
    double substepBudget() const { return budget_; }

    int solverIterationFloor() const { return solverFloor_; }
    int clothIterationFloor() const { return clothFloor_; }

    /**
     * Decide this substep's quality from the previous substep's
     * measured wall-clock total. Walks the ladder one rung at most.
     * With the governor disabled, returns the configured
     * full-quality plan unconditionally.
     */
    Plan planStep(double lastMeasuredSeconds);

    /** Record the finished substep's measured time and deferral
     *  count (deadline-miss accounting). */
    void finishStep(double measuredSeconds,
                    std::uint64_t pairsDeferred);

    /** Decisions and counters as of the most recent step. */
    const GovernorStats &stats() const { return stats_; }

    /** The plan the ladder produces at a given rung (pure). */
    Plan planForLevel(int level) const;

  private:
    double budget_ = 0.0;
    GovernorTuning tuning_;
    int fullSolver_;
    int fullCloth_;
    int solverFloor_;
    int clothFloor_;

    int level_ = 0;
    int calmStreak_ = 0;
    GovernorStats stats_;
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_GOVERNOR_GOVERNOR_HH
