/**
 * @file
 * Unit quaternion for rigid-body orientation.
 */

#ifndef PARALLAX_PHYSICS_MATH_QUAT_HH
#define PARALLAX_PHYSICS_MATH_QUAT_HH

#include <cmath>

#include "mat3.hh"
#include "vec3.hh"

namespace parallax
{

/** Quaternion (w, x, y, z) with helpers for rotations. */
struct Quat
{
    Real w = 1.0;
    Real x = 0.0;
    Real y = 0.0;
    Real z = 0.0;

    constexpr Quat() = default;
    constexpr Quat(Real w_, Real x_, Real y_, Real z_)
        : w(w_), x(x_), y(y_), z(z_) {}

    /** Rotation of `angle` radians about the (unit) axis. */
    static Quat
    fromAxisAngle(const Vec3 &axis, Real angle)
    {
        const Vec3 u = axis.normalized();
        const Real h = angle * 0.5;
        const Real s = std::sin(h);
        return {std::cos(h), u.x * s, u.y * s, u.z * s};
    }

    constexpr Quat
    operator*(const Quat &o) const
    {
        return {w * o.w - x * o.x - y * o.y - z * o.z,
                w * o.x + x * o.w + y * o.z - z * o.y,
                w * o.y - x * o.z + y * o.w + z * o.x,
                w * o.z + x * o.y - y * o.x + z * o.w};
    }

    constexpr Quat conjugate() const { return {w, -x, -y, -z}; }

    Real length() const { return std::sqrt(w * w + x * x + y * y + z * z); }

    Quat
    normalized() const
    {
        const Real len = length();
        if (len < 1e-12)
            return Quat();
        return {w / len, x / len, y / len, z / len};
    }

    /** Rotate a vector by this (unit) quaternion. */
    Vec3
    rotate(const Vec3 &v) const
    {
        const Vec3 u{x, y, z};
        const Vec3 t = u.cross(v) * 2.0;
        return v + t * w + u.cross(t);
    }

    /** Rotation matrix equivalent of this (unit) quaternion. */
    Mat3
    toMat3() const
    {
        Mat3 r = Mat3::zero();
        const Real xx = x * x, yy = y * y, zz = z * z;
        const Real xy = x * y, xz = x * z, yz = y * z;
        const Real wx = w * x, wy = w * y, wz = w * z;
        r.m[0][0] = 1 - 2 * (yy + zz);
        r.m[0][1] = 2 * (xy - wz);
        r.m[0][2] = 2 * (xz + wy);
        r.m[1][0] = 2 * (xy + wz);
        r.m[1][1] = 1 - 2 * (xx + zz);
        r.m[1][2] = 2 * (yz - wx);
        r.m[2][0] = 2 * (xz - wy);
        r.m[2][1] = 2 * (yz + wx);
        r.m[2][2] = 1 - 2 * (xx + yy);
        return r;
    }

    /**
     * Integrate angular velocity `omega` over `dt`:
     * q' = q + dt/2 * (0, omega) * q, renormalized.
     */
    Quat
    integrated(const Vec3 &omega, Real dt) const
    {
        const Quat dq{0.0, omega.x, omega.y, omega.z};
        const Quat qd = dq * (*this);
        Quat r{w + 0.5 * dt * qd.w,
               x + 0.5 * dt * qd.x,
               y + 0.5 * dt * qd.y,
               z + 0.5 * dt * qd.z};
        return r.normalized();
    }
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_MATH_QUAT_HH
