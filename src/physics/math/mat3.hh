/**
 * @file
 * 3x3 matrix for rotations and inertia tensors.
 */

#ifndef PARALLAX_PHYSICS_MATH_MAT3_HH
#define PARALLAX_PHYSICS_MATH_MAT3_HH

#include "vec3.hh"

namespace parallax
{

/** Row-major 3x3 matrix of Real. */
struct Mat3
{
    // m[row][col]
    Real m[3][3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};

    constexpr Mat3() = default;

    static constexpr Mat3
    zero()
    {
        Mat3 r;
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                r.m[i][j] = 0.0;
        return r;
    }

    static constexpr Mat3 identity() { return Mat3(); }

    /** Diagonal matrix from three values. */
    static constexpr Mat3
    diagonal(Real a, Real b, Real c)
    {
        Mat3 r = zero();
        r.m[0][0] = a;
        r.m[1][1] = b;
        r.m[2][2] = c;
        return r;
    }

    /** Skew-symmetric cross-product matrix: skew(v) * w == v x w. */
    static constexpr Mat3
    skew(const Vec3 &v)
    {
        Mat3 r = zero();
        r.m[0][1] = -v.z; r.m[0][2] = v.y;
        r.m[1][0] = v.z;  r.m[1][2] = -v.x;
        r.m[2][0] = -v.y; r.m[2][1] = v.x;
        return r;
    }

    Vec3
    operator*(const Vec3 &v) const
    {
        return {m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
                m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
                m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z};
    }

    Mat3
    operator*(const Mat3 &o) const
    {
        Mat3 r = zero();
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                for (int k = 0; k < 3; ++k)
                    r.m[i][j] += m[i][k] * o.m[k][j];
        return r;
    }

    Mat3
    operator+(const Mat3 &o) const
    {
        Mat3 r = zero();
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                r.m[i][j] = m[i][j] + o.m[i][j];
        return r;
    }

    Mat3
    operator*(Real s) const
    {
        Mat3 r = zero();
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                r.m[i][j] = m[i][j] * s;
        return r;
    }

    Mat3
    transposed() const
    {
        Mat3 r = zero();
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                r.m[i][j] = m[j][i];
        return r;
    }

    Real
    determinant() const
    {
        return m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
             - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
             + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
    }

    /** Matrix inverse; returns identity for singular input. */
    Mat3 inverse() const;

    /** Column access as a vector. */
    Vec3 column(int j) const { return {m[0][j], m[1][j], m[2][j]}; }

    /** Row access as a vector. */
    Vec3 row(int i) const { return {m[i][0], m[i][1], m[i][2]}; }
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_MATH_MAT3_HH
