/**
 * @file
 * Rigid transform (rotation + translation).
 */

#ifndef PARALLAX_PHYSICS_MATH_TRANSFORM_HH
#define PARALLAX_PHYSICS_MATH_TRANSFORM_HH

#include "quat.hh"
#include "vec3.hh"

namespace parallax
{

/** A rigid-body pose: orientation plus position. */
struct Transform
{
    Quat rotation;
    Vec3 position;

    Transform() = default;
    Transform(const Quat &q, const Vec3 &p) : rotation(q), position(p) {}

    /** Map a point from local space to world space. */
    Vec3
    apply(const Vec3 &local) const
    {
        return rotation.rotate(local) + position;
    }

    /** Map a world-space point into local space. */
    Vec3
    applyInverse(const Vec3 &world) const
    {
        return rotation.conjugate().rotate(world - position);
    }

    /** Rotate a direction (no translation). */
    Vec3
    applyDirection(const Vec3 &dir) const
    {
        return rotation.rotate(dir);
    }

    /** Compose: (this * o).apply(p) == this->apply(o.apply(p)). */
    Transform
    operator*(const Transform &o) const
    {
        return {(rotation * o.rotation).normalized(),
                apply(o.position)};
    }

    /** Inverse transform. */
    Transform
    inverse() const
    {
        const Quat inv = rotation.conjugate();
        return {inv, inv.rotate(-position)};
    }
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_MATH_TRANSFORM_HH
