/**
 * @file
 * Axis-aligned bounding box used by the broadphase.
 */

#ifndef PARALLAX_PHYSICS_MATH_AABB_HH
#define PARALLAX_PHYSICS_MATH_AABB_HH

#include "vec3.hh"

namespace parallax
{

/** Axis-aligned bounding box described by min and max corners. */
struct Aabb
{
    Vec3 lo{1e30, 1e30, 1e30};
    Vec3 hi{-1e30, -1e30, -1e30};

    constexpr Aabb() = default;
    constexpr Aabb(const Vec3 &lo_, const Vec3 &hi_) : lo(lo_), hi(hi_) {}

    /** True when this box overlaps (or touches) the other. */
    constexpr bool
    overlaps(const Aabb &o) const
    {
        return lo.x <= o.hi.x && hi.x >= o.lo.x &&
               lo.y <= o.hi.y && hi.y >= o.lo.y &&
               lo.z <= o.hi.z && hi.z >= o.lo.z;
    }

    /** True when the point lies inside (or on) the box. */
    constexpr bool
    contains(const Vec3 &p) const
    {
        return p.x >= lo.x && p.x <= hi.x &&
               p.y >= lo.y && p.y <= hi.y &&
               p.z >= lo.z && p.z <= hi.z;
    }

    /** Expand to include a point. */
    void
    extend(const Vec3 &p)
    {
        lo = Vec3::min(lo, p);
        hi = Vec3::max(hi, p);
    }

    /** Expand to include another box. */
    void
    merge(const Aabb &o)
    {
        lo = Vec3::min(lo, o.lo);
        hi = Vec3::max(hi, o.hi);
    }

    /** Grow symmetrically by a margin in every direction. */
    Aabb
    inflated(Real margin) const
    {
        const Vec3 m{margin, margin, margin};
        return {lo - m, hi + m};
    }

    constexpr Vec3 center() const { return (lo + hi) * 0.5; }
    constexpr Vec3 extents() const { return (hi - lo) * 0.5; }

    /** Surface area (for heuristics and tests). */
    Real
    surfaceArea() const
    {
        const Vec3 d = hi - lo;
        if (d.x < 0 || d.y < 0 || d.z < 0)
            return 0.0;
        return 2.0 * (d.x * d.y + d.y * d.z + d.z * d.x);
    }

    bool valid() const { return lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z; }
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_MATH_AABB_HH
