#include "mat3.hh"

#include <cmath>

namespace parallax
{

Mat3
Mat3::inverse() const
{
    const Real det = determinant();
    if (std::fabs(det) < 1e-18)
        return Mat3::identity();
    const Real inv = 1.0 / det;
    Mat3 r = Mat3::zero();
    r.m[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv;
    r.m[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv;
    r.m[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv;
    r.m[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv;
    r.m[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv;
    r.m[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv;
    r.m[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv;
    r.m[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv;
    r.m[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv;
    return r;
}

} // namespace parallax
