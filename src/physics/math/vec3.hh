/**
 * @file
 * Three-component vector used throughout the physics engine.
 */

#ifndef PARALLAX_PHYSICS_MATH_VEC3_HH
#define PARALLAX_PHYSICS_MATH_VEC3_HH

#include <cmath>

namespace parallax
{

/** Scalar type used by the physics engine. */
using Real = double;

/** A 3-vector of Real with the usual arithmetic. */
struct Vec3
{
    Real x = 0.0;
    Real y = 0.0;
    Real z = 0.0;

    constexpr Vec3() = default;
    constexpr Vec3(Real x_, Real y_, Real z_) : x(x_), y(y_), z(z_) {}

    constexpr Vec3 operator+(const Vec3 &o) const
    { return {x + o.x, y + o.y, z + o.z}; }
    constexpr Vec3 operator-(const Vec3 &o) const
    { return {x - o.x, y - o.y, z - o.z}; }
    constexpr Vec3 operator-() const { return {-x, -y, -z}; }
    constexpr Vec3 operator*(Real s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(Real s) const { return {x / s, y / s, z / s}; }

    Vec3 &operator+=(const Vec3 &o)
    { x += o.x; y += o.y; z += o.z; return *this; }
    Vec3 &operator-=(const Vec3 &o)
    { x -= o.x; y -= o.y; z -= o.z; return *this; }
    Vec3 &operator*=(Real s) { x *= s; y *= s; z *= s; return *this; }

    constexpr bool operator==(const Vec3 &o) const
    { return x == o.x && y == o.y && z == o.z; }

    /** Component access by index (0..2). */
    Real
    operator[](int i) const
    {
        return i == 0 ? x : (i == 1 ? y : z);
    }

    Real &
    operator[](int i)
    {
        return i == 0 ? x : (i == 1 ? y : z);
    }

    constexpr Real dot(const Vec3 &o) const
    { return x * o.x + y * o.y + z * o.z; }

    constexpr Vec3
    cross(const Vec3 &o) const
    {
        return {y * o.z - z * o.y,
                z * o.x - x * o.z,
                x * o.y - y * o.x};
    }

    constexpr Real lengthSquared() const { return dot(*this); }
    Real length() const { return std::sqrt(lengthSquared()); }

    /** Return a unit vector; returns zero vector if length is ~0. */
    Vec3
    normalized() const
    {
        const Real len = length();
        if (len < 1e-12)
            return {};
        return *this / len;
    }

    /** Component-wise minimum. */
    static constexpr Vec3
    min(const Vec3 &a, const Vec3 &b)
    {
        return {a.x < b.x ? a.x : b.x,
                a.y < b.y ? a.y : b.y,
                a.z < b.z ? a.z : b.z};
    }

    /** Component-wise maximum. */
    static constexpr Vec3
    max(const Vec3 &a, const Vec3 &b)
    {
        return {a.x > b.x ? a.x : b.x,
                a.y > b.y ? a.y : b.y,
                a.z > b.z ? a.z : b.z};
    }
};

constexpr Vec3
operator*(Real s, const Vec3 &v)
{
    return v * s;
}

} // namespace parallax

#endif // PARALLAX_PHYSICS_MATH_VEC3_HH
