/**
 * @file
 * Ray casting against shapes and the world.
 *
 * The paper's cloth collision detection is "based on a combination
 * of ray casting and axis-aligned bounding volume hierarchies"
 * (section 3.2); rays are also the standard query for gameplay
 * (line of sight, projectile tracing). Rays test against every
 * shape type; World::raycast walks all geoms (AABB-culled) and
 * returns the nearest hit.
 */

#ifndef PARALLAX_PHYSICS_RAYCAST_HH
#define PARALLAX_PHYSICS_RAYCAST_HH

#include <optional>

#include "geom.hh"
#include "physics/math/transform.hh"
#include "physics/shapes/shape.hh"

namespace parallax
{

/** A ray: origin plus unit direction. */
struct Ray
{
    Vec3 origin;
    Vec3 direction; // Must be unit length.

    Vec3 at(Real t) const { return origin + direction * t; }
};

/** A ray intersection. */
struct RayHit
{
    Real t = 0.0;  // Distance along the ray.
    Vec3 point;    // World-space hit point.
    Vec3 normal;   // Surface normal at the hit (unit, toward ray).
    GeomId geom = invalidGeomId; // Filled by World::raycast.
};

/**
 * Intersect a ray with one shape under a pose.
 *
 * @param max_t Farthest distance considered.
 * @return The nearest hit with t in [0, max_t], if any.
 */
std::optional<RayHit> raycastShape(const Shape &shape,
                                   const Transform &pose,
                                   const Ray &ray, Real max_t);

} // namespace parallax

#endif // PARALLAX_PHYSICS_RAYCAST_HH
