/**
 * @file
 * The simulation world: the five-phase physics pipeline of Figure 1.
 *
 * World owns all bodies, geoms, shapes, joints and cloths, and steps
 * them through Broadphase -> Narrowphase -> Island Creation ->
 * Island Processing -> Cloth. Per-phase statistics feed the workload
 * characterization and the architecture timing models.
 */

#ifndef PARALLAX_PHYSICS_WORLD_HH
#define PARALLAX_PHYSICS_WORLD_HH

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "physics/broadphase/broadphase.hh"
#include "physics/cloth/cloth.hh"
#include "physics/debug/invariants.hh"
#include "physics/effects/effects.hh"
#include "physics/governor/fault_injection.hh"
#include "physics/governor/governor.hh"
#include "physics/island/island.hh"
#include "physics/joints/articulated_joints.hh"
#include "physics/joints/contact_joint.hh"
#include "physics/narrowphase/collide.hh"
#include "physics/parallel/task_scheduler.hh"
#include "physics/raycast.hh"
#include "physics/shapes/primitives.hh"
#include "physics/shapes/static_shapes.hh"
#include "physics/solver/pgs_solver.hh"
#include "physics/trace/metrics.hh"
#include "physics/trace/trace.hh"
#include "parallax/status.hh"
#include "sim/stats.hh"

namespace parallax
{

/** Which broadphase structure the world uses. */
enum class BroadphaseKind
{
    SweepAndPrune,
    SpatialHash,
};

/** Pipeline phases of one step, in execution order (Figure 1). */
enum class PipelinePhase
{
    Broadphase,
    Narrowphase,
    IslandCreation,
    IslandProcessing,
    Cloth,
};

constexpr int numPipelinePhases = 5;

/** Human-readable pipeline phase name. */
const char *pipelinePhaseName(PipelinePhase phase);

/** Tunable world parameters (paper values as defaults). */
struct WorldConfig
{
    Vec3 gravity{0.0, -9.81, 0.0};
    /** Simulation time step (paper: 0.01 s, 3 steps per frame). */
    Real dt = 0.01;
    /** Constraint solver relaxation sweeps (paper: 20). */
    int solverIterations = 20;
    /** Cloth constraint relaxation sweeps per step (collision is
     *  interleaved with every sweep, Jakobsen-style; the paper uses
     *  20 relaxation iterations for its constraint solvers). */
    int clothIterations = 20;
    /** Persistent worker threads (0 = single-threaded). */
    unsigned workerThreads = 0;
    /** Island batching hint: small islands are packed together into
     *  shared stealable chunks of at least this many constraint rows
     *  (paper: 25). Every awake island is a candidate for any lane —
     *  the threshold shapes chunk size, it no longer serializes
     *  small islands onto the main thread. */
    int islandWorkQueueThreshold = 25;
    /** parallel_for tiling floor: minimum iterations (pair tests,
     *  islands, cloths) per scheduler chunk. The effective grain is
     *  usually wider — see SchedulerConfig::targetChunkNanos and the
     *  per-phase cost models in world.cc. */
    unsigned grainSize = 16;
    /** Frame-arena block size in bytes (parallel/arena.hh). The
     *  64 KB default suits one big world; a server hosting thousands
     *  of small worlds shrinks it so per-world footprint stays
     *  proportional to scene size. Allocation-only: not serialized
     *  in snapshots, never affects the trajectory. */
    std::size_t arenaBlockBytes = 64 * 1024;
    /** Fixed tiling + ordered reduction: simulation state is
     *  bitwise identical for any worker count (costs some merge
     *  overhead in the narrowphase). Adaptive grain sizing stays on
     *  but freezes its cost model at the committed constants, so
     *  chunk boundaries are a pure function of item counts. */
    bool deterministic = false;
    /** Kernel backend for the SoA hot loops (PGS relaxation, cloth
     *  integrate/relax, batched narrowphase). Scalar is the bitwise
     *  reference; Native vectorizes with SIMD when the host supports
     *  it (silently degrading to Scalar otherwise) and is
     *  tolerance-bounded, not bitwise, against Scalar. Overridable
     *  at runtime with the PAX_SIMD environment variable. Not
     *  serialized in snapshots. */
    SimdBackend simdBackend = SimdBackend::Scalar;
    /**
     * Pipeline overlap: run broadphase for step N+1 on a stealable
     * task while step N's cloth drains (they touch disjoint state:
     * cloth reads body poses, broadphase writes geom bounds + the
     * pair list). Engages only with workerThreads > 0, at least one
     * cloth, and the invariant checker Off (the checker audits the
     * pair list, which overlap rewrites early). Determinism
     * contract: the prefetched pairs are byte-identical to the pairs
     * a synchronous broadphase would find — nothing moves bodies
     * between the cloth phase and the next step's broadphase — so
     * trajectories match the overlap-off run bitwise at every worker
     * count. If the world changes structurally between steps (geoms
     * added/removed, enabled flags toggled) or a snapshot is
     * restored, the prefetch is discarded and that step's broadphase
     * runs synchronously. Note: phase *timing attribution* shifts —
     * the broadphase work lands in the cloth phase's wall-clock
     * span of the previous step. Off by default.
     */
    bool overlapPhases = false;
    BroadphaseKind broadphase = BroadphaseKind::SweepAndPrune;
    ContactMaterial defaultMaterial;
    Real erp = 0.2;
    Real cfm = 1e-9;

    /**
     * Auto-disable (ODE-style sleeping): islands whose bodies stay
     * below the velocity thresholds for `sleepSteps` consecutive
     * steps stop being solved and integrated until disturbed.
     */
    /** Thresholds sit just above the Baumgarte resting jitter
     *  (~g*dt) so settled structures qualify. */
    bool autoDisable = false;
    Real sleepLinearVelocity = 0.12;
    Real sleepAngularVelocity = 0.18;
    int sleepSteps = 10;

    /**
     * Real-time governor (governor/governor.hh): wall-clock seconds
     * of physics budget per display frame. When > 0, every substep
     * gets frameBudget / governor.frameSubsteps seconds and the
     * world walks a deterministic degradation ladder on projected
     * overruns, restoring quality with hysteresis when headroom
     * returns. 0 (the default) disables the governor entirely — the
     * step path is byte-for-byte the ungoverned one.
     */
    double frameBudget = 0.0;
    /** Governor floors, hysteresis and deferral knobs. */
    GovernorTuning governor;

    /**
     * Test hook: when set, the measured wall-clock phase seconds in
     * StepStats are replaced by this function's value for each
     * (step, phase), making governor decisions a pure function of
     * the injected schedule — two runs take identical ladder walks.
     */
    std::function<double(std::uint64_t step, PipelinePhase phase)>
        mockPhaseTime;

    /**
     * Invariant-check policy (governor/governor.hh). Off defers to
     * the legacy `checkInvariants` flag below, which maps to
     * HardFail — existing configs keep their PR 2 behavior exactly.
     */
    InvariantMode invariantMode = InvariantMode::Off;

    /**
     * Quarantine lifecycle (invariantMode == Quarantine): steps a
     * frozen island waits before thaw-and-retry (0 = quarantine is
     * permanent), retries per body before it sticks, the dt scale a
     * thawed island runs at while on probation, and the probation
     * length in steps.
     */
    int quarantineThawSteps = 0;
    int quarantineMaxRetries = 1;
    double quarantineRetryDtScale = 0.25;
    int quarantineProbationSteps = 30;

    /** Scripted fault injection (governor/fault_injection.hh);
     *  empty (the default) injects nothing. */
    FaultPlan faultPlan;

    /**
     * Per-phase tracing (physics/trace/): record scoped spans for
     * every pipeline phase, island solve, cloth step and narrowphase
     * chunk, plus counter tracks and containment markers, exportable
     * as Chrome trace JSON via World::writeTrace(). Off (the
     * default) costs a single predictable branch per would-be event
     * and leaves the trajectory bitwise identical.
     */
    bool tracing = false;

    /**
     * Debug: run the world-invariant checker (debug/invariants.hh)
     * after every step. On a violation, the pre-step snapshot is
     * written to `snapshotDir` so `tools/replay_snapshot` reproduces
     * the failure in a single step, then the process exits with a
     * fatal error naming the violated invariant. Legacy switch:
     * equivalent to invariantMode = HardFail.
     */
    bool checkInvariants = false;
    /** Directory invariant-violation snapshots are written to. */
    std::string snapshotDir = ".";
    /** Scene provenance recorded in snapshots so replay tools can
     *  rebuild the structure (set by buildBenchmark; empty for
     *  hand-built scenes). */
    std::string sceneTag;

    /**
     * Check every field and return one human-readable message per
     * problem (empty = valid). World's constructor refuses invalid
     * configs instead of silently clamping them.
     */
    std::vector<std::string> validate() const;
};

/** Interpolated pose of one body, for render sampling. */
struct RenderPose
{
    Vec3 position;
    Quat orientation;
};

/**
 * A render-facing sample of the world: body poses and cloth particle
 * positions at one instant. Captured with World::renderState() after
 * each fixed tick; two consecutive samples are blended with
 * World::interpolate() so displays running at an arbitrary refresh
 * rate never see the tick quantum (the fixed-tick / interpolate
 * pattern the server's Session API is built on).
 */
struct RenderState
{
    double time = 0.0;
    std::vector<RenderPose> bodies;
    std::vector<std::vector<Vec3>> cloths;
};

/** Compact description of one island from the last step. */
struct IslandSummary
{
    int bodies = 0;
    int joints = 0;
    int rows = 0;
};

/** Everything observable about the most recent step. */
struct StepStats
{
    BroadphaseStats broadphase;
    NarrowphaseStats narrowphase;
    IslandStats island;
    SolverStats solver;
    ClothStats cloth;
    EffectsStats effects;

    std::uint64_t pairsFound = 0;
    std::uint64_t contactsCreated = 0;
    std::uint64_t contactJointsCreated = 0;
    std::uint64_t jointsBroken = 0;
    std::uint64_t islandsToWorkQueue = 0;
    std::uint64_t islandsOnMainThread = 0;
    std::uint64_t clothColliderInsertions = 0;
    std::uint64_t islandsAsleep = 0;
    std::uint64_t bodiesAsleep = 0;

    /** Scheduler chunks executed / ranges stolen during this step. */
    std::uint64_t parTasksExecuted = 0;
    std::uint64_t parTasksStolen = 0;

    /** Frame-arena bytes handed out during this step (all lanes). */
    std::uint64_t arenaBytesUsed = 0;
    /** Largest per-lane arena high-water mark (run-monotonic). */
    std::uint64_t arenaHighWaterBytes = 0;
    /** Arena blocks heap-allocated during this step (0 once warm). */
    std::uint64_t arenaGrowths = 0;

    /** Per-lane scheduler counters for this step alone (deltas of
     *  the cumulative lane counters, merged on the main thread after
     *  the phase barriers so reading them never races a worker). */
    std::vector<LaneStats> laneTasks;

    /** Host wall-clock seconds spent in each pipeline phase (or the
     *  injected schedule when WorldConfig::mockPhaseTime is set). */
    std::array<double, numPipelinePhases> phaseSeconds{};

    /** Governor decisions for this step (active == false whenever
     *  WorldConfig::frameBudget is unset). */
    GovernorStats governor;
    /** Scripted faults fired this step (WorldConfig::faultPlan). */
    std::uint64_t faultsInjected = 0;
    /** Islands/cloths newly quarantined by this step's violations. */
    std::uint64_t quarantineEvents = 0;

    std::vector<IslandSummary> islands;
    std::vector<int> clothVertexCounts;

    double seconds(PipelinePhase p) const
    { return phaseSeconds[static_cast<int>(p)]; }

    /** Wall-clock sum across all five phases. */
    double totalSeconds() const;

    void reset();
};

/** The physics simulation world. */
class World
{
  public:
    explicit World(WorldConfig config = WorldConfig());
    ~World();

    World(const World &) = delete;
    World &operator=(const World &) = delete;

    // --- Shape factories (shapes are owned by the world). ---
    const SphereShape *addSphere(Real radius);
    const BoxShape *addBox(const Vec3 &half_extents);
    const CapsuleShape *addCapsule(Real radius, Real half_height);
    const PlaneShape *addPlane(const Vec3 &normal, Real offset);
    const HeightfieldShape *addHeightfield(std::vector<Real> heights,
                                           int nx, int nz,
                                           Real spacing);
    const TriMeshShape *
    addTriMesh(std::vector<Vec3> vertices,
               std::vector<TriMeshShape::Triangle> triangles);

    // --- Body / geom factories. ---
    /** Create a dynamic body with explicit mass properties. */
    RigidBody *createBody(const Transform &pose, Real mass,
                          const Mat3 &inertia);

    /** Create a dynamic body whose mass comes from shape * density. */
    RigidBody *createDynamicBody(const Transform &pose,
                                 const Shape &shape, Real density);

    /** Create an immovable body. */
    RigidBody *createStaticBody(const Transform &pose);

    Geom *createGeom(const Shape *shape, RigidBody *body,
                     const Transform &local = Transform());

    // --- Joint factories. ---
    BallJoint *createBallJoint(RigidBody *a, RigidBody *b,
                               const Vec3 &anchor);
    HingeJoint *createHingeJoint(RigidBody *a, RigidBody *b,
                                 const Vec3 &anchor, const Vec3 &axis);
    SliderJoint *createSliderJoint(RigidBody *a, RigidBody *b,
                                   const Vec3 &axis);
    FixedJoint *createFixedJoint(RigidBody *a, RigidBody *b);

    // --- Cloth. ---
    Cloth *createCloth(int nx, int ny, const Vec3 &origin,
                       Real spacing, Real mass);

    /** Pin a cloth particle to a world point on a body. */
    void attachClothParticle(Cloth *cloth, std::uint32_t particle,
                             RigidBody *body, const Vec3 &local_point);

    EffectsManager &effects() { return effects_; }
    const EffectsManager &effects() const { return effects_; }

    /**
     * Cast a ray against every enabled, non-blast geom and return
     * the nearest hit (with its geom id), if any.
     */
    std::optional<RayHit> raycast(const Ray &ray,
                                  Real max_t = 1e9) const;

    // --- Stepping. ---
    /** Advance one dt step through all five phases. */
    void step();

    /** Advance one display frame (paper: 3 steps per frame). */
    void stepFrame(int substeps = 3);

    // --- Render sampling (fixed tick + interpolation). ---

    /** Sample current body poses and cloth particles for rendering. */
    RenderState renderState() const;

    /**
     * Blend two render samples: position lerp plus shortest-path
     * normalized quaternion lerp, with `phase` clamped to [0, 1].
     * phase == 0 returns `a` bitwise and phase == 1 returns `b`
     * bitwise, so a display synchronized to the tick boundary sees
     * exactly the simulated state. `a` and `b` must come from the
     * same world (same body/cloth structure).
     */
    static RenderState interpolate(const RenderState &a,
                                   const RenderState &b, double phase);

    // --- Introspection. ---
    RigidBody *body(BodyId id);
    const RigidBody *body(BodyId id) const;
    Geom *geom(GeomId id);
    const Geom *geom(GeomId id) const;
    Joint *joint(JointId id);

    std::size_t bodyCount() const { return bodies_.size(); }
    std::size_t geomCount() const { return geoms_.size(); }
    std::size_t jointCount() const { return joints_.size(); }
    std::size_t clothCount() const { return cloths_.size(); }

    const std::vector<std::unique_ptr<Shape>> &shapes() const
    { return shapes_; }
    const std::vector<std::unique_ptr<RigidBody>> &bodies() const
    { return bodies_; }
    const std::vector<std::unique_ptr<Geom>> &geoms() const
    { return geoms_; }
    const std::vector<std::unique_ptr<Joint>> &joints() const
    { return joints_; }
    const std::vector<std::unique_ptr<Cloth>> &cloths() const
    { return cloths_; }

    const StepStats &lastStepStats() const { return stepStats_; }
    const std::vector<GeomPair> &lastPairs() const { return lastPairs_; }
    const std::vector<Contact> &lastContacts() const
    { return lastContacts_; }
    const std::vector<IslandSummary> &lastIslands() const
    { return stepStats_.islands; }

    /** Full island partition from the last step (for the invariant
     *  checker; summaries above suffice for stats consumers). */
    const std::vector<Island> &lastIslandPartition() const
    { return lastIslandList_; }

    /** Contact joints created during the last step. */
    const std::vector<std::unique_ptr<ContactJoint>> &
    lastContactJoints() const
    { return contactJoints_; }

    Real time() const { return time_; }
    const WorldConfig &config() const { return config_; }

    /** The work-stealing scheduler driving the parallel phases. */
    const TaskScheduler &scheduler() const { return scheduler_; }

    /**
     * Export the last step's statistics into a StatGroup (the
     * gem5-style stats idiom: harnesses dump groups as text).
     */
    void fillStats(StatGroup &group) const;

    // --- Observability (physics/trace/; see docs/OBSERVABILITY.md).

    /** The trace collector (inert unless WorldConfig::tracing). */
    const TraceCollector &trace() const { return trace_; }

    /**
     * Write everything traced so far as Chrome trace-event JSON
     * (loadable in chrome://tracing or Perfetto). Returns "" on
     * success, a readable error otherwise (including when tracing
     * was never enabled).
     */
    std::string writeTrace(const std::string &path) const;

    /** Run-cumulative counters and gauges, updated every step
     *  regardless of the tracing flag. */
    const MetricsRegistry &metrics() const { return metrics_; }

    /** The kernel backend this world resolved at construction:
     *  config.simdBackend after the PAX_SIMD override and the
     *  CPU-capability degrade (Native on an unsupported host runs
     *  Scalar). */
    const KernelBackend &kernelBackend() const { return *kernelBackend_; }

    /**
     * The stable per-step metrics line: one single-line JSON object
     * describing the step that just completed. Key order is fixed,
     * and every field is a pure function of simulation state — no
     * wall-clock times, no lane counters — so in deterministic mode
     * the line is identical for any worker count.
     */
    std::string metricsLine() const;

    /**
     * Prefix every metricsLine() key with "<scope>." — the server
     * sets "world.<id>" on each session so multi-world metric
     * streams stay distinguishable. Empty (the default) emits the
     * exact single-world key set, byte-identical to prior releases.
     */
    void setMetricsScope(std::string scope)
    { metricsScope_ = std::move(scope); }

    const std::string &metricsScope() const { return metricsScope_; }

    // --- Debug: capture/replay + invariants (physics/debug/). ---

    /**
     * Serialize all mutable simulation state (bodies, joints, cloth,
     * warm-start cache, effects, time) to a versioned, checksummed
     * snapshot. Defined in debug/capture.cc.
     */
    std::vector<std::uint8_t> captureState() const;

    /**
     * Restore a snapshot taken from a structurally identical world
     * (same scene build; blast volumes spawned mid-run are recreated
     * on a fresh build). Truncated or corrupted snapshots fail with
     * DATA_LOSS and mismatched scenes with FAILED_PRECONDITION —
     * never a crash.
     */
    Status restoreState(const std::vector<std::uint8_t> &bytes);

    /** Run the invariant checker (debug/invariants.hh) now. */
    std::vector<InvariantViolation> validateInvariants() const;

    /**
     * The invariant policy actually in force: invariantMode when set,
     * else HardFail if the legacy checkInvariants flag is on, else
     * Off.
     */
    InvariantMode effectiveInvariantMode() const;

    /**
     * Live governor decisions and counters. Unlike
     * StepStats::governor (a copy taken at the end of each step),
     * this reflects the plan already applied to the step currently
     * in flight, which is what a mockPhaseTime cost model needs to
     * close the control loop.
     */
    const GovernorStats &governorStats() const
    { return governor_.stats(); }

    /**
     * Externally imposed degradation floor: every step runs at least
     * at this ladder rung (governor/governor.hh), whether or not the
     * world's own governor is enabled. The server's shedder and
     * recovery ladder use this to demote a session's quality instead
     * of dropping its ticks. 0 (the default) changes nothing — the
     * step path is byte-for-byte the unfloored one. Clamped to
     * [0, StepGovernor::maxLadderLevel]. Runtime containment state:
     * not serialized in snapshots, survives restoreState().
     */
    void setDegradationFloor(int rung);
    int degradationFloor() const { return degradationFloor_; }

    /** Bodies currently frozen by a quarantine that will never thaw
     *  (retries exhausted or thawing disabled) — the server
     *  watchdog's permanently-sick classification. */
    std::size_t permanentQuarantineCount() const;

    /**
     * Hosted-world mode: a HardFail invariant violation (or a
     * non-attributable violation under Quarantine) records a sticky
     * failure code instead of aborting the process, so a supervisor
     * can classify the world and roll it back. Off by default — the
     * solo-world PR 2 semantics (snapshot dump + fatal) are
     * unchanged.
     */
    void setDeferInvariantHardFail(bool defer)
    { deferHardFail_ = defer; }

    /** First deferred hard-fail code, or "" when healthy. Cleared by
     *  restoreState() — a rollback rehabilitates the world. */
    const std::string &invariantHardFailure() const
    { return hardFailCode_; }

    /** Record an externally driven containment event (e.g. a server
     *  rollback) as a trace instant marker on this world's timeline.
     *  No-op unless tracing is enabled. */
    void markRecoveryEvent(const char *name,
                           std::int64_t detail = 0);

    /** Total invariant violations observed so far (accumulates under
     *  Warn and Quarantine; HardFail never returns to accumulate). */
    std::uint64_t invariantViolationCount() const
    { return invariantViolations_; }

    /** Cumulative quarantine freeze events (islands + cloths). */
    std::uint64_t quarantineEventCount() const
    { return quarantineEvents_; }

    /** Bodies currently frozen by quarantine. */
    std::size_t activeQuarantines() const
    { return quarantinedBodies_.size(); }

    /** One quarantine freeze, for tools and post-mortems. */
    struct QuarantineRecord
    {
        std::uint64_t step = 0;
        std::int64_t body = -1;
        std::int64_t cloth = -1;
        std::string code;
        bool permanent = false;
    };

    const std::vector<QuarantineRecord> &quarantineRecords() const
    { return quarantineRecords_; }

    /** Number of completed step() calls. */
    std::uint64_t stepCount() const { return stepCount_; }

  private:
    struct ClothAttachment
    {
        Cloth *cloth;
        std::uint32_t particle;
        RigidBody *body;
        Vec3 localPoint;
    };

    void rememberConnected(const RigidBody *a, const RigidBody *b);
    bool connectedByJoint(const RigidBody *a,
                          const RigidBody *b) const;

    void phaseBroadphase();
    void phaseNarrowphase();
    void phaseIslandCreation();
    void phaseIslandProcessing();
    void phaseCloth();

    /** Broadphase split for pipeline overlap: the pure spatial pass
     *  (bounds + pair find — safe to run concurrently with cloth)
     *  and the step-coupled filter pass (joint-connected suppression
     *  + governor deferral, which read the *current* step's joints
     *  and plan). phaseBroadphase() = find + filter; the overlap
     *  path runs find during the previous step's cloth phase and
     *  only filters here. */
    void broadphaseFindPairs();
    void broadphaseFilterPairs();
    /** True when the prefetched pair list still describes this
     *  world: right target step, same geom count, same enabled
     *  flags. */
    bool broadphasePrefetchUsable() const;

    /** Counter tracks + per-lane scheduler deltas for this step
     *  (only called when tracing is enabled). */
    void recordStepTraceCounters();
    /** Accumulate this step into the metrics registry (always). */
    void updateMetrics();

    WorldConfig config_;
    std::vector<std::unique_ptr<Shape>> shapes_;
    std::vector<std::unique_ptr<RigidBody>> bodies_;
    std::vector<RigidBody *> bodyPtrs_;
    std::vector<std::unique_ptr<Geom>> geoms_;
    std::vector<std::unique_ptr<Joint>> joints_;
    std::vector<std::unique_ptr<Cloth>> cloths_;
    std::vector<ClothAttachment> clothAttachments_;
    /** Body-id pairs connected by a permanent joint: contacts
     *  between them are suppressed (ODE's dAreConnected rule). */
    std::unordered_set<std::uint64_t> connectedPairs_;

    std::unique_ptr<Broadphase> broadphase_;
    Narrowphase narrowphase_;
    IslandBuilder islandBuilder_;
    PgsSolver solver_;
    /** Resolved kernel backend (config.simdBackend after the PAX_SIMD
     *  override and CPU-capability degrade), shared by the solver
     *  lanes, narrowphase and cloth. Never null after construction. */
    const KernelBackend *kernelBackend_ = nullptr;
    EffectsManager effects_;
    TaskScheduler scheduler_;
    TraceCollector trace_;
    MetricsRegistry metrics_;

    // Per-step scratch state. Everything here persists across steps
    // so its capacity is paid once: after warm-up, the steady-state
    // step loop performs no heap allocations in these containers.
    std::vector<GeomPair> lastPairs_;
    std::vector<Contact> lastContacts_;
    std::vector<std::unique_ptr<ContactJoint>> contactJoints_;
    std::vector<Island> lastIslandList_;
    StepStats stepStats_;
    /** Geom pointer array handed to the broadphase each step. */
    std::vector<Geom *> geomPtrs_;
    /** Permanent + contact joints fed to the island builder. */
    std::vector<Joint *> allJointsScratch_;
    /** Awake islands in index order, and batch offsets into that
     *  list: batch b spans solveIslands_[islandBatchOffsets_[b] ..
     *  islandBatchOffsets_[b+1]). Small islands pack together until
     *  a batch carries at least the row target derived from
     *  islandWorkQueueThreshold and the committed row cost. */
    std::vector<Island *> solveIslands_;
    std::vector<std::uint32_t> islandBatchOffsets_;
    /**
     * Per-phase adaptive-grain cost models (ns per item). Seeded
     * with committed constants; outside deterministic mode the
     * narrowphase model tracks measured phase time (EWMA) so grains
     * follow the scene. In deterministic mode observe() is never
     * called — grain is a pure function of item counts and these
     * committed seeds, keeping chunk boundaries reproducible.
     */
    ChunkCostModel npCost_{800.0};
    ChunkCostModel bodyCost_{60.0};
    /** Committed cost of one constraint-row relaxation (one row,
     *  one sweep); batch row targets scale by solver iterations. */
    ChunkCostModel islandRowCost_{60.0};
    /** Broadphase prefetch state (see WorldConfig::overlapPhases). */
    bool bpPrefetchValid_ = false;
    std::uint64_t bpPrefetchStep_ = 0;
    std::size_t bpPrefetchGeoms_ = 0;
    std::vector<std::uint8_t> bpPrefetchEnabled_;
    /** One solver per lane for parallel island processing; each owns
     *  a persistent workspace that stops allocating once warm. */
    std::vector<PgsSolver> laneSolvers_;
    /** Per-lane narrowphase instances (race-free stats counters). */
    std::vector<Narrowphase> npLocals_;
    /**
     * Deterministic-mode per-chunk contact buffers. The slot array
     * persists; each slot's ArenaVector is re-bound to the executing
     * lane's frame arena every step. Slots are cache-line aligned so
     * adjacent chunks on different lanes never share a line.
     */
    struct alignas(64) ChunkContacts
    {
        ArenaVector<Contact> contacts;
    };
    std::vector<ChunkContacts> detChunkBufs_;
    /** Non-deterministic-mode per-lane contact buffers. */
    std::vector<ChunkContacts> laneContactBufs_;
    /** Cloth collider lists and per-cloth stats buffers. */
    std::vector<std::vector<const Geom *>> clothColliders_;
    std::vector<ClothStats> clothLocalStats_;
    /** Scheduler lane-counter snapshots bracketing each step. */
    std::vector<LaneStats> lanesBefore_;
    std::vector<LaneStats> lanesAfter_;
    /** Cumulative arena growth count at the end of the previous
     *  step, for the per-step arena.growths metric delta. */
    std::uint64_t lastArenaGrowths_ = 0;
    std::uint64_t totalJointsBroken_ = 0;
    Real time_ = 0.0;
    std::uint64_t stepCount_ = 0;
    /** metricsLine() key prefix (see setMetricsScope). */
    std::string metricsScope_;

    /** Broken flag per permanent joint as of the end of the previous
     *  step, so a break is detected in the step it happens (freed
     *  bodies must not be put to sleep that same substep). */
    std::vector<bool> jointWasBroken_;

    /** Pre-step snapshot dumped when an invariant fails, so the
     *  failure replays in one step (only captured when the effective
     *  invariant mode is not Off). */
    std::vector<std::uint8_t> preStepSnapshot_;

    [[noreturn]] void
    failInvariants(const std::vector<InvariantViolation> &violations);

    /** Write preStepSnapshot_ to snapshotDir as
     *  <prefix><sceneTag>_step<N>.paxsnap (defined in capture.cc). */
    void dumpViolationSnapshot(const char *prefix);

    // --- Governor / quarantine / fault injection (step() plumbing,
    // --- defined in world.cc). ---
    void handleViolations(
        const std::vector<InvariantViolation> &violations,
        InvariantMode mode);
    /** Record a sticky hard-fail code instead of aborting (hosted
     *  worlds; see setDeferInvariantHardFail). */
    void deferHardFailure(
        const std::vector<InvariantViolation> &violations);
    void quarantineBody(BodyId id, const std::string &code);
    void quarantineCloth(ClothId id, const std::string &code);
    void captureLastGood();
    void processQuarantineThaws();
    void injectScriptedFaults();
    void injectContactFaults();
    RigidBody *pickFaultBody(std::uint32_t target);

    /** Degradation ladder state (inert when frameBudget == 0). */
    StepGovernor governor_;
    /** Quality settings the governor picked for the current step. */
    StepGovernor::Plan plan_;
    /** Externally imposed minimum ladder rung (setDegradationFloor);
     *  0 = none. */
    int degradationFloor_ = 0;
    /** Deferred-hard-fail mode + first recorded failure code (see
     *  setDeferInvariantHardFail). */
    bool deferHardFail_ = false;
    std::string hardFailCode_;
    /** Measured (or mocked) total of the previous step: the
     *  projection the governor plans the next step from. */
    double lastStepSeconds_ = 0.0;
    /** Broadphase pairs the governor deferred this step (level 6). */
    std::uint64_t pairsDeferredThisStep_ = 0;

    std::uint64_t invariantViolations_ = 0;
    std::uint64_t quarantineEvents_ = 0;
    /** Warn mode dumps one snapshot per run, not one per step. */
    bool warnSnapshotWritten_ = false;

    /** Last known-good per-body state, captured at the top of every
     *  step under Quarantine: what a frozen island is restored to. */
    struct BodyBackup
    {
        Transform pose;
        Vec3 linVel;
        Vec3 angVel;
        bool enabled = true;
        bool asleep = false;
        int sleepCounter = 0;
    };
    std::vector<BodyBackup> lastGood_;
    std::vector<std::vector<Cloth::Particle>> lastGoodCloth_;

    struct QuarantineState
    {
        std::uint64_t frozenAtStep = 0;
        bool permanent = false;
    };
    std::unordered_map<BodyId, QuarantineState> quarantinedBodies_;
    /** Step until which a thawed body runs at reduced dt. */
    std::unordered_map<BodyId, std::uint64_t> probationUntil_;
    /** Thaws already spent per body (vs quarantineMaxRetries). */
    std::unordered_map<BodyId, int> retryCount_;
    std::vector<bool> clothQuarantined_;
    std::vector<QuarantineRecord> quarantineRecords_;

    /** Persisted contact impulses for warm starting, keyed by the
     *  geom pair; matched by contact position between steps. */
    struct CachedContact
    {
        Vec3 position;
        Vec3 normal;
        Real lambdas[3];
    };

    /**
     * Flat warm cache: one entry per cached contact, sorted by
     * (key, seq) where seq is the insertion index. Lookup is a
     * lower_bound on key followed by a linear scan of the group in
     * insertion order — the same entry order the previous per-key
     * vector design produced, so best-match ties break identically.
     * Rebuilt by clear + push_back + sort each step: no node
     * allocations, capacity persists.
     */
    struct WarmEntry
    {
        std::uint64_t key;
        std::uint32_t seq;
        CachedContact c;
    };
    std::vector<WarmEntry> warmCache_;
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_WORLD_HH
