#include "broadphase.hh"

#include <algorithm>
#include <cmath>

namespace parallax
{

namespace
{

/** True for geoms whose AABB is effectively infinite (planes). */
bool
unbounded(const Geom &g)
{
    return g.shape().type() == ShapeType::Plane;
}

GeomPair
canonical(GeomId a, GeomId b)
{
    if (a > b)
        std::swap(a, b);
    return {a, b};
}

/** Strict total order of the sweep axis: AABB lo.x, ties by id. */
bool
axisLess(const Geom *a, const Geom *b)
{
    if (a->bounds().lo.x != b->bounds().lo.x)
        return a->bounds().lo.x < b->bounds().lo.x;
    return a->id() < b->id();
}

} // namespace

bool
Broadphase::pairEligible(const Geom &a, const Geom &b)
{
    if (!a.enabled() || !b.enabled())
        return false;
    // Same body: never collide a body with itself.
    if (a.body() != nullptr && a.body() == b.body())
        return false;
    // Blast volumes are triggers: they pair with anything (including
    // static pre-fractured walls) but not with each other.
    if (a.isBlast() || b.isBlast())
        return !(a.isBlast() && b.isBlast());
    // Two immovable geoms generate no useful contacts.
    const bool a_static = a.body() == nullptr || a.body()->isStatic();
    const bool b_static = b.body() == nullptr || b.body()->isStatic();
    if (a_static && b_static)
        return false;
    return true;
}

void
SweepAndPrune::findPairsInto(const std::vector<Geom *> &geoms,
                             std::vector<GeomPair> &out)
{
    stats_.geomsConsidered += geoms.size();
    out.clear();
    const std::size_t cap_before = axis_.capacity() +
                                   planes_.capacity() +
                                   active_.capacity() +
                                   stamp_.capacity();

    // Classify this step's geoms, stamping bounded membership so a
    // set change (spawn, enable/disable, shape swap to plane) is
    // detected against the persistent axis.
    ++gen_;
    planes_.clear();
    std::size_t bounded_count = 0;
    for (Geom *g : geoms) {
        if (!g->enabled())
            continue;
        if (unbounded(*g)) {
            planes_.push_back(g);
            continue;
        }
        if (g->id() >= stamp_.size())
            stamp_.resize(g->id() + 1, 0);
        stamp_[g->id()] = gen_;
        ++bounded_count;
    }

    bool membership_changed = axis_.size() != bounded_count;
    for (std::size_t i = 0; !membership_changed && i < axis_.size();
         ++i) {
        membership_changed = stamp_[axis_[i]->id()] != gen_;
    }

    if (membership_changed) {
        // Rebuild the axis from scratch and fully sort it: the
        // structure update the paper identifies as the serializing
        // part of broadphase.
        axis_.clear();
        for (Geom *g : geoms) {
            if (g->enabled() && !unbounded(*g))
                axis_.push_back(g);
        }
        std::sort(axis_.begin(), axis_.end(), axisLess);
        stats_.structureUpdates += axis_.size();
    } else {
        // Temporal coherence: bodies barely move between substeps,
        // so last step's order is nearly sorted and one
        // insertion-sort pass repairs it in near-linear time. The
        // comparator is a strict total order (ties broken by id), so
        // the repaired order is bitwise identical to a full sort.
        for (std::size_t i = 1; i < axis_.size(); ++i) {
            Geom *g = axis_[i];
            std::size_t j = i;
            while (j > 0 && axisLess(g, axis_[j - 1])) {
                axis_[j] = axis_[j - 1];
                --j;
                ++stats_.structureUpdates;
            }
            axis_[j] = g;
        }
    }

    // Linear sweep with an active window.
    active_.clear();
    for (Geom *g : axis_) {
        const Aabb &gb = g->bounds();
        // Retire actives that end before this box begins.
        std::erase_if(active_, [&](const Geom *other) {
            return other->bounds().hi.x < gb.lo.x;
        });
        for (Geom *other : active_) {
            ++stats_.overlapTests;
            const Aabb &ob = other->bounds();
            const bool yz = gb.lo.y <= ob.hi.y && gb.hi.y >= ob.lo.y &&
                            gb.lo.z <= ob.hi.z && gb.hi.z >= ob.lo.z;
            if (yz && pairEligible(*g, *other))
                out.push_back(canonical(g->id(), other->id()));
        }
        active_.push_back(g);
    }

    // Planes pair with every eligible bounded geom.
    for (Geom *p : planes_) {
        for (Geom *g : axis_) {
            ++stats_.overlapTests;
            if (pairEligible(*p, *g))
                out.push_back(canonical(p->id(), g->id()));
        }
    }

    std::sort(out.begin(), out.end(),
              [](const GeomPair &x, const GeomPair &y) {
                  return x.a != y.a ? x.a < y.a : x.b < y.b;
              });
    stats_.pairsFound += out.size();
    if (axis_.capacity() + planes_.capacity() + active_.capacity() +
            stamp_.capacity() >
        cap_before)
        ++stats_.storageGrowths;
}

SpatialHash::SpatialHash(Real cell_size) : cellSize_(cell_size)
{
}

template <typename EntryVec, typename CandidateVec>
void
SpatialHash::collectPairs(EntryVec &entries, CandidateVec &candidates,
                          std::vector<GeomPair> &out)
{
    // Group co-resident geoms by sorting the flat occupancy list;
    // idx tiebreak keeps groups in insertion (input) order.
    CellEntry *const ebegin = entries.data();
    CellEntry *const eend = ebegin + entries.size();
    std::sort(ebegin, eend, [](const CellEntry &x, const CellEntry &y) {
        return x.key != y.key ? x.key < y.key : x.idx < y.idx;
    });

    for (CellEntry *group = ebegin; group != eend;) {
        CellEntry *group_end = group + 1;
        while (group_end != eend && group_end->key == group->key)
            ++group_end;
        for (CellEntry *i = group; i != group_end; ++i) {
            for (CellEntry *j = i + 1; j != group_end; ++j) {
                Geom *a = bounded_[i->idx];
                Geom *b = bounded_[j->idx];
                ++stats_.overlapTests;
                if (!a->bounds().overlaps(b->bounds()))
                    continue;
                if (!pairEligible(*a, *b))
                    continue;
                const GeomPair p = canonical(a->id(), b->id());
                candidates.push_back(
                    (static_cast<std::uint64_t>(p.a) << 32) | p.b);
            }
        }
        group = group_end;
    }

    // Dedup pairs reached through several shared cells: sort packed
    // (a, b) keys and drop repeats. The sorted order equals the
    // final (a, b) pair order, so emission is already canonical.
    std::uint64_t *const cbegin = candidates.data();
    std::uint64_t *const cend = cbegin + candidates.size();
    std::sort(cbegin, cend);
    std::uint64_t *const cuniq = std::unique(cbegin, cend);
    for (const std::uint64_t *pk = cbegin; pk != cuniq; ++pk) {
        out.push_back(GeomPair{
            static_cast<GeomId>(*pk >> 32),
            static_cast<GeomId>(*pk & 0xffffffffu)});
    }
}

void
SpatialHash::findPairsInto(const std::vector<Geom *> &geoms,
                           std::vector<GeomPair> &out)
{
    stats_.geomsConsidered += geoms.size();
    out.clear();

    bounded_.clear();
    planes_.clear();
    for (Geom *g : geoms) {
        if (!g->enabled())
            continue;
        if (unbounded(*g))
            planes_.push_back(g);
        else
            bounded_.push_back(g);
    }

    // Mix the three (full-width) cell coordinates into one 64-bit
    // key by multiplying each with a distinct odd constant and
    // XOR-folding. Collisions are possible but only cost an extra
    // overlap test; negative coordinates wrap modulo 2^64 and keep
    // distinct keys (pinned by a regression test).
    auto cellKey = [](std::int64_t ix, std::int64_t iy, std::int64_t iz) {
        const std::uint64_t h =
            static_cast<std::uint64_t>(ix) * 0x8da6b343ull ^
            static_cast<std::uint64_t>(iy) * 0xd8163841ull ^
            static_cast<std::uint64_t>(iz) * 0xcb1ab31full;
        return h;
    };

    const auto fill = [&](auto &entries) {
        for (std::uint32_t gi = 0;
             gi < static_cast<std::uint32_t>(bounded_.size()); ++gi) {
            const Aabb &b = bounded_[gi]->bounds();
            const auto lo_x = static_cast<std::int64_t>(
                std::floor(b.lo.x / cellSize_));
            const auto hi_x = static_cast<std::int64_t>(
                std::floor(b.hi.x / cellSize_));
            const auto lo_y = static_cast<std::int64_t>(
                std::floor(b.lo.y / cellSize_));
            const auto hi_y = static_cast<std::int64_t>(
                std::floor(b.hi.y / cellSize_));
            const auto lo_z = static_cast<std::int64_t>(
                std::floor(b.lo.z / cellSize_));
            const auto hi_z = static_cast<std::int64_t>(
                std::floor(b.hi.z / cellSize_));
            for (auto ix = lo_x; ix <= hi_x; ++ix)
                for (auto iy = lo_y; iy <= hi_y; ++iy)
                    for (auto iz = lo_z; iz <= hi_z; ++iz) {
                        entries.push_back(
                            CellEntry{cellKey(ix, iy, iz), gi});
                        ++stats_.structureUpdates;
                    }
        }
    };

    if (arena_ != nullptr) {
        // Cell storage lives in the borrowed frame arena: it dies at
        // the step barrier, costing the persistent heap nothing.
        ArenaVector<CellEntry> entries(arena_);
        ArenaVector<std::uint64_t> candidates(arena_);
        fill(entries);
        collectPairs(entries, candidates, out);
    } else {
        const std::size_t cap_before = entriesFallback_.capacity() +
                                       candidatesFallback_.capacity();
        entriesFallback_.clear();
        candidatesFallback_.clear();
        fill(entriesFallback_);
        collectPairs(entriesFallback_, candidatesFallback_, out);
        if (entriesFallback_.capacity() +
                candidatesFallback_.capacity() >
            cap_before)
            ++stats_.storageGrowths;
    }

    // Planes pair with every eligible bounded geom (the list already
    // filtered above — disabled and unbounded geoms never re-tested).
    for (Geom *p : planes_) {
        for (Geom *g : bounded_) {
            ++stats_.overlapTests;
            if (pairEligible(*p, *g))
                out.push_back(canonical(p->id(), g->id()));
        }
    }

    std::sort(out.begin(), out.end(),
              [](const GeomPair &x, const GeomPair &y) {
                  return x.a != y.a ? x.a < y.a : x.b < y.b;
              });
    stats_.pairsFound += out.size();
}

} // namespace parallax
