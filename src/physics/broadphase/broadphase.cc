#include "broadphase.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace parallax
{

namespace
{

/** True for geoms whose AABB is effectively infinite (planes). */
bool
unbounded(const Geom &g)
{
    return g.shape().type() == ShapeType::Plane;
}

GeomPair
canonical(GeomId a, GeomId b)
{
    if (a > b)
        std::swap(a, b);
    return {a, b};
}

} // namespace

bool
Broadphase::pairEligible(const Geom &a, const Geom &b)
{
    if (!a.enabled() || !b.enabled())
        return false;
    // Same body: never collide a body with itself.
    if (a.body() != nullptr && a.body() == b.body())
        return false;
    // Blast volumes are triggers: they pair with anything (including
    // static pre-fractured walls) but not with each other.
    if (a.isBlast() || b.isBlast())
        return !(a.isBlast() && b.isBlast());
    // Two immovable geoms generate no useful contacts.
    const bool a_static = a.body() == nullptr || a.body()->isStatic();
    const bool b_static = b.body() == nullptr || b.body()->isStatic();
    if (a_static && b_static)
        return false;
    return true;
}

std::vector<GeomPair>
SweepAndPrune::findPairs(const std::vector<Geom *> &geoms)
{
    stats_.geomsConsidered += geoms.size();

    std::vector<Geom *> bounded;
    std::vector<Geom *> planes;
    bounded.reserve(geoms.size());
    for (Geom *g : geoms) {
        if (!g->enabled())
            continue;
        if (unbounded(*g))
            planes.push_back(g);
        else
            bounded.push_back(g);
    }

    // Sort by AABB minimum X; this is the structure update the paper
    // identifies as the serializing part of broadphase.
    std::sort(bounded.begin(), bounded.end(),
              [](const Geom *a, const Geom *b) {
                  if (a->bounds().lo.x != b->bounds().lo.x)
                      return a->bounds().lo.x < b->bounds().lo.x;
                  return a->id() < b->id();
              });
    stats_.structureUpdates += bounded.size();

    std::vector<GeomPair> pairs;

    // Linear sweep with an active window.
    std::vector<Geom *> active;
    for (Geom *g : bounded) {
        const Aabb &gb = g->bounds();
        // Retire actives that end before this box begins.
        std::erase_if(active, [&](const Geom *other) {
            return other->bounds().hi.x < gb.lo.x;
        });
        for (Geom *other : active) {
            ++stats_.overlapTests;
            const Aabb &ob = other->bounds();
            const bool yz = gb.lo.y <= ob.hi.y && gb.hi.y >= ob.lo.y &&
                            gb.lo.z <= ob.hi.z && gb.hi.z >= ob.lo.z;
            if (yz && pairEligible(*g, *other))
                pairs.push_back(canonical(g->id(), other->id()));
        }
        active.push_back(g);
    }

    // Planes pair with every eligible bounded geom.
    for (Geom *p : planes) {
        for (Geom *g : bounded) {
            ++stats_.overlapTests;
            if (pairEligible(*p, *g))
                pairs.push_back(canonical(p->id(), g->id()));
        }
    }

    std::sort(pairs.begin(), pairs.end(),
              [](const GeomPair &x, const GeomPair &y) {
                  return x.a != y.a ? x.a < y.a : x.b < y.b;
              });
    stats_.pairsFound += pairs.size();
    return pairs;
}

SpatialHash::SpatialHash(Real cell_size) : cellSize_(cell_size)
{
}

std::vector<GeomPair>
SpatialHash::findPairs(const std::vector<Geom *> &geoms)
{
    stats_.geomsConsidered += geoms.size();

    std::unordered_map<std::uint64_t, std::vector<Geom *>> cells;
    std::vector<Geom *> planes;

    auto cellKey = [](std::int64_t ix, std::int64_t iy, std::int64_t iz) {
        // Morton-free mixing of three 21-bit cell coordinates.
        const std::uint64_t h =
            static_cast<std::uint64_t>(ix) * 0x8da6b343ull ^
            static_cast<std::uint64_t>(iy) * 0xd8163841ull ^
            static_cast<std::uint64_t>(iz) * 0xcb1ab31full;
        return h;
    };

    for (Geom *g : geoms) {
        if (!g->enabled())
            continue;
        if (unbounded(*g)) {
            planes.push_back(g);
            continue;
        }
        const Aabb &b = g->bounds();
        const auto lo_x = static_cast<std::int64_t>(
            std::floor(b.lo.x / cellSize_));
        const auto hi_x = static_cast<std::int64_t>(
            std::floor(b.hi.x / cellSize_));
        const auto lo_y = static_cast<std::int64_t>(
            std::floor(b.lo.y / cellSize_));
        const auto hi_y = static_cast<std::int64_t>(
            std::floor(b.hi.y / cellSize_));
        const auto lo_z = static_cast<std::int64_t>(
            std::floor(b.lo.z / cellSize_));
        const auto hi_z = static_cast<std::int64_t>(
            std::floor(b.hi.z / cellSize_));
        for (auto ix = lo_x; ix <= hi_x; ++ix)
            for (auto iy = lo_y; iy <= hi_y; ++iy)
                for (auto iz = lo_z; iz <= hi_z; ++iz) {
                    cells[cellKey(ix, iy, iz)].push_back(g);
                    ++stats_.structureUpdates;
                }
    }

    std::unordered_set<std::uint64_t> seen;
    std::vector<GeomPair> pairs;
    for (auto &[key, residents] : cells) {
        for (size_t i = 0; i < residents.size(); ++i) {
            for (size_t j = i + 1; j < residents.size(); ++j) {
                Geom *a = residents[i];
                Geom *b = residents[j];
                ++stats_.overlapTests;
                if (!a->bounds().overlaps(b->bounds()))
                    continue;
                if (!pairEligible(*a, *b))
                    continue;
                const GeomPair p = canonical(a->id(), b->id());
                const std::uint64_t pk =
                    (static_cast<std::uint64_t>(p.a) << 32) | p.b;
                if (seen.insert(pk).second)
                    pairs.push_back(p);
            }
        }
    }

    for (Geom *p : planes) {
        for (Geom *g : geoms) {
            if (!g->enabled() || unbounded(*g))
                continue;
            ++stats_.overlapTests;
            if (pairEligible(*p, *g))
                pairs.push_back(canonical(p->id(), g->id()));
        }
    }

    std::sort(pairs.begin(), pairs.end(),
              [](const GeomPair &x, const GeomPair &y) {
                  return x.a != y.a ? x.a < y.a : x.b < y.b;
              });
    stats_.pairsFound += pairs.size();
    return pairs;
}

} // namespace parallax
