/**
 * @file
 * Broadphase collision culling interface.
 *
 * The broadphase is the first step of collision detection (section
 * 3.2): it culls pairs of objects that cannot possibly collide using
 * their AABBs. The paper notes this phase is hard to parallelize
 * because it updates a spatial structure (sweep-and-prune axes or
 * hash tables); both structures are provided here.
 */

#ifndef PARALLAX_PHYSICS_BROADPHASE_BROADPHASE_HH
#define PARALLAX_PHYSICS_BROADPHASE_BROADPHASE_HH

#include <cstdint>
#include <vector>

#include "physics/geom.hh"

namespace parallax
{

/** A candidate colliding pair produced by the broadphase. */
struct GeomPair
{
    GeomId a;
    GeomId b;

    bool operator==(const GeomPair &o) const = default;
};

/** Observability counters for the broadphase phase. */
struct BroadphaseStats
{
    std::uint64_t geomsConsidered = 0;
    std::uint64_t overlapTests = 0;
    std::uint64_t pairsFound = 0;
    std::uint64_t structureUpdates = 0;

    void
    reset()
    {
        *this = BroadphaseStats();
    }
};

/** Abstract broadphase algorithm. */
class Broadphase
{
  public:
    virtual ~Broadphase() = default;

    /**
     * Find all candidate pairs among the given geoms. Geoms whose
     * bodies are disabled are skipped; pairs where neither side can
     * move (both static) are filtered; pairs sharing a body are
     * filtered. Pair ordering is canonical (a < b) and deterministic.
     */
    virtual std::vector<GeomPair>
    findPairs(const std::vector<Geom *> &geoms) = 0;

    const BroadphaseStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

  protected:
    /** True when a pair of geoms should be considered at all. */
    static bool pairEligible(const Geom &a, const Geom &b);

    BroadphaseStats stats_;
};

/**
 * Sweep-and-prune broadphase.
 *
 * Geoms are sorted by AABB minimum along the X axis; a linear sweep
 * keeps an active window and tests Y/Z overlap only for X-overlapping
 * boxes. Unbounded geoms (planes) are handled out of band and paired
 * with every eligible bounded geom.
 */
class SweepAndPrune : public Broadphase
{
  public:
    std::vector<GeomPair>
    findPairs(const std::vector<Geom *> &geoms) override;
};

/**
 * Uniform spatial-hash broadphase.
 *
 * Geoms are binned into grid cells of a fixed size; pairs are
 * generated from co-resident cells and deduplicated.
 */
class SpatialHash : public Broadphase
{
  public:
    explicit SpatialHash(Real cell_size = 4.0);

    std::vector<GeomPair>
    findPairs(const std::vector<Geom *> &geoms) override;

    Real cellSize() const { return cellSize_; }

  private:
    Real cellSize_;
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_BROADPHASE_BROADPHASE_HH
