/**
 * @file
 * Broadphase collision culling interface.
 *
 * The broadphase is the first step of collision detection (section
 * 3.2): it culls pairs of objects that cannot possibly collide using
 * their AABBs. The paper notes this phase is hard to parallelize
 * because it updates a spatial structure (sweep-and-prune axes or
 * hash tables); both structures are provided here.
 *
 * Both implementations keep their spatial structure (and every
 * scratch buffer) alive across calls: after warm-up a steady-state
 * findPairsInto() performs no heap allocations, and SweepAndPrune
 * additionally exploits temporal coherence by repairing last step's
 * sorted axis instead of re-sorting from scratch.
 */

#ifndef PARALLAX_PHYSICS_BROADPHASE_BROADPHASE_HH
#define PARALLAX_PHYSICS_BROADPHASE_BROADPHASE_HH

#include <cstdint>
#include <vector>

#include "physics/geom.hh"
#include "physics/parallel/arena.hh"

namespace parallax
{

/** A candidate colliding pair produced by the broadphase. */
struct GeomPair
{
    GeomId a;
    GeomId b;

    bool operator==(const GeomPair &o) const = default;
};

/** Observability counters for the broadphase phase. */
struct BroadphaseStats
{
    std::uint64_t geomsConsidered = 0;
    std::uint64_t overlapTests = 0;
    std::uint64_t pairsFound = 0;
    std::uint64_t structureUpdates = 0;
    /**
     * Times persistent scratch storage had to grow (heap
     * allocation). Zero in a warmed-up steady state — asserted by
     * the `perf`-labeled allocation-regression test.
     */
    std::uint64_t storageGrowths = 0;

    void
    reset()
    {
        *this = BroadphaseStats();
    }
};

/** Abstract broadphase algorithm. */
class Broadphase
{
  public:
    virtual ~Broadphase() = default;

    /**
     * Find all candidate pairs among the given geoms, into `out`
     * (cleared first; capacity kept). Geoms whose bodies are
     * disabled are skipped; pairs where neither side can move (both
     * static) are filtered; pairs sharing a body are filtered. Pair
     * ordering is canonical (a < b) and deterministic.
     */
    virtual void findPairsInto(const std::vector<Geom *> &geoms,
                               std::vector<GeomPair> &out) = 0;

    /** Convenience wrapper returning a fresh pair list. */
    std::vector<GeomPair>
    findPairs(const std::vector<Geom *> &geoms)
    {
        std::vector<GeomPair> pairs;
        findPairsInto(geoms, pairs);
        return pairs;
    }

    /**
     * Borrow a frame arena for step-transient scratch (cell entry
     * lists and candidate buffers). Optional: without one the
     * implementations fall back to persistent member buffers. The
     * arena's owner must reset it between steps, never mid-call.
     */
    void setFrameArena(FrameArena *arena) { arena_ = arena; }

    const BroadphaseStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

  protected:
    /** True when a pair of geoms should be considered at all. */
    static bool pairEligible(const Geom &a, const Geom &b);

    BroadphaseStats stats_;
    FrameArena *arena_ = nullptr;
};

/**
 * Sweep-and-prune broadphase.
 *
 * Geoms are sorted by AABB minimum along the X axis; a linear sweep
 * keeps an active window and tests Y/Z overlap only for X-overlapping
 * boxes. Unbounded geoms (planes) are handled out of band and paired
 * with every eligible bounded geom.
 *
 * The sorted axis persists across steps. When the geom set is
 * unchanged, the axis is repaired with one insertion-sort pass —
 * near-linear under temporal coherence, and producing exactly the
 * order a full sort would (the comparator is a strict total order),
 * so results stay bitwise identical. Any membership change triggers
 * a full rebuild.
 */
class SweepAndPrune : public Broadphase
{
  public:
    void findPairsInto(const std::vector<Geom *> &geoms,
                       std::vector<GeomPair> &out) override;

  private:
    /** Persistent sorted axis (by AABB lo.x, then id). */
    std::vector<Geom *> axis_;
    /** Per-call plane list and sweep window (capacity persists). */
    std::vector<Geom *> planes_;
    std::vector<Geom *> active_;
    /** Membership stamps indexed by geom id: stamp_[id] == gen_
     *  means the geom is in this step's bounded set. */
    std::vector<std::uint32_t> stamp_;
    std::uint32_t gen_ = 0;
};

/**
 * Uniform spatial-hash broadphase.
 *
 * Geoms are binned into grid cells of a fixed size; pairs are
 * generated from co-resident cells and deduplicated. Cell storage is
 * a flat (cellKey, geom) array sorted by key — no per-cell node
 * allocations — living in the borrowed frame arena when one is set,
 * else in persistent member buffers.
 */
class SpatialHash : public Broadphase
{
  public:
    explicit SpatialHash(Real cell_size = 4.0);

    void findPairsInto(const std::vector<Geom *> &geoms,
                       std::vector<GeomPair> &out) override;

    Real cellSize() const { return cellSize_; }

  private:
    /** One geom occupancy of one cell. */
    struct CellEntry
    {
        std::uint64_t key;
        std::uint32_t idx; // Index into bounded_.
    };

    template <typename EntryVec, typename CandidateVec>
    void collectPairs(EntryVec &entries, CandidateVec &candidates,
                      std::vector<GeomPair> &out);

    Real cellSize_;
    /** Enabled bounded geoms, in input order (plane-pass reuse). */
    std::vector<Geom *> bounded_;
    std::vector<Geom *> planes_;
    /** Fallback scratch when no frame arena is borrowed. */
    std::vector<CellEntry> entriesFallback_;
    std::vector<std::uint64_t> candidatesFallback_;
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_BROADPHASE_BROADPHASE_HH
