#include "contact_joint.hh"

#include <algorithm>
#include <cmath>

namespace parallax
{

namespace
{

/** Build two tangent directions orthogonal to a unit normal. */
void
tangentBasis(const Vec3 &n, Vec3 &t1, Vec3 &t2)
{
    if (std::fabs(n.x) > 0.7071)
        t1 = Vec3{n.y, -n.x, 0.0}.normalized();
    else
        t1 = Vec3{0.0, n.z, -n.y}.normalized();
    t2 = n.cross(t1);
}

} // namespace

ContactJoint::ContactJoint(JointId id, RigidBody *body_a,
                           RigidBody *body_b, const Contact &contact,
                           const ContactMaterial &mat)
    : Joint(id, body_a, body_b), contact_(contact), material_(mat)
{
}

void
ContactJoint::buildRows(const SolverParams &params,
                        RowBuffer &out)
{
    RigidBody *a = bodyA();
    RigidBody *b = bodyB();
    const Vec3 &n = contact_.normal;
    const Vec3 &p = contact_.position;
    const Vec3 ra = p - a->position();
    const Vec3 rb = b != nullptr ? p - b->position() : Vec3{};

    // Relative normal velocity for restitution.
    Vec3 rel_vel = a->velocityAt(p);
    if (b != nullptr)
        rel_vel -= b->velocityAt(p);
    const Real vn = rel_vel.dot(n);

    // Normal row: J = [n, ra x n, -n, -(rb x n)], Jv >= bias.
    ConstraintRow normal;
    normal.jLinA = n;
    normal.jAngA = ra.cross(n);
    if (b != nullptr) {
        normal.jLinB = -n;
        normal.jAngB = -rb.cross(n);
    }
    Real bias = params.erp * contact_.depth / params.dt;
    bias = std::min(bias, params.maxCorrectingVel);
    if (-vn > material_.restitutionThreshold)
        bias = std::max(bias, -material_.restitution * vn);
    normal.rhs = bias;
    normal.cfm = params.cfm;
    normal.lo = 0.0;
    normal.hi = 1e30;
    normal.joint = id();
    normal.lambda = warm_[0]; // Warm start (0 for fresh contacts).
    const int normal_index = static_cast<int>(out.size());
    out.push_back(normal);

    // Two friction rows along the tangent basis, clamped by the
    // normal impulse through `mu` during solving.
    Vec3 t1, t2;
    tangentBasis(n, t1, t2);
    int tangent_index = 1;
    for (const Vec3 &t : {t1, t2}) {
        ConstraintRow fr;
        fr.jLinA = t;
        fr.jAngA = ra.cross(t);
        if (b != nullptr) {
            fr.jLinB = -t;
            fr.jAngB = -rb.cross(t);
        }
        fr.rhs = 0.0;
        fr.cfm = params.cfm;
        fr.normalRow = normal_index;
        fr.mu = material_.friction;
        fr.joint = id();
        fr.lambda = warm_[tangent_index++];
        out.push_back(fr);
    }
}

void
ContactJoint::onSolved(const Real *lambdas, int count)
{
    for (int i = 0; i < count && i < 3; ++i)
        solved_[i] = lambdas[i];
}

void
ContactJoint::setWarmStart(Real normal, Real friction1,
                           Real friction2)
{
    // Damp the carried impulse slightly so stale contacts decay.
    warm_[0] = 0.9 * normal;
    warm_[1] = 0.9 * friction1;
    warm_[2] = 0.9 * friction2;
}

} // namespace parallax
