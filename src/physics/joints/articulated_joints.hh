/**
 * @file
 * Articulation joints: ball, hinge, slider, fixed.
 *
 * These are the ideal joints used to assemble the benchmark suite's
 * articulated figures (Table 2): virtual humans are 16 capsule
 * segments joined by ball/hinge joints, cars have hinge wheels and a
 * slider suspension, bridges and buildings use breakable fixed
 * joints.
 */

#ifndef PARALLAX_PHYSICS_JOINTS_ARTICULATED_JOINTS_HH
#define PARALLAX_PHYSICS_JOINTS_ARTICULATED_JOINTS_HH

#include "joint.hh"

namespace parallax
{

/** Ball-and-socket: pins a shared anchor point (removes 3 DOF). */
class BallJoint : public Joint
{
  public:
    /** @param anchor World-space anchor at construction time. */
    BallJoint(JointId id, RigidBody *body_a, RigidBody *body_b,
              const Vec3 &anchor);

    JointType type() const override { return JointType::Ball; }
    int numRows() const override { return 3; }
    void buildRows(const SolverParams &params,
                   RowBuffer &out) override;

    /** Current world position of the anchor as seen by body A. */
    Vec3 anchorOnA() const;

    /** Current world position of the anchor as seen by body B. */
    Vec3 anchorOnB() const;

  protected:
    Vec3 localA_;
    Vec3 localB_;
};

/**
 * Hinge: ball joint plus two angular rows locking rotation to one
 * axis (removes 5 DOF).
 */
class HingeJoint : public BallJoint
{
  public:
    HingeJoint(JointId id, RigidBody *body_a, RigidBody *body_b,
               const Vec3 &anchor, const Vec3 &axis);

    JointType type() const override { return JointType::Hinge; }
    int numRows() const override { return 5; }
    void buildRows(const SolverParams &params,
                   RowBuffer &out) override;

    /** Hinge axis in world space (from body A's frame). */
    Vec3 axisWorld() const;

  private:
    Vec3 axisLocalA_;
    Vec3 axisLocalB_;
};

/**
 * Slider: locks all relative rotation and all translation except
 * along the slide axis (removes 5 DOF). Used for car suspensions.
 */
class SliderJoint : public Joint
{
  public:
    SliderJoint(JointId id, RigidBody *body_a, RigidBody *body_b,
                const Vec3 &axis);

    JointType type() const override { return JointType::Slider; }
    int numRows() const override { return 5; }
    void buildRows(const SolverParams &params,
                   RowBuffer &out) override;

    /** Slide axis in world space (from body A's frame). */
    Vec3 axisWorld() const;

  private:
    Vec3 axisLocalA_;
    Vec3 offsetLocalA_; // B's origin in A's frame at creation.
    Quat relRotation_;  // B's rotation relative to A at creation.
};

/** Fixed: welds the two bodies rigidly (removes 6 DOF). */
class FixedJoint : public Joint
{
  public:
    FixedJoint(JointId id, RigidBody *body_a, RigidBody *body_b);

    JointType type() const override { return JointType::Fixed; }
    int numRows() const override { return 6; }
    void buildRows(const SolverParams &params,
                   RowBuffer &out) override;

  private:
    Vec3 offsetLocalA_;
    Quat relRotation_;
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_JOINTS_ARTICULATED_JOINTS_HH
