/**
 * @file
 * Contact constraint: non-penetration plus pyramid friction.
 */

#ifndef PARALLAX_PHYSICS_JOINTS_CONTACT_JOINT_HH
#define PARALLAX_PHYSICS_JOINTS_CONTACT_JOINT_HH

#include "joint.hh"
#include "physics/narrowphase/contact.hh"

namespace parallax
{

/** Surface interaction parameters for a contact. */
struct ContactMaterial
{
    Real friction = 0.8;
    Real restitution = 0.1;
    /** Relative normal speed below which restitution is ignored. */
    Real restitutionThreshold = 0.5;
};

/**
 * One contact point between two bodies. Contributes a normal row
 * (lambda >= 0) and two friction rows bounded by mu * normal lambda.
 */
class ContactJoint : public Joint
{
  public:
    ContactJoint(JointId id, RigidBody *body_a, RigidBody *body_b,
                 const Contact &contact, const ContactMaterial &mat);

    JointType type() const override { return JointType::Contact; }
    int numRows() const override { return 3; }
    void buildRows(const SolverParams &params,
                   RowBuffer &out) override;
    void onSolved(const Real *lambdas, int count) override;

    const Contact &contact() const { return contact_; }

    /**
     * Warm starting: seed this contact with the previous step's
     * solved impulses (normal, friction1, friction2). The solver
     * pre-applies them before iterating, which removes the
     * re-convergence jitter of resting stacks.
     */
    void setWarmStart(Real normal, Real friction1, Real friction2);

    /** Solved impulses from the last step (for persistence). */
    const Real *solvedLambdas() const { return solved_; }

  private:
    Contact contact_;
    ContactMaterial material_;
    Real warm_[3] = {0.0, 0.0, 0.0};
    Real solved_[3] = {0.0, 0.0, 0.0};
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_JOINTS_CONTACT_JOINT_HH
