#include "articulated_joints.hh"

#include <algorithm>
#include <cmath>

namespace parallax
{

namespace
{

/** Two unit vectors orthogonal to `axis` and to each other. */
void
perpBasis(const Vec3 &axis, Vec3 &u, Vec3 &v)
{
    if (std::fabs(axis.x) > 0.7071)
        u = Vec3{axis.y, -axis.x, 0.0}.normalized();
    else
        u = Vec3{0.0, axis.z, -axis.y}.normalized();
    v = axis.cross(u);
}

/**
 * Append a positional row pinning the anchor points together along
 * direction `dir`.
 *
 * J*v = (va + wa x ra - vb - wb x rb) . dir is the rate at which
 * anchor A moves away from anchor B along `dir`. With separation
 * err = (anchor_b - anchor_a) . dir, the Baumgarte bias demands
 * J*v = +erp * err / dt so A chases B (and vice versa).
 */
void
pointRow(RowBuffer &out, JointId joint,
         const SolverParams &params, RigidBody *a, RigidBody *b,
         const Vec3 &anchor_a, const Vec3 &anchor_b, const Vec3 &dir)
{
    ConstraintRow row;
    const Vec3 ra = anchor_a - a->position();
    row.jLinA = dir;
    row.jAngA = ra.cross(dir);
    if (b != nullptr) {
        const Vec3 rb = anchor_b - b->position();
        row.jLinB = -dir;
        row.jAngB = -rb.cross(dir);
    }
    const Real err = (anchor_b - anchor_a).dot(dir);
    Real bias = params.erp * err / params.dt;
    bias = std::clamp(bias, -params.maxCorrectingVel,
                      params.maxCorrectingVel);
    row.rhs = bias;
    row.cfm = params.cfm;
    row.joint = joint;
    out.push_back(row);
}

/**
 * Append an angular row constraining relative rotation about `axis`.
 *
 * J*v = (wa - wb) . axis. `err` is the angle (radians) by which body
 * B is ahead of body A about `axis`; the bias demands
 * J*v = +erp * err / dt so A catches up / B falls back.
 */
void
angularRow(RowBuffer &out, JointId joint,
           const SolverParams &params, RigidBody *b, const Vec3 &axis,
           Real err)
{
    ConstraintRow row;
    row.jAngA = axis;
    if (b != nullptr)
        row.jAngB = -axis;
    Real bias = params.erp * err / params.dt;
    bias = std::clamp(bias, -params.maxCorrectingVel,
                      params.maxCorrectingVel);
    row.rhs = bias;
    row.cfm = params.cfm;
    row.joint = joint;
    out.push_back(row);
}

/** Small-angle relative rotation error vector between orientations. */
Vec3
rotationError(const Quat &qa, const Quat &qb, const Quat &rel0)
{
    // Error quaternion: how far qb is from qa * rel0.
    const Quat target = (qa * rel0).normalized();
    const Quat err = (qb * target.conjugate()).normalized();
    // For small angles the vector part ~ half the rotation vector.
    const Real sign = err.w >= 0 ? 1.0 : -1.0;
    return Vec3{err.x, err.y, err.z} * (2.0 * sign);
}

} // namespace

BallJoint::BallJoint(JointId id, RigidBody *body_a, RigidBody *body_b,
                     const Vec3 &anchor)
    : Joint(id, body_a, body_b)
{
    localA_ = body_a->pose().applyInverse(anchor);
    localB_ = body_b != nullptr ? body_b->pose().applyInverse(anchor)
                                : anchor;
}

Vec3
BallJoint::anchorOnA() const
{
    return bodyA()->pose().apply(localA_);
}

Vec3
BallJoint::anchorOnB() const
{
    return bodyB() != nullptr ? bodyB()->pose().apply(localB_)
                              : localB_;
}

void
BallJoint::buildRows(const SolverParams &params,
                     RowBuffer &out)
{
    const Vec3 pa = anchorOnA();
    const Vec3 pb = anchorOnB();
    const Vec3 axes[3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
    for (const Vec3 &dir : axes)
        pointRow(out, id(), params, bodyA(), bodyB(), pa, pb, dir);
}

HingeJoint::HingeJoint(JointId id, RigidBody *body_a,
                       RigidBody *body_b, const Vec3 &anchor,
                       const Vec3 &axis)
    : BallJoint(id, body_a, body_b, anchor)
{
    const Vec3 unit = axis.normalized();
    axisLocalA_ = body_a->pose().rotation.conjugate().rotate(unit);
    axisLocalB_ = body_b != nullptr
        ? body_b->pose().rotation.conjugate().rotate(unit)
        : unit;
}

Vec3
HingeJoint::axisWorld() const
{
    return bodyA()->pose().rotation.rotate(axisLocalA_);
}

void
HingeJoint::buildRows(const SolverParams &params,
                      RowBuffer &out)
{
    BallJoint::buildRows(params, out);

    // Constrain rotation perpendicular to the hinge axis: the two
    // bodies' axes must stay aligned.
    const Vec3 axis_a = axisWorld();
    const Vec3 axis_b = bodyB() != nullptr
        ? bodyB()->pose().rotation.rotate(axisLocalB_)
        : axisLocalB_;
    Vec3 u, v;
    perpBasis(axis_a, u, v);
    // axis_a x axis_b = theta * u for a misalignment of B's axis by
    // theta about u: exactly "B ahead of A" in angularRow's terms.
    const Vec3 err = axis_a.cross(axis_b);
    angularRow(out, id(), params, bodyB(), u, err.dot(u));
    angularRow(out, id(), params, bodyB(), v, err.dot(v));
}

SliderJoint::SliderJoint(JointId id, RigidBody *body_a,
                         RigidBody *body_b, const Vec3 &axis)
    : Joint(id, body_a, body_b)
{
    const Vec3 unit = axis.normalized();
    axisLocalA_ = body_a->pose().rotation.conjugate().rotate(unit);
    const Vec3 b_pos = body_b != nullptr ? body_b->position() : Vec3{};
    offsetLocalA_ = body_a->pose().applyInverse(b_pos);
    const Quat qb = body_b != nullptr ? body_b->orientation() : Quat();
    relRotation_ = (body_a->orientation().conjugate() * qb)
        .normalized();
}

Vec3
SliderJoint::axisWorld() const
{
    return bodyA()->pose().rotation.rotate(axisLocalA_);
}

void
SliderJoint::buildRows(const SolverParams &params,
                       RowBuffer &out)
{
    RigidBody *a = bodyA();
    RigidBody *b = bodyB();

    // Lock all three relative rotations.
    const Vec3 err = rotationError(
        a->orientation(),
        b != nullptr ? b->orientation() : Quat(), relRotation_);
    const Vec3 axes[3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
    for (int i = 0; i < 3; ++i)
        angularRow(out, id(), params, b, axes[i], err[i]);

    // Lock translation perpendicular to the slide axis.
    const Vec3 axis = axisWorld();
    Vec3 u, v;
    perpBasis(axis, u, v);
    const Vec3 target = a->pose().apply(offsetLocalA_);
    const Vec3 b_pos = b != nullptr ? b->position() : Vec3{};
    for (const Vec3 &dir : {u, v})
        pointRow(out, id(), params, a, b, target, b_pos, dir);
}

FixedJoint::FixedJoint(JointId id, RigidBody *body_a,
                       RigidBody *body_b)
    : Joint(id, body_a, body_b)
{
    const Vec3 b_pos = body_b != nullptr ? body_b->position() : Vec3{};
    offsetLocalA_ = body_a->pose().applyInverse(b_pos);
    const Quat qb = body_b != nullptr ? body_b->orientation() : Quat();
    relRotation_ = (body_a->orientation().conjugate() * qb)
        .normalized();
}

void
FixedJoint::buildRows(const SolverParams &params,
                      RowBuffer &out)
{
    RigidBody *a = bodyA();
    RigidBody *b = bodyB();

    const Vec3 err = rotationError(
        a->orientation(),
        b != nullptr ? b->orientation() : Quat(), relRotation_);
    const Vec3 axes[3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
    for (int i = 0; i < 3; ++i)
        angularRow(out, id(), params, b, axes[i], err[i]);

    const Vec3 target = a->pose().apply(offsetLocalA_);
    const Vec3 b_pos = b != nullptr ? b->position() : Vec3{};
    for (const Vec3 &dir : axes)
        pointRow(out, id(), params, a, b, target, b_pos, dir);
}

} // namespace parallax
