#include "joint.hh"

#include "sim/logging.hh"

namespace parallax
{

const char *
jointTypeName(JointType type)
{
    switch (type) {
      case JointType::Contact: return "contact";
      case JointType::Ball: return "ball";
      case JointType::Hinge: return "hinge";
      case JointType::Slider: return "slider";
      case JointType::Fixed: return "fixed";
    }
    return "?";
}

Joint::Joint(JointId id, RigidBody *body_a, RigidBody *body_b)
    : id_(id), bodyA_(body_a), bodyB_(body_b)
{
    if (body_a == nullptr)
        fatal("joint requires at least one dynamic body (bodyA)");
}

void
Joint::recordAppliedImpulse(Real impulse, Real dt)
{
    if (dt <= 0)
        return;
    lastForce_ = impulse / dt;
    // Accumulate with decay so sustained overload breaks the joint
    // while brief spikes below threshold do not accumulate forever.
    accumForce_ = accumForce_ * 0.5 + lastForce_;
    if (breakable() && !broken_) {
        if (lastForce_ > breakForce_ ||
            accumForce_ > 2.0 * breakForce_) {
            broken_ = true;
        }
    }
}

} // namespace parallax
