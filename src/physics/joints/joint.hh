/**
 * @file
 * Constraint (joint) base class and the solver row representation.
 *
 * Joints connect bodies with ideal constraints following ODE's
 * constraint-based approach. Each joint contributes rows to the
 * island's LCP: a row is one scalar velocity constraint with a
 * 12-element Jacobian, bounds on its impulse, and a bias velocity.
 */

#ifndef PARALLAX_PHYSICS_JOINTS_JOINT_HH
#define PARALLAX_PHYSICS_JOINTS_JOINT_HH

#include <cstdint>
#include <vector>

#include "physics/body.hh"
#include "physics/math/vec3.hh"

namespace parallax
{

/** Identifier of a joint within its World. */
using JointId = std::uint32_t;

constexpr JointId invalidJointId = ~JointId(0);

/** Joint type discriminator (drives per-type memory sizes too). */
enum class JointType
{
    Contact,
    Ball,
    Hinge,
    Slider,
    Fixed,
};

/** Human-readable joint type name. */
const char *jointTypeName(JointType type);

/**
 * One scalar constraint row of the island LCP.
 *
 * The Jacobian maps the two bodies' (linear, angular) velocities to
 * the constraint-space velocity. The solver finds an impulse lambda
 * in [lo, hi] driving J*v toward rhs. Friction rows carry `mu` and
 * the index of their normal row; their bounds are recomputed from
 * the normal impulse each sweep (a friction-cone pyramid).
 */
struct ConstraintRow
{
    Vec3 jLinA;
    Vec3 jAngA;
    Vec3 jLinB;
    Vec3 jAngB;
    Real rhs = 0.0;
    Real cfm = 1e-9;
    Real lo = -1e30;
    Real hi = 1e30;
    Real lambda = 0.0;
    /** Index (within the island's row array) of the friction row's
     *  normal row, or -1 for non-friction rows. */
    int normalRow = -1;
    Real mu = 0.0;
    /** Owning joint, so impulses can be fed back for breakage. */
    JointId joint = invalidJointId;
};

/** Parameters shared by row construction. */
struct SolverParams
{
    Real dt = 0.01;
    /** Error reduction parameter (Baumgarte stabilization). */
    Real erp = 0.2;
    /** Global constraint force mixing (softness). */
    Real cfm = 1e-9;
    /** Penetration depth correction cap per step (meters). */
    Real maxCorrectingVel = 10.0;
};

/**
 * Structure-of-arrays storage for an island's constraint rows.
 *
 * The relaxation sweep reads each field of every row once per
 * iteration; splitting the fields into parallel arrays lets those
 * reads stream linearly (and the lambda/bounds updates vectorize)
 * instead of striding over 14-field structs. Joints still emit rows
 * one at a time via push_back(), which scatters the AoS
 * ConstraintRow into the arrays; operator[] gathers one back for
 * callers (tests, debugging) that want the struct view.
 *
 * clear() keeps capacity, so a persistent RowBuffer stops allocating
 * once it has seen the largest island.
 */
class RowBuffer
{
  public:
    void
    push_back(const ConstraintRow &row)
    {
        jLinA.push_back(row.jLinA);
        jAngA.push_back(row.jAngA);
        jLinB.push_back(row.jLinB);
        jAngB.push_back(row.jAngB);
        rhs.push_back(row.rhs);
        cfm.push_back(row.cfm);
        lo.push_back(row.lo);
        hi.push_back(row.hi);
        lambda.push_back(row.lambda);
        mu.push_back(row.mu);
        normalRow.push_back(row.normalRow);
        joint.push_back(row.joint);
    }

    /** Gather row `i` back into the AoS view. */
    ConstraintRow
    operator[](std::size_t i) const
    {
        ConstraintRow row;
        row.jLinA = jLinA[i];
        row.jAngA = jAngA[i];
        row.jLinB = jLinB[i];
        row.jAngB = jAngB[i];
        row.rhs = rhs[i];
        row.cfm = cfm[i];
        row.lo = lo[i];
        row.hi = hi[i];
        row.lambda = lambda[i];
        row.mu = mu[i];
        row.normalRow = normalRow[i];
        row.joint = joint[i];
        return row;
    }

    std::size_t size() const { return rhs.size(); }
    bool empty() const { return rhs.empty(); }

    void
    clear()
    {
        jLinA.clear();
        jAngA.clear();
        jLinB.clear();
        jAngB.clear();
        rhs.clear();
        cfm.clear();
        lo.clear();
        hi.clear();
        lambda.clear();
        mu.clear();
        normalRow.clear();
        joint.clear();
    }

    void
    reserve(std::size_t n)
    {
        jLinA.reserve(n);
        jAngA.reserve(n);
        jLinB.reserve(n);
        jAngB.reserve(n);
        rhs.reserve(n);
        cfm.reserve(n);
        lo.reserve(n);
        hi.reserve(n);
        lambda.reserve(n);
        mu.reserve(n);
        normalRow.reserve(n);
        joint.reserve(n);
    }

    // Field arrays, all size() long. Public: the solver's inner loop
    // indexes them directly, which is the point of the layout.
    std::vector<Vec3> jLinA, jAngA, jLinB, jAngB;
    std::vector<Real> rhs, cfm, lo, hi, lambda, mu;
    std::vector<int> normalRow;
    std::vector<JointId> joint;
};

/** Abstract joint. bodyB may be null, meaning the static world. */
class Joint
{
  public:
    Joint(JointId id, RigidBody *body_a, RigidBody *body_b);
    virtual ~Joint() = default;

    JointId id() const { return id_; }
    RigidBody *bodyA() const { return bodyA_; }
    RigidBody *bodyB() const { return bodyB_; }

    virtual JointType type() const = 0;

    /** Number of constraint rows (degrees of freedom removed). */
    virtual int numRows() const = 0;

    /** Append this joint's rows to the island's row list. */
    virtual void buildRows(const SolverParams &params,
                           RowBuffer &out) = 0;

    /**
     * Receive the solved impulses for this joint's rows (in the
     * order buildRows emitted them). Used by contacts to persist
     * impulses for warm starting; default is a no-op.
     */
    virtual void
    onSolved(const Real *lambdas, int count)
    {
        (void)lambdas;
        (void)count;
    }

    /**
     * Breakable joints (Table 2): the joint breaks when the applied
     * load exceeds the threshold, either instantaneously or by
     * accumulation across steps.
     */
    bool breakable() const { return breakForce_ > 0.0; }
    void setBreakForce(Real threshold) { breakForce_ = threshold; }
    Real breakForce() const { return breakForce_; }
    bool broken() const { return broken_; }

    /**
     * Feed back the impulse magnitude applied by the solver this
     * step; updates accumulated load and the broken flag.
     *
     * @param impulse Total constraint impulse magnitude (N*s).
     * @param dt Step length used to convert impulse to force.
     */
    void recordAppliedImpulse(Real impulse, Real dt);

    /** Force magnitude applied in the most recent step (N). */
    Real lastAppliedForce() const { return lastForce_; }

    /** Accumulated applied load across steps (N, decaying). */
    Real accumulatedForce() const { return accumForce_; }

    /** Restore exact break bookkeeping (snapshot replay). */
    void
    restoreBreakState(bool broken, Real last_force, Real accum_force)
    {
        broken_ = broken;
        lastForce_ = last_force;
        accumForce_ = accum_force;
    }

  private:
    JointId id_;
    RigidBody *bodyA_;
    RigidBody *bodyB_;
    Real breakForce_ = 0.0;
    Real lastForce_ = 0.0;
    Real accumForce_ = 0.0;
    bool broken_ = false;
};

} // namespace parallax

#endif // PARALLAX_PHYSICS_JOINTS_JOINT_HH
