#include "assembler.hh"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "sim/logging.hh"

namespace parallax
{

namespace
{

const std::map<std::string, Opcode> &
mnemonicTable()
{
    static const std::map<std::string, Opcode> table = {
        {"add", Opcode::Add},     {"sub", Opcode::Sub},
        {"mul", Opcode::Mul},     {"and", Opcode::And},
        {"or", Opcode::Or},       {"xor", Opcode::Xor},
        {"sll", Opcode::Sll},     {"srl", Opcode::Srl},
        {"addi", Opcode::Addi},   {"slti", Opcode::Slti},
        {"li", Opcode::Li},       {"lfi", Opcode::Lfi},
        {"fadd", Opcode::Fadd},   {"fsub", Opcode::Fsub},
        {"fmul", Opcode::Fmul},   {"fdiv", Opcode::Fdiv},
        {"fsqrt", Opcode::Fsqrt}, {"fneg", Opcode::Fneg},
        {"fabs", Opcode::Fabs},   {"fmov", Opcode::Fmov},
        {"fmin", Opcode::Fmin},   {"fmax", Opcode::Fmax},
        {"fclt", Opcode::Fclt},   {"fcle", Opcode::Fcle},
        {"fceq", Opcode::Fceq},   {"lw", Opcode::Lw},
        {"sw", Opcode::Sw},       {"lf", Opcode::Lf},
        {"sf", Opcode::Sf},       {"beq", Opcode::Beq},
        {"bne", Opcode::Bne},     {"blt", Opcode::Blt},
        {"bge", Opcode::Bge},     {"jmp", Opcode::Jmp},
        {"call", Opcode::Call},   {"ret", Opcode::Ret},
        {"halt", Opcode::Halt},   {"nop", Opcode::Nop},
    };
    return table;
}

struct Token
{
    std::string text;
};

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::string current;
    for (char c : line) {
        if (c == '#')
            break;
        if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
            if (!current.empty()) {
                tokens.push_back(current);
                current.clear();
            }
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty())
        tokens.push_back(current);
    return tokens;
}

bool
parseReg(const std::string &tok, char prefix, int &out)
{
    if (tok.size() < 2 || tok[0] != prefix)
        return false;
    int value = 0;
    for (std::size_t i = 1; i < tok.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(tok[i])))
            return false;
        value = value * 10 + (tok[i] - '0');
    }
    if (value >= numIntRegs)
        return false;
    out = value;
    return true;
}

int
intReg(const std::string &tok, int line_no)
{
    int r = 0;
    if (!parseReg(tok, 'r', r))
        fatal("line %d: expected integer register, got '%s'",
              line_no, tok.c_str());
    return r;
}

int
fpReg(const std::string &tok, int line_no)
{
    int r = 0;
    if (!parseReg(tok, 'f', r))
        fatal("line %d: expected FP register, got '%s'", line_no,
              tok.c_str());
    return r;
}

/** Parse "offset(rN)" into offset and register. */
void
parseMemOperand(const std::string &tok, int line_no,
                std::int64_t &offset, int &base)
{
    const auto open = tok.find('(');
    const auto close = tok.find(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
        fatal("line %d: expected offset(reg), got '%s'", line_no,
              tok.c_str());
    }
    offset = std::stoll(tok.substr(0, open));
    base = intReg(tok.substr(open + 1, close - open - 1), line_no);
}

} // namespace

Program
assemble(const std::string &source)
{
    Program program;

    // Pass 1: labels.
    {
        std::istringstream in(source);
        std::string line;
        std::int64_t address = 0;
        int line_no = 0;
        while (std::getline(in, line)) {
            ++line_no;
            auto tokens = tokenize(line);
            if (tokens.empty())
                continue;
            std::size_t start = 0;
            if (tokens[0].back() == ':') {
                program.defineLabel(
                    tokens[0].substr(0, tokens[0].size() - 1),
                    address);
                start = 1;
            }
            if (start < tokens.size())
                ++address;
        }
    }

    // Pass 2: encode.
    std::istringstream in(source);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        auto tokens = tokenize(line);
        if (tokens.empty())
            continue;
        std::size_t i = 0;
        if (tokens[0].back() == ':')
            i = 1;
        if (i >= tokens.size())
            continue;

        const auto it = mnemonicTable().find(tokens[i]);
        if (it == mnemonicTable().end())
            fatal("line %d: unknown mnemonic '%s'", line_no,
                  tokens[i].c_str());
        const Opcode op = it->second;
        auto operand = [&](std::size_t k) -> const std::string & {
            if (i + k >= tokens.size())
                fatal("line %d: missing operand %zu", line_no, k);
            return tokens[i + k];
        };
        auto target = [&](const std::string &name) {
            const std::int64_t addr = program.label(name);
            if (addr < 0)
                fatal("line %d: unknown label '%s'", line_no,
                      name.c_str());
            return addr;
        };

        Instruction inst;
        inst.op = op;
        switch (op) {
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::Mul:
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor:
          case Opcode::Sll:
          case Opcode::Srl:
            inst.rd = intReg(operand(1), line_no);
            inst.ra = intReg(operand(2), line_no);
            inst.rb = intReg(operand(3), line_no);
            break;
          case Opcode::Addi:
          case Opcode::Slti:
            inst.rd = intReg(operand(1), line_no);
            inst.ra = intReg(operand(2), line_no);
            inst.imm = std::stoll(operand(3));
            break;
          case Opcode::Li:
            inst.rd = intReg(operand(1), line_no);
            inst.imm = std::stoll(operand(2));
            break;
          case Opcode::Lfi:
            inst.rd = fpReg(operand(1), line_no);
            inst.fimm = std::stod(operand(2));
            break;
          case Opcode::Fadd:
          case Opcode::Fsub:
          case Opcode::Fmul:
          case Opcode::Fdiv:
          case Opcode::Fmin:
          case Opcode::Fmax:
            inst.rd = fpReg(operand(1), line_no);
            inst.ra = fpReg(operand(2), line_no);
            inst.rb = fpReg(operand(3), line_no);
            break;
          case Opcode::Fsqrt:
          case Opcode::Fneg:
          case Opcode::Fabs:
          case Opcode::Fmov:
            inst.rd = fpReg(operand(1), line_no);
            inst.ra = fpReg(operand(2), line_no);
            break;
          case Opcode::Fclt:
          case Opcode::Fcle:
          case Opcode::Fceq:
            inst.rd = intReg(operand(1), line_no);
            inst.ra = fpReg(operand(2), line_no);
            inst.rb = fpReg(operand(3), line_no);
            break;
          case Opcode::Lw:
            inst.rd = intReg(operand(1), line_no);
            parseMemOperand(operand(2), line_no, inst.imm, inst.ra);
            break;
          case Opcode::Sw:
            inst.rd = intReg(operand(1), line_no); // Value source.
            parseMemOperand(operand(2), line_no, inst.imm, inst.ra);
            break;
          case Opcode::Lf:
            inst.rd = fpReg(operand(1), line_no);
            parseMemOperand(operand(2), line_no, inst.imm, inst.ra);
            break;
          case Opcode::Sf:
            inst.rd = fpReg(operand(1), line_no); // Value source.
            parseMemOperand(operand(2), line_no, inst.imm, inst.ra);
            break;
          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Blt:
          case Opcode::Bge:
            inst.ra = intReg(operand(1), line_no);
            inst.rb = intReg(operand(2), line_no);
            inst.imm = target(operand(3));
            break;
          case Opcode::Jmp:
          case Opcode::Call:
            inst.imm = target(operand(1));
            break;
          case Opcode::Ret:
          case Opcode::Halt:
          case Opcode::Nop:
            break;
        }
        program.append(inst);
    }
    return program;
}

} // namespace parallax
