#include "isa.hh"

namespace parallax
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Sll: return "sll";
      case Opcode::Srl: return "srl";
      case Opcode::Addi: return "addi";
      case Opcode::Slti: return "slti";
      case Opcode::Li: return "li";
      case Opcode::Lfi: return "lfi";
      case Opcode::Fadd: return "fadd";
      case Opcode::Fsub: return "fsub";
      case Opcode::Fmul: return "fmul";
      case Opcode::Fdiv: return "fdiv";
      case Opcode::Fsqrt: return "fsqrt";
      case Opcode::Fneg: return "fneg";
      case Opcode::Fabs: return "fabs";
      case Opcode::Fmov: return "fmov";
      case Opcode::Fmin: return "fmin";
      case Opcode::Fmax: return "fmax";
      case Opcode::Fclt: return "fclt";
      case Opcode::Fcle: return "fcle";
      case Opcode::Fceq: return "fceq";
      case Opcode::Lw: return "lw";
      case Opcode::Sw: return "sw";
      case Opcode::Lf: return "lf";
      case Opcode::Sf: return "sf";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Jmp: return "jmp";
      case Opcode::Call: return "call";
      case Opcode::Ret: return "ret";
      case Opcode::Halt: return "halt";
      case Opcode::Nop: return "nop";
    }
    return "?";
}

bool
isBranch(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Jmp:
      case Opcode::Call:
      case Opcode::Ret:
        return true;
      default:
        return false;
    }
}

bool
isConditionalBranch(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        return true;
      default:
        return false;
    }
}

bool
isMemory(Opcode op)
{
    switch (op) {
      case Opcode::Lw:
      case Opcode::Sw:
      case Opcode::Lf:
      case Opcode::Sf:
        return true;
      default:
        return false;
    }
}

bool
isLoad(Opcode op)
{
    return op == Opcode::Lw || op == Opcode::Lf;
}

bool
writesFp(Opcode op)
{
    switch (op) {
      case Opcode::Fadd:
      case Opcode::Fsub:
      case Opcode::Fmul:
      case Opcode::Fdiv:
      case Opcode::Fsqrt:
      case Opcode::Fneg:
      case Opcode::Fabs:
      case Opcode::Fmov:
      case Opcode::Fmin:
      case Opcode::Fmax:
      case Opcode::Lf:
      case Opcode::Lfi:
        return true;
      default:
        return false;
    }
}

int
opLatency(Opcode op)
{
    switch (op) {
      case Opcode::Mul:
        return 3;
      case Opcode::Fadd:
      case Opcode::Fsub:
      case Opcode::Fmin:
      case Opcode::Fmax:
        return 3;
      case Opcode::Fmul:
        return 4;
      case Opcode::Fdiv:
        return 12;
      case Opcode::Fsqrt:
        return 15;
      case Opcode::Fclt:
      case Opcode::Fcle:
      case Opcode::Fceq:
        return 2;
      case Opcode::Lw:
      case Opcode::Lf:
        return 2; // Single-cycle local memory + address generation.
      default:
        return 1;
    }
}

OpClass
opcodeClass(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Sll:
      case Opcode::Srl:
      case Opcode::Addi:
      case Opcode::Slti:
      case Opcode::Li:
        return OpClass::IntAlu;
      case Opcode::Lfi:
        return OpClass::FloatAdd;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Jmp:
      case Opcode::Call:
      case Opcode::Ret:
        return OpClass::Branch;
      case Opcode::Fadd:
      case Opcode::Fsub:
      case Opcode::Fmin:
      case Opcode::Fmax:
      case Opcode::Fneg:
      case Opcode::Fabs:
      case Opcode::Fmov:
      case Opcode::Fclt:
      case Opcode::Fcle:
      case Opcode::Fceq:
        return OpClass::FloatAdd;
      case Opcode::Fmul:
        return OpClass::FloatMult;
      case Opcode::Lw:
      case Opcode::Lf:
        return OpClass::RdPort;
      case Opcode::Sw:
      case Opcode::Sf:
        return OpClass::WrPort;
      case Opcode::Fdiv:
      case Opcode::Fsqrt:
      case Opcode::Halt:
      case Opcode::Nop:
        return OpClass::Other;
    }
    return OpClass::Other;
}

} // namespace parallax
