#include "program.hh"

namespace parallax
{

std::int64_t
Program::label(const std::string &name) const
{
    auto it = labels_.find(name);
    return it == labels_.end() ? -1 : it->second;
}

OpVector
Program::staticMix() const
{
    OpVector mix;
    for (const Instruction &inst : instructions_) {
        if (inst.op == Opcode::Nop)
            continue; // NOPs are filtered from the paper's mixes.
        mix[opcodeClass(inst.op)] += 1.0;
    }
    return mix;
}

} // namespace parallax
