#include "kernels.hh"

#include <cmath>
#include <map>
#include <sstream>

#include "assembler.hh"
#include "sim/logging.hh"

namespace parallax
{

const char *
kernelName(KernelId id)
{
    switch (id) {
      case KernelId::Narrowphase: return "narrowphase";
      case KernelId::IslandProcessing: return "island";
      case KernelId::Cloth: return "cloth";
    }
    return "?";
}

int
kernelPaperStaticSize(KernelId id)
{
    switch (id) {
      case KernelId::Narrowphase: return 277;
      case KernelId::IslandProcessing: return 177;
      case KernelId::Cloth: return 221;
    }
    return 0;
}

std::int64_t
kernelTaskStride(KernelId)
{
    return 512;
}

namespace
{

/** printf-style line emitter for assembly generation. */
class Emitter
{
  public:
    template <typename... Args>
    void
    line(const char *fmt, Args &&...args)
    {
        out_ << detail::format(fmt, std::forward<Args>(args)...)
             << '\n';
    }

    std::string str() const { return out_.str(); }

  private:
    std::ostringstream out_;
};

/**
 * Narrowphase kernel: one object-pair test. Sphere A against a
 * sphere, oriented box, or capsule B; emits a full contact record
 * (normal, position, depth, friction basis, restitution bias).
 * Heavy on data-dependent branches, as the paper observes.
 */
std::string
narrowphaseSource()
{
    Emitter e;
    e.line("    lw   r3, 0(r0)");
    e.line("    li   r2, 64");
    e.line("    li   r4, 512");
    e.line("    li   r1, 0");
    e.line("loop:");
    e.line("    bge  r1, r3, done");
    e.line("    lw   r10, 0(r2)");
    // posA -> f0..f2, ra -> f3, posB -> f4..f6.
    e.line("    lf   f0, 8(r2)");
    e.line("    lf   f1, 16(r2)");
    e.line("    lf   f2, 24(r2)");
    e.line("    lf   f3, 32(r2)");
    e.line("    lf   f4, 40(r2)");
    e.line("    lf   f5, 48(r2)");
    e.line("    lf   f6, 56(r2)");
    e.line("    li   r11, 1");
    e.line("    beq  r10, r11, boxpath");
    e.line("    li   r11, 2");
    e.line("    beq  r10, r11, cappath");
    e.line("    lf   f7, 64(r2)");
    e.line("    jmp  spherecore");

    // --- Capsule path: closest point on segment [B, B2] to A,
    // then fall into the sphere core with that point as center.
    e.line("cappath:");
    e.line("    lf   f7, 96(r2)");
    e.line("    lf   f8, 104(r2)");
    e.line("    lf   f9, 112(r2)");
    e.line("    fsub f10, f7, f4"); // ab
    e.line("    fsub f11, f8, f5");
    e.line("    fsub f12, f9, f6");
    e.line("    fsub f13, f0, f4"); // am
    e.line("    fsub f14, f1, f5");
    e.line("    fsub f15, f2, f6");
    e.line("    fmul f16, f10, f10");
    e.line("    fmul f17, f11, f11");
    e.line("    fadd f16, f16, f17");
    e.line("    fmul f17, f12, f12");
    e.line("    fadd f16, f16, f17"); // ab2
    e.line("    fmul f17, f13, f10");
    e.line("    fmul f18, f14, f11");
    e.line("    fadd f17, f17, f18");
    e.line("    fmul f18, f15, f12");
    e.line("    fadd f17, f17, f18"); // dot(am, ab)
    e.line("    fdiv f17, f17, f16"); // t
    e.line("    lfi  f18, 0.0");
    e.line("    fmax f17, f17, f18");
    e.line("    lfi  f18, 1.0");
    e.line("    fmin f17, f17, f18");
    e.line("    fmul f10, f10, f17"); // center = B + ab*t
    e.line("    fadd f4, f4, f10");
    e.line("    fmul f11, f11, f17");
    e.line("    fadd f5, f5, f11");
    e.line("    fmul f12, f12, f17");
    e.line("    fadd f6, f6, f12");
    e.line("    lf   f7, 64(r2)");

    // --- Sphere core: A(f0..f2, f3) vs sphere(f4..f6, f7).
    // Leaves depth f17, normal f18..f20, contact pos f22..f24.
    e.line("spherecore:");
    e.line("    fsub f8, f0, f4");
    e.line("    fsub f9, f1, f5");
    e.line("    fsub f10, f2, f6");
    e.line("    fmul f11, f8, f8");
    e.line("    fmul f12, f9, f9");
    e.line("    fmul f13, f10, f10");
    e.line("    fadd f11, f11, f12");
    e.line("    fadd f11, f11, f13"); // dist2
    e.line("    fadd f14, f3, f7");   // rsum
    e.line("    fmul f15, f14, f14");
    e.line("    fclt r12, f15, f11");
    e.line("    bne  r12, r0, nohit");
    e.line("    lfi  f16, 1e-12");
    e.line("    fclt r12, f11, f16");
    e.line("    bne  r12, r0, degen");
    e.line("    fsqrt f15, f11");     // dist
    e.line("    fsub f17, f14, f15"); // depth
    e.line("    fdiv f18, f8, f15");
    e.line("    fdiv f19, f9, f15");
    e.line("    fdiv f20, f10, f15");
    e.line("    lfi  f21, 0.5");
    e.line("    fmul f21, f17, f21");
    e.line("    fsub f21, f7, f21"); // rb - depth/2
    e.line("    fmul f22, f18, f21");
    e.line("    fadd f22, f4, f22");
    e.line("    fmul f23, f19, f21");
    e.line("    fadd f23, f5, f23");
    e.line("    fmul f24, f20, f21");
    e.line("    fadd f24, f6, f24");
    e.line("    jmp  writehit");

    // --- Oriented box path. Rotation R (rows in f25 reload per
    // element), rel' = R^T (A - B), clamp to half extents with
    // branches, distance in local frame, normal rotated back.
    e.line("boxpath:");
    e.line("    fsub f8, f0, f4");  // rel world
    e.line("    fsub f9, f1, f5");
    e.line("    fsub f10, f2, f6");
    // Local rel: f11..f13 = R^T * rel (columns of R^T are rows of R).
    for (int axis = 0; axis < 3; ++axis) {
        // rel_local[axis] = R[0][axis]*relx + R[1][axis]*rely + ...
        e.line("    lf   f14, %d(r2)", 120 + 0 * 24 + axis * 8);
        e.line("    fmul f%d, f14, f8", 11 + axis);
        e.line("    lf   f14, %d(r2)", 120 + 1 * 24 + axis * 8);
        e.line("    fmul f14, f14, f9");
        e.line("    fadd f%d, f%d, f14", 11 + axis, 11 + axis);
        e.line("    lf   f14, %d(r2)", 120 + 2 * 24 + axis * 8);
        e.line("    fmul f14, f14, f10");
        e.line("    fadd f%d, f%d, f14", 11 + axis, 11 + axis);
    }
    // Clamp each local component into f15..f17 with branches.
    for (int axis = 0; axis < 3; ++axis) {
        const int src = 11 + axis;
        const int dst = 15 + axis;
        e.line("    lf   f21, %d(r2)", 72 + axis * 8); // half
        e.line("    fmov f%d, f%d", dst, src);
        e.line("    fclt r12, f21, f%d", dst);
        e.line("    beq  r12, r0, bclo%d", axis);
        e.line("    fmov f%d, f21", dst);
        e.line("bclo%d:", axis);
        e.line("    fneg f21, f21");
        e.line("    fclt r12, f%d, f21", dst);
        e.line("    beq  r12, r0, bchi%d", axis);
        e.line("    fmov f%d, f21", dst);
        e.line("bchi%d:", axis);
    }
    // d_local = rel_local - clamped -> f11..f13 (overwrite).
    e.line("    fsub f11, f11, f15");
    e.line("    fsub f12, f12, f16");
    e.line("    fsub f13, f13, f17");
    e.line("    fmul f18, f11, f11");
    e.line("    fmul f19, f12, f12");
    e.line("    fadd f18, f18, f19");
    e.line("    fmul f19, f13, f13");
    e.line("    fadd f18, f18, f19"); // dist2
    e.line("    fmul f19, f3, f3");   // ra^2
    e.line("    fclt r12, f19, f18");
    e.line("    bne  r12, r0, nohit");
    e.line("    lfi  f19, 1e-12");
    e.line("    fclt r12, f18, f19");
    e.line("    bne  r12, r0, degen");
    e.line("    fsqrt f21, f18"); // dist
    e.line("    fsub f14, f3, f21"); // depth
    e.line("    fdiv f11, f11, f21"); // n_local
    e.line("    fdiv f12, f12, f21");
    e.line("    fdiv f13, f13, f21");
    // n_world = R * n_local -> f18..f20; pos = B + R*clamped.
    for (int row = 0; row < 3; ++row) {
        e.line("    lf   f21, %d(r2)", 120 + row * 24 + 0);
        e.line("    fmul f%d, f21, f11", 18 + row);
        e.line("    lf   f21, %d(r2)", 120 + row * 24 + 8);
        e.line("    fmul f21, f21, f12");
        e.line("    fadd f%d, f%d, f21", 18 + row, 18 + row);
        e.line("    lf   f21, %d(r2)", 120 + row * 24 + 16);
        e.line("    fmul f21, f21, f13");
        e.line("    fadd f%d, f%d, f21", 18 + row, 18 + row);
    }
    for (int row = 0; row < 3; ++row) {
        e.line("    lf   f21, %d(r2)", 120 + row * 24 + 0);
        e.line("    fmul f%d, f21, f15", 22 + row);
        e.line("    lf   f21, %d(r2)", 120 + row * 24 + 8);
        e.line("    fmul f21, f21, f16");
        e.line("    fadd f%d, f%d, f21", 22 + row, 22 + row);
        e.line("    lf   f21, %d(r2)", 120 + row * 24 + 16);
        e.line("    fmul f21, f21, f17");
        e.line("    fadd f%d, f%d, f21", 22 + row, 22 + row);
        e.line("    fadd f%d, f%d, f%d", 22 + row, 22 + row,
               4 + row);
    }
    e.line("    fmov f17, f14"); // depth into the common register.
    e.line("    jmp  writehit");

    // --- Contact record emission: depth, normal, position, a
    // tangent basis, and a restitution bias from the relative
    // velocity along the normal.
    e.line("writehit:");
    e.line("    li   r12, 1");
    e.line("    sw   r12, 240(r2)");
    e.line("    sf   f17, 248(r2)");
    e.line("    sf   f18, 256(r2)");
    e.line("    sf   f19, 264(r2)");
    e.line("    sf   f20, 272(r2)");
    e.line("    sf   f22, 280(r2)");
    e.line("    sf   f23, 288(r2)");
    e.line("    sf   f24, 296(r2)");
    // Tangent t1: if |nx| > 0.7071 use (ny, -nx, 0) else (0, nz, -ny),
    // normalized.
    e.line("    fabs f0, f18");
    e.line("    lfi  f1, 0.7071");
    e.line("    fclt r12, f1, f0");
    e.line("    beq  r12, r0, tangelse");
    e.line("    fmov f2, f19");
    e.line("    fneg f3, f18");
    e.line("    lfi  f4, 0.0");
    e.line("    jmp  tangnorm");
    e.line("tangelse:");
    e.line("    lfi  f2, 0.0");
    e.line("    fmov f3, f20");
    e.line("    fneg f4, f19");
    e.line("tangnorm:");
    e.line("    fmul f5, f2, f2");
    e.line("    fmul f6, f3, f3");
    e.line("    fadd f5, f5, f6");
    e.line("    fmul f6, f4, f4");
    e.line("    fadd f5, f5, f6");
    e.line("    fsqrt f5, f5");
    e.line("    fdiv f2, f2, f5");
    e.line("    fdiv f3, f3, f5");
    e.line("    fdiv f4, f4, f5");
    e.line("    sf   f2, 304(r2)");
    e.line("    sf   f3, 312(r2)");
    e.line("    sf   f4, 320(r2)");
    // t2 = n x t1.
    e.line("    fmul f5, f19, f4");
    e.line("    fmul f6, f20, f3");
    e.line("    fsub f5, f5, f6");
    e.line("    fmul f6, f20, f2");
    e.line("    fmul f7, f18, f4");
    e.line("    fsub f6, f6, f7");
    e.line("    fmul f7, f18, f3");
    e.line("    fmul f8, f19, f2");
    e.line("    fsub f7, f7, f8");
    e.line("    sf   f5, 328(r2)");
    e.line("    sf   f6, 336(r2)");
    e.line("    sf   f7, 344(r2)");
    // Restitution bias: vn = (velA - velB) . n; if vn < -0.5 then
    // bias = -0.3 * vn else 0.
    e.line("    lf   f8, 192(r2)");
    e.line("    lf   f9, 216(r2)");
    e.line("    fsub f8, f8, f9");
    e.line("    fmul f8, f8, f18");
    e.line("    lf   f9, 200(r2)");
    e.line("    lf   f10, 224(r2)");
    e.line("    fsub f9, f9, f10");
    e.line("    fmul f9, f9, f19");
    e.line("    fadd f8, f8, f9");
    e.line("    lf   f9, 208(r2)");
    e.line("    lf   f10, 232(r2)");
    e.line("    fsub f9, f9, f10");
    e.line("    fmul f9, f9, f20");
    e.line("    fadd f8, f8, f9"); // vn
    e.line("    lfi  f9, -0.5");
    e.line("    fclt r12, f8, f9");
    e.line("    lfi  f10, 0.0");
    e.line("    beq  r12, r0, biasdone");
    e.line("    lfi  f10, -0.3");
    e.line("    fmul f10, f10, f8");
    e.line("biasdone:");
    e.line("    sf   f10, 352(r2)");
    e.line("    jmp  next");
    e.line("nohit:");
    e.line("    sw   r0, 240(r2)");
    e.line("    jmp  next");
    e.line("degen:");
    e.line("    li   r12, 2");
    e.line("    sw   r12, 240(r2)");
    e.line("next:");
    e.line("    addi r1, r1, 1");
    e.line("    add  r2, r2, r4");
    e.line("    jmp  loop");
    e.line("done:");
    e.line("    halt");
    return e.str();
}

/**
 * Island-processing kernel: one LCP row relaxation (the inner
 * iteration of the constraint solver). FP dominant with high ILP
 * from the 12-wide Jacobian dot products.
 */
std::string
islandSource()
{
    Emitter e;
    e.line("    lw   r3, 0(r0)");
    e.line("    li   r2, 64");
    e.line("    li   r4, 512");
    e.line("    li   r1, 0");
    e.line("loop:");
    e.line("    bge  r1, r3, done");
    // J[12] -> f0..f11, vel[12] -> f12..f23.
    for (int k = 0; k < 12; ++k)
        e.line("    lf   f%d, %d(r2)", k, k * 8);
    for (int k = 0; k < 12; ++k)
        e.line("    lf   f%d, %d(r2)", 12 + k, 256 + k * 8);
    // Products in place (tree reduction for ILP).
    for (int k = 0; k < 12; ++k)
        e.line("    fmul f%d, f%d, f%d", k, k, 12 + k);
    e.line("    fadd f0, f0, f1");
    e.line("    fadd f2, f2, f3");
    e.line("    fadd f4, f4, f5");
    e.line("    fadd f6, f6, f7");
    e.line("    fadd f8, f8, f9");
    e.line("    fadd f10, f10, f11");
    e.line("    fadd f0, f0, f2");
    e.line("    fadd f4, f4, f6");
    e.line("    fadd f8, f8, f10");
    e.line("    fadd f0, f0, f4");
    e.line("    fadd f0, f0, f8"); // jv
    // Friction bound: if mu > 0, lo/hi = -/+ mu * normalLambda.
    e.line("    lf   f24, 104(r2)"); // lo
    e.line("    lf   f25, 112(r2)"); // hi
    e.line("    lf   f26, 160(r2)"); // mu
    e.line("    lfi  f27, 0.0");
    e.line("    fcle r12, f26, f27");
    e.line("    bne  r12, r0, nofric");
    e.line("    lf   f27, 168(r2)"); // normal lambda
    e.line("    fmul f25, f26, f27");
    e.line("    fneg f24, f25");
    e.line("nofric:");
    // Baumgarte bias: rhs_eff = rhs + min(depth * erp/dt, 10).
    e.line("    lf   f26, 96(r2)");  // rhs
    e.line("    lf   f27, 184(r2)"); // depth
    e.line("    lf   f28, 192(r2)"); // erp/dt
    e.line("    fmul f27, f27, f28");
    e.line("    lfi  f28, 10.0");
    e.line("    fmin f27, f27, f28");
    e.line("    fadd f26, f26, f27");
    // delta = (rhs_eff - jv - cfm*lambda) * invDiag.
    e.line("    lf   f27, 136(r2)"); // cfm
    e.line("    lf   f28, 120(r2)"); // lambda
    e.line("    fmul f29, f27, f28");
    e.line("    fsub f26, f26, f0");
    e.line("    fsub f26, f26, f29");
    e.line("    lf   f27, 128(r2)"); // invDiag
    e.line("    fmul f26, f26, f27");
    e.line("    fadd f26, f28, f26");
    e.line("    fmax f26, f26, f24");
    e.line("    fmin f26, f26, f25"); // new lambda
    e.line("    fsub f29, f26, f28"); // dl
    e.line("    sf   f26, 120(r2)");
    // Applied-impulse accumulation for breakable joints.
    e.line("    lf   f27, 176(r2)");
    e.line("    fabs f28, f29");
    e.line("    fadd f27, f27, f28");
    e.line("    sf   f27, 176(r2)");
    // Per-body impulse scales: linear parts use the inverse mass,
    // angular parts the diagonalized inverse inertia.
    e.line("    lf   f24, 144(r2)"); // invMassA
    e.line("    lf   f25, 152(r2)"); // invMassB
    e.line("    fmul f24, f24, f29"); // dlA (linear)
    e.line("    fmul f25, f25, f29"); // dlB (linear)
    // vel[k] += J[k] * scale; J reloaded (registers were consumed
    // by the reduction).
    for (int k = 0; k < 12; ++k) {
        e.line("    lf   f28, %d(r2)", k * 8);
        if (k >= 3 && k < 6) {
            // Angular A: scale = dl * invInertiaA[k-3].
            e.line("    lf   f27, %d(r2)", 200 + (k - 3) * 8);
            e.line("    fmul f27, f27, f29");
            e.line("    fmul f28, f28, f27");
        } else if (k >= 9) {
            // Angular B: scale = dl * invInertiaB[k-9].
            e.line("    lf   f27, %d(r2)", 224 + (k - 9) * 8);
            e.line("    fmul f27, f27, f29");
            e.line("    fmul f28, f28, f27");
        } else {
            e.line("    fmul f28, f28, f%d", k < 6 ? 24 : 25);
        }
        e.line("    fadd f%d, f%d, f28", 12 + k, 12 + k);
    }
    for (int k = 0; k < 12; ++k)
        e.line("    sf   f%d, %d(r2)", 12 + k, 256 + k * 8);
    e.line("    addi r1, r1, 1");
    e.line("    add  r2, r2, r4");
    e.line("    jmp  loop");
    e.line("done:");
    e.line("    halt");
    return e.str();
}

/**
 * Cloth kernel: one vertex — Verlet integration, four distance
 * constraints, and projection out of two collider spheres. FP
 * dominant with sqrt/div chains (the paper notes cloth's integer
 * multiplies, FP divides and square roots).
 */
std::string
clothSource()
{
    Emitter e;
    e.line("    lw   r3, 0(r0)");
    e.line("    li   r2, 64");
    e.line("    li   r4, 512");
    e.line("    li   r1, 0");
    e.line("loop:");
    e.line("    bge  r1, r3, done");
    // pos f0..f2, prev f3..f5.
    for (int k = 0; k < 3; ++k)
        e.line("    lf   f%d, %d(r2)", k, k * 8);
    for (int k = 0; k < 3; ++k)
        e.line("    lf   f%d, %d(r2)", 3 + k, 24 + k * 8);
    e.line("    lf   f6, 48(r2)"); // damping
    e.line("    lf   f7, 56(r2)"); // g*dt^2 (y)
    // Verlet: new = pos + (pos - prev)*damping (+ gdt2 on y).
    for (int k = 0; k < 3; ++k) {
        e.line("    fsub f8, f%d, f%d", k, 3 + k);
        e.line("    fmul f8, f8, f6");
        e.line("    fmov f%d, f%d", 3 + k, k); // prev = pos
        e.line("    fadd f%d, f%d, f8", k, k);
    }
    e.line("    fadd f1, f1, f7");
    // Four distance constraints against fixed neighbours.
    for (int n = 0; n < 4; ++n) {
        const int base = 64 + n * 40;
        e.line("    lf   f9, %d(r2)", base + 32); // weight
        e.line("    lfi  f10, 0.0");
        e.line("    fcle r12, f9, f10");
        e.line("    bne  r12, r0, skipn%d", n);
        e.line("    lf   f10, %d(r2)", base + 0);
        e.line("    lf   f11, %d(r2)", base + 8);
        e.line("    lf   f12, %d(r2)", base + 16);
        e.line("    fsub f10, f10, f0"); // delta = n - pos
        e.line("    fsub f11, f11, f1");
        e.line("    fsub f12, f12, f2");
        e.line("    fmul f13, f10, f10");
        e.line("    fmul f14, f11, f11");
        e.line("    fadd f13, f13, f14");
        e.line("    fmul f14, f12, f12");
        e.line("    fadd f13, f13, f14");
        e.line("    fsqrt f13, f13"); // len
        e.line("    lfi  f14, 1e-9");
        e.line("    fclt r12, f13, f14");
        e.line("    bne  r12, r0, skipn%d", n);
        e.line("    lf   f14, %d(r2)", base + 24); // rest
        e.line("    fsub f14, f13, f14"); // len - rest
        e.line("    fdiv f14, f14, f13");
        e.line("    fmul f14, f14, f9"); // * weight
        e.line("    fmul f10, f10, f14");
        e.line("    fadd f0, f0, f10");
        e.line("    fmul f11, f11, f14");
        e.line("    fadd f1, f1, f11");
        e.line("    fmul f12, f12, f14");
        e.line("    fadd f2, f2, f12");
        e.line("skipn%d:", n);
    }
    // Two collider spheres: project the vertex out.
    for (int s = 0; s < 2; ++s) {
        const int base = 224 + s * 40;
        e.line("    lf   f9, %d(r2)", base + 32); // active
        e.line("    lfi  f10, 0.5");
        e.line("    fclt r12, f9, f10");
        e.line("    bne  r12, r0, skips%d", s);
        e.line("    lf   f10, %d(r2)", base + 0);
        e.line("    lf   f11, %d(r2)", base + 8);
        e.line("    lf   f12, %d(r2)", base + 16);
        e.line("    lf   f13, %d(r2)", base + 24); // radius
        e.line("    fsub f14, f0, f10"); // d = pos - center
        e.line("    fsub f15, f1, f11");
        e.line("    fsub f16, f2, f12");
        e.line("    fmul f17, f14, f14");
        e.line("    fmul f18, f15, f15");
        e.line("    fadd f17, f17, f18");
        e.line("    fmul f18, f16, f16");
        e.line("    fadd f17, f17, f18"); // dist2
        e.line("    fmul f18, f13, f13");
        e.line("    fcle r12, f18, f17"); // r^2 <= dist2: outside
        e.line("    bne  r12, r0, skips%d", s);
        e.line("    fsqrt f17, f17");
        e.line("    lfi  f18, 1e-9");
        e.line("    fclt r12, f17, f18");
        e.line("    bne  r12, r0, skips%d", s);
        e.line("    fdiv f14, f14, f17");
        e.line("    fdiv f15, f15, f17");
        e.line("    fdiv f16, f16, f17");
        e.line("    fmul f14, f14, f13"); // n * r
        e.line("    fadd f0, f10, f14");
        e.line("    fmul f15, f15, f13");
        e.line("    fadd f1, f11, f15");
        e.line("    fmul f16, f16, f13");
        e.line("    fadd f2, f12, f16");
        e.line("skips%d:", s);
    }
    // Store pos and prev.
    for (int k = 0; k < 3; ++k)
        e.line("    sf   f%d, %d(r2)", k, k * 8);
    for (int k = 0; k < 3; ++k)
        e.line("    sf   f%d, %d(r2)", 3 + k, 24 + k * 8);
    e.line("    addi r1, r1, 1");
    e.line("    add  r2, r2, r4");
    e.line("    jmp  loop");
    e.line("done:");
    e.line("    halt");
    return e.str();
}

} // namespace

std::string
kernelSource(KernelId id)
{
    switch (id) {
      case KernelId::Narrowphase: return narrowphaseSource();
      case KernelId::IslandProcessing: return islandSource();
      case KernelId::Cloth: return clothSource();
    }
    return "";
}

const Program &
kernelProgram(KernelId id)
{
    static std::map<KernelId, Program> cache;
    auto it = cache.find(id);
    if (it == cache.end())
        it = cache.emplace(id, assemble(kernelSource(id))).first;
    return it->second;
}

namespace
{

constexpr std::int64_t taskBase = 64;

double
vecAt(const Machine &m, std::int64_t addr, int k)
{
    return m.loadFp(addr + k * 8);
}

void
packNarrowphaseTask(Machine &m, std::int64_t base, int task,
                    int tasks, Rng &rng)
{
    // The CG core hands out pairs grouped by shape combination (the
    // engine's pair list is sorted), so the type-dispatch branches
    // run in long predictable runs; the contact hit/miss branches
    // remain genuinely data dependent.
    const int type = tasks > 0 ? (task * 3) / tasks : 0;
    m.storeInt(base + 0, type);
    double pos_a[3], pos_b[3];
    for (int k = 0; k < 3; ++k)
        pos_a[k] = rng.uniform(-1.0, 1.0);
    // Direction + distance chosen so roughly half the pairs hit.
    double dir[3];
    double len2 = 0;
    for (int k = 0; k < 3; ++k) {
        dir[k] = rng.uniform(-1.0, 1.0);
        len2 += dir[k] * dir[k];
    }
    const double len = std::sqrt(std::max(len2, 1e-6));
    const double dist = rng.uniform(0.4, 2.0);
    for (int k = 0; k < 3; ++k)
        pos_b[k] = pos_a[k] + dir[k] / len * dist;

    for (int k = 0; k < 3; ++k)
        m.storeFp(base + 8 + k * 8, pos_a[k]);
    m.storeFp(base + 32, rng.uniform(0.3, 0.9)); // ra
    for (int k = 0; k < 3; ++k)
        m.storeFp(base + 40 + k * 8, pos_b[k]);
    m.storeFp(base + 64, rng.uniform(0.3, 0.9)); // rb
    for (int k = 0; k < 3; ++k)
        m.storeFp(base + 72 + k * 8, rng.uniform(0.3, 0.8));
    // Capsule far end.
    for (int k = 0; k < 3; ++k) {
        m.storeFp(base + 96 + k * 8,
                  pos_b[k] + rng.uniform(-1.0, 1.0));
    }
    // Yaw rotation matrix for the box.
    const double theta = rng.uniform(0.0, 6.28);
    const double c = std::cos(theta), s = std::sin(theta);
    const double rot[3][3] = {{c, 0, s}, {0, 1, 0}, {-s, 0, c}};
    for (int r = 0; r < 3; ++r)
        for (int k = 0; k < 3; ++k)
            m.storeFp(base + 120 + r * 24 + k * 8, rot[r][k]);
    for (int k = 0; k < 3; ++k) {
        m.storeFp(base + 192 + k * 8, rng.uniform(-2.0, 2.0));
        m.storeFp(base + 216 + k * 8, rng.uniform(-2.0, 2.0));
    }
}

/** Reference semantics of one narrowphase task (mirrors the asm). */
struct NpRef
{
    int flag = 0;
    double depth = 0;
    double n[3] = {};
    double pos[3] = {};
};

NpRef
narrowphaseReference(const Machine &m, std::int64_t base)
{
    NpRef ref;
    const auto type = m.loadInt(base + 0);
    double a[3], b[3];
    for (int k = 0; k < 3; ++k) {
        a[k] = vecAt(m, base + 8, k);
        b[k] = vecAt(m, base + 40, k);
    }
    const double ra = m.loadFp(base + 32);

    auto sphereCore = [&](const double center[3], double r) {
        double d[3];
        double dist2 = 0;
        for (int k = 0; k < 3; ++k) {
            d[k] = a[k] - center[k];
            dist2 += d[k] * d[k];
        }
        const double rsum = ra + r;
        if (rsum * rsum < dist2) {
            ref.flag = 0;
            return;
        }
        if (dist2 < 1e-12) {
            ref.flag = 2;
            return;
        }
        ref.flag = 1;
        const double dist = std::sqrt(dist2);
        ref.depth = rsum - dist;
        const double scale = r - ref.depth * 0.5;
        for (int k = 0; k < 3; ++k) {
            ref.n[k] = d[k] / dist;
            ref.pos[k] = center[k] + ref.n[k] * scale;
        }
    };

    if (type == 0) {
        sphereCore(b, m.loadFp(base + 64));
    } else if (type == 2) {
        double b2[3], ab[3], am[3];
        double ab2 = 0, dot = 0;
        for (int k = 0; k < 3; ++k) {
            b2[k] = vecAt(m, base + 96, k);
            ab[k] = b2[k] - b[k];
            am[k] = a[k] - b[k];
            ab2 += ab[k] * ab[k];
            dot += am[k] * ab[k];
        }
        double t = dot / ab2;
        t = std::max(0.0, std::min(1.0, t));
        double closest[3];
        for (int k = 0; k < 3; ++k)
            closest[k] = b[k] + ab[k] * t;
        sphereCore(closest, m.loadFp(base + 64));
    } else {
        double rot[3][3], half[3], rel[3];
        for (int r = 0; r < 3; ++r)
            for (int k = 0; k < 3; ++k)
                rot[r][k] = m.loadFp(base + 120 + r * 24 + k * 8);
        for (int k = 0; k < 3; ++k) {
            half[k] = m.loadFp(base + 72 + k * 8);
            rel[k] = a[k] - b[k];
        }
        double local[3];
        for (int k = 0; k < 3; ++k) {
            local[k] = rot[0][k] * rel[0] + rot[1][k] * rel[1] +
                       rot[2][k] * rel[2];
        }
        double clamped[3];
        for (int k = 0; k < 3; ++k) {
            clamped[k] = local[k];
            if (half[k] < clamped[k])
                clamped[k] = half[k];
            if (clamped[k] < -half[k])
                clamped[k] = -half[k];
        }
        double d[3];
        double dist2 = 0;
        for (int k = 0; k < 3; ++k) {
            d[k] = local[k] - clamped[k];
            dist2 += d[k] * d[k];
        }
        if (ra * ra < dist2) {
            ref.flag = 0;
            return ref;
        }
        if (dist2 < 1e-12) {
            ref.flag = 2;
            return ref;
        }
        ref.flag = 1;
        const double dist = std::sqrt(dist2);
        ref.depth = ra - dist;
        double nl[3];
        for (int k = 0; k < 3; ++k)
            nl[k] = d[k] / dist;
        for (int r = 0; r < 3; ++r) {
            ref.n[r] = rot[r][0] * nl[0] + rot[r][1] * nl[1] +
                       rot[r][2] * nl[2];
            ref.pos[r] = b[r] + rot[r][0] * clamped[0] +
                         rot[r][1] * clamped[1] +
                         rot[r][2] * clamped[2];
        }
    }
    return ref;
}

void
packIslandTask(Machine &m, std::int64_t base, int task, Rng &rng)
{
    for (int k = 0; k < 12; ++k)
        m.storeFp(base + k * 8, rng.uniform(-1.0, 1.0)); // J
    // Rows arrive from the CG core in the solver's natural order:
    // one normal row followed by its two friction rows (a periodic,
    // hence predictable, pattern — unlike narrowphase's data-
    // dependent hits).
    const bool friction = (task % 3) != 0;
    m.storeFp(base + 96, rng.uniform(-1.0, 1.0)); // rhs
    m.storeFp(base + 104, 0.0);                   // lo
    m.storeFp(base + 112, friction ? 0.0 : 1e9);  // hi
    m.storeFp(base + 120, rng.uniform(0.0, 0.5)); // lambda
    m.storeFp(base + 128, rng.uniform(0.1, 1.0)); // invDiag
    m.storeFp(base + 136, 1e-9);                  // cfm
    m.storeFp(base + 144, rng.uniform(0.2, 2.0)); // invMassA
    m.storeFp(base + 152, rng.uniform(0.2, 2.0)); // invMassB
    m.storeFp(base + 160, friction ? 0.8 : 0.0);  // mu
    m.storeFp(base + 168, rng.uniform(0.0, 2.0)); // normal lambda
    m.storeFp(base + 176, 0.0);                   // accum
    m.storeFp(base + 184, rng.uniform(0.0, 0.05)); // depth
    m.storeFp(base + 192, 20.0);                   // erp/dt
    for (int k = 0; k < 3; ++k) {
        m.storeFp(base + 200 + k * 8, rng.uniform(0.2, 2.0));
        m.storeFp(base + 224 + k * 8, rng.uniform(0.2, 2.0));
    }
    for (int k = 0; k < 12; ++k)
        m.storeFp(base + 256 + k * 8, rng.uniform(-2.0, 2.0));
}

struct IslandRef
{
    double lambda = 0;
    double vel[12] = {};
};

IslandRef
islandReference(const Machine &m, std::int64_t base)
{
    IslandRef ref;
    double jac[12], vel[12];
    for (int k = 0; k < 12; ++k) {
        jac[k] = m.loadFp(base + k * 8);
        vel[k] = m.loadFp(base + 256 + k * 8);
    }
    double jv = 0;
    for (int k = 0; k < 12; ++k)
        jv += jac[k] * vel[k];
    double lo = m.loadFp(base + 104);
    double hi = m.loadFp(base + 112);
    const double mu = m.loadFp(base + 160);
    if (mu > 0.0) {
        hi = mu * m.loadFp(base + 168);
        lo = -hi;
    }
    const double rhs = m.loadFp(base + 96) +
        std::min(m.loadFp(base + 184) * m.loadFp(base + 192), 10.0);
    const double lambda = m.loadFp(base + 120);
    const double delta =
        (rhs - jv - m.loadFp(base + 136) * lambda) *
        m.loadFp(base + 128);
    double nl = lambda + delta;
    nl = std::max(nl, lo);
    nl = std::min(nl, hi);
    const double dl = nl - lambda;
    ref.lambda = nl;
    const double dl_a = m.loadFp(base + 144) * dl;
    const double dl_b = m.loadFp(base + 152) * dl;
    for (int k = 0; k < 12; ++k) {
        double scale;
        if (k >= 3 && k < 6)
            scale = m.loadFp(base + 200 + (k - 3) * 8) * dl;
        else if (k >= 9)
            scale = m.loadFp(base + 224 + (k - 9) * 8) * dl;
        else
            scale = k < 6 ? dl_a : dl_b;
        ref.vel[k] = vel[k] + jac[k] * scale;
    }
    return ref;
}

void
packClothTask(Machine &m, std::int64_t base, int task, Rng &rng)
{
    for (int k = 0; k < 3; ++k) {
        const double p = rng.uniform(-1.0, 1.0);
        m.storeFp(base + k * 8, p);
        m.storeFp(base + 24 + k * 8,
                  p + rng.uniform(-0.01, 0.01)); // prev
    }
    m.storeFp(base + 48, 0.995);     // damping
    m.storeFp(base + 56, -0.000981); // g*dt^2
    for (int n = 0; n < 4; ++n) {
        const std::int64_t nb = base + 64 + n * 40;
        for (int k = 0; k < 3; ++k)
            m.storeFp(nb + k * 8, rng.uniform(-1.2, 1.2));
        m.storeFp(nb + 24, rng.uniform(0.05, 0.3)); // rest
        // Boundary vertices (every 8th in the mesh row order) lack
        // their upper neighbours: a periodic, learnable pattern.
        const bool missing = (task % 8) == 0 && n >= 2;
        m.storeFp(nb + 32, missing ? 0.0 : 0.5);
    }
    for (int s = 0; s < 2; ++s) {
        const std::int64_t sb = base + 224 + s * 40;
        for (int k = 0; k < 3; ++k)
            m.storeFp(sb + k * 8, rng.uniform(-1.0, 1.0));
        m.storeFp(sb + 24, rng.uniform(0.3, 0.8)); // radius
        // First collider alternates per task (CG-sorted contact
        // list); the second is sparse and data dependent.
        const bool active =
            s == 0 ? (task % 2) == 0 : rng.chance(0.3);
        m.storeFp(sb + 32, active ? 1.0 : 0.0);
    }
}

struct ClothRef
{
    double pos[3] = {};
    double prev[3] = {};
};

ClothRef
clothReference(const Machine &m, std::int64_t base)
{
    ClothRef ref;
    double pos[3], prev[3];
    for (int k = 0; k < 3; ++k) {
        pos[k] = m.loadFp(base + k * 8);
        prev[k] = m.loadFp(base + 24 + k * 8);
    }
    const double damping = m.loadFp(base + 48);
    const double gdt2 = m.loadFp(base + 56);
    for (int k = 0; k < 3; ++k) {
        const double vel = (pos[k] - prev[k]) * damping;
        ref.prev[k] = pos[k];
        pos[k] += vel;
    }
    pos[1] += gdt2;

    for (int n = 0; n < 4; ++n) {
        const std::int64_t nb = base + 64 + n * 40;
        const double weight = m.loadFp(nb + 32);
        if (weight <= 0.0)
            continue;
        double delta[3];
        double len2 = 0;
        for (int k = 0; k < 3; ++k) {
            delta[k] = m.loadFp(nb + k * 8) - pos[k];
            len2 += delta[k] * delta[k];
        }
        const double len = std::sqrt(len2);
        if (len < 1e-9)
            continue;
        const double diff =
            (len - m.loadFp(nb + 24)) / len * weight;
        for (int k = 0; k < 3; ++k)
            pos[k] += delta[k] * diff;
    }

    for (int s = 0; s < 2; ++s) {
        const std::int64_t sb = base + 224 + s * 40;
        if (m.loadFp(sb + 32) < 0.5)
            continue;
        double center[3], d[3];
        double dist2 = 0;
        for (int k = 0; k < 3; ++k) {
            center[k] = m.loadFp(sb + k * 8);
            d[k] = pos[k] - center[k];
            dist2 += d[k] * d[k];
        }
        const double r = m.loadFp(sb + 24);
        if (r * r <= dist2)
            continue;
        const double dist = std::sqrt(dist2);
        if (dist < 1e-9)
            continue;
        for (int k = 0; k < 3; ++k)
            pos[k] = center[k] + d[k] / dist * r;
    }
    for (int k = 0; k < 3; ++k)
        ref.pos[k] = pos[k];
    return ref;
}

bool
nearlyEqual(double a, double b)
{
    return std::fabs(a - b) <= 1e-9 * std::max(1.0, std::fabs(b));
}

} // namespace

void
packKernelInputs(KernelId id, Machine &machine, int tasks, Rng &rng)
{
    const std::int64_t stride = kernelTaskStride(id);
    const std::uint64_t needed =
        (taskBase + static_cast<std::uint64_t>(tasks) * stride) / 8;
    if (needed > machine.memoryCells())
        fatal("machine local memory too small for %d tasks", tasks);
    machine.storeInt(0, tasks);
    for (int i = 0; i < tasks; ++i) {
        const std::int64_t base = taskBase + i * stride;
        switch (id) {
          case KernelId::Narrowphase:
            packNarrowphaseTask(machine, base, i, tasks, rng);
            break;
          case KernelId::IslandProcessing:
            packIslandTask(machine, base, i, rng);
            break;
          case KernelId::Cloth:
            packClothTask(machine, base, i, rng);
            break;
        }
    }
}

int
verifyKernelOutputs(KernelId id, const Machine &machine, int tasks)
{
    // Recompute references from a pristine copy of the inputs: the
    // caller must pass a machine whose *inputs* are unchanged by the
    // kernel. Island and cloth kernels update their records in
    // place, so references are computed from fields the kernel does
    // not overwrite plus a replay of the reference math on a second
    // machine packed with the same seed. To keep the interface
    // simple, verification here re-derives expected outputs from the
    // current memory for narrowphase (pure outputs), while island /
    // cloth verification is performed by the tests with two machines.
    int mismatches = 0;
    const std::int64_t stride = kernelTaskStride(id);
    for (int i = 0; i < tasks; ++i) {
        const std::int64_t base = taskBase + i * stride;
        switch (id) {
          case KernelId::Narrowphase: {
            const NpRef ref = narrowphaseReference(machine, base);
            const auto flag = machine.loadInt(base + 240);
            bool ok = flag == ref.flag;
            if (ok && flag == 1) {
                ok = nearlyEqual(machine.loadFp(base + 248),
                                 ref.depth);
                for (int k = 0; k < 3 && ok; ++k) {
                    ok = nearlyEqual(
                             machine.loadFp(base + 256 + k * 8),
                             ref.n[k]) &&
                         nearlyEqual(
                             machine.loadFp(base + 280 + k * 8),
                             ref.pos[k]);
                }
            }
            mismatches += ok ? 0 : 1;
            break;
          }
          case KernelId::IslandProcessing:
          case KernelId::Cloth:
            // In-place kernels: see kernelReferenceIsland/Cloth used
            // from the tests (two-machine comparison).
            break;
        }
    }
    return mismatches;
}

IslandRowResult
islandRowReference(const Machine &pristine, int task)
{
    const std::int64_t base =
        taskBase + task * kernelTaskStride(KernelId::IslandProcessing);
    const IslandRef ref = islandReference(pristine, base);
    IslandRowResult out;
    out.lambda = ref.lambda;
    for (int k = 0; k < 12; ++k)
        out.vel[k] = ref.vel[k];
    return out;
}

ClothVertexResult
clothVertexReference(const Machine &pristine, int task)
{
    const std::int64_t base =
        taskBase + task * kernelTaskStride(KernelId::Cloth);
    const ClothRef ref = clothReference(pristine, base);
    ClothVertexResult out;
    for (int k = 0; k < 3; ++k) {
        out.pos[k] = ref.pos[k];
        out.prev[k] = ref.prev[k];
    }
    return out;
}

} // namespace parallax
