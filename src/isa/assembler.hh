/**
 * @file
 * Two-pass assembler for PAX assembly text.
 *
 * Syntax (one instruction per line, '#' starts a comment):
 *
 *     loop:                       # label definition
 *         li    r1, 42            # integer immediate
 *         lfi   f0, 3.75          # FP immediate
 *         add   r3, r1, r2
 *         addi  r3, r1, -4
 *         lw    r4, 8(r2)         # load int from [r2 + 8]
 *         lf    f1, 0(r2)
 *         sf    f1, 8(r2)
 *         fclt  r5, f1, f2        # r5 <- (f1 < f2)
 *         bne   r5, r0, loop      # branch to label
 *         halt
 *
 * Register names are r0-r31 (r0 reads as zero) and f0-f31. Memory
 * offsets must be multiples of 8 (the local memory is organized as
 * 8-byte cells).
 */

#ifndef PARALLAX_ISA_ASSEMBLER_HH
#define PARALLAX_ISA_ASSEMBLER_HH

#include <string>

#include "program.hh"

namespace parallax
{

/** Assemble PAX source text into a Program. Fatal on syntax error. */
Program assemble(const std::string &source);

} // namespace parallax

#endif // PARALLAX_ISA_ASSEMBLER_HH
