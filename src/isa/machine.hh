/**
 * @file
 * Functional PAX machine: architectural state and semantics.
 *
 * Models one FG core's architectural view: register files plus the
 * single-cycle local data memory ("FG cores use local instruction
 * and data memories instead of caches"). The memory is organized as
 * 8-byte cells that hold either an integer or a double; addresses
 * are in bytes and must be 8-aligned.
 */

#ifndef PARALLAX_ISA_MACHINE_HH
#define PARALLAX_ISA_MACHINE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "program.hh"

namespace parallax
{

/** Architectural state + functional execution. */
class Machine
{
  public:
    /** @param mem_cells Local data memory size in 8-byte cells. */
    explicit Machine(std::size_t mem_cells = 65536);

    std::int64_t intReg(int r) const { return r == 0 ? 0 : int_[r]; }
    double fpReg(int r) const { return fp_[r]; }
    void setIntReg(int r, std::int64_t v) { if (r != 0) int_[r] = v; }
    void setFpReg(int r, double v) { fp_[r] = v; }

    std::int64_t loadInt(std::int64_t addr) const;
    double loadFp(std::int64_t addr) const;
    void storeInt(std::int64_t addr, std::int64_t v);
    void storeFp(std::int64_t addr, double v);

    std::size_t memoryCells() const { return memI_.size(); }

    /** Reset registers and return stack (memory preserved). */
    void resetRegisters();

    /** Outcome of executing one instruction. */
    struct ExecResult
    {
        std::int64_t nextPc = 0;
        bool taken = false;  // Control transfer taken.
        bool halted = false;
    };

    /** Execute one instruction at `pc` and return control flow. */
    ExecResult execute(const Instruction &inst, std::int64_t pc);

    /** Summary of a functional run. */
    struct RunResult
    {
        std::uint64_t dynamicInstructions = 0;
        OpVector dynamicMix;
        bool halted = false;
    };

    /**
     * Run a program from pc 0 until Halt or the step limit.
     * @param max_steps Safety bound on dynamic instructions.
     */
    RunResult run(const Program &program,
                  std::uint64_t max_steps = 100'000'000);

  private:
    std::array<std::int64_t, numIntRegs> int_{};
    std::array<double, numFpRegs> fp_{};
    std::vector<std::int64_t> memI_;
    std::vector<double> memF_;
    std::vector<std::int64_t> returnStack_;
};

} // namespace parallax

#endif // PARALLAX_ISA_MACHINE_HH
