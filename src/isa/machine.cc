#include "machine.hh"

#include <cmath>

#include "sim/logging.hh"

namespace parallax
{

Machine::Machine(std::size_t mem_cells)
    : memI_(mem_cells, 0), memF_(mem_cells, 0.0)
{
}

namespace
{

std::size_t
cellIndex(std::int64_t addr, std::size_t cells)
{
    if (addr < 0 || (addr % 8) != 0)
        panic("misaligned local-memory address %lld",
              static_cast<long long>(addr));
    const auto index = static_cast<std::size_t>(addr / 8);
    if (index >= cells)
        panic("local-memory address %lld out of bounds",
              static_cast<long long>(addr));
    return index;
}

} // namespace

std::int64_t
Machine::loadInt(std::int64_t addr) const
{
    return memI_[cellIndex(addr, memI_.size())];
}

double
Machine::loadFp(std::int64_t addr) const
{
    return memF_[cellIndex(addr, memF_.size())];
}

void
Machine::storeInt(std::int64_t addr, std::int64_t v)
{
    memI_[cellIndex(addr, memI_.size())] = v;
}

void
Machine::storeFp(std::int64_t addr, double v)
{
    memF_[cellIndex(addr, memF_.size())] = v;
}

void
Machine::resetRegisters()
{
    int_.fill(0);
    fp_.fill(0.0);
    returnStack_.clear();
}

Machine::ExecResult
Machine::execute(const Instruction &inst, std::int64_t pc)
{
    ExecResult result;
    result.nextPc = pc + 1;

    switch (inst.op) {
      case Opcode::Add:
        setIntReg(inst.rd, intReg(inst.ra) + intReg(inst.rb));
        break;
      case Opcode::Sub:
        setIntReg(inst.rd, intReg(inst.ra) - intReg(inst.rb));
        break;
      case Opcode::Mul:
        setIntReg(inst.rd, intReg(inst.ra) * intReg(inst.rb));
        break;
      case Opcode::And:
        setIntReg(inst.rd, intReg(inst.ra) & intReg(inst.rb));
        break;
      case Opcode::Or:
        setIntReg(inst.rd, intReg(inst.ra) | intReg(inst.rb));
        break;
      case Opcode::Xor:
        setIntReg(inst.rd, intReg(inst.ra) ^ intReg(inst.rb));
        break;
      case Opcode::Sll:
        setIntReg(inst.rd,
                  intReg(inst.ra) << (intReg(inst.rb) & 63));
        break;
      case Opcode::Srl:
        setIntReg(inst.rd,
                  static_cast<std::int64_t>(
                      static_cast<std::uint64_t>(intReg(inst.ra)) >>
                      (intReg(inst.rb) & 63)));
        break;
      case Opcode::Addi:
        setIntReg(inst.rd, intReg(inst.ra) + inst.imm);
        break;
      case Opcode::Slti:
        setIntReg(inst.rd, intReg(inst.ra) < inst.imm ? 1 : 0);
        break;
      case Opcode::Li:
        setIntReg(inst.rd, inst.imm);
        break;
      case Opcode::Lfi:
        setFpReg(inst.rd, inst.fimm);
        break;
      case Opcode::Fadd:
        setFpReg(inst.rd, fpReg(inst.ra) + fpReg(inst.rb));
        break;
      case Opcode::Fsub:
        setFpReg(inst.rd, fpReg(inst.ra) - fpReg(inst.rb));
        break;
      case Opcode::Fmul:
        setFpReg(inst.rd, fpReg(inst.ra) * fpReg(inst.rb));
        break;
      case Opcode::Fdiv:
        setFpReg(inst.rd, fpReg(inst.ra) / fpReg(inst.rb));
        break;
      case Opcode::Fsqrt:
        setFpReg(inst.rd, std::sqrt(fpReg(inst.ra)));
        break;
      case Opcode::Fneg:
        setFpReg(inst.rd, -fpReg(inst.ra));
        break;
      case Opcode::Fabs:
        setFpReg(inst.rd, std::fabs(fpReg(inst.ra)));
        break;
      case Opcode::Fmov:
        setFpReg(inst.rd, fpReg(inst.ra));
        break;
      case Opcode::Fmin:
        setFpReg(inst.rd,
                 std::min(fpReg(inst.ra), fpReg(inst.rb)));
        break;
      case Opcode::Fmax:
        setFpReg(inst.rd,
                 std::max(fpReg(inst.ra), fpReg(inst.rb)));
        break;
      case Opcode::Fclt:
        setIntReg(inst.rd,
                  fpReg(inst.ra) < fpReg(inst.rb) ? 1 : 0);
        break;
      case Opcode::Fcle:
        setIntReg(inst.rd,
                  fpReg(inst.ra) <= fpReg(inst.rb) ? 1 : 0);
        break;
      case Opcode::Fceq:
        setIntReg(inst.rd,
                  fpReg(inst.ra) == fpReg(inst.rb) ? 1 : 0);
        break;
      case Opcode::Lw:
        setIntReg(inst.rd, loadInt(intReg(inst.ra) + inst.imm));
        break;
      case Opcode::Sw:
        storeInt(intReg(inst.ra) + inst.imm, intReg(inst.rd));
        break;
      case Opcode::Lf:
        setFpReg(inst.rd, loadFp(intReg(inst.ra) + inst.imm));
        break;
      case Opcode::Sf:
        storeFp(intReg(inst.ra) + inst.imm, fpReg(inst.rd));
        break;
      case Opcode::Beq:
        if (intReg(inst.ra) == intReg(inst.rb)) {
            result.nextPc = inst.imm;
            result.taken = true;
        }
        break;
      case Opcode::Bne:
        if (intReg(inst.ra) != intReg(inst.rb)) {
            result.nextPc = inst.imm;
            result.taken = true;
        }
        break;
      case Opcode::Blt:
        if (intReg(inst.ra) < intReg(inst.rb)) {
            result.nextPc = inst.imm;
            result.taken = true;
        }
        break;
      case Opcode::Bge:
        if (intReg(inst.ra) >= intReg(inst.rb)) {
            result.nextPc = inst.imm;
            result.taken = true;
        }
        break;
      case Opcode::Jmp:
        result.nextPc = inst.imm;
        result.taken = true;
        break;
      case Opcode::Call:
        returnStack_.push_back(pc + 1);
        result.nextPc = inst.imm;
        result.taken = true;
        break;
      case Opcode::Ret:
        if (returnStack_.empty())
            panic("ret with empty return stack at pc %lld",
                  static_cast<long long>(pc));
        result.nextPc = returnStack_.back();
        returnStack_.pop_back();
        result.taken = true;
        break;
      case Opcode::Halt:
        result.halted = true;
        break;
      case Opcode::Nop:
        break;
    }
    return result;
}

Machine::RunResult
Machine::run(const Program &program, std::uint64_t max_steps)
{
    RunResult result;
    std::int64_t pc = 0;
    while (result.dynamicInstructions < max_steps) {
        if (pc < 0 ||
            pc >= static_cast<std::int64_t>(program.size())) {
            panic("pc %lld out of program bounds",
                  static_cast<long long>(pc));
        }
        const Instruction &inst = program.at(pc);
        const ExecResult exec = execute(inst, pc);
        ++result.dynamicInstructions;
        if (inst.op != Opcode::Nop)
            result.dynamicMix[opcodeClass(inst.op)] += 1.0;
        if (exec.halted) {
            result.halted = true;
            break;
        }
        pc = exec.nextPc;
    }
    return result;
}

} // namespace parallax
