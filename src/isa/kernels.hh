/**
 * @file
 * The three fine-grain kernels of section 8.1, written in PAX.
 *
 * Each kernel iterates over the tasks packed into its local memory
 * by the CG core (the control/data packet protocol of section 7.3):
 * cell 0 holds the iteration count and task records start at byte
 * 64. The kernels' static sizes track the paper's measurements
 * (277 / 177 / 221 instructions for Narrowphase / Island
 * Processing / Cloth); measured sizes are asserted in the tests and
 * reported in EXPERIMENTS.md.
 */

#ifndef PARALLAX_ISA_KERNELS_HH
#define PARALLAX_ISA_KERNELS_HH

#include <string>

#include "machine.hh"
#include "program.hh"
#include "sim/rng.hh"

namespace parallax
{

/** Which FG kernel. */
enum class KernelId
{
    Narrowphase,
    IslandProcessing,
    Cloth,
};

constexpr int numKernels = 3;

constexpr KernelId allKernels[numKernels] = {
    KernelId::Narrowphase,
    KernelId::IslandProcessing,
    KernelId::Cloth,
};

/** Kernel name. */
const char *kernelName(KernelId id);

/** Paper-reported static instruction count (section 8.1.2). */
int kernelPaperStaticSize(KernelId id);

/** PAX assembly source of a kernel. */
std::string kernelSource(KernelId id);

/** Assembled kernel program (cached). */
const Program &kernelProgram(KernelId id);

/**
 * Pack `tasks` synthetic task records into a machine's local memory
 * (including the iteration count at cell 0). Record contents are
 * drawn deterministically from `rng` with distributions that mimic
 * the benchmark data (e.g. roughly half of narrowphase pairs
 * collide, giving the kernel its data-dependent branches).
 */
void packKernelInputs(KernelId id, Machine &machine, int tasks,
                      Rng &rng);

/** Byte stride of one task record. */
std::int64_t kernelTaskStride(KernelId id);

/**
 * Verify a completed run against a C++ reference computation.
 * For Narrowphase (whose outputs are separate fields) this checks
 * every task in place; for the in-place kernels use the per-task
 * reference helpers below with a pristine input machine.
 *
 * @return Number of mismatching tasks (0 == correct).
 */
int verifyKernelOutputs(KernelId id, const Machine &machine,
                        int tasks);

/** Expected result of one island-processing row relaxation. */
struct IslandRowResult
{
    double lambda = 0.0;
    double vel[12] = {};
};

/** Reference for task `task`, computed from unmodified inputs. */
IslandRowResult islandRowReference(const Machine &pristine, int task);

/** Expected result of one cloth vertex task. */
struct ClothVertexResult
{
    double pos[3] = {};
    double prev[3] = {};
};

/** Reference for task `task`, computed from unmodified inputs. */
ClothVertexResult clothVertexReference(const Machine &pristine,
                                       int task);

} // namespace parallax

#endif // PARALLAX_ISA_KERNELS_HH
