/**
 * @file
 * An assembled PAX program.
 */

#ifndef PARALLAX_ISA_PROGRAM_HH
#define PARALLAX_ISA_PROGRAM_HH

#include <map>
#include <string>
#include <vector>

#include "isa.hh"

namespace parallax
{

/** Instruction sequence plus label table. */
class Program
{
  public:
    const std::vector<Instruction> &instructions() const
    { return instructions_; }

    std::size_t size() const { return instructions_.size(); }

    const Instruction &at(std::size_t pc) const
    { return instructions_[pc]; }

    /** Address of a label; -1 if absent. */
    std::int64_t label(const std::string &name) const;

    /** Static instruction-memory footprint, bytes (32-bit words). */
    std::uint64_t footprintBytes() const { return size() * 4; }

    /** Static instruction mix by class. */
    OpVector staticMix() const;

    // Assembler construction interface.
    void append(const Instruction &inst)
    { instructions_.push_back(inst); }
    void defineLabel(const std::string &name, std::int64_t address)
    { labels_[name] = address; }

  private:
    std::vector<Instruction> instructions_;
    std::map<std::string, std::int64_t> labels_;
};

} // namespace parallax

#endif // PARALLAX_ISA_PROGRAM_HH
