/**
 * @file
 * The PAX virtual ISA.
 *
 * A small RISC ISA for the fine-grain cores. FG cores "use local
 * instruction and data memories instead of caches" (section 7), so
 * every memory access hits single-cycle local memory. The three FG
 * kernels (narrowphase pair test, LCP row relaxation, cloth vertex)
 * are written in this ISA and executed on the cycle-level core
 * models to measure the IPC of Figure 10(a).
 *
 * 32 integer registers (r0 hardwired to zero), 32 FP registers,
 * word-addressed byte memory, 32-bit instructions (the paper's
 * instruction-memory sizing assumes 32- or 64-bit encodings).
 */

#ifndef PARALLAX_ISA_ISA_HH
#define PARALLAX_ISA_ISA_HH

#include <cstdint>
#include <string>

#include "workload/phase.hh"

namespace parallax
{

/** PAX opcodes. */
enum class Opcode
{
    // Integer ALU.
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Addi,
    Slti,
    Li,  // Load integer immediate.
    Lfi, // Load FP immediate into an FP register.
    // Floating point.
    Fadd,
    Fsub,
    Fmul,
    Fdiv,
    Fsqrt,
    Fneg,
    Fabs,
    Fmov,
    Fmin,
    Fmax,
    /** FP compare: rd <- (fa OP fb) as 0/1. */
    Fclt,
    Fcle,
    Fceq,
    // Memory (always local-memory hits on FG cores).
    Lw,
    Sw,
    Lf,
    Sf,
    // Control.
    Beq,
    Bne,
    Blt,
    Bge,
    Jmp,
    Call,
    Ret,
    Halt,
    Nop,
};

/** Number of architectural registers per file. */
constexpr int numIntRegs = 32;
constexpr int numFpRegs = 32;

/** Decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    int rd = 0;   // Destination (int or fp index by opcode).
    int ra = 0;   // First source.
    int rb = 0;   // Second source.
    std::int64_t imm = 0; // Immediate / branch target / offset.
    double fimm = 0.0;    // FP immediate (Li into fp via assembler).
};

/** Mnemonic of an opcode. */
const char *opcodeName(Opcode op);

/** True for control-transfer instructions. */
bool isBranch(Opcode op);

/** True for conditional branches. */
bool isConditionalBranch(Opcode op);

/** True for loads/stores. */
bool isMemory(Opcode op);

/** True for loads. */
bool isLoad(Opcode op);

/** True when the instruction writes an FP register. */
bool writesFp(Opcode op);

/** Execution latency in cycles on the FG cores. */
int opLatency(Opcode op);

/** Map an opcode to the paper's instruction-mix class (Fig 9b). */
OpClass opcodeClass(Opcode op);

} // namespace parallax

#endif // PARALLAX_ISA_ISA_HH
