#include "cache.hh"

#include "sim/logging.hh"

namespace parallax
{

Cache::Cache(CacheConfig config) : config_(config)
{
    if (config_.sizeBytes == 0 || config_.lineBytes == 0)
        fatal("cache size and line size must be positive");
    const std::uint64_t total_lines =
        config_.sizeBytes / config_.lineBytes;
    if (total_lines == 0)
        fatal("cache smaller than one line");
    if (config_.ways <= 0)
        fatal("cache needs at least one way");
    if (static_cast<std::uint64_t>(config_.ways) > total_lines)
        config_.ways = static_cast<int>(total_lines);
    numSets_ = static_cast<int>(total_lines / config_.ways);
    if (numSets_ == 0)
        numSets_ = 1;
    lines_.resize(static_cast<std::size_t>(numSets_) * config_.ways);
}

bool
Cache::access(std::uint64_t addr, bool write, bool kernel)
{
    ++stats_.accesses;
    const std::uint64_t line = lineIndex(addr);
    const std::uint64_t set = line % numSets_;
    Line *base = &lines_[set * config_.ways];

    // Lookup.
    for (int w = 0; w < config_.ways; ++w) {
        Line &entry = base[w];
        if (entry.valid && entry.tag == line) {
            entry.lastUse = ++useCounter_;
            entry.dirty |= write;
            ++stats_.hits;
            return true;
        }
    }

    // Miss: classify, then fill into the LRU way.
    ++stats_.misses;
    if (touched_.insert(line).second)
        ++stats_.compulsoryMisses;
    if (kernel)
        ++stats_.kernelMisses;
    else
        ++stats_.userMisses;

    Line *victim = &base[0];
    for (int w = 1; w < config_.ways; ++w) {
        Line &entry = base[w];
        if (!entry.valid) {
            victim = &entry;
            break;
        }
        if (entry.lastUse < victim->lastUse)
            victim = &entry;
    }
    if (victim->valid && victim->dirty)
        ++stats_.writebacks;
    victim->valid = true;
    victim->tag = line;
    victim->dirty = write;
    victim->lastUse = ++useCounter_;
    return false;
}

bool
Cache::probe(std::uint64_t addr) const
{
    const std::uint64_t line = lineIndex(addr);
    const std::uint64_t set = line % numSets_;
    const Line *base = &lines_[set * config_.ways];
    for (int w = 0; w < config_.ways; ++w) {
        if (base[w].valid && base[w].tag == line)
            return true;
    }
    return false;
}

bool
Cache::invalidate(std::uint64_t addr)
{
    const std::uint64_t line = lineIndex(addr);
    const std::uint64_t set = line % numSets_;
    Line *base = &lines_[set * config_.ways];
    for (int w = 0; w < config_.ways; ++w) {
        Line &entry = base[w];
        if (entry.valid && entry.tag == line) {
            entry.valid = false;
            return entry.dirty;
        }
    }
    return false;
}

void
Cache::flush()
{
    for (Line &entry : lines_)
        entry.valid = false;
}

std::uint64_t
Cache::residentLines() const
{
    std::uint64_t count = 0;
    for (const Line &entry : lines_)
        count += entry.valid ? 1 : 0;
    return count;
}

} // namespace parallax
