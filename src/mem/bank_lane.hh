/**
 * @file
 * L2 bank as a quantum-parallel simulation component.
 *
 * In the serial timing model the banked L2 is folded into one Cache
 * per partition (cache.hh) because bank conflicts are not timed. The
 * lane-parallel model (docs/SIMULATOR.md) needs real banks: each
 * bank owns a slice of the physical address space (line-interleaved)
 * and registers on its own event lane, servicing request messages
 * that arrive over the NoC from the core lanes. Requests arriving in
 * the same quantum from different cores are delivered in the
 * LaneSet's deterministic merge order, so the bank's LRU state — and
 * therefore every hit/miss count — is bit-identical between serial
 * and parallel execution.
 */

#ifndef PARALLAX_MEM_BANK_LANE_HH
#define PARALLAX_MEM_BANK_LANE_HH

#include <cstdint>

#include "cache.hh"
#include "sim/event_queue.hh"

namespace parallax
{

/** Geometry and latencies of one lane-hosted L2 bank. */
struct BankLaneConfig
{
    CacheConfig cache{1ull << 20, 4, 64};
    Tick serviceLatency = 15; // L2 hit latency (Table 5).
    Tick memLatency = 340;    // Added on a bank miss (Table 5).
};

/**
 * One L2 bank bound to an event lane. The bank itself never sends
 * autonomously — it reacts to request() calls made from messages
 * delivered on its lane and replies through the same lane's send().
 */
class L2BankLane
{
  public:
    /** Integer-only counters: lane merges can never perturb them
     *  (the stat-merge rule of docs/SIMULATOR.md). */
    struct Stats
    {
        std::uint64_t accesses = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t writebacks = 0;
    };

    L2BankLane(EventLane &lane, BankLaneConfig config);

    /**
     * Service one request. Must be called from an event executing on
     * this bank's lane (the arrival of the request message). Accesses
     * the bank cache immediately — arrival order is the service
     * order — and schedules `reply` back to `replyLane` after the
     * service latency (hit or miss) plus `replyLatency` (the NoC
     * return path; must itself satisfy the >= quantum send rule).
     */
    void request(std::uint64_t addr, bool write, unsigned replyLane,
                 Tick replyLatency, EventQueue::Callback reply);

    const Stats &stats() const { return stats_; }
    const Cache &cache() const { return cache_; }
    unsigned laneId() const { return lane_.id(); }

  private:
    EventLane &lane_;
    BankLaneConfig config_;
    Cache cache_;
    Stats stats_;
};

} // namespace parallax

#endif // PARALLAX_MEM_BANK_LANE_HH
