/**
 * @file
 * Set-associative cache model.
 *
 * Models the GEMS-style caches of the paper's methodology: 64-byte
 * lines, LRU replacement, configurable size and associativity. The
 * L2 is built from 1 MB 4-way banks; since bank conflicts are not
 * timed (the paper charges a flat 15-cycle L2 latency), a banked L2
 * of N MB is modelled as one cache of N MB with the banks' aggregate
 * sets. Way counts up to fully-associative support the paper's
 * 1024-way miss-classification experiment.
 */

#ifndef PARALLAX_MEM_CACHE_HH
#define PARALLAX_MEM_CACHE_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace parallax
{

/** Cache geometry. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 1ull << 20;
    int ways = 4;
    int lineBytes = 64;
};

/** Hit/miss counters, split user/kernel (Figure 6b). */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t compulsoryMisses = 0;
    std::uint64_t kernelMisses = 0;
    std::uint64_t userMisses = 0;
    std::uint64_t writebacks = 0;

    void
    reset()
    {
        *this = CacheStats();
    }

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) / accesses
                        : 0.0;
    }
};

/** One set-associative cache with LRU replacement. */
class Cache
{
  public:
    explicit Cache(CacheConfig config);

    /**
     * Access one line.
     *
     * @param addr Byte address (any byte of the line).
     * @param write Marks the line dirty.
     * @param kernel Attribute misses to the kernel counter.
     * @return True on hit.
     */
    bool access(std::uint64_t addr, bool write, bool kernel = false);

    /** True if the line is currently resident (no state change). */
    bool probe(std::uint64_t addr) const;

    /** Invalidate a line if present; returns true if it was dirty. */
    bool invalidate(std::uint64_t addr);

    /** Drop all lines (keeps stats and first-touch history). */
    void flush();

    const CacheConfig &config() const { return config_; }
    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    int numSets() const { return numSets_; }

    /** Number of currently valid lines (footprint inspection). */
    std::uint64_t residentLines() const;

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    std::uint64_t lineIndex(std::uint64_t addr) const
    { return addr / static_cast<std::uint64_t>(config_.lineBytes); }

    CacheConfig config_;
    int numSets_;
    std::vector<Line> lines_; // numSets_ x ways, row-major.
    std::uint64_t useCounter_ = 0;
    std::unordered_set<std::uint64_t> touched_; // For compulsory.
    CacheStats stats_;
};

} // namespace parallax

#endif // PARALLAX_MEM_CACHE_HH
