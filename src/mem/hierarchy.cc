#include "hierarchy.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace parallax
{

L2Plan
L2Plan::shared(int mb)
{
    L2Plan plan;
    plan.partitionOf.fill(0);
    plan.partitionBytes = {static_cast<std::uint64_t>(mb) << 20};
    return plan;
}

L2Plan
L2Plan::paperPartitioned(int serial_mb, int parallel_mb)
{
    L2Plan plan;
    plan.partitionOf[static_cast<int>(Phase::Broadphase)] = 0;
    plan.partitionOf[static_cast<int>(Phase::IslandCreation)] = 1;
    plan.partitionOf[static_cast<int>(Phase::Narrowphase)] = 2;
    plan.partitionOf[static_cast<int>(Phase::IslandProcessing)] = 2;
    plan.partitionOf[static_cast<int>(Phase::Cloth)] = 2;
    plan.partitionBytes = {
        static_cast<std::uint64_t>(serial_mb) << 20,
        static_cast<std::uint64_t>(serial_mb) << 20,
        static_cast<std::uint64_t>(parallel_mb) << 20};
    return plan;
}

L2Plan
L2Plan::dedicatedPerPhase(int mb)
{
    L2Plan plan;
    plan.partitionBytes.resize(numPhases,
                               static_cast<std::uint64_t>(mb) << 20);
    for (int p = 0; p < numPhases; ++p)
        plan.partitionOf[p] = p;
    return plan;
}

MemoryHierarchy::MemoryHierarchy(HierarchyConfig config)
    : config_(std::move(config))
{
    if (config_.threads == 0)
        fatal("hierarchy needs at least one thread");
    if (config_.threads > 32)
        fatal("directory bitmask supports at most 32 threads");
    for (unsigned t = 0; t < config_.threads; ++t)
        l1s_.push_back(std::make_unique<Cache>(config_.l1));
    for (int p = 0; p < numPhases; ++p) {
        const int part = config_.plan.partitionOf[p];
        if (part < 0 ||
            static_cast<std::size_t>(part) >=
                config_.plan.partitionBytes.size()) {
            fatal("phase %d maps to invalid L2 partition %d", p,
                  part);
        }
    }
    for (const std::uint64_t bytes : config_.plan.partitionBytes) {
        l2Partitions_.push_back(std::make_unique<Cache>(
            CacheConfig{bytes, config_.l2Ways, 64}));
    }
}

Tick
MemoryHierarchy::access(unsigned thread, Phase phase,
                        const MemRef &ref)
{
    parallax_assert(thread < l1s_.size());
    PhaseMemStats &stats = phaseStats_[static_cast<int>(phase)];
    ++stats.refs;

    const std::uint64_t line = ref.addr / 64;

    // Coherence: a write invalidates every other L1's copy (MOESI
    // M-state acquisition through the directory).
    if (ref.write && config_.threads > 1) {
        auto it = directory_.find(line);
        if (it != directory_.end()) {
            const std::uint32_t others =
                it->second.sharers & ~(1u << thread);
            if (others != 0) {
                for (unsigned t = 0; t < config_.threads; ++t) {
                    if ((others >> t) & 1u) {
                        l1s_[t]->invalidate(ref.addr);
                        ++stats.invalidations;
                    }
                }
                it->second.sharers = 1u << thread;
            }
        }
    }

    // L1 lookup.
    Tick latency = config_.l1Latency;
    if (l1s_[thread]->access(ref.addr, ref.write)) {
        ++stats.l1Hits;
        stats.cycles += latency;
        return latency;
    }
    if (config_.threads > 1)
        directory_[line].sharers |= 1u << thread;

    // L2 partition lookup.
    Cache &l2 = *l2Partitions_[config_.plan.partitionOf[
        static_cast<int>(phase)]];
    latency += config_.l2Latency;
    if (l2.access(ref.addr, ref.write, ref.kernel)) {
        ++stats.l2Hits;
        stats.cycles += latency;
        return latency;
    }

    // Main memory.
    ++stats.l2Misses;
    if (ref.kernel)
        ++stats.kernelL2Misses;
    else
        ++stats.userL2Misses;
    latency += config_.memLatency;
    stats.cycles += latency;
    return latency;
}

void
MemoryHierarchy::replayStep(const StepTrace &trace,
                            int interleave_granularity)
{
    const unsigned threads = config_.threads;
    for (int p = 0; p < numPhases; ++p) {
        const Phase phase = static_cast<Phase>(p);
        const auto &refs = trace.phase[p];
        if (refs.empty())
            continue;

        if (threads <= 1 || phaseIsSerial(phase)) {
            for (const MemRef &ref : refs)
                access(0, phase, ref);
            continue;
        }

        // Parallel phases: the stream was generated in per-thread
        // chunks; interleave them in granules to model concurrent
        // execution against the shared L2.
        const std::size_t chunk =
            (refs.size() + threads - 1) / threads;
        std::vector<std::size_t> cursor(threads);
        bool work_left = true;
        while (work_left) {
            work_left = false;
            for (unsigned t = 0; t < threads; ++t) {
                const std::size_t begin = t * chunk;
                const std::size_t end =
                    std::min(refs.size(), begin + chunk);
                if (begin >= end)
                    continue;
                std::size_t &pos = cursor[t];
                const std::size_t stop = std::min(
                    end - begin,
                    pos + static_cast<std::size_t>(
                              interleave_granularity));
                for (; pos < stop; ++pos)
                    access(t, phase, refs[begin + pos]);
                if (pos < end - begin)
                    work_left = true;
            }
        }
    }
}

PhaseMemStats
MemoryHierarchy::totalStats() const
{
    PhaseMemStats total;
    for (const PhaseMemStats &s : phaseStats_) {
        total.refs += s.refs;
        total.l1Hits += s.l1Hits;
        total.l2Hits += s.l2Hits;
        total.l2Misses += s.l2Misses;
        total.kernelL2Misses += s.kernelL2Misses;
        total.userL2Misses += s.userL2Misses;
        total.invalidations += s.invalidations;
        total.cycles += s.cycles;
    }
    return total;
}

void
MemoryHierarchy::resetStats()
{
    for (PhaseMemStats &s : phaseStats_)
        s.reset();
    for (auto &l1 : l1s_)
        l1->resetStats();
    for (auto &l2 : l2Partitions_)
        l2->resetStats();
}

void
MemoryHierarchy::flushAll()
{
    for (auto &l1 : l1s_)
        l1->flush();
    for (auto &l2 : l2Partitions_)
        l2->flush();
    directory_.clear();
}

} // namespace parallax
