/**
 * @file
 * Two-level cache hierarchy with application-aware L2 partitioning.
 *
 * Per-thread 32 KB 4-way L1 data caches (2-cycle) in front of a
 * banked L2 (15-cycle) and main memory (340 cycles) — the Table 5
 * configuration. The L2 can be shared, partitioned in the paper's
 * application-aware scheme (one 4 MB partition per serial phase plus
 * one for the parallel phases — section 6.1), or fully dedicated per
 * phase (the cache-state save/restore experiment of Figures 3-5a).
 * A directory keeps the L1s coherent with MOESI-style ownership:
 * writes invalidate remote copies.
 */

#ifndef PARALLAX_MEM_HIERARCHY_HH
#define PARALLAX_MEM_HIERARCHY_HH

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache.hh"
#include "sim/ticks.hh"
#include "workload/mem_trace.hh"
#include "workload/phase.hh"

namespace parallax
{

/** How the L2 space is assigned to phases. */
struct L2Plan
{
    /** Partition index for each phase. */
    std::array<int, numPhases> partitionOf{};
    /** Size (bytes) of each partition. */
    std::vector<std::uint64_t> partitionBytes;

    /** One shared L2 of `mb` megabytes for every phase. */
    static L2Plan shared(int mb);

    /**
     * The paper's partitioning: a dedicated serial partition for
     * Broadphase, another for Island Creation, and one partition
     * shared by the three parallel phases. Defaults reproduce the
     * 12 MB organization of section 6.2.
     */
    static L2Plan paperPartitioned(int serial_mb = 4,
                                   int parallel_mb = 4);

    /** A fully dedicated L2 of `mb` MB for every phase. */
    static L2Plan dedicatedPerPhase(int mb);
};

/** Hierarchy geometry and latencies (Table 5 defaults). */
struct HierarchyConfig
{
    CacheConfig l1{32 * 1024, 4, 64};
    int l2Ways = 4;
    Tick l1Latency = 2;
    Tick l2Latency = 15;
    Tick memLatency = 340;
    unsigned threads = 1;
    L2Plan plan = L2Plan::shared(1);
};

/** Per-phase access outcome counters. */
struct PhaseMemStats
{
    std::uint64_t refs = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t kernelL2Misses = 0;
    std::uint64_t userL2Misses = 0;
    std::uint64_t invalidations = 0;
    Tick cycles = 0;

    void
    reset()
    {
        *this = PhaseMemStats();
    }
};

/** The modelled memory system. */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(HierarchyConfig config);

    /**
     * Perform one reference from a thread within a phase.
     * @return Latency in cycles of the serviced access.
     */
    Tick access(unsigned thread, Phase phase, const MemRef &ref);

    /** Replay one step's trace, interleaving thread chunks. */
    void replayStep(const StepTrace &trace,
                    int interleave_granularity = 64);

    const PhaseMemStats &phaseStats(Phase phase) const
    { return phaseStats_[static_cast<int>(phase)]; }

    /** Sum of the per-phase stats. */
    PhaseMemStats totalStats() const;

    /** Clear counters but keep cache contents (for warmup). */
    void resetStats();

    /** Drop all cached state. */
    void flushAll();

    const HierarchyConfig &config() const { return config_; }

    Cache &l2Partition(int index) { return *l2Partitions_[index]; }
    std::size_t numL2Partitions() const
    { return l2Partitions_.size(); }

  private:
    struct DirectoryEntry
    {
        std::uint32_t sharers = 0; // Bit per thread L1.
    };

    HierarchyConfig config_;
    std::vector<std::unique_ptr<Cache>> l1s_;
    std::vector<std::unique_ptr<Cache>> l2Partitions_;
    std::unordered_map<std::uint64_t, DirectoryEntry> directory_;
    std::array<PhaseMemStats, numPhases> phaseStats_{};
};

} // namespace parallax

#endif // PARALLAX_MEM_HIERARCHY_HH
