#include "bank_lane.hh"

namespace parallax
{

L2BankLane::L2BankLane(EventLane &lane, BankLaneConfig config)
    : lane_(lane), config_(config), cache_(config.cache)
{
}

void
L2BankLane::request(std::uint64_t addr, bool write,
                    unsigned replyLane, Tick replyLatency,
                    EventQueue::Callback reply)
{
    ++stats_.accesses;
    const bool hit = cache_.access(addr, write);
    Tick service = config_.serviceLatency;
    if (hit) {
        ++stats_.hits;
    } else {
        ++stats_.misses;
        service += config_.memLatency;
    }
    stats_.writebacks = cache_.stats().writebacks;
    // The reply leaves after the bank has serviced the line; the
    // send() latency check still sees >= quantum because the NoC
    // return path alone satisfies it.
    lane_.send(replyLane, service + replyLatency, std::move(reply));
}

} // namespace parallax
