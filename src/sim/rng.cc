#include "rng.hh"

#include <cmath>

namespace parallax
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

Rng
Rng::forStream(std::uint64_t seed, std::uint64_t stream)
{
    // Mix the stream id through its own splitmix64 chain before
    // combining: adjacent ids (lane 0, 1, 2...) land in unrelated
    // regions of the seed space instead of adjacent ones.
    std::uint64_t s = seed;
    const std::uint64_t base = splitmix64(s);
    std::uint64_t t = stream ^ 0xa0761d6478bd642full;
    const std::uint64_t mixed = splitmix64(t);
    return Rng(base ^ mixed);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    if (n == 0)
        return 0;
    // Modulo bias is negligible for the ranges used here.
    return next() % n;
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    if (hi <= lo)
        return lo;
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double twoPi = 6.283185307179586;
    spare_ = mag * std::sin(twoPi * u2);
    hasSpare_ = true;
    return mag * std::cos(twoPi * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

} // namespace parallax
