#include "stats.hh"

#include <cmath>
#include <iomanip>

namespace parallax
{

void
Distribution::sample(double v)
{
    ++count_;
    total_ += v;
    if (count_ == 1) {
        min_ = max_ = v;
    } else {
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
}

void
Distribution::reset()
{
    *this = Distribution();
}

double
Distribution::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

StatGroup::StatGroup(std::string name) : name_(std::move(name))
{
}

Counter &
StatGroup::counter(const std::string &name)
{
    auto [it, inserted] = counters_.try_emplace(name);
    if (inserted)
        order_.push_back("c:" + name);
    return it->second;
}

Distribution &
StatGroup::distribution(const std::string &name)
{
    auto [it, inserted] = distributions_.try_emplace(name);
    if (inserted)
        order_.push_back("d:" + name);
    return it->second;
}

void
StatGroup::reset()
{
    for (auto &[name, c] : counters_)
        c.reset();
    for (auto &[name, d] : distributions_)
        d.reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &key : order_) {
        const std::string name = key.substr(2);
        if (key[0] == 'c') {
            os << name_ << '.' << name << ' '
               << counters_.at(name).value() << '\n';
        } else {
            const auto &d = distributions_.at(name);
            os << name_ << '.' << name
               << " count=" << d.count()
               << " mean=" << d.mean()
               << " min=" << d.min()
               << " max=" << d.max()
               << " total=" << d.total() << '\n';
        }
    }
}

LaneAccumulator::LaneAccumulator(unsigned lanes) : slots_(lanes)
{
}

void
LaneAccumulator::add(unsigned lane, double v)
{
    Slot &slot = slots_.at(lane);
    slot.value += v;
    ++slot.count;
}

double
LaneAccumulator::sum() const
{
    // Fold in lane-id order: the one canonical reduction order.
    double total = 0.0;
    for (const Slot &slot : slots_)
        total += slot.value;
    return total;
}

std::uint64_t
LaneAccumulator::count() const
{
    std::uint64_t total = 0;
    for (const Slot &slot : slots_)
        total += slot.count;
    return total;
}

double
LaneAccumulator::mean() const
{
    const std::uint64_t n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
}

double
LaneAccumulator::laneSum(unsigned lane) const
{
    return slots_.at(lane).value;
}

std::uint64_t
LaneAccumulator::laneCount(unsigned lane) const
{
    return slots_.at(lane).count;
}

void
LaneAccumulator::reset()
{
    for (Slot &slot : slots_)
        slot = Slot();
}

} // namespace parallax
