/**
 * @file
 * Lightweight statistics collection.
 *
 * Modules register named scalar counters, distributions, and formulas
 * with a StatGroup. Benchmark harnesses dump groups as aligned text,
 * mirroring the role of the GEMS/gem5 stats package in the paper's
 * methodology.
 */

#ifndef PARALLAX_SIM_STATS_HH
#define PARALLAX_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace parallax
{

/** A named monotonically updated scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator+=(double v) { value_ += v; return *this; }
    Counter &operator++() { value_ += 1.0; return *this; }
    void set(double v) { value_ = v; }
    void reset() { value_ = 0.0; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/** Running distribution: count, mean, min, max, variance (Welford). */
class Distribution
{
  public:
    void sample(double v);
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double variance() const;
    double stddev() const;
    double total() const { return total_; }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double total_ = 0.0;
};

/**
 * A named collection of statistics.
 *
 * Groups own their counters/distributions; modules hold references
 * obtained at registration time. Dumping prints "group.name value"
 * lines in registration order.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);

    /** Register (or fetch) a counter with the given name. */
    Counter &counter(const std::string &name);

    /** Register (or fetch) a distribution with the given name. */
    Distribution &distribution(const std::string &name);

    /** Reset all owned statistics to zero. */
    void reset();

    /** Print all statistics to the given stream. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<std::string> order_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Distribution> distributions_;
};

/**
 * Order-independent accumulation of per-lane partial statistics.
 *
 * Floating-point addition is not associative, so reducing per-lane
 * doubles "as lanes finish" would make a merged stat depend on host
 * thread timing. LaneAccumulator gives every lane a private,
 * cache-line-padded slot (lanes write only their own slot, so no
 * locks and no false sharing) and merges in fixed lane-id order at
 * the quantum barrier. The merged value is a pure function of the
 * per-lane values — bit-identical no matter how the host interleaved
 * the lanes. This is the stat-merge rule of docs/SIMULATOR.md:
 * accumulate integer counters freely, but route every floating-point
 * reduction across lanes through a fixed-order merge like this one.
 */
class LaneAccumulator
{
  public:
    explicit LaneAccumulator(unsigned lanes);

    /** Add `v` to lane `lane`'s slot. Safe to call concurrently from
     *  distinct lanes; never from two threads on the same lane. */
    void add(unsigned lane, double v);

    /** Merged sum, folded in lane-id order (deterministic). */
    double sum() const;

    /** Total samples across lanes (integer: order-independent). */
    std::uint64_t count() const;

    /** Merged arithmetic mean (sum()/count(); 0 when empty). */
    double mean() const;

    double laneSum(unsigned lane) const;
    std::uint64_t laneCount(unsigned lane) const;
    unsigned lanes() const
    { return static_cast<unsigned>(slots_.size()); }

    void reset();

  private:
    struct alignas(64) Slot
    {
        double value = 0.0;
        std::uint64_t count = 0;
    };

    std::vector<Slot> slots_;
};

} // namespace parallax

#endif // PARALLAX_SIM_STATS_HH
