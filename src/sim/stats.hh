/**
 * @file
 * Lightweight statistics collection.
 *
 * Modules register named scalar counters, distributions, and formulas
 * with a StatGroup. Benchmark harnesses dump groups as aligned text,
 * mirroring the role of the GEMS/gem5 stats package in the paper's
 * methodology.
 */

#ifndef PARALLAX_SIM_STATS_HH
#define PARALLAX_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace parallax
{

/** A named monotonically updated scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator+=(double v) { value_ += v; return *this; }
    Counter &operator++() { value_ += 1.0; return *this; }
    void set(double v) { value_ = v; }
    void reset() { value_ = 0.0; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/** Running distribution: count, mean, min, max, variance (Welford). */
class Distribution
{
  public:
    void sample(double v);
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double variance() const;
    double stddev() const;
    double total() const { return total_; }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double total_ = 0.0;
};

/**
 * A named collection of statistics.
 *
 * Groups own their counters/distributions; modules hold references
 * obtained at registration time. Dumping prints "group.name value"
 * lines in registration order.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);

    /** Register (or fetch) a counter with the given name. */
    Counter &counter(const std::string &name);

    /** Register (or fetch) a distribution with the given name. */
    Distribution &distribution(const std::string &name);

    /** Reset all owned statistics to zero. */
    void reset();

    /** Print all statistics to the given stream. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<std::string> order_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Distribution> distributions_;
};

} // namespace parallax

#endif // PARALLAX_SIM_STATS_HH
