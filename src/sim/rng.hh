/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (scene layout jitter,
 * sampled kernel inputs, synthetic address noise) flows through Rng
 * so that every experiment is reproducible from a seed. The generator
 * is xoshiro256**, which is small, fast, and has no global state.
 */

#ifndef PARALLAX_SIM_RNG_HH
#define PARALLAX_SIM_RNG_HH

#include <cstdint>

namespace parallax
{

/** Seedable xoshiro256** generator with convenience distributions. */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /**
     * Decorrelated generator for stream `stream` of master `seed`.
     *
     * Lane-parallel components (docs/SIMULATOR.md) each need their
     * own generator: sharing one Rng across lanes would make draw
     * order — and therefore every downstream stat — depend on host
     * scheduling. forStream(seed, lane) derives an independent state
     * per lane from the same master seed, so per-lane sequences are
     * reproducible and identical between serial and parallel runs.
     * Streams are mixed through splitmix64, not added to the seed,
     * so nearby stream ids do not yield correlated states.
     */
    static Rng forStream(std::uint64_t seed, std::uint64_t stream);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Returns 0 when n == 0. */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /** Standard normal variate (Box-Muller). */
    double gaussian();

    /** Normal variate with given mean and standard deviation. */
    double gaussian(double mean, double stddev);

  private:
    std::uint64_t state_[4];
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

} // namespace parallax

#endif // PARALLAX_SIM_RNG_HH
