/**
 * @file
 * Discrete-event simulation kernel, serial and quantum-parallel.
 *
 * A minimal event queue in the gem5 style: events are callbacks
 * scheduled at absolute Ticks; run() drains the queue in time order.
 * The NoC and the ParallAX task scheduler are built on this kernel;
 * the trace-driven cache models run in bulk and only use Ticks for
 * accounting.
 *
 * On top of the serial queue sits the parti-gem5-style parallel
 * kernel (LaneSet): simulated components are partitioned onto
 * independent event *lanes*, each lane owning a private EventQueue.
 * Lanes step freely inside a synchronization quantum bounded by the
 * minimum cross-lane communication latency, barrier at quantum
 * edges, and exchange work only through cross-lane messages whose
 * send latency must be >= the quantum. Messages are merged at the
 * barrier in a deterministic order — (arrival tick, source lane,
 * per-lane sequence number) — so a LaneSet produces bit-identical
 * component stats whether its lanes execute serially on one host
 * thread (parallelLanes = 0, the reference implementation) or
 * concurrently on many. See docs/SIMULATOR.md for the full
 * determinism contract.
 */

#ifndef PARALLAX_SIM_EVENT_QUEUE_HH
#define PARALLAX_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "ticks.hh"

namespace parallax
{

/** Time-ordered queue of callback events. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule a callback at an absolute tick (>= now). */
    void schedule(Tick when, Callback cb);

    /** Schedule a callback delta ticks after now. */
    void scheduleAfter(Tick delta, Callback cb);

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** True when no events remain. */
    bool empty() const { return events_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return events_.size(); }

    /**
     * Run events until the queue is empty or the time limit is
     * reached.
     *
     * @param limit Stop before executing events later than this tick.
     * @return Number of events executed.
     */
    std::uint64_t run(Tick limit = ~Tick(0));

    /** Execute the single next event, if any. Returns false if empty. */
    bool step();

    /** Tick of the earliest pending event (~Tick(0) when empty). */
    Tick nextEventTick() const
    { return events_.empty() ? ~Tick(0) : events_.top().when; }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t sequence;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.sequence > b.sequence;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    Tick now_ = 0;
    std::uint64_t nextSequence_ = 0;
};

// --- Quantum-synchronized parallel kernel ------------------------------

/** Configuration of the parallel simulation kernel. */
struct SimConfig
{
    /**
     * Host threads executing lanes concurrently within a quantum.
     * 0 (the default) selects the serial reference implementation:
     * the same quantum loop, lanes stepped one after another in lane
     * id order on the calling thread. The parallel path is
     * bit-identical to it by construction (see LaneSet).
     */
    unsigned parallelLanes = 0;

    /**
     * Synchronization quantum in ticks. Every lane may run `quantum`
     * ticks ahead of the slowest lane before the barrier; no
     * cross-lane message may be sent with a latency below it.
     * Components derive it from the minimum cross-lane communication
     * latency (one NoC hop + link serialization — see
     * MeshModel::minCrossLaneLatency()).
     */
    Tick quantum = 1;
};

class LaneSet;

/**
 * One event lane: a private EventQueue plus an outbox of cross-lane
 * messages. Components registered on a lane schedule local events
 * directly on queue() and talk to components on other lanes only
 * through send(), which enforces the >= quantum latency guarantee.
 */
class EventLane
{
  public:
    unsigned id() const { return id_; }

    /** The lane-local event queue (intra-lane scheduling only). */
    EventQueue &queue() { return queue_; }
    const EventQueue &queue() const { return queue_; }

    /** Current simulated time of this lane. */
    Tick now() const { return queue_.now(); }

    /**
     * Send a callback to `dstLane`, to run `latency` ticks after
     * now(). The latency must be >= the owning LaneSet's quantum
     * (panics otherwise): that bound is what makes intra-quantum
     * lane execution independent, and therefore parallelizable with
     * bit-identical results. Delivery happens at the next quantum
     * barrier, merged deterministically across source lanes.
     */
    void send(unsigned dstLane, Tick latency, EventQueue::Callback cb);

  private:
    friend class LaneSet;

    struct Message
    {
        Tick when;
        unsigned dst;
        std::uint64_t sequence;
        EventQueue::Callback cb;
    };

    EventQueue queue_;
    std::vector<Message> outbox_;
    LaneSet *owner_ = nullptr;
    unsigned id_ = 0;
    std::uint64_t nextSequence_ = 0;
    std::uint64_t eventsExecuted_ = 0;
};

/**
 * A set of event lanes stepped under quantum synchronization
 * (parti-gem5 style).
 *
 * Execution alternates two phases until every lane is drained (or a
 * tick limit is hit):
 *
 *   1. *Quantum phase*: each lane runs its private queue up to the
 *      quantum edge. With SimConfig::parallelLanes == 0 lanes run
 *      serially in lane id order; otherwise they run concurrently on
 *      the host executor installed via setParallelRunner() (the
 *      bench harness wires this to the Chase-Lev TaskScheduler).
 *   2. *Barrier phase*: outboxes are collected, sorted by
 *      (arrival tick, source lane id, per-lane sequence number) and
 *      delivered into the destination lanes' queues in that order.
 *
 * Because a message's arrival tick is always in a later quantum than
 * its send (latency >= quantum), a lane's execution within a quantum
 * depends only on state fixed at the previous barrier — so the
 * parallel schedule and the serial schedule execute the exact same
 * events at the exact same ticks in the exact same per-lane order,
 * and all component stats come out bit-identical. Empty stretches of
 * simulated time are skipped: the next quantum window is aligned to
 * the earliest pending event across lanes.
 */
class LaneSet
{
  public:
    /**
     * Host-side executor: invoked once per quantum with the lane
     * count; must call the provided function exactly once for every
     * lane index (in any order, on any thread) and return only when
     * all calls completed.
     */
    using LaneRunner = std::function<void(
        unsigned laneCount, const std::function<void(unsigned)> &)>;

    /** Progress counters (all integers: order-independent merges). */
    struct Stats
    {
        std::uint64_t quanta = 0;
        std::uint64_t eventsExecuted = 0;
        std::uint64_t messagesMerged = 0;
        /**
         * Worst per-quantum lane imbalance observed: max minus min
         * events executed by any lane inside one quantum. High skew
         * means the partition onto lanes is unbalanced and parallel
         * efficiency is capped by the busiest lane.
         */
        std::uint64_t maxQuantumSkew = 0;
    };

    LaneSet(unsigned lanes, SimConfig config);

    unsigned laneCount() const
    { return static_cast<unsigned>(lanes_.size()); }
    EventLane &lane(unsigned i);
    Tick quantum() const { return config_.quantum; }
    const SimConfig &config() const { return config_; }

    /**
     * Install the host executor used when parallelLanes > 0. Without
     * a runner (or with parallelLanes == 0) quanta execute serially.
     * The runner must satisfy the LaneRunner contract above.
     */
    void setParallelRunner(LaneRunner runner);

    /** Hooks bracketing each quantum (trace-span instrumentation).
     *  Leave unset for zero overhead beyond a branch. */
    struct Hooks
    {
        std::function<void(Tick quantumStart, Tick quantumEnd)>
            quantumBegin;
        std::function<void(Tick quantumStart, Tick quantumEnd)>
            quantumEnd;
    };
    void setHooks(Hooks hooks) { hooks_ = std::move(hooks); }

    /**
     * Run quanta until every lane is drained or the next event lies
     * beyond `limit`. Returns the number of events executed.
     */
    std::uint64_t run(Tick limit = ~Tick(0));

    /** True when no lane has a pending event. */
    bool drained() const;

    const Stats &stats() const { return stats_; }

  private:
    friend class EventLane;

    /** Deliver all outboxes in deterministic merge order. */
    void mergeMessages();

    SimConfig config_;
    std::vector<std::unique_ptr<EventLane>> lanes_;
    LaneRunner runner_;
    Hooks hooks_;
    Stats stats_;
};

} // namespace parallax

#endif // PARALLAX_SIM_EVENT_QUEUE_HH
