/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A minimal event queue in the gem5 style: events are callbacks
 * scheduled at absolute Ticks; run() drains the queue in time order.
 * The NoC and the ParallAX task scheduler are built on this kernel;
 * the trace-driven cache models run in bulk and only use Ticks for
 * accounting.
 */

#ifndef PARALLAX_SIM_EVENT_QUEUE_HH
#define PARALLAX_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "ticks.hh"

namespace parallax
{

/** Time-ordered queue of callback events. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule a callback at an absolute tick (>= now). */
    void schedule(Tick when, Callback cb);

    /** Schedule a callback delta ticks after now. */
    void scheduleAfter(Tick delta, Callback cb);

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** True when no events remain. */
    bool empty() const { return events_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return events_.size(); }

    /**
     * Run events until the queue is empty or the time limit is
     * reached.
     *
     * @param limit Stop before executing events later than this tick.
     * @return Number of events executed.
     */
    std::uint64_t run(Tick limit = ~Tick(0));

    /** Execute the single next event, if any. Returns false if empty. */
    bool step();

  private:
    struct Event
    {
        Tick when;
        std::uint64_t sequence;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.sequence > b.sequence;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    Tick now_ = 0;
    std::uint64_t nextSequence_ = 0;
};

} // namespace parallax

#endif // PARALLAX_SIM_EVENT_QUEUE_HH
