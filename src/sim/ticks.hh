/**
 * @file
 * Simulated time units.
 *
 * All timing models in the simulator express time in cycles of a
 * 2 GHz clock (the frequency used for every core in the paper,
 * Tables 5 and 6). Helpers convert between cycles, seconds, and the
 * 30 FPS frame budget.
 */

#ifndef PARALLAX_SIM_TICKS_HH
#define PARALLAX_SIM_TICKS_HH

#include <cstdint>

namespace parallax
{

/** A point or span of simulated time, measured in clock cycles. */
using Tick = std::uint64_t;

/** Clock frequency shared by all modelled cores (Hz). */
constexpr double clockFrequencyHz = 2.0e9;

/** Frame budget for interactive frame rates: 30 FPS. */
constexpr double targetFps = 30.0;

/** Convert a cycle count at 2 GHz into seconds. */
constexpr double
cyclesToSeconds(Tick cycles)
{
    return static_cast<double>(cycles) / clockFrequencyHz;
}

/** Convert seconds into cycles at 2 GHz. */
constexpr Tick
secondsToCycles(double seconds)
{
    return static_cast<Tick>(seconds * clockFrequencyHz);
}

/** One frame's worth of time at 30 FPS, in seconds (~33 ms). */
constexpr double
frameBudgetSeconds()
{
    return 1.0 / targetFps;
}

/** One frame's worth of time at 30 FPS, in cycles. */
constexpr Tick
frameBudgetCycles()
{
    return secondsToCycles(frameBudgetSeconds());
}

} // namespace parallax

#endif // PARALLAX_SIM_TICKS_HH
