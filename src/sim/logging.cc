#include "logging.hh"

#include <cstdio>

namespace parallax
{
namespace detail
{

namespace
{

const char *
prefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // namespace

void
log(LogLevel level, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", prefix(level), msg.c_str());
}

void
logAndExit(LogLevel level, const std::string &msg)
{
    log(level, msg);
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail
} // namespace parallax
