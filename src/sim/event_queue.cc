#include "event_queue.hh"

#include "logging.hh"

namespace parallax
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < now_)
        panic("scheduling event in the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    events_.push(Event{when, nextSequence_++, std::move(cb)});
}

void
EventQueue::scheduleAfter(Tick delta, Callback cb)
{
    schedule(now_ + delta, std::move(cb));
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t executed = 0;
    while (!events_.empty() && events_.top().when <= limit) {
        if (!step())
            break;
        ++executed;
    }
    return executed;
}

bool
EventQueue::step()
{
    if (events_.empty())
        return false;
    // priority_queue::top() returns const&; move out via const_cast is
    // unsafe with heap invariants, so copy the callback handle instead.
    Event ev = events_.top();
    events_.pop();
    now_ = ev.when;
    ev.cb();
    return true;
}

} // namespace parallax
