#include "event_queue.hh"

#include <algorithm>

#include "logging.hh"

namespace parallax
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < now_)
        panic("scheduling event in the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    events_.push(Event{when, nextSequence_++, std::move(cb)});
}

void
EventQueue::scheduleAfter(Tick delta, Callback cb)
{
    schedule(now_ + delta, std::move(cb));
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t executed = 0;
    while (!events_.empty() && events_.top().when <= limit) {
        if (!step())
            break;
        ++executed;
    }
    return executed;
}

bool
EventQueue::step()
{
    if (events_.empty())
        return false;
    // priority_queue::top() returns const&; move out via const_cast is
    // unsafe with heap invariants, so copy the callback handle instead.
    Event ev = events_.top();
    events_.pop();
    now_ = ev.when;
    ev.cb();
    return true;
}

// --- Quantum-synchronized parallel kernel ------------------------------

void
EventLane::send(unsigned dstLane, Tick latency,
                EventQueue::Callback cb)
{
    parallax_assert(owner_ != nullptr);
    if (dstLane >= owner_->laneCount())
        panic("send to invalid lane %u (of %u)", dstLane,
              owner_->laneCount());
    if (latency < owner_->quantum()) {
        panic("cross-lane send latency %llu below the sync quantum "
              "%llu (lane %u -> %u): intra-quantum lane execution "
              "would no longer be independent",
              static_cast<unsigned long long>(latency),
              static_cast<unsigned long long>(owner_->quantum()),
              id_, dstLane);
    }
    // The outbox is lane-private: only this lane appends, and the
    // barrier drains it while no lane is running, so no lock is
    // needed even when lanes execute on different host threads.
    outbox_.push_back(Message{queue_.now() + latency, dstLane,
                              nextSequence_++, std::move(cb)});
}

LaneSet::LaneSet(unsigned lanes, SimConfig config)
    : config_(config)
{
    if (lanes == 0)
        fatal("a LaneSet needs at least one lane");
    if (config_.quantum == 0)
        fatal("the sync quantum must be at least one tick");
    lanes_.reserve(lanes);
    for (unsigned i = 0; i < lanes; ++i) {
        auto lane = std::make_unique<EventLane>();
        lane->owner_ = this;
        lane->id_ = i;
        lanes_.push_back(std::move(lane));
    }
}

EventLane &
LaneSet::lane(unsigned i)
{
    parallax_assert(i < lanes_.size());
    return *lanes_[i];
}

void
LaneSet::setParallelRunner(LaneRunner runner)
{
    runner_ = std::move(runner);
}

bool
LaneSet::drained() const
{
    for (const auto &lane : lanes_) {
        if (!lane->queue_.empty())
            return false;
    }
    return true;
}

void
LaneSet::mergeMessages()
{
    // Deterministic merge: deliver every pending cross-lane message
    // in (arrival tick, source lane id, per-lane sequence) order.
    // Outboxes are scanned in lane id order, and within one lane
    // sequence numbers are already monotonic, so a stable sort on
    // (when, srcLane) alone would also do — but the explicit triple
    // is the documented contract, so sort on it directly.
    struct Pending
    {
        Tick when;
        unsigned src;
        std::uint64_t sequence;
        EventLane::Message *message;
    };
    std::vector<Pending> pending;
    for (const auto &lane : lanes_) {
        for (auto &message : lane->outbox_) {
            pending.push_back(Pending{message.when, lane->id_,
                                      message.sequence, &message});
        }
    }
    std::sort(pending.begin(), pending.end(),
              [](const Pending &a, const Pending &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.src != b.src)
                      return a.src < b.src;
                  return a.sequence < b.sequence;
              });
    for (Pending &p : pending) {
        lanes_[p.message->dst]->queue_.schedule(
            p.when, std::move(p.message->cb));
    }
    stats_.messagesMerged += pending.size();
    for (const auto &lane : lanes_)
        lane->outbox_.clear();
}

std::uint64_t
LaneSet::run(Tick limit)
{
    std::uint64_t executed = 0;
    for (;;) {
        // Earliest pending event across lanes; stop when drained or
        // past the limit.
        Tick next = ~Tick(0);
        for (const auto &lane : lanes_)
            next = std::min(next, lane->queue_.nextEventTick());
        if (next == ~Tick(0) || next > limit)
            break;

        // Skip idle stretches: align the quantum window to the
        // earliest event. Windows are [start, start + quantum).
        const Tick start = next - next % config_.quantum;
        const Tick edge =
            (start > limit - (config_.quantum - 1))
                ? limit
                : start + config_.quantum - 1;

        if (hooks_.quantumBegin)
            hooks_.quantumBegin(start, edge);

        // Quantum phase: every lane runs its private queue up to the
        // edge. Lanes share no mutable state inside the window
        // (cross-lane messages can only arrive at later quanta), so
        // the serial path and the parallel path execute identical
        // per-lane schedules.
        auto runLane = [this, edge](unsigned i) {
            lanes_[i]->eventsExecuted_ = lanes_[i]->queue_.run(edge);
        };
        if (config_.parallelLanes > 0 && runner_) {
            runner_(laneCount(), runLane);
        } else {
            for (unsigned i = 0; i < laneCount(); ++i)
                runLane(i);
        }

        // Barrier phase: account progress, then deliver messages.
        std::uint64_t quantumMin = ~std::uint64_t(0);
        std::uint64_t quantumMax = 0;
        for (const auto &lane : lanes_) {
            executed += lane->eventsExecuted_;
            stats_.eventsExecuted += lane->eventsExecuted_;
            quantumMin = std::min(quantumMin, lane->eventsExecuted_);
            quantumMax = std::max(quantumMax, lane->eventsExecuted_);
        }
        stats_.maxQuantumSkew = std::max(stats_.maxQuantumSkew,
                                         quantumMax - quantumMin);
        ++stats_.quanta;
        mergeMessages();

        if (hooks_.quantumEnd)
            hooks_.quantumEnd(start, edge);
        if (edge == limit)
            break;
    }
    return executed;
}

} // namespace parallax
