/**
 * @file
 * Status and error reporting helpers in the gem5 idiom.
 *
 * fatal() is for user error (bad configuration, invalid arguments):
 * it prints the message and exits with status 1. panic() is for
 * conditions that indicate a bug in the simulator itself: it prints
 * the message and aborts. inform() and warn() report status without
 * stopping the simulation.
 */

#ifndef PARALLAX_SIM_LOGGING_HH
#define PARALLAX_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace parallax
{

/** Severity of a log message. */
enum class LogLevel
{
    Info,
    Warn,
    Fatal,
    Panic,
};

namespace detail
{

[[noreturn]] void logAndExit(LogLevel level, const std::string &msg);
void log(LogLevel level, const std::string &msg);

/** Minimal printf-style formatter returning a std::string. */
template <typename... Args>
std::string
format(const char *fmt, Args &&...args)
{
    if constexpr (sizeof...(Args) == 0) {
        return std::string(fmt);
    } else {
        int n = std::snprintf(nullptr, 0, fmt, args...);
        if (n < 0)
            return std::string(fmt);
        std::string buf(static_cast<size_t>(n), '\0');
        std::snprintf(buf.data(), buf.size() + 1, fmt, args...);
        return buf;
    }
}

} // namespace detail

/** Report normal operating status to the user. */
template <typename... Args>
void
inform(const char *fmt, Args &&...args)
{
    detail::log(LogLevel::Info,
                detail::format(fmt, std::forward<Args>(args)...));
}

/** Report behaviour that might work well enough but deserves attention. */
template <typename... Args>
void
warn(const char *fmt, Args &&...args)
{
    detail::log(LogLevel::Warn,
                detail::format(fmt, std::forward<Args>(args)...));
}

/** Terminate due to a condition that is the user's fault. */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args &&...args)
{
    detail::logAndExit(LogLevel::Fatal,
                       detail::format(fmt, std::forward<Args>(args)...));
}

/** Terminate due to a condition that should never happen (a bug). */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args &&...args)
{
    detail::logAndExit(LogLevel::Panic,
                       detail::format(fmt, std::forward<Args>(args)...));
}

/** panic() unless the given condition holds. */
#define parallax_assert(cond)                                           \
    do {                                                                 \
        if (!(cond))                                                     \
            ::parallax::panic("assertion '%s' failed at %s:%d",          \
                              #cond, __FILE__, __LINE__);                \
    } while (0)

} // namespace parallax

#endif // PARALLAX_SIM_LOGGING_HH
