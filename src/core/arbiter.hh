/**
 * @file
 * Dynamic coupling of FG cores to CG cores (section 7.1).
 *
 * The FG cores are logically divided evenly among the CG cores;
 * each set is controlled by an arbiter that serves CG cores in a
 * priority order unique to that arbiter. With balanced demand every
 * CG core gets its own set (maximizing locality); when one CG core
 * has a larger load, arbiters whose preferred CG core is idle hand
 * their FG cores to the loaded one — so a single large task can use
 * the whole pool. A static policy (each FG set hardwired to one CG
 * core) is provided for the ablation of section 8.2.1.
 */

#ifndef PARALLAX_CORE_ARBITER_HH
#define PARALLAX_CORE_ARBITER_HH

#include <cstdint>
#include <vector>

#include "sim/ticks.hh"

namespace parallax
{

/** One FG work item issued by a CG core. */
struct FgTask
{
    Tick cycles = 0;   // Compute time on the FG core.
    int cgOwner = 0;   // Submitting CG core.
};

/** Arbitration policy under study. */
enum class ArbitrationPolicy
{
    /** Hierarchical arbiters with priority rotation (ParallAX). */
    Flexible,
    /** FG sets hardwired to their CG core (the scaled-up baseline). */
    Static,
};

/** Outcome of scheduling one batch of FG tasks. */
struct ScheduleResult
{
    Tick makespan = 0;
    std::uint64_t tasksExecuted = 0;
    double fgUtilization = 0.0; // busy / (makespan * cores).
    /** Tasks executed by FG cores belonging to each CG set. */
    std::vector<std::uint64_t> tasksPerFgSet;
    /** Tasks that ran on an FG core outside the owner's set. */
    std::uint64_t tasksBorrowed = 0;
};

/** The FG-pool scheduler with hierarchical arbitration. */
class FgScheduler
{
  public:
    /**
     * @param num_cg CG cores (= number of arbiters / FG sets).
     * @param num_fg FG cores in the pool.
     * @param dispatch_latency Communication cycles to hand a task
     *        to an FG core (overlapped across tasks by buffering,
     *        so charged once per idle->busy transition).
     */
    FgScheduler(int num_cg, int num_fg, Tick dispatch_latency,
                ArbitrationPolicy policy);

    /**
     * Schedule all tasks to completion.
     *
     * @param queues Per-CG-core task queues (FIFO order).
     */
    ScheduleResult run(std::vector<std::vector<FgTask>> queues) const;

    int numCgCores() const { return numCg_; }
    int numFgCores() const { return numFg_; }

  private:
    int numCg_;
    int numFg_;
    Tick dispatchLatency_;
    ArbitrationPolicy policy_;
};

} // namespace parallax

#endif // PARALLAX_CORE_ARBITER_HH
