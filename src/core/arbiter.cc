#include "arbiter.hh"

#include <algorithm>
#include <queue>

#include "sim/logging.hh"

namespace parallax
{

FgScheduler::FgScheduler(int num_cg, int num_fg,
                         Tick dispatch_latency,
                         ArbitrationPolicy policy)
    : numCg_(num_cg), numFg_(num_fg),
      dispatchLatency_(dispatch_latency), policy_(policy)
{
    if (num_cg < 1 || num_fg < 1)
        fatal("scheduler needs at least one CG and one FG core");
}

ScheduleResult
FgScheduler::run(std::vector<std::vector<FgTask>> queues) const
{
    if (static_cast<int>(queues.size()) != numCg_)
        fatal("expected %d CG task queues, got %zu", numCg_,
              queues.size());

    ScheduleResult result;
    result.tasksPerFgSet.assign(numCg_, 0);

    // Per-CG queue cursors.
    std::vector<std::size_t> cursor(numCg_, 0);
    auto queueEmpty = [&](int cg) {
        return cursor[cg] >= queues[cg].size();
    };

    // FG core free-time heap: (freeTime, coreIndex).
    using CoreEvent = std::pair<Tick, int>;
    std::priority_queue<CoreEvent, std::vector<CoreEvent>,
                        std::greater<>>
        free_heap;
    for (int f = 0; f < numFg_; ++f)
        free_heap.push({0, f});

    // FG set (arbiter) of a core: round-robin striping keeps sets
    // even when numFg is not a multiple of numCg.
    auto setOf = [&](int core) { return core % numCg_; };

    std::uint64_t busy_cycles = 0;
    Tick makespan = 0;

    while (!free_heap.empty()) {
        const auto [free_time, core] = free_heap.top();
        free_heap.pop();
        const int arbiter = setOf(core);

        // Arbiter priority order: its own CG core first, then the
        // others in rotated order (Flexible); Static never rotates.
        int chosen_cg = -1;
        if (policy_ == ArbitrationPolicy::Flexible) {
            for (int k = 0; k < numCg_; ++k) {
                const int cg = (arbiter + k) % numCg_;
                if (!queueEmpty(cg)) {
                    chosen_cg = cg;
                    break;
                }
            }
        } else {
            if (!queueEmpty(arbiter))
                chosen_cg = arbiter;
        }
        if (chosen_cg < 0)
            continue; // This core is done for the batch.

        const FgTask &task = queues[chosen_cg][cursor[chosen_cg]++];
        // Buffered dispatch overlaps communication with the
        // previous task's computation; only an idle core exposes
        // the dispatch latency.
        const Tick start =
            free_time == 0 ? dispatchLatency_ : free_time;
        const Tick end = start + task.cycles;
        busy_cycles += task.cycles;
        makespan = std::max(makespan, end);
        ++result.tasksExecuted;
        ++result.tasksPerFgSet[arbiter];
        if (chosen_cg != arbiter)
            ++result.tasksBorrowed;
        free_heap.push({end, core});
    }

    result.makespan = makespan;
    if (makespan > 0) {
        result.fgUtilization =
            static_cast<double>(busy_cycles) /
            (static_cast<double>(makespan) * numFg_);
    }
    return result;
}

} // namespace parallax
