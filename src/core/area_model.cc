#include "area_model.hh"

namespace parallax
{

namespace area
{

double
coreArea(FgCoreClass cls)
{
    switch (cls) {
      case FgCoreClass::Desktop:
        // Core 2 Duo class core at 90 nm.
        return 45.8;
      case FgCoreClass::Console:
        // Cell SPE class core.
        return 21.1;
      case FgCoreClass::Shader:
        // G80 shader class core.
        return 3.54;
      case FgCoreClass::Limit:
        // The limit-study core is not a buildable design; charge a
        // deliberately absurd area so no sizing study picks it.
        return 500.0;
    }
    return 0.0;
}

} // namespace area

AreaEstimate
fgPoolArea(FgCoreClass cls, int count, double local_store_kb)
{
    AreaEstimate est;
    est.coresMm2 = area::coreArea(cls) * count;
    est.interconnectMm2 = area::meshRouter * count;
    est.localStoreMm2 = area::sramPerKb * local_store_kb * count;
    return est;
}

} // namespace parallax
