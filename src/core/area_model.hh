/**
 * @file
 * 90 nm area model (section 8.2.1).
 *
 * Per-core areas are derived from published die areas and photos
 * (Intel Core 2 Duo, IBM Cell SPE, NVIDIA G80 shader); router area
 * from the Polaris system-level roadmap. The paper's totals for the
 * cores required at 30 FPS are 1388 mm^2 (30 desktop), 926 mm^2
 * (43 console), and 591 mm^2 (150 shader) — which these constants
 * reproduce, including the local instruction/data SRAM per FG core.
 */

#ifndef PARALLAX_CORE_AREA_MODEL_HH
#define PARALLAX_CORE_AREA_MODEL_HH

#include "fg_core_model.hh"

namespace parallax
{

/** Area parameters at 90 nm, in mm^2. */
namespace area
{
/** Core area by class (die-photo derived). */
double coreArea(FgCoreClass cls);

/** One mesh router (Polaris, 90 nm). */
constexpr double meshRouter = 0.34;

/** Local SRAM per FG core: mm^2 per KB at 90 nm. */
constexpr double sramPerKb = 0.012;
} // namespace area

/** Breakdown of one FG pool configuration's area. */
struct AreaEstimate
{
    double coresMm2 = 0.0;
    double interconnectMm2 = 0.0;
    double localStoreMm2 = 0.0;

    double
    total() const
    {
        return coresMm2 + interconnectMm2 + localStoreMm2;
    }
};

/**
 * Area of `count` FG cores of a class with `local_store_kb` of
 * instruction + data SRAM each, connected by a 2D mesh.
 */
AreaEstimate fgPoolArea(FgCoreClass cls, int count,
                        double local_store_kb = 4.7);

} // namespace parallax

#endif // PARALLAX_CORE_AREA_MODEL_HH
