/**
 * @file
 * Fine-grain core characterization: measured kernel IPC per core
 * class, per-task cycle costs, and local-memory requirements
 * (section 8.1.2 / Figure 10a).
 */

#ifndef PARALLAX_CORE_FG_CORE_MODEL_HH
#define PARALLAX_CORE_FG_CORE_MODEL_HH

#include <array>

#include "cpu/ooo_core.hh"
#include "isa/kernels.hh"

namespace parallax
{

/** The four FG core classes of Table 6. */
enum class FgCoreClass
{
    Desktop,
    Console,
    Shader,
    Limit,
};

constexpr int numFgCoreClasses = 4;

constexpr FgCoreClass realFgCoreClasses[3] = {
    FgCoreClass::Desktop,
    FgCoreClass::Console,
    FgCoreClass::Shader,
};

const char *fgCoreClassName(FgCoreClass cls);

/** CoreConfig for a class. */
CoreConfig fgCoreConfig(FgCoreClass cls);

/** Measured execution characteristics of one kernel on one core. */
struct KernelTiming
{
    double ipc = 0.0;
    double cyclesPerTask = 0.0;
    double instructionsPerTask = 0.0;
    double mispredictRate = 0.0;
};

/**
 * Runs each kernel on each core class (once; results cached) and
 * serves the measurements.
 */
class FgCoreModel
{
  public:
    /** @param tasks Tasks sampled per measurement (paper: 100). */
    explicit FgCoreModel(int tasks = 100, std::uint64_t seed = 1);

    const KernelTiming &timing(FgCoreClass cls, KernelId kernel) const;

    /** Dynamic instruction mix of a kernel (core independent). */
    const OpVector &kernelMix(KernelId kernel) const;

    /**
     * Local data memory (bytes) needed to buffer `tasks_buffered`
     * tasks of a kernel, from the paper's per-100-iteration unique
     * read/write footprints (section 8.1.2).
     */
    static std::uint64_t dataBytesForTasks(KernelId kernel,
                                           int tasks_buffered);

    /** Paper unique-read bytes per 100 iterations. */
    static std::uint64_t uniqueReadBytesPer100(KernelId kernel);

    /** Paper unique-write bytes per 100 iterations. */
    static std::uint64_t uniqueWriteBytesPer100(KernelId kernel);

  private:
    std::array<std::array<KernelTiming, numKernels>,
               numFgCoreClasses>
        timings_{};
    std::array<OpVector, numKernels> mixes_{};
};

} // namespace parallax

#endif // PARALLAX_CORE_FG_CORE_MODEL_HH
