#include "parallax_system.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace parallax
{

KernelId
kernelForPhase(Phase phase)
{
    switch (phase) {
      case Phase::Narrowphase: return KernelId::Narrowphase;
      case Phase::IslandProcessing: return KernelId::IslandProcessing;
      case Phase::Cloth: return KernelId::Cloth;
      default:
        panic("phase %s has no FG kernel", phaseName(phase));
    }
}

ParallaxSystem::ParallaxSystem(const FgCoreModel &model)
    : model_(model)
{
}

std::array<double, numKernels>
ParallaxSystem::fgInstructionsPerFrame(const StepProfile &frame)
{
    std::array<double, numKernels> instr{};
    instr[static_cast<int>(KernelId::Narrowphase)] =
        frame.fg(Phase::Narrowphase).total();
    instr[static_cast<int>(KernelId::IslandProcessing)] =
        frame.fg(Phase::IslandProcessing).total();
    instr[static_cast<int>(KernelId::Cloth)] =
        frame.fg(Phase::Cloth).total();
    return instr;
}

Tick
ParallaxSystem::roundTripCycles(KernelId kernel,
                                InterconnectKind kind,
                                int cores) const
{
    // One batch carries the per-task unique data for 100 iterations
    // (the paper's sampling unit) plus the control packet; the
    // return trip carries the written data.
    const MeshModel mesh(cores);
    const std::uint64_t send_bytes =
        FgCoreModel::uniqueReadBytesPer100(kernel) +
        ControlPacket::serializedBytes();
    const std::uint64_t recv_bytes =
        FgCoreModel::uniqueWriteBytesPer100(kernel) +
        DataPacketHeader::serializedBytes();
    const double mean_hops = mesh.averageHopsFromPort();
    return dispatchLatency(kind, mesh, mean_hops, send_bytes) +
           dispatchLatency(kind, mesh, mean_hops, recv_bytes);
}

std::uint64_t
ParallaxSystem::tasksToHidePerCore(FgCoreClass cls, KernelId kernel,
                                   InterconnectKind kind,
                                   int cores) const
{
    const KernelTiming &t = model_.timing(cls, kernel);
    const Tick rtt = roundTripCycles(kernel, kind, cores);
    // Tasks in flight per core so computation covers the round trip.
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(static_cast<double>(rtt) /
                         std::max(t.cyclesPerTask, 1.0))));
}

std::uint64_t
ParallaxSystem::tasksToHide(FgCoreClass cls, KernelId kernel,
                            InterconnectKind kind, int cores) const
{
    return tasksToHidePerCore(cls, kernel, kind, cores) *
           static_cast<std::uint64_t>(cores);
}

int
ParallaxSystem::coresRequired(
    FgCoreClass cls, const std::array<double, numKernels> &fg_instr,
    double available_seconds, InterconnectKind kind,
    int steps_per_frame) const
{
    if (available_seconds <= 0)
        fatal("no frame time available for FG computation");

    // Total FG compute cycles on one core of this class.
    double total_cycles = 0;
    for (int k = 0; k < numKernels; ++k) {
        const KernelTiming &t =
            model_.timing(cls, allKernels[k]);
        total_cycles += fg_instr[k] / std::max(t.ipc, 1e-6);
    }

    // Iterate: startup/drain costs depend on the mesh size, which
    // depends on the core count.
    int cores = std::max(
        1, static_cast<int>(std::ceil(
               total_cycles /
               (available_seconds * clockFrequencyHz))));
    for (int iter = 0; iter < 4; ++iter) {
        // Startup + post-process communication per parallel phase
        // per step (section 8.2.1 assumes everything else overlaps).
        double startup_cycles = 0;
        for (KernelId kernel : allKernels) {
            startup_cycles += 2.0 * static_cast<double>(
                roundTripCycles(kernel, kind, cores));
        }
        startup_cycles *= steps_per_frame;
        const double effective_seconds = available_seconds -
            startup_cycles / clockFrequencyHz;
        if (effective_seconds <= 0)
            fatal("interconnect startup exceeds the frame budget");
        const int next = std::max(
            1, static_cast<int>(std::ceil(
                   total_cycles /
                   (effective_seconds * clockFrequencyHz))));
        if (next == cores)
            break;
        cores = next;
    }
    return cores;
}

double
ParallaxSystem::filteredWorkFraction(
    const std::vector<int> &task_counts, std::uint64_t threshold)
{
    double total = 0;
    double filtered = 0;
    for (int count : task_counts) {
        total += count;
        if (static_cast<std::uint64_t>(count) < threshold)
            filtered += count;
    }
    return total > 0 ? filtered / total : 0.0;
}

} // namespace parallax
