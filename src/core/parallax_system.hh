/**
 * @file
 * ParallAX system-level sizing and latency-hiding analysis
 * (sections 8.2.1 and 8.2.2).
 *
 * Combines the workload's fine-grain demand (from the benchmark
 * profiles), the measured kernel IPC per FG core class, and the
 * interconnect models to answer the paper's design questions: how
 * many FG cores of each class reach 30 FPS, how much buffering and
 * parallelism hides the communication latency, and how much work
 * must be filtered off the FG cores when latency cannot be hidden.
 */

#ifndef PARALLAX_CORE_PARALLAX_SYSTEM_HH
#define PARALLAX_CORE_PARALLAX_SYSTEM_HH

#include <array>

#include "fg_core_model.hh"
#include "noc/interconnect.hh"
#include "workload/instrumentation.hh"

namespace parallax
{

/** Map a parallel phase to the FG kernel that executes it. */
KernelId kernelForPhase(Phase phase);

/** The ParallAX sizing model. */
class ParallaxSystem
{
  public:
    explicit ParallaxSystem(const FgCoreModel &model);

    /**
     * FG instructions per frame for each kernel, taken from a
     * frame's aggregated profile (the fg component of each parallel
     * phase).
     */
    static std::array<double, numKernels>
    fgInstructionsPerFrame(const StepProfile &frame);

    /**
     * Minimum FG cores of a class to complete the given FG demand
     * within `available_seconds` (Figure 10b). Startup and
     * post-process communication (which cannot be overlapped) is
     * charged per phase per step.
     *
     * @param steps_per_frame Simulation steps per frame (paper: 3).
     */
    int coresRequired(FgCoreClass cls,
                      const std::array<double, numKernels> &fg_instr,
                      double available_seconds,
                      InterconnectKind kind,
                      int steps_per_frame = 3) const;

    /**
     * Tasks that must be in flight per FG core to hide the
     * round-trip dispatch latency of one task batch (Table 7 is
     * this multiplied by the core count).
     */
    std::uint64_t tasksToHidePerCore(FgCoreClass cls,
                                     KernelId kernel,
                                     InterconnectKind kind,
                                     int cores) const;

    /** Table 7 entry: total in-flight tasks across the pool. */
    std::uint64_t tasksToHide(FgCoreClass cls, KernelId kernel,
                              InterconnectKind kind,
                              int cores) const;

    /**
     * Fraction of a phase's FG work lost when tasks can only be
     * offloaded from islands/cloths with at least `threshold` FG
     * tasks (section 8.2.2's filtering analysis).
     *
     * @param task_counts Per-container FG task counts (rows per
     *        island or vertices per cloth).
     */
    static double filteredWorkFraction(
        const std::vector<int> &task_counts,
        std::uint64_t threshold);

    const FgCoreModel &model() const { return model_; }

  private:
    /** Round-trip dispatch cycles for one task batch. */
    Tick roundTripCycles(KernelId kernel, InterconnectKind kind,
                         int cores) const;

    const FgCoreModel &model_;
};

} // namespace parallax

#endif // PARALLAX_CORE_PARALLAX_SYSTEM_HH
