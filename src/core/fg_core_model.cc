#include "fg_core_model.hh"

#include "noc/packet.hh"
#include "sim/logging.hh"

namespace parallax
{

const char *
fgCoreClassName(FgCoreClass cls)
{
    switch (cls) {
      case FgCoreClass::Desktop: return "desktop";
      case FgCoreClass::Console: return "console";
      case FgCoreClass::Shader: return "shader";
      case FgCoreClass::Limit: return "limit";
    }
    return "?";
}

CoreConfig
fgCoreConfig(FgCoreClass cls)
{
    switch (cls) {
      case FgCoreClass::Desktop: return CoreConfig::desktop();
      case FgCoreClass::Console: return CoreConfig::console();
      case FgCoreClass::Shader: return CoreConfig::shader();
      case FgCoreClass::Limit: return CoreConfig::limit();
    }
    return CoreConfig::desktop();
}

FgCoreModel::FgCoreModel(int tasks, std::uint64_t seed)
{
    if (tasks < 1)
        fatal("FG core model needs at least one sampled task");
    for (int c = 0; c < numFgCoreClasses; ++c) {
        const auto cls = static_cast<FgCoreClass>(c);
        for (int k = 0; k < numKernels; ++k) {
            const KernelId kernel = allKernels[k];
            Machine machine;
            Rng rng(seed + k);
            packKernelInputs(kernel, machine, tasks, rng);
            OooCore core(fgCoreConfig(cls));
            const CoreRunResult run =
                core.run(kernelProgram(kernel), machine);
            KernelTiming &t = timings_[c][k];
            t.ipc = run.ipc();
            t.cyclesPerTask =
                static_cast<double>(run.cycles) / tasks;
            t.instructionsPerTask =
                static_cast<double>(run.instructions) / tasks;
            t.mispredictRate = run.branches
                ? static_cast<double>(run.mispredicts) /
                      run.branches
                : 0.0;
            if (c == 0)
                mixes_[k] = run.dynamicMix;
        }
    }
}

const KernelTiming &
FgCoreModel::timing(FgCoreClass cls, KernelId kernel) const
{
    return timings_[static_cast<int>(cls)][static_cast<int>(kernel)];
}

const OpVector &
FgCoreModel::kernelMix(KernelId kernel) const
{
    return mixes_[static_cast<int>(kernel)];
}

std::uint64_t
FgCoreModel::uniqueReadBytesPer100(KernelId kernel)
{
    // Section 8.1.2 measurements.
    switch (kernel) {
      case KernelId::Narrowphase: return 1668;
      case KernelId::IslandProcessing: return 604;
      case KernelId::Cloth: return 376;
    }
    return 0;
}

std::uint64_t
FgCoreModel::uniqueWriteBytesPer100(KernelId kernel)
{
    switch (kernel) {
      case KernelId::Narrowphase: return 100;
      case KernelId::IslandProcessing: return 128;
      case KernelId::Cloth: return 308;
    }
    return 0;
}

std::uint64_t
FgCoreModel::dataBytesForTasks(KernelId kernel, int tasks_buffered)
{
    const double per_task =
        static_cast<double>(uniqueReadBytesPer100(kernel) +
                            uniqueWriteBytesPer100(kernel)) /
        100.0;
    return static_cast<std::uint64_t>(per_task * tasks_buffered) +
           ControlPacket::serializedBytes();
}

} // namespace parallax
