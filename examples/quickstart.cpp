/**
 * @file
 * Quickstart: the physics engine in ~40 lines.
 *
 * Creates a world, drops a small stack of boxes and a ball onto the
 * ground plane, steps the simulation at the paper's rates (dt =
 * 0.01 s, 3 steps per 30 FPS frame), and prints object positions
 * and per-step statistics.
 *
 * Build and run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart [--workers N] [--grain N]
 *                                 [--deterministic]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "parallax.hh"

using namespace parallax;

namespace
{

unsigned
parseCount(const char *flag, const char *text)
{
    char *end = nullptr;
    const unsigned long value = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0') {
        std::fprintf(stderr, "%s expects a number, got '%s'\n", flag,
                     text);
        std::exit(1);
    }
    return static_cast<unsigned>(value);
}

} // namespace

int
main(int argc, char **argv)
{
    WorldConfig config; // Defaults: gravity, dt = 0.01, 20 solver
                        // iterations — the paper's parameters.
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
            config.workerThreads = parseCount("--workers", argv[++i]);
        } else if (std::strcmp(argv[i], "--grain") == 0 &&
                   i + 1 < argc) {
            config.grainSize = parseCount("--grain", argv[++i]);
        } else if (std::strcmp(argv[i], "--deterministic") == 0) {
            config.deterministic = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--workers N] [--grain N] "
                         "[--deterministic]\n",
                         argv[0]);
            return 1;
        }
    }
    World world(config);
    std::printf("workers=%u grain=%u deterministic=%s\n",
                world.config().workerThreads, world.config().grainSize,
                world.config().deterministic ? "yes" : "no");

    // Static environment: the ground plane.
    const PlaneShape *ground = world.addPlane({0, 1, 0}, 0.0);
    world.createGeom(ground, world.createStaticBody(Transform()));

    // A stack of three crates.
    const BoxShape *crate = world.addBox({0.5, 0.5, 0.5});
    for (int i = 0; i < 3; ++i) {
        RigidBody *box = world.createDynamicBody(
            Transform(Quat(), {0.0, 0.55 + i * 1.01, 0.0}), *crate,
            200.0);
        world.createGeom(crate, box);
    }

    // A bouncy ball lobbed at the stack.
    const SphereShape *ball_shape = world.addSphere(0.3);
    RigidBody *ball = world.createDynamicBody(
        Transform(Quat(), {-4.0, 1.5, 0.0}), *ball_shape, 50.0);
    ball->setLinearVelocity({6.0, 2.0, 0.0});
    world.createGeom(ball_shape, ball);

    std::printf("simulating 2 seconds (60 frames at 30 FPS)...\n");
    for (int frame = 0; frame < 60; ++frame) {
        world.stepFrame(); // 3 x dt = one display frame.
        if (frame % 15 == 0) {
            const StepStats &stats = world.lastStepStats();
            std::printf(
                "t=%4.2fs  ball=(%6.2f,%5.2f,%5.2f)  pairs=%llu "
                "contacts=%llu islands=%zu\n",
                world.time(), ball->position().x,
                ball->position().y, ball->position().z,
                static_cast<unsigned long long>(stats.pairsFound),
                static_cast<unsigned long long>(
                    stats.contactsCreated),
                stats.islands.size());
        }
    }

    std::printf("\nfinal positions:\n");
    for (const auto &body : world.bodies()) {
        if (body->isStatic())
            continue;
        std::printf("  body %u at (%6.2f, %5.2f, %6.2f)\n",
                    body->id(), body->position().x,
                    body->position().y, body->position().z);
    }
    return 0;
}
