/**
 * @file
 * PAX ISA playground: assemble and run a program on the cycle-level
 * core models.
 *
 * With no arguments, runs a built-in dot-product program on all
 * four core classes of Table 6 and prints IPC. Pass a file path to
 * assemble and run your own PAX program (see src/isa/assembler.hh
 * for the syntax), plus an optional core name
 * (desktop|console|shader|limit).
 *
 * Run: ./build/examples/pax_playground [program.pax] [core]
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "cpu/ooo_core.hh"
#include "isa/assembler.hh"

using namespace parallax;

namespace
{

const char *builtinProgram = R"(
    # Dot product of two 64-element vectors at 0x100 and 0x400,
    # result in f1 and stored at 0x800.
        li   r1, 0          # i
        li   r2, 64         # n
        li   r3, 256        # a
        li   r4, 1024       # b
        lfi  f1, 0.0
    loop:
        bge  r1, r2, done
        lf   f2, 0(r3)
        lf   f3, 0(r4)
        fmul f2, f2, f3
        fadd f1, f1, f2
        addi r3, r3, 8
        addi r4, r4, 8
        addi r1, r1, 1
        jmp  loop
    done:
        li   r5, 2048
        sf   f1, 0(r5)
        halt
)";

CoreConfig
parseCore(const char *name)
{
    if (std::strcmp(name, "console") == 0)
        return CoreConfig::console();
    if (std::strcmp(name, "shader") == 0)
        return CoreConfig::shader();
    if (std::strcmp(name, "limit") == 0)
        return CoreConfig::limit();
    return CoreConfig::desktop();
}

void
seedVectors(Machine &machine)
{
    for (int i = 0; i < 64; ++i) {
        machine.storeFp(256 + i * 8, 0.5 + i * 0.25);
        machine.storeFp(1024 + i * 8, 2.0 - i * 0.03);
    }
}

void
report(const CoreConfig &config, const Program &program)
{
    Machine machine;
    seedVectors(machine);
    OooCore core(config);
    const CoreRunResult r = core.run(program, machine);
    std::printf("  %-8s %8llu instr %8llu cycles  IPC=%.2f  "
                "mispredicts=%llu/%llu\n",
                config.name.c_str(),
                static_cast<unsigned long long>(r.instructions),
                static_cast<unsigned long long>(r.cycles), r.ipc(),
                static_cast<unsigned long long>(r.mispredicts),
                static_cast<unsigned long long>(r.branches));
}

} // namespace

int
main(int argc, char **argv)
{
    std::string source = builtinProgram;
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        source = buffer.str();
    }

    const Program program = assemble(source);
    std::printf("assembled %zu instructions (%llu bytes of "
                "instruction memory)\n\n",
                program.size(),
                static_cast<unsigned long long>(
                    program.footprintBytes()));

    if (argc > 2) {
        report(parseCore(argv[2]), program);
    } else {
        std::printf("running on all Table 6 core classes:\n");
        for (const CoreConfig &config :
             {CoreConfig::desktop(), CoreConfig::console(),
              CoreConfig::shader(), CoreConfig::limit()}) {
            report(config, program);
        }
    }

    // Show an architectural result for the built-in program.
    if (argc <= 1) {
        Machine machine;
        seedVectors(machine);
        machine.run(program);
        std::printf("\ndot product result: %.4f\n",
                    machine.loadFp(2048));
    }
    return 0;
}
