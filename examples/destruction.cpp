/**
 * @file
 * Destruction scenario: the gameplay-physics features the paper's
 * benchmarks are built from — a pre-fractured brick wall, an
 * explosive cannonball, blast volumes, debris, and a breakable-
 * joint bridge.
 *
 * Run: ./build/examples/destruction
 */

#include <cstdio>

#include "parallax.hh"

using namespace parallax;

namespace
{

void
printWallState(const World &world, const char *when)
{
    int standing = 0, fractured = 0, debris_active = 0;
    for (const auto &body : world.bodies()) {
        // Heuristic: pre-fractured parents were registered with the
        // effects manager; count enabled dynamic bodies by size
        // bucket instead for a simple report.
        if (body->isStatic())
            continue;
        if (body->enabled())
            ++standing;
    }
    const EffectsStats &fx = world.effects().stats();
    fractured = static_cast<int>(fx.objectsFractured);
    debris_active = static_cast<int>(fx.debrisEnabled);
    std::printf("%-18s active bodies=%4d  bricks fractured=%3d  "
                "debris enabled=%4d  blasts=%llu\n",
                when, standing, fractured, debris_active,
                static_cast<unsigned long long>(
                    fx.blastsTriggered));
}

} // namespace

int
main()
{
    World world;
    SceneBuilder scene(world, 42);
    scene.addGround();

    // A pre-fractured wall: 10 x 4 bricks, 4 debris pieces each.
    scene.addWall({-2.5, 0, 0}, {1, 0, 0}, 10, 4,
                  {0.25, 0.25, 0.25}, true, 4);

    // A bridge with breakable joints next to it.
    scene.addBridge({-4.0, 1.5, 4.0}, 8, 4e3);

    // An explosive cannonball aimed at the wall.
    scene.addProjectile({0.0, 1.0, -6.0}, {0.0, 0.5, 18.0}, 0.25,
                        true, BlastConfig{2.5, 0.1, 350.0});

    printWallState(world, "before impact:");

    for (int frame = 0; frame < 40; ++frame) {
        world.stepFrame();
        if (world.effects().stats().blastsTriggered > 0 &&
            frame < 35) {
            // Report right after the explosion, once.
            static bool reported = false;
            if (!reported) {
                printWallState(world, "after explosion:");
                reported = true;
            }
        }
    }
    printWallState(world, "after settling:");

    // Broken bridge joints.
    int broken = 0;
    for (const auto &joint : world.joints())
        broken += joint->broken() ? 1 : 0;
    std::printf("\nbreakable joints snapped: %d of %zu\n", broken,
                world.jointCount());
    std::printf("total contacts last step: %llu in %zu islands\n",
                static_cast<unsigned long long>(
                    world.lastStepStats().contactsCreated),
                world.lastStepStats().islands.size());
    return 0;
}
