/**
 * @file
 * Design-space explorer: the ParallAX sizing flow end to end.
 *
 * Picks a benchmark, measures its fine-grain demand, and reports —
 * for each FG core class and interconnect — the cores needed for
 * 30 FPS, the die area, and the task buffering needed to hide the
 * communication latency.
 *
 * Run: ./build/examples/design_explorer [Per|Rag|Con|Bre|Def|Exp|
 *                                        Hig|Mix] [scale]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "parallax.hh"

using namespace parallax;

namespace
{

BenchmarkId
parseBenchmark(const char *name)
{
    for (BenchmarkId id : allBenchmarks) {
        if (std::strcmp(benchmarkInfo(id).shortName, name) == 0)
            return id;
    }
    std::fprintf(stderr, "unknown benchmark '%s', using Mix\n",
                 name);
    return BenchmarkId::Mix;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchmarkId id =
        argc > 1 ? parseBenchmark(argv[1]) : BenchmarkId::Mix;
    const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

    std::printf("measuring %s at scale %.2f...\n",
                benchmarkInfo(id).name, scale);
    RunOptions options;
    options.scale = scale;
    const BenchmarkRun run = runBenchmark(id, options);
    const StepProfile frame = run.worstFrameProfile();

    std::printf("  %.1fM operations/frame, %.1f%% serial, "
                "%llu obj-pairs, %llu islands\n\n",
                frame.totalOps() / 1e6,
                100.0 * frame.serialOps() / frame.totalOps(),
                static_cast<unsigned long long>(run.spec.objPairs),
                static_cast<unsigned long long>(run.spec.islands));

    std::printf("building FG core model (cycle-level kernel "
                "runs)...\n\n");
    const FgCoreModel model(150, 1);
    const ParallaxSystem system(model);
    const auto fg_instr =
        ParallaxSystem::fgInstructionsPerFrame(frame);

    // The four-core CG configuration leaves roughly a third of the
    // frame for FG work (section 8.1).
    const double budget = 0.32 / 30.0;

    std::printf("%-8s %-8s | %6s %9s | %s\n", "core", "link",
                "cores", "area mm2", "tasks to hide (np/isl/cl)");
    for (FgCoreClass cls : realFgCoreClasses) {
        for (InterconnectKind kind :
             {InterconnectKind::OnChipMesh, InterconnectKind::Htx,
              InterconnectKind::Pcie}) {
            const int cores =
                system.coresRequired(cls, fg_instr, budget, kind);
            const AreaEstimate area = fgPoolArea(cls, cores);
            std::printf(
                "%-8s %-8s | %6d %9.0f | %llu / %llu / %llu\n",
                fgCoreClassName(cls), interconnectName(kind),
                cores, area.total(),
                static_cast<unsigned long long>(system.tasksToHide(
                    cls, KernelId::Narrowphase, kind, cores)),
                static_cast<unsigned long long>(system.tasksToHide(
                    cls, KernelId::IslandProcessing, kind, cores)),
                static_cast<unsigned long long>(system.tasksToHide(
                    cls, KernelId::Cloth, kind, cores)));
        }
    }
    std::printf("\nconclusion (paper section 8.2.1): the simplest "
                "cores are the most\narea-efficient; off-chip "
                "links demand far more in-flight tasks.\n");
    return 0;
}
