/**
 * @file
 * Cloth scenario: a 25x25 (625-vertex) drape — the paper's "large
 * cloth" — falling over a crash-test ragdoll, plus a small 5x5
 * uniform attached to it, with an ASCII height-map render of the
 * drape.
 *
 * Run: ./build/examples/cloth_stage
 */

#include <cstdio>

#include "parallax.hh"

using namespace parallax;

namespace
{

/** Crude ASCII render: cloth height sampled over its grid. */
void
renderCloth(const Cloth &cloth, int nx)
{
    const auto &particles = cloth.particles();
    const int ny = static_cast<int>(particles.size()) / nx;
    for (int j = 0; j < ny; j += 2) {
        for (int i = 0; i < nx; i += 1) {
            const double y = particles[j * nx + i].position.y;
            const char *glyph = y > 1.6 ? "#"
                                : y > 1.2 ? "+"
                                : y > 0.6 ? "-"
                                          : ".";
            std::printf("%s", glyph);
        }
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    World world;
    SceneBuilder scene(world, 7);
    scene.addGround();

    // The crash-test subject under the drape.
    RigidBody *dummy = scene.addHumanoid({1.4, 1.05, 1.4});
    scene.addSmallClothOnBody(dummy);

    // A large 625-vertex cloth, pinned along one edge, draping over
    // the figure.
    Cloth *drape = scene.addLargeCloth({0.0, 2.2, 0.0});

    std::printf("cloths: %zu (%d + %d vertices), constraints: %d\n",
                world.clothCount(), drape->vertexCount(),
                world.cloths()[0]->vertexCount(),
                drape->constraintCount());

    for (int frame = 0; frame < 45; ++frame)
        world.stepFrame();

    std::printf("\ndrape height-map after 1.5 s "
                "(#: high, +: mid, -: low, .: floor):\n");
    renderCloth(*drape, 25);

    const ClothStats &stats = world.lastStepStats().cloth;
    std::printf("\nlast step: %llu vertex integrations, %llu "
                "constraint relaxations,\n%llu collision tests "
                "(%llu resolved)\n",
                static_cast<unsigned long long>(
                    stats.verticesIntegrated),
                static_cast<unsigned long long>(
                    stats.constraintRelaxations),
                static_cast<unsigned long long>(
                    stats.collisionTests),
                static_cast<unsigned long long>(
                    stats.collisionsResolved));
    return 0;
}
