/**
 * @file
 * Tests for the benchmark suite, instrumentation and trace
 * generation. Scenes run at reduced scale for test speed; the bench
 * harnesses run them at full Table 4 scale.
 */

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "workload/benchmarks.hh"
#include "workload/mem_trace.hh"
#include "workload/scene_builder.hh"

namespace parallax
{
namespace
{

RunOptions
fastOptions(double scale = 0.15)
{
    RunOptions opt;
    opt.scale = scale;
    opt.warmupSteps = 6;
    opt.frames = 1;
    return opt;
}

TEST(Benchmarks, InfoTableIsComplete)
{
    std::set<std::string> names;
    for (BenchmarkId id : allBenchmarks) {
        const BenchmarkInfo &info = benchmarkInfo(id);
        EXPECT_NE(info.name, nullptr);
        EXPECT_GT(info.paperInstPerFrame, 0.0);
        names.insert(info.shortName);
    }
    EXPECT_EQ(names.size(), 8u);
}

TEST(Benchmarks, AllScenesBuildAndStep)
{
    for (BenchmarkId id : allBenchmarks) {
        auto world = buildBenchmark(id, WorldConfig(), 0.1);
        ASSERT_GT(world->bodyCount(), 0u)
            << benchmarkInfo(id).shortName;
        world->stepFrame();
        EXPECT_GT(world->lastStepStats().pairsFound, 0u)
            << benchmarkInfo(id).shortName;
    }
}

TEST(Benchmarks, FullScaleSpecsMatchTable4Structure)
{
    // Structural (non-simulated) parts of Table 4, checked at full
    // scale without stepping (cheap).
    auto world = buildBenchmark(BenchmarkId::Periodic);
    SceneSpec spec = staticSceneSpec(*world);
    EXPECT_EQ(spec.dynamicObjs, 480); // 30 humanoids x 16 segments.
    EXPECT_EQ(spec.staticJoints, 450); // 30 x 15 joints.
    EXPECT_EQ(spec.clothObjs, 0);

    world = buildBenchmark(BenchmarkId::Deformable);
    spec = staticSceneSpec(*world);
    EXPECT_EQ(spec.dynamicObjs, 480);
    EXPECT_EQ(spec.clothObjs, 32); // 30 small + 2 large.
    EXPECT_EQ(spec.clothVertices, 2000); // 30*25 + 2*625.

    world = buildBenchmark(BenchmarkId::Mix);
    spec = staticSceneSpec(*world);
    EXPECT_EQ(spec.clothObjs, 33); // 30 small + 3 large.
    EXPECT_EQ(spec.clothVertices, 2625);
    EXPECT_EQ(spec.prefracturedObjs, 5625); // 1125 bricks x 5.
    EXPECT_NEAR(spec.dynamicObjs, 1608, 200);

    world = buildBenchmark(BenchmarkId::Breakable);
    spec = staticSceneSpec(*world);
    EXPECT_EQ(spec.prefracturedObjs, 5625);
    EXPECT_NEAR(spec.staticJoints, 564, 30);
}

TEST(Benchmarks, RunProducesProfiles)
{
    BenchmarkRun run =
        runBenchmark(BenchmarkId::Periodic, fastOptions());
    ASSERT_EQ(run.frames.size(), 1u);
    ASSERT_EQ(run.frames[0].steps.size(), 3u);
    const StepProfile prof = run.worstFrameProfile();
    EXPECT_GT(prof.totalOps(), 0.0);
    EXPECT_GT(prof.serialOps(), 0.0);
    EXPECT_LT(prof.serialOps(), prof.totalOps());
    EXPECT_GT(run.spec.objPairs, 0u);
    EXPECT_GT(run.spec.islands, 0u);
}

TEST(Benchmarks, DeterministicRuns)
{
    const BenchmarkRun a =
        runBenchmark(BenchmarkId::Ragdoll, fastOptions());
    const BenchmarkRun b =
        runBenchmark(BenchmarkId::Ragdoll, fastOptions());
    EXPECT_EQ(a.spec.objPairs, b.spec.objPairs);
    EXPECT_DOUBLE_EQ(a.worstFrameProfile().totalOps(),
                     b.worstFrameProfile().totalOps());
}

TEST(Benchmarks, NoDeepInterpenetrationAtSpawn)
{
    // Regression: a mis-strided wall once spawned bricks 50%
    // interpenetrated, injecting solver energy. No benchmark may
    // start with deeply overlapping bodies.
    for (BenchmarkId id : allBenchmarks) {
        auto world = buildBenchmark(id, WorldConfig(), 0.3);
        world->step();
        Real worst = 0;
        for (const Contact &c : world->lastContacts())
            worst = std::max(worst, c.depth);
        EXPECT_LT(worst, 0.12) << benchmarkInfo(id).shortName;
    }
}

TEST(Benchmarks, StateStaysFiniteAndBounded)
{
    // Robustness: several frames of every scene produce finite
    // positions within a sane arena (no NaNs, no ejections beyond
    // the blast-driven debris scale).
    for (BenchmarkId id : allBenchmarks) {
        auto world = buildBenchmark(id, WorldConfig(), 0.2);
        for (int i = 0; i < 24; ++i)
            world->step();
        for (const auto &b : world->bodies()) {
            if (!b->enabled() || b->isStatic())
                continue;
            const Vec3 &p = b->position();
            ASSERT_TRUE(std::isfinite(p.x) && std::isfinite(p.y) &&
                        std::isfinite(p.z))
                << benchmarkInfo(id).shortName;
            EXPECT_LT(p.length(), 500.0)
                << benchmarkInfo(id).shortName;
            EXPECT_LT(b->linearVelocity().length(), 120.0)
                << benchmarkInfo(id).shortName;
        }
        for (const auto &cloth : world->cloths()) {
            for (const auto &particle : cloth->particles()) {
                ASSERT_TRUE(std::isfinite(particle.position.x))
                    << benchmarkInfo(id).shortName;
            }
        }
    }
}

TEST(Benchmarks, ScaleGrowsTheScene)
{
    auto small = buildBenchmark(BenchmarkId::Ragdoll, WorldConfig(),
                                0.2);
    auto large = buildBenchmark(BenchmarkId::Ragdoll, WorldConfig(),
                                1.0);
    EXPECT_LT(small->bodyCount(), large->bodyCount());
}

TEST(Instrumentation, PhaseMixMatchesPaperShape)
{
    // Figure 7(b): serial phases and Narrowphase are integer
    // dominant with many branches; Island Processing and Cloth are
    // FP dominant.
    BenchmarkRun run =
        runBenchmark(BenchmarkId::Mix, fastOptions(0.3));
    const StepProfile prof = run.worstFrameProfile();

    auto fpShare = [&](Phase p) {
        const OpVector &v = prof.ops(p);
        return v.fraction(OpClass::FloatAdd) +
               v.fraction(OpClass::FloatMult);
    };
    auto intShare = [&](Phase p) {
        return prof.ops(p).fraction(OpClass::IntAlu) +
               prof.ops(p).fraction(OpClass::Branch);
    };

    EXPECT_GT(intShare(Phase::Broadphase),
              fpShare(Phase::Broadphase));
    EXPECT_GT(intShare(Phase::IslandCreation),
              fpShare(Phase::IslandCreation));
    EXPECT_GT(fpShare(Phase::IslandProcessing), 0.3);
    EXPECT_GT(fpShare(Phase::Cloth), 0.25);
}

TEST(Instrumentation, FgSubsetOfTotal)
{
    BenchmarkRun run =
        runBenchmark(BenchmarkId::Mix, fastOptions(0.3));
    const StepProfile prof = run.worstFrameProfile();
    for (int p = 0; p < numPhases; ++p) {
        const Phase phase = static_cast<Phase>(p);
        EXPECT_LE(prof.fg(phase).total(), prof.ops(phase).total());
        // Serial phases have no FG component.
        if (phaseIsSerial(phase))
            EXPECT_EQ(prof.fg(phase).total(), 0.0);
        // cg + fg == total.
        EXPECT_NEAR(prof.cg(phase).total() + prof.fg(phase).total(),
                    prof.ops(phase).total(), 1.0);
    }
}

TEST(Instrumentation, FgTaskInventoriesPopulated)
{
    BenchmarkRun run =
        runBenchmark(BenchmarkId::Mix, fastOptions(0.3));
    const StepProfile prof = run.worstFrameProfile();
    EXPECT_GT(prof.pairTasks, 0u);
    EXPECT_FALSE(prof.islandRows.empty());
    EXPECT_FALSE(prof.clothVertices.empty());
    // Mix at 0.3 scale keeps one large cloth: 625 vertices.
    bool has_large = false;
    for (int v : prof.clothVertices)
        has_large |= (v == 625);
    EXPECT_TRUE(has_large);
}

TEST(SceneBuilderTest, HumanoidHas16Segments15Joints)
{
    World world;
    SceneBuilder sb(world);
    sb.addHumanoid({0, 1.05, 0});
    EXPECT_EQ(world.bodyCount(), 16u);
    EXPECT_EQ(world.jointCount(), 15u);
    EXPECT_EQ(world.geomCount(), 16u);
}

TEST(SceneBuilderTest, CarHasWheelsAndSuspension)
{
    World world;
    SceneBuilder sb(world);
    sb.addCar({0, 0, 0});
    EXPECT_EQ(world.bodyCount(), 6u); // Chassis, frame, 4 wheels.
    EXPECT_EQ(world.jointCount(), 5u); // Slider + 4 hinges.
    int sliders = 0, hinges = 0;
    for (const auto &j : world.joints()) {
        if (j->type() == JointType::Slider)
            ++sliders;
        if (j->type() == JointType::Hinge)
            ++hinges;
    }
    EXPECT_EQ(sliders, 1);
    EXPECT_EQ(hinges, 4);
}

TEST(SceneBuilderTest, PrefracturedWallRegistersDebris)
{
    World world;
    SceneBuilder sb(world);
    auto bricks = sb.addWall({0, 0, 0}, {1, 0, 0}, 4, 2,
                             {0.5, 0.25, 0.25}, true, 3);
    EXPECT_EQ(bricks.size(), 8u);
    // 8 parents + 24 disabled debris.
    EXPECT_EQ(world.bodyCount(), 32u);
    int disabled = 0;
    for (const auto &b : world.bodies()) {
        if (!b->enabled())
            ++disabled;
    }
    EXPECT_EQ(disabled, 24);
}

TEST(SceneBuilderTest, BridgeJointsAreBreakable)
{
    World world;
    SceneBuilder sb(world);
    sb.addBridge({0, 2, 0}, 5, 1000.0);
    EXPECT_EQ(world.jointCount(), 6u); // 5 planks + far anchor.
    for (const auto &j : world.joints())
        EXPECT_TRUE(j->breakable());
}

TEST(MemTraceTest, GeneratesAllPhases)
{
    auto world = buildBenchmark(BenchmarkId::Mix, WorldConfig(), 0.2);
    for (int i = 0; i < 4; ++i)
        world->step();
    TraceGenerator gen;
    const StepTrace trace = gen.generate(*world);
    for (int p = 0; p < numPhases; ++p)
        EXPECT_FALSE(trace.phase[p].empty()) << phaseName(
            static_cast<Phase>(p));
    EXPECT_GT(trace.totalRefs(), 1000u);
}

TEST(MemTraceTest, AddressRegionsDoNotAlias)
{
    auto world = buildBenchmark(BenchmarkId::Periodic, WorldConfig(),
                                0.2);
    world->step();
    TraceGenerator gen;
    const StepTrace trace = gen.generate(*world);
    // Every object reference falls inside its region.
    for (const auto &refs : trace.phase) {
        for (const MemRef &ref : refs) {
            EXPECT_GE(ref.addr, AddressMap::objectBase);
            EXPECT_LT(ref.addr, AddressMap::kernelBase + 0x4000'0000);
        }
    }
}

TEST(MemTraceTest, KernelRefsScaleWithThreads)
{
    auto world = buildBenchmark(BenchmarkId::Periodic, WorldConfig(),
                                0.2);
    world->step();
    auto countKernel = [&](unsigned threads) {
        TraceOptions opt;
        opt.threads = threads;
        opt.kernelBytesPerThread = kernelFootprintForThreads(threads);
        TraceGenerator gen(opt);
        const StepTrace trace = gen.generate(*world);
        std::size_t kernel = 0;
        for (const auto &refs : trace.phase) {
            for (const MemRef &ref : refs)
                kernel += ref.kernel ? 1 : 0;
        }
        return kernel;
    };
    const auto k2 = countKernel(2);
    const auto k8 = countKernel(8);
    // The paper's 8-thread kernel footprint explosion: ~5 MB per
    // worker versus ~850 KB.
    EXPECT_GT(k8, k2 * 10);
}

TEST(MemTraceTest, KernelFootprintMatchesPaper)
{
    EXPECT_EQ(kernelFootprintForThreads(1), 850ull * 1024);
    EXPECT_EQ(kernelFootprintForThreads(4), 850ull * 1024);
    EXPECT_EQ(kernelFootprintForThreads(8), 5ull * 1024 * 1024);
    EXPECT_GT(kernelFootprintForThreads(6),
              kernelFootprintForThreads(4));
}

TEST(MemTraceTest, JointRecordSizesMatchPaperRange)
{
    // "The memory required per joint varies between 148B to 392B
    // depending on the type."
    EXPECT_EQ(record::jointBytes(JointType::Contact), 148u);
    EXPECT_EQ(record::jointBytes(JointType::Fixed), 392u);
    for (JointType t : {JointType::Ball, JointType::Hinge,
                        JointType::Slider}) {
        EXPECT_GE(record::jointBytes(t), 148u);
        EXPECT_LE(record::jointBytes(t), 392u);
    }
}

TEST(CostModelTest, PairTestCoversAllCombinations)
{
    for (int i = 0; i < 6; ++i) {
        for (int j = 0; j < 6; ++j) {
            const OpVector v = cost::npPairTest(
                static_cast<ShapeType>(i), static_cast<ShapeType>(j));
            EXPECT_GT(v.total(), 0.0);
            // Symmetric in argument order.
            const OpVector w = cost::npPairTest(
                static_cast<ShapeType>(j), static_cast<ShapeType>(i));
            EXPECT_DOUBLE_EQ(v.total(), w.total());
        }
    }
}

TEST(CostModelTest, OpVectorArithmetic)
{
    OpVector v = cost::opVec(1, 2, 3, 4, 5, 6, 7);
    EXPECT_DOUBLE_EQ(v.total(), 28.0);
    EXPECT_DOUBLE_EQ(v.fraction(OpClass::Branch), 2.0 / 28.0);
    const OpVector w = v * 2.0 + v;
    EXPECT_DOUBLE_EQ(w.total(), 84.0);
}

} // namespace
} // namespace parallax
