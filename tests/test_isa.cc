/**
 * @file
 * Tests for the PAX ISA: assembler, machine semantics, and the
 * three FG kernels (verified against C++ references).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/kernels.hh"
#include "isa/machine.hh"

namespace parallax
{
namespace
{

TEST(Assembler, BasicArithmetic)
{
    const Program p = assemble(R"(
        li   r1, 6
        li   r2, 7
        mul  r3, r1, r2
        halt
    )");
    ASSERT_EQ(p.size(), 4u);
    Machine m;
    const auto r = m.run(p);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(m.intReg(3), 42);
}

TEST(Assembler, LabelsAndBranches)
{
    // Sum 1..10 with a loop.
    const Program p = assemble(R"(
        li   r1, 0      # acc
        li   r2, 1      # i
        li   r3, 11
    loop:
        bge  r2, r3, done
        add  r1, r1, r2
        addi r2, r2, 1
        jmp  loop
    done:
        halt
    )");
    Machine m;
    m.run(p);
    EXPECT_EQ(m.intReg(1), 55);
}

TEST(Assembler, FpOperations)
{
    const Program p = assemble(R"(
        lfi  f1, 3.0
        lfi  f2, 4.0
        fmul f3, f1, f1
        fmul f4, f2, f2
        fadd f3, f3, f4
        fsqrt f5, f3
        halt
    )");
    Machine m;
    m.run(p);
    EXPECT_DOUBLE_EQ(m.fpReg(5), 5.0);
}

TEST(Assembler, MemoryAccess)
{
    const Program p = assemble(R"(
        li   r1, 64
        li   r2, 99
        sw   r2, 0(r1)
        lw   r3, 0(r1)
        lfi  f1, 2.5
        sf   f1, 8(r1)
        lf   f2, 8(r1)
        halt
    )");
    Machine m;
    m.run(p);
    EXPECT_EQ(m.intReg(3), 99);
    EXPECT_DOUBLE_EQ(m.fpReg(2), 2.5);
    EXPECT_EQ(m.loadInt(64), 99);
    EXPECT_DOUBLE_EQ(m.loadFp(72), 2.5);
}

TEST(Assembler, CallAndRet)
{
    const Program p = assemble(R"(
        li   r1, 1
        call sub
        addi r1, r1, 100
        halt
    sub:
        addi r1, r1, 10
        ret
    )");
    Machine m;
    m.run(p);
    EXPECT_EQ(m.intReg(1), 111);
}

TEST(Assembler, FpComparesWriteIntRegs)
{
    const Program p = assemble(R"(
        lfi  f1, 1.0
        lfi  f2, 2.0
        fclt r1, f1, f2
        fclt r2, f2, f1
        fcle r3, f1, f1
        fceq r4, f2, f2
        halt
    )");
    Machine m;
    m.run(p);
    EXPECT_EQ(m.intReg(1), 1);
    EXPECT_EQ(m.intReg(2), 0);
    EXPECT_EQ(m.intReg(3), 1);
    EXPECT_EQ(m.intReg(4), 1);
}

TEST(Assembler, SyntaxErrorsAreFatal)
{
    EXPECT_EXIT(assemble("bogus r1, r2"),
                ::testing::ExitedWithCode(1), "unknown mnemonic");
    EXPECT_EXIT(assemble("add r1, r2"),
                ::testing::ExitedWithCode(1), "missing operand");
    EXPECT_EXIT(assemble("jmp nowhere"),
                ::testing::ExitedWithCode(1), "unknown label");
    EXPECT_EXIT(assemble("add f1, r2, r3"),
                ::testing::ExitedWithCode(1), "register");
}

TEST(Machine, R0IsHardwiredZero)
{
    const Program p = assemble(R"(
        li   r0, 55
        add  r1, r0, r0
        halt
    )");
    Machine m;
    m.run(p);
    EXPECT_EQ(m.intReg(0), 0);
    EXPECT_EQ(m.intReg(1), 0);
}

TEST(Machine, MisalignedAccessPanics)
{
    Machine m;
    EXPECT_DEATH(m.loadInt(3), "misaligned");
    EXPECT_DEATH(m.loadFp(1ll << 40), "out of bounds");
}

TEST(Machine, RunStopsAtStepLimit)
{
    const Program p = assemble(R"(
    loop:
        jmp loop
    )");
    Machine m;
    const auto r = m.run(p, 1000);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.dynamicInstructions, 1000u);
}

TEST(Program, StaticMixFiltersNops)
{
    const Program p = assemble(R"(
        nop
        add r1, r2, r3
        fmul f1, f2, f3
        halt
    )");
    const OpVector mix = p.staticMix();
    EXPECT_DOUBLE_EQ(mix[OpClass::IntAlu], 1.0);
    EXPECT_DOUBLE_EQ(mix[OpClass::FloatMult], 1.0);
    // halt counts as Other; nop filtered.
    EXPECT_DOUBLE_EQ(mix.total(), 3.0);
}

// --- Kernel validation. ---

class KernelTest : public ::testing::TestWithParam<KernelId>
{
};

TEST_P(KernelTest, AssemblesAndHalts)
{
    const Program &p = kernelProgram(GetParam());
    EXPECT_GT(p.size(), 50u);
    Machine m;
    Rng rng(3);
    packKernelInputs(GetParam(), m, 10, rng);
    const auto r = m.run(p);
    EXPECT_TRUE(r.halted);
    EXPECT_GT(r.dynamicInstructions, 100u);
}

TEST_P(KernelTest, StaticSizeNearPaper)
{
    // Section 8.1.2 reports 277 / 177 / 221 static instructions;
    // our hand-written kernels must land within ~25%.
    const Program &p = kernelProgram(GetParam());
    const int paper = kernelPaperStaticSize(GetParam());
    EXPECT_GT(static_cast<int>(p.size()), paper * 3 / 4);
    EXPECT_LT(static_cast<int>(p.size()), paper * 5 / 4);
    // All three kernels fit in the 2.7KB combined instruction
    // memory budget with 32-bit instructions.
    EXPECT_LT(p.footprintBytes(), 1200u);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelTest,
                         ::testing::ValuesIn(allKernels));

TEST(Kernels, NarrowphaseMatchesReference)
{
    Machine m;
    Rng rng(11);
    packKernelInputs(KernelId::Narrowphase, m, 300, rng);
    const auto r = m.run(kernelProgram(KernelId::Narrowphase));
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(verifyKernelOutputs(KernelId::Narrowphase, m, 300), 0);
}

TEST(Kernels, NarrowphaseHitRateIsMixed)
{
    // The hit/miss branches must be genuinely data dependent:
    // neither all hits nor all misses.
    Machine m;
    Rng rng(13);
    packKernelInputs(KernelId::Narrowphase, m, 300, rng);
    m.run(kernelProgram(KernelId::Narrowphase));
    int hits = 0;
    for (int t = 0; t < 300; ++t)
        hits += m.loadInt(64 + t * 512 + 240) == 1 ? 1 : 0;
    EXPECT_GT(hits, 60);
    EXPECT_LT(hits, 240);
}

TEST(Kernels, IslandMatchesReference)
{
    Machine m;
    Rng rng(17);
    packKernelInputs(KernelId::IslandProcessing, m, 300, rng);
    const Machine pristine = m;
    const auto r = m.run(kernelProgram(KernelId::IslandProcessing));
    ASSERT_TRUE(r.halted);
    for (int t = 0; t < 300; ++t) {
        const IslandRowResult ref = islandRowReference(pristine, t);
        const std::int64_t base = 64 + t * 512;
        EXPECT_NEAR(m.loadFp(base + 120), ref.lambda, 1e-9)
            << "task " << t;
        for (int k = 0; k < 12; ++k) {
            EXPECT_NEAR(m.loadFp(base + 256 + k * 8), ref.vel[k],
                        1e-9)
                << "task " << t << " vel " << k;
        }
    }
}

TEST(Kernels, ClothMatchesReference)
{
    Machine m;
    Rng rng(19);
    packKernelInputs(KernelId::Cloth, m, 300, rng);
    const Machine pristine = m;
    const auto r = m.run(kernelProgram(KernelId::Cloth));
    ASSERT_TRUE(r.halted);
    for (int t = 0; t < 300; ++t) {
        const ClothVertexResult ref = clothVertexReference(pristine,
                                                           t);
        const std::int64_t base = 64 + t * 512;
        for (int k = 0; k < 3; ++k) {
            EXPECT_NEAR(m.loadFp(base + k * 8), ref.pos[k], 1e-9)
                << "task " << t;
            EXPECT_NEAR(m.loadFp(base + 24 + k * 8), ref.prev[k],
                        1e-9)
                << "task " << t;
        }
    }
}

TEST(Kernels, DynamicMixMatchesPaperShape)
{
    // Figure 9(b): integer ops and memory reads are the top two
    // classes for all kernels; island/cloth carry far more FP than
    // narrowphase; narrowphase has ~8% branches.
    for (KernelId id : allKernels) {
        Machine m;
        Rng rng(23);
        packKernelInputs(id, m, 200, rng);
        const auto r = m.run(kernelProgram(id));
        const double total = r.dynamicMix.total();
        ASSERT_GT(total, 0.0);
        const double fp =
            (r.dynamicMix[OpClass::FloatAdd] +
             r.dynamicMix[OpClass::FloatMult]) / total;
        if (id == KernelId::Narrowphase) {
            EXPECT_LT(fp, 0.55);
        } else {
            EXPECT_GT(fp, 0.30);
        }
        const double branches =
            r.dynamicMix[OpClass::Branch] / total;
        EXPECT_GT(branches, 0.01);
        EXPECT_LT(branches, 0.20);
    }
}

TEST(Kernels, CombinedInstructionMemoryBudget)
{
    // Section 8.1.2: storing all three kernels takes 2.7 KB with
    // 32-bit instructions.
    std::uint64_t total = 0;
    for (KernelId id : allKernels)
        total += kernelProgram(id).footprintBytes();
    EXPECT_LT(total, 3200u);
    EXPECT_GT(total, 2000u);
}

} // namespace
} // namespace parallax
