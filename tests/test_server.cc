/**
 * @file
 * Multi-world server tests (src/server/): the session lifecycle, the
 * bitwise solo-vs-hosted trajectory guarantee at several worker
 * counts, fixed-tick accumulator stepping and interpolation phase,
 * deterministic admission/shedding, delta-snapshot streaming, and
 * per-world metrics scoping.
 */

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "parallax.hh"

namespace parallax
{
namespace
{

WorldConfig
hostedConfig()
{
    WorldConfig config;
    config.deterministic = true;
    config.workerThreads = 0; // The server supplies the parallelism.
    return config;
}

std::unique_ptr<World>
buildScene(BenchmarkId id, double scale = 0.08)
{
    return buildBenchmark(id, hostedConfig(), scale);
}

// --- Bitwise trajectory identity. ---------------------------------

TEST(Server, HostedTrajectoriesMatchSoloBitwise)
{
    // The same scenes stepped solo...
    const BenchmarkId scenes[] = {BenchmarkId::Mix,
                                  BenchmarkId::Periodic,
                                  BenchmarkId::Mix};
    const double scales[] = {0.08, 0.08, 0.12};
    constexpr int ticks = 40;

    std::vector<std::uint64_t> solo;
    for (std::size_t i = 0; i < 3; ++i) {
        auto world = buildScene(scenes[i], scales[i]);
        for (int t = 0; t < ticks; ++t)
            world->step();
        solo.push_back(worldStateHash(*world));
    }

    // ...must hash identically when multiplexed over the server's
    // scheduler, whichever lane steals which world, at every worker
    // count.
    for (unsigned workers : {0u, 2u, 8u}) {
        ServerConfig sc;
        sc.workerThreads = workers;
        Server server(sc);
        std::vector<WorldId> ids;
        for (std::size_t i = 0; i < 3; ++i) {
            WorldId id = invalidWorldId;
            ASSERT_TRUE(server
                            .adoptWorld(buildScene(scenes[i],
                                                   scales[i]),
                                        id)
                            .ok());
            ids.push_back(id);
        }
        ASSERT_TRUE(server.tickAll(ticks).ok());
        for (std::size_t i = 0; i < 3; ++i) {
            EXPECT_EQ(worldStateHash(*server.world(ids[i])), solo[i])
                << "world " << i << " diverged at workers="
                << workers;
        }
    }
}

// --- Session lifecycle + admission. -------------------------------

TEST(Server, SessionLifecycleAndStaleHandles)
{
    Server server;
    WorldId a = invalidWorldId;
    WorldId b = invalidWorldId;
    ASSERT_TRUE(server.createWorld(hostedConfig(), a).ok());
    ASSERT_TRUE(server.createWorld(hostedConfig(), b).ok());
    EXPECT_NE(a, invalidWorldId);
    EXPECT_NE(a, b);
    EXPECT_EQ(server.worldCount(), 2u);
    EXPECT_NE(server.world(a), nullptr);

    ASSERT_TRUE(server.destroyWorld(a).ok());
    EXPECT_EQ(server.worldCount(), 1u);
    EXPECT_EQ(server.world(a), nullptr);
    // A stale handle names nothing — and is never reissued.
    EXPECT_EQ(server.destroyWorld(a).code(), StatusCode::NotFound);
    WorldId c = invalidWorldId;
    ASSERT_TRUE(server.createWorld(hostedConfig(), c).ok());
    EXPECT_NE(c, a);
    EXPECT_NE(c, b);
}

TEST(Server, AdoptRejectsMisconfiguredWorlds)
{
    Server server;
    WorldId id = invalidWorldId;

    EXPECT_EQ(server.adoptWorld(nullptr, id).code(),
              StatusCode::InvalidArgument);

    WorldConfig threaded = hostedConfig();
    threaded.workerThreads = 2;
    EXPECT_EQ(server
                  .adoptWorld(std::make_unique<World>(threaded), id)
                  .code(),
              StatusCode::InvalidArgument);

    WorldConfig wrong_dt = hostedConfig();
    wrong_dt.dt = 0.02;
    EXPECT_EQ(server
                  .adoptWorld(std::make_unique<World>(wrong_dt), id)
                  .code(),
              StatusCode::InvalidArgument);
}

TEST(Server, AdmissionCapRejectsDeterministically)
{
    ServerConfig sc;
    sc.maxWorlds = 2;
    Server server(sc);
    WorldId id = invalidWorldId;
    ASSERT_TRUE(server.createWorld(hostedConfig(), id).ok());
    ASSERT_TRUE(server.createWorld(hostedConfig(), id).ok());
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(server.createWorld(hostedConfig(), id).code(),
                  StatusCode::ResourceExhausted);
    }
    EXPECT_EQ(server.stats().admissionRejects, 3u);
    // Freeing a slot re-opens admission.
    ASSERT_TRUE(server.destroyWorld(1).ok());
    EXPECT_TRUE(server.createWorld(hostedConfig(), id).ok());
}

// --- Fixed-tick accumulator + interpolation phase. ----------------

TEST(Server, AccumulatorRunsWholeTicksAndBanksRemainder)
{
    Server server; // tickDt = 0.01
    WorldId id = invalidWorldId;
    ASSERT_TRUE(server.createWorld(hostedConfig(), id).ok());

    ASSERT_TRUE(server.advance(0.025).ok());
    EXPECT_EQ(server.world(id)->stepCount(), 2u);
    EXPECT_NEAR(server.phase(id), 0.5, 1e-9);

    ASSERT_TRUE(server.advance(0.005).ok());
    EXPECT_EQ(server.world(id)->stepCount(), 3u);
    EXPECT_NEAR(server.phase(id), 0.0, 1e-9);

    // Sub-tick time only banks; nothing runs.
    ASSERT_TRUE(server.advance(0.004).ok());
    EXPECT_EQ(server.world(id)->stepCount(), 3u);
    EXPECT_NEAR(server.phase(id), 0.4, 1e-9);

    EXPECT_EQ(server.advance(-1.0).code(),
              StatusCode::InvalidArgument);
}

TEST(Server, InterpolateEndpointsAreBitwise)
{
    auto world = buildScene(BenchmarkId::Mix);
    world->step();
    const RenderState a = world->renderState();
    world->step();
    const RenderState b = world->renderState();
    ASSERT_EQ(a.bodies.size(), b.bodies.size());

    const RenderState at0 = World::interpolate(a, b, 0.0);
    const RenderState at1 = World::interpolate(a, b, 1.0);
    ASSERT_EQ(at0.bodies.size(), a.bodies.size());
    for (std::size_t i = 0; i < a.bodies.size(); ++i) {
        // Exactly the sampled state, not a lerp that rounded
        // through it.
        EXPECT_EQ(at0.bodies[i].position.x, a.bodies[i].position.x);
        EXPECT_EQ(at0.bodies[i].position.y, a.bodies[i].position.y);
        EXPECT_EQ(at0.bodies[i].position.z, a.bodies[i].position.z);
        EXPECT_EQ(at0.bodies[i].orientation.w,
                  a.bodies[i].orientation.w);
        EXPECT_EQ(at1.bodies[i].position.y, b.bodies[i].position.y);
        EXPECT_EQ(at1.bodies[i].orientation.w,
                  b.bodies[i].orientation.w);
    }
    ASSERT_EQ(at0.cloths.size(), a.cloths.size());
    for (std::size_t c = 0; c < a.cloths.size(); ++c) {
        ASSERT_EQ(at0.cloths[c].size(), a.cloths[c].size());
        for (std::size_t p = 0; p < a.cloths[c].size(); ++p)
            EXPECT_EQ(at0.cloths[c][p].y, a.cloths[c][p].y);
    }
}

TEST(Server, InterpolationIsMonotonicAndNormalized)
{
    auto world = buildScene(BenchmarkId::Mix);
    for (int i = 0; i < 5; ++i)
        world->step();
    const RenderState a = world->renderState();
    world->step();
    const RenderState b = world->renderState();

    double prev_phase = 0.0;
    RenderState prev = World::interpolate(a, b, 0.0);
    for (double phase : {0.25, 0.5, 0.75, 1.0}) {
        const RenderState mid = World::interpolate(a, b, phase);
        EXPECT_NEAR(mid.time,
                    a.time + (b.time - a.time) * phase, 1e-12);
        for (std::size_t i = 0; i < mid.bodies.size(); ++i) {
            // Each coordinate moves monotonically from a to b...
            const double lo = std::min(a.bodies[i].position.y,
                                       b.bodies[i].position.y);
            const double hi = std::max(a.bodies[i].position.y,
                                       b.bodies[i].position.y);
            EXPECT_GE(mid.bodies[i].position.y, lo - 1e-12);
            EXPECT_LE(mid.bodies[i].position.y, hi + 1e-12);
            // ...and blended orientations stay unit quaternions.
            const Quat &q = mid.bodies[i].orientation;
            EXPECT_NEAR(q.w * q.w + q.x * q.x + q.y * q.y +
                            q.z * q.z,
                        1.0, 1e-9);
        }
        prev = mid;
        prev_phase = phase;
        (void)prev_phase;
    }
}

// --- Deterministic load shedding. ---------------------------------

TEST(Server, SheddingIsDeterministicUnderMockedCosts)
{
    // Three sessions, 0.4 s per tick each, 1.0 s of budget: the
    // projection (1.2 s) exceeds the budget, so exactly the newest
    // sheddable session is dropped — every update, identically.
    ServerConfig sc;
    sc.tickBudget = 1.0;
    sc.mockTickSeconds = [](std::uint64_t, WorldId) {
        return 0.4;
    };
    Server server(sc);
    WorldId w1 = invalidWorldId;
    WorldId w2 = invalidWorldId;
    WorldId w3 = invalidWorldId;
    ASSERT_TRUE(server.createWorld(hostedConfig(), w1).ok());
    ASSERT_TRUE(server.createWorld(hostedConfig(), w2).ok());
    ASSERT_TRUE(server.createWorld(hostedConfig(), w3).ok());

    for (int round = 1; round <= 4; ++round) {
        ASSERT_TRUE(server.advance(0.01).ok());
        EXPECT_EQ(server.world(w1)->stepCount(),
                  static_cast<std::uint64_t>(round));
        EXPECT_EQ(server.world(w2)->stepCount(),
                  static_cast<std::uint64_t>(round));
        EXPECT_EQ(server.world(w3)->stepCount(), 0u);
        EXPECT_EQ(server.stats().ticksShed,
                  static_cast<std::uint64_t>(round));
    }
    EXPECT_EQ(server.stats().ticksRun, 8u);
}

TEST(Server, NonSheddableSessionsAlwaysRun)
{
    ServerConfig sc;
    sc.tickBudget = 0.4;
    sc.mockTickSeconds = [](std::uint64_t, WorldId) {
        return 0.4;
    };
    Server server(sc);
    SessionConfig pinned;
    pinned.sheddable = false;
    WorldId cheap = invalidWorldId;
    WorldId vip = invalidWorldId;
    ASSERT_TRUE(server.createWorld(hostedConfig(), cheap).ok());
    ASSERT_TRUE(
        server.createWorld(hostedConfig(), vip, pinned).ok());

    ASSERT_TRUE(server.advance(0.01).ok());
    // Both pending ticks cost 0.4; the budget fits one. The
    // sheddable session is dropped, the pinned one runs.
    EXPECT_EQ(server.world(cheap)->stepCount(), 0u);
    EXPECT_EQ(server.world(vip)->stepCount(), 1u);
}

TEST(Server, NoBudgetMeansNoShedding)
{
    Server server; // tickBudget = 0: shedder disabled.
    WorldId id = invalidWorldId;
    ASSERT_TRUE(server.createWorld(hostedConfig(), id).ok());
    ASSERT_TRUE(server.advance(0.05).ok());
    EXPECT_EQ(server.world(id)->stepCount(), 5u);
    EXPECT_EQ(server.stats().ticksShed, 0u);
}

// --- Delta-compressed snapshot streaming. -------------------------

TEST(Server, DeltaSnapshotRoundTrip)
{
    Server server;
    WorldId id = invalidWorldId;
    ASSERT_TRUE(
        server.adoptWorld(buildScene(BenchmarkId::Mix), id).ok());
    ASSERT_TRUE(server.tickAll(5).ok());

    // Client joins: one full snapshot...
    std::vector<std::uint8_t> base;
    ASSERT_TRUE(server.streamSnapshot(id, nullptr, base).ok());
    EXPECT_FALSE(isSnapshotDelta(base));

    // ...then per-tick deltas against it.
    ASSERT_TRUE(server.tickAll(1).ok());
    std::vector<std::uint8_t> delta;
    ASSERT_TRUE(server.streamSnapshot(id, &base, delta).ok());
    EXPECT_TRUE(isSnapshotDelta(delta));

    std::vector<std::uint8_t> full;
    ASSERT_TRUE(server.snapshotWorld(id, full).ok());
    std::vector<std::uint8_t> reconstructed;
    ASSERT_TRUE(
        applySnapshotDelta(base, delta, reconstructed).ok());
    EXPECT_EQ(reconstructed, full);

    // The client's replica, rebuilt from base + delta, lands on the
    // server's exact trajectory.
    auto replica = buildScene(BenchmarkId::Mix);
    ASSERT_TRUE(replica->restoreState(reconstructed).ok());
    EXPECT_EQ(worldStateHash(*replica),
              worldStateHash(*server.world(id)));

    // Rewind: the server restores its own session from the stream.
    ASSERT_TRUE(server.tickAll(3).ok());
    ASSERT_TRUE(server.restoreWorld(id, delta, &base).ok());
    EXPECT_EQ(worldStateHash(*server.world(id)),
              worldStateHash(*replica));
}

TEST(Server, DeltaFailuresAreStructured)
{
    Server server;
    WorldId id = invalidWorldId;
    ASSERT_TRUE(
        server.adoptWorld(buildScene(BenchmarkId::Mix), id).ok());
    ASSERT_TRUE(server.tickAll(2).ok());

    std::vector<std::uint8_t> base;
    ASSERT_TRUE(server.streamSnapshot(id, nullptr, base).ok());
    ASSERT_TRUE(server.tickAll(1).ok());
    std::vector<std::uint8_t> delta;
    ASSERT_TRUE(server.streamSnapshot(id, &base, delta).ok());

    // Applying against the wrong base fails by checksum, loudly.
    std::vector<std::uint8_t> wrong_base = base;
    wrong_base[wrong_base.size() - 1] ^= 0xff;
    std::vector<std::uint8_t> out;
    EXPECT_EQ(applySnapshotDelta(wrong_base, delta, out).code(),
              StatusCode::DataLoss);

    // Truncated deltas are malformed, not misapplied.
    std::vector<std::uint8_t> cut(delta.begin(),
                                  delta.begin() + delta.size() / 2);
    EXPECT_EQ(applySnapshotDelta(base, cut, out).code(),
              StatusCode::InvalidArgument);

    // A delta without its base cannot restore.
    EXPECT_EQ(server.restoreWorld(id, delta, nullptr).code(),
              StatusCode::FailedPrecondition);

    // Self-delta (no changes) is near-empty: streaming a static
    // world costs header bytes, not a snapshot.
    std::vector<std::uint8_t> self =
        encodeSnapshotDelta(base, base);
    EXPECT_LT(self.size(), 64u);
    ASSERT_TRUE(applySnapshotDelta(base, self, out).ok());
    EXPECT_EQ(out, base);
}

TEST(Server, CorruptDeltaHeadersAreRejected)
{
    Server server;
    WorldId id = invalidWorldId;
    ASSERT_TRUE(
        server.adoptWorld(buildScene(BenchmarkId::Mix), id).ok());
    ASSERT_TRUE(server.tickAll(2).ok());

    std::vector<std::uint8_t> base;
    ASSERT_TRUE(server.streamSnapshot(id, nullptr, base).ok());
    ASSERT_TRUE(server.tickAll(1).ok());
    std::vector<std::uint8_t> delta;
    ASSERT_TRUE(server.streamSnapshot(id, &base, delta).ok());

    // Delta layout: magic(8) + version(4) + base checksum(8) +
    // target checksum(8) + target size(8) + range count(4), then
    // per range offset(8) + length(4) + payload.
    constexpr std::size_t target_size_at = 28;
    constexpr std::size_t first_range_at = 40;
    ASSERT_GT(delta.size(), first_range_at + 12);
    auto pokeU64 = [](std::vector<std::uint8_t> &bytes,
                      std::size_t at, std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            bytes[at + i] =
                static_cast<std::uint8_t>(v >> (8 * i));
    };

    // A range offset near UINT64_MAX must not wrap the bounds check
    // and reach the out-of-bounds memcpy.
    std::vector<std::uint8_t> wrap = delta;
    pokeU64(wrap, first_range_at, 0xFFFFFFFFFFFFFFF8ull);
    std::vector<std::uint8_t> out;
    EXPECT_EQ(applySnapshotDelta(base, wrap, out).code(),
              StatusCode::InvalidArgument);

    // An absurd target size is rejected before any allocation is
    // attempted (no bad_alloc / length_error escapes).
    std::vector<std::uint8_t> huge = delta;
    pokeU64(huge, target_size_at, ~std::uint64_t{0});
    EXPECT_EQ(applySnapshotDelta(base, huge, out).code(),
              StatusCode::InvalidArgument);
}

TEST(Server, MaxTicksPerUpdateClampsSpiral)
{
    ServerConfig sc;
    sc.maxTicksPerUpdate = 4;
    Server server(sc);
    WorldId id = invalidWorldId;
    ASSERT_TRUE(server.createWorld(hostedConfig(), id).ok());

    // An elapsed worth ~1e18 ticks would overflow the int tick
    // count; the guard clamps it to the cap and drops the unpayable
    // backlog instead of carrying it into the next update.
    ASSERT_TRUE(server.advance(1e16).ok());
    EXPECT_EQ(server.world(id)->stepCount(), 4u);
    ASSERT_TRUE(server.advance(0.01).ok());
    EXPECT_EQ(server.world(id)->stepCount(), 5u);
}

// --- Per-world metrics scoping. -----------------------------------

TEST(Server, MetricsAreScopedPerWorld)
{
    Server server;
    WorldId id = invalidWorldId;
    ASSERT_TRUE(
        server.adoptWorld(buildScene(BenchmarkId::Mix), id).ok());
    ASSERT_TRUE(server.tickAll(1).ok());

    const std::string scope =
        "world." + std::to_string(id) + ".";
    const std::string line = server.world(id)->metricsLine();
    EXPECT_NE(line.find("\"" + scope + "step\""),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("\"pax_metrics\":1"), std::string::npos);

    // Solo worlds are unscoped — their line is byte-identical to a
    // single-world deployment (the PR-4 golden guards the exact
    // bytes; this guards the absence of a prefix).
    auto solo = buildScene(BenchmarkId::Mix);
    solo->step();
    EXPECT_EQ(solo->metricsLine().find("world."),
              std::string::npos);

    // Server-level line carries the admission/shedding counters.
    const std::string sline = server.metricsLine();
    EXPECT_NE(sline.find("\"pax_server\":1"), std::string::npos);
    EXPECT_NE(sline.find("\"ticks_total\":1"), std::string::npos);

    // A released world steps on, unscoped again.
    std::unique_ptr<World> released = server.releaseWorld(id);
    ASSERT_NE(released, nullptr);
    released->step();
    EXPECT_EQ(released->metricsLine().find("world."),
              std::string::npos);
    EXPECT_EQ(server.worldCount(), 0u);
}

} // namespace
} // namespace parallax
