/**
 * @file
 * Tests for joint row construction and breakable-joint behaviour.
 */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "physics/joints/articulated_joints.hh"
#include "physics/joints/contact_joint.hh"

namespace parallax
{
namespace
{

class JointTest : public ::testing::Test
{
  protected:
    RigidBody *
    makeBody(const Vec3 &pos, Real mass = 1.0)
    {
        const auto id = static_cast<BodyId>(bodies_.size());
        bodies_.push_back(std::make_unique<RigidBody>(
            id, Transform(Quat(), pos), mass, Mat3::identity() * mass));
        return bodies_.back().get();
    }

    SolverParams params_;
    std::vector<std::unique_ptr<RigidBody>> bodies_;
};

TEST_F(JointTest, ContactJointProducesThreeRows)
{
    RigidBody *a = makeBody({0, 1, 0});
    RigidBody *b = makeBody({0, -1, 0});
    Contact c;
    c.position = {0, 0, 0};
    c.normal = {0, 1, 0};
    c.depth = 0.1;
    ContactJoint joint(0, a, b, c, ContactMaterial{});
    RowBuffer rows;
    joint.buildRows(params_, rows);
    ASSERT_EQ(rows.size(), 3u);

    // Normal row: non-negative impulse bound, positive bias from
    // penetration.
    EXPECT_DOUBLE_EQ(rows[0].lo, 0.0);
    EXPECT_GT(rows[0].rhs, 0.0);
    EXPECT_EQ(rows[0].normalRow, -1);

    // Friction rows reference the normal row and carry mu.
    EXPECT_EQ(rows[1].normalRow, 0);
    EXPECT_EQ(rows[2].normalRow, 0);
    EXPECT_GT(rows[1].mu, 0.0);
    // Friction directions are orthogonal to the normal.
    EXPECT_NEAR(rows[1].jLinA.dot(c.normal), 0.0, 1e-12);
    EXPECT_NEAR(rows[2].jLinA.dot(c.normal), 0.0, 1e-12);
    EXPECT_NEAR(rows[1].jLinA.dot(rows[2].jLinA), 0.0, 1e-12);
}

TEST_F(JointTest, ContactRestitutionAddsBounceBias)
{
    RigidBody *a = makeBody({0, 1, 0});
    a->setLinearVelocity({0, -5, 0}); // Fast approach.
    Contact c;
    c.position = {0, 0, 0};
    c.normal = {0, 1, 0};
    c.depth = 0.01;
    ContactMaterial mat;
    mat.restitution = 0.5;
    ContactJoint joint(0, a, nullptr, c, mat);
    RowBuffer rows;
    joint.buildRows(params_, rows);
    // Bias should demand a rebound velocity ~ e * |vn| = 2.5.
    EXPECT_NEAR(rows[0].rhs, 2.5, 0.3);
}

TEST_F(JointTest, BallJointRowsOpposeSeparation)
{
    RigidBody *a = makeBody({-1, 0, 0});
    RigidBody *b = makeBody({1, 0, 0});
    BallJoint joint(0, a, b, {0, 0, 0});
    RowBuffer rows;
    joint.buildRows(params_, rows);
    ASSERT_EQ(rows.size(), 3u);
    // At creation the anchors coincide: zero bias.
    for (std::size_t i = 0; i < rows.size(); ++i)
        EXPECT_NEAR(rows.rhs[i], 0.0, 1e-12);

    // Separate the bodies: bias now pulls them together.
    b->setPose(Transform(Quat(), {1.5, 0, 0}));
    rows.clear();
    joint.buildRows(params_, rows);
    EXPECT_GT(std::fabs(rows[0].rhs), 0.0);
}

TEST_F(JointTest, BallJointAnchorsTrackBodies)
{
    RigidBody *a = makeBody({-1, 0, 0});
    RigidBody *b = makeBody({1, 0, 0});
    BallJoint joint(0, a, b, {0, 0, 0});
    EXPECT_NEAR((joint.anchorOnA() - joint.anchorOnB()).length(), 0.0,
                1e-12);
    a->setPose(Transform(Quat(), {-2, 0, 0}));
    EXPECT_NEAR(joint.anchorOnA().x, -1.0, 1e-12);
}

TEST_F(JointTest, HingeJointHasFiveRows)
{
    RigidBody *a = makeBody({0, 0, 0});
    RigidBody *b = makeBody({2, 0, 0});
    HingeJoint joint(0, a, b, {1, 0, 0}, {0, 0, 1});
    EXPECT_EQ(joint.numRows(), 5);
    RowBuffer rows;
    joint.buildRows(params_, rows);
    EXPECT_EQ(rows.size(), 5u);
    EXPECT_NEAR(joint.axisWorld().z, 1.0, 1e-12);
}

TEST_F(JointTest, SliderJointHasFiveRows)
{
    RigidBody *a = makeBody({0, 0, 0});
    RigidBody *b = makeBody({0, 1, 0});
    SliderJoint joint(0, a, b, {0, 1, 0});
    EXPECT_EQ(joint.numRows(), 5);
    RowBuffer rows;
    joint.buildRows(params_, rows);
    EXPECT_EQ(rows.size(), 5u);
    // The two positional rows must be perpendicular to the axis.
    EXPECT_NEAR(rows[3].jLinA.dot(joint.axisWorld()), 0.0, 1e-12);
    EXPECT_NEAR(rows[4].jLinA.dot(joint.axisWorld()), 0.0, 1e-12);
}

TEST_F(JointTest, FixedJointHasSixRows)
{
    RigidBody *a = makeBody({0, 0, 0});
    RigidBody *b = makeBody({1, 0, 0});
    FixedJoint joint(0, a, b);
    EXPECT_EQ(joint.numRows(), 6);
    RowBuffer rows;
    joint.buildRows(params_, rows);
    EXPECT_EQ(rows.size(), 6u);
}

TEST_F(JointTest, JointToWorldSupported)
{
    RigidBody *a = makeBody({0, 0, 0});
    BallJoint joint(0, a, nullptr, {0, 1, 0});
    RowBuffer rows;
    joint.buildRows(params_, rows);
    ASSERT_EQ(rows.size(), 3u);
    // No body B: its Jacobian stays zero.
    for (std::size_t i = 0; i < rows.size(); ++i) {
        EXPECT_DOUBLE_EQ(rows.jLinB[i].lengthSquared(), 0.0);
        EXPECT_DOUBLE_EQ(rows.jAngB[i].lengthSquared(), 0.0);
    }
}

TEST_F(JointTest, BreakableJointBreaksOnSingleStrongForce)
{
    RigidBody *a = makeBody({0, 0, 0});
    RigidBody *b = makeBody({1, 0, 0});
    FixedJoint joint(0, a, b);
    joint.setBreakForce(100.0);
    EXPECT_TRUE(joint.breakable());
    EXPECT_FALSE(joint.broken());

    // Applied force = impulse / dt = 2.0 / 0.01 = 200 N > 100 N.
    joint.recordAppliedImpulse(2.0, 0.01);
    EXPECT_TRUE(joint.broken());
}

TEST_F(JointTest, BreakableJointBreaksByAccumulation)
{
    RigidBody *a = makeBody({0, 0, 0});
    RigidBody *b = makeBody({1, 0, 0});
    FixedJoint joint(0, a, b);
    joint.setBreakForce(100.0);

    // Sustained 90% load: below the instant threshold, but the decayed
    // accumulator converges toward 2x the per-step load and crosses
    // the 2x threshold after a few steps... it converges to 180 < 200,
    // so it must NOT break.
    for (int i = 0; i < 50; ++i)
        joint.recordAppliedImpulse(0.9, 0.01);
    EXPECT_FALSE(joint.broken());

    // Sustained 101% load converges to ~202 > 200: breaks.
    FixedJoint hot(1, a, b);
    hot.setBreakForce(100.0);
    for (int i = 0; i < 50; ++i)
        hot.recordAppliedImpulse(1.01, 0.01);
    EXPECT_TRUE(hot.broken());
}

TEST_F(JointTest, NonBreakableNeverBreaks)
{
    RigidBody *a = makeBody({0, 0, 0});
    FixedJoint joint(0, a, nullptr);
    EXPECT_FALSE(joint.breakable());
    joint.recordAppliedImpulse(1e9, 0.01);
    EXPECT_FALSE(joint.broken());
}

TEST_F(JointTest, TypeNames)
{
    EXPECT_STREQ(jointTypeName(JointType::Contact), "contact");
    EXPECT_STREQ(jointTypeName(JointType::Ball), "ball");
    EXPECT_STREQ(jointTypeName(JointType::Hinge), "hinge");
    EXPECT_STREQ(jointTypeName(JointType::Slider), "slider");
    EXPECT_STREQ(jointTypeName(JointType::Fixed), "fixed");
}

} // namespace
} // namespace parallax
