/**
 * @file
 * Tests for narrowphase contact generation across shape pairs.
 */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "physics/narrowphase/collide.hh"
#include "physics/shapes/primitives.hh"
#include "physics/shapes/static_shapes.hh"
#include "sim/rng.hh"

namespace parallax
{
namespace
{

/** Owns shapes/bodies/geoms for collision tests. */
class NarrowphaseTest : public ::testing::Test
{
  protected:
    Geom *
    makeGeom(std::unique_ptr<Shape> shape, const Transform &pose)
    {
        shapes_.push_back(std::move(shape));
        const auto body_id = static_cast<BodyId>(bodies_.size());
        bodies_.push_back(std::make_unique<RigidBody>(
            body_id, pose, 1.0, Mat3::identity()));
        const auto geom_id = static_cast<GeomId>(geoms_.size());
        geoms_.push_back(std::make_unique<Geom>(
            geom_id, shapes_.back().get(), bodies_.back().get()));
        return geoms_.back().get();
    }

    std::vector<Contact>
    collide(Geom *a, Geom *b)
    {
        std::vector<Contact> contacts;
        np_.collide(*a, *b, contacts);
        return contacts;
    }

    Narrowphase np_;
    std::vector<std::unique_ptr<Shape>> shapes_;
    std::vector<std::unique_ptr<RigidBody>> bodies_;
    std::vector<std::unique_ptr<Geom>> geoms_;
};

TEST_F(NarrowphaseTest, SphereSphereOverlap)
{
    Geom *a = makeGeom(std::make_unique<SphereShape>(1.0),
                       Transform(Quat(), {0, 0, 0}));
    Geom *b = makeGeom(std::make_unique<SphereShape>(1.0),
                       Transform(Quat(), {1.5, 0, 0}));
    const auto contacts = collide(a, b);
    ASSERT_EQ(contacts.size(), 1u);
    EXPECT_NEAR(contacts[0].depth, 0.5, 1e-9);
    // Normal points from b toward a: -x direction.
    EXPECT_NEAR(contacts[0].normal.x, -1.0, 1e-9);
    EXPECT_EQ(contacts[0].geomA, a->id());
    EXPECT_EQ(contacts[0].geomB, b->id());
}

TEST_F(NarrowphaseTest, SphereSphereSeparated)
{
    Geom *a = makeGeom(std::make_unique<SphereShape>(1.0),
                       Transform(Quat(), {0, 0, 0}));
    Geom *b = makeGeom(std::make_unique<SphereShape>(1.0),
                       Transform(Quat(), {3.0, 0, 0}));
    EXPECT_TRUE(collide(a, b).empty());
}

TEST_F(NarrowphaseTest, SphereSphereCoincidentCenters)
{
    Geom *a = makeGeom(std::make_unique<SphereShape>(1.0),
                       Transform(Quat(), {0, 0, 0}));
    Geom *b = makeGeom(std::make_unique<SphereShape>(1.0),
                       Transform(Quat(), {0, 0, 0}));
    const auto contacts = collide(a, b);
    ASSERT_EQ(contacts.size(), 1u);
    EXPECT_NEAR(contacts[0].depth, 2.0, 1e-9);
    EXPECT_NEAR(contacts[0].normal.length(), 1.0, 1e-9);
}

TEST_F(NarrowphaseTest, SpherePlaneResting)
{
    Geom *s = makeGeom(std::make_unique<SphereShape>(1.0),
                       Transform(Quat(), {0, 0.5, 0}));
    Geom *p = makeGeom(std::make_unique<PlaneShape>(Vec3{0, 1, 0}, 0.0),
                       Transform());
    const auto contacts = collide(s, p);
    ASSERT_EQ(contacts.size(), 1u);
    EXPECT_NEAR(contacts[0].depth, 0.5, 1e-9);
    EXPECT_NEAR(contacts[0].normal.y, 1.0, 1e-9);
    EXPECT_NEAR(contacts[0].position.y, 0.0, 1e-9);
}

TEST_F(NarrowphaseTest, PlaneSphereFlippedNormal)
{
    Geom *p = makeGeom(std::make_unique<PlaneShape>(Vec3{0, 1, 0}, 0.0),
                       Transform());
    Geom *s = makeGeom(std::make_unique<SphereShape>(1.0),
                       Transform(Quat(), {0, 0.5, 0}));
    const auto contacts = collide(p, s);
    ASSERT_EQ(contacts.size(), 1u);
    // Normal must point from the sphere (B) toward the plane (A).
    EXPECT_NEAR(contacts[0].normal.y, -1.0, 1e-9);
    EXPECT_EQ(contacts[0].geomA, p->id());
    EXPECT_EQ(contacts[0].geomB, s->id());
}

TEST_F(NarrowphaseTest, SphereBoxFaceContact)
{
    Geom *s = makeGeom(std::make_unique<SphereShape>(0.5),
                       Transform(Quat(), {0, 1.3, 0}));
    Geom *b = makeGeom(std::make_unique<BoxShape>(Vec3{1, 1, 1}),
                       Transform());
    const auto contacts = collide(s, b);
    ASSERT_EQ(contacts.size(), 1u);
    EXPECT_NEAR(contacts[0].depth, 0.2, 1e-9);
    EXPECT_NEAR(contacts[0].normal.y, 1.0, 1e-9);
}

TEST_F(NarrowphaseTest, SphereInsideBoxPushesOutNearestFace)
{
    Geom *s = makeGeom(std::make_unique<SphereShape>(0.1),
                       Transform(Quat(), {0.9, 0, 0}));
    Geom *b = makeGeom(std::make_unique<BoxShape>(Vec3{1, 1, 1}),
                       Transform());
    const auto contacts = collide(s, b);
    ASSERT_EQ(contacts.size(), 1u);
    EXPECT_NEAR(contacts[0].normal.x, 1.0, 1e-9);
    EXPECT_NEAR(contacts[0].depth, 0.2, 1e-9);
}

TEST_F(NarrowphaseTest, SphereCapsuleSideContact)
{
    Geom *s = makeGeom(std::make_unique<SphereShape>(0.5),
                       Transform(Quat(), {0.8, 0, 0}));
    Geom *c = makeGeom(std::make_unique<CapsuleShape>(0.5, 1.0),
                       Transform());
    const auto contacts = collide(s, c);
    ASSERT_EQ(contacts.size(), 1u);
    EXPECT_NEAR(contacts[0].depth, 0.2, 1e-9);
    EXPECT_NEAR(contacts[0].normal.x, 1.0, 1e-9);
}

TEST_F(NarrowphaseTest, CapsuleCapsuleParallel)
{
    Geom *a = makeGeom(std::make_unique<CapsuleShape>(0.5, 1.0),
                       Transform(Quat(), {0, 0, 0}));
    Geom *b = makeGeom(std::make_unique<CapsuleShape>(0.5, 1.0),
                       Transform(Quat(), {0.8, 0, 0}));
    const auto contacts = collide(a, b);
    ASSERT_EQ(contacts.size(), 1u);
    EXPECT_NEAR(contacts[0].depth, 0.2, 1e-9);
}

TEST_F(NarrowphaseTest, CapsulePlaneBothEndsTouch)
{
    // Horizontal capsule lying just below radius height.
    Geom *c = makeGeom(
        std::make_unique<CapsuleShape>(0.5, 1.0),
        Transform(Quat::fromAxisAngle({0, 0, 1}, M_PI / 2),
                  {0, 0.4, 0}));
    Geom *p = makeGeom(std::make_unique<PlaneShape>(Vec3{0, 1, 0}, 0.0),
                       Transform());
    const auto contacts = collide(c, p);
    EXPECT_EQ(contacts.size(), 2u);
    for (const Contact &contact : contacts)
        EXPECT_NEAR(contact.depth, 0.1, 1e-9);
}

TEST_F(NarrowphaseTest, BoxPlaneRestingManifold)
{
    Geom *b = makeGeom(std::make_unique<BoxShape>(Vec3{1, 1, 1}),
                       Transform(Quat(), {0, 0.9, 0}));
    Geom *p = makeGeom(std::make_unique<PlaneShape>(Vec3{0, 1, 0}, 0.0),
                       Transform());
    const auto contacts = collide(b, p);
    ASSERT_EQ(contacts.size(), 4u);
    for (const Contact &contact : contacts) {
        EXPECT_NEAR(contact.depth, 0.1, 1e-9);
        EXPECT_NEAR(contact.normal.y, 1.0, 1e-9);
    }
}

TEST_F(NarrowphaseTest, BoxBoxAxisAlignedOverlap)
{
    Geom *a = makeGeom(std::make_unique<BoxShape>(Vec3{1, 1, 1}),
                       Transform(Quat(), {0, 0, 0}));
    Geom *b = makeGeom(std::make_unique<BoxShape>(Vec3{1, 1, 1}),
                       Transform(Quat(), {1.8, 0, 0}));
    const auto contacts = collide(a, b);
    ASSERT_FALSE(contacts.empty());
    for (const Contact &contact : contacts) {
        EXPECT_NEAR(std::fabs(contact.normal.x), 1.0, 1e-9);
        EXPECT_NEAR(contact.depth, 0.2, 1e-9);
    }
}

TEST_F(NarrowphaseTest, BoxBoxSeparated)
{
    Geom *a = makeGeom(std::make_unique<BoxShape>(Vec3{1, 1, 1}),
                       Transform(Quat(), {0, 0, 0}));
    Geom *b = makeGeom(std::make_unique<BoxShape>(Vec3{1, 1, 1}),
                       Transform(Quat(), {2.5, 0, 0}));
    EXPECT_TRUE(collide(a, b).empty());
}

TEST_F(NarrowphaseTest, BoxBoxRotatedSeparatedByCrossAxis)
{
    // Boxes whose face axes overlap but a cross-product axis
    // separates them (diagonal arrangement).
    Geom *a = makeGeom(std::make_unique<BoxShape>(Vec3{1, 0.1, 0.1}),
                       Transform(Quat(), {0, 0, 0}));
    Geom *b = makeGeom(
        std::make_unique<BoxShape>(Vec3{1, 0.1, 0.1}),
        Transform(Quat::fromAxisAngle({0, 1, 0}, M_PI / 2),
                  {0, 0.5, 0}));
    EXPECT_TRUE(collide(a, b).empty());
}

TEST_F(NarrowphaseTest, SphereHeightfieldContact)
{
    std::vector<Real> heights(9, 1.0); // Flat at height 1.
    Geom *hf = makeGeom(std::make_unique<HeightfieldShape>(
                            std::move(heights), 3, 3, 5.0),
                        Transform());
    Geom *s = makeGeom(std::make_unique<SphereShape>(0.5),
                       Transform(Quat(), {5.0, 1.3, 5.0}));
    const auto contacts = collide(s, hf);
    ASSERT_EQ(contacts.size(), 1u);
    EXPECT_NEAR(contacts[0].depth, 0.2, 1e-9);
    EXPECT_NEAR(contacts[0].normal.y, 1.0, 1e-9);
}

TEST_F(NarrowphaseTest, SphereHeightfieldOutsideFootprint)
{
    std::vector<Real> heights(9, 1.0);
    Geom *hf = makeGeom(std::make_unique<HeightfieldShape>(
                            std::move(heights), 3, 3, 5.0),
                        Transform());
    Geom *s = makeGeom(std::make_unique<SphereShape>(0.5),
                       Transform(Quat(), {-50.0, 0.5, 5.0}));
    EXPECT_TRUE(collide(s, hf).empty());
}

TEST_F(NarrowphaseTest, SphereTriMeshContact)
{
    std::vector<Vec3> verts{
        {0, 0, 0}, {10, 0, 0}, {10, 0, 10}, {0, 0, 10}};
    std::vector<TriMeshShape::Triangle> tris{{0, 2, 1}, {0, 3, 2}};
    Geom *mesh = makeGeom(std::make_unique<TriMeshShape>(
                              std::move(verts), std::move(tris)),
                          Transform());
    Geom *s = makeGeom(std::make_unique<SphereShape>(0.5),
                       Transform(Quat(), {5, 0.3, 5}));
    const auto contacts = collide(s, mesh);
    ASSERT_FALSE(contacts.empty());
    EXPECT_GT(contacts[0].depth, 0.0);
}

TEST_F(NarrowphaseTest, BoxCapsuleContact)
{
    Geom *b = makeGeom(std::make_unique<BoxShape>(Vec3{1, 1, 1}),
                       Transform(Quat(), {0, 0, 0}));
    Geom *c = makeGeom(std::make_unique<CapsuleShape>(0.4, 0.5),
                       Transform(Quat(), {0, 1.6, 0}));
    const auto contacts = collide(b, c);
    ASSERT_FALSE(contacts.empty());
    // Normal points from the capsule (B) toward the box (A): -y.
    EXPECT_LT(contacts[0].normal.y, 0.0);
}

TEST_F(NarrowphaseTest, CapsuleHeightfieldContact)
{
    std::vector<Real> heights(9, 0.0);
    Geom *hf = makeGeom(std::make_unique<HeightfieldShape>(
                            std::move(heights), 3, 3, 5.0),
                        Transform());
    Geom *c = makeGeom(std::make_unique<CapsuleShape>(0.5, 1.0),
                       Transform(Quat(), {5.0, 1.2, 5.0}));
    const auto contacts = collide(c, hf);
    ASSERT_FALSE(contacts.empty());
    EXPECT_GT(contacts[0].depth, 0.0);
}

TEST_F(NarrowphaseTest, StatsCountPairsAndContacts)
{
    Geom *a = makeGeom(std::make_unique<SphereShape>(1.0),
                       Transform(Quat(), {0, 0, 0}));
    Geom *b = makeGeom(std::make_unique<SphereShape>(1.0),
                       Transform(Quat(), {1.5, 0, 0}));
    Geom *c = makeGeom(std::make_unique<SphereShape>(1.0),
                       Transform(Quat(), {10, 0, 0}));
    collide(a, b);
    collide(a, c);
    EXPECT_EQ(np_.stats().pairsTested, 2u);
    EXPECT_EQ(np_.stats().pairsColliding, 1u);
    EXPECT_EQ(np_.stats().contactsCreated, 1u);
    const int sphere_idx = static_cast<int>(ShapeType::Sphere);
    EXPECT_EQ(np_.stats().testsByType[sphere_idx][sphere_idx], 2u);
}

// Property: for random overlapping sphere pairs, pushing A along the
// normal by depth separates the spheres.
class SphereSeparationProperty
    : public NarrowphaseTest,
      public ::testing::WithParamInterface<int>
{
};

TEST_P(SphereSeparationProperty, NormalTimesDepthSeparates)
{
    Rng rng(GetParam());
    const Real ra = rng.uniform(0.2, 2.0);
    const Real rb = rng.uniform(0.2, 2.0);
    // Force overlap.
    const Vec3 dir = Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1),
                          rng.uniform(-1, 1)}
                         .normalized();
    const Real dist = (ra + rb) * rng.uniform(0.3, 0.95);
    Geom *a = makeGeom(std::make_unique<SphereShape>(ra),
                       Transform(Quat(), dir * dist));
    Geom *b = makeGeom(std::make_unique<SphereShape>(rb), Transform());
    const auto contacts = collide(a, b);
    ASSERT_EQ(contacts.size(), 1u);
    const Contact &c = contacts[0];
    // Move A out along the normal; the spheres should now just touch.
    const Vec3 new_center = dir * dist + c.normal * c.depth;
    EXPECT_NEAR((new_center - Vec3{}).length(), ra + rb, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomOverlaps, SphereSeparationProperty,
                         ::testing::Range(1, 17));

} // namespace
} // namespace parallax
